package balance_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"balance"
)

func TestFacadeRendering(t *testing.T) {
	sb := buildDemo(t)
	m := balance.GP2()
	s, _, err := balance.CP().Run(sb, m)
	if err != nil {
		t.Fatal(err)
	}
	listing := balance.RenderSchedule(sb, s)
	if !strings.Contains(listing, "cycle") || !strings.Contains(listing, "branch") {
		t.Errorf("listing malformed:\n%s", listing)
	}
	gantt := balance.RenderGantt(sb, m, s)
	if !strings.Contains(gantt, "gp[0]") {
		t.Errorf("gantt malformed:\n%s", gantt)
	}
	var dot bytes.Buffer
	if err := balance.WriteDOT(&dot, sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph") {
		t.Error("DOT output malformed")
	}
}

func TestFacadeGraphUtilities(t *testing.T) {
	// A graph with one redundant edge.
	b := balance.NewBuilder("redux")
	o0 := b.Int()
	o1 := b.Int(o0)
	o2 := b.Int(o1)
	b.Dep(o0, o2)
	b.Branch(0, o2)
	sb := b.MustBuild()
	red := balance.ReduceEdges(sb)
	if red.G.NumEdges() >= sb.G.NumEdges() {
		t.Errorf("reduction did not shrink: %d -> %d edges", sb.G.NumEdges(), red.G.NumEdges())
	}

	np := balance.GP2().WithOccupancy(balance.FloatMul, 3)
	fm := balance.NewBuilder("np")
	f := fm.Op(balance.FloatMul)
	fm.Branch(0, f)
	sbNP := fm.MustBuild()
	exp, mapping := balance.ExpandOccupancy(sbNP, np)
	if exp.G.NumOps() != sbNP.G.NumOps()+2 || mapping == nil {
		t.Errorf("expansion wrong: %d ops, mapping %v", exp.G.NumOps(), mapping)
	}
	// Identity on fully pipelined machines.
	same, nilMap := balance.ExpandOccupancy(sbNP, balance.GP2())
	if same != sbNP || nilMap != nil {
		t.Error("expansion not identity on pipelined machine")
	}
}

func TestFacadeCompact(t *testing.T) {
	sb := buildDemo(t)
	m := balance.GP2()
	s, _, err := balance.SR().Run(sb, m)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := balance.Compact(sb, m, s)
	if err := balance.Verify(sb, m, out); err != nil {
		t.Fatal(err)
	}
	if balance.Cost(sb, out) > balance.Cost(sb, s)+1e-9 {
		t.Error("compaction increased the cost")
	}
}

func TestFacadeCFGPipeline(t *testing.T) {
	g := balance.RandomCFG("f", rand.New(rand.NewSource(2)), balance.DefaultRandomCFG())
	traces := balance.GrowTraces(g, balance.DefaultFormation())
	if len(traces) == 0 {
		t.Fatal("no traces")
	}
	sbs, err := balance.FormSuperblocks(g, balance.DefaultFormation())
	if err != nil {
		t.Fatal(err)
	}
	if len(sbs) != len(traces) {
		t.Errorf("%d superblocks from %d traces", len(sbs), len(traces))
	}
	for _, sb := range sbs {
		if err := sb.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeHeuristicNames(t *testing.T) {
	want := []string{"SR", "CP", "G*", "DHASY", "Help", "Balance"}
	hs := balance.Heuristics()
	if len(hs) != len(want) {
		t.Fatalf("got %d heuristics", len(hs))
	}
	for i, h := range hs {
		if h.Name != want[i] {
			t.Errorf("heuristic %d = %q, want %q", i, h.Name, want[i])
		}
	}
	if balance.Best().Name != "Best" {
		t.Error("Best name wrong")
	}
}

func TestFacadeGPConstructor(t *testing.T) {
	m := balance.NewGP(3)
	if m.IssueWidth() != 3 || m.Kinds() != 1 {
		t.Errorf("NewGP(3) = width %d kinds %d", m.IssueWidth(), m.Kinds())
	}
	if m.String() != "GP3" {
		t.Errorf("name %q", m.String())
	}
}
