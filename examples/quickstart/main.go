// Quickstart: build a two-exit superblock, compute its lower bounds, and
// schedule it with the Balance heuristic on a two-issue machine.
package main

import (
	"fmt"
	"log"

	"balance"
)

func main() {
	// A superblock with two basic blocks:
	//
	//   block 1:  a, b, c feed a side exit taken 30% of the time
	//   block 2:  a load-use chain feeds the final exit
	b := balance.NewBuilder("quickstart")
	a := b.Int()
	c := b.Int()
	d := b.Int(a, c)
	side := b.Branch(0.30, d)

	ld := b.Load() // two-cycle latency
	e := b.Int(ld)
	f := b.Int(e, a)
	final := b.Branch(0, f) // absorbs the remaining 70%

	sb, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	m := balance.GP2()
	fmt.Printf("superblock %q: %d ops, exits %v with probabilities %v\n",
		sb.Name, sb.G.NumOps(), sb.Branches, sb.Prob)

	// Lower bounds on the weighted completion time.
	set := balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: true})
	fmt.Printf("bounds on %s: naive LC %.3f, pairwise %.3f, tightest %.3f\n",
		m, set.LCVal, set.PairVal, set.Tightest)

	// Schedule with Balance and verify.
	s, stats, err := balance.Balance().Run(sb, m)
	if err != nil {
		log.Fatal(err)
	}
	if err := balance.Verify(sb, m, s); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Balance: cost %.3f (%d decisions), side exit at cycle %d, final exit at cycle %d\n",
		balance.Cost(sb, s), stats.Decisions, s.Cycle[side], s.Cycle[final])

	// Compare with the exact optimum (the graph is tiny).
	_, opt, err := balance.Optimal(sb, m, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal cost: %.3f — Balance is %soptimal\n", opt, map[bool]string{true: "", false: "NOT "}[balance.Cost(sb, s) <= opt+1e-9])
}
