// Tradeoff: demonstrates Observation 3 of the paper — sometimes the optimal
// schedule delays a *frequently* taken branch to speed up an infrequent
// one, and the pairwise bound exposes exactly when.
//
// The superblock reconstructs Figure 4: a short first block whose exit
// competes for the early issue slots with a long chain feeding the final
// exit. Depending on the side exit probability P, the optimal schedule
// flips between "side exit first" and "final exit first"; Balance follows
// the pairwise bound across the crossover.
package main

import (
	"fmt"
	"log"

	"balance"
)

// figure4 rebuilds the paper's Figure-4 example with the given side-exit
// probability.
func figure4(p float64) *balance.Superblock {
	b := balance.NewBuilder(fmt.Sprintf("figure4(P=%.2f)", p))
	o0 := b.Int()
	o1 := b.Int()
	o2 := b.Int(o0, o1)
	b.Branch(p, o2) // side exit

	c := b.Int() // head of a 7-op chain
	chain := c
	heads := []int{}
	for i := 0; i < 6; i++ {
		chain = b.Int(chain)
		if i < 3 {
			heads = append(heads, chain)
		}
	}
	// Fillers with tight deadlines at the head of the chain.
	for _, h := range heads {
		f := b.Int()
		b.Dep(f, h)
	}
	f14 := b.Int()
	f15 := b.Int()
	b.Branch(0, chain, f14, f15) // final exit
	return b.MustBuild()
}

func main() {
	m := balance.GP2()

	// First show the pairwise tradeoff curve for one instance.
	sb := figure4(0.25)
	set := balance.ComputeBounds(sb, m, balance.BoundOptions{})
	pr := set.PairFor(0, 1)
	fmt.Printf("pairwise tradeoff between the two exits of %s on %s:\n", sb.Name, m)
	fmt.Printf("  individual bounds: side exit >= %d, final exit >= %d\n", pr.Ei, pr.Ej)
	for s := pr.Lmin; s <= pr.Lmax; s++ {
		fmt.Printf("  separation %2d: side exit >= %2d, final exit >= %2d\n", s, pr.X(s), pr.Y(s))
	}
	fmt.Printf("  -> issuing the final exit at its bound (%d) forces the side exit to %d\n\n",
		pr.Ej, pr.MinIGivenJ(pr.Ej))

	// Sweep P across the crossover and show which branch each scheduler
	// favors.
	fmt.Println("P      optimal(side,final)  Balance(side,final)  DHASY(side,final)")
	for _, p := range []float64{0.05, 0.15, 0.25, 0.35, 0.50} {
		sb := figure4(p)
		opt, _, err := balance.Optimal(sb, m, 0)
		if err != nil {
			log.Fatal(err)
		}
		bal, _, err := balance.Balance().Run(sb, m)
		if err != nil {
			log.Fatal(err)
		}
		dh, _, err := balance.DHASY().Run(sb, m)
		if err != nil {
			log.Fatal(err)
		}
		oc := balance.BranchCycles(sb, opt)
		bc := balance.BranchCycles(sb, bal)
		dc := balance.BranchCycles(sb, dh)
		optimal := ""
		if balance.Cost(sb, bal) <= balance.Cost(sb, opt)+1e-9 {
			optimal = "  (Balance optimal)"
		}
		fmt.Printf("%.2f   (%d,%d)                (%d,%d)                (%d,%d)%s\n",
			p, oc[0], oc[1], bc[0], bc[1], dc[0], dc[1], optimal)
	}
}
