// Compare: generate a small synthetic benchmark corpus and compare every
// scheduling heuristic against the tightest lower bound on every machine —
// a miniature version of the paper's Table 3.
package main

import (
	"fmt"
	"log"

	"balance"
)

func main() {
	// A small deterministic corpus: the "compress" and "li" profiles.
	var corpus []*balance.Superblock
	for _, p := range balance.SPECint95Profiles() {
		switch p.Name {
		case "129.compress", "130.li":
			corpus = append(corpus, balance.GenerateBenchmark(p, 2026, 0.4)...)
		}
	}
	fmt.Printf("corpus: %d superblocks\n\n", len(corpus))

	heuristics := append(balance.Heuristics(), balance.Best())
	fmt.Printf("%-8s", "machine")
	for _, h := range heuristics {
		fmt.Printf("%10s", h.Name)
	}
	fmt.Println("   (slowdown vs tightest bound, dynamic cycles)")

	for _, m := range balance.Machines() {
		var boundCycles float64
		heurCycles := make([]float64, len(heuristics))
		for _, sb := range corpus {
			set := balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: true, TripleMaxBranches: 12})
			boundCycles += sb.Freq * set.Tightest
			for i, h := range heuristics {
				s, _, err := h.Run(sb, m)
				if err != nil {
					log.Fatal(err)
				}
				if err := balance.Verify(sb, m, s); err != nil {
					log.Fatalf("%s produced an illegal schedule: %v", h.Name, err)
				}
				heurCycles[i] += sb.Freq * balance.Cost(sb, s)
			}
		}
		fmt.Printf("%-8s", m)
		for i := range heuristics {
			fmt.Printf("%9.2f%%", (heurCycles[i]-boundCycles)/boundCycles*100)
		}
		fmt.Println()
	}
	fmt.Println("\nlower is better; 0.00% means every superblock met the lower bound")
}
