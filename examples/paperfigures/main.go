// Paperfigures: walk through the worked examples of the paper's Figures 1-3
// using only the public API, reproducing the published scheduling facts:
//
//   - Figure 1: Critical Path delays the side exit by 4 cycles while
//     Successive Retirement achieves the optimum;
//   - Figure 2 (Observation 1): a help-based pick delays the final exit;
//     Balance schedules the compatible needs and is optimal;
//   - Figure 3 (Observation 2): resource-aware bounds reveal that op 4 must
//     issue in cycle 0; Balance meets both exits' bounds.
package main

import (
	"fmt"
	"log"

	"balance"
)

// figure1 rebuilds the running example of Sections 1-2.
func figure1(p float64) *balance.Superblock {
	b := balance.NewBuilder("figure1")
	o0, o1, o2 := b.Int(), b.Int(), b.Int()
	b.Branch(p, o0, o1, o2)
	chain := b.Int()
	c := chain
	var tails []int
	for i := 0; i < 6; i++ {
		c = b.Int(c)
		if i >= 3 {
			tails = append(tails, c)
		}
	}
	for _, tail := range tails { // fillers 11-13 feed the chain's tail
		f := b.Int()
		b.Dep(f, tail)
	}
	f14, f15 := b.Int(), b.Int()
	b.Branch(0, c, f14, f15)
	return b.MustBuild()
}

// figure2 rebuilds Observation 1's example.
func figure2(p float64) *balance.Superblock {
	b := balance.NewBuilder("figure2")
	o0, o1, o2 := b.Int(), b.Int(), b.Int()
	b.Branch(p, o0, o1, o2)
	o4 := b.Int()
	o5 := b.AddOp(balance.Int)
	b.DepLatency(o4, o5, 2)
	b.Branch(0, o5)
	return b.MustBuild()
}

// figure3 rebuilds Observation 2's example.
func figure3(p float64) *balance.Superblock {
	b := balance.NewBuilder("figure3")
	o0, o1, o2 := b.Int(), b.Int(), b.Int()
	b.Branch(p, o0, o1, o2)
	o4 := b.Int()
	o5 := b.AddOp(balance.Int)
	b.DepLatency(o4, o5, 2)
	b.Branch(0, b.Int(o5), b.Int(o5), b.Int(o5))
	return b.MustBuild()
}

func show(sb *balance.Superblock, hs ...balance.Heuristic) {
	m := balance.GP2()
	set := balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: true})
	fmt.Printf("%s on %s — per-branch LC bounds %v, tightest superblock bound %.3f\n",
		sb.Name, m, set.LC, set.Tightest)
	for _, h := range hs {
		s, _, err := h.Run(sb, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s branches at %v, cost %.3f\n", h.Name, balance.BranchCycles(sb, s), balance.Cost(sb, s))
	}
	_, opt, err := balance.Optimal(sb, m, 0)
	if err == nil {
		fmt.Printf("  %-8s cost %.3f\n", "OPTIMAL", opt)
	}
	fmt.Println()
}

func main() {
	fmt.Println("Figure 1: CP favors the last exit; SR retires the side exit first")
	show(figure1(0.25), balance.CP(), balance.SR(), balance.Balance())

	fmt.Println("Figure 2 (Observation 1): compatible needs beat pure help counting")
	show(figure2(0.30), balance.Help(), balance.Balance())

	fmt.Println("Figure 3 (Observation 2): resource-aware separations beat dependence distances")
	show(figure3(0.30), balance.Help(), balance.Balance())
}
