// Formation: the full compiler pipeline the paper's superblocks came from —
// a profiled control-flow graph is grown into hot traces (mutual most
// likely), each trace becomes a superblock with exit probabilities from the
// edge profile, and the superblocks are scheduled with Balance.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"balance"
)

// buildCFG constructs a small hand-made profiled CFG: a hot loop-free path
// B0 -> B1 -> B3 -> B4 with cold detours through B2 and B5.
func buildCFG() *balance.CFG {
	mk := func(id int, classes ...balance.Class) *balance.CFGBlock {
		blk := &balance.CFGBlock{ID: id}
		reg := balance.Reg(id*10 + 1)
		var last balance.Reg
		for _, c := range classes {
			op := balance.CFGOp{Class: c}
			if last != 0 {
				op.Uses = []balance.Reg{last}
			}
			if c != balance.Store {
				op.Def = reg
				last = reg
				reg++
			}
			blk.Ops = append(blk.Ops, op)
		}
		if last != 0 {
			blk.BranchUses = []balance.Reg{last}
		}
		return blk
	}
	g := &balance.CFG{Name: "hotpath", Entry: 0}
	b0 := mk(0, balance.Int, balance.Load, balance.Int)
	b0.Succs = []balance.CFGEdge{{To: 1, Count: 920}, {To: 2, Count: 80}}
	b1 := mk(1, balance.Int, balance.Int)
	b1.Succs = []balance.CFGEdge{{To: 3, Count: 920}}
	b2 := mk(2, balance.Store, balance.Int)
	b2.Succs = []balance.CFGEdge{{To: 3, Count: 80}}
	b3 := mk(3, balance.Load, balance.Int, balance.Int)
	b3.Succs = []balance.CFGEdge{{To: 4, Count: 850}, {To: 5, Count: 150}}
	b4 := mk(4, balance.Int, balance.Store)
	b4.ExitCount = 850
	b5 := mk(5, balance.Int)
	b5.ExitCount = 150
	g.Blocks = []*balance.CFGBlock{b0, b1, b2, b3, b4, b5}
	return g
}

func main() {
	g := buildCFG()
	traces := balance.GrowTraces(g, balance.DefaultFormation())
	fmt.Println("traces grown from the profiled CFG:")
	for i, tr := range traces {
		fmt.Printf("  trace %d: blocks %v (head count %d)\n", i, tr.Blocks, tr.Count)
	}

	sbs, err := balance.FormSuperblocks(g, balance.DefaultFormation())
	if err != nil {
		log.Fatal(err)
	}
	m := balance.FS4()
	fmt.Printf("\nformed %d superblocks; scheduling on %s with Balance:\n\n", len(sbs), m)
	for _, sb := range sbs {
		s, _, err := balance.Balance().Run(sb, m)
		if err != nil {
			log.Fatal(err)
		}
		set := balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: true})
		fmt.Printf("%s: %d ops, exits %v probs %.3v freq %.0f\n",
			sb.Name, sb.G.NumOps(), sb.Branches, sb.Prob, sb.Freq)
		fmt.Printf("  cost %.3f (tightest bound %.3f)\n", balance.Cost(sb, s), set.Tightest)
		fmt.Print(indent(balance.RenderGantt(sb, m, s)))
		fmt.Println()
	}

	// And the same pipeline over a random profiled CFG.
	rng := rand.New(rand.NewSource(7))
	rg := balance.RandomCFG("random", rng, balance.DefaultRandomCFG())
	rsbs, err := balance.FormSuperblocks(rg, balance.DefaultFormation())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random CFG with %d blocks formed %d superblocks\n", len(rg.Blocks), len(rsbs))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
