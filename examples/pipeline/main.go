// Pipeline: demonstrates scheduling for machines with NON-fully-pipelined
// functional units. The paper supports such machines through the Rim & Jain
// modeling (Sections 4.1 and 5): an operation holding its unit for k cycles
// is replaced, for bound purposes, by a chain of k unit-occupancy
// pseudo-operations, while the scheduler enforces the real occupancy.
//
// The example compares a fully pipelined FS4 against an FS4 whose float
// multiplier is busy for 3 cycles per multiply, on a superblock mixing a
// multiply chain with independent integer work.
package main

import (
	"fmt"
	"log"

	"balance"
)

func build() *balance.Superblock {
	b := balance.NewBuilder("matrixish")
	// Side exit guarded by a short integer computation.
	i0 := b.Int()
	i1 := b.Int(i0)
	b.Branch(0.2, i1)
	// A reduction of four multiplies feeding the final exit, plus integer
	// bookkeeping that can fill the multiplier's shadow.
	m0 := b.Op(balance.FloatMul)
	m1 := b.Op(balance.FloatMul)
	a0 := b.Op(balance.FloatAdd, m0, m1)
	m2 := b.Op(balance.FloatMul, a0)
	k0 := b.Int()
	k1 := b.Int(k0)
	k2 := b.Int(k1)
	b.Branch(0, m2, k2)
	return b.MustBuild()
}

func main() {
	sb := build()
	pipelined := balance.FS4()
	held := balance.FS4().WithOccupancy(balance.FloatMul, 3)

	for _, m := range []*balance.Machine{pipelined, held} {
		set := balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: true})
		s, _, err := balance.Balance().Run(sb, m)
		if err != nil {
			log.Fatal(err)
		}
		if err := balance.Verify(sb, m, s); err != nil {
			log.Fatal(err)
		}
		_, opt, err := balance.Optimal(sb, m, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s tightest bound %.3f  Balance %.3f  optimal %.3f  exits at %v\n",
			m, set.Tightest, balance.Cost(sb, s), opt, balance.BranchCycles(sb, s))
		if m == held {
			fmt.Printf("%-14s (bounds computed on the Rim & Jain expansion: %d ops -> %d ops)\n",
				"", sb.G.NumOps(), set.Expanded.G.NumOps())
		}
	}
	fmt.Println("\nholding the multiplier stretches the final exit; the side exit is unaffected")
}
