// Benchmarks regenerating each table and figure of the paper on a reduced
// corpus (use cmd/sbeval for full-size runs; EXPERIMENTS.md records the
// full-corpus outputs). One benchmark exists per table/figure, as indexed
// in DESIGN.md, plus micro-benchmarks for the core algorithms.
package balance_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"balance"
	"balance/internal/eval"
	"balance/internal/figures"
	"balance/internal/model"
	"balance/internal/testutil"
)

// benchCfg returns a reduced-corpus configuration sized for benchmarking.
func benchCfg(machines ...*model.Machine) eval.Config {
	if len(machines) == 0 {
		machines = []*model.Machine{model.GP2(), model.FS4()}
	}
	return eval.Config{Seed: 1999, Scale: 0.02, Machines: machines, Triplewise: true}
}

func BenchmarkTable1BoundQuality(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchCfg())
		if _, err := r.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2BoundComplexity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchCfg())
		if _, err := r.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Slowdown(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchCfg())
		if _, err := r.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4OptimalPct(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchCfg())
		if _, err := r.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5NoProfile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchCfg())
		if _, err := r.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6HeuristicComplexity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchCfg())
		if _, err := r.Table6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7Ablation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchCfg())
		if _, err := r.Table7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8CDF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := eval.NewRunner(benchCfg(model.FS4()))
		if _, err := r.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigureExamples(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 2, 3, 4, 6} {
			if _, err := eval.WorkedFigure(n, 0.25); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Micro-benchmarks of the core algorithms on the Figure-1 example and a
// mid-size generated superblock.

func midSB() *balance.Superblock {
	p, _ := balance.SPECint95Profiles(), 0
	_ = p
	for _, prof := range balance.SPECint95Profiles() {
		if prof.Name == "126.gcc" {
			sbs := balance.GenerateBenchmark(prof, 5, 0.05)
			// Pick the largest.
			best := sbs[0]
			for _, sb := range sbs {
				if sb.G.NumOps() > best.G.NumOps() {
					best = sb
				}
			}
			return best
		}
	}
	panic("gcc profile missing")
}

func BenchmarkBoundsPairwise(b *testing.B) {
	b.ReportAllocs()
	sb := midSB()
	m := balance.FS4()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		balance.ComputeBounds(sb, m, balance.BoundOptions{})
	}
}

func BenchmarkBoundsTriplewise(b *testing.B) {
	b.ReportAllocs()
	sb := midSB()
	m := balance.FS4()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: true, TripleMaxBranches: 16})
	}
}

func BenchmarkBalanceSchedule(b *testing.B) {
	b.ReportAllocs()
	sb := midSB()
	m := balance.FS4()
	h := balance.Balance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.Run(sb, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHelpSchedule(b *testing.B) {
	b.ReportAllocs()
	sb := midSB()
	m := balance.FS4()
	h := balance.Help()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.Run(sb, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDHASYSchedule(b *testing.B) {
	b.ReportAllocs()
	sb := midSB()
	m := balance.FS4()
	h := balance.DHASY()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.Run(sb, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactFigure4(b *testing.B) {
	b.ReportAllocs()
	sb := figures.Figure4(0.25)
	m := balance.GP2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := balance.Optimal(sb, m, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

// benchBalanceCfg times one Balance configuration over a small fixed corpus.
func benchBalanceCfg(b *testing.B, cfg balance.BalanceConfig) {
	b.Helper()
	suite := balance.GenerateSuite(1999, 0.03)
	corpus := suite.All()
	m := balance.FS4()
	h := balance.BalanceWith(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sb := range corpus {
			if _, _, err := h.Run(sb, m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblationBalanceFull(b *testing.B) {
	b.ReportAllocs()
	benchBalanceCfg(b, balance.DefaultBalanceConfig())
}

func BenchmarkAblationBalanceLightUpdate(b *testing.B) {
	b.ReportAllocs()
	cfg := balance.DefaultBalanceConfig()
	cfg.Update = balance.UpdateLight
	benchBalanceCfg(b, cfg)
}

func BenchmarkAblationBalancePerCycle(b *testing.B) {
	b.ReportAllocs()
	cfg := balance.DefaultBalanceConfig()
	cfg.Update = balance.UpdatePerCycle
	benchBalanceCfg(b, cfg)
}

func BenchmarkAblationBalanceNoTradeoff(b *testing.B) {
	b.ReportAllocs()
	cfg := balance.DefaultBalanceConfig()
	cfg.Tradeoff = false
	benchBalanceCfg(b, cfg)
}

func BenchmarkAblationBalanceNoBounds(b *testing.B) {
	b.ReportAllocs()
	cfg := balance.DefaultBalanceConfig()
	cfg.UseBounds = false
	cfg.Tradeoff = false
	benchBalanceCfg(b, cfg)
}

// BenchmarkAblationTheorem1 contrasts the Langevin & Cerny recursion with
// and without the Theorem-1 shortcut.
func BenchmarkAblationTheorem1(b *testing.B) {
	b.ReportAllocs()
	sb := midSB()
	m := balance.FS4()
	b.Run("with", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			balance.ComputeBounds(sb, m, balance.BoundOptions{})
		}
	})
	b.Run("without", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			balance.ComputeBounds(sb, m, balance.BoundOptions{WithLCOriginal: true})
		}
	})
}

// BenchmarkAblationTriplewise contrasts the curve-combination triplewise
// bound with the direct two-edge relaxation.
func BenchmarkAblationTriplewise(b *testing.B) {
	b.ReportAllocs()
	sb := midSB()
	m := balance.FS4()
	b.Run("combination", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: true})
		}
	})
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: true, TriplewiseExact: true})
		}
	})
}

// BenchmarkCFGFormation times the profiled-CFG superblock formation
// pipeline.
func BenchmarkCFGFormation(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(5))
	graphs := make([]*balance.CFG, 20)
	for i := range graphs {
		graphs[i] = balance.RandomCFG("bench", rng, balance.DefaultRandomCFG())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			if _, err := balance.FormSuperblocks(g, balance.DefaultFormation()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompact times the schedule-compaction post-pass.
func BenchmarkCompact(b *testing.B) {
	b.ReportAllocs()
	sb := midSB()
	m := balance.FS4()
	s, _, err := balance.SR().Run(sb, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		balance.Compact(sb, m, s)
	}
}

// BenchmarkEngineRun times the streaming evaluation pipeline end to end on
// a reduced corpus: bounds plus every primary heuristic per superblock,
// across the bounded worker pool, without memoization. It is the reference
// benchmark for the engine's per-job overhead (telemetry included).
func BenchmarkEngineRun(b *testing.B) {
	b.ReportAllocs()
	suite := balance.GenerateSuite(1999, 0.02)
	var jobs []balance.EngineJob
	for _, name := range suite.Order {
		for _, sb := range suite.Benchmarks[name] {
			jobs = append(jobs, balance.EngineJob{Benchmark: name, SB: sb})
		}
	}
	m := balance.GP2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := balance.Run(context.Background(), balance.EngineConfig{Jobs: jobs, Machine: m})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := balance.CollectResults(ch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOff pins the cost of the PR-5 instrumentation with no
// sink installed — the shipping configuration for every benchmark above.
// The pairwise and schedule sub-benchmarks run the real hot paths through
// their traced entry points; hooks measures the bare disabled
// instrumentation sequence those paths execute (span open/close plus an
// instant), which must stay at 0 allocs/op and low single-digit
// nanoseconds. All three are gated by cmd/benchgate in CI.
func BenchmarkTraceOff(b *testing.B) {
	reg := balance.Telemetry()
	if reg.SinkActive() {
		b.Fatal("a telemetry sink is installed; trace-off benchmarks need the disabled path")
	}
	sb := midSB()
	m := balance.FS4()
	b.Run("pairwise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			balance.ComputeBounds(sb, m, balance.BoundOptions{})
		}
	})
	b.Run("schedule", func(b *testing.B) {
		b.ReportAllocs()
		h := balance.Balance()
		for i := 0; i < b.N; i++ {
			if _, _, err := h.Run(sb, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hooks", func(b *testing.B) {
		b.ReportAllocs()
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			sp, sctx := reg.StartSpanCtx(ctx, "bounds.PW")
			reg.EmitCtx(sctx, "bounds.degraded")
			sp.End()
		}
	})
}

// BenchmarkWindowedObserve pins the cost of the rolling-window record
// path against the plain lifetime histogram it wraps. The windowed path
// is on every service request (and any hot loop that opts in), so it must
// stay allocation-free and within small constant factors — roughly 2x —
// of Histogram.Observe: one extra epoch load, shard select, and a second
// bucket update. Both are gated by cmd/benchgate in CI.
func BenchmarkWindowedObserve(b *testing.B) {
	reg := balance.Telemetry()
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		h := reg.Histogram("bench.plain_ns")
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i))
		}
	})
	b.Run("windowed", func(b *testing.B) {
		b.ReportAllocs()
		h := reg.WindowedHistogram("bench.windowed_ns")
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i))
		}
	})
}

// BenchmarkExactParallel measures the work-stealing exact solver on a
// 22-op instance whose pairwise floor does NOT prove the optimum (seed 58
// was scanned for exactly that), so every worker count performs the full
// proof of optimality rather than stopping at the precomputed floor. On a
// single-core host the worker counts should tie within noise; the ≥2.5×
// speedup target at 8 workers is a multi-core CI property (see
// EXPERIMENTS.md "Parallel exact search").
func BenchmarkExactParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(58))
	sb := testutil.RandomSuperblock(rng, 22)
	m := balance.GP2()
	if n := sb.G.NumOps(); n < 16 {
		b.Fatalf("benchmark instance has %d ops, want >= 16", n)
	}
	// Sub-benchmark names avoid a trailing "-N": benchgate strips that as
	// GOMAXPROCS decoration, which would conflate the worker counts.
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var want float64
			for i := 0; i < b.N; i++ {
				_, cost, cut, err := balance.OptimalWith(context.Background(), sb, m,
					balance.ExactOptions{Workers: workers})
				if err != nil || cut {
					b.Fatalf("err=%v truncated=%v", err, cut)
				}
				if i == 0 {
					want = cost
				} else if cost != want {
					b.Fatalf("cost drifted across runs: %v then %v", want, cost)
				}
			}
		})
	}
}
