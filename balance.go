// Package balance is a library for superblock instruction scheduling with
// branch-tradeoff-aware lower bounds, reproducing Eichenberger & Meleis,
// "Balance Scheduling: Weighting Branch Tradeoffs in Superblocks"
// (MICRO 1999).
//
// The package provides:
//
//   - a superblock model (dependence DAG + ordered exit branches with
//     probabilities) built with a Builder;
//   - six VLIW machine configurations (GP1/GP2/GP4 and FS4/FS6/FS8) plus
//     constructors for custom ones;
//   - lower bounds on the weighted completion time: critical path, Hu,
//     Rim & Jain, Langevin & Cerny, and the paper's Pairwise and Triplewise
//     superblock bounds (ComputeBounds);
//   - schedulers: Successive Retirement, Critical Path, G*, DHASY, Help,
//     the Balance heuristic (the paper's contribution), and the Best
//     meta-heuristic;
//   - an exact branch-and-bound scheduler for small superblocks;
//   - a context-aware evaluation engine: name-keyed registries of the
//     schedulers and bounds (HeuristicByName, SchedulerNames, BoundNames)
//     and a streaming, cancellable evaluation pipeline over a bounded
//     worker pool with per-superblock memoization (Run, CollectResults);
//   - a deterministic synthetic SPECint95-like corpus generator and the
//     evaluation harness that regenerates every table and figure of the
//     paper (see package balance/internal/eval via the sbeval tool);
//   - a process-wide telemetry registry of counters, gauges, and latency
//     histograms fed by the engine, bounds, scheduler, and exact solver,
//     with optional span streaming (Telemetry, NewTelemetrySink);
//   - a batching, backpressured HTTP scheduling service (NewService; the
//     sbserve daemon and the sbload soak driver are thin wrappers) with a
//     shared, size-bounded result cache, in-flight request coalescing, and
//     deadline-to-budget degradation.
//
// Quick start:
//
//	b := balance.NewBuilder("example")
//	x := b.Int()
//	y := b.Int(x)
//	b.Branch(0.3, y)       // side exit, 30% taken
//	z := b.Int(x)
//	b.Branch(0, z)         // final exit
//	sb := b.MustBuild()
//
//	m := balance.GP2()
//	sched, _, err := balance.Balance().Run(sb, m)
//	cost := balance.Cost(sb, sched)
package balance

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"balance/internal/bounds"
	"balance/internal/cfg"
	"balance/internal/core"
	"balance/internal/engine"
	"balance/internal/exact"
	"balance/internal/gen"
	"balance/internal/heuristics"
	"balance/internal/model"
	"balance/internal/resilience"
	"balance/internal/sbfile"
	"balance/internal/sched"
	"balance/internal/service"
	"balance/internal/telemetry"
	"balance/internal/wire"
)

// Core model types.
type (
	// Superblock is a dependence DAG with ordered exit branches.
	Superblock = model.Superblock
	// Builder constructs superblocks incrementally.
	Builder = model.Builder
	// Machine is a fully pipelined VLIW configuration.
	Machine = model.Machine
	// Class identifies an operation kind (Int, Load, ...).
	Class = model.Class
	// Op is one operation of a dependence graph.
	Op = model.Op
	// Graph is an immutable dependence DAG.
	Graph = model.Graph
	// Edge is a latency-annotated dependence.
	Edge = model.Edge

	// Schedule assigns an issue cycle to every operation.
	Schedule = sched.Schedule
	// Stats counts the work a scheduler performed.
	Stats = sched.Stats
	// Heuristic is a named scheduling algorithm.
	Heuristic = heuristics.Heuristic

	// BoundSet is the full collection of lower bounds for one superblock
	// on one machine.
	BoundSet = bounds.Set
	// BoundOptions configures ComputeBounds.
	BoundOptions = bounds.Options
	// PairBound is the pairwise branch-tradeoff bound (Theorem 2).
	PairBound = bounds.PairBound
	// TripleBound is the triplewise bound (Section 4.4).
	TripleBound = bounds.TripleBound

	// BalanceConfig selects Balance heuristic components (Table 7).
	BalanceConfig = core.Config

	// Profile describes a synthetic benchmark for the corpus generator.
	Profile = gen.Profile
	// Suite is a generated multi-benchmark corpus.
	Suite = gen.Suite
)

// Operation classes.
const (
	Int      = model.Int
	Load     = model.Load
	Store    = model.Store
	FloatAdd = model.FloatAdd
	FloatMul = model.FloatMul
	FloatDiv = model.FloatDiv
	Branch   = model.Branch
)

// BranchLatency is the latency of every branch (the paper's l_br).
const BranchLatency = model.BranchLatency

// Balance update modes (see BalanceConfig.Update).
const (
	UpdatePerOp    = core.UpdatePerOp
	UpdateLight    = core.UpdateLight
	UpdatePerCycle = core.UpdatePerCycle
)

// NewBuilder returns a Builder for a superblock with the given name.
func NewBuilder(name string) *Builder { return model.NewBuilder(name) }

// Machine constructors: the six configurations of the paper plus custom
// general-purpose and fully specialized machines.
func GP1() *Machine { return model.GP1() }

// GP2 returns the two-wide general-purpose machine.
func GP2() *Machine { return model.GP2() }

// GP4 returns the four-wide general-purpose machine.
func GP4() *Machine { return model.GP4() }

// FS4 returns the (1,1,1,1) specialized machine.
func FS4() *Machine { return model.FS4() }

// FS6 returns the (2,2,1,1) specialized machine.
func FS6() *Machine { return model.FS6() }

// FS8 returns the (3,2,2,1) specialized machine.
func FS8() *Machine { return model.FS8() }

// NewGP returns a general-purpose machine with the given width.
func NewGP(width int) *Machine { return model.NewGP(width) }

// NewFS returns a specialized machine with the given unit mix.
func NewFS(intUnits, memUnits, floatUnits, branchUnits int) *Machine {
	return model.NewFS(intUnits, memUnits, floatUnits, branchUnits)
}

// Machines returns the six standard configurations.
func Machines() []*Machine { return model.Machines() }

// MachineByName returns a standard configuration by name ("GP2", "FS6"...).
func MachineByName(name string) (*Machine, error) { return model.MachineByName(name) }

// Cost returns the exit-probability-weighted completion time of a schedule.
func Cost(sb *Superblock, s *Schedule) float64 { return sched.Cost(sb, s) }

// Verify checks a schedule's legality (dependences and resources).
func Verify(sb *Superblock, m *Machine, s *Schedule) error { return sched.Verify(sb, m, s) }

// BranchCycles returns each exit branch's issue cycle.
func BranchCycles(sb *Superblock, s *Schedule) []int { return sched.BranchCycles(sb, s) }

// ComputeBounds runs every lower-bound algorithm on the superblock.
func ComputeBounds(sb *Superblock, m *Machine, opts BoundOptions) *BoundSet {
	return bounds.Compute(sb, m, opts)
}

// Schedulers.

// Balance returns the paper's Balance heuristic with its default (full)
// configuration.
func Balance() Heuristic { return core.Balance(core.DefaultConfig()) }

// BalanceWith returns the Balance heuristic with a custom configuration
// (for the Table-7 ablations).
func BalanceWith(cfg BalanceConfig) Heuristic { return core.Balance(cfg) }

// DefaultBalanceConfig returns the full Balance configuration.
func DefaultBalanceConfig() BalanceConfig { return core.DefaultConfig() }

// SR returns the Successive Retirement heuristic.
func SR() Heuristic { return heuristics.SR() }

// CP returns the Critical Path heuristic.
func CP() Heuristic { return heuristics.CP() }

// GStar returns the G* heuristic (Critical Path secondary).
func GStar() Heuristic { return heuristics.GStar() }

// DHASY returns the Dependence Height and Speculative Yield heuristic.
func DHASY() Heuristic { return heuristics.DHASY() }

// Help returns the Speculative-Hedge-based Help heuristic.
func Help() Heuristic { return heuristics.Help() }

// Heuristics returns the paper's six primary heuristics in table order,
// resolved from the engine registry.
func Heuristics() []Heuristic {
	insts := engine.PrimaryInstances(context.Background())
	out := make([]Heuristic, len(insts))
	for i, inst := range insts {
		out[i] = Heuristic{Name: inst.Name, Run: inst.Run}
	}
	return out
}

// Best returns the meta-heuristic keeping the cheapest of the six primary
// heuristics' schedules plus the 121 CP×SR×DHASY cross-product schedules.
func Best() Heuristic {
	h, err := HeuristicByName("Best")
	if err != nil {
		panic(fmt.Sprintf("balance: Best not registered: %v", err))
	}
	return h
}

// Optimal finds a provably optimal schedule by branch and bound (intended
// for superblocks of up to ~20 operations; maxNodes ≤ 0 uses the default
// search budget).
func Optimal(sb *Superblock, m *Machine, maxNodes int) (*Schedule, float64, error) {
	return exact.Optimal(sb, m, maxNodes)
}

// OptimalCtx is Optimal with cancellation: the branch-and-bound search is
// abandoned with ctx's error once ctx is done.
func OptimalCtx(ctx context.Context, sb *Superblock, m *Machine, maxNodes int) (*Schedule, float64, error) {
	return exact.OptimalCtx(ctx, sb, m, maxNodes)
}

// Resilience: deadline budgets and anytime solving (see internal/resilience
// and DESIGN.md "Fault tolerance").
type (
	// Budget is a sticky, race-safe wall-clock/node budget shared by the
	// bound ladder and the exact solver.
	Budget = resilience.Budget
	// BudgetSpec describes a per-job budget (the zero value is unlimited).
	BudgetSpec = resilience.Spec
)

// NewBudget starts a budget with the given wall-clock and node limits
// (zero means unlimited for that axis; both zero returns nil, which every
// budget consumer treats as unlimited).
func NewBudget(wall time.Duration, nodes int64) *Budget {
	return resilience.NewBudget(wall, nodes)
}

// OptimalBudget is the anytime form of OptimalCtx: when the budget expires
// mid-search it returns the best incumbent found so far with truncated set
// instead of an error. The schedule is always legal; its cost is an upper
// bound on the optimum (and equals it when truncated is false).
func OptimalBudget(ctx context.Context, sb *Superblock, m *Machine, maxNodes int, budget *Budget) (s *Schedule, cost float64, truncated bool, err error) {
	return exact.OptimalBudget(ctx, sb, m, maxNodes, budget)
}

// ExactOptions configures OptimalWith: node cap, anytime budget, worker
// count (0 = GOMAXPROCS, 1 = the classic serial search), and the frontier
// breadth of the parallel decomposition.
type ExactOptions = exact.Options

// OptimalWith is the fully-optioned exact solver: OptimalBudget's anytime
// contract plus work-stealing parallel search when Workers != 1. The
// returned cost is deterministic across worker counts — the true optimum,
// or the best incumbent's cost when truncated — though equal-cost solves
// may return different optimal schedules (see DESIGN.md "Parallel exact
// search").
func OptimalWith(ctx context.Context, sb *Superblock, m *Machine, opts ExactOptions) (s *Schedule, cost float64, truncated bool, err error) {
	return exact.Solve(ctx, sb, m, opts)
}

// Engine: name-keyed registries and the context-aware streaming evaluation
// pipeline of internal/engine, re-exported as the documented programmatic
// entry point for corpus-scale evaluation.
type (
	// EngineConfig configures a streaming evaluation run (see Run).
	EngineConfig = engine.Config
	// EngineJob is one unit of pipeline work: a superblock plus the
	// benchmark it belongs to.
	EngineJob = engine.Job
	// EngineResult is the full evaluation of one superblock on one
	// machine: bounds, per-heuristic costs and work statistics.
	EngineResult = engine.Result
	// EngineMemo caches per-superblock evaluations across Run calls,
	// keyed by (graph digest, machine, bound options, scheduler set).
	EngineMemo = engine.Memo
	// SchedulerInfo describes one registered scheduling heuristic.
	SchedulerInfo = engine.Scheduler
	// BoundInfo describes one registered lower-bound algorithm.
	BoundInfo = engine.Bound
	// ErrorPolicy selects how Run reacts to a failing job (see FailFast
	// and KeepGoing).
	ErrorPolicy = engine.ErrorPolicy
	// EngineCheckpoint makes runs resumable (see EngineConfig.Checkpoint
	// and OpenCheckpoint).
	EngineCheckpoint = resilience.Checkpoint
)

// Error policies for EngineConfig.OnError.
const (
	// FailFast aborts the run at the first job error (the default).
	FailFast = engine.FailFast
	// KeepGoing isolates failures: failed jobs are emitted in stream order
	// with Err set (panics as *resilience.PanicError) and the remaining
	// jobs still run.
	KeepGoing = engine.KeepGoing
)

// OpenCheckpoint opens (or creates) a JSONL evaluation checkpoint for
// EngineConfig.Checkpoint. Flush it when the run completes.
func OpenCheckpoint(path string) (*EngineCheckpoint, error) {
	return resilience.OpenCheckpoint(path)
}

// Run evaluates every job in cfg across a bounded worker pool and streams
// the results in job order. Cancelling ctx aborts the run promptly; the
// final result of an aborted run carries the error in its Err field. See
// engine.Run for the full contract.
func Run(ctx context.Context, cfg EngineConfig) (<-chan EngineResult, error) {
	return engine.Run(ctx, cfg)
}

// CollectResults drains a Run stream into a slice, returning the error of
// an aborted run.
func CollectResults(ch <-chan EngineResult) ([]*EngineResult, error) { return engine.Collect(ch) }

// NewEngineMemo returns a bounded evaluation cache to share across Run
// calls (capacity ≤ 0 uses the default).
func NewEngineMemo(capacity int) *EngineMemo { return engine.NewMemo(capacity) }

// Observability: the process-wide telemetry registry of internal/telemetry,
// which the engine pipeline, the bound catalog, the list scheduler, and the
// exact solver all feed. Idle instrumentation costs nothing; attach a Sink
// to also stream span/progress events.
type (
	// TelemetryRegistry holds named counters, gauges, and latency
	// histograms, and fans span events out to an optional sink.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time copy of a registry with
	// deterministic JSON marshaling.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetrySink receives span and progress events (see
	// telemetry.NewJSONLSink for a JSON-lines writer).
	TelemetrySink = telemetry.Sink
	// TelemetryEvent is one span or progress event delivered to a sink.
	TelemetryEvent = telemetry.Event
)

// Telemetry returns the process-wide registry every instrumented subsystem
// reports into. Read counters from its Snapshot, or SetSink to stream
// events; the cmd tools' -metrics and -trace flags are thin wrappers over
// exactly this.
func Telemetry() *TelemetryRegistry { return telemetry.Default() }

// NewTelemetrySink returns a sink writing one JSON object per event to w;
// pass it to Telemetry().SetSink. SetSink(nil) detaches and restores the
// zero-cost idle path.
func NewTelemetrySink(w io.Writer) TelemetrySink { return telemetry.NewJSONLSink(w) }

// HeuristicByName resolves a scheduling heuristic from the engine registry
// by canonical name or alias ("balance", "gstar", "Best", ...),
// case-insensitively. The error for an unknown name lists every registered
// heuristic.
func HeuristicByName(name string) (Heuristic, error) {
	return HeuristicByNameCtx(context.Background(), name)
}

// HeuristicByNameCtx is HeuristicByName with the heuristic's long-running
// loops (e.g. Best's cross-product enumeration) bound to ctx.
func HeuristicByNameCtx(ctx context.Context, name string) (Heuristic, error) {
	s, err := engine.SchedulerByName(name)
	if err != nil {
		return Heuristic{}, err
	}
	inst := s.Instantiate(ctx)
	return Heuristic{Name: inst.Name, Run: inst.Run}, nil
}

// SchedulerNames returns every registered heuristic's canonical name in
// listing order.
func SchedulerNames() []string { return engine.SchedulerNames() }

// Schedulers returns every registered heuristic's description in listing
// order.
func Schedulers() []SchedulerInfo { return engine.AllSchedulers() }

// BoundNames returns every registered lower bound's canonical name in
// listing order (the Table 1 column order).
func BoundNames() []string { return engine.BoundNames() }

// Bounds returns every registered lower bound's description in listing
// order.
func Bounds() []BoundInfo { return engine.AllBounds() }

// Corpus generation.

// SPECint95Profiles returns the eight synthetic benchmark profiles.
func SPECint95Profiles() []Profile { return gen.SPECint95() }

// GenerateSuite generates the full synthetic SPECint95 corpus.
func GenerateSuite(seed int64, scale float64) *Suite { return gen.GenerateSuite(seed, scale) }

// GenerateBenchmark generates one benchmark's superblocks.
func GenerateBenchmark(p Profile, seed int64, scale float64) []*Superblock {
	return gen.Generate(p, seed, scale)
}

// Control-flow graphs and superblock formation (the LEGO-compiler stand-in:
// profiled CFGs grown into hot traces and emitted as superblocks).
type (
	// CFG is a profiled control-flow graph region.
	CFG = cfg.Graph
	// CFGBlock is one basic block of a CFG.
	CFGBlock = cfg.Block
	// CFGOp is a register-based operation inside a CFG block.
	CFGOp = cfg.Op
	// CFGEdge is a profiled control-flow edge.
	CFGEdge = cfg.Edge
	// Reg is a virtual register number (0 = none).
	Reg = cfg.Reg
	// FormationConfig tunes superblock formation.
	FormationConfig = cfg.FormationConfig
	// Trace is a grown hot trace of block IDs.
	Trace = cfg.Trace
	// RandomCFGConfig tunes random profiled-CFG generation.
	RandomCFGConfig = cfg.RandomConfig
)

// DefaultFormation returns the standard trace-growing parameters.
func DefaultFormation() FormationConfig { return cfg.DefaultFormation() }

// GrowTraces grows hot traces over the CFG with the mutual-most-likely
// heuristic.
func GrowTraces(g *CFG, fc FormationConfig) []Trace { return cfg.GrowTraces(g, fc) }

// FormSuperblocks grows traces over the CFG and forms one superblock per
// trace, with exit probabilities derived from the edge profile.
func FormSuperblocks(g *CFG, fc FormationConfig) ([]*Superblock, error) { return cfg.FormAll(g, fc) }

// RandomCFG builds a random acyclic profiled CFG.
func RandomCFG(name string, rng *rand.Rand, rc RandomCFGConfig) *CFG {
	return cfg.Random(name, rng, rc)
}

// DefaultRandomCFG returns reasonable random-CFG parameters.
func DefaultRandomCFG() RandomCFGConfig { return cfg.DefaultRandom() }

// Schedule rendering.

// RenderSchedule formats a schedule as a cycle-by-cycle listing.
func RenderSchedule(sb *Superblock, s *Schedule) string { return sched.Render(sb, s) }

// RenderGantt formats a schedule as a per-functional-unit occupancy chart.
func RenderGantt(sb *Superblock, m *Machine, s *Schedule) string { return sched.RenderGantt(sb, m, s) }

// Superblock file I/O (.sb text format).

// WriteSuperblocks encodes superblocks to w in the .sb text format.
func WriteSuperblocks(w io.Writer, sbs ...*Superblock) error { return sbfile.Write(w, sbs...) }

// ReadSuperblocks parses every superblock in r.
func ReadSuperblocks(r io.Reader) ([]*Superblock, error) { return sbfile.Read(r) }

// WriteDOT renders the superblock's dependence graph in Graphviz DOT format.
func WriteDOT(w io.Writer, sb *Superblock) error { return sbfile.WriteDOT(w, sb) }

// Graph utilities.

// ReduceEdges removes transitively redundant dependence edges; the set of
// legal schedules (and therefore every bound and cost) is unchanged.
func ReduceEdges(sb *Superblock) *Superblock { return model.ReduceEdges(sb) }

// ExpandOccupancy returns the Rim & Jain fully pipelined modeling of the
// superblock for a machine with non-fully-pipelined units, plus the mapping
// from expanded to original op IDs (nil when already fully pipelined).
func ExpandOccupancy(sb *Superblock, m *Machine) (*Superblock, []int) {
	return model.ExpandOccupancy(sb, m)
}

// Compact moves operations of a legal schedule to earlier cycles where
// dependences and resources allow; the cost never increases.
func Compact(sb *Superblock, m *Machine, s *Schedule) (*Schedule, int) {
	return sched.Compact(sb, m, s)
}

// Service: the pipeline as a long-running, backpressured HTTP service (the
// layer behind cmd/sbserve; drive it with cmd/sbload). See internal/service
// for the admission, deadline, and caching semantics and internal/wire for
// the JSON vocabulary.
type (
	// Service is the scheduling service: an http.Handler plus admission
	// control, the shared result cache, and drain lifecycle.
	Service = service.Server
	// ServiceConfig configures NewService; the zero value serves with
	// sensible defaults.
	ServiceConfig = service.Config
	// CacheStats is the result cache's accounting: hits, misses, coalesced
	// waiters, evictions, and occupancy.
	CacheStats = engine.CacheStats

	// ScheduleRequest/ScheduleResponse are the POST /v1/schedule bodies.
	ScheduleRequest  = wire.ScheduleRequest
	ScheduleResponse = wire.ScheduleResponse
	// BoundsRequest/BoundsResponse are the POST /v1/bounds bodies.
	BoundsRequest  = wire.BoundsRequest
	BoundsResponse = wire.BoundsResponse
	// ExplainRequest/ExplainResponse are the POST /v1/explain bodies.
	ExplainRequest  = wire.ExplainRequest
	ExplainResponse = wire.ExplainResponse
	// ServiceHealth is the GET /healthz body.
	ServiceHealth = wire.Health
)

// NewService returns a Service ready to mount: serve its Handler(), stop
// with Drain.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// BudgetTierSpec quantizes a remaining deadline onto a discrete ladder of
// budget tiers (the largest tier not exceeding it), so deadline-carrying
// requests with similar headroom share cache entries and coalesce. Below
// the smallest tier the exact remainder is used — correctness over
// cacheability. Nil tiers use the service's default ladder.
func BudgetTierSpec(remaining time.Duration, tiers []time.Duration) BudgetSpec {
	if tiers == nil {
		tiers = service.DefaultBudgetTiers
	}
	return resilience.TierSpec(remaining, tiers)
}
