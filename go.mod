module balance

go 1.22
