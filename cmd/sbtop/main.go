// Command sbtop is a terminal dashboard for a running sbserve: it polls
// GET /healthz and GET /metrics and renders live throughput, rolling
// latency quantiles, queue and slot occupancy, cache rates, the request
// outcome mix, and SLO burn — the operator's one-screen view of the
// service.
//
// Usage:
//
//	sbtop                          # watch localhost:8080, refresh every 2s
//	sbtop -addr :9000 -interval 1s
//	sbtop -once                    # print one frame and exit
//	sbtop -check -max-burn 1.0     # CI gate: lint /metrics, gate SLO burn
//	sbtop -lint scrape.prom        # offline lint of a saved /metrics scrape
//
// -check fetches one snapshot, structurally lints the Prometheus
// exposition (see telemetry.LintExposition), and fails (exit 1) on any
// lint violation or any SLO objective whose long-window burn rate exceeds
// -max-burn. The soak job in CI runs exactly this against a draining
// server.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"balance/internal/telemetry"
	"balance/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "sbserve address (host:port or full URL)")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "print one frame and exit")
	check := flag.Bool("check", false, "lint /metrics and gate SLO burn, then exit (implies -once)")
	maxBurn := flag.Float64("max-burn", 1.0, "with -check: fail when any objective's long-window burn exceeds this")
	lint := flag.String("lint", "", "lint a saved /metrics scrape in `file` offline, then exit (no server needed)")
	flag.Parse()

	if *lint != "" {
		failures, err := lintFile(*lint)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbtop: %v\n", err)
			os.Exit(1)
		}
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "sbtop: lint: %s\n", f)
		}
		if len(failures) > 0 {
			os.Exit(1)
		}
		fmt.Println("sbtop: lint ok")
		return
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hc := &http.Client{Timeout: 10 * time.Second}

	if *check {
		failures, err := runCheck(ctx, hc, base, *maxBurn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbtop: %v\n", err)
			os.Exit(1)
		}
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "sbtop: check: %s\n", f)
		}
		if len(failures) > 0 {
			os.Exit(1)
		}
		fmt.Println("sbtop: check ok")
		return
	}

	for {
		snap, err := fetch(ctx, hc, base)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fmt.Fprintf(os.Stderr, "sbtop: %v\n", err)
			os.Exit(1)
		}
		if !*once {
			// Clear and home, so the frame repaints in place.
			fmt.Print("\x1b[2J\x1b[H")
		}
		render(os.Stdout, base, snap)
		if *once {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(*interval):
		}
	}
}

// snapshot is one poll of both observability endpoints.
type snapshot struct {
	health   wire.Health
	points   map[string]telemetry.PromPoint // keyed by PromPoint.Key()
	lintErrs []error
}

// fetch polls /healthz (typed, via wire.Get) and /metrics (raw, so the
// body can be linted as well as parsed).
func fetch(ctx context.Context, hc *http.Client, base string) (*snapshot, error) {
	snap := &snapshot{points: map[string]telemetry.PromPoint{}}
	if _, _, err := wire.Get(ctx, hc, base+"/healthz", &snap.health); err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, wire.MaxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: server returned %s", resp.Status)
	}
	pts, parseErrs := telemetry.ParseExposition(body)
	for _, p := range pts {
		snap.points[p.Key()] = p
	}
	snap.lintErrs = append(parseErrs, telemetry.LintExposition(body)...)
	return snap, nil
}

// metric returns a sample's value by series key, 0 when absent.
func (s *snapshot) metric(key string) float64 { return s.points[key].Value }

// render paints one frame.
func render(w io.Writer, base string, s *snapshot) {
	h := s.health
	fmt.Fprintf(w, "sbtop — %s  status %s  up %s  goroutines %d\n",
		base, h.Status, (time.Duration(h.UptimeMS) * time.Millisecond).Round(time.Second), h.Goroutines)

	if win := h.Window; win != nil {
		fmt.Fprintf(w, "window   %8.1f req/s   p50 %s  p95 %s  p99 %s   err %.2f%%   (%d reqs)\n",
			win.RatePerSec, fmtMS(win.P50MS), fmtMS(win.P95MS), fmtMS(win.P99MS),
			win.ErrorRatio*100, win.Count)
	}
	fmt.Fprintf(w, "slots    %d/%d busy   queued %d (admit limit %d)\n",
		h.InFlight, h.Workers, h.Queued, h.AdmitLimit)

	c := h.Cache
	hitPct := 0.0
	if lookups := c.Hits + c.Misses; lookups > 0 {
		hitPct = 100 * float64(c.Hits) / float64(lookups)
	}
	fmt.Fprintf(w, "cache    %d hits (%.1f%%)  %d misses  %d coalesced  %d evicted  %d/%d resident\n",
		c.Hits, hitPct, c.Misses, c.Coalesced, c.Evictions, c.Size, c.Capacity)

	fmt.Fprintf(w, "mix      ok %.0f (%.0f degraded)  bad %.0f  rejected %.0f  deadline %.0f  failed %.0f\n",
		s.metric("service_requests_ok_total"),
		s.metric("service_requests_degraded_total"),
		s.metric("service_requests_bad_total"),
		s.metric("service_requests_rejected_total"),
		s.metric("service_requests_deadline_total"),
		s.metric("service_requests_failed_total"))

	for i, o := range h.SLO {
		label := "slo"
		if i > 0 {
			label = "   "
		}
		verdict := "OK"
		if !o.OK {
			verdict = "BREACH"
		}
		fmt.Fprintf(w, "%s      %-12s burn long %.2f  fast %.2f  %s\n",
			label, o.Objective, o.BurnLong, o.BurnFast, verdict)
	}
	if len(s.lintErrs) > 0 {
		fmt.Fprintf(w, "metrics  %d exposition lint error(s) — run sbtop -check\n", len(s.lintErrs))
	}
}

// fmtMS renders a millisecond quantity with its unit, compactly.
func fmtMS(ms float64) string {
	switch {
	case ms >= 1000:
		return fmt.Sprintf("%.1fs", ms/1000)
	case ms >= 1:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.0fµs", ms*1000)
	}
}

// lintFile structurally lints a saved exposition offline — the
// deterministic CI variant of -check for servers (like a dist
// coordinator) that exit when their work completes: curl the scrape
// while the run is live, lint it after.
func lintFile(path string) ([]string, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pts, parseErrs := telemetry.ParseExposition(body)
	var failures []string
	for _, e := range append(parseErrs, telemetry.LintExposition(body)...) {
		failures = append(failures, e.Error())
	}
	if len(pts) == 0 {
		failures = append(failures, "no samples in exposition")
	}
	sort.Strings(failures)
	return failures, nil
}

// runCheck is the CI gate: one snapshot, every lint violation and every
// over-budget objective reported as a failure.
func runCheck(ctx context.Context, hc *http.Client, base string, maxBurn float64) ([]string, error) {
	snap, err := fetch(ctx, hc, base)
	if err != nil {
		return nil, err
	}
	var failures []string
	for _, lintErr := range snap.lintErrs {
		failures = append(failures, fmt.Sprintf("metrics lint: %v", lintErr))
	}
	for _, o := range snap.health.SLO {
		if o.BurnLong > maxBurn {
			failures = append(failures, fmt.Sprintf(
				"slo %s: long-window burn %.2f exceeds %.2f", o.Objective, o.BurnLong, maxBurn))
		}
	}
	sort.Strings(failures)
	return failures, nil
}
