package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"balance/internal/wire"
)

// fixture boots an httptest server speaking the two endpoints sbtop
// polls.
func fixture(t *testing.T, health wire.Health, metrics string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		wire.WriteJSON(w, http.StatusOK, health)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(metrics)) //nolint:errcheck
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

const goodMetrics = `# TYPE service_requests_ok counter
service_requests_ok_total 41
# TYPE service_requests_degraded counter
service_requests_degraded_total 2
# TYPE service_requests_failed counter
service_requests_failed_total 1
# EOF
`

func testHealth() wire.Health {
	return wire.Health{
		Status:   "ok",
		InFlight: 2, Workers: 4, Queued: 3, AdmitLimit: 20,
		Goroutines: 17,
		Cache:      wire.CacheHealth{Hits: 30, Misses: 10, Size: 10, Capacity: 64},
		Window: &wire.WindowHealth{
			RatePerSec: 12.5, Count: 42,
			P50MS: 1.5, P95MS: 9.2, P99MS: 15.0, ErrorRatio: 0.024,
		},
		SLO: []wire.SLOHealth{
			{Objective: "p95<25ms", BurnLong: 0.4, BurnFast: 0.1, OK: true},
			{Objective: "err<1%", BurnLong: 2.4, BurnFast: 3.1, OK: false},
		},
		UptimeMS: 61_000,
	}
}

func TestFetchAndRender(t *testing.T) {
	ts := fixture(t, testHealth(), goodMetrics)
	snap, err := fetch(context.Background(), ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.lintErrs) != 0 {
		t.Fatalf("fixture exposition flagged: %v", snap.lintErrs)
	}
	var b strings.Builder
	render(&b, ts.URL, snap)
	out := b.String()
	for _, want := range []string{
		"status ok",
		"12.5 req/s",
		"p95 9.2ms",
		"err 2.40%",
		"2/4 busy",
		"queued 3 (admit limit 20)",
		"30 hits (75.0%)",
		"ok 41 (2 degraded)",
		"failed 1",
		"p95<25ms",
		"burn long 0.40",
		"err<1%",
		"BREACH",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
}

// TestCheckGatesBurn: -check must fail an objective burning past the
// threshold and pass once the threshold admits it.
func TestCheckGatesBurn(t *testing.T) {
	ts := fixture(t, testHealth(), goodMetrics)
	failures, err := runCheck(context.Background(), ts.Client(), ts.URL, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "err<1%") {
		t.Errorf("failures = %v, want exactly the err<1%% breach", failures)
	}
	failures, err = runCheck(context.Background(), ts.Client(), ts.URL, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Errorf("failures with generous threshold = %v, want none", failures)
	}
}

// TestCheckGatesLint: a malformed exposition fails -check even when every
// SLO is within budget.
func TestCheckGatesLint(t *testing.T) {
	h := testHealth()
	h.SLO = nil
	broken := "# TYPE c counter\nc 1\n" // wrong suffix, no EOF
	ts := fixture(t, h, broken)
	failures, err := runCheck(context.Background(), ts.Client(), ts.URL, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) == 0 {
		t.Fatal("malformed exposition passed -check")
	}
	for _, f := range failures {
		if !strings.HasPrefix(f, "metrics lint:") {
			t.Errorf("unexpected failure kind: %s", f)
		}
	}
}

func TestFmtMS(t *testing.T) {
	cases := map[float64]string{0.25: "250µs", 1.5: "1.5ms", 2500: "2.5s"}
	for in, want := range cases {
		if got := fmtMS(in); got != want {
			t.Errorf("fmtMS(%v) = %q, want %q", in, got, want)
		}
	}
}
