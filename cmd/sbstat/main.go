// Command sbstat reports descriptive statistics of a superblock corpus:
// size and branch distributions, dependence structure, available ILP, the
// operation mix, and exit-probability/frequency summaries.
//
// Usage:
//
//	sbstat file.sb            # statistics of a .sb file
//	sbstat -gen -scale 1      # statistics of the generated SPECint95 suite
//	sbstat -gen -bench gcc    # one generated benchmark
//
// -metrics writes a JSON telemetry summary on exit (also after SIGINT,
// which exits 130); -trace streams span events as JSON lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"balance"
	"balance/internal/cliutil"
	"balance/internal/stats"
)

var obs = cliutil.Flags("sbstat", false)

func main() {
	genFlag := flag.Bool("gen", false, "summarize the generated corpus instead of a file")
	bench := flag.String("bench", "all", "benchmarks to generate (with -gen)")
	seed := flag.Int64("seed", 1999, "generation seed (with -gen)")
	scale := flag.Float64("scale", 1, "corpus scale (with -gen)")
	perBench := flag.Bool("per-bench", false, "report each benchmark separately (with -gen)")
	flag.Parse()
	if err := obs.Start(); err != nil {
		obs.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *genFlag {
		all := *bench == "all" || *bench == ""
		want := map[string]bool{}
		for _, b := range strings.Split(*bench, ",") {
			want[strings.TrimSpace(b)] = true
		}
		var combined []*balance.Superblock
		for _, p := range balance.SPECint95Profiles() {
			if err := ctx.Err(); err != nil {
				fatal(err)
			}
			short := p.Name[strings.IndexByte(p.Name, '.')+1:]
			if !all && !want[p.Name] && !want[short] {
				continue
			}
			sbs := balance.GenerateBenchmark(p, *seed, *scale)
			if *perBench {
				fmt.Printf("== %s ==\n%s\n", p.Name, stats.Summarize(sbs))
			}
			combined = append(combined, sbs...)
		}
		if len(combined) == 0 {
			fatal(fmt.Errorf("no benchmarks matched %q", *bench))
		}
		fmt.Printf("== corpus ==\n%s", stats.Summarize(combined))
		obs.Close()
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	sbs, err := balance.ReadSuperblocks(in)
	if err != nil {
		fatal(err)
	}
	fmt.Print(stats.Summarize(sbs))
	obs.Close()
}

// fatal flushes telemetry and exits: 130 after cancellation (SIGINT),
// 1 on real failures.
func fatal(err error) { obs.Fatal(err) }
