// Command sbstat reports descriptive statistics of a superblock corpus:
// size and branch distributions, dependence structure, available ILP, the
// operation mix, and exit-probability/frequency summaries.
//
// Usage:
//
//	sbstat file.sb            # statistics of a .sb file
//	sbstat -gen -scale 1      # statistics of the generated SPECint95 suite
//	sbstat -gen -bench gcc    # one generated benchmark
//	sbstat -checkpoint run.jsonl  # summarize an sbeval evaluation checkpoint
//
// -metrics writes a JSON telemetry summary on exit (also after SIGINT,
// which exits 130); -trace streams span events as JSON lines.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"balance"
	"balance/internal/cliutil"
	"balance/internal/dist"
	"balance/internal/resilience"
	"balance/internal/stats"
)

var obs = cliutil.Flags("sbstat")

func main() {
	genFlag := flag.Bool("gen", false, "summarize the generated corpus instead of a file")
	bench := flag.String("bench", "all", "benchmarks to generate (with -gen)")
	seed := flag.Int64("seed", 1999, "generation seed (with -gen)")
	scale := flag.Float64("scale", 1, "corpus scale (with -gen)")
	perBench := flag.Bool("per-bench", false, "report each benchmark separately (with -gen)")
	checkpoint := flag.String("checkpoint", "", "summarize an sbeval evaluation checkpoint `file` instead of a corpus")
	flag.Parse()
	if err := obs.Start(); err != nil {
		obs.Fatal(err)
	}

	if *checkpoint != "" {
		if err := summarizeCheckpoint(*checkpoint); err != nil {
			fatal(err)
		}
		obs.Close()
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *genFlag {
		all := *bench == "all" || *bench == ""
		want := map[string]bool{}
		for _, b := range strings.Split(*bench, ",") {
			want[strings.TrimSpace(b)] = true
		}
		var combined []*balance.Superblock
		for _, p := range balance.SPECint95Profiles() {
			if err := ctx.Err(); err != nil {
				fatal(err)
			}
			short := p.Name[strings.IndexByte(p.Name, '.')+1:]
			if !all && !want[p.Name] && !want[short] {
				continue
			}
			sbs := balance.GenerateBenchmark(p, *seed, *scale)
			if *perBench {
				fmt.Printf("== %s ==\n%s\n", p.Name, stats.Summarize(sbs))
			}
			combined = append(combined, sbs...)
		}
		if len(combined) == 0 {
			fatal(fmt.Errorf("no benchmarks matched %q", *bench))
		}
		fmt.Printf("== corpus ==\n%s", stats.Summarize(combined))
		obs.Close()
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	sbs, err := balance.ReadSuperblocks(in)
	if err != nil {
		fatal(err)
	}
	fmt.Print(stats.Summarize(sbs))
	obs.Close()
}

// fatal flushes telemetry and exits: 130 after cancellation (SIGINT),
// 1 on real failures.
func fatal(err error) { obs.Fatal(err) }

// summarizeCheckpoint reports the contents of an sbeval -checkpoint file:
// how many evaluations it holds per benchmark, and how many of them were
// degraded by a job budget. Records are decoded structurally (any version-1
// line with the expected fields counts), so the summary tolerates files
// written by older runs with extra fields.
func summarizeCheckpoint(path string) error {
	ck, err := resilience.OpenCheckpoint(path)
	if err != nil {
		return err
	}
	type record struct {
		SB        string             `json:"sb"`
		Benchmark string             `json:"benchmark"`
		Tightest  float64            `json:"tightest"`
		Degraded  int                `json:"degraded"`
		Cost      map[string]float64 `json:"cost"`
	}
	perBench := map[string]int{}
	var order []string
	total, degraded, undecodable := 0, 0, 0
	var distMeta *dist.Status
	ck.Range(func(key string, data json.RawMessage) bool {
		if key == dist.MetaKey {
			// The coordinator's progress record, not an evaluation.
			var st dist.Status
			if err := json.Unmarshal(data, &st); err == nil {
				distMeta = &st
			}
			return true
		}
		var rec record
		if err := json.Unmarshal(data, &rec); err != nil {
			undecodable++
			return true
		}
		total++
		name := rec.Benchmark
		if name == "" {
			name = "(none)"
		}
		if _, seen := perBench[name]; !seen {
			order = append(order, name)
		}
		perBench[name]++
		if rec.Degraded != 0 {
			degraded++
		}
		return true
	})
	sort.Strings(order)
	fmt.Printf("checkpoint %s: %d evaluation(s)\n", path, total)
	for _, name := range order {
		fmt.Printf("  %-16s %d\n", name, perBench[name])
	}
	if degraded > 0 {
		fmt.Printf("  degraded bound ladders: %d\n", degraded)
	}
	if undecodable > 0 {
		fmt.Printf("  undecodable records: %d\n", undecodable)
	}
	if skipped := ck.Skipped(); skipped > 0 {
		fmt.Printf("  unreadable lines dropped at load: %d\n", skipped)
	}
	if distMeta != nil {
		fmt.Printf("  dist coordinator: %d/%d done, %d failed, %d resumed, %d reassigned, %d stolen, %d duplicates, %d worker(s)\n",
			distMeta.Done, distMeta.Total, distMeta.Failed, distMeta.Resumed,
			distMeta.Reassigned, distMeta.Stolen, distMeta.Duplicates, distMeta.Workers)
	}
	return nil
}
