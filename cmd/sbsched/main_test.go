package main

// Smoke tests for the sbsched CLI. The test binary re-execs itself as the
// tool (TestMain dispatches on an env var), so the real flag parsing,
// heuristic registry lookup, schedule verification, and -metrics exit path
// run end to end without a separate build step.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const reexecEnv = "SBSCHED_RUN_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(reexecEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runTool re-execs the test binary as sbsched and returns its stdout.
func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), reexecEnv+"=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("sbsched %v: %v\nstderr:\n%s", args, err, errb.String())
	}
	return out.String()
}

func TestList(t *testing.T) {
	out := runTool(t, "-list")
	for _, want := range []string{"Balance", "DHASY", "speculative-hedge", "Best"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

// TestScheduleOnFixture runs the default heuristic; the tool verifies the
// schedule against the machine model itself, so a clean exit means a legal
// schedule was produced.
func TestScheduleOnFixture(t *testing.T) {
	out := runTool(t, "-schedule", filepath.Join("testdata", "small.sb"))
	for _, want := range []string{"129.compress/sb0000", "Balance cost", "decisions", "cycle   0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCompare(t *testing.T) {
	out := runTool(t, "-compare", filepath.Join("testdata", "small.sb"))
	if !strings.Contains(out, "tightest lower bound:") {
		t.Errorf("-compare output missing the bound line:\n%s", out)
	}
	for _, h := range []string{"SR", "CP", "G*", "DHASY", "Help", "Balance", "Best"} {
		if !strings.Contains(out, h+" ") {
			t.Errorf("-compare output missing heuristic %q:\n%s", h, out)
		}
	}
}

func TestHeuristicByAlias(t *testing.T) {
	out := runTool(t, "-heuristic", "dhasy", filepath.Join("testdata", "small.sb"))
	if !strings.Contains(out, "DHASY cost") {
		t.Errorf("alias lookup output:\n%s", out)
	}
}

func TestMetricsStdout(t *testing.T) {
	out := runTool(t, "-metrics", "-", filepath.Join("testdata", "small.sb"))
	if !strings.Contains(out, `"counters"`) || !strings.Contains(out, "sched.") {
		t.Errorf("-metrics - did not write a scheduler snapshot to stdout:\n%s", out)
	}
}
