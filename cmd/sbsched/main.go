// Command sbsched schedules superblocks from a .sb file.
//
// Usage:
//
//	sbsched [-machine GP2] [-heuristic balance] [-compare] [-schedule] [file]
//	sbsched -list
//
// Heuristics are resolved by name or alias from the engine registry
// (sbsched -list prints them). With -compare the tool runs all of them and
// reports each cost next to the tightest lower bound. With -schedule the
// full cycle-by-cycle schedule is printed. SIGINT cancels the run (exit
// 130, after flushing the -metrics summary). -metrics writes a JSON
// telemetry summary on exit; -trace streams span events as JSON lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"balance"
	"balance/internal/cliutil"
)

var obs = cliutil.Flags("sbsched")

func main() {
	machine := flag.String("machine", "GP2", "machine configuration (GP1,GP2,GP4,FS4,FS6,FS8)")
	heur := flag.String("heuristic", "balance", "scheduling heuristic (see -list)")
	compare := flag.Bool("compare", false, "run every heuristic and compare costs")
	showSched := flag.Bool("schedule", false, "print the cycle-by-cycle schedule")
	gantt := flag.Bool("gantt", false, "print the per-unit occupancy chart")
	list := flag.Bool("list", false, "list the registered heuristics and exit")
	flag.Parse()

	if *list {
		for _, s := range balance.Schedulers() {
			name := s.Name
			if len(s.Aliases) > 0 {
				name += " (" + strings.Join(s.Aliases, ", ") + ")"
			}
			fmt.Printf("%-28s %s\n", name, s.Description)
		}
		return
	}
	if err := obs.Start(); err != nil {
		obs.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m, err := balance.MachineByName(*machine)
	if err != nil {
		fatal(err)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	sbs, err := balance.ReadSuperblocks(in)
	if err != nil {
		fatal(err)
	}

	for _, sb := range sbs {
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s (%d ops, %d exits) on %s\n", sb.Name, sb.G.NumOps(), sb.NumBranches(), m.Name)
		if *compare {
			set := balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: true, TripleMaxBranches: 16})
			fmt.Printf("  tightest lower bound: %.4f\n", set.Tightest)
			hs := append(balance.Heuristics(), balance.Best())
			for _, h := range hs {
				s, _, err := h.Run(sb, m)
				if err != nil {
					fatal(err)
				}
				cost := balance.Cost(sb, s)
				mark := ""
				if cost <= set.Tightest+1e-9 {
					mark = "  (optimal)"
				}
				fmt.Printf("  %-8s cost %.4f  branches at %v%s\n", h.Name, cost, balance.BranchCycles(sb, s), mark)
			}
			continue
		}
		h, err := balance.HeuristicByNameCtx(ctx, *heur)
		if err != nil {
			fatal(err)
		}
		s, stats, err := h.Run(sb, m)
		if err != nil {
			fatal(err)
		}
		if err := balance.Verify(sb, m, s); err != nil {
			fatal(err)
		}
		fmt.Printf("  %s cost %.4f, branches at %v (%d decisions)\n",
			h.Name, balance.Cost(sb, s), balance.BranchCycles(sb, s), stats.Decisions)
		if *showSched {
			fmt.Print(indent(balance.RenderSchedule(sb, s)))
		}
		if *gantt {
			fmt.Print(indent(balance.RenderGantt(sb, m, s)))
		}
	}
	obs.Close()
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("    ")
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

// fatal flushes telemetry and exits: 130 after cancellation (SIGINT),
// 1 on real failures.
func fatal(err error) { obs.Fatal(err) }
