// Command sbform forms superblocks from profiled control-flow graphs: the
// trace-growing + tail-emission step of the paper's compiler pipeline.
//
// Usage:
//
//	sbform region.cfg > region.sb       # form superblocks from a .cfg file
//	sbform -random -blocks 16 -o r.sb   # random profiled CFG demo
//	sbform -min-prob 0.7 region.cfg     # stricter trace growing
//
// -metrics writes a JSON telemetry summary on exit (also after SIGINT,
// which exits 130); -trace streams span events as JSON lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"balance"
	"balance/internal/cfg"
	"balance/internal/cliutil"
)

var obs = cliutil.Flags("sbform")

func main() {
	random := flag.Bool("random", false, "generate a random profiled CFG instead of reading one")
	blocks := flag.Int("blocks", 12, "blocks in the random CFG (with -random)")
	seed := flag.Int64("seed", 1, "random CFG seed (with -random)")
	minProb := flag.Float64("min-prob", 0.6, "minimum edge probability to extend a trace")
	maxBlocks := flag.Int("max-blocks", 32, "maximum blocks per trace")
	noMutual := flag.Bool("no-mutual", false, "disable the mutual-most-likely requirement")
	out := flag.String("o", "", "output .sb file (default stdout)")
	dumpCFG := flag.Bool("dump-cfg", false, "with -random: write the generated .cfg to stderr")
	flag.Parse()
	if err := obs.Start(); err != nil {
		obs.Fatal(err)
	}

	var g *balance.CFG
	if *random {
		rc := balance.DefaultRandomCFG()
		rc.Blocks = *blocks
		g = balance.RandomCFG(fmt.Sprintf("random-%d", *seed), rand.New(rand.NewSource(*seed)), rc)
		if *dumpCFG {
			if err := cfg.Write(os.Stderr, g); err != nil {
				fatal(err)
			}
		}
	} else {
		var in io.Reader = os.Stdin
		if flag.NArg() > 0 {
			f, err := os.Open(flag.Arg(0))
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			in = f
		}
		var err error
		g, err = cfg.Read(in)
		if err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := ctx.Err(); err != nil {
		fatal(err)
	}

	fc := balance.DefaultFormation()
	fc.MinTakenProb = *minProb
	fc.MaxBlocks = *maxBlocks
	fc.RequireMutual = !*noMutual
	sbs, err := balance.FormSuperblocks(g, fc)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := balance.WriteSuperblocks(w, sbs...); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sbform: %d blocks -> %d superblocks\n", len(g.Blocks), len(sbs))
	obs.Close()
}

// fatal flushes telemetry and exits: 130 after cancellation (SIGINT),
// 1 on real failures.
func fatal(err error) { obs.Fatal(err) }
