package main

// Smoke tests for the sbload driver: the test hosts a real service
// in-process and re-execs the test binary as the tool against it.

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"

	"balance/internal/service"
)

const reexecEnv = "SBLOAD_RUN_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(reexecEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runTool(t *testing.T, args ...string) (stdout string, err error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), reexecEnv+"=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	if err != nil {
		t.Logf("sbload %v stderr:\n%s", args, errb.String())
	}
	return out.String(), err
}

func TestLoadAgainstService(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	stdout, err := runTool(t,
		"-addr", addr, "-duration", "1s", "-concurrency", "4",
		"-distinct", "2", "-deadline", "5s", "-seed", "7",
		"-max-error-ratio", "0", "-min-rps", "1", "-max-goroutine-growth", "100",
		"-out", "-")
	if err != nil {
		t.Fatalf("sbload failed: %v", err)
	}
	var s summary
	if err := json.Unmarshal([]byte(stdout), &s); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, stdout)
	}
	if s.Requests == 0 || s.OK == 0 {
		t.Errorf("no traffic recorded: %+v", s)
	}
	if s.ServerErrors+s.TransportErrors+s.ClientErrors > 0 {
		t.Errorf("errors against a healthy server: %+v", s)
	}
	if s.LatencyMS["p95"] <= 0 {
		t.Errorf("no p95 in summary: %+v", s.LatencyMS)
	}
	if s.Cache.Misses == 0 {
		t.Errorf("server cache accounting missing from summary: %+v", s.Cache)
	}
	if len(s.Slowest) == 0 {
		t.Fatalf("summary records no slowest-request traces: %+v", s)
	}
	if len(s.Slowest) > 5 {
		t.Errorf("slowest list has %d entries, default cap is 5", len(s.Slowest))
	}
	seen := map[string]bool{}
	for _, e := range s.Slowest {
		if len(e.Trace) != 16 || e.LatencyMS <= 0 || e.Endpoint == "" {
			t.Errorf("malformed slow entry: %+v", e)
		}
		if seen[e.Trace] {
			// Each request must be its own trace root; a repeated trace
			// ID means the entries can no longer name one request.
			t.Errorf("duplicate slow trace %s: %+v", e.Trace, s.Slowest)
		}
		seen[e.Trace] = true
	}
}

// TestGateFails: an unreachable -min-rps must fail the run with exit 1.
func TestGateFails(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{Workers: 1}).Handler())
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	_, err := runTool(t,
		"-addr", addr, "-duration", "300ms", "-concurrency", "2",
		"-distinct", "1", "-deadline", "5s", "-min-rps", "1000000", "-out", "-")
	var ee *exec.ExitError
	if err == nil || !asExitError(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("gate violation exit = %v, want status 1", err)
	}
}

func asExitError(err error, out **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*out = ee
	}
	return ok
}

func TestParseMix(t *testing.T) {
	w, err := parseMix("schedule=8,bounds=1,explain=1")
	if err != nil || w.total != 10 || len(w.names) != 3 {
		t.Fatalf("parseMix: %+v err=%v", w, err)
	}
	if _, err := parseMix("schedule=8,bogus=1"); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := parseMix("schedule=0"); err == nil {
		t.Error("all-zero mix accepted")
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		counts[w.pick(rng)]++
	}
	if counts["schedule"] < 600 || counts["bounds"] == 0 || counts["explain"] == 0 {
		t.Errorf("pick distribution off: %v", counts)
	}
}
