// Command sbload drives a running sbserve with sustained load and gates on
// the outcome: it is both a benchmark client and the soak check CI runs
// against the service.
//
// Usage:
//
//	sbload -addr localhost:8080 -duration 30s -concurrency 16
//	sbload -distinct 8 -deadline 500ms       # cache-friendly mix
//	sbload -mix schedule=8,bounds=1,explain=1
//	sbload -min-rps 1000 -max-error-ratio 0.01 -max-goroutine-growth 20
//	sbload -max-burn 1.0                     # gate on the server's SLO burn
//	sbload -out soak.json                    # JSON summary
//
// The corpus is generated (gen package, deterministic in -seed), so client
// and server need no shared files. 429 responses count as rejected — the
// backpressure contract working — not as errors; the error ratio gates on
// 5xx and transport failures only. Goroutine growth is sampled from the
// server's /healthz between warmup and the end of the run, so a leaky
// handler fails the gate even when throughput looks healthy.
//
// Every request carries a fresh trace ID in its SB-Trace header, and the
// summary's "slowest" section (-slow-traces, default 5) names the trace
// IDs of the slowest successful requests — grep them in the server's
// access log, or merge client and server -trace files with sbtrace to
// see both halves of the slow request on one timeline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"balance/internal/cliutil"
	"balance/internal/gen"
	"balance/internal/sbfile"
	"balance/internal/telemetry"
	"balance/internal/wire"
)

var obs = cliutil.Flags("sbload")

// summary is the machine-readable result written by -out.
type summary struct {
	DurationSec     float64            `json:"duration_sec"`
	Requests        int64              `json:"requests"`
	OK              int64              `json:"ok"`
	Rejected        int64              `json:"rejected"` // 429: backpressure, not failure
	Deadline        int64              `json:"deadline"` // 504: deadline expiry
	ClientErrors    int64              `json:"client_errors"`
	ServerErrors    int64              `json:"server_errors"`
	TransportErrors int64              `json:"transport_errors"`
	RPS             float64            `json:"rps"`
	LatencyMS       map[string]float64 `json:"latency_ms"`
	Cached          int64              `json:"cached"`
	Coalesced       int64              `json:"coalesced"`
	GoroutineStart  int                `json:"goroutine_start"`
	GoroutineEnd    int                `json:"goroutine_end"`
	Cache           wire.CacheHealth   `json:"cache"`
	// Window and SLO mirror the server's own rolling-window view from the
	// final /healthz poll — the server-side latency quantiles alongside the
	// client-side ones above, and the burn rate -max-burn gates on.
	Window *wire.WindowHealth `json:"server_window,omitempty"`
	SLO    []wire.SLOHealth   `json:"server_slo,omitempty"`
	// Slowest holds the k slowest successful requests with the trace ID
	// each was issued under. The same ID reaches the server via SB-Trace,
	// so these jump straight to the right spans in a merged sbtrace
	// timeline and to the matching access-log lines.
	Slowest []slowEntry `json:"slowest,omitempty"`
}

// slowEntry is one of the k slowest requests (see -slow-traces).
type slowEntry struct {
	Trace     string  `json:"trace"`
	Endpoint  string  `json:"endpoint"`
	LatencyMS float64 `json:"latency_ms"`
}

// slowTracker keeps the k slowest entries seen across all workers.
type slowTracker struct {
	mu sync.Mutex
	k  int
	es []slowEntry
}

func (st *slowTracker) add(e slowEntry) {
	if st.k <= 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.es = append(st.es, e)
	sort.Slice(st.es, func(i, j int) bool { return st.es[i].LatencyMS > st.es[j].LatencyMS })
	if len(st.es) > st.k {
		st.es = st.es[:st.k]
	}
}

func main() {
	addr := flag.String("addr", "localhost:8080", "sbserve address (host:port)")
	duration := flag.Duration("duration", 30*time.Second, "how long to drive load")
	concurrency := flag.Int("concurrency", 16, "concurrent client connections")
	distinct := flag.Int("distinct", 8, "distinct superblocks in the request mix")
	maxOps := flag.Int("max-ops", 0, "0 = profile default; otherwise drop generated superblocks larger than this")
	seed := flag.Int64("seed", 1999, "corpus seed")
	machine := flag.String("machine", "GP2", "machine configuration requests name")
	deadline := flag.Duration("deadline", 2*time.Second, "per-request deadline sent to the server")
	mix := flag.String("mix", "schedule=8,bounds=1,explain=1", "endpoint weights")
	out := flag.String("out", "", "write the JSON summary to `file` (- or empty for stdout)")
	maxErrorRatio := flag.Float64("max-error-ratio", -1, "fail if (5xx+transport)/requests exceeds this (-1 = no gate)")
	maxGoroutineGrowth := flag.Int("max-goroutine-growth", -1, "fail if server goroutines grow by more than this (-1 = no gate)")
	minRPS := flag.Float64("min-rps", -1, "fail if sustained requests/sec fall below this (-1 = no gate)")
	maxBurn := flag.Float64("max-burn", -1, "fail if any server SLO's long-window burn rate exceeds this (-1 = no gate; needs sbserve -slo)")
	slowTraces := flag.Int("slow-traces", 5, "record the trace IDs of this many slowest requests in the summary (0 disables)")
	flag.Parse()
	if err := obs.Start(); err != nil {
		obs.Fatal(err)
	}

	weights, err := parseMix(*mix)
	if err != nil {
		fatal(err)
	}
	inputs := corpus(*seed, *distinct, *maxOps)
	base := "http://" + *addr
	hc := &http.Client{Timeout: *deadline + 10*time.Second}
	ctx := obs.Context(context.Background())

	// Warm up: one request per input primes the cache and proves the
	// server is reachable before the measured window starts. The boot
	// probe retries with jittered backoff so launching sbload alongside
	// sbserve (CI soak, scripts) no longer races the listener coming up.
	boot := &wire.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Jitter:      1,
		OnRetry: func(attempt int, err error, wait time.Duration) {
			fmt.Fprintf(os.Stderr, "sbload: waiting for server (attempt %d): %v\n", attempt, err)
		},
	}
	var health wire.Health
	if _, _, err := boot.Get(ctx, hc, base+"/healthz", &health); err != nil {
		fatal(fmt.Errorf("server not reachable at %s: %w", base, err))
	}
	for _, in := range inputs {
		boot.Post(ctx, hc, base+"/v1/schedule", &wire.ScheduleRequest{ //nolint:errcheck // warmup
			Superblock: in, Machine: *machine, DeadlineMS: deadlineMS(*deadline),
		}, nil)
	}
	if _, _, err := wire.Get(ctx, hc, base+"/healthz", &health); err != nil {
		fatal(fmt.Errorf("healthz after warmup: %w", err))
	}
	goroutineStart := health.Goroutines

	var (
		requests, okCount, rejected, deadlined atomic.Int64
		clientErrs, serverErrs, transportErrs  atomic.Int64
		cached, coalesced                      atomic.Int64
		latMu                                  sync.Mutex
		latencies                              []time.Duration
	)
	slow := &slowTracker{k: *slowTraces}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(worker)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				in := inputs[rng.Intn(len(inputs))]
				sc, rctx, sp := requestSpan(ctx)
				t0 := time.Now()
				endpoint, code, resp := oneRequest(rctx, hc, base, weights, rng, in, *machine, *deadline)
				elapsed := time.Since(t0)
				sp.End(telemetry.String("endpoint", endpoint), telemetry.Int("code", int64(code)))
				requests.Add(1)
				switch {
				case code >= 200 && code < 300:
					okCount.Add(1)
					latMu.Lock()
					latencies = append(latencies, elapsed)
					latMu.Unlock()
					slow.add(slowEntry{
						Trace:     fmt.Sprintf("%016x", sc.Trace),
						Endpoint:  endpoint,
						LatencyMS: float64(elapsed.Microseconds()) / 1000,
					})
					if resp != nil {
						if resp.Cached {
							cached.Add(1)
						}
						if resp.Coalesced {
							coalesced.Add(1)
						}
					}
				case code == http.StatusTooManyRequests:
					rejected.Add(1)
					// Honor the backpressure contract: back off briefly.
					time.Sleep(10 * time.Millisecond)
				case code == http.StatusGatewayTimeout:
					deadlined.Add(1)
				case code >= 400 && code < 500:
					clientErrs.Add(1)
				case code >= 500:
					serverErrs.Add(1)
				default:
					transportErrs.Add(1)
				}
			}
		}(c)
	}
	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	if _, _, err := wire.Get(ctx, hc, base+"/healthz", &health); err != nil {
		fatal(fmt.Errorf("healthz after run: %w", err))
	}

	s := summary{
		DurationSec:     elapsed.Seconds(),
		Requests:        requests.Load(),
		OK:              okCount.Load(),
		Rejected:        rejected.Load(),
		Deadline:        deadlined.Load(),
		ClientErrors:    clientErrs.Load(),
		ServerErrors:    serverErrs.Load(),
		TransportErrors: transportErrs.Load(),
		RPS:             float64(requests.Load()) / elapsed.Seconds(),
		LatencyMS:       quantiles(latencies),
		Cached:          cached.Load(),
		Coalesced:       coalesced.Load(),
		GoroutineStart:  goroutineStart,
		GoroutineEnd:    health.Goroutines,
		Cache:           health.Cache,
		Window:          health.Window,
		SLO:             health.SLO,
		Slowest:         slow.es,
	}
	writeSummary(*out, s)
	fmt.Fprintf(os.Stderr, "sbload: %d requests in %v (%.0f req/s): %d ok, %d rejected, %d deadline, %d errors; p95 %.2fms\n",
		s.Requests, elapsed.Round(time.Millisecond), s.RPS,
		s.OK, s.Rejected, s.Deadline, s.ClientErrors+s.ServerErrors+s.TransportErrors, s.LatencyMS["p95"])
	for _, e := range s.Slowest {
		fmt.Fprintf(os.Stderr, "sbload: slow %8.2fms %-8s trace %s\n", e.LatencyMS, e.Endpoint, e.Trace)
	}

	failed := false
	if *maxErrorRatio >= 0 && s.Requests > 0 {
		ratio := float64(s.ServerErrors+s.TransportErrors) / float64(s.Requests)
		if ratio > *maxErrorRatio {
			fmt.Fprintf(os.Stderr, "sbload: FAIL error ratio %.4f > %.4f\n", ratio, *maxErrorRatio)
			failed = true
		}
	}
	if *maxGoroutineGrowth >= 0 {
		if growth := s.GoroutineEnd - s.GoroutineStart; growth > *maxGoroutineGrowth {
			fmt.Fprintf(os.Stderr, "sbload: FAIL goroutine growth %d > %d\n", growth, *maxGoroutineGrowth)
			failed = true
		}
	}
	if *minRPS >= 0 && s.RPS < *minRPS {
		fmt.Fprintf(os.Stderr, "sbload: FAIL %.0f req/s < %.0f\n", s.RPS, *minRPS)
		failed = true
	}
	if *maxBurn >= 0 {
		if len(s.SLO) == 0 {
			fmt.Fprintln(os.Stderr, "sbload: FAIL -max-burn set but the server reports no SLOs (run sbserve with -slo)")
			failed = true
		}
		for _, o := range s.SLO {
			if o.BurnLong > *maxBurn {
				fmt.Fprintf(os.Stderr, "sbload: FAIL slo %s: long-window burn %.2f > %.2f\n", o.Objective, o.BurnLong, *maxBurn)
				failed = true
			}
		}
	}
	if s.ClientErrors > 0 {
		// 4xx under a well-formed workload means the client and server
		// disagree about the wire contract; always fatal.
		fmt.Fprintf(os.Stderr, "sbload: FAIL %d client errors (4xx)\n", s.ClientErrors)
		failed = true
	}
	if failed {
		obs.Flush()
		os.Exit(1)
	}
	obs.Close()
}

// requestSpan mints the per-request trace identity. Each synthetic
// request is its own trace root — nesting them under sbload's root span
// would give every request the same trace ID, and the slowest-request
// report could no longer name one request. With a -trace sink the
// request gets a real client span; without one it still gets a fresh
// trace ID (span allocation does not require a sink), so SB-Trace
// propagation and the slowest-request report work either way.
func requestSpan(ctx context.Context) (telemetry.SpanContext, context.Context, telemetry.Span) {
	reg := telemetry.Default()
	if reg.SinkActive() {
		sp, rctx := reg.StartSpanCtx(telemetry.ContextWithSpan(ctx, telemetry.SpanContext{}), "load.request")
		return sp.Context(), rctx, sp
	}
	sc := telemetry.NewSpanContext(0)
	return sc, telemetry.ContextWithSpan(ctx, sc), telemetry.Span{}
}

// oneRequest picks an endpoint by mix weight and performs it, returning the
// endpoint name, the status code (0 on transport failure) and, for
// schedule requests, the decoded response for cache accounting.
func oneRequest(ctx context.Context, hc *http.Client, base string, weights mixWeights, rng *rand.Rand,
	sb, machine string, deadline time.Duration) (string, int, *wire.ScheduleResponse) {
	ms := deadlineMS(deadline)
	switch weights.pick(rng) {
	case "bounds":
		code, _, _ := wire.Post(ctx, hc, base+"/v1/bounds", &wire.BoundsRequest{
			Superblock: sb, Machine: machine, DeadlineMS: ms,
		}, nil)
		return "bounds", code, nil
	case "explain":
		code, _, _ := wire.Post(ctx, hc, base+"/v1/explain", &wire.ExplainRequest{
			Superblock: sb, Machine: machine, DeadlineMS: ms,
		}, nil)
		return "explain", code, nil
	default:
		var resp wire.ScheduleResponse
		code, _, _ := wire.Post(ctx, hc, base+"/v1/schedule", &wire.ScheduleRequest{
			Superblock: sb, Machine: machine, DeadlineMS: ms,
		}, &resp)
		return "schedule", code, &resp
	}
}

// corpus renders distinct generated superblocks as .sb text, drawn from the
// gcc profile (the paper's most varied benchmark).
func corpus(seed int64, distinct, maxOps int) []string {
	p, err := gen.ProfileByName("gcc")
	if err != nil {
		fatal(err)
	}
	var out []string
	for scale := 0.05; len(out) < distinct && scale < 8; scale *= 2 {
		sbs := gen.Generate(p, seed, scale)
		out = out[:0]
		for _, sb := range sbs {
			if maxOps > 0 && sb.G.NumOps() > maxOps {
				continue
			}
			var buf strings.Builder
			if err := sbfile.Write(&buf, sb); err != nil {
				fatal(err)
			}
			out = append(out, buf.String())
			if len(out) == distinct {
				break
			}
		}
	}
	if len(out) < distinct {
		fatal(fmt.Errorf("could not generate %d superblocks under -max-ops %d", distinct, maxOps))
	}
	return out
}

// mixWeights is a cumulative-weight endpoint table.
type mixWeights struct {
	names []string
	cum   []int
	total int
}

func parseMix(s string) (mixWeights, error) {
	var w mixWeights
	for _, part := range strings.Split(s, ",") {
		name, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			return w, fmt.Errorf("-mix: want name=weight, got %q", part)
		}
		switch name {
		case "schedule", "bounds", "explain":
		default:
			return w, fmt.Errorf("-mix: unknown endpoint %q (want schedule, bounds, explain)", name)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return w, fmt.Errorf("-mix: bad weight %q", val)
		}
		if n == 0 {
			continue
		}
		w.total += n
		w.names = append(w.names, name)
		w.cum = append(w.cum, w.total)
	}
	if w.total == 0 {
		return w, fmt.Errorf("-mix: no positive weights in %q", s)
	}
	return w, nil
}

func (w mixWeights) pick(rng *rand.Rand) string {
	n := rng.Intn(w.total)
	for i, c := range w.cum {
		if n < c {
			return w.names[i]
		}
	}
	return w.names[len(w.names)-1]
}

func quantiles(lat []time.Duration) map[string]float64 {
	out := map[string]float64{"p50": 0, "p95": 0, "p99": 0}
	if len(lat) == 0 {
		return out
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i].Microseconds()) / 1000
	}
	out["p50"], out["p95"], out["p99"] = at(0.50), at(0.95), at(0.99)
	return out
}

func deadlineMS(d time.Duration) int64 { return d.Milliseconds() }

func writeSummary(path string, s summary) {
	w := os.Stdout
	if path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(fmt.Errorf("-out: %w", err))
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s) //nolint:errcheck // summary write is best-effort to stdout
}

func fatal(err error) {
	obs.Fatal(err)
}
