package main

// Smoke tests for the sbexact CLI. The test binary re-execs itself as the
// tool (TestMain dispatches on an env var), so flag parsing, the parallel
// solver path, and the stderr reporting run end to end.

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const reexecEnv = "SBEXACT_RUN_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(reexecEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runTool re-execs the test binary as sbexact, returning stdout and stderr.
func runTool(t *testing.T, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), reexecEnv+"=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("sbexact %v: %v\nstderr:\n%s", args, err, errb.String())
	}
	return out.String(), errb.String()
}

// optimalLines extracts the per-superblock "name (N ops): optimal C ..."
// result lines, which must not depend on the worker count.
func optimalLines(out string) []string {
	var res []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, " ops): ") {
			res = append(res, line)
		}
	}
	return res
}

func TestExactOnFixture(t *testing.T) {
	out, errb := runTool(t, filepath.Join("testdata", "small.sb"))
	if !strings.Contains(out, "129.compress/sb0000") || !strings.Contains(out, "optimal") {
		t.Errorf("missing solve result:\n%s", out)
	}
	if !strings.Contains(errb, "solved 1") {
		t.Errorf("missing summary on stderr:\n%s", errb)
	}
}

// TestWorkersParity: the parallel solver must report exactly the same
// optimal cost lines as the serial one — the CLI-level determinism check.
func TestWorkersParity(t *testing.T) {
	serial, _ := runTool(t, "-workers", "1", filepath.Join("testdata", "small.sb"))
	parallel, perr := runTool(t, "-workers", "8", filepath.Join("testdata", "small.sb"))
	s, p := optimalLines(serial), optimalLines(parallel)
	if len(s) == 0 || len(s) != len(p) {
		t.Fatalf("result lines: serial %d, parallel %d\nserial:\n%s\nparallel:\n%s",
			len(s), len(p), serial, parallel)
	}
	for i := range s {
		if s[i] != p[i] {
			t.Errorf("workers=8 diverged from workers=1:\n  serial:   %s\n  parallel: %s", s[i], p[i])
		}
	}
	if !regexp.MustCompile(`parallel search expanded \d+ nodes with \d+ steals`).MatchString(perr) {
		t.Errorf("parallel run missing steal summary on stderr:\n%s", perr)
	}
}

func TestWorkersAllCores(t *testing.T) {
	out, _ := runTool(t, "-workers", "0", filepath.Join("testdata", "small.sb"))
	if len(optimalLines(out)) != 1 {
		t.Errorf("-workers 0 produced no result:\n%s", out)
	}
}
