// Command sbexact finds provably optimal schedules for small superblocks by
// branch and bound, and reports how each heuristic compares.
//
// Usage:
//
//	sbexact [-machine GP2] [-max-nodes N] [-max-ops N] [file.sb]
//
// SIGINT cancels the search.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"balance"
)

func main() {
	machine := flag.String("machine", "GP2", "machine configuration")
	maxNodes := flag.Int("max-nodes", 0, "search budget (0 = default)")
	maxOps := flag.Int("max-ops", 24, "skip superblocks larger than this")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m, err := balance.MachineByName(*machine)
	if err != nil {
		fatal(err)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	sbs, err := balance.ReadSuperblocks(in)
	if err != nil {
		fatal(err)
	}

	solved, skipped := 0, 0
	for _, sb := range sbs {
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		if sb.G.NumOps() > *maxOps {
			skipped++
			continue
		}
		s, opt, err := balance.OptimalCtx(ctx, sb, m, *maxNodes)
		if err != nil {
			fmt.Printf("%s: %v\n", sb.Name, err)
			continue
		}
		solved++
		set := balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: true, TriplewiseExact: true})
		fmt.Printf("%s (%d ops): optimal %.4f at branches %v (tightest bound %.4f%s)\n",
			sb.Name, sb.G.NumOps(), opt, balance.BranchCycles(sb, s), set.Tightest,
			map[bool]string{true: ", bound tight", false: ""}[opt <= set.Tightest+1e-9])
		for _, h := range append(balance.Heuristics(), balance.Best()) {
			hs, _, err := h.Run(sb, m)
			if err != nil {
				fatal(err)
			}
			cost := balance.Cost(sb, hs)
			gap := cost - opt
			mark := "optimal"
			if gap > 1e-9 {
				mark = fmt.Sprintf("+%.4f", gap)
			}
			fmt.Printf("  %-8s %.4f  (%s)\n", h.Name, cost, mark)
		}
	}
	fmt.Fprintf(os.Stderr, "sbexact: solved %d, skipped %d (> %d ops)\n", solved, skipped, *maxOps)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbexact:", err)
	os.Exit(1)
}
