// Command sbexact finds provably optimal schedules for small superblocks by
// branch and bound, and reports how each heuristic compares.
//
// Usage:
//
//	sbexact [-machine GP2] [-max-nodes N] [-max-ops N] [file.sb]
//	sbexact -budget 100ms file.sb   # anytime: report the best schedule found in time
//	sbexact -metrics - -trace solve.jsonl -debug-addr localhost:6060 file.sb
//
// SIGINT cancels the search: the tool flushes the -metrics summary and
// exits 130. -metrics writes a JSON telemetry summary (solver node and
// prune counters, per-bound latencies) on exit; -trace streams span and
// solver-progress events as JSON lines; -debug-addr serves expvar and
// pprof for live profiling of long solves.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"balance"
	"balance/internal/cliutil"
)

var obs = cliutil.Flags("sbexact")

func main() {
	machine := flag.String("machine", "GP2", "machine configuration")
	maxNodes := flag.Int("max-nodes", 0, "search budget (0 = default)")
	maxOps := flag.Int("max-ops", 24, "skip superblocks larger than this")
	budget := flag.Duration("budget", 0,
		"wall-clock budget per superblock; an expired budget reports the best schedule found so far as truncated")
	flag.Parse()
	if err := obs.Start(); err != nil {
		obs.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m, err := balance.MachineByName(*machine)
	if err != nil {
		obs.Fatal(err)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			obs.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	sbs, err := balance.ReadSuperblocks(in)
	if err != nil {
		obs.Fatal(err)
	}

	solved, truncations, skipped := 0, 0, 0
	for _, sb := range sbs {
		if err := ctx.Err(); err != nil {
			obs.Fatal(err)
		}
		if sb.G.NumOps() > *maxOps {
			skipped++
			continue
		}
		s, opt, truncated, err := balance.OptimalBudget(ctx, sb, m, *maxNodes, balance.NewBudget(*budget, 0))
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				obs.Fatal(err)
			}
			fmt.Printf("%s: %v\n", sb.Name, err)
			continue
		}
		solved++
		label := "optimal"
		if truncated {
			truncations++
			label = "best found (budget expired)"
		}
		set := balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: true, TriplewiseExact: true})
		fmt.Printf("%s (%d ops): %s %.4f at branches %v (tightest bound %.4f%s)\n",
			sb.Name, sb.G.NumOps(), label, opt, balance.BranchCycles(sb, s), set.Tightest,
			map[bool]string{true: ", bound tight", false: ""}[!truncated && opt <= set.Tightest+1e-9])
		for _, h := range append(balance.Heuristics(), balance.Best()) {
			hs, _, err := h.Run(sb, m)
			if err != nil {
				obs.Fatal(err)
			}
			cost := balance.Cost(sb, hs)
			gap := cost - opt
			mark := "optimal"
			switch {
			case truncated:
				mark = fmt.Sprintf("%+.4f vs best found", gap)
			case gap > 1e-9:
				mark = fmt.Sprintf("+%.4f", gap)
			}
			fmt.Printf("  %-8s %.4f  (%s)\n", h.Name, cost, mark)
		}
	}
	fmt.Fprintf(os.Stderr, "sbexact: solved %d (%d truncated by budget), skipped %d (> %d ops)\n",
		solved, truncations, skipped, *maxOps)
	obs.Close()
}
