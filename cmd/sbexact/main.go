// Command sbexact finds provably optimal schedules for small superblocks by
// branch and bound, and reports how each heuristic compares.
//
// Usage:
//
//	sbexact [-machine GP2] [-max-nodes N] [-max-ops N] [-workers N] [file.sb]
//	sbexact -budget 100ms file.sb   # anytime: report the best schedule found in time
//	sbexact -workers 0 -progress file.sb   # all cores, live nodes/s on stderr
//	sbexact -metrics - -trace solve.jsonl -debug-addr localhost:6060 file.sb
//
// -workers fans the branch-and-bound search across a work-stealing pool
// (0 = one worker per core, 1 = the classic serial search); the reported
// optimum is identical at any worker count. -progress prints a line per
// second to stderr with cumulative nodes, nodes/s, and steal counts.
//
// SIGINT cancels the search: the tool flushes the -metrics summary and
// exits 130. -metrics writes a JSON telemetry summary (solver node and
// prune counters, per-bound latencies) on exit; -trace streams span and
// solver-progress events as JSON lines; -debug-addr serves expvar and
// pprof for live profiling of long solves.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"balance"
	"balance/internal/cliutil"
)

// progressLoop prints solver throughput to stderr once per second until
// done is closed: cumulative nodes, instantaneous nodes/s, and the
// work-stealing counters of the in-flight parallel solves.
func progressLoop(done <-chan struct{}) {
	reg := balance.Telemetry()
	read := func() (int64, int64) {
		snap := reg.Snapshot()
		return snap.Counters["exact.nodes_expanded"], snap.Counters["exact.steals"]
	}
	lastNodes, _ := read()
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			nodes, steals := read()
			fmt.Fprintf(os.Stderr, "sbexact: progress nodes=%d nodes/s=%d steals=%d\n",
				nodes, nodes-lastNodes, steals)
			lastNodes = nodes
		}
	}
}

var obs = cliutil.Flags("sbexact")

func main() {
	machine := flag.String("machine", "GP2", "machine configuration")
	maxNodes := flag.Int("max-nodes", 0, "search budget (0 = default)")
	maxOps := flag.Int("max-ops", 24, "skip superblocks larger than this")
	budget := flag.Duration("budget", 0,
		"wall-clock budget per superblock; an expired budget reports the best schedule found so far as truncated")
	workers := flag.Int("workers", 1, "parallel search workers (0 = one per core, 1 = serial)")
	progress := flag.Bool("progress", false, "print per-second search throughput to stderr")
	flag.Parse()
	if err := obs.Start(); err != nil {
		obs.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m, err := balance.MachineByName(*machine)
	if err != nil {
		obs.Fatal(err)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			obs.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	sbs, err := balance.ReadSuperblocks(in)
	if err != nil {
		obs.Fatal(err)
	}

	if *progress {
		done := make(chan struct{})
		defer close(done)
		go progressLoop(done)
	}

	solved, truncations, skipped := 0, 0, 0
	for _, sb := range sbs {
		if err := ctx.Err(); err != nil {
			obs.Fatal(err)
		}
		if sb.G.NumOps() > *maxOps {
			skipped++
			continue
		}
		s, opt, truncated, err := balance.OptimalWith(ctx, sb, m, balance.ExactOptions{
			MaxNodes: *maxNodes,
			Budget:   balance.NewBudget(*budget, 0),
			Workers:  *workers,
		})
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				obs.Fatal(err)
			}
			fmt.Printf("%s: %v\n", sb.Name, err)
			continue
		}
		solved++
		label := "optimal"
		if truncated {
			truncations++
			label = "best found (budget expired)"
		}
		set := balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: true, TriplewiseExact: true})
		fmt.Printf("%s (%d ops): %s %.4f at branches %v (tightest bound %.4f%s)\n",
			sb.Name, sb.G.NumOps(), label, opt, balance.BranchCycles(sb, s), set.Tightest,
			map[bool]string{true: ", bound tight", false: ""}[!truncated && opt <= set.Tightest+1e-9])
		for _, h := range append(balance.Heuristics(), balance.Best()) {
			hs, _, err := h.Run(sb, m)
			if err != nil {
				obs.Fatal(err)
			}
			cost := balance.Cost(sb, hs)
			gap := cost - opt
			mark := "optimal"
			switch {
			case truncated:
				mark = fmt.Sprintf("%+.4f vs best found", gap)
			case gap > 1e-9:
				mark = fmt.Sprintf("+%.4f", gap)
			}
			fmt.Printf("  %-8s %.4f  (%s)\n", h.Name, cost, mark)
		}
	}
	fmt.Fprintf(os.Stderr, "sbexact: solved %d (%d truncated by budget), skipped %d (> %d ops)\n",
		solved, truncations, skipped, *maxOps)
	if *workers != 1 {
		snap := balance.Telemetry().Snapshot()
		fmt.Fprintf(os.Stderr, "sbexact: parallel search expanded %d nodes with %d steals\n",
			snap.Counters["exact.nodes_expanded"], snap.Counters["exact.steals"])
	}
	obs.Close()
}
