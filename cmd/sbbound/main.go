// Command sbbound computes lower bounds for superblocks in a .sb file.
//
// Usage:
//
//	sbbound [-machine GP2] [-triplewise] [-v] [file]
//
// With no file it reads stdin. For every superblock it prints the
// per-branch CP/Hu/RJ/LC bounds and the superblock-level naive, pairwise,
// triplewise, and tightest weighted-completion bounds. With -v the pairwise
// tradeoff curves are printed too.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"balance"
)

func main() {
	machine := flag.String("machine", "GP2", "machine configuration (GP1,GP2,GP4,FS4,FS6,FS8)")
	triple := flag.Bool("triplewise", true, "compute the triplewise bound")
	verbose := flag.Bool("v", false, "print pairwise tradeoff curves")
	dot := flag.Bool("dot", false, "emit Graphviz DOT of each dependence graph instead of bounds")
	flag.Parse()

	m, err := balance.MachineByName(*machine)
	if err != nil {
		fatal(err)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	sbs, err := balance.ReadSuperblocks(in)
	if err != nil {
		fatal(err)
	}
	for _, sb := range sbs {
		if *dot {
			if err := balance.WriteDOT(os.Stdout, sb); err != nil {
				fatal(err)
			}
			continue
		}
		set := balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: *triple, TripleMaxBranches: 16})
		fmt.Printf("%s (%d ops, %d exits) on %s\n", sb.Name, sb.G.NumOps(), sb.NumBranches(), m.Name)
		fmt.Printf("  per-branch   CP=%v Hu=%v RJ=%v LC=%v\n", set.CP, set.Hu, set.RJ, set.LC)
		fmt.Printf("  superblock   CP=%.4f Hu=%.4f RJ=%.4f LC=%.4f PW=%.4f TW=%.4f tightest=%.4f\n",
			set.CPVal, set.HuVal, set.RJVal, set.LCVal, set.PairVal, set.TripleVal, set.Tightest)
		if *verbose {
			for _, pr := range set.Pairs {
				if pr.NoTradeoff {
					fmt.Printf("  pair (%d,%d): no tradeoff\n", pr.I, pr.J)
					continue
				}
				fmt.Printf("  pair (%d,%d): optimum t_i=%d t_j=%d value=%.4f\n", pr.I, pr.J, pr.Bi, pr.Bj, pr.Value)
				for s := pr.Lmin; s <= pr.Lmax; s++ {
					fmt.Printf("    sep=%2d -> t_i>=%2d t_j>=%2d\n", s, pr.X(s), pr.Y(s))
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbbound:", err)
	os.Exit(1)
}
