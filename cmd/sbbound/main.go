// Command sbbound computes lower bounds for superblocks in a .sb file.
//
// Usage:
//
//	sbbound [-machine GP2] [-triplewise] [-v] [file]
//	sbbound -list
//
// With no file it reads stdin. For every superblock it prints the
// per-branch and superblock-level values of every bound in the engine
// registry (sbbound -list prints the registry) plus the tightest
// weighted-completion bound. With -v the pairwise tradeoff curves are
// printed too. SIGINT cancels the run (exit 130, after flushing the
// -metrics summary). -metrics writes a JSON telemetry summary on exit;
// -trace streams span events as JSON lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"balance"
	"balance/internal/cliutil"
)

var obs = cliutil.Flags("sbbound")

func main() {
	machine := flag.String("machine", "GP2", "machine configuration (GP1,GP2,GP4,FS4,FS6,FS8)")
	triple := flag.Bool("triplewise", true, "compute the triplewise bound")
	verbose := flag.Bool("v", false, "print pairwise tradeoff curves")
	dot := flag.Bool("dot", false, "emit Graphviz DOT of each dependence graph instead of bounds")
	list := flag.Bool("list", false, "list the registered bound algorithms and exit")
	flag.Parse()

	if *list {
		for _, b := range balance.Bounds() {
			name := b.Name
			if len(b.Aliases) > 0 {
				name += " (" + strings.Join(b.Aliases, ", ") + ")"
			}
			fmt.Printf("%-24s %s\n", name, b.Description)
		}
		return
	}

	if err := obs.Start(); err != nil {
		obs.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m, err := balance.MachineByName(*machine)
	if err != nil {
		fatal(err)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	sbs, err := balance.ReadSuperblocks(in)
	if err != nil {
		fatal(err)
	}
	for _, sb := range sbs {
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		if *dot {
			if err := balance.WriteDOT(os.Stdout, sb); err != nil {
				fatal(err)
			}
			continue
		}
		set := balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: *triple, TripleMaxBranches: 16})
		fmt.Printf("%s (%d ops, %d exits) on %s\n", sb.Name, sb.G.NumOps(), sb.NumBranches(), m.Name)
		perBranch, level := "  per-branch  ", "  superblock  "
		for _, b := range balance.Bounds() {
			if b.PerBranch != nil {
				perBranch += fmt.Sprintf(" %s=%v", b.Name, b.PerBranch(set))
			}
			level += fmt.Sprintf(" %s=%.4f", b.Name, b.Value(set))
		}
		fmt.Println(perBranch)
		fmt.Printf("%s tightest=%.4f\n", level, set.Tightest)
		if *verbose {
			for _, pr := range set.Pairs {
				if pr.NoTradeoff {
					fmt.Printf("  pair (%d,%d): no tradeoff\n", pr.I, pr.J)
					continue
				}
				fmt.Printf("  pair (%d,%d): optimum t_i=%d t_j=%d value=%.4f\n", pr.I, pr.J, pr.Bi, pr.Bj, pr.Value)
				for s := pr.Lmin; s <= pr.Lmax; s++ {
					fmt.Printf("    sep=%2d -> t_i>=%2d t_j>=%2d\n", s, pr.X(s), pr.Y(s))
				}
			}
		}
	}
	obs.Close()
}

// fatal flushes telemetry and exits: 130 after cancellation (SIGINT),
// 1 on real failures.
func fatal(err error) { obs.Fatal(err) }
