package main

// Smoke tests for the sbbound CLI. The test binary re-execs itself as the
// tool (TestMain dispatches on an env var), so the real flag parsing,
// stdin/file input, and -metrics exit path run end to end without a
// separate build step.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const reexecEnv = "SBBOUND_RUN_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(reexecEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runTool re-execs the test binary as sbbound and returns its stdout.
func runTool(t *testing.T, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), reexecEnv+"=1")
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("sbbound %v: %v\nstderr:\n%s", args, err, errb.String())
	}
	return out.String()
}

func TestList(t *testing.T) {
	out := runTool(t, "", "-list")
	for _, want := range []string{"critical-path", "rim-jain", "pairwise", "triplewise"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestBoundsOnFixture(t *testing.T) {
	out := runTool(t, "", "-v", filepath.Join("testdata", "small.sb"))
	for _, want := range []string{"129.compress/sb0000", "per-branch", "tightest=", "pair ("} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBoundsFromStdin(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "small.sb"))
	if err != nil {
		t.Fatal(err)
	}
	out := runTool(t, string(data))
	if !strings.Contains(out, "tightest=") {
		t.Errorf("stdin run missing bounds:\n%s", out)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	runTool(t, "", "-metrics", path, filepath.Join("testdata", "small.sb"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("-metrics wrote invalid JSON: %v\n%s", err, data)
	}
	if snap.Counters["bounds.Compute.calls"] < 1 {
		t.Errorf("bounds.Compute.calls = %d, want >= 1", snap.Counters["bounds.Compute.calls"])
	}
	for _, key := range []string{"bounds.pairs_pruned", "bounds.kernel_reuse"} {
		if _, ok := snap.Counters[key]; !ok {
			t.Errorf("-metrics snapshot missing counter %q", key)
		}
	}
}

func TestMetricsStdout(t *testing.T) {
	out := runTool(t, "", "-metrics", "-", filepath.Join("testdata", "small.sb"))
	if !strings.Contains(out, `"counters"`) {
		t.Errorf("-metrics - did not write a snapshot to stdout:\n%s", out)
	}
}
