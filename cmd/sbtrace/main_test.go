package main

// Smoke tests for the sbtrace CLI. The test binary re-execs itself as
// the tool so real flag parsing, file loading, lint gating, and the
// merged-output path run end to end.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"balance/internal/telemetry"
)

const reexecEnv = "SBTRACE_RUN_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(reexecEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runTool re-execs the test binary as sbtrace, returning stdout+stderr
// and the exit code.
func runTool(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), reexecEnv+"=1")
	var out strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &out
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("sbtrace %v: %v\n%s", args, err, out.String())
	}
	return out.String(), code
}

// writeTrace emits events through the real JSONL sink into path.
func writeTrace(t *testing.T, path string, emit func(reg *telemetry.Registry)) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	reg.SetSink(telemetry.NewJSONLSink(f))
	emit(reg)
	reg.SetSink(nil)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// twoProcessFixture writes a coordinator file and a worker file whose
// spans share one trace: the worker's span parents under the
// coordinator's, and the worker carries a clock handshake instant.
func twoProcessFixture(t *testing.T, dir string) (coord, worker string) {
	t.Helper()
	coord = filepath.Join(dir, "coordinator.jsonl")
	worker = filepath.Join(dir, "worker.jsonl")
	var parent telemetry.SpanContext
	writeTrace(t, coord, func(reg *telemetry.Registry) {
		sp, _ := reg.StartSpanCtx(context.Background(), "dist.unit")
		parent = sp.Context()
		time.Sleep(2 * time.Millisecond)
		sp.End()
	})
	writeTrace(t, worker, func(reg *telemetry.Registry) {
		reg.Emit(telemetry.ClockEventName,
			telemetry.Int(telemetry.ClockRemoteAttr, time.Now().UnixNano()),
			telemetry.String(telemetry.ClockHostAttr, "coordinator"))
		sp, _ := reg.StartSpanCtx(telemetry.ContextWithSpan(context.Background(), parent), "engine.job")
		time.Sleep(time.Millisecond)
		sp.End()
	})
	return coord, worker
}

func TestMergeLintStats(t *testing.T) {
	dir := t.TempDir()
	coord, worker := twoProcessFixture(t, dir)
	out := filepath.Join(dir, "merged.json")
	got, code := runTool(t, "-o", out, "-lint", "-stats", coord, worker)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, got)
	}
	if !strings.Contains(got, "2 file(s) clean") {
		t.Errorf("lint summary missing:\n%s", got)
	}
	if !strings.Contains(got, "== span kinds ==") || !strings.Contains(got, "dist.unit") {
		t.Errorf("stats output missing rollups:\n%s", got)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("merged output is not trace-event JSON: %v", err)
	}
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		if pid, ok := ev["pid"].(float64); ok {
			pids[pid] = true
		}
	}
	if len(pids) != 2 {
		t.Errorf("merged timeline has %d process lanes, want 2:\n%s", len(pids), data)
	}
}

func TestLintFailsOnOrphan(t *testing.T) {
	dir := t.TempDir()
	_, worker := twoProcessFixture(t, dir)
	// Lint the worker file alone: its parent span lives in the omitted
	// coordinator file, so the orphan check must fire and exit 1.
	got, code := runTool(t, "-lint", worker)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, got)
	}
	if !strings.Contains(got, "orphan-parent") {
		t.Errorf("missing orphan-parent finding:\n%s", got)
	}
}

func TestDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	coord, worker := twoProcessFixture(t, dir)
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if _, code := runTool(t, "-o", a, coord, worker); code != 0 {
		t.Fatal("first merge failed")
	}
	if _, code := runTool(t, "-o", b, coord, worker); code != 0 {
		t.Fatal("second merge failed")
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if !bytes.Equal(da, db) {
		t.Error("merging the same files twice produced different bytes")
	}
}

func TestUsageWithoutFiles(t *testing.T) {
	if _, code := runTool(t); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
}
