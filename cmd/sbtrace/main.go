// Command sbtrace merges per-process trace files (the -trace .jsonl
// output of sbserve, sbeval, sbload, and the dist workers) into one
// Chrome trace-event timeline for ui.perfetto.dev, with each process in
// its own lane group and every file's clock aligned onto a shared epoch
// via the SB-Time handshake instants the wire layer records.
//
// Usage:
//
//	sbtrace -o merged.json coordinator.jsonl worker1.jsonl worker2.jsonl
//	sbtrace -lint -stats *.jsonl      # structural checks + text report
//
// -lint checks the merged set for orphan parents, span-ID collisions,
// negative durations, and non-monotone child starts, printing each
// finding and exiting 1 if any exist — CI gates on this. -stats prints
// span-kind rollups, per-trace critical paths, and cross-process link
// gaps. Output for fixed inputs is byte-stable.
//
// Each file becomes one process lane named after its basename. A file
// with no trace.clock instant is the reference clock (the hub process —
// conventionally the coordinator or server everyone else talked to);
// files with one are shifted onto it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"balance/internal/telemetry"
)

func main() {
	out := flag.String("o", "", "write the merged Chrome trace-event timeline to `file`")
	lint := flag.Bool("lint", false, "check structural invariants; exit 1 on any finding")
	stats := flag.Bool("stats", false, "print span rollups, critical paths, and cross-process gaps")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: sbtrace [-o merged.json] [-lint] [-stats] trace.jsonl...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *out == "" && !*lint && !*stats {
		fmt.Fprintln(os.Stderr, "sbtrace: nothing to do: give -o, -lint, or -stats")
		os.Exit(2)
	}

	procs, err := loadProcesses(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbtrace: %v\n", err)
		os.Exit(1)
	}

	failed := false
	if *lint {
		findings := telemetry.LintProcesses(procs)
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "sbtrace: %d lint finding(s)\n", len(findings))
			failed = true
		} else {
			fmt.Printf("sbtrace: %d file(s) clean\n", len(procs))
		}
	}
	if *stats {
		fmt.Print(telemetry.StatsText(procs))
	}
	if *out != "" {
		if err := os.WriteFile(*out, telemetry.RenderProcesses(procs), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sbtrace: %v\n", err)
			os.Exit(1)
		}
		total := 0
		for _, p := range procs {
			total += len(p.Events)
		}
		fmt.Fprintf(os.Stderr, "sbtrace: merged %d events from %d file(s) into %s\n",
			total, len(procs), *out)
	}
	if failed {
		os.Exit(1)
	}
}

// loadProcesses parses each file into a TraceProcess named after its
// basename (extension stripped), deriving its clock offset from the
// SB-Time handshake instant when present.
func loadProcesses(paths []string) ([]telemetry.TraceProcess, error) {
	procs := make([]telemetry.TraceProcess, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		events, err := telemetry.ParseJSONLTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		// No handshake instant means this file IS the reference clock
		// (ClockOffset then reports 0, which is exactly right).
		offset, _ := telemetry.ClockOffset(events)
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		procs = append(procs, telemetry.TraceProcess{Name: name, Events: events, Offset: offset})
	}
	return procs, nil
}
