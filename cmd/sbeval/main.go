// Command sbeval regenerates the tables and figures of the paper's
// evaluation on the synthetic SPECint95 corpus.
//
// Usage:
//
//	sbeval -all                     # every table and figure
//	sbeval -table 3                 # one table (1-7)
//	sbeval -figure 8                # the Figure-8 CDF
//	sbeval -figure 1                # a worked example (Figures 1-4, 6)
//	sbeval -scale 0.25 -seed 7      # smaller/other corpus
//	sbeval -table 3 -cfg-corpus     # formation-pipeline corpus
//	sbeval -machines GP2,FS4        # machine subset
//	sbeval -bench gcc               # benchmark subset
//	sbeval -all -checkpoint run.jsonl  # resumable: rerun to pick up where it stopped
//	sbeval -all -keep-going         # isolate per-superblock failures
//	sbeval -all -job-budget 50ms    # degrade bounds instead of overrunning
//
// Distributed evaluation (see DESIGN.md "Distributed evaluation &
// failure domains"): one coordinator shards the corpus to any number of
// workers, journals completions, and renders the tables from the merged
// journal — byte-identical to a single-process run:
//
//	sbeval -all -serve :8099 -checkpoint run.jsonl   # coordinator
//	sbeval -worker http://host:8099                  # each worker
//
// Observability: -metrics writes a JSON telemetry summary (pipeline job
// counts, memo hit rates, per-bound latencies) on exit — including after
// SIGINT, which exits 130; -trace streams span events as JSON lines;
// -debug-addr serves expvar and pprof for live profiling of long runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"balance/internal/cliutil"
	"balance/internal/dist"
	"balance/internal/eval"
	"balance/internal/model"
	"balance/internal/resilience"
)

var obs = cliutil.Flags("sbeval")

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-7)")
	figure := flag.Int("figure", 0, "regenerate a figure (8 = CDF; 1-4, 6 = worked examples)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	seed := flag.Int64("seed", 1999, "corpus seed")
	scale := flag.Float64("scale", 1, "corpus scale")
	machines := flag.String("machines", "", "comma-separated machine subset (default all six)")
	bench := flag.String("bench", "", "comma-separated benchmark subset (default all eight)")
	sideProb := flag.Float64("p", 0.25, "side-exit probability for worked examples")
	noTriple := flag.Bool("no-triplewise", false, "skip the triplewise bound")
	perBench := flag.Bool("per-bench", false, "with -table 3: break results down per benchmark")
	cfgCorpus := flag.Bool("cfg-corpus", false, "use the profiled-CFG formation pipeline as the corpus source")
	checkpoint := flag.String("checkpoint", "",
		"stream completed evaluations to the JSONL `file` and resume from it on restart")
	keepGoing := flag.Bool("keep-going", false,
		"isolate per-superblock failures instead of aborting the run (failures are counted on stderr)")
	jobBudget := flag.Duration("job-budget", 0,
		"wall-clock budget per superblock; expired budgets degrade the bound ladder instead of failing")
	serveAddr := flag.String("serve", "",
		"run as distribution coordinator on `addr` (e.g. :8099): shard the corpus to -worker processes, then render as usual")
	workerURL := flag.String("worker", "",
		"run as distribution worker against the coordinator at `url` (e.g. http://host:8099); no corpus flags needed")
	distID := flag.String("dist-id", "", "worker identity reported to the coordinator (default host-pid)")
	distTTL := flag.Duration("dist-lease-ttl", 30*time.Second,
		"coordinator lease time-to-live; a worker silent this long forfeits its units")
	distBatch := flag.Int("dist-batch", 8, "max units per lease")
	distThrottle := flag.Duration("dist-throttle", 0,
		"worker: artificial pause per leased unit, for chaos and load testing (0 = none)")
	flag.Parse()

	if !*all && *table == 0 && *figure == 0 && *workerURL == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := obs.Start(); err != nil {
		obs.Fatal(err)
	}

	if *workerURL != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		// obs.Context gives this worker a covering root span; RunWorker
		// then rebinds evaluation spans into the coordinator's trace.
		if err := dist.RunWorker(obs.Context(ctx), dist.WorkerConfig{
			Coordinator: *workerURL,
			ID:          *distID,
			MaxBatch:    *distBatch,
			Throttle:    *distThrottle,
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "sbeval: worker done (corpus complete)")
		obs.Close()
		return
	}

	// Worked examples don't need a corpus.
	if *figure >= 1 && *figure <= 6 && *figure != 5 && !*all {
		text, err := eval.WorkedFigure(*figure, *sideProb)
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
		obs.Close()
		return
	}

	cfg := eval.Config{Seed: *seed, Scale: *scale, Triplewise: !*noTriple, CFGCorpus: *cfgCorpus}
	if *machines != "" {
		for _, name := range strings.Split(*machines, ",") {
			m, err := model.MachineByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			cfg.Machines = append(cfg.Machines, m)
		}
	}
	if *bench != "" {
		cfg.Benchmarks = strings.Split(*bench, ",")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	r := eval.NewRunner(cfg).WithContext(ctx)
	if *keepGoing {
		r.WithKeepGoing()
	}
	if *jobBudget > 0 {
		r.WithBudget(resilience.Spec{Wall: *jobBudget})
	}
	var ck *resilience.Checkpoint
	if *checkpoint != "" {
		var err error
		ck, err = resilience.OpenCheckpoint(*checkpoint)
		if err != nil {
			fatal(fmt.Errorf("-checkpoint: %w", err))
		}
		if ck.Len() > 0 {
			fmt.Fprintf(os.Stderr, "sbeval: resuming from %s (%d completed evaluations)\n",
				*checkpoint, ck.Len())
		}
		r.WithCheckpoint(ck)
		// Flush on every exit path — including SIGINT and failures — so an
		// interrupted run persists the jobs it completed.
		obs.OnExit(ck.Flush)
	}
	fmt.Fprintf(os.Stderr, "sbeval: corpus %d superblocks (seed %d, scale %g)\n",
		r.Suite.NumSuperblocks(), *seed, *scale)
	if *serveAddr != "" {
		// Coordinator mode: evaluate the corpus across -worker processes
		// first, journaling completions. The table rendering below then
		// resumes from the journal — workers computed, tables recall — so
		// the output is byte-identical to a single-process run. With
		// -checkpoint the journal IS the checkpoint file (a dist run and
		// a local run extend the same log); without it the journal lives
		// in memory for this process's lifetime.
		journal := ck
		if journal == nil {
			journal = resilience.NewMemory()
			r.WithCheckpoint(journal)
		}
		if err := serveDist(ctx, r, journal, *serveAddr, *distTTL, *distBatch); err != nil {
			fatal(err)
		}
	}
	defer func() {
		if n := r.Failures(); n > 0 {
			fmt.Fprintf(os.Stderr, "sbeval: %d superblock(s) failed and were excluded (-keep-going)\n", n)
		}
		if s := r.CacheStats(); s.Hits+s.Misses > 0 {
			fmt.Fprintf(os.Stderr, "sbeval: result cache %d hits / %d misses / %d coalesced / %d evicted (%d resident)\n",
				s.Hits, s.Misses, s.Coalesced, s.Evictions, s.Size)
		}
	}()

	run := func(n int) {
		start := time.Now()
		var t *eval.Table
		var err error
		switch n {
		case 1:
			t, err = r.Table1()
		case 2:
			t, err = r.Table2()
		case 3:
			if *perBench {
				for _, m := range r.Cfg.Machines {
					tb, berr := r.Table3ByBenchmark(m)
					if berr != nil {
						fatal(berr)
					}
					fmt.Println(tb.String())
				}
				return
			}
			t, err = r.Table3()
		case 4:
			t, err = r.Table4()
		case 5:
			t, err = r.Table5()
		case 6:
			t, err = r.Table6()
		case 7:
			t, err = r.Table7()
		default:
			fatal(fmt.Errorf("no table %d", n))
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.String())
		fmt.Fprintf(os.Stderr, "sbeval: table %d in %v\n", n, time.Since(start).Round(time.Millisecond))
	}
	runFig8 := func() {
		start := time.Now()
		d, err := r.Figure8()
		if err != nil {
			// The gcc benchmark may be filtered out; fall back to whatever
			// benchmark is present.
			if len(r.Suite.Order) > 0 {
				d, err = r.FigureCDF(r.Suite.Order[0], r.Cfg.Machines[0])
			}
			if err != nil {
				fatal(err)
			}
		}
		fmt.Println(d.Table().String())
		fmt.Fprintf(os.Stderr, "sbeval: figure 8 in %v\n", time.Since(start).Round(time.Millisecond))
	}

	if *all {
		for n := 1; n <= 7; n++ {
			run(n)
		}
		runFig8()
		obs.Close()
		return
	}
	if *table != 0 {
		run(*table)
	}
	if *figure == 8 {
		runFig8()
	}
	obs.Close()
}

// fatal flushes telemetry and exits: 130 after cancellation (SIGINT),
// 1 on real failures.
func fatal(err error) { obs.Fatal(err) }
