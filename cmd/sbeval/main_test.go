package main

// End-to-end tests for the sbeval CLI's tracing exit paths: the test
// binary re-execs itself as the tool, so the real flag parsing, signal
// handling, and cliutil teardown order run exactly as shipped.

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const reexecEnv = "SBEVAL_RUN_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(reexecEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// traceDoc mirrors the Chrome trace-event fields the tests inspect.
type traceDoc struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Args struct {
			Span   uint64 `json:"span"`
			Parent uint64 `json:"parent"`
		} `json:"args"`
	} `json:"traceEvents"`
}

func readTrace(t *testing.T, path string) traceDoc {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	return doc
}

// TestTraceNestedSpans runs a small evaluation with -trace and checks the
// exported span tree: engine.run encloses engine.job, which encloses
// bounds.compute, which carries the kernel build/reuse markers.
func TestTraceNestedSpans(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "run.json")
	cmd := exec.Command(os.Args[0], "-table", "1", "-scale", "0.1", "-trace", trace)
	cmd.Env = append(os.Environ(), reexecEnv+"=1")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("sbeval: %v\n%s", err, out)
	}
	doc := readTrace(t, trace)

	spanName := map[uint64]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Args.Span != 0 {
			spanName[e.Args.Span] = e.Name
		}
	}
	// For each child kind, some instance must have a parent of the
	// expected enclosing kind.
	wantNesting := map[string]string{
		"engine.job":     "engine.run",
		"engine.sched":   "engine.job",
		"bounds.compute": "engine.job",
		"bounds.CP":      "bounds.compute",
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Args.Parent == 0 {
			continue
		}
		if spanName[e.Args.Parent] == wantNesting[e.Name] {
			seen[e.Name] = true
		}
	}
	for child, parent := range wantNesting {
		if !seen[child] {
			t.Errorf("no %s span nested under %s", child, parent)
		}
	}
	kernel := false
	for _, e := range doc.TraceEvents {
		if e.Name == "bounds.kernel" && e.Ph == "i" && spanName[e.Args.Parent] == "bounds.compute" {
			kernel = true
			break
		}
	}
	if !kernel {
		t.Error("no bounds.kernel instant parented to a bounds.compute span")
	}
}

// TestInterruptFlushesTrace interrupts a long evaluation after it has
// started and asserts the regression fixed in cliutil: the SIGINT exit
// path (exit 130) must still run the trace-writer teardown, leaving a
// complete, parseable trace-event file and a metrics snapshot.
func TestInterruptFlushesTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.json")
	metrics := filepath.Join(dir, "metrics.json")
	cmd := exec.Command(os.Args[0], "-all", "-trace", trace, "-metrics", metrics)
	cmd.Env = append(os.Environ(), reexecEnv+"=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the corpus banner so the interrupt lands mid-evaluation,
	// then let a few jobs complete before pulling the plug.
	sc := bufio.NewScanner(stderr)
	if !sc.Scan() || !strings.Contains(sc.Text(), "corpus") {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected first stderr line: %q", sc.Text())
	}
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	go func() {
		for sc.Scan() { // drain so the child never blocks on stderr
		}
	}()
	err = cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 130 {
		t.Fatalf("after SIGINT: err = %v, want exit status 130", err)
	}

	doc := readTrace(t, trace)
	if len(doc.TraceEvents) < 4 {
		t.Errorf("interrupted trace holds %d events, want at least the metadata", len(doc.TraceEvents))
	}
	mraw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics snapshot missing after SIGINT: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(mraw, &m); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
}
