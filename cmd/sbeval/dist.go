package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"balance/internal/dist"
	"balance/internal/engine"
	"balance/internal/eval"
	"balance/internal/resilience"
	"balance/internal/sbfile"
	"balance/internal/telemetry"
)

// distUnits shards the runner's corpus into content-addressed units:
// one per (superblock, machine), keyed exactly as the single-process
// checkpoint would key it.
func distUnits(r *eval.Runner) ([]dist.Unit, dist.EvalSpec, error) {
	if err := r.Err(); err != nil {
		return nil, dist.EvalSpec{}, err
	}
	spec := dist.EvalSpec{Bounds: r.BoundOptions(), Best: true, Budget: r.Budget()}
	jobs := r.Jobs()
	units := make([]dist.Unit, 0, len(jobs)*len(r.Cfg.Machines))
	for _, m := range r.Cfg.Machines {
		for _, job := range jobs {
			key, err := engine.EvalKey(job.SB, m, spec.Bounds, spec.Schedulers, spec.Best, spec.Budget)
			if err != nil {
				return nil, spec, err
			}
			var buf strings.Builder
			if err := sbfile.Write(&buf, job.SB); err != nil {
				return nil, spec, fmt.Errorf("encode %s: %w", job.SB.Name, err)
			}
			units = append(units, dist.Unit{Key: key, Benchmark: job.Benchmark, Machine: m.Name, SB: buf.String()})
		}
	}
	return units, spec, nil
}

// serveDist runs the coordinator until the corpus is evaluated (or ctx
// is cancelled), then drains the HTTP server. On return the journal
// holds every completed unit, so the caller's table rendering resumes
// from it instead of recomputing.
func serveDist(ctx context.Context, r *eval.Runner, journal *resilience.Checkpoint, addr string, ttl time.Duration, batch int) error {
	units, spec, err := distUnits(r)
	if err != nil {
		return err
	}
	// The process-root span parents every per-unit dist.unit span, so a
	// merged timeline hangs the whole corpus run off one covering span.
	tctx := obs.Context(ctx)
	coord, err := dist.NewCoordinator(dist.Config{
		Spec:     spec,
		Units:    units,
		Journal:  journal,
		LeaseTTL: ttl,
		MaxBatch: batch,
		TraceCtx: tctx,
		TraceID:  telemetry.SpanFromContext(tctx).Trace,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-serve: %w", err)
	}
	hs := &http.Server{Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "sbeval: coordinating %d units on http://%s (lease %v, batch %d)\n",
		len(units), ln.Addr(), ttl, batch)
	if st := coord.Snapshot(); st.Resumed > 0 {
		fmt.Fprintf(os.Stderr, "sbeval: %d units already in journal; %d to compute\n", st.Resumed, st.Pending)
	}
	obs.SetSnapshot(coord.MergedSnapshot)
	// The server stays up through table rendering and comes down on the
	// exit path: workers polling for more work keep getting clean "done"
	// answers instead of connection-refused while this process renders.
	obs.OnExit(func() error {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx) //nolint:errcheck // drain is best-effort; the journal is already flushed
		select {
		case <-serveErr: // Serve returned ErrServerClosed after Shutdown
		default:
		}
		return nil
	})

	if err := coord.Wait(ctx); err != nil {
		return err
	}
	// Linger until every live worker has been told the corpus is done: a
	// straggler may still be computing a duplicated unit, and exiting now
	// would turn its final report into connection-refused. Workers silent
	// for a full lease TTL forfeited their leases and are not waited for.
	coord.AwaitQuiesce(ctx)
	st := coord.Snapshot()
	fmt.Fprintf(os.Stderr, "sbeval: dist complete: %d done (%d resumed, %d reassigned, %d stolen, %d duplicates, %d failed) across %d worker(s)\n",
		st.Done, st.Resumed, st.Reassigned, st.Stolen, st.Duplicates, st.Failed, st.Workers)
	return nil
}
