package main

// Chaos test for distributed evaluation: the test binary re-execs
// itself as coordinator and workers, SIGKILLs a worker mid-lease and
// the coordinator mid-run, and asserts the corpus still completes with
// output byte-identical to a single-process run — the shipped binary's
// failure story, not a mock's.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"balance/internal/dist"
	"balance/internal/resilience"
	"balance/internal/wire"
)

// corpusArgs pins the corpus for both the reference run and the dist
// run; the outputs must match byte for byte.
var corpusArgs = []string{"-table", "1", "-scale", "0.05", "-machines", "GP2,FS4"}

// chaosProc is one re-exec'd sbeval with captured output.
type chaosProc struct {
	cmd    *exec.Cmd
	stdout bytes.Buffer
	stderr bytes.Buffer
}

func startProc(t *testing.T, args ...string) *chaosProc {
	t.Helper()
	p := &chaosProc{cmd: exec.Command(os.Args[0], args...)}
	p.cmd.Env = append(os.Environ(), reexecEnv+"=1")
	p.cmd.Stdout = &p.stdout
	p.cmd.Stderr = &p.stderr
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return p
}

// kill SIGKILLs the process and reaps it.
func (p *chaosProc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait() //nolint:errcheck // killed on purpose
}

// wait reaps the process within the deadline.
func (p *chaosProc) wait(t *testing.T, name string, timeout time.Duration) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		<-done
		t.Fatalf("%s still running after %v\nstderr:\n%s", name, timeout, p.stderr.String())
		return nil
	}
}

// pollStatus fetches /dist/v1/status until cond holds or the deadline
// passes. Connection errors are expected while the coordinator is down
// and simply retried. Every successful poll also drives the
// coordinator's lazy lease reaping.
func pollStatus(t *testing.T, base string, timeout time.Duration, what string, cond func(dist.Status) bool) dist.Status {
	t.Helper()
	hc := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	var last dist.Status
	for time.Now().Before(deadline) {
		var st dist.Status
		if _, _, err := wire.Get(context.Background(), hc, base+"/dist/v1/status", &st); err == nil {
			last = st
			if cond(st) {
				return st
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; last status %+v", what, last)
	return last
}

func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// TestDistChaosWorkerKillAndCoordinatorRestart is the end-to-end chaos
// acceptance run:
//
//  1. a coordinator and one throttled worker start; the worker is
//     SIGKILL'd while holding a lease,
//  2. status polling drives lease expiry — the dead worker's units are
//     reassigned to the pending queue,
//  3. two fresh workers make progress, then the coordinator itself is
//     SIGKILL'd mid-run and restarted on the same journal and port
//     while the workers ride out the outage on retry backoff,
//  4. the corpus completes: stdout is byte-identical to a
//     single-process run, the journal holds each unit exactly once,
//     and the meta record shows the resume recomputed only unfinished
//     leases.
func TestDistChaosWorkerKillAndCoordinatorRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test spawns subprocesses and waits out lease TTLs")
	}

	// Reference: the same corpus evaluated in one process.
	ref := exec.Command(os.Args[0], corpusArgs...)
	ref.Env = append(os.Environ(), reexecEnv+"=1")
	var refOut, refErr bytes.Buffer
	ref.Stdout, ref.Stderr = &refOut, &refErr
	if err := ref.Run(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, refErr.String())
	}

	port := freePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	base := "http://" + addr
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	const leaseTTL = 1500 * time.Millisecond

	coordArgs := append(append([]string{}, corpusArgs...),
		"-serve", addr, "-checkpoint", journal,
		"-dist-lease-ttl", leaseTTL.String(), "-dist-batch", "8")
	workerArgs := func(id, throttle string) []string {
		return []string{"-worker", base, "-dist-id", id, "-dist-throttle", throttle}
	}

	coord1 := startProc(t, coordArgs...)
	defer coord1.kill() // no-op once reaped

	// Phase 1: one throttled worker makes some progress, then dies by
	// SIGKILL while provably holding a lease. The batch pause (8 units x
	// 25ms) dwarfs the instant between observing Leased > 0 and the
	// kill, but re-arm with a fresh victim in the unlucky case where the
	// kill landed between batches.
	var killed bool
	for attempt := 0; attempt < 3 && !killed; attempt++ {
		victim := startProc(t, workerArgs(fmt.Sprintf("victim-%d", attempt), "25ms")...)
		pollStatus(t, base, 30*time.Second, "worker holding a lease with progress",
			func(st dist.Status) bool { return st.Leased > 0 && st.Done >= 8 })
		victim.kill()
		st := pollStatus(t, base, time.Second, "post-kill status", func(dist.Status) bool { return true })
		killed = st.Leased > 0
	}
	if !killed {
		t.Fatal("victim worker never died holding a lease")
	}

	// Phase 2: with no worker alive, only lease expiry can move these
	// units; the status polls drive the coordinator's lazy reap.
	pollStatus(t, base, 3*leaseTTL+5*time.Second, "expired leases to be reassigned",
		func(st dist.Status) bool { return st.Reassigned >= 1 })

	// Phase 3: two fresh workers drain the corpus; once they have made
	// some progress past the reassignment, the coordinator is SIGKILL'd
	// and restarted on the same journal and port. The workers see
	// connection-refused and ride the outage out on their retry policy.
	resumeFloor := pollStatus(t, base, time.Second, "pre-worker status", func(dist.Status) bool { return true })
	w1 := startProc(t, workerArgs("w1", "20ms")...)
	w2 := startProc(t, workerArgs("w2", "20ms")...)
	pollStatus(t, base, 60*time.Second, "progress after reassignment",
		func(st dist.Status) bool { return st.Done >= resumeFloor.Done+8 })
	coord1.kill()

	coord2 := startProc(t, coordArgs...)
	defer coord2.kill()
	if err := coord2.wait(t, "restarted coordinator", 120*time.Second); err != nil {
		t.Fatalf("restarted coordinator: %v\nstderr:\n%s", err, coord2.stderr.String())
	}
	if err := w1.wait(t, "w1", 30*time.Second); err != nil {
		t.Fatalf("w1: %v\nstderr:\n%s", err, w1.stderr.String())
	}
	if err := w2.wait(t, "w2", 30*time.Second); err != nil {
		t.Fatalf("w2: %v\nstderr:\n%s", err, w2.stderr.String())
	}

	// The merged run must be indistinguishable from the single-process
	// reference on stdout, byte for byte.
	if got, want := coord2.stdout.String(), refOut.String(); got != want {
		t.Errorf("dist output differs from single-process run\n--- dist ---\n%s\n--- single ---\n%s", got, want)
	}
	if !strings.Contains(coord2.stderr.String(), "already in journal") {
		t.Errorf("restarted coordinator did not report resuming from the journal\nstderr:\n%s", coord2.stderr.String())
	}
	for _, w := range []*chaosProc{w1, w2} {
		if !strings.Contains(w.stderr.String(), "worker done") {
			t.Errorf("worker did not report a clean finish\nstderr:\n%s", w.stderr.String())
		}
	}

	// The journal holds each unit exactly once (the exactly-once merge)
	// plus the meta record, and the meta counters tell the chaos story:
	// everything done, nothing failed, at least one lease reassigned,
	// and the restart resumed the flushed units rather than recomputing
	// the corpus.
	ck, err := resilience.OpenCheckpoint(journal)
	if err != nil {
		t.Fatal(err)
	}
	var meta dist.Status
	if !ck.Lookup(dist.MetaKey, &meta) {
		t.Fatal("journal has no dist meta record")
	}
	records := 0
	ck.Range(func(key string, _ json.RawMessage) bool {
		if key != dist.MetaKey {
			records++
		}
		return true
	})
	if meta.Total == 0 || records != meta.Total {
		t.Errorf("journal holds %d unit records, want exactly Total=%d", records, meta.Total)
	}
	if meta.Done != meta.Total || meta.Failed != 0 || !meta.Complete {
		t.Errorf("meta shows an incomplete corpus: %+v", meta)
	}
	if meta.Reassigned < 1 {
		t.Errorf("meta.Reassigned = %d, want >= 1 (carried across the coordinator restart)", meta.Reassigned)
	}
	if meta.Resumed < 8 || meta.Resumed >= meta.Total {
		t.Errorf("meta.Resumed = %d, want in [8, %d): the restart should recompute only unfinished leases", meta.Resumed, meta.Total)
	}
}
