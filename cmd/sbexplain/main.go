// Command sbexplain schedules one superblock with the Balance heuristic
// and renders the decision-explain channel: an annotated per-cycle table
// showing, for every scheduling decision, the dynamic branch bounds, the
// compatible-branch selection, the pairwise tradeoffs that shaped it,
// and the final pick — followed by a weighted-cost attribution table
// tying each branch's delay beyond its bound back to the decisions.
//
// Usage:
//
//	sbexplain -figure 1 [-p 0.25]         # a worked example (Figures 1-4, 6)
//	sbexplain [-machine GP2] [-index 0] [file.sb]
//	sbexplain -json ...                   # raw Decision records, one JSON object per line
//
// The -update / -no-tradeoff flags select the Table-7 ablation variants;
// -v additionally prints every branch's NeedEach/NeedOne sets and ERC
// windows at each decision. -metrics and -trace behave as in the other
// tools (a .json trace opens in ui.perfetto.dev).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"balance"
	"balance/internal/bounds"
	"balance/internal/cliutil"
	"balance/internal/core"
	"balance/internal/figures"
	"balance/internal/model"
	"balance/internal/sched"
)

var obs = cliutil.Flags("sbexplain")

func main() {
	machine := flag.String("machine", "GP2", "machine configuration (GP1,GP2,GP4,FS4,FS6,FS8)")
	figure := flag.Int("figure", 0, "explain a worked example (1-4, 6) instead of reading a .sb file")
	sideProb := flag.Float64("p", 0.25, "side-exit probability for worked examples")
	index := flag.Int("index", 0, "superblock index within the .sb input")
	update := flag.String("update", "per-op", "dynamic-bound update policy: per-op, light, cycle")
	noTradeoff := flag.Bool("no-tradeoff", false, "disable the pairwise-bound tradeoffs (Table-7 ablation)")
	jsonOut := flag.Bool("json", false, "emit the raw decision records as JSON lines instead of the table")
	verbose := flag.Bool("v", false, "print each branch's need sets and ERC windows at every decision")
	flag.Parse()

	if err := obs.Start(); err != nil {
		obs.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m, err := balance.MachineByName(*machine)
	if err != nil {
		fatal(err)
	}
	sb, err := pickSuperblock(*figure, *sideProb, *index)
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Tradeoff = !*noTradeoff
	switch *update {
	case "per-op":
		cfg.Update = core.UpdatePerOp
	case "light":
		cfg.Update = core.UpdateLight
	case "cycle":
		cfg.Update = core.UpdatePerCycle
	default:
		fatal(fmt.Errorf("unknown -update policy %q (per-op, light, cycle)", *update))
	}

	p := core.NewPicker(sb, m, cfg)
	var decs []*core.Decision
	p.Explain(func(d *core.Decision) { decs = append(decs, d) })
	s, stats, err := sched.RunCtx(ctx, sb, m, p)
	if err != nil {
		fatal(err)
	}
	if err := balance.Verify(sb, m, s); err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range decs {
			if err := enc.Encode(d); err != nil {
				fatal(err)
			}
		}
		obs.Close()
		return
	}

	set := bounds.Compute(sb, m, bounds.Options{})
	render(os.Stdout, sb, m, set, decs, s, stats, *verbose)
	obs.Close()
}

// pickSuperblock resolves the input: a worked example or a .sb file
// (stdin when no file argument is given).
func pickSuperblock(figure int, sideProb float64, index int) (*model.Superblock, error) {
	if figure != 0 {
		switch figure {
		case 1:
			return figures.Figure1(sideProb), nil
		case 2:
			return figures.Figure2(sideProb), nil
		case 3:
			return figures.Figure3(sideProb), nil
		case 4:
			return figures.Figure4(sideProb), nil
		case 6:
			return figures.Figure6(), nil
		default:
			return nil, fmt.Errorf("no worked example for figure %d (have 1-4, 6)", figure)
		}
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	sbs, err := balance.ReadSuperblocks(in)
	if err != nil {
		return nil, err
	}
	if index < 0 || index >= len(sbs) {
		return nil, fmt.Errorf("-index %d out of range (input has %d superblocks)", index, len(sbs))
	}
	return sbs[index], nil
}

// render prints the annotated per-cycle decision table and the final
// weighted-cost attribution.
func render(w io.Writer, sb *model.Superblock, m *model.Machine, set *bounds.Set,
	decs []*core.Decision, s *sched.Schedule, stats sched.Stats, verbose bool) {
	fmt.Fprintf(w, "%s (%d ops, %d exits) on %s — Balance decision explain\n",
		sb.Name, sb.G.NumOps(), sb.NumBranches(), m.Name)
	fmt.Fprintf(w, "branches:")
	for i, b := range sb.Branches {
		fmt.Fprintf(w, "  b%d=op%d p=%.4g", i, b, sb.Prob[i])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "static per-branch issue bounds: CP=%v Hu=%v RJ=%v LC=%v\n",
		set.CP, set.Hu, set.RJ, set.LC)
	for _, pr := range set.Pairs {
		if pr.NoTradeoff {
			fmt.Fprintf(w, "pair (b%d,b%d): no tradeoff\n", pr.I, pr.J)
		} else {
			fmt.Fprintf(w, "pair (b%d,b%d): optimum t_%d=%d t_%d=%d (weighted %.4f; individual bounds %d, %d)\n",
				pr.I, pr.J, pr.I, pr.Bi, pr.J, pr.Bj, pr.Value, pr.Ei, pr.Ej)
		}
	}
	fmt.Fprintln(w)

	lastCycle := -1
	for _, d := range decs {
		if d.Cycle != lastCycle {
			fmt.Fprintf(w, "cycle %d\n", d.Cycle)
			lastCycle = d.Cycle
		}
		fmt.Fprintf(w, "  #%-3d %-18s", d.Seq, fmt.Sprintf("cands=%v", d.Candidates))
		if len(d.Outcomes) > 0 {
			fmt.Fprintf(w, " sel=[%s]", outcomeCodes(d.Outcomes))
			fmt.Fprintf(w, " E=%s", branchEs(d.Branches))
			if len(d.TakeEach) > 0 {
				fmt.Fprintf(w, " each=%v", d.TakeEach)
			}
			if len(d.TakeOne) > 0 {
				fmt.Fprintf(w, " one=%v", d.TakeOne)
			}
			fmt.Fprintf(w, " rank=%.3f", d.Rank)
		}
		if d.Picked < 0 {
			fmt.Fprintf(w, " -> advance\n")
		} else if d.HelpedProb > 0 {
			fmt.Fprintf(w, " -> pick %d (helps %.4g: %s)\n", d.Picked, d.HelpedProb, branchList(d.HelpedBranches))
		} else {
			fmt.Fprintf(w, " -> pick %d\n", d.Picked)
		}
		for _, t := range d.Tradeoffs {
			fmt.Fprintf(w, "       tradeoff(pass %d): delay of b%d blessed for b%d — pair optimum B=%d > individual E=%d (value %.4f)\n",
				t.Pass, t.Delayed, t.Selected, t.OptB, t.IndivE, t.PairValue)
		}
		for _, sw := range d.Swaps {
			kept := "rejected"
			if sw.Kept {
				kept = "kept"
			}
			fmt.Fprintf(w, "       swap(iter %d): b%d<->b%d rank %.3f -> %.3f (%s)\n",
				sw.Iter, sw.Selected, sw.Delayed, sw.RankBefore, sw.RankAfter, kept)
		}
		if verbose {
			for _, b := range d.Branches {
				if b.Done {
					fmt.Fprintf(w, "       b%d done\n", b.Branch)
					continue
				}
				fmt.Fprintf(w, "       b%d p=%.4g E=%d needEach=%v", b.Branch, b.Prob, b.E, b.NeedEach)
				if b.NeedOne != nil {
					fmt.Fprintf(w, " needOne=%v(kind %d)", b.NeedOne, b.NeedOneKind)
				}
				if len(b.ERCs) > 0 {
					parts := make([]string, len(b.ERCs))
					for i, e := range b.ERCs {
						parts[i] = fmt.Sprintf("k%d@%d %d/%d", e.Kind, e.C, e.Need, e.Avail)
					}
					fmt.Fprintf(w, " ercs=[%s]", strings.Join(parts, " "))
				}
				fmt.Fprintln(w)
			}
		}
	}

	// Attribution: each branch's issue cycle vs its tightest static
	// bound, weighted by exit probability — the per-branch decomposition
	// of the schedule's weighted cost.
	cycles := sched.BranchCycles(sb, s)
	cost := sched.Cost(sb, s)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "branch  prob     bound  issued  delta  weighted-delta\n")
	floor := 0.0
	for i := range sb.Branches {
		bound := maxInt(set.CP[i], set.Hu[i], set.RJ[i], set.LC[i])
		delta := cycles[i] - bound
		floor += sb.Prob[i] * float64(bound+model.BranchLatency)
		fmt.Fprintf(w, "b%-5d  %-7.4g  %-5d  %-6d  %-5d  %+.4f\n",
			i, sb.Prob[i], bound, cycles[i], delta, sb.Prob[i]*float64(delta))
	}
	fmt.Fprintf(w, "\ncost %.4f  per-branch floor %.4f  gap %+.4f  (%d decisions)\n",
		cost, floor, cost-floor, stats.Decisions)
}

// outcomeCodes compacts outcome names: S selected, D delayed, D* blessed
// delay, . ignored.
func outcomeCodes(outcomes []string) string {
	codes := make([]string, len(outcomes))
	for i, o := range outcomes {
		switch o {
		case "selected":
			codes[i] = "S"
		case "delayed":
			codes[i] = "D"
		case "delayed-ok":
			codes[i] = "D*"
		default:
			codes[i] = "."
		}
	}
	return strings.Join(codes, " ")
}

// branchEs renders each live branch's dynamic early bound ("-" once the
// branch has issued).
func branchEs(branches []core.BranchSnap) string {
	parts := make([]string, len(branches))
	for i, b := range branches {
		if b.Done {
			parts[i] = "-"
		} else {
			parts[i] = fmt.Sprintf("%d", b.E)
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// branchList renders branch indices as "b0+b2".
func branchList(bs []int) string {
	sorted := append([]int(nil), bs...)
	sort.Ints(sorted)
	parts := make([]string, len(sorted))
	for i, b := range sorted {
		parts[i] = fmt.Sprintf("b%d", b)
	}
	return strings.Join(parts, "+")
}

func maxInt(vs ...int) int {
	out := vs[0]
	for _, v := range vs[1:] {
		if v > out {
			out = v
		}
	}
	return out
}

// fatal flushes telemetry and exits: 130 after cancellation (SIGINT),
// 1 on real failures.
func fatal(err error) { obs.Fatal(err) }
