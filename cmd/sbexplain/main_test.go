package main

// Golden tests for the sbexplain CLI against the paper's worked examples
// (Figures 1-3): the test binary re-execs itself as the tool, so the
// real flag parsing, explain recording, and rendering run end to end.
// The goldens lock the full annotated table — regenerate with
//
//	go run ./cmd/sbexplain -figure N > cmd/sbexplain/testdata/figureN.golden

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const reexecEnv = "SBEXPLAIN_RUN_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(reexecEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runTool re-execs the test binary as sbexplain and returns its stdout.
func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), reexecEnv+"=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("sbexplain %v: %v\nstderr:\n%s", args, err, errb.String())
	}
	return out.String()
}

func TestFigureGoldens(t *testing.T) {
	for _, fig := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("figure%d", fig), func(t *testing.T) {
			got := runTool(t, "-figure", fmt.Sprint(fig))
			want, err := os.ReadFile(filepath.Join("testdata", fmt.Sprintf("figure%d.golden", fig)))
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("figure %d output drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", fig, got, want)
			}
		})
	}
}

// TestWorkedExampleOptima pins the EXPERIMENTS.md pick rationales
// independently of golden formatting: Balance reaches the published
// optima, with zero weighted delta against every branch's bound.
func TestWorkedExampleOptima(t *testing.T) {
	cases := []struct {
		fig    int
		issued [2]int // optimum branch issue cycles from EXPERIMENTS.md
		cost   string
	}{
		{1, [2]int{2, 8}, "cost 7.5000"},
		{2, [2]int{2, 3}, "cost 3.7500"},
		{3, [2]int{2, 5}, "cost 5.2500"},
	}
	for _, c := range cases {
		out := runTool(t, "-figure", fmt.Sprint(c.fig))
		for bi, cyc := range c.issued {
			line := fmt.Sprintf("b%d", bi)
			found := false
			for _, l := range strings.Split(out, "\n") {
				if strings.HasPrefix(l, line+" ") || strings.HasPrefix(l, line+"\t") {
					if !strings.Contains(l, fmt.Sprintf(" %d ", cyc)) {
						t.Errorf("figure %d: branch %d not issued at optimum %d:\n%s", c.fig, bi, cyc, l)
					}
					if !strings.Contains(l, "+0.0000") {
						t.Errorf("figure %d: branch %d has nonzero weighted delta:\n%s", c.fig, bi, l)
					}
					found = true
				}
			}
			if !found {
				t.Errorf("figure %d: no attribution row for branch %d:\n%s", c.fig, bi, out)
			}
		}
		if !strings.Contains(out, c.cost) {
			t.Errorf("figure %d: expected %q in output:\n%s", c.fig, c.cost, out)
		}
	}
}

// TestFigure4Tradeoff locks the Observation-3 rationale: past the
// crossover probability the pair optimum itself delays the final exit,
// and the explain channel attributes the blessing to the pairwise bound.
func TestFigure4Tradeoff(t *testing.T) {
	out := runTool(t, "-figure", "4", "-p", "0.26")
	for _, want := range []string{
		"pair (b0,b1): optimum t_0=2 t_1=9",
		"tradeoff(pass 1): delay of b1 blessed for b0",
		"swap(iter 0): b1<->b0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 4 -p 0.26 output missing %q:\n%s", want, out)
		}
	}
}

// TestJSONRecords validates the versioned explain record schema: one
// JSON object per decision, each stamped with the schema version, with
// decision sequence numbers dense from 0.
func TestJSONRecords(t *testing.T) {
	out := runTool(t, "-figure", "2", "-json")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("expected several decision records, got %d lines", len(lines))
	}
	sawPick := false
	for i, line := range lines {
		var d struct {
			V      int `json:"v"`
			Seq    int `json:"seq"`
			Cycle  int `json:"cycle"`
			Picked int `json:"picked"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if d.V != 1 {
			t.Errorf("line %d: schema version = %d, want 1", i, d.V)
		}
		if d.Seq != i {
			t.Errorf("line %d: seq = %d, want dense numbering", i, d.Seq)
		}
		if d.Picked >= 0 {
			sawPick = true
		}
	}
	if !sawPick {
		t.Error("no record picked an operation")
	}
}
