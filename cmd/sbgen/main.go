// Command sbgen generates synthetic SPECint95-like superblock corpora in
// the .sb text format.
//
// Usage:
//
//	sbgen [-bench gcc,go|all] [-seed N] [-scale F] [-o file]
//
// With no -o the corpus is written to stdout. -metrics writes a JSON
// telemetry summary on exit (also after SIGINT, which exits 130); -trace
// streams span events as JSON lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"balance"
	"balance/internal/cliutil"
)

var obs = cliutil.Flags("sbgen")

func main() {
	bench := flag.String("bench", "all", "comma-separated benchmark names (e.g. gcc,perl) or 'all'")
	seed := flag.Int64("seed", 1999, "generation seed")
	scale := flag.Float64("scale", 1, "corpus scale factor")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if err := obs.Start(); err != nil {
		obs.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	want := map[string]bool{}
	all := *bench == "all" || *bench == ""
	for _, b := range strings.Split(*bench, ",") {
		want[strings.TrimSpace(b)] = true
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	total := 0
	for _, p := range balance.SPECint95Profiles() {
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		short := p.Name[strings.IndexByte(p.Name, '.')+1:]
		if !all && !want[p.Name] && !want[short] {
			continue
		}
		sbs := balance.GenerateBenchmark(p, *seed, *scale)
		if err := balance.WriteSuperblocks(w, sbs...); err != nil {
			fatal(err)
		}
		total += len(sbs)
	}
	if total == 0 {
		fatal(fmt.Errorf("no benchmarks matched %q", *bench))
	}
	fmt.Fprintf(os.Stderr, "sbgen: wrote %d superblocks\n", total)
	obs.Close()
}

// fatal flushes telemetry and exits: 130 after cancellation (SIGINT),
// 1 on real failures.
func fatal(err error) { obs.Fatal(err) }
