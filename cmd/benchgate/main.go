// Command benchgate compares a `go test -json` benchmark log against a
// committed baseline log and fails when performance regresses.
//
// Both inputs are the JSON event streams `go test -json -bench ...` emits
// (the format of BENCH_baseline.json). Benchmark result lines may be split
// across output events, so each file's output is reassembled before
// parsing. When a file holds several samples of one benchmark (-count=N),
// the median ns/op is used. The gate computes the geometric mean of the
// current/baseline ns/op ratios over the benchmarks common to both files
// and exits non-zero when it exceeds the threshold.
//
// The gate is a regression tripwire, not a precision benchstat replacement:
// run the current side with -count=6 or more so the median damps scheduler
// noise, and keep the threshold loose (the default fails only on a >10%
// geomean slowdown).
//
//	benchgate -baseline BENCH_baseline.json -current bench.json [-threshold 1.10] [-filter regex]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strings"
)

// event is the subset of the go test -json event schema benchgate reads.
type event struct {
	Output string `json:"Output"`
}

// benchLine matches one benchmark result line. The -N suffix on the name is
// GOMAXPROCS decoration and is stripped so runs from different machines
// compare.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseLog extracts per-benchmark ns/op samples from a go test -json stream.
func parseLog(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		text.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string][]float64{}
	for _, m := range benchLine.FindAllStringSubmatch(text.String(), -1) {
		var ns float64
		if _, err := fmt.Sscanf(m[2], "%g", &ns); err != nil {
			return nil, fmt.Errorf("%s: bad ns/op %q: %w", path, m[2], err)
		}
		out[m[1]] = append(out[m[1]], ns)
	}
	return out, nil
}

// median returns the median of a non-empty sample set.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func run() error {
	baseline := flag.String("baseline", "BENCH_baseline.json", "baseline go test -json benchmark log")
	current := flag.String("current", "", "current go test -json benchmark log")
	threshold := flag.Float64("threshold", 1.10, "maximum allowed geomean current/baseline ns/op ratio")
	filter := flag.String("filter", "", "optional regexp restricting which benchmarks are gated")
	flag.Parse()
	if *current == "" {
		return fmt.Errorf("missing -current")
	}
	var keep *regexp.Regexp
	if *filter != "" {
		var err error
		if keep, err = regexp.Compile(*filter); err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
	}

	base, err := parseLog(*baseline)
	if err != nil {
		return err
	}
	cur, err := parseLog(*current)
	if err != nil {
		return err
	}

	var names []string
	for name := range base {
		if _, ok := cur[name]; ok && (keep == nil || keep.MatchString(name)) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", *baseline, *current)
	}
	sort.Strings(names)

	logSum := 0.0
	for _, name := range names {
		b, c := median(base[name]), median(cur[name])
		ratio := c / b
		logSum += math.Log(ratio)
		fmt.Printf("%-52s %12.0f -> %12.0f ns/op  %5.2fx\n", name, b, c, ratio)
	}
	geomean := math.Exp(logSum / float64(len(names)))
	fmt.Printf("geomean current/baseline over %d benchmarks: %.3f (threshold %.3f)\n", len(names), geomean, *threshold)
	if geomean > *threshold {
		return fmt.Errorf("geomean ns/op regression %.3f exceeds threshold %.3f", geomean, *threshold)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
