package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeLog emits a synthetic go test -json stream. The second benchmark's
// result line is split across output events, mimicking what the test runner
// actually produces.
func writeLog(t *testing.T, name string, fooNs, barNs []string) string {
	t.Helper()
	var body string
	for _, ns := range fooNs {
		body += `{"Action":"output","Output":"BenchmarkFoo-8   \t       1\t` + ns + ` ns/op\n"}` + "\n"
	}
	for _, ns := range barNs {
		body += `{"Action":"output","Output":"BenchmarkBar/sub-8   \t"}` + "\n"
		body += `{"Action":"output","Output":"       1\t` + ns + ` ns/op\t  12 B/op\n"}` + "\n"
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseLog(t *testing.T) {
	path := writeLog(t, "log.json", []string{"100", "300", "200"}, []string{"50"})
	got, err := parseLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if m := median(got["BenchmarkFoo"]); m != 200 {
		t.Fatalf("BenchmarkFoo median = %v, want 200 (samples %v)", m, got["BenchmarkFoo"])
	}
	if m := median(got["BenchmarkBar/sub"]); m != 50 {
		t.Fatalf("BenchmarkBar/sub median = %v, want 50 (samples %v)", m, got["BenchmarkBar/sub"])
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]float64{400, 100, 200, 300}); m != 250 {
		t.Fatalf("median = %v, want 250", m)
	}
}
