package main

// Smoke tests for the sbserve daemon. The test binary re-execs itself as
// the tool (TestMain dispatches on an env var), so flag parsing, the
// listen/serve path, and the SIGINT drain sequence run end to end.

import (
	"bufio"
	"context"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"balance/internal/sbfile"
	"balance/internal/testutil"
	"balance/internal/wire"
)

const reexecEnv = "SBSERVE_RUN_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(reexecEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestServeAndDrain boots the daemon on a free port, performs one request
// per endpoint, then sends SIGINT and requires a clean exit (status 0)
// with the drain message on stderr.
func TestServeAndDrain(t *testing.T) {
	metrics := t.TempDir() + "/metrics.json"
	cmd := exec.Command(os.Args[0], "-addr", "localhost:0", "-workers", "2", "-metrics", metrics)
	cmd.Env = append(os.Environ(), reexecEnv+"=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // cleanup on test failure

	// The daemon announces its resolved address on stderr; everything it
	// prints afterwards is collected for the drain assertion.
	sc := bufio.NewScanner(stderr)
	var base string
	for sc.Scan() {
		if _, addr, found := strings.Cut(sc.Text(), "listening on "); found {
			base = addr
			break
		}
	}
	if base == "" {
		t.Fatalf("no listen line on stderr (scan err %v)", sc.Err())
	}
	rest := make(chan string, 1)
	go func() {
		var b strings.Builder
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteString("\n")
		}
		rest <- b.String()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	hc := &http.Client{}

	var h wire.Health
	if code, _, err := wire.Get(ctx, hc, base+"/healthz", &h); err != nil || code != 200 || h.Status != "ok" {
		t.Fatalf("healthz: code=%d health=%+v err=%v", code, h, err)
	}

	var buf strings.Builder
	if err := sbfile.Write(&buf, testutil.RandomSuperblock(rand.New(rand.NewSource(1)), 10)); err != nil {
		t.Fatal(err)
	}
	var resp wire.ScheduleResponse
	code, _, err := wire.Post(ctx, hc, base+"/v1/schedule", &wire.ScheduleRequest{
		Superblock: buf.String(), Machine: "GP2", DeadlineMS: 10000,
	}, &resp)
	if err != nil || code != 200 || len(resp.Costs) == 0 {
		t.Fatalf("schedule: code=%d resp=%+v err=%v", code, resp, err)
	}
	if code, _, _ := wire.Get(ctx, hc, base+"/debug/vars", nil); code != 200 {
		t.Errorf("/debug/vars: code=%d", code)
	}

	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	// Drain stderr to EOF before Wait: Wait closes the pipe once the
	// process exits, and racing it could truncate the final drain lines.
	tail := <-rest
	if err := cmd.Wait(); err != nil {
		t.Fatalf("SIGINT exit: %v (want status 0)", err)
	}
	if !strings.Contains(tail, "draining") || !strings.Contains(tail, "result cache") {
		t.Errorf("drain stderr missing drain/cache lines:\n%s", tail)
	}
	if data, err := os.ReadFile(metrics); err != nil || !strings.Contains(string(data), "service.requests") {
		t.Errorf("metrics snapshot after SIGINT: err=%v, has service.requests=%v", err, strings.Contains(string(data), "service.requests"))
	}
}
