// Command sbserve runs the scheduling pipeline as a long-running HTTP
// service: POST .sb text, get bounds, schedule costs, or explained
// decisions back as JSON.
//
// Usage:
//
//	sbserve                          # serve on localhost:8080
//	sbserve -addr :9000 -workers 8   # wider compute pool
//	sbserve -max-deadline 5s         # clamp per-request deadlines
//	sbserve -metrics out.json -trace trace.json
//	sbserve -slo "p95<25ms,err<1%"   # track burn rates in /healthz and /metrics
//	sbserve -access-log access.log -access-sample 0.05
//	sbserve -trace server.jsonl -profile-dir profiles/
//
// Requests carrying an SB-Trace header join the caller's trace: the
// service.request span parents under the client's span, the same trace
// ID lands in the access log and latency exemplars, and responses carry
// SB-Time so sbtrace can clock-align the client's trace file with this
// one. -profile-dir turns on continuous profiling — rotating CPU/heap
// windows whose samples are labeled with endpoint and trace ID.
//
// Endpoints: POST /v1/schedule, /v1/bounds, /v1/explain (see internal/wire
// for the request vocabulary), GET /healthz and /metrics (Prometheus), and
// /debug/vars + /debug/pprof/ on the same port. Requests beyond the
// admission window are rejected with 429 and a Retry-After estimate.
// SIGINT/SIGTERM stop admission, drain in-flight requests, flush
// telemetry, and exit 0. Watch a running server with cmd/sbtop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"balance/internal/cliutil"
	"balance/internal/service"
)

var obs = cliutil.Flags("sbserve")

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address (host:port; :0 picks a free port)")
	workers := flag.Int("workers", 0, "concurrent evaluations (default GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admitted-but-waiting requests beyond -workers (default 4x workers)")
	cacheCap := flag.Int("cache", 0, "result cache capacity in entries (default engine default)")
	defaultDeadline := flag.Duration("default-deadline", 0, "deadline for requests that carry none (0 = unlimited)")
	maxDeadline := flag.Duration("max-deadline", 0, "clamp applied to every request deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	sloSpec := flag.String("slo", "", "service objectives tracked over the rolling window (e.g. \"p95<25ms,err<1%\")")
	accessLog := flag.String("access-log", "", "write sampled JSON access logs to `file` (- for stderr)")
	accessSample := flag.Float64("access-sample", 1, "fraction of healthy requests kept in the access log (errors and slow-tail requests are always kept)")
	flag.Parse()

	slo, err := service.ParseSLO(*sloSpec)
	if err != nil {
		obs.Fatal(fmt.Errorf("-slo: %w", err))
	}

	// The drain sequence registers as the first exit hook so every exit
	// path — including SIGINT routed through obs — finishes in-flight
	// requests before the trace sink closes and the metrics snapshot is
	// written. It is filled in once the server exists.
	var shutdown func() error
	obs.OnExit(func() error {
		if shutdown == nil {
			return nil
		}
		return shutdown()
	})
	if err := obs.Start(); err != nil {
		obs.Fatal(err)
	}

	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheCapacity:    *cacheCap,
		DefaultDeadline:  *defaultDeadline,
		MaxDeadline:      *maxDeadline,
		Debug:            cliutil.DebugHandler(),
		SLO:              slo,
		AccessSampleRate: *accessSample,
	}
	if *accessLog == "-" {
		cfg.AccessLog = os.Stderr
	} else if *accessLog != "" {
		f, err := os.Create(*accessLog)
		if err != nil {
			obs.Fatal(fmt.Errorf("-access-log: %w", err))
		}
		// Closed after the drain hook (hooks run in registration order and
		// the drain was registered first), so every request that finished
		// during shutdown still has its line on disk.
		obs.OnExit(f.Close)
		cfg.AccessLog = f
	}
	srv := service.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		obs.Fatal(fmt.Errorf("-addr: %w", err))
	}
	fmt.Fprintf(os.Stderr, "sbserve: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	shutdown = func() error {
		fmt.Fprintln(os.Stderr, "sbserve: draining")
		// Readiness flips false BEFORE the listener stops: load
		// balancers polling /readyz see 503 and stop routing while the
		// server still answers, instead of discovering the drain as
		// connection errors.
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "sbserve: shutdown: %v\n", err)
		}
		err := srv.Drain(ctx)
		if s := srv.CacheStats(); s.Hits+s.Misses > 0 {
			fmt.Fprintf(os.Stderr, "sbserve: result cache %d hits / %d misses / %d coalesced / %d evicted (%d resident)\n",
				s.Hits, s.Misses, s.Coalesced, s.Evictions, s.Size)
		}
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			obs.Fatal(err)
		}
	case <-ctx.Done():
		stop()
	}
	// Close runs the exit hooks: drain first, then trace teardown and the
	// -metrics snapshot. A clean SIGINT therefore exits 0 with everything
	// flushed.
	obs.Close()
}
