package balance_test

import (
	"fmt"
	"math/rand"

	"balance"
)

// ExampleBuilder shows the construction API: ops in program order, branches
// with exit probabilities, automatic control-edge chaining.
func ExampleBuilder() {
	b := balance.NewBuilder("ex")
	x := b.Int()
	y := b.Int(x)
	b.Branch(0.25, y)
	z := b.Load()
	b.Branch(0, b.Int(z))
	sb := b.MustBuild()
	fmt.Println(sb.G.NumOps(), "ops,", sb.NumBranches(), "exits, probs", sb.Prob)
	// Output: 6 ops, 2 exits, probs [0.25 0.75]
}

// ExampleBalance schedules the Figure-2-style example and prints the branch
// cycles: the side exit at 2 and the final exit at 3, the optimum a pure
// help-based heuristic misses.
func ExampleBalance() {
	b := balance.NewBuilder("obs1")
	o0, o1, o2 := b.Int(), b.Int(), b.Int()
	b.Branch(0.3, o0, o1, o2)
	o4 := b.Int()
	o5 := b.AddOp(balance.Int)
	b.DepLatency(o4, o5, 2)
	b.Branch(0, o5)
	sb := b.MustBuild()

	s, _, err := balance.Balance().Run(sb, balance.GP2())
	if err != nil {
		panic(err)
	}
	fmt.Println("branches at", balance.BranchCycles(sb, s))
	// Output: branches at [2 3]
}

// ExampleComputeBounds prints the lower-bound hierarchy for a small
// resource-constrained superblock.
func ExampleComputeBounds() {
	b := balance.NewBuilder("bounds")
	var deps []int
	for i := 0; i < 6; i++ {
		deps = append(deps, b.Int())
	}
	b.Branch(0, deps...)
	sb := b.MustBuild()

	set := balance.ComputeBounds(sb, balance.GP2(), balance.BoundOptions{})
	fmt.Printf("CP=%d Hu=%d LC=%d\n", set.CP[0], set.Hu[0], set.LC[0])
	// Output: CP=1 Hu=3 LC=3
}

// ExampleOptimal cross-checks a heuristic against the exact optimum.
func ExampleOptimal() {
	b := balance.NewBuilder("tiny")
	o := b.Int()
	b.Branch(0, b.Int(o))
	sb := b.MustBuild()

	_, opt, err := balance.Optimal(sb, balance.GP1(), 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("optimal cost", opt)
	// Output: optimal cost 3
}

// ExampleFormSuperblocks runs the profiled-CFG formation pipeline.
func ExampleFormSuperblocks() {
	g := balance.RandomCFG("demo", rand.New(rand.NewSource(3)), balance.RandomCFGConfig{
		Blocks: 6, OpsPerBlockMax: 3, MemFrac: 0.2, BranchyProb: 0.5, EntryCount: 100,
	})
	sbs, err := balance.FormSuperblocks(g, balance.DefaultFormation())
	if err != nil {
		panic(err)
	}
	fmt.Println(len(sbs) > 0)
	// Output: true
}
