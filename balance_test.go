// Tests of the public facade: everything a downstream user touches must
// work through the balance package alone.
package balance_test

import (
	"bytes"
	"strings"
	"testing"

	"balance"
)

// buildDemo constructs a small two-exit superblock through the public API.
func buildDemo(t *testing.T) *balance.Superblock {
	t.Helper()
	b := balance.NewBuilder("demo")
	x := b.Int()
	y := b.Int(x)
	b.Branch(0.3, y)
	z := b.Load()
	w := b.Int(z, x)
	b.Branch(0, w)
	sb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sb
}

func TestFacadeEndToEnd(t *testing.T) {
	sb := buildDemo(t)
	for _, m := range balance.Machines() {
		set := balance.ComputeBounds(sb, m, balance.BoundOptions{Triplewise: true, TriplewiseExact: true})
		if set.Tightest <= 0 {
			t.Fatalf("%s: no bound computed", m)
		}
		for _, h := range append(balance.Heuristics(), balance.Best()) {
			s, stats, err := h.Run(sb, m)
			if err != nil {
				t.Fatalf("%s on %s: %v", h.Name, m, err)
			}
			if err := balance.Verify(sb, m, s); err != nil {
				t.Fatalf("%s: %v", h.Name, err)
			}
			if c := balance.Cost(sb, s); c < set.Tightest-1e-9 {
				t.Fatalf("%s on %s: cost %v below bound %v", h.Name, m, c, set.Tightest)
			}
			if stats.Decisions == 0 {
				t.Errorf("%s recorded no decisions", h.Name)
			}
		}
		_, opt, err := balance.Optimal(sb, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if opt < set.Tightest-1e-9 {
			t.Fatalf("%s: optimum %v below bound %v", m, opt, set.Tightest)
		}
	}
}

func TestFacadeFileRoundTrip(t *testing.T) {
	sb := buildDemo(t)
	var buf bytes.Buffer
	if err := balance.WriteSuperblocks(&buf, sb); err != nil {
		t.Fatal(err)
	}
	back, err := balance.ReadSuperblocks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].G.NumOps() != sb.G.NumOps() {
		t.Fatal("round trip lost the superblock")
	}
}

func TestFacadeGeneration(t *testing.T) {
	profiles := balance.SPECint95Profiles()
	if len(profiles) != 8 {
		t.Fatalf("got %d profiles", len(profiles))
	}
	suite := balance.GenerateSuite(42, 0.05)
	if suite.NumSuperblocks() == 0 {
		t.Fatal("empty suite")
	}
	for _, sb := range suite.All() {
		if err := sb.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeCustomMachines(t *testing.T) {
	m := balance.NewFS(2, 1, 1, 1)
	if m.IssueWidth() != 5 {
		t.Errorf("width = %d", m.IssueWidth())
	}
	np := balance.GP2().WithOccupancy(balance.FloatMul, 3)
	if np.FullyPipelined() {
		t.Error("occupancy lost")
	}
	sb := buildDemo(t)
	s, _, err := balance.Balance().Run(sb, np)
	if err != nil {
		t.Fatal(err)
	}
	if err := balance.Verify(sb, np, s); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBalanceVariants(t *testing.T) {
	cfg := balance.DefaultBalanceConfig()
	cfg.Tradeoff = false
	cfg.Update = balance.UpdateLight
	h := balance.BalanceWith(cfg)
	if !strings.Contains(h.Name, "Balance") {
		t.Errorf("variant name %q", h.Name)
	}
	sb := buildDemo(t)
	if _, _, err := h.Run(sb, balance.FS6()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBranchLatency(t *testing.T) {
	if balance.BranchLatency != 1 {
		t.Errorf("branch latency = %d", balance.BranchLatency)
	}
}
