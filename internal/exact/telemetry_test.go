package exact

import (
	"bytes"
	"strings"
	"testing"

	"balance/internal/model"
	"balance/internal/telemetry"
)

// countsSample snapshots the solver counters so tests can assert deltas.
type countsSample struct {
	solves, nodes, pruneBound, pruneHorizon, branchesDone, leaves, incumbents int64
}

func sampleCounts() countsSample {
	return countsSample{
		solves:       telSolves.Value(),
		nodes:        telNodes.Value(),
		pruneBound:   telPruneBound.Value(),
		pruneHorizon: telPruneHorizon.Value(),
		branchesDone: telBranchesDone.Value(),
		leaves:       telLeaves.Value(),
		incumbents:   telIncumbents.Value(),
	}
}

// searchSB builds a superblock small enough to solve instantly but with
// enough freedom that the search actually branches and prunes.
func searchSB(t *testing.T) *model.Superblock {
	t.Helper()
	b := model.NewBuilder("tel")
	o0 := b.Int()
	o1 := b.Int()
	o2 := b.Int(o0)
	o3 := b.Int(o1)
	b.Branch(0.4, o2)
	o4 := b.Int(o2, o3)
	b.Branch(0, o4)
	return b.MustBuild()
}

// TestSolveCounterConsistency solves a small superblock and checks the
// counter arithmetic: a solve is counted, nodes are expanded, and every
// terminal outcome (prunes, leaves, greedy completions) is itself an
// expanded node, so no termination counter can exceed the node count.
func TestSolveCounterConsistency(t *testing.T) {
	sb := searchSB(t)
	before := sampleCounts()
	if _, _, err := Optimal(sb, model.GP1(), 0); err != nil {
		t.Fatal(err)
	}
	after := sampleCounts()

	if after.solves-before.solves != 1 {
		t.Errorf("solves grew by %d, want 1", after.solves-before.solves)
	}
	nodes := after.nodes - before.nodes
	if nodes <= 0 {
		t.Fatalf("nodes_expanded grew by %d, want > 0", nodes)
	}
	terminal := (after.pruneBound - before.pruneBound) +
		(after.pruneHorizon - before.pruneHorizon) +
		(after.branchesDone - before.branchesDone) +
		(after.leaves - before.leaves)
	if terminal > nodes {
		t.Errorf("terminal outcomes (%d) exceed expanded nodes (%d)", terminal, nodes)
	}
	if incs := after.incumbents - before.incumbents; incs < 1 {
		t.Errorf("incumbent_updates grew by %d, want >= 1 (the seed schedule)", incs)
	}
}

// TestSolveSpanAndProgress lowers ProgressInterval to zero and attaches a
// JSONL sink: a solve must emit an exact.solve span, and searches long
// enough to hit a context poll must emit exact.progress events.
func TestSolveSpanAndProgress(t *testing.T) {
	var buf bytes.Buffer
	reg := telemetry.Default()
	reg.SetSink(telemetry.NewJSONLSink(&buf))
	defer reg.SetSink(nil)
	old := ProgressInterval
	ProgressInterval = 0
	defer func() { ProgressInterval = old }()

	// Two parallel 10-op chains ending in equal-probability branches on the
	// one-wide GP1: the dependence-only lower bound ignores the resource
	// conflict, so the search must enumerate interleavings — well past one
	// ctxCheckInterval of nodes, guaranteeing a progress poll. A node
	// budget keeps the test fast; overrunning it is fine here.
	b := model.NewBuilder("progress")
	chain := func() int {
		v := b.Int()
		for i := 0; i < 9; i++ {
			v = b.Int(v)
		}
		return v
	}
	b.Branch(0.5, chain())
	b.Branch(0, chain())
	if _, _, err := Optimal(b.MustBuild(), model.GP1(), 3*ctxCheckInterval); err != nil && err != ErrBudget {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, `"name":"exact.solve"`) {
		t.Errorf("no exact.solve span in sink output:\n%s", out)
	}
	if !strings.Contains(out, `"name":"exact.progress"`) {
		t.Errorf("no exact.progress event in sink output:\n%s", out)
	}
	if !strings.Contains(out, `"sb":"progress"`) {
		t.Errorf("progress events missing the superblock attribute:\n%s", out)
	}
}
