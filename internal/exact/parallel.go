package exact

import (
	"context"
	"errors"
	"math"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"balance/internal/bounds"
	"balance/internal/conc"
	"balance/internal/model"
	"balance/internal/resilience"
	"balance/internal/sched"
	"balance/internal/telemetry"
)

// Options configures Solve.
type Options struct {
	// MaxNodes caps the total search nodes across all workers (≤ 0 uses
	// DefaultMaxNodes). Reservation accounting keeps the combined expansion
	// at or under the cap regardless of worker count.
	MaxNodes int
	// Budget is an optional anytime wall-clock/node budget (nil =
	// unlimited); expiry truncates the search and returns the incumbent.
	Budget *resilience.Budget
	// Workers is the search parallelism: 1 (or a single-task problem) runs
	// the classic serial DFS, 0 uses GOMAXPROCS, N > 1 decomposes the root
	// into frontier subtrees fanned across a work-stealing pool.
	Workers int
	// BreadthFactor scales the frontier decomposition: the root is expanded
	// breadth-first into about BreadthFactor×Workers subtree tasks before
	// the pool starts (0 = default 6). More tasks smooth load imbalance at
	// the cost of more cloned solver states.
	BreadthFactor int
}

// defaultBreadthFactor is the root-task multiple per worker: enough slack
// that best-bound ordering plus endgame stealing keeps every worker busy,
// small enough that frontier states stay a trivial share of the search.
const defaultBreadthFactor = 6

// splitCapPerWorker bounds how many pop-time subtree splits a solve may
// perform (hunger-driven re-decomposition at the endgame).
const splitCapPerWorker = 64

// task is one frontier subtree: a snapshot of the solver state at an
// interior search node, plus the dependence lower bound used for best-bound
// ordering.
type task struct {
	issue     []int
	predsLeft []int
	readyAt   []int
	used      [][]int
	cycle     int
	minID     int
	done      int
	lb        float64
}

// snapshotTask captures the solver's current state as a task rooted at
// (cycle, minID, done).
func (s *solver) snapshotTask(cycle, minID, done int) *task {
	used := make([][]int, len(s.usedStack))
	for i, row := range s.usedStack {
		used[i] = append([]int(nil), row...)
	}
	return &task{
		issue:     append([]int(nil), s.issue...),
		predsLeft: append([]int(nil), s.predsLeft...),
		readyAt:   append([]int(nil), s.readyAt...),
		used:      used,
		cycle:     cycle,
		minID:     minID,
		done:      done,
		lb:        s.lowerBound(cycle),
	}
}

// restore loads a task's snapshot into the solver, reusing its buffers.
func (s *solver) restore(t *task) {
	copy(s.issue, t.issue)
	copy(s.predsLeft, t.predsLeft)
	copy(s.readyAt, t.readyAt)
	kinds := s.sh.m.Kinds()
	for len(s.usedStack) < len(t.used) {
		s.usedStack = append(s.usedStack, make([]int, kinds))
	}
	s.usedStack = s.usedStack[:len(t.used)]
	for i, row := range t.used {
		copy(s.usedStack[i], row)
	}
}

// expandTask expands one frontier task a single level, returning its child
// tasks in search order. Terminal outcomes (leaves, branches-done
// completions, prunes) are resolved inline exactly as dfs would resolve
// them — the expansion is the first level of the same search, so node and
// prune accounting stays consistent. The bool is false when the solve must
// stop (latch, budget, cancellation).
func (s *solver) expandTask(t *task) ([]*task, bool) {
	s.restore(t)
	if !s.chargeNode() {
		return nil, false
	}
	if t.cycle > s.horizon {
		s.cnt.pruneHorizon++
		return nil, true
	}
	n := s.g.NumOps()
	if t.done == n {
		s.cnt.leaves++
		cost := 0.0
		for i, b := range s.sh.sb.Branches {
			cost += s.sh.sb.Prob[i] * float64(s.issue[b]+model.BranchLatency)
		}
		if cost < s.sh.bestNow() {
			if s.sh.offer(cost, s.issue) {
				s.cnt.incumbents++
				s.checkProven(cost)
			} else {
				s.cnt.races++
			}
		}
		return nil, !s.stopFlag
	}
	if s.branchesDone() {
		s.cnt.branchesDone++
		s.completeRest(t.cycle)
		return nil, !s.stopFlag
	}
	if s.lowerBound(t.cycle) >= s.sh.bestNow() {
		s.cnt.pruneBound++
		return nil, true
	}
	var children []*task
	anyCandidate := false
	for v := t.minID; v < n; v++ {
		if s.issue[v] >= 0 || s.predsLeft[v] > 0 || s.readyAt[v] > t.cycle {
			continue
		}
		if !s.fitsOp(v, t.cycle) {
			continue
		}
		anyCandidate = true
		s.issue[v] = t.cycle
		s.holdOp(v, t.cycle, 1)
		type undo struct{ to, prev int }
		var undos [16]undo
		un := undos[:0]
		for _, e := range s.g.Succs(v) {
			s.predsLeft[e.To]--
			un = append(un, undo{e.To, s.readyAt[e.To]})
			if tt := t.cycle + e.Lat; tt > s.readyAt[e.To] {
				s.readyAt[e.To] = tt
			}
		}
		child := s.snapshotTask(t.cycle, v+1, t.done+1)
		for i := len(un) - 1; i >= 0; i-- {
			s.readyAt[un[i].to] = un[i].prev
			s.predsLeft[un[i].to]++
		}
		s.holdOp(v, t.cycle, -1)
		s.issue[v] = -1
		if child.lb >= s.sh.bestNow() {
			s.cnt.pruneBound++
			continue
		}
		children = append(children, child)
	}
	next := s.nextCycle(t.cycle, t.minID, anyCandidate)
	if next <= s.horizon {
		advance := s.snapshotTask(next, 0, t.done)
		if advance.lb >= s.sh.bestNow() {
			s.cnt.pruneBound++
		} else {
			children = append(children, advance)
		}
	} else {
		s.cnt.pruneHorizon++
	}
	return children, true
}

// expandFrontier grows the root into at least target frontier tasks by
// breadth-first expansion (shallowest first), resolving terminal states
// inline. It returns the frontier, or ok=false when the solve stopped
// during expansion.
func (s *solver) expandFrontier(target int) (tasks []*task, ok bool) {
	queue := []*task{s.snapshotTask(0, 0, 0)}
	for len(queue) > 0 && len(queue) < target {
		t := queue[0]
		queue = queue[1:]
		children, cont := s.expandTask(t)
		if !cont {
			return nil, false
		}
		queue = append(queue, children...)
	}
	return queue, true
}

// Solve runs the branch-and-bound search with the given options and the
// anytime contract of OptimalBudget: the returned cost is the true optimum
// unless truncated is set, in which case it is the best incumbent's cost
// (an upper bound). The optimal cost is deterministic across any worker
// count — workers race only over which equal-cost schedule wins, never over
// the cost itself — which the differential tests pin.
func Solve(ctx context.Context, sb *model.Superblock, m *model.Machine, opts Options) (schedule *sched.Schedule, cost float64, truncated bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	sh := &shared{
		sb:        sb,
		m:         m,
		ctx:       ctx,
		budget:    opts.Budget,
		cap:       allot{limit: int64(maxNodes)},
		floor:     math.Inf(-1),
		startTime: time.Now(),
	}
	sh.bestBits.Store(math.Float64bits(math.Inf(1)))
	sh.lastProgress.Store(sh.startTime.UnixNano())

	// Seed the incumbent with a critical-path list schedule so pruning has
	// a finite target from the start.
	heights := sched.IntsToFloats(sb.G.Heights())
	seeded := false
	if seed, _, serr := sched.ListSchedule(sb, m, heights); serr == nil {
		sh.offer(sched.Cost(sb, seed), seed.Cycle)
		seeded = true
	}

	sp, spanCtx := telemetry.Default().StartSpanCtx(ctx, "exact.solve")
	sh.span = sp.Context()
	sh.spanCtx = spanCtx

	var agg solveCounts
	if seeded {
		agg.incumbents++ // the seed, kept out of the per-worker counts
		telIncumbents.Inc()
	}

	if workers > 1 {
		// The kernel-cached pairwise floor: a cheap true lower bound that
		// orders nothing by itself but lets the solve stop the moment the
		// incumbent provably cannot improve, and gives root ordering a
		// sound clamp. Only the parallel path pays for it — the serial path
		// stays byte-for-byte the legacy solver.
		sh.floor = bounds.SearchFloor(ctx, sb, m)
	}

	steals, stolen := int64(0), int64(0)
	if workers == 1 {
		s := newSolver(sh, 0)
		s.dfs(0, 0, 0)
		s.finish()
		agg.add(s.cnt)
	} else {
		bf := opts.BreadthFactor
		if bf <= 0 {
			bf = defaultBreadthFactor
		}
		sh.workers = workers
		sh.stealer = conc.NewStealer[*task](workers)

		fs := newSolver(sh, 0)
		tasks, cont := fs.expandFrontier(bf * workers)
		fs.finish()
		agg.add(fs.cnt)

		if cont && len(tasks) > 0 {
			// Best-bound order: the lowest-lb (most promising) subtrees are
			// dealt first and popped first, so the incumbent tightens as
			// early as possible and prunes the unpromising tail.
			sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].lb < tasks[j].lb })
			deal := make([][]*task, workers)
			for i, t := range tasks {
				w := i % workers
				deal[w] = append(deal[w], t)
			}
			for w, list := range deal {
				// Push worst-first: the owner pops its deque LIFO, so the
				// best-bound task surfaces first; thieves steal the oldest
				// (worst-bound) half, which is exactly the work the owner
				// values least.
				for i := len(list) - 1; i >= 0; i-- {
					sh.stealer.Push(w, list[i])
				}
			}
			sh.stealer.Close()

			var wg sync.WaitGroup
			results := make([]solveCounts, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Label the worker goroutine so continuous profiles
					// split solver CPU by search worker.
					pprof.Do(spanCtx, pprof.Labels("exact_worker", strconv.Itoa(w)), func(context.Context) {
						results[w] = runWorker(sh, w)
					})
				}(w)
			}
			wg.Wait()
			for _, c := range results {
				agg.add(c)
			}
			steals, stolen = sh.stealer.Steals()
			telSteals.Add(steals)
		}
	}

	telSolves.Inc()
	telSolveDur.ObserveDuration(time.Since(sh.startTime))

	reason := sh.halted()
	cancelled := reason == stopCancel
	truncated = reason == stopBudget || reason == stopNodeCap
	budgetHit := reason == stopBudget

	if sp.Active() {
		sp.End(
			telemetry.String("sb", sb.Name),
			telemetry.Int("ops", int64(sb.G.NumOps())),
			telemetry.Int("workers", int64(workers)),
			telemetry.Int("nodes", int64(agg.nodes)),
			telemetry.Int("pruned_lower_bound", int64(agg.pruneBound)),
			telemetry.Int("incumbent_updates", int64(agg.incumbents)),
			telemetry.Int("incumbent_races", int64(agg.races)),
			telemetry.Int("steals", steals),
			telemetry.Int("stolen_tasks", stolen),
			telemetry.Int("splits", sh.splits.Load()),
			telemetry.Float("best", sh.bestNow()),
			telemetry.Int("proven_by_floor", boolInt(reason == stopProven)),
			telemetry.Int("overrun", boolInt(truncated)),
			telemetry.Int("truncated_by_budget", boolInt(budgetHit)),
			telemetry.Int("cancelled", boolInt(cancelled)),
		)
	}
	if cancelled {
		telCancels.Inc()
		return nil, 0, false, ctx.Err()
	}
	sh.mu.Lock()
	best := append([]int(nil), sh.bestSched...)
	bestCost := sh.bestNow()
	sh.mu.Unlock()
	if len(best) == 0 {
		return nil, 0, false, errors.New("exact: no schedule found")
	}
	if truncated {
		telOverruns.Inc()
		if budgetHit {
			telTruncations.Inc()
		}
		return &sched.Schedule{Cycle: best}, bestCost, true, nil
	}
	return &sched.Schedule{Cycle: best}, bestCost, false, nil
}

// runWorker is one pool worker: pop a subtree (own deque first, then steal),
// search it to completion against the shared incumbent, repeat. When other
// workers are starving (parked) it splits its popped task one level instead
// of searching it, feeding the pool — the endgame load balancer.
func runWorker(sh *shared, w int) solveCounts {
	s := newSolver(sh, w)
	defer s.finish()
	st := sh.stealer
	reg := telemetry.Default()
	n := s.g.NumOps()
	splitCap := int64(splitCapPerWorker * sh.workers)
	for {
		t, ok := st.Next(w)
		if !ok {
			break
		}
		if s.stopFlag || sh.halted() != stopNone {
			st.Done()
			break
		}
		if st.Parked() > 0 && t.done < n-1 && sh.splits.Load() < splitCap {
			sh.splits.Add(1)
			children, cont := s.expandTask(t)
			// Push best-bound last so our next pop takes it; thieves get
			// the rest from the other end.
			sort.SliceStable(children, func(i, j int) bool { return children[i].lb > children[j].lb })
			for _, c := range children {
				st.Push(w, c)
			}
			st.Done()
			if !cont {
				break
			}
			continue
		}
		sub, _ := reg.StartSpanCtx(sh.spanCtx, "exact.subtree")
		before := s.nodes
		s.restore(t)
		s.dfs(t.cycle, t.minID, t.done)
		if sub.Active() {
			sub.End(
				telemetry.Int("worker", int64(w)),
				telemetry.Int("nodes", int64(s.nodes-before)),
				telemetry.Float("lb", t.lb),
				telemetry.Int("depth", int64(t.done)),
			)
		}
		st.Done()
		if s.stopFlag {
			break
		}
	}
	// A worker that stopped early (latch seen mid-search) must make sure
	// parked peers wake up and the queue drains.
	if s.stopFlag {
		st.Abort()
	}
	return s.cnt
}
