package exact

import (
	"time"

	"balance/internal/telemetry"
)

// Branch-and-bound instruments. The solver accumulates counts locally (one
// int increment per event) and flushes them to the registry at the context
// poll interval and at the end of every solve, so the search loop pays no
// atomic operations per node. The termination counters partition the
// expanded nodes: every node either recurses or terminates through exactly
// one of pruned_lower_bound, pruned_horizon, branches_complete,
// leaf_schedules, or the budget overrun — see DESIGN.md.
var (
	telSolves       = telemetry.Default().Counter("exact.solves")
	telNodes        = telemetry.Default().Counter("exact.nodes_expanded")
	telPruneBound   = telemetry.Default().Counter("exact.pruned_lower_bound")
	telPruneHorizon = telemetry.Default().Counter("exact.pruned_horizon")
	telBranchesDone = telemetry.Default().Counter("exact.branches_complete")
	telLeaves       = telemetry.Default().Counter("exact.leaf_schedules")
	telIncumbents   = telemetry.Default().Counter("exact.incumbent_updates")
	telOverruns     = telemetry.Default().Counter("exact.budget_overruns")
	telTruncations  = telemetry.Default().Counter("exact.budget_truncations")
	telCancels      = telemetry.Default().Counter("exact.cancellations")
	telSolveDur     = telemetry.Default().Histogram("exact.solve_ns")
)

// ProgressInterval is the minimum spacing between "exact.progress" events
// emitted to the active sink during a solve (tests lower it to exercise
// the path; ≤ 0 emits at every context poll).
var ProgressInterval = time.Second

// solveCounts tallies the search events of one solve.
type solveCounts struct {
	nodes        int // expanded search nodes
	pruneBound   int // subtrees cut by the dependence lower bound
	pruneHorizon int // subtrees cut by the serial-horizon limit
	branchesDone int // subtrees closed greedily once every branch issued
	leaves       int // complete schedules reached
	incumbents   int // best-schedule improvements (including the seed)
}

// flushTelemetry publishes the counts accumulated since the last flush.
func (s *solver) flushTelemetry() {
	d := s.cnt
	f := s.flushed
	telNodes.Add(int64(d.nodes - f.nodes))
	telPruneBound.Add(int64(d.pruneBound - f.pruneBound))
	telPruneHorizon.Add(int64(d.pruneHorizon - f.pruneHorizon))
	telBranchesDone.Add(int64(d.branchesDone - f.branchesDone))
	telLeaves.Add(int64(d.leaves - f.leaves))
	telIncumbents.Add(int64(d.incumbents - f.incumbents))
	s.flushed = d
}

// maybeProgress emits an "exact.progress" event (and flushes counters so
// live expvar views advance) when a sink is active and ProgressInterval
// has elapsed. Called from the search's context-poll points, so long
// solves are never silent.
func (s *solver) maybeProgress() {
	reg := telemetry.Default()
	if !reg.SinkActive() {
		return
	}
	now := time.Now()
	if now.Sub(s.lastProgress) < ProgressInterval {
		return
	}
	s.lastProgress = now
	s.flushTelemetry()
	reg.EmitSpan(s.span, "exact.progress",
		telemetry.String("sb", s.sb.Name),
		telemetry.Int("nodes", int64(s.cnt.nodes)),
		telemetry.Int("pruned_lower_bound", int64(s.cnt.pruneBound)),
		telemetry.Int("pruned_horizon", int64(s.cnt.pruneHorizon)),
		telemetry.Int("incumbent_updates", int64(s.cnt.incumbents)),
		telemetry.Float("best", s.best),
		telemetry.Int("elapsed_ms", now.Sub(s.startTime).Milliseconds()),
	)
}
