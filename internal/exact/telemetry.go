package exact

import (
	"time"

	"balance/internal/telemetry"
)

// Branch-and-bound instruments. Each worker solver accumulates counts
// locally (one int increment per event) and flushes them to the registry at
// the poll interval and when it finishes, so the search loop pays no atomic
// operations per node. The termination counters partition the expanded
// nodes: every node either recurses or terminates through exactly one of
// pruned_lower_bound, pruned_horizon, branches_complete, leaf_schedules, or
// the budget overrun — see DESIGN.md. exact.steals counts work-stealing
// operations between workers of a parallel solve; exact.incumbent_races
// counts incumbent offers that lost to a concurrent better schedule.
var (
	telSolves       = telemetry.Default().Counter("exact.solves")
	telNodes        = telemetry.Default().Counter("exact.nodes_expanded")
	telPruneBound   = telemetry.Default().Counter("exact.pruned_lower_bound")
	telPruneHorizon = telemetry.Default().Counter("exact.pruned_horizon")
	telBranchesDone = telemetry.Default().Counter("exact.branches_complete")
	telLeaves       = telemetry.Default().Counter("exact.leaf_schedules")
	telIncumbents   = telemetry.Default().Counter("exact.incumbent_updates")
	telRaces        = telemetry.Default().Counter("exact.incumbent_races")
	telSteals       = telemetry.Default().Counter("exact.steals")
	telOverruns     = telemetry.Default().Counter("exact.budget_overruns")
	telTruncations  = telemetry.Default().Counter("exact.budget_truncations")
	telCancels      = telemetry.Default().Counter("exact.cancellations")
	telSolveDur     = telemetry.Default().Histogram("exact.solve_ns")
)

// ProgressInterval is the minimum spacing between "exact.progress" events
// emitted to the active sink during a solve (tests lower it to exercise
// the path; ≤ 0 emits at every context poll).
var ProgressInterval = time.Second

// solveCounts tallies the search events of one solver (one worker of a
// parallel solve, or the whole serial search).
type solveCounts struct {
	nodes        int // expanded search nodes
	pruneBound   int // subtrees cut by the dependence lower bound
	pruneHorizon int // subtrees cut by the serial-horizon limit
	branchesDone int // subtrees closed greedily once every branch issued
	leaves       int // complete schedules reached
	incumbents   int // best-schedule improvements
	races        int // incumbent offers beaten by a concurrent worker
}

// add merges another worker's counts (for span attributes; the registry
// counters are flushed per worker and never double-counted here).
func (c *solveCounts) add(o solveCounts) {
	c.nodes += o.nodes
	c.pruneBound += o.pruneBound
	c.pruneHorizon += o.pruneHorizon
	c.branchesDone += o.branchesDone
	c.leaves += o.leaves
	c.incumbents += o.incumbents
	c.races += o.races
}

// flushTelemetry publishes the counts accumulated since the last flush.
func (s *solver) flushTelemetry() {
	d := s.cnt
	f := s.flushed
	telNodes.Add(int64(d.nodes - f.nodes))
	telPruneBound.Add(int64(d.pruneBound - f.pruneBound))
	telPruneHorizon.Add(int64(d.pruneHorizon - f.pruneHorizon))
	telBranchesDone.Add(int64(d.branchesDone - f.branchesDone))
	telLeaves.Add(int64(d.leaves - f.leaves))
	telIncumbents.Add(int64(d.incumbents - f.incumbents))
	telRaces.Add(int64(d.races - f.races))
	s.flushed = d
}

// maybeProgress emits an "exact.progress" event (and flushes counters so
// live expvar views advance) when a sink is active and ProgressInterval has
// elapsed. Called from every worker's poll points; a CAS on the shared
// timestamp elects at most one emitter per interval, so long solves are
// never silent and parallel solves never spam.
func (s *solver) maybeProgress() {
	reg := telemetry.Default()
	if !reg.SinkActive() {
		return
	}
	now := time.Now()
	if ProgressInterval > 0 {
		last := s.sh.lastProgress.Load()
		if now.UnixNano()-last < int64(ProgressInterval) {
			return
		}
		if !s.sh.lastProgress.CompareAndSwap(last, now.UnixNano()) {
			return
		}
	} else {
		s.sh.lastProgress.Store(now.UnixNano())
	}
	s.flushTelemetry()
	s.syncShared()
	nodes := s.sh.nodes.Load()
	elapsed := now.Sub(s.sh.startTime)
	rate := int64(0)
	if elapsed > 0 {
		rate = nodes * int64(time.Second) / int64(elapsed)
	}
	steals := int64(0)
	if s.sh.stealer != nil {
		steals, _ = s.sh.stealer.Steals()
	}
	reg.EmitSpan(s.sh.span, "exact.progress",
		telemetry.String("sb", s.sh.sb.Name),
		telemetry.Int("nodes", nodes),
		telemetry.Int("nodes_per_s", rate),
		telemetry.Int("workers", int64(max(s.sh.workers, 1))),
		telemetry.Int("steals", steals),
		telemetry.Int("pruned_lower_bound", int64(s.cnt.pruneBound)),
		telemetry.Int("pruned_horizon", int64(s.cnt.pruneHorizon)),
		telemetry.Int("incumbent_updates", int64(s.cnt.incumbents)),
		telemetry.Float("best", s.sh.bestNow()),
		telemetry.Int("elapsed_ms", elapsed.Milliseconds()),
	)
}
