package exact

import (
	"math/rand"
	"testing"

	"balance/internal/figures"
	"balance/internal/model"
	"balance/internal/sched"
	"balance/internal/testutil"
)

func TestOptimalTinyChain(t *testing.T) {
	// Serial chain: the optimum is forced.
	b := model.NewBuilder("chain")
	o0 := b.Int()
	o1 := b.Int(o0)
	o2 := b.Int(o1)
	b.Branch(0, o2)
	sb := b.MustBuild()
	s, cost, err := Optimal(sb, model.GP2(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 4 { // branch at 3, completes at 4
		t.Errorf("cost = %v, want 4", cost)
	}
	if err := sched.Verify(sb, model.GP2(), s); err != nil {
		t.Error(err)
	}
}

func TestOptimalPrefersProbableBranch(t *testing.T) {
	// Two independent single-op blocks on GP1: whichever branch carries
	// more probability must complete first.
	build := func(p float64) *model.Superblock {
		b := model.NewBuilder("choice")
		o0 := b.Int()
		b.Branch(p, o0)
		o1 := b.Int()
		b.Branch(0, o1)
		return b.MustBuild()
	}
	m := model.GP1()
	sLow, _, err := Optimal(build(0.1), m, 0)
	if err != nil {
		t.Fatal(err)
	}
	sbLow := build(0.1)
	if sLow.Cycle[sbLow.Branches[0]] < sLow.Cycle[sbLow.Branches[1]] {
		// With a rare side exit the final exit should not be sacrificed;
		// but the side exit precedes the final exit by control order, so
		// the separation is what matters: verify cost instead.
		t.Logf("low-P schedule: %v", sLow.Cycle)
	}
	// High-probability side exit: it must issue as early as possible.
	sbHigh := build(0.9)
	sHigh, _, err := Optimal(sbHigh, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := sHigh.Cycle[sbHigh.Branches[0]]; c != 1 {
		t.Errorf("high-P side exit at %d, want 1", c)
	}
}

func TestOptimalMatchesFigureFacts(t *testing.T) {
	m := model.GP2()
	cases := []struct {
		sb   *model.Superblock
		want float64
	}{
		// Figure 2 with P = 0.3: optimum (2,3) -> 0.3*3 + 0.7*4 = 3.7.
		{figures.Figure2(0.3), 3.7},
		// Figure 3 with P = 0.3: optimum (2,5) -> 0.3*3 + 0.7*6 = 5.1.
		{figures.Figure3(0.3), 5.1},
		// Figure 6: single exit at 5 -> 6.
		{figures.Figure6(), 6},
	}
	for _, c := range cases {
		s, cost, err := Optimal(c.sb, m, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.sb.Name, err)
		}
		if diff := cost - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: optimum %v, want %v", c.sb.Name, cost, c.want)
		}
		if err := sched.Verify(c.sb, m, s); err != nil {
			t.Errorf("%s: %v", c.sb.Name, err)
		}
	}
}

func TestOptimalNeverWorseThanList(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 40; i++ {
		sb := testutil.RandomSuperblock(rng, 11)
		for _, m := range testutil.SmallMachines() {
			s, opt, err := Optimal(sb, m, 1_500_000)
			if err != nil {
				continue
			}
			if err := sched.Verify(sb, m, s); err != nil {
				t.Fatalf("iter %d: illegal optimal schedule: %v", i, err)
			}
			list, _, err := sched.ListSchedule(sb, m, sched.IntsToFloats(sb.G.Heights()))
			if err != nil {
				t.Fatal(err)
			}
			if c := sched.Cost(sb, list); opt > c+1e-9 {
				t.Fatalf("iter %d %s: 'optimal' %v worse than list %v", i, m.Name, opt, c)
			}
		}
	}
}

func TestOptimalBudget(t *testing.T) {
	// A big-enough graph with a tiny budget must return ErrBudget but still
	// produce a legal incumbent (the seeded list schedule).
	rng := rand.New(rand.NewSource(77))
	sb := testutil.RandomSuperblock(rng, 18)
	s, _, err := Optimal(sb, model.GP2(), 10)
	if err != ErrBudget {
		t.Skipf("search finished within 10 nodes (err=%v)", err)
	}
	if err := sched.Verify(sb, model.GP2(), s); err != nil {
		t.Errorf("incumbent illegal: %v", err)
	}
}

func TestOptimalZeroWeightTail(t *testing.T) {
	// All weight on the first branch: the optimum retires it immediately
	// even if the rest of the superblock is large.
	b := model.NewBuilder("head")
	o0 := b.Int()
	b.Branch(1.0, o0)
	var last int
	for i := 0; i < 6; i++ {
		last = b.Int()
	}
	b.Branch(0, last)
	sb := b.MustBuild()
	_, cost, err := Optimal(sb, model.GP1(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 { // o0 at 0, branch at 1, completes at 2
		t.Errorf("cost = %v, want 2", cost)
	}
}
