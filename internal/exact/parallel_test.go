package exact

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"balance/internal/model"
	"balance/internal/resilience"
	"balance/internal/sched"
	"balance/internal/testutil"
)

// TestParallelMatchesSerial is the determinism contract of the parallel
// search: for any worker count the returned cost is the same true optimum
// the serial DFS proves. Workers race only over which equal-cost schedule
// wins, never over the cost.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 12; i++ {
		sb := testutil.RandomSuperblock(rng, 12)
		for _, m := range testutil.SmallMachines() {
			_, serial, cut, err := Solve(context.Background(), sb, m, Options{Workers: 1})
			if err != nil {
				t.Fatalf("iter %d %s: serial solve: %v", i, m.Name, err)
			}
			if cut {
				t.Fatalf("iter %d %s: serial solve truncated", i, m.Name)
			}
			for _, workers := range []int{2, 4, 8} {
				s, cost, cut, err := Solve(context.Background(), sb, m, Options{Workers: workers})
				if err != nil {
					t.Fatalf("iter %d %s workers=%d: %v", i, m.Name, workers, err)
				}
				if cut {
					t.Fatalf("iter %d %s workers=%d: truncated without a budget", i, m.Name, workers)
				}
				if math.Abs(cost-serial) > 1e-9 {
					t.Fatalf("iter %d %s workers=%d: cost %v != serial optimum %v",
						i, m.Name, workers, cost, serial)
				}
				if verr := sched.Verify(sb, m, s); verr != nil {
					t.Errorf("iter %d %s workers=%d: illegal schedule: %v", i, m.Name, workers, verr)
				}
				if c := sched.Cost(sb, s); math.Abs(c-cost) > 1e-9 {
					t.Errorf("iter %d %s workers=%d: schedule cost %v != reported %v",
						i, m.Name, workers, c, cost)
				}
			}
		}
	}
}

// TestParallelBreadthFactors varies the frontier decomposition width: the
// optimum must not depend on how the root is carved into subtrees.
func TestParallelBreadthFactors(t *testing.T) {
	sb := budgetTestSB(t, 10, 0.3)
	m := model.GP2()
	_, want, _, err := Solve(context.Background(), sb, m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, bf := range []int{1, 2, 16} {
		_, cost, cut, err := Solve(context.Background(), sb, m, Options{Workers: 4, BreadthFactor: bf})
		if err != nil || cut {
			t.Fatalf("bf=%d: err=%v truncated=%v", bf, err, cut)
		}
		if math.Abs(cost-want) > 1e-9 {
			t.Fatalf("bf=%d: cost %v != optimum %v", bf, cost, want)
		}
	}
}

// awaitGoroutines waits for the goroutine count to drain back to the
// baseline, tolerating runtime bookkeeping goroutines that come and go.
func awaitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestParallelCancelMidSearch cancels an 8-worker solve of a search-hostile
// instance mid-flight: the solve must return ctx's error promptly and leave
// no worker goroutines behind — including workers parked on the stealer or
// holding freshly stolen subtrees.
func TestParallelCancelMidSearch(t *testing.T) {
	sb := budgetTestSB(t, 14, 0.3)
	m := model.GP2()
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, _, _, err := Solve(ctx, sb, m, Options{Workers: 8})
			done <- err
		}()
		time.Sleep(time.Duration(i) * 2 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			// An instant cancel can land before the search even charges a
			// node; a solve that finished first is also legal. Anything else
			// must surface ctx's error.
			if err != nil && err != context.Canceled {
				t.Fatalf("iter %d: err = %v, want context.Canceled or nil", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("iter %d: cancelled solve did not return", i)
		}
		awaitGoroutines(t, base)
	}
}

// TestParallelCancelChaos races cancellation against every phase of the
// parallel solve — frontier expansion, steady-state stealing, endgame
// splits — by sweeping the cancel delay across the solve's lifetime.
func TestParallelCancelChaos(t *testing.T) {
	sb := budgetTestSB(t, 12, 0.25)
	m := model.GP2()
	_, want, _, err := Solve(context.Background(), sb, m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(rng.Intn(2000)) * time.Microsecond
		timer := time.AfterFunc(delay, cancel)
		s, cost, cut, err := Solve(ctx, sb, m, Options{Workers: 8, BreadthFactor: 2})
		timer.Stop()
		cancel()
		switch {
		case err == context.Canceled:
			// Cancelled mid-search: nothing to check beyond cleanup.
		case err != nil:
			t.Fatalf("iter %d (delay %v): %v", i, delay, err)
		case cut:
			t.Fatalf("iter %d (delay %v): truncated without a budget", i, delay)
		default:
			if math.Abs(cost-want) > 1e-9 {
				t.Fatalf("iter %d (delay %v): cost %v != optimum %v", i, delay, cost, want)
			}
			if verr := sched.Verify(sb, m, s); verr != nil {
				t.Fatalf("iter %d (delay %v): illegal schedule: %v", i, delay, verr)
			}
		}
		awaitGoroutines(t, base)
	}
}

// TestParallelBudgetTruncation: a parallel solve under a tiny node budget
// keeps the anytime contract — legal incumbent, truncated flag, cost an
// upper bound on the serial optimum.
func TestParallelBudgetTruncation(t *testing.T) {
	sb := budgetTestSB(t, 12, 0.3)
	m := model.GP2()
	_, opt, _, err := Solve(context.Background(), sb, m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	truncatedSeen := false
	for _, limit := range []int64{1, 3 * ctxCheckInterval} {
		budget := resilience.NewBudget(0, limit)
		s, cost, truncated, err := Solve(context.Background(), sb, m, Options{Workers: 4, Budget: budget})
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if s == nil {
			t.Fatalf("limit %d: solve returned no schedule", limit)
		}
		if verr := sched.Verify(sb, m, s); verr != nil {
			t.Errorf("limit %d: schedule is illegal: %v", limit, verr)
		}
		if truncated {
			truncatedSeen = true
			if cost < opt-1e-9 {
				t.Errorf("limit %d: truncated cost %v below true optimum %v", limit, cost, opt)
			}
		} else if math.Abs(cost-opt) > 1e-9 {
			// Not truncated means the pairwise floor proved the incumbent
			// optimal before the budget ran dry — then the cost must BE the
			// optimum, not an upper bound.
			t.Errorf("limit %d: untruncated cost %v != optimum %v", limit, cost, opt)
		}
	}
	if !truncatedSeen {
		t.Error("a one-node budget must truncate a 12-op hostile search")
	}
}

// TestCompleteRestPooledScratchNoAllocs pins the allocation fix: once the
// pooled scratch is warm, the greedy completion of a branches-done subtree
// allocates nothing per leaf.
func TestCompleteRestPooledScratchNoAllocs(t *testing.T) {
	b := model.NewBuilder("cr-alloc")
	br := b.Branch(0.5)
	for i := 0; i < 8; i++ {
		b.Int()
	}
	sb := b.MustBuild()
	m := model.GP2()

	sh := &shared{sb: sb, m: m, ctx: context.Background(), floor: math.Inf(-1)}
	sh.bestBits.Store(math.Float64bits(math.Inf(1)))
	s := newSolver(sh, 0)
	// Place the branch at cycle 0 the way dfs would; everything else is
	// unscheduled, so completeRest has real work to do.
	s.issue[br] = 0
	s.holdOp(br, 0, 1)
	for _, e := range s.g.Succs(br) {
		s.predsLeft[e.To]--
		if tt := 0 + e.Lat; tt > s.readyAt[e.To] {
			s.readyAt[e.To] = tt
		}
	}
	if !s.branchesDone() {
		t.Fatal("test setup: branches not done")
	}
	allocs := testing.AllocsPerRun(200, func() {
		// Reset the incumbent so the offer path (the full completion) runs
		// every time rather than bailing on the cost check.
		sh.bestBits.Store(math.Float64bits(math.Inf(1)))
		s.completeRest(0)
	})
	if allocs != 0 {
		t.Errorf("completeRest allocates %v objects per leaf, want 0", allocs)
	}
}
