// Package exact finds provably optimal superblock schedules by exhaustive
// branch-and-bound search. It exists as ground truth for tests and small
// case studies: every lower bound must be ≤ the optimum it returns, and no
// heuristic may beat it. It is exponential and intended for graphs of up to
// roughly 20 operations; Solve with Workers > 1 fans the search across a
// work-stealing pool to push that frontier (see parallel.go and DESIGN.md
// "Parallel exact search").
package exact

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"balance/internal/conc"
	"balance/internal/model"
	"balance/internal/resilience"
	"balance/internal/sched"
	"balance/internal/telemetry"
)

// boolInt converts a flag to a 0/1 event attribute.
func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ErrBudget is returned when the search exceeds its node budget.
var ErrBudget = errors.New("exact: node budget exhausted")

// DefaultMaxNodes is the default search budget.
const DefaultMaxNodes = 5_000_000

// ctxCheckInterval is how many search nodes a worker expands between
// shared-state polls (context, stop latch, budget re-reservation): frequent
// enough for sub-millisecond cancellation and fast incumbent-driven
// shutdown, rare enough to keep the poll off the hot path.
const ctxCheckInterval = 4096

// Stop-latch reasons. The first worker to observe a terminal condition
// CAS-publishes it; every other worker sees the latch at its next poll and
// unwinds. stopProven is the one clean reason: the incumbent met the
// precomputed lower-bound floor, so the search is over without being
// truncated.
const (
	stopNone int32 = iota
	stopCancel
	stopBudget
	stopNodeCap
	stopProven
)

// allot is a reservation counter over a fixed allowance: the maxNodes cap
// shared by every worker of one solve. Reservations are claimed CAS-exactly,
// so the combined expansion of all workers never exceeds the limit.
type allot struct {
	limit int64 // ≤ 0 = unlimited
	used  atomic.Int64
}

func (a *allot) reserve(n int64) int64 {
	if a.limit <= 0 {
		a.used.Add(n)
		return n
	}
	for {
		cur := a.used.Load()
		rem := a.limit - cur
		if rem <= 0 {
			return 0
		}
		grant := n
		if grant > rem {
			grant = rem
		}
		if a.used.CompareAndSwap(cur, cur+grant) {
			return grant
		}
	}
}

func (a *allot) refund(n int64) {
	if n > 0 {
		a.used.Add(-n)
	}
}

// shared is the cross-worker state of one solve: the problem, the stop
// latch, the node allowances, and the incumbent every worker prunes
// against.
type shared struct {
	sb  *model.Superblock
	m   *model.Machine
	ctx context.Context

	budget *resilience.Budget
	cap    allot

	// floor is a precomputed true lower bound on the optimal cost (-Inf
	// when none was computed): an incumbent that reaches it is provably
	// optimal and stops the search early via stopProven.
	floor float64

	// bestBits is math.Float64bits of the incumbent cost, loaded lock-free
	// on every bound check; bestSched is the matching schedule, guarded by
	// mu and only touched on the rare incumbent improvements.
	bestBits  atomic.Uint64
	mu        sync.Mutex
	bestSched []int

	stop atomic.Int32 // one of the stop* reasons

	// Live aggregates for progress events (per-worker exact counts are
	// flushed to the telemetry registry separately).
	nodes        atomic.Int64
	splits       atomic.Int64
	lastProgress atomic.Int64 // unix nanos of the last exact.progress event

	startTime time.Time
	span      telemetry.SpanContext
	spanCtx   context.Context

	workers int
	stealer *conc.Stealer[*task] // nil in a serial solve
}

// bestNow returns the current incumbent cost (+Inf before any schedule).
func (sh *shared) bestNow() float64 {
	return math.Float64frombits(sh.bestBits.Load())
}

// offer installs (cost, schedule) as the incumbent if it is still an
// improvement, returning false when a concurrent worker got there first
// with an equal or better schedule (an incumbent race). Improvements are
// rare — dozens per solve against millions of bound checks — so a plain
// mutex around the compare+copy is cheaper than any cleverness; the
// lock-free read path only ever sees fully published costs because the
// bits store happens inside the critical section.
func (sh *shared) offer(cost float64, schedule []int) bool {
	sh.mu.Lock()
	if cost >= sh.bestNow() {
		sh.mu.Unlock()
		return false
	}
	sh.bestBits.Store(math.Float64bits(cost))
	sh.bestSched = append(sh.bestSched[:0], schedule...)
	sh.mu.Unlock()
	return true
}

// halt publishes a stop reason (first writer wins) and aborts the stealer
// so parked workers wake immediately.
func (sh *shared) halt(reason int32) {
	if sh.stop.CompareAndSwap(stopNone, reason) && sh.stealer != nil {
		sh.stealer.Abort()
	}
}

func (sh *shared) halted() int32 { return sh.stop.Load() }

// solver is the per-worker search state. Serial solves use exactly one;
// parallel solves use one per worker plus one for the frontier expansion.
type solver struct {
	sh     *shared
	g      *model.Graph
	worker int

	// stopFlag mirrors the shared latch locally so the recursion unwinds
	// with a plain field read.
	stopFlag bool
	reason   int32

	// allowance is the number of nodes this worker may still expand before
	// it must re-poll shared state and re-reserve from the budget and the
	// maxNodes cap. Reservation-based accounting is what makes node budgets
	// exact to ±0: a worker only ever expands nodes it has already been
	// granted, and refunds the unused tail on completion.
	allowance int64

	horizon int
	nodes   int // expanded by this worker
	synced  int // portion of nodes already added to sh.nodes

	cnt     solveCounts
	flushed solveCounts

	issue     []int
	predsLeft []int
	readyAt   []int
	usedStack [][]int // per cycle, per kind usage
	dynEarly  []int   // scratch for the pruning bound

	cr *crScratch // pooled completion scratch, see completeRest
}

// newSolver returns a worker solver over the shared solve state with the
// root state (nothing issued) loaded.
func newSolver(sh *shared, worker int) *solver {
	n := sh.sb.G.NumOps()
	s := &solver{
		sh:        sh,
		g:         sh.sb.G,
		worker:    worker,
		horizon:   sched.Horizon(sh.sb) + 1,
		issue:     make([]int, n),
		predsLeft: make([]int, n),
		readyAt:   make([]int, n),
		dynEarly:  make([]int, n),
	}
	for v := 0; v < n; v++ {
		s.issue[v] = -1
		s.predsLeft[v] = len(sh.sb.G.Preds(v))
	}
	return s
}

// chargeNode accounts one node expansion against the worker's allowance,
// refilling (and polling shared state) when it runs out. It returns false
// when the search must stop — the caller unwinds immediately.
func (s *solver) chargeNode() bool {
	if s.stopFlag {
		return false
	}
	if s.allowance == 0 && !s.refill() {
		return false
	}
	s.allowance--
	s.nodes++
	s.cnt.nodes++
	return true
}

// refill is the batched poll point: it checks the stop latch, context, and
// wall clock, then reserves the next node batch from both the maxNodes cap
// and the resilience budget. Reservations are taken before expansion, so
// neither limit is ever overshot.
func (s *solver) refill() bool {
	sh := s.sh
	s.syncShared()
	if r := sh.halted(); r != stopNone {
		s.stopLocal(r)
		return false
	}
	if sh.ctx.Err() != nil {
		sh.halt(stopCancel)
		s.stopLocal(stopCancel)
		return false
	}
	if sh.budget.WallExpired() {
		sh.halt(stopBudget)
		s.stopLocal(stopBudget)
		return false
	}
	grant := sh.cap.reserve(ctxCheckInterval)
	if grant == 0 {
		sh.halt(stopNodeCap)
		s.stopLocal(stopNodeCap)
		return false
	}
	granted := sh.budget.Reserve(grant)
	if granted < grant {
		sh.cap.refund(grant - granted)
	}
	if granted == 0 {
		sh.halt(stopBudget)
		s.stopLocal(stopBudget)
		return false
	}
	s.allowance = granted
	s.maybeProgress()
	return true
}

func (s *solver) stopLocal(reason int32) {
	s.stopFlag = true
	s.reason = reason
}

// finish refunds the unused node allowance (making budget accounting exact)
// and flushes the worker's counters.
func (s *solver) finish() {
	s.sh.budget.Refund(s.allowance)
	s.sh.cap.refund(s.allowance)
	s.allowance = 0
	s.syncShared()
	s.flushTelemetry()
	if s.cr != nil {
		crPool.Put(s.cr)
		s.cr = nil
	}
}

// syncShared publishes the worker's node count to the shared aggregate.
func (s *solver) syncShared() {
	if d := s.nodes - s.synced; d > 0 {
		s.sh.nodes.Add(int64(d))
		s.synced = s.nodes
	}
}

// checkProven stops the whole solve cleanly when the incumbent has reached
// the precomputed lower-bound floor: nothing better can exist.
func (s *solver) checkProven(cost float64) {
	if cost <= s.sh.floor+1e-9 {
		s.sh.halt(stopProven)
		s.stopLocal(stopProven)
	}
}

// branchesDone reports whether every exit branch has been issued.
func (s *solver) branchesDone() bool {
	for _, b := range s.sh.sb.Branches {
		if s.issue[b] < 0 {
			return false
		}
	}
	return true
}

// crScratch is the pooled per-worker scratch for completeRest: the greedy
// completion used to need a fresh map and three slice copies per
// branches-done leaf, which dominated allocation on search-heavy solves.
// The rows are epoch-stamped so re-use needs no clearing pass.
type crScratch struct {
	issue     []int
	predsLeft []int
	readyAt   []int
	rows      [][]int
	stamp     []int
	epoch     int
}

var crPool = sync.Pool{New: func() any { return &crScratch{} }}

// ensure sizes the scratch for an n-op problem.
func (cr *crScratch) ensure(n int) {
	if cap(cr.issue) < n {
		cr.issue = make([]int, n)
		cr.predsLeft = make([]int, n)
		cr.readyAt = make([]int, n)
	}
	cr.issue = cr.issue[:n]
	cr.predsLeft = cr.predsLeft[:n]
	cr.readyAt = cr.readyAt[:n]
}

// row returns the usage row for cycle c, seeding it from the solver's live
// usage stack the first time the current completion touches it.
func (cr *crScratch) row(c, kinds int, base [][]int) []int {
	for c >= len(cr.rows) {
		cr.rows = append(cr.rows, nil)
		cr.stamp = append(cr.stamp, 0)
	}
	if cr.stamp[c] != cr.epoch {
		row := cr.rows[c]
		if cap(row) < kinds {
			row = make([]int, kinds)
		}
		row = row[:kinds]
		if c < len(base) {
			copy(row, base[c])
		} else {
			for i := range row {
				row[i] = 0
			}
		}
		cr.rows[c] = row
		cr.stamp[c] = cr.epoch
	}
	return cr.rows[c]
}

// completeRest finishes the partial schedule greedily (the cost is already
// fixed once all branches are placed) and offers it as the incumbent.
func (s *solver) completeRest(cycle int) {
	cost := 0.0
	for i, b := range s.sh.sb.Branches {
		cost += s.sh.sb.Prob[i] * float64(s.issue[b]+model.BranchLatency)
	}
	if cost >= s.sh.bestNow() {
		return
	}
	n := s.g.NumOps()
	m := s.sh.m
	kinds := m.Kinds()
	if s.cr == nil {
		s.cr = crPool.Get().(*crScratch)
	}
	cr := s.cr
	cr.ensure(n)
	cr.epoch++
	copy(cr.issue, s.issue)
	copy(cr.predsLeft, s.predsLeft)
	copy(cr.readyAt, s.readyAt)
	remaining := 0
	for v := 0; v < n; v++ {
		if cr.issue[v] < 0 {
			remaining++
		}
	}
	for c := cycle; remaining > 0; c++ {
		for v := 0; v < n; v++ {
			if cr.issue[v] >= 0 || cr.predsLeft[v] > 0 || cr.readyAt[v] > c {
				continue
			}
			cls := s.g.Op(v).Class
			k := m.KindOf(cls)
			occ := m.Occupancy(cls)
			fits := true
			for t := c; t < c+occ; t++ {
				if cr.row(t, kinds, s.usedStack)[k] >= m.Capacity(k) {
					fits = false
					break
				}
			}
			if !fits {
				continue
			}
			cr.issue[v] = c
			for t := c; t < c+occ; t++ {
				cr.row(t, kinds, s.usedStack)[k]++
			}
			remaining--
			for _, e := range s.g.Succs(v) {
				cr.predsLeft[e.To]--
				if t := c + e.Lat; t > cr.readyAt[e.To] {
					cr.readyAt[e.To] = t
				}
			}
		}
	}
	if s.sh.offer(cost, cr.issue) {
		s.cnt.incumbents++
		s.checkProven(cost)
	} else {
		s.cnt.races++
	}
}

// used returns the usage row for the given cycle, growing the stack lazily.
func (s *solver) used(cycle int) []int {
	for cycle >= len(s.usedStack) {
		s.usedStack = append(s.usedStack, make([]int, s.sh.m.Kinds()))
	}
	return s.usedStack[cycle]
}

// fitsOp reports whether op v can hold its unit from cycle through its
// occupancy window.
func (s *solver) fitsOp(v, cycle int) bool {
	c := s.g.Op(v).Class
	m := s.sh.m
	k := m.KindOf(c)
	for t := cycle; t < cycle+m.Occupancy(c); t++ {
		if s.used(t)[k] >= m.Capacity(k) {
			return false
		}
	}
	return true
}

// holdOp marks v's occupancy window busy (delta +1) or free (delta -1).
func (s *solver) holdOp(v, cycle, delta int) {
	c := s.g.Op(v).Class
	m := s.sh.m
	k := m.KindOf(c)
	for t := cycle; t < cycle+m.Occupancy(c); t++ {
		s.used(t)[k] += delta
	}
}

// lowerBound computes a dependence-based lower bound on the final cost of
// any completion of the current partial schedule: unscheduled ops issue no
// earlier than max(cycle, dependence-ready time).
func (s *solver) lowerBound(cycle int) float64 {
	for _, v := range s.g.Topo() {
		if s.issue[v] >= 0 {
			s.dynEarly[v] = s.issue[v]
			continue
		}
		e := cycle
		if s.readyAt[v] > e {
			e = s.readyAt[v]
		}
		for _, p := range s.g.Preds(v) {
			if s.issue[p.To] < 0 {
				if t := s.dynEarly[p.To] + p.Lat; t > e {
					e = t
				}
			}
		}
		s.dynEarly[v] = e
	}
	total := 0.0
	for i, b := range s.sh.sb.Branches {
		total += s.sh.sb.Prob[i] * float64(s.dynEarly[b]+model.BranchLatency)
	}
	return total
}

// dfs explores all schedules. Within a cycle, ops are added in increasing
// ID order (minID) to avoid enumerating permutations; "advance cycle" is
// always an alternative so idle slots are explored too. Pruning compares
// against the shared incumbent — one atomic load, so every worker benefits
// from every other worker's improvements immediately.
func (s *solver) dfs(cycle, minID, done int) {
	if !s.chargeNode() {
		return
	}
	if cycle > s.horizon {
		// Every schedule has an equal-cost counterpart within the serial
		// horizon, so deeper exploration cannot improve the incumbent.
		s.cnt.pruneHorizon++
		return
	}
	n := s.g.NumOps()
	if done == n {
		s.cnt.leaves++
		cost := 0.0
		for i, b := range s.sh.sb.Branches {
			cost += s.sh.sb.Prob[i] * float64(s.issue[b]+model.BranchLatency)
		}
		if cost < s.sh.bestNow() {
			if s.sh.offer(cost, s.issue) {
				s.cnt.incumbents++
				s.checkProven(cost)
			} else {
				s.cnt.races++
			}
		}
		return
	}
	if s.branchesDone() {
		// Remaining ops cannot change the cost; complete greedily so the
		// incumbent is a full legal schedule, then stop this subtree.
		s.cnt.branchesDone++
		s.completeRest(cycle)
		return
	}
	if s.lowerBound(cycle) >= s.sh.bestNow() {
		s.cnt.pruneBound++
		return
	}
	// Try scheduling each eligible op with ID ≥ minID in this cycle.
	anyCandidate := false
	for v := minID; v < n; v++ {
		if s.issue[v] >= 0 || s.predsLeft[v] > 0 || s.readyAt[v] > cycle {
			continue
		}
		if !s.fitsOp(v, cycle) {
			continue
		}
		anyCandidate = true
		// Place v.
		s.issue[v] = cycle
		s.holdOp(v, cycle, 1)
		type undo struct{ to, prev int }
		var undos [16]undo
		un := undos[:0]
		for _, e := range s.g.Succs(v) {
			s.predsLeft[e.To]--
			un = append(un, undo{e.To, s.readyAt[e.To]})
			if t := cycle + e.Lat; t > s.readyAt[e.To] {
				s.readyAt[e.To] = t
			}
		}
		s.dfs(cycle, v+1, done+1)
		// Unplace v.
		for i := len(un) - 1; i >= 0; i-- {
			s.readyAt[un[i].to] = un[i].prev
			s.predsLeft[un[i].to]++
		}
		s.holdOp(v, cycle, -1)
		s.issue[v] = -1
	}
	// Advance to the next cycle. Skipping ahead is only useful when work
	// remains; recursion depth is bounded because readyAt of some
	// unscheduled op always exceeds the current cycle eventually.
	next := s.nextCycle(cycle, minID, anyCandidate)
	s.dfs(next, 0, done)
}

// nextCycle returns the cycle the advance-cycle move jumps to: cycle+1, or
// the earliest ready time of any schedulable op when nothing could issue.
func (s *solver) nextCycle(cycle, minID int, anyCandidate bool) int {
	next := cycle + 1
	if !anyCandidate && minID == 0 {
		// Nothing can issue now: jump straight to the next cycle where
		// something becomes ready to keep the search shallow.
		soonest := -1
		for v := 0; v < s.g.NumOps(); v++ {
			if s.issue[v] < 0 && s.predsLeft[v] == 0 {
				if soonest < 0 || s.readyAt[v] < soonest {
					soonest = s.readyAt[v]
				}
			}
		}
		if soonest > next {
			next = soonest
		}
	}
	return next
}

// Optimal returns a schedule minimizing the weighted completion time of the
// superblock on the machine, together with its cost. maxNodes caps the
// search (≤ 0 uses DefaultMaxNodes); ErrBudget is returned on overrun.
func Optimal(sb *model.Superblock, m *model.Machine, maxNodes int) (*sched.Schedule, float64, error) {
	return OptimalCtx(context.Background(), sb, m, maxNodes)
}

// OptimalCtx is Optimal with cancellation: the branch-and-bound search
// polls ctx every few thousand nodes and abandons the search with ctx's
// error once it is done. On budget overrun it returns the best incumbent
// alongside ErrBudget; callers that want anytime semantics without an
// error use OptimalBudget.
func OptimalCtx(ctx context.Context, sb *model.Superblock, m *model.Machine, maxNodes int) (*sched.Schedule, float64, error) {
	s, cost, truncated, err := OptimalBudget(ctx, sb, m, maxNodes, nil)
	if err != nil {
		return nil, 0, err
	}
	if truncated {
		return s, cost, ErrBudget
	}
	return s, cost, nil
}

// OptimalBudget is the anytime form of the solver: the search additionally
// honors a resilience.Budget (wall clock + nodes; nil = unlimited),
// reserving budget nodes in per-poll batches so node accounting is exact —
// the search never expands a node the budget did not grant, and unused
// grants are refunded on completion. When the node cap or the budget
// expires, the best incumbent found so far is returned as a legal schedule
// with truncated set — its cost is an upper bound on the true optimum, not
// the optimum — instead of an error. The error return is reserved for
// cancellation and for graphs with no schedule at all.
//
// OptimalBudget always searches single-threaded (the behavior every
// existing caller was built against, and the right default inside the
// engine pipeline, which already fans out across superblocks). Use Solve
// with Options.Workers for the parallel search.
func OptimalBudget(ctx context.Context, sb *model.Superblock, m *model.Machine, maxNodes int, budget *resilience.Budget) (schedule *sched.Schedule, cost float64, truncated bool, err error) {
	return Solve(ctx, sb, m, Options{MaxNodes: maxNodes, Budget: budget, Workers: 1})
}
