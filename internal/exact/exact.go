// Package exact finds provably optimal superblock schedules by exhaustive
// branch-and-bound search. It exists as ground truth for tests and small
// case studies: every lower bound must be ≤ the optimum it returns, and no
// heuristic may beat it. It is exponential and intended for graphs of up to
// roughly 20 operations.
package exact

import (
	"context"
	"errors"
	"math"
	"time"

	"balance/internal/model"
	"balance/internal/resilience"
	"balance/internal/sched"
	"balance/internal/telemetry"
)

// boolInt converts a flag to a 0/1 event attribute.
func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ErrBudget is returned when the search exceeds its node budget.
var ErrBudget = errors.New("exact: node budget exhausted")

// DefaultMaxNodes is the default search budget.
const DefaultMaxNodes = 5_000_000

// ctxCheckInterval is how many search nodes are expanded between context
// polls: frequent enough for sub-millisecond cancellation, rare enough to
// keep the poll off the hot path.
const ctxCheckInterval = 4096

type solver struct {
	sb  *model.Superblock
	m   *model.Machine
	g   *model.Graph
	ctx context.Context

	budget    *resilience.Budget
	spent     int // nodes already spent into the budget
	budgetHit bool

	maxNodes  int
	nodes     int
	overrun   bool
	cancelled bool
	horizon   int

	cnt          solveCounts
	flushed      solveCounts
	startTime    time.Time
	lastProgress time.Time
	// span is the identity of the enclosing exact.solve span, so batched
	// progress events parent to it without re-deriving from the context.
	span telemetry.SpanContext

	best      float64
	bestSched []int

	issue     []int
	predsLeft []int
	readyAt   []int
	usedStack [][]int // per cycle, per kind usage
	dynEarly  []int   // scratch for the pruning bound
}

// Optimal returns a schedule minimizing the weighted completion time of the
// superblock on the machine, together with its cost. maxNodes caps the
// search (≤ 0 uses DefaultMaxNodes); ErrBudget is returned on overrun.
func Optimal(sb *model.Superblock, m *model.Machine, maxNodes int) (*sched.Schedule, float64, error) {
	return OptimalCtx(context.Background(), sb, m, maxNodes)
}

// OptimalCtx is Optimal with cancellation: the branch-and-bound search
// polls ctx every few thousand nodes and abandons the search with ctx's
// error once it is done. On budget overrun it returns the best incumbent
// alongside ErrBudget; callers that want anytime semantics without an
// error use OptimalBudget.
func OptimalCtx(ctx context.Context, sb *model.Superblock, m *model.Machine, maxNodes int) (*sched.Schedule, float64, error) {
	s, cost, truncated, err := OptimalBudget(ctx, sb, m, maxNodes, nil)
	if err != nil {
		return nil, 0, err
	}
	if truncated {
		return s, cost, ErrBudget
	}
	return s, cost, nil
}

// OptimalBudget is the anytime form of the solver: the search additionally
// honors a resilience.Budget (wall clock + nodes; nil = unlimited),
// spending one budget node per expanded search node in batches of the
// context-poll interval. When the node cap or the budget expires, the best
// incumbent found so far is returned as a legal schedule with truncated
// set — its cost is an upper bound on the true optimum, not the optimum —
// instead of an error. The error return is reserved for cancellation and
// for graphs with no schedule at all.
func OptimalBudget(ctx context.Context, sb *model.Superblock, m *model.Machine, maxNodes int, budget *resilience.Budget) (schedule *sched.Schedule, cost float64, truncated bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	n := sb.G.NumOps()
	s := &solver{
		sb:        sb,
		m:         m,
		g:         sb.G,
		ctx:       ctx,
		budget:    budget,
		maxNodes:  maxNodes,
		best:      math.Inf(1),
		issue:     make([]int, n),
		predsLeft: make([]int, n),
		readyAt:   make([]int, n),
		dynEarly:  make([]int, n),
		horizon:   sched.Horizon(sb) + 1,
	}
	for v := 0; v < n; v++ {
		s.issue[v] = -1
		s.predsLeft[v] = len(sb.G.Preds(v))
	}
	s.startTime = time.Now()
	s.lastProgress = s.startTime
	// Seed the incumbent with a critical-path list schedule so pruning has
	// a finite target from the start.
	heights := sched.IntsToFloats(sb.G.Heights())
	if seed, _, err := sched.ListSchedule(sb, m, heights); err == nil {
		s.best = sched.Cost(sb, seed)
		s.bestSched = append([]int(nil), seed.Cycle...)
		s.cnt.incumbents++
	}
	sp, _ := telemetry.Default().StartSpanCtx(ctx, "exact.solve")
	s.span = sp.Context()
	s.dfs(0, 0, 0)
	s.flushTelemetry()
	s.spendBudget()
	telSolves.Inc()
	telSolveDur.ObserveDuration(time.Since(s.startTime))
	if sp.Active() {
		sp.End(
			telemetry.String("sb", sb.Name),
			telemetry.Int("ops", int64(n)),
			telemetry.Int("nodes", int64(s.cnt.nodes)),
			telemetry.Int("pruned_lower_bound", int64(s.cnt.pruneBound)),
			telemetry.Int("incumbent_updates", int64(s.cnt.incumbents)),
			telemetry.Float("best", s.best),
			telemetry.Int("overrun", boolInt(s.overrun)),
			telemetry.Int("truncated_by_budget", boolInt(s.budgetHit)),
			telemetry.Int("cancelled", boolInt(s.cancelled)),
		)
	}
	if s.cancelled {
		telCancels.Inc()
		return nil, 0, false, ctx.Err()
	}
	if s.bestSched == nil {
		return nil, 0, false, errors.New("exact: no schedule found")
	}
	if s.overrun {
		telOverruns.Inc()
		if s.budgetHit {
			telTruncations.Inc()
		}
		return &sched.Schedule{Cycle: s.bestSched}, s.best, true, nil
	}
	return &sched.Schedule{Cycle: s.bestSched}, s.best, false, nil
}

// spendBudget charges the search nodes expanded since the last charge to
// the budget (batched so the per-node path stays free of atomics).
func (s *solver) spendBudget() {
	if s.budget == nil {
		return
	}
	s.budget.Spend(int64(s.nodes - s.spent))
	s.spent = s.nodes
}

// branchesDone reports whether every exit branch has been issued.
func (s *solver) branchesDone() bool {
	for _, b := range s.sb.Branches {
		if s.issue[b] < 0 {
			return false
		}
	}
	return true
}

// completeRest finishes the partial schedule greedily (the cost is already
// fixed once all branches are placed) and updates the incumbent.
func (s *solver) completeRest(cycle int) {
	cost := 0.0
	for i, b := range s.sb.Branches {
		cost += s.sb.Prob[i] * float64(s.issue[b]+model.BranchLatency)
	}
	if cost >= s.best {
		return
	}
	n := s.g.NumOps()
	issue := append([]int(nil), s.issue...)
	predsLeft := append([]int(nil), s.predsLeft...)
	readyAt := append([]int(nil), s.readyAt...)
	used := make(map[int][]int)
	usage := func(c int) []int {
		if row, ok := used[c]; ok {
			return row
		}
		row := make([]int, s.m.Kinds())
		if c < len(s.usedStack) {
			copy(row, s.usedStack[c])
		}
		used[c] = row
		return row
	}
	remaining := 0
	for v := 0; v < n; v++ {
		if issue[v] < 0 {
			remaining++
		}
	}
	for c := cycle; remaining > 0; c++ {
		for v := 0; v < n; v++ {
			if issue[v] >= 0 || predsLeft[v] > 0 || readyAt[v] > c {
				continue
			}
			cls := s.g.Op(v).Class
			k := s.m.KindOf(cls)
			occ := s.m.Occupancy(cls)
			fits := true
			for t := c; t < c+occ; t++ {
				if usage(t)[k] >= s.m.Capacity(k) {
					fits = false
					break
				}
			}
			if !fits {
				continue
			}
			issue[v] = c
			for t := c; t < c+occ; t++ {
				usage(t)[k]++
			}
			remaining--
			for _, e := range s.g.Succs(v) {
				predsLeft[e.To]--
				if t := c + e.Lat; t > readyAt[e.To] {
					readyAt[e.To] = t
				}
			}
		}
	}
	s.best = cost
	s.bestSched = append(s.bestSched[:0], issue...)
	s.cnt.incumbents++
}

// used returns the usage row for the given cycle, growing the stack lazily.
func (s *solver) used(cycle int) []int {
	for cycle >= len(s.usedStack) {
		s.usedStack = append(s.usedStack, make([]int, s.m.Kinds()))
	}
	return s.usedStack[cycle]
}

// fitsOp reports whether op v can hold its unit from cycle through its
// occupancy window.
func (s *solver) fitsOp(v, cycle int) bool {
	c := s.g.Op(v).Class
	k := s.m.KindOf(c)
	for t := cycle; t < cycle+s.m.Occupancy(c); t++ {
		if s.used(t)[k] >= s.m.Capacity(k) {
			return false
		}
	}
	return true
}

// holdOp marks v's occupancy window busy (delta +1) or free (delta -1).
func (s *solver) holdOp(v, cycle, delta int) {
	c := s.g.Op(v).Class
	k := s.m.KindOf(c)
	for t := cycle; t < cycle+s.m.Occupancy(c); t++ {
		s.used(t)[k] += delta
	}
}

// lowerBound computes a dependence-based lower bound on the final cost of
// any completion of the current partial schedule: unscheduled ops issue no
// earlier than max(cycle, dependence-ready time).
func (s *solver) lowerBound(cycle int) float64 {
	for _, v := range s.g.Topo() {
		if s.issue[v] >= 0 {
			s.dynEarly[v] = s.issue[v]
			continue
		}
		e := cycle
		if s.readyAt[v] > e {
			e = s.readyAt[v]
		}
		for _, p := range s.g.Preds(v) {
			if s.issue[p.To] < 0 {
				if t := s.dynEarly[p.To] + p.Lat; t > e {
					e = t
				}
			}
		}
		s.dynEarly[v] = e
	}
	total := 0.0
	for i, b := range s.sb.Branches {
		total += s.sb.Prob[i] * float64(s.dynEarly[b]+model.BranchLatency)
	}
	return total
}

// dfs explores all schedules. Within a cycle, ops are added in increasing
// ID order (minID) to avoid enumerating permutations; "advance cycle" is
// always an alternative so idle slots are explored too.
func (s *solver) dfs(cycle, minID, done int) {
	if s.overrun || s.cancelled {
		return
	}
	s.nodes++
	s.cnt.nodes++
	if s.nodes > s.maxNodes {
		s.overrun = true
		return
	}
	if s.nodes%ctxCheckInterval == 0 {
		if s.ctx.Err() != nil {
			s.cancelled = true
			return
		}
		if s.budget != nil {
			s.spendBudget()
			if s.budget.Expired() {
				s.budgetHit = true
				s.overrun = true
				return
			}
		}
		s.maybeProgress()
	}
	if cycle > s.horizon {
		// Every schedule has an equal-cost counterpart within the serial
		// horizon, so deeper exploration cannot improve the incumbent.
		s.cnt.pruneHorizon++
		return
	}
	n := s.g.NumOps()
	if done == n {
		s.cnt.leaves++
		cost := 0.0
		for i, b := range s.sb.Branches {
			cost += s.sb.Prob[i] * float64(s.issue[b]+model.BranchLatency)
		}
		if cost < s.best {
			s.best = cost
			s.bestSched = append(s.bestSched[:0], s.issue...)
			s.cnt.incumbents++
		}
		return
	}
	if s.branchesDone() {
		// Remaining ops cannot change the cost; complete greedily so the
		// incumbent is a full legal schedule, then stop this subtree.
		s.cnt.branchesDone++
		s.completeRest(cycle)
		return
	}
	if s.lowerBound(cycle) >= s.best {
		s.cnt.pruneBound++
		return
	}
	// Try scheduling each eligible op with ID ≥ minID in this cycle.
	anyCandidate := false
	for v := minID; v < n; v++ {
		if s.issue[v] >= 0 || s.predsLeft[v] > 0 || s.readyAt[v] > cycle {
			continue
		}
		if !s.fitsOp(v, cycle) {
			continue
		}
		anyCandidate = true
		// Place v.
		s.issue[v] = cycle
		s.holdOp(v, cycle, 1)
		type undo struct{ to, prev int }
		var undos [16]undo
		un := undos[:0]
		for _, e := range s.g.Succs(v) {
			s.predsLeft[e.To]--
			un = append(un, undo{e.To, s.readyAt[e.To]})
			if t := cycle + e.Lat; t > s.readyAt[e.To] {
				s.readyAt[e.To] = t
			}
		}
		s.dfs(cycle, v+1, done+1)
		// Unplace v.
		for i := len(un) - 1; i >= 0; i-- {
			s.readyAt[un[i].to] = un[i].prev
			s.predsLeft[un[i].to]++
		}
		s.holdOp(v, cycle, -1)
		s.issue[v] = -1
	}
	// Advance to the next cycle. Skipping ahead is only useful when work
	// remains; recursion depth is bounded because readyAt of some
	// unscheduled op always exceeds the current cycle eventually.
	next := cycle + 1
	if !anyCandidate && minID == 0 {
		// Nothing can issue now: jump straight to the next cycle where
		// something becomes ready to keep the search shallow.
		soonest := -1
		for v := 0; v < n; v++ {
			if s.issue[v] < 0 && s.predsLeft[v] == 0 {
				if soonest < 0 || s.readyAt[v] < soonest {
					soonest = s.readyAt[v]
				}
			}
		}
		if soonest > next {
			next = soonest
		}
	}
	s.dfs(next, 0, done)
}
