package exact

import (
	"context"
	"fmt"
	"testing"
	"time"

	"balance/internal/model"
	"balance/internal/resilience"
	"balance/internal/sched"
)

// budgetTestSB builds a search-hostile superblock: n independent integer
// ops feeding two branches. Independent same-class ops make the
// dependence-only pruning bound weak, so the search needs far more than
// one poll interval of nodes — big enough that a tiny budget cannot finish
// the search, small enough that the unbudgeted search proves the optimum.
func budgetTestSB(t *testing.T, n int, p float64) *model.Superblock {
	t.Helper()
	b := model.NewBuilder(fmt.Sprintf("hard-%d", n))
	var ids []int
	for i := 0; i < n; i++ {
		ids = append(ids, b.Int())
	}
	b.Branch(p, ids[:n/2]...)
	b.Branch(0, ids...)
	return b.MustBuild()
}

// TestOptimalBudgetTruncation is the anytime contract: with a tiny budget
// the solver returns a legal schedule whose cost is ≥ the true optimum
// found with no budget, and the truncated flag is set.
func TestOptimalBudgetTruncation(t *testing.T) {
	m := model.GP2()
	truncatedSeen := false
	for _, n := range []int{8, 9, 10} {
		seed := int64(n)
		sb := budgetTestSB(t, n, 0.3)

		_, opt, cut, err := OptimalBudget(context.Background(), sb, m, 0, nil)
		if err != nil {
			t.Fatalf("seed %d: unbudgeted solve: %v", seed, err)
		}
		if cut {
			t.Fatalf("seed %d: unbudgeted solve reported truncation", seed)
		}

		// One budget node expires at the first poll: the incumbent at that
		// point is the seeded list schedule or an early improvement.
		s, cost, truncated, err := OptimalBudget(context.Background(), sb, m, 0, resilience.NewBudget(0, 1))
		if err != nil {
			t.Fatalf("seed %d: budgeted solve: %v", seed, err)
		}
		if s == nil {
			t.Fatalf("seed %d: truncated solve returned no schedule", seed)
		}
		if verr := sched.Verify(sb, m, s); verr != nil {
			t.Errorf("seed %d: truncated schedule is illegal: %v", seed, verr)
		}
		if cost < opt-1e-9 {
			t.Errorf("seed %d: truncated cost %.6f beats the true optimum %.6f", seed, cost, opt)
		}
		if got := sched.Cost(sb, s); got != cost {
			t.Errorf("seed %d: reported cost %.6f != schedule cost %.6f", seed, cost, got)
		}
		truncatedSeen = truncatedSeen || truncated
		if !truncated && cost > opt+1e-9 {
			t.Errorf("seed %d: suboptimal cost without the truncated flag", seed)
		}
	}
	if !truncatedSeen {
		t.Error("no seed produced a truncated solve; the corpus is too easy for the test")
	}
}

// TestOptimalBudgetWallClock: an expired wall deadline truncates at the
// first poll instead of erroring.
func TestOptimalBudgetWallClock(t *testing.T) {
	sb := budgetTestSB(t, 9, 0.4)
	b := resilience.NewBudget(time.Nanosecond, 0)
	time.Sleep(time.Millisecond)
	s, _, truncated, err := OptimalBudget(context.Background(), sb, model.GP1(), 0, b)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("no incumbent returned")
	}
	if !truncated {
		t.Skip("search finished inside the first poll interval; nothing to truncate")
	}
	if verr := sched.Verify(sb, model.GP1(), s); verr != nil {
		t.Errorf("truncated schedule is illegal: %v", verr)
	}
}

// TestOptimalCtxBudgetCompat: the legacy entry point still reports node
// overruns as ErrBudget with the incumbent attached.
func TestOptimalCtxBudgetCompat(t *testing.T) {
	sb := budgetTestSB(t, 8, 0.3)
	s, cost, err := OptimalCtx(context.Background(), sb, model.GP2(), 10)
	if err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if s == nil || cost <= 0 {
		t.Fatal("ErrBudget without the best incumbent")
	}
}

// TestBudgetAccountingExact pins the reservation invariant to ±0: a solve
// charges the budget for exactly the nodes it expanded — never more (the
// old spend-after-poll pattern overshot by up to a poll interval per
// worker) and never less (unused grants are refunded on completion).
func TestBudgetAccountingExact(t *testing.T) {
	sb := budgetTestSB(t, 12, 0.3)
	m := model.GP2()
	for _, tc := range []struct {
		name    string
		workers int
		limit   int64
	}{
		{"serial-truncated", 1, 3 * ctxCheckInterval},
		{"parallel-truncated", 4, 3 * ctxCheckInterval},
		{"parallel-odd-limit", 4, 2*ctxCheckInterval + 37},
		{"parallel-finishing", 4, 0}, // unlimited nodes: spent == expanded
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := resilience.NewBudget(0, tc.limit)
			before := telNodes.Value()
			_, _, _, err := Solve(context.Background(), sb, m, Options{Workers: tc.workers, Budget: b})
			if err != nil {
				t.Fatal(err)
			}
			expanded := telNodes.Value() - before
			if spent := b.Spent(); spent != expanded {
				t.Errorf("budget charged %d nodes, search expanded %d (want exact match)", spent, expanded)
			}
			if tc.limit > 0 && b.Spent() > tc.limit {
				t.Errorf("budget overshot: spent %d of limit %d", b.Spent(), tc.limit)
			}
		})
	}
}
