// Package gen synthesizes superblock corpora that stand in for the paper's
// SPECint95 superblocks (produced there by the IMPACT/Elcor/LEGO tool
// chain, which is not available). Each benchmark has a profile controlling
// superblock counts, size and block-count distributions, operation mix,
// dependence density and chain structure, side-exit probabilities, and
// dynamic execution frequencies. Generation is fully deterministic given a
// seed, so every table and figure of the evaluation is reproducible.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"balance/internal/model"
)

// Profile describes one synthetic benchmark.
type Profile struct {
	// Name of the benchmark ("gcc", "compress", ...).
	Name string
	// Count is the number of superblocks at scale 1.
	Count int
	// OpMean and OpSigma parameterize the lognormal distribution of
	// non-branch operation counts; OpMax clamps the tail.
	OpMean  float64
	OpSigma float64
	OpMax   int
	// BlockMean is the mean number of basic blocks (exits) per superblock;
	// MaxBranches clamps it.
	BlockMean   float64
	MaxBranches int
	// MemFrac and FloatFrac give the fraction of memory and floating-point
	// operations (SPECint95 is integer-dominated, so FloatFrac is small).
	MemFrac   float64
	FloatFrac float64
	// DepGeom is the parameter of the recency-geometric used to pick
	// dependence sources: larger values produce tighter, chainier graphs
	// (less ILP); smaller values produce wide, parallel graphs.
	DepGeom float64
	// DepMean is the mean number of incoming dependences per operation.
	DepMean float64
	// SideTakenMean is the mean taken probability of a side exit.
	SideTakenMean float64
	// FreqAlpha is the Pareto shape of the dynamic execution frequency
	// (smaller = heavier tail).
	FreqAlpha float64
	// SpineFrac is the fraction of each block's operations that join the
	// block's "spine": a dependence chain that ends at the block's branch
	// (the compare feeding the exit). Spines give every branch a realistic
	// dependence height and make the block's work actually matter to it.
	SpineFrac float64
	// BranchFan is the number of additional non-spine operations the
	// block-ending branch depends on (0-2).
	BranchFan int
}

// SPECint95 returns the eight benchmark profiles, loosely calibrated to the
// corpus statistics the paper reports (6615 superblocks across SPECint95,
// integer-dominated, with a heavy tail of large superblocks). Counts are
// scaled down by default; pass a larger scale to Generate for bigger runs.
func SPECint95() []Profile {
	return []Profile{
		{Name: "099.go", Count: 110, OpMean: 26, OpSigma: 0.8, OpMax: 220, BlockMean: 3.4, MaxBranches: 24, MemFrac: 0.22, FloatFrac: 0.00, DepGeom: 0.35, DepMean: 1.3, SideTakenMean: 0.22, SpineFrac: 0.45, BranchFan: 2, FreqAlpha: 1.1},
		{Name: "124.m88ksim", Count: 90, OpMean: 18, OpSigma: 0.7, OpMax: 140, BlockMean: 2.8, MaxBranches: 16, MemFrac: 0.28, FloatFrac: 0.01, DepGeom: 0.40, DepMean: 1.4, SideTakenMean: 0.18, SpineFrac: 0.5, BranchFan: 1, FreqAlpha: 1.0},
		{Name: "126.gcc", Count: 210, OpMean: 30, OpSigma: 0.9, OpMax: 300, BlockMean: 3.8, MaxBranches: 32, MemFrac: 0.30, FloatFrac: 0.00, DepGeom: 0.32, DepMean: 1.3, SideTakenMean: 0.20, SpineFrac: 0.4, BranchFan: 2, FreqAlpha: 1.2},
		{Name: "129.compress", Count: 45, OpMean: 14, OpSigma: 0.6, OpMax: 90, BlockMean: 2.4, MaxBranches: 10, MemFrac: 0.26, FloatFrac: 0.00, DepGeom: 0.45, DepMean: 1.5, SideTakenMean: 0.25, SpineFrac: 0.55, BranchFan: 1, FreqAlpha: 0.9},
		{Name: "130.li", Count: 80, OpMean: 16, OpSigma: 0.7, OpMax: 120, BlockMean: 2.6, MaxBranches: 14, MemFrac: 0.32, FloatFrac: 0.00, DepGeom: 0.42, DepMean: 1.4, SideTakenMean: 0.20, SpineFrac: 0.5, BranchFan: 1, FreqAlpha: 1.0},
		{Name: "132.ijpeg", Count: 85, OpMean: 24, OpSigma: 0.8, OpMax: 200, BlockMean: 2.9, MaxBranches: 18, MemFrac: 0.24, FloatFrac: 0.04, DepGeom: 0.30, DepMean: 1.2, SideTakenMean: 0.15, SpineFrac: 0.35, BranchFan: 2, FreqAlpha: 1.1},
		{Name: "134.perl", Count: 100, OpMean: 22, OpSigma: 0.8, OpMax: 180, BlockMean: 3.2, MaxBranches: 20, MemFrac: 0.30, FloatFrac: 0.00, DepGeom: 0.36, DepMean: 1.4, SideTakenMean: 0.22, SpineFrac: 0.45, BranchFan: 2, FreqAlpha: 1.1},
		{Name: "147.vortex", Count: 120, OpMean: 20, OpSigma: 0.8, OpMax: 160, BlockMean: 3.0, MaxBranches: 18, MemFrac: 0.34, FloatFrac: 0.00, DepGeom: 0.38, DepMean: 1.3, SideTakenMean: 0.18, SpineFrac: 0.5, BranchFan: 1, FreqAlpha: 1.2},
	}
}

// ProfileByName returns the named SPECint95 profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range SPECint95() {
		if p.Name == name || shortName(p.Name) == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("gen: unknown benchmark %q", name)
}

// shortName strips the SPEC number prefix ("126.gcc" -> "gcc").
func shortName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}

// Generate produces the profile's superblocks at the given scale (scale 1 =
// Profile.Count superblocks; 0 < scale). Generation is deterministic in
// (profile name, seed, scale).
func Generate(p Profile, seed int64, scale float64) []*model.Superblock {
	if scale <= 0 {
		scale = 1
	}
	count := int(math.Round(float64(p.Count) * scale))
	if count < 1 {
		count = 1
	}
	out := make([]*model.Superblock, 0, count)
	base := rand.New(rand.NewSource(seed ^ int64(hashString(p.Name))))
	for i := 0; i < count; i++ {
		sbSeed := base.Int63()
		out = append(out, generateOne(p, i, sbSeed))
	}
	return out
}

// Suite bundles the superblocks of several benchmarks.
type Suite struct {
	// Benchmarks maps benchmark name to its superblocks.
	Benchmarks map[string][]*model.Superblock
	// Order lists benchmark names in canonical order.
	Order []string
}

// All returns every superblock of the suite in canonical order.
func (s *Suite) All() []*model.Superblock {
	var out []*model.Superblock
	for _, name := range s.Order {
		out = append(out, s.Benchmarks[name]...)
	}
	return out
}

// NumSuperblocks returns the total superblock count.
func (s *Suite) NumSuperblocks() int {
	n := 0
	for _, sbs := range s.Benchmarks {
		n += len(sbs)
	}
	return n
}

// GenerateSuite generates all eight SPECint95 profiles.
func GenerateSuite(seed int64, scale float64) *Suite {
	s := &Suite{Benchmarks: make(map[string][]*model.Superblock)}
	for _, p := range SPECint95() {
		s.Benchmarks[p.Name] = Generate(p, seed, scale)
		s.Order = append(s.Order, p.Name)
	}
	return s
}

// generateOne builds one superblock.
func generateOne(p Profile, index int, seed int64) *model.Superblock {
	rng := rand.New(rand.NewSource(seed))
	b := model.NewBuilder(fmt.Sprintf("%s/sb%04d", p.Name, index))

	// Size: lognormal op count.
	nOps := int(math.Exp(math.Log(p.OpMean) + p.OpSigma*rng.NormFloat64()))
	if nOps < 2 {
		nOps = 2
	}
	if nOps > p.OpMax {
		nOps = p.OpMax
	}
	// Blocks: 1 + geometric with the given mean.
	nBlocks := 1
	for nBlocks < p.MaxBranches && rng.Float64() < 1-1/p.BlockMean {
		nBlocks++
	}
	if nBlocks > nOps {
		nBlocks = nOps
	}

	// Side-exit taken probabilities and the resulting exit probabilities:
	// exit i is reached with probability Π_{j<i}(1-t_j), and taken with
	// probability t_i.
	reach := 1.0
	exitProb := make([]float64, nBlocks)
	for i := 0; i < nBlocks-1; i++ {
		taken := p.SideTakenMean * rng.ExpFloat64()
		if taken > 0.85 {
			taken = 0.85
		}
		exitProb[i] = reach * taken
		reach *= 1 - taken
	}
	exitProb[nBlocks-1] = reach

	// Distribute ops over blocks, front-loaded slightly (superblock
	// formation grows hot traces from the top).
	opsPerBlock := make([]int, nBlocks)
	left := nOps
	for blk := 0; blk < nBlocks; blk++ {
		share := left / (nBlocks - blk)
		jitter := 0
		if share > 1 {
			jitter = rng.Intn(share)
		}
		n := share + jitter/2
		if n < 1 {
			n = 1
		}
		if blk == nBlocks-1 || n > left-(nBlocks-blk-1) {
			n = left - (nBlocks - blk - 1)
		}
		opsPerBlock[blk] = n
		left -= n
	}

	var ids []int
	for blk := 0; blk < nBlocks; blk++ {
		spine := -1 // most recent spine op of this block
		for i := 0; i < opsPerBlock[blk]; i++ {
			id := b.AddOp(sampleClass(rng, p))
			// Incoming dependences: recency-geometric over earlier ops.
			nDeps := 0
			for nDeps < 3 && rng.Float64() < p.DepMean/(p.DepMean+1) {
				nDeps++
			}
			for d := 0; d < nDeps && len(ids) > 0; d++ {
				b.Dep(ids[pickRecency(rng, len(ids), p.DepGeom)], id)
			}
			// A fraction of each block's ops chain into the spine that
			// ultimately feeds the block's branch.
			if rng.Float64() < p.SpineFrac {
				if spine >= 0 {
					b.Dep(spine, id)
				}
				spine = id
			}
			ids = append(ids, id)
		}
		// The block-ending branch consumes the spine (its compare chain)
		// plus a few other recent values.
		var brDeps []int
		if spine >= 0 {
			brDeps = append(brDeps, spine)
		}
		fan := p.BranchFan
		if fan <= 0 {
			fan = 1
		}
		for d := 0; d < 1+rng.Intn(fan) && len(ids) > 0; d++ {
			brDeps = append(brDeps, ids[pickRecency(rng, len(ids), 0.6)])
		}
		br := b.Branch(exitProb[blk], brDeps...)
		ids = append(ids, br)
	}

	// Pareto-tailed dynamic execution frequency.
	u := rng.Float64()
	if u < 1e-9 {
		u = 1e-9
	}
	freq := math.Pow(1/u, 1/p.FreqAlpha)
	if freq > 1e6 {
		freq = 1e6
	}
	b.SetFreq(freq)

	sb, err := b.Build()
	if err != nil {
		// Generation parameters guarantee validity; a failure is a bug.
		panic(fmt.Sprintf("gen: invalid superblock: %v", err))
	}
	return sb
}

// sampleClass picks an operation class per the profile's mix.
func sampleClass(rng *rand.Rand, p Profile) model.Class {
	r := rng.Float64()
	switch {
	case r < p.FloatFrac:
		f := rng.Float64()
		switch {
		case f < 0.6:
			return model.FloatAdd
		case f < 0.9:
			return model.FloatMul
		default:
			return model.FloatDiv
		}
	case r < p.FloatFrac+p.MemFrac:
		if rng.Float64() < 0.65 {
			return model.Load
		}
		return model.Store
	default:
		return model.Int
	}
}

// pickRecency returns an index in [0, n) biased toward n-1 with geometric
// parameter g (larger g = stronger recency bias).
func pickRecency(rng *rand.Rand, n int, g float64) int {
	back := 0
	for back < n-1 && rng.Float64() > g {
		back++
	}
	i := n - 1 - back
	if i < 0 {
		i = 0
	}
	return i
}

// hashString is a tiny FNV-1a for deterministic per-profile seeds.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
