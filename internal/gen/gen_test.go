package gen

import (
	"math"
	"testing"

	"balance/internal/model"
)

func TestGenerateDeterministic(t *testing.T) {
	p, err := ProfileByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	a := Generate(p, 1, 0.1)
	b := Generate(p, 1, 0.1)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].G.NumOps() != b[i].G.NumOps() || a[i].Freq != b[i].Freq {
			t.Fatalf("superblock %d differs between identical generations", i)
		}
		for v := 0; v < a[i].G.NumOps(); v++ {
			if a[i].G.Op(v).Class != b[i].G.Op(v).Class {
				t.Fatalf("superblock %d op %d class differs", i, v)
			}
		}
	}
	c := Generate(p, 2, 0.1)
	same := true
	for i := range a {
		if i < len(c) && a[i].G.NumOps() != c[i].G.NumOps() {
			same = false
		}
	}
	if same && len(a) == len(c) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGeneratedSuperblocksValid(t *testing.T) {
	s := GenerateSuite(7, 0.2)
	if s.NumSuperblocks() == 0 {
		t.Fatal("empty suite")
	}
	for name, sbs := range s.Benchmarks {
		for _, sb := range sbs {
			if err := sb.Validate(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestGeneratedStatistics(t *testing.T) {
	p, _ := ProfileByName("gcc")
	sbs := Generate(p, 3, 1)
	totalOps, totalBranches, maxOps, maxBr := 0, 0, 0, 0
	floatOps, memOps, intOps := 0, 0, 0
	for _, sb := range sbs {
		n := sb.G.NumOps()
		totalOps += n
		totalBranches += sb.NumBranches()
		if n > maxOps {
			maxOps = n
		}
		if b := sb.NumBranches(); b > maxBr {
			maxBr = b
		}
		for _, op := range sb.G.Ops() {
			switch op.Class.Resource() {
			case model.ResFloat:
				floatOps++
			case model.ResMem:
				memOps++
			case model.ResInt:
				intOps++
			}
		}
	}
	avgOps := float64(totalOps) / float64(len(sbs))
	if avgOps < 10 || avgOps > 80 {
		t.Errorf("gcc average ops = %v, implausible", avgOps)
	}
	if maxBr < 4 {
		t.Errorf("gcc max branches = %d, expected multi-exit superblocks", maxBr)
	}
	if floatOps > intOps/5 {
		t.Errorf("SPECint-like corpus has too many float ops: %d float vs %d int", floatOps, intOps)
	}
	if memOps == 0 {
		t.Error("no memory operations generated")
	}
}

func TestExitProbabilitiesFormAChain(t *testing.T) {
	p, _ := ProfileByName("go")
	for _, sb := range Generate(p, 11, 0.3) {
		sum := 0.0
		for _, pr := range sb.Prob {
			if pr < 0 {
				t.Fatalf("negative exit probability in %s", sb.Name)
			}
			sum += pr
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("%s exit probabilities sum to %v", sb.Name, sum)
		}
	}
}

func TestFrequenciesHeavyTailed(t *testing.T) {
	p, _ := ProfileByName("perl")
	sbs := Generate(p, 5, 1)
	min, max := math.Inf(1), 0.0
	for _, sb := range sbs {
		if sb.Freq < min {
			min = sb.Freq
		}
		if sb.Freq > max {
			max = sb.Freq
		}
	}
	if max/min < 10 {
		t.Errorf("frequency spread %v..%v too flat for a profiled corpus", min, max)
	}
}

func TestProfileByNameForms(t *testing.T) {
	if _, err := ProfileByName("126.gcc"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("gcc"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("accepted unknown benchmark")
	}
}

func TestSuiteAllOrdering(t *testing.T) {
	s := GenerateSuite(1, 0.05)
	all := s.All()
	if len(all) != s.NumSuperblocks() {
		t.Errorf("All() returned %d, suite has %d", len(all), s.NumSuperblocks())
	}
	if len(s.Order) != 8 {
		t.Errorf("suite has %d benchmarks, want 8", len(s.Order))
	}
}
