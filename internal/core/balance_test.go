package core

import (
	"math/rand"
	"testing"

	"balance/internal/bounds"
	"balance/internal/exact"
	"balance/internal/figures"
	"balance/internal/model"
	"balance/internal/sched"
	"balance/internal/testutil"
)

func runBalance(t *testing.T, cfg Config, sb *model.Superblock, m *model.Machine) (*sched.Schedule, sched.Stats) {
	t.Helper()
	s, stats, err := Balance(cfg).Run(sb, m)
	if err != nil {
		t.Fatalf("balance on %s/%s: %v", sb.Name, m.Name, err)
	}
	if err := sched.Verify(sb, m, s); err != nil {
		t.Fatalf("balance produced an illegal schedule: %v", err)
	}
	return s, stats
}

// TestFigure2BalanceOptimal reproduces Observation 1: Balance recognizes
// that branch 6 needs op 4 in cycle 0 while branch 3 needs only one of
// {0,1,2}, schedules compatible needs, and reaches the optimum (br3 at 2,
// br6 at 3) where a pure help-based pick delays br6 to 4.
func TestFigure2BalanceOptimal(t *testing.T) {
	sb := figures.Figure2(0.3)
	m := model.GP2()
	s, _ := runBalance(t, DefaultConfig(), sb, m)
	if c := s.Cycle[sb.Branches[0]]; c != 2 {
		t.Errorf("side exit at %d, want 2", c)
	}
	if c := s.Cycle[sb.Branches[1]]; c != 3 {
		t.Errorf("final exit at %d, want 3", c)
	}
}

// TestFigure3BalanceOptimal reproduces Observation 2: with resource-aware
// bounds Balance knows op 4 must issue in cycle 0 (separation 5 to br9) and
// reaches the optimum (br3 at 2, br9 at 5).
func TestFigure3BalanceOptimal(t *testing.T) {
	sb := figures.Figure3(0.3)
	m := model.GP2()
	s, _ := runBalance(t, DefaultConfig(), sb, m)
	if c := s.Cycle[sb.Branches[0]]; c != 2 {
		t.Errorf("side exit at %d, want 2", c)
	}
	if c := s.Cycle[sb.Branches[1]]; c != 5 {
		t.Errorf("final exit at %d, want 5", c)
	}
	// Without the resource-aware bounds the same machinery may miss op 4's
	// deadline; quality must still be legal and no better than optimal.
	noBounds := DefaultConfig()
	noBounds.UseBounds = false
	noBounds.Tradeoff = false
	s2, _ := runBalance(t, noBounds, sb, m)
	_, opt, err := exact.Optimal(sb, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := sched.Cost(sb, s2); c < opt-1e-9 {
		t.Fatalf("no-bounds variant beat the optimum: %v < %v", c, opt)
	}
}

// TestFigure4BalanceTradeoff reproduces Observation 3: the optimal schedule
// depends on the side exit probability, and Balance with tradeoffs matches
// the exact optimum on both sides of the crossover.
func TestFigure4BalanceTradeoff(t *testing.T) {
	m := model.GP2()
	for _, p := range []float64{0.05, 0.1, 0.4, 0.6} {
		sb := figures.Figure4(p)
		s, _ := runBalance(t, DefaultConfig(), sb, m)
		_, opt, err := exact.Optimal(sb, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if c := sched.Cost(sb, s); c > opt+1e-9 {
			t.Errorf("P=%v: Balance cost %v, optimum %v (branches at %d,%d)",
				p, c, opt, s.Cycle[sb.Branches[0]], s.Cycle[sb.Branches[1]])
		}
	}
}

func TestBalanceLegalEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfgs := []Config{
		DefaultConfig(),
		{UseBounds: true, HelpDelay: true, Tradeoff: false, Update: UpdatePerOp},
		{UseBounds: true, HelpDelay: false, Tradeoff: false, Update: UpdatePerOp},
		{UseBounds: false, HelpDelay: true, Tradeoff: false, Update: UpdatePerOp},
		{UseBounds: false, HelpDelay: false, Tradeoff: false, Update: UpdatePerOp},
		{UseBounds: true, HelpDelay: true, Tradeoff: true, Update: UpdateLight},
		{UseBounds: true, HelpDelay: true, Tradeoff: true, Update: UpdatePerCycle},
	}
	for i := 0; i < 15; i++ {
		sb := testutil.RandomSuperblock(rng, 30)
		for _, m := range model.Machines() {
			for _, cfg := range cfgs {
				runBalance(t, cfg, sb, m)
			}
		}
	}
}

// TestBalanceRespectsBounds: Balance can never beat the tightest lower
// bound, and on small graphs never beats the exact optimum.
func TestBalanceRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 30; i++ {
		sb := testutil.RandomSuperblock(rng, 14)
		for _, m := range testutil.SmallMachines() {
			set := bounds.Compute(sb, m, bounds.Options{Triplewise: true})
			s, _ := runBalance(t, DefaultConfig(), sb, m)
			c := sched.Cost(sb, s)
			if c < set.Tightest-1e-9 {
				t.Fatalf("iter %d %s: Balance %v below tightest bound %v", i, m.Name, c, set.Tightest)
			}
			_, opt, err := exact.Optimal(sb, m, 2_000_000)
			if err != nil {
				continue
			}
			if c < opt-1e-9 {
				t.Fatalf("iter %d %s: Balance %v below optimum %v", i, m.Name, c, opt)
			}
		}
	}
}

// TestBalanceOptimalityRate: on small random superblocks, full Balance
// should find the exact optimum most of the time — and at least as often as
// the bound-free help-style variant.
func TestBalanceOptimalityRate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	noBounds := Config{UseBounds: false, HelpDelay: false, Update: UpdatePerOp}
	full, weak, total := 0, 0, 0
	for i := 0; i < 60; i++ {
		sb := testutil.RandomSuperblock(rng, 12)
		m := model.GP2()
		_, opt, err := exact.Optimal(sb, m, 1_000_000)
		if err != nil {
			continue
		}
		total++
		sf, _ := runBalance(t, DefaultConfig(), sb, m)
		if sched.Cost(sb, sf) <= opt+1e-9 {
			full++
		}
		sw, _ := runBalance(t, noBounds, sb, m)
		if sched.Cost(sb, sw) <= opt+1e-9 {
			weak++
		}
	}
	if total == 0 {
		t.Skip("no instances solved exactly")
	}
	if float64(full) < 0.8*float64(total) {
		t.Errorf("Balance optimal on only %d/%d small instances", full, total)
	}
	if full < weak {
		t.Errorf("full Balance optimal on %d, weaker variant on %d of %d", full, weak, total)
	}
	t.Logf("optimality: full=%d weak=%d of %d", full, weak, total)
}

func TestUpdateModesCountWork(t *testing.T) {
	sb := figures.Figure1(0.25)
	m := model.GP2()
	cfgPerOp := DefaultConfig()
	cfgLight := DefaultConfig()
	cfgLight.Update = UpdateLight
	_, stPerOp := runBalance(t, cfgPerOp, sb, m)
	_, stLight := runBalance(t, cfgLight, sb, m)
	if stPerOp.FullUpdates == 0 {
		t.Error("per-op mode recorded no full updates")
	}
	if stLight.LightUpdates == 0 {
		t.Error("light mode recorded no light updates")
	}
	if stLight.FullUpdates >= stPerOp.FullUpdates {
		t.Errorf("light mode did %d full updates, per-op %d — light should do fewer",
			stLight.FullUpdates, stPerOp.FullUpdates)
	}
}

func TestVariantNames(t *testing.T) {
	if got := Balance(DefaultConfig()).Name; got != "Balance" {
		t.Errorf("default name = %q", got)
	}
	cfg := Config{UseBounds: true, HelpDelay: false, Update: UpdatePerCycle}
	if got := Balance(cfg).Name; got != "Balance[Help+Bound/cycle]" {
		t.Errorf("variant name = %q", got)
	}
}
