package core

import (
	"balance/internal/bounds"
	"balance/internal/sched"
)

// selection is the result of one compatible-branch selection pass.
type selection struct {
	// outcome[bi] is the status of branch bi in this pass.
	outcome []outcome
	// takeEach lists the operations each of which must issue this cycle to
	// satisfy the dependence needs of the selected branches.
	takeEach []int
	// takeOne lists the operations of which one must be chosen in this
	// decision to satisfy the resource needs of every selected branch that
	// has one; nil means no pending resource constraint.
	takeOne []int
	// rank is Σw(selected)+Σw(delayedOK)-Σw(delayed).
	rank float64
}

// selectCompatible runs the branch selection of Sections 5.3-5.4: process
// branches by decreasing exit probability, selecting each branch whose
// needs can be satisfied jointly with those already selected; then use the
// pairwise bounds to bless beneficial delays (delayedOK) and to retry with
// a swapped order when the bounds say a selected branch should have been
// the delayed one. The highest-ranked selection wins.
func (p *Picker) selectCompatible(st *sched.State) *selection {
	order := append([]int(nil), p.baseOrd...)
	if p.exp != nil {
		p.exp.pass = 0
	}
	best := p.passOnce(st, order)
	p.applyTradeoffs(best)
	best.rank = p.rankOf(best)
	if !p.cfg.Tradeoff {
		return best
	}
	for iter := 0; iter < p.cfg.MaxTradeoffIters; iter++ {
		i, j := p.findSwap(best, order)
		if i < 0 {
			break
		}
		selBr, delBr := order[i], order[j]
		order[i], order[j] = order[j], order[i]
		if p.exp != nil {
			p.exp.pass = iter + 1
		}
		cand := p.passOnce(st, order)
		p.applyTradeoffs(cand)
		cand.rank = p.rankOf(cand)
		kept := cand.rank > best.rank
		if p.exp != nil {
			p.exp.cur.Swaps = append(p.exp.cur.Swaps, SwapNote{
				Iter:       iter,
				Selected:   selBr,
				Delayed:    delBr,
				RankBefore: best.rank,
				RankAfter:  cand.rank,
				Kept:       kept,
			})
		}
		if kept {
			best = cand
		} else {
			break
		}
	}
	return best
}

// rankOf computes a selection's rank.
func (p *Picker) rankOf(sel *selection) float64 {
	rank := 0.0
	for bi, oc := range sel.outcome {
		switch oc {
		case outcomeSelected, outcomeDelayedOK:
			rank += p.sb.Prob[bi]
		case outcomeDelayed:
			rank -= p.sb.Prob[bi]
		}
	}
	return rank
}

// applyTradeoffs revises delayed outcomes to delayedOK when the pairwise
// bound indicates that the optimal tradeoff point itself delays that branch
// for the benefit of a selected partner (Section 5.4, Observation 3).
func (p *Picker) applyTradeoffs(sel *selection) {
	if !p.cfg.Tradeoff {
		return
	}
	for di, doc := range sel.outcome {
		if doc != outcomeDelayed {
			continue
		}
		for si, soc := range sel.outcome {
			if soc != outcomeSelected {
				continue
			}
			if pr, delayedIsI := p.pairOf(di, si); pr != nil {
				if (delayedIsI && pr.Bi > pr.Ei) || (!delayedIsI && pr.Bj > pr.Ej) {
					sel.outcome[di] = outcomeDelayedOK
					if p.exp != nil {
						optB, indivE := pr.Bi, pr.Ei
						if !delayedIsI {
							optB, indivE = pr.Bj, pr.Ej
						}
						p.exp.cur.Tradeoffs = append(p.exp.cur.Tradeoffs, TradeoffNote{
							Pass:      p.exp.pass,
							Delayed:   di,
							Selected:  si,
							OptB:      optB,
							IndivE:    indivE,
							PairValue: pr.Value,
						})
					}
					break
				}
			}
		}
	}
}

// pairOf returns the pairwise bound covering branches a and b and whether a
// is the earlier (I) component.
func (p *Picker) pairOf(a, b int) (*bounds.PairBound, bool) {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	pr := p.pairs[[2]int{lo, hi}]
	return pr, a == lo
}

// findSwap looks for a (delayed, selected) pair whose pairwise bound says
// the selected branch should be the delayed one and the selected branch was
// processed earlier in the current order. It returns the order positions to
// swap, or (-1, -1).
func (p *Picker) findSwap(sel *selection, order []int) (int, int) {
	pos := make([]int, len(order))
	for oi, bi := range order {
		pos[bi] = oi
	}
	for di, doc := range sel.outcome {
		if doc != outcomeDelayed {
			continue
		}
		for si, soc := range sel.outcome {
			if soc != outcomeSelected || pos[si] > pos[di] {
				continue
			}
			if pr, selIsI := p.pairOf(si, di); pr != nil {
				if (selIsI && pr.Bi > pr.Ei) || (!selIsI && pr.Bj > pr.Ej) {
					return pos[si], pos[di]
				}
			}
		}
	}
	return -1, -1
}

// passOnce is the Figure-7 selection pass over the given branch order.
// TakeEach accumulates the union of the selected branches' NeedEach sets
// (each op must fit the current cycle's free slots); TakeOne narrows to the
// intersection of their NeedOne sets, keeping only ops that are ready and
// fit alongside TakeEach. A branch whose needs cannot be accommodated is
// delayed.
func (p *Picker) passOnce(st *sched.State, order []int) *selection {
	sel := &selection{outcome: make([]outcome, len(p.br))}
	m := p.m

	takeEach := make([]int, 0, 8)
	var takeOne []int
	for k := range p.kindCnt {
		p.kindCnt[k] = 0
	}
	inTakeEach := p.inSet // all false between calls

	for _, bi := range order {
		b := p.br[bi]
		if b.done {
			sel.outcome[bi] = outcomeIgnored
			continue
		}
		st.Stats.PriorityWork++
		needEach := p.liveNeeds(st, b.needEach)
		needOne := p.liveNeeds(st, b.needOne)
		if len(needEach) == 0 && needOne == nil {
			sel.outcome[bi] = outcomeIgnored
			continue
		}

		// Phase 1: extend TakeEach with the branch's dependence needs.
		mark := len(takeEach)
		feasible := true
		for _, v := range needEach {
			if inTakeEach[v] {
				continue
			}
			k := m.KindOf(p.sb.G.Op(v).Class)
			if !st.DepReady(v) || p.kindCnt[k]+1 > st.FreeSlots(k) {
				feasible = false
				break
			}
			p.kindCnt[k]++
			inTakeEach[v] = true
			takeEach = append(takeEach, v)
		}
		rollback := func() {
			for _, v := range takeEach[mark:] {
				inTakeEach[v] = false
				p.kindCnt[m.KindOf(p.sb.G.Op(v).Class)]--
			}
			takeEach = takeEach[:mark]
		}
		if !feasible {
			rollback()
			sel.outcome[bi] = outcomeDelayed
			continue
		}

		// Phase 2: the branch's resource need, unless TakeEach already
		// covers it.
		if needOne != nil {
			satisfied := false
			for _, v := range needOne {
				if inTakeEach[v] {
					satisfied = true
					break
				}
			}
			if !satisfied {
				base := needOne
				if takeOne != nil {
					base = intersect(takeOne, needOne)
				}
				filtered := make([]int, 0, len(base))
				for _, v := range base {
					if inTakeEach[v] {
						// Covered by another branch's dependence need.
						filtered = append(filtered, v)
						continue
					}
					if !st.DepReady(v) {
						continue
					}
					k := m.KindOf(p.sb.G.Op(v).Class)
					if p.kindCnt[k]+1 > st.FreeSlots(k) {
						continue
					}
					filtered = append(filtered, v)
				}
				if len(filtered) == 0 {
					rollback()
					sel.outcome[bi] = outcomeDelayed
					continue
				}
				takeOne = filtered
			}
		}
		sel.outcome[bi] = outcomeSelected
	}
	for _, v := range takeEach {
		inTakeEach[v] = false
	}
	sel.takeEach = append([]int(nil), takeEach...)
	sel.takeOne = takeOne
	return sel
}

// liveNeeds filters a possibly stale need list down to unscheduled ops
// (required in per-cycle update mode, where needs refresh only at cycle
// starts). It returns nil when nothing remains.
func (p *Picker) liveNeeds(st *sched.State, needs []int) []int {
	if needs == nil {
		return nil
	}
	live := make([]int, 0, len(needs))
	for _, v := range needs {
		if !st.IsScheduled(v) {
			live = append(live, v)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return live
}

// intersect returns the elements of a also present in b.
func intersect(a, b []int) []int {
	out := make([]int, 0, len(a))
	for _, v := range a {
		for _, w := range b {
			if v == w {
				out = append(out, v)
				break
			}
		}
	}
	return out
}
