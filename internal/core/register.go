package core

import (
	"context"

	"balance/internal/engine"
	"balance/internal/heuristics"
)

// init self-registers the paper's contribution (Balance, the sixth primary
// column) and the Best meta-heuristic, which closes over whatever primaries
// the registry holds at instantiation time.
func init() {
	engine.RegisterScheduler(engine.Scheduler{
		Name:        "Balance",
		Description: "Balance: dynamic bounds, compatible-branch selection, pairwise tradeoffs (the paper's heuristic)",
		Order:       6,
		Primary:     true,
		New: func(ctx context.Context) engine.ScheduleFunc {
			return BalanceCtx(ctx, DefaultConfig()).Run
		},
	})
	engine.RegisterScheduler(engine.Scheduler{
		Name:        "Best",
		Description: "Best: cheapest of the six primaries plus the 121 CP×SR×DHASY cross-product schedules",
		Order:       100,
		New: func(ctx context.Context) engine.ScheduleFunc {
			var primaries []heuristics.Heuristic
			for _, inst := range engine.PrimaryInstances(ctx) {
				primaries = append(primaries, heuristics.Heuristic{Name: inst.Name, Run: inst.Run})
			}
			return heuristics.BestCtx(ctx, primaries).Run
		},
	})
}
