package core

import (
	"context"
	"sort"

	"balance/internal/bounds"
	"balance/internal/heuristics"
	"balance/internal/model"
	"balance/internal/sched"
)

// UpdateMode selects how often the dynamic bounds are fully recomputed.
type UpdateMode int

const (
	// UpdatePerOp fully recomputes the dynamic bounds before every
	// scheduling decision (the paper's best-performing configuration).
	UpdatePerOp UpdateMode = iota
	// UpdateLight recomputes dependence early times every decision but
	// refreshes the per-branch resource state incrementally, falling back
	// to a full recomputation only when a guard detects that the branch's
	// bounds may have changed (Section 5.1's "light update").
	UpdateLight
	// UpdatePerCycle fully recomputes the bounds only when the scheduler
	// moves to a new cycle (the weaker variant of Table 7).
	UpdatePerCycle
)

// Config selects the Balance components, mirroring the ablation of Table 7.
type Config struct {
	// UseBounds uses the resource-aware EarlyRC/LateRC static bounds
	// (Observation 2). When false, dependence-only bounds are used.
	UseBounds bool
	// HelpDelay enables the compatible-branch selection that tracks both
	// helping and indirectly delaying branches (Observation 1 and Sections
	// 5.3-5.4). When false the heuristic degenerates to a Help-style pick
	// over all candidates, still guided by the configured bounds.
	HelpDelay bool
	// Tradeoff enables pairwise-bound-driven branch tradeoffs (Observation
	// 3 and Section 5.4). Requires HelpDelay.
	Tradeoff bool
	// Update selects the dynamic-bound update policy.
	Update UpdateMode
	// MaxTradeoffIters bounds the branch-order retries per decision
	// (default 4).
	MaxTradeoffIters int
}

// DefaultConfig returns the full Balance heuristic configuration.
func DefaultConfig() Config {
	return Config{UseBounds: true, HelpDelay: true, Tradeoff: true, Update: UpdatePerOp}
}

// Balance returns the Balance heuristic with the given configuration.
func Balance(cfg Config) heuristics.Heuristic {
	return BalanceCtx(context.Background(), cfg)
}

// BalanceCtx is Balance bound to a context for trace parentage: each
// schedule runs through sched.RunCtx, so its "sched.run" span nests
// under the span carried by ctx (the engine's per-heuristic span when
// instantiated from the registry).
func BalanceCtx(ctx context.Context, cfg Config) heuristics.Heuristic {
	name := "Balance"
	if !cfg.HelpDelay || !cfg.Tradeoff || !cfg.UseBounds || cfg.Update != UpdatePerOp {
		name = "Balance[" + variantName(cfg) + "]"
	}
	return heuristics.Heuristic{Name: name, Run: func(sb *model.Superblock, m *model.Machine) (*sched.Schedule, sched.Stats, error) {
		p := NewPicker(sb, m, cfg)
		return sched.RunCtx(ctx, sb, m, p)
	}}
}

func variantName(cfg Config) string {
	s := ""
	if cfg.HelpDelay {
		s += "HlpDel"
	} else {
		s += "Help"
	}
	if cfg.UseBounds {
		s += "+Bound"
	}
	if cfg.Tradeoff {
		s += "+Tradeoff"
	}
	switch cfg.Update {
	case UpdatePerCycle:
		s += "/cycle"
	case UpdateLight:
		s += "/light"
	}
	return s
}

// outcome is a branch's status in one selection pass (Section 5.4).
type outcome int8

const (
	outcomeIgnored outcome = iota
	outcomeSelected
	outcomeDelayed
	outcomeDelayedOK
)

// Picker is the Balance scheduling engine driver.
type Picker struct {
	cfg Config
	sb  *model.Superblock
	m   *model.Machine

	earlyRC     []int
	seps        []bounds.Separation
	pairs       map[[2]int]*bounds.PairBound
	closures    []*model.Bitset
	closureList [][]int // closure members as ascending op-ID lists

	dynEarly []int
	br       []*branchState
	baseOrd  []int // branch indices by decreasing exit probability

	// scratch buffers
	kindLates   [][]int // per-kind (late, occupancy) lists of one full update
	kindWeights [][]int
	kindCnt     []int
	inSet       []bool
	takeMark    []bool

	// freeSum[k] holds prefix sums of the positive free kind-k issue slots
	// from the current cycle, shared by every branch's full update within one
	// refresh; (freeSched, freeCycle) version the cache against issues and
	// cycle advances.
	freeSum              [][]int
	freeSched, freeCycle int
	freeValid            bool

	lastCycle int
	started   bool

	// exp, when non-nil, records one Decision per Pick for the explain
	// channel (see Explain). Every hook on the pick path is gated on a
	// nil check, so scheduling with no recorder does no explain work.
	exp *explainRec
}

// NewPicker precomputes the static bounds and returns a Balance picker for
// one scheduling run.
func NewPicker(sb *model.Superblock, m *model.Machine, cfg Config) *Picker {
	if cfg.MaxTradeoffIters <= 0 {
		cfg.MaxTradeoffIters = 4
	}
	g := sb.G
	n := g.NumOps()
	p := &Picker{
		cfg:         cfg,
		sb:          sb,
		m:           m,
		closures:    make([]*model.Bitset, len(sb.Branches)),
		dynEarly:    make([]int, n),
		kindLates:   make([][]int, m.Kinds()),
		kindWeights: make([][]int, m.Kinds()),
		freeSum:     make([][]int, m.Kinds()),
		kindCnt:     make([]int, m.Kinds()),
		inSet:       make([]bool, n),
		takeMark:    make([]bool, n),
	}
	// Static bounds. Non-fully-pipelined machines are handled via the
	// Rim & Jain occupancy expansion; the results are projected back onto
	// the original op IDs through each op's primary expanded node.
	//
	// The resource-aware configuration serves everything from the shared
	// per-(graph, machine) bound kernel: the expansion, EarlyRC, separation
	// vectors, and pairwise curve templates are built once and reused by
	// every ablation variant and re-weighted run over the same graph. The
	// dependence-only configuration (UseBounds=false) keeps the inline
	// computation — its bounds differ from the kernel's.
	var bst bounds.Stats
	if cfg.UseBounds {
		k := bounds.KernelFor(sb, m)
		p.earlyRC = k.ProjectedEarlyRC(&bst)
		p.seps = k.ProjectedSeps(&bst)
		if cfg.Tradeoff {
			prs, _ := k.Pairs(context.Background(), 0, sb.Prob, &bst, &bst)
			p.pairs = make(map[[2]int]*bounds.PairBound, len(prs))
			for _, pr := range prs {
				p.pairs[[2]int{pr.I, pr.J}] = pr
			}
		}
	} else {
		work := sb
		var origOf []int
		if !m.FullyPipelined() {
			work, origOf = model.ExpandOccupancy(sb, m)
		}
		earlyRC := work.G.EarlyDC()
		seps := staticSeparations(work, m, false, &bst)
		if cfg.Tradeoff {
			prs := bounds.PairwiseAll(work, m, earlyRC, seps, &bst)
			p.pairs = make(map[[2]int]*bounds.PairBound, len(prs))
			for _, pr := range prs {
				p.pairs[[2]int{pr.I, pr.J}] = pr
			}
		}
		p.earlyRC, p.seps = projectStatic(sb, origOf, earlyRC, seps)
	}
	p.closureList = make([][]int, len(sb.Branches))
	for i, b := range sb.Branches {
		p.closures[i] = g.PredClosure(b)
		p.closureList[i] = p.closures[i].AppendTo(make([]int, 0, p.closures[i].Count()))
	}
	p.br = make([]*branchState, len(sb.Branches))
	for i, b := range sb.Branches {
		p.br[i] = &branchState{idx: i, op: b, late: make([]int, n)}
	}
	p.baseOrd = make([]int, len(sb.Branches))
	for i := range p.baseOrd {
		p.baseOrd[i] = i
	}
	sort.SliceStable(p.baseOrd, func(a, b int) bool {
		return sb.Prob[p.baseOrd[a]] > sb.Prob[p.baseOrd[b]]
	})
	p.lastCycle = -1
	return p
}

// refresh brings the dynamic state up to date per the configured policy.
func (p *Picker) refresh(st *sched.State) {
	if st.LastOp >= 0 {
		if bi, ok := p.sb.BranchIndex(st.LastOp); ok {
			p.br[bi].done = true
		}
	}
	newCycle := st.Cycle != p.lastCycle
	p.lastCycle = st.Cycle

	switch p.cfg.Update {
	case UpdatePerCycle:
		if !newCycle && p.started {
			// Keep stale bounds within the cycle; only needs must drop
			// scheduled ops, which the selection filters handle.
			return
		}
		p.updateDynEarly(st)
		for _, b := range p.br {
			if !b.done {
				p.fullUpdate(st, b)
			}
		}
	case UpdateLight:
		// dynEarly is invariant within a cycle: every candidate op issues
		// exactly at its dynamic early time, so placements never shift the
		// propagated early times of the remaining ops. Recomputing at cycle
		// starts only is exact, which is what makes the light update an
		// order of magnitude cheaper than the per-op full update.
		if newCycle || !p.started {
			p.updateDynEarly(st)
		}
		for _, b := range p.br {
			if b.done {
				continue
			}
			if newCycle || !p.started || !p.lightUpdate(st, b) {
				p.fullUpdate(st, b)
			}
		}
	default: // UpdatePerOp
		p.updateDynEarly(st)
		for _, b := range p.br {
			if !b.done {
				p.fullUpdate(st, b)
			}
		}
	}
	p.started = true
}

// Pick implements sched.Picker.
func (p *Picker) Pick(st *sched.State) int {
	p.refresh(st)
	cands := st.Candidates()
	if p.exp != nil {
		p.beginDecision(st, cands)
	}
	if len(cands) == 0 {
		if p.exp != nil {
			p.finishDecision(-1)
		}
		return -1
	}
	var v int
	if !p.cfg.HelpDelay {
		v = p.pickByNeeds(st, cands, nil)
	} else {
		sel := p.selectCompatible(st)
		if p.exp != nil {
			p.noteSelection(sel)
		}
		allowed := p.allowedSet(st, sel)
		if len(allowed) == 0 {
			v = p.pickByNeeds(st, cands, sel)
		} else {
			v = p.pickByNeeds(st, allowed, sel)
		}
	}
	if p.exp != nil {
		p.finishDecision(v)
	}
	return v
}

// allowedSet intersects TakeEach ∪ TakeOne with the current candidates.
func (p *Picker) allowedSet(st *sched.State, sel *selection) []int {
	if sel == nil || (len(sel.takeEach) == 0 && sel.takeOne == nil) {
		return nil
	}
	for _, v := range sel.takeEach {
		p.takeMark[v] = true
	}
	for _, v := range sel.takeOne {
		p.takeMark[v] = true
	}
	out := make([]int, 0, len(sel.takeEach)+len(sel.takeOne))
	for _, v := range st.Candidates() {
		if p.takeMark[v] {
			out = append(out, v)
		}
	}
	for _, v := range sel.takeEach {
		p.takeMark[v] = false
	}
	for _, v := range sel.takeOne {
		p.takeMark[v] = false
	}
	return out
}

// pickByNeeds implements the final operation choice (Section 5.5): among
// the allowed operations, pick the one helping the largest summed exit
// probability, where an operation helps a branch when it appears in the
// branch's NeedEach or NeedOne set; ties break on the number of helped
// branches, then the smallest dynamic late time, then the smallest ID.
func (p *Picker) pickByNeeds(st *sched.State, allowed []int, sel *selection) int {
	best := -1
	var bestProb float64
	var bestCount, bestLate int
	for _, v := range allowed {
		st.Stats.CandidateScans++
		prob := 0.0
		count := 0
		late := int(^uint(0) >> 1)
		for bi, b := range p.br {
			if b.done {
				continue
			}
			helps := false
			for _, u := range b.needEach {
				if u == v {
					helps = true
					break
				}
			}
			if !helps {
				for _, u := range b.needOne {
					if u == v {
						helps = true
						break
					}
				}
			}
			st.Stats.PriorityWork++
			if helps {
				prob += p.sb.Prob[bi]
				count++
			}
			if p.closures[bi].Has(v) || b.op == v {
				if b.late[v] < late {
					late = b.late[v]
				}
			}
		}
		if best < 0 || prob > bestProb ||
			(prob == bestProb && count > bestCount) ||
			(prob == bestProb && count == bestCount && late < bestLate) ||
			(prob == bestProb && count == bestCount && late == bestLate && v < best) {
			best, bestProb, bestCount, bestLate = v, prob, count, late
		}
	}
	return best
}
