package core

import (
	"balance/internal/sched"
)

// ExplainVersion identifies the Decision record schema. It follows the
// checkpoint-schema convention (see internal/resilience): bump it on any
// incompatible change to Decision or its nested records, so downstream
// consumers (cmd/sbexplain, archived explain dumps) can detect records
// they do not understand.
const ExplainVersion = 1

// ERC is the explain-channel snapshot of one elementary resource
// constraint (Section 5.1, Step 4): the branch's unscheduled kind-Kind
// predecessors with dynamic late time ≤ C need Need issue slots of the
// Avail available through cycle C. Avail == Need means the window has no
// spare slot: one member must issue in the current decision.
type ERC struct {
	Kind  int `json:"kind"`
	C     int `json:"c"`
	Need  int `json:"need"`
	Avail int `json:"avail"`
}

// BranchSnap is one branch's dynamic-bound state at a decision, captured
// after the refresh that precedes the pick.
type BranchSnap struct {
	// Branch is the branch index; Op its branch operation's ID.
	Branch int     `json:"branch"`
	Op     int     `json:"op"`
	Prob   float64 `json:"prob"`
	Done   bool    `json:"done"`
	// E is the branch's dynamic earliest issue cycle.
	E int `json:"e"`
	// NeedEach lists the operations that must all issue this cycle for
	// the branch to meet E; NeedOne the members of the tightest
	// zero-slack ERC, one of which must be chosen in this decision
	// (nil when no resource need). NeedOneKind is NeedOne's resource
	// kind (-1 when NeedOne is nil).
	NeedEach    []int `json:"need_each,omitempty"`
	NeedOne     []int `json:"need_one,omitempty"`
	NeedOneKind int   `json:"need_one_kind"`
	// ERCs snapshots the branch's elementary resource constraints.
	ERCs []ERC `json:"ercs,omitempty"`
}

// TradeoffNote records one pairwise-bound blessing (Section 5.4,
// Observation 3): the delayed branch's outcome was revised to delayedOK
// because the pair's optimal tradeoff point itself delays it past its
// individual bound for the selected partner's benefit.
type TradeoffNote struct {
	// Pass is the selection pass (0 = initial order, k = after the k-th
	// order swap) the blessing happened in.
	Pass int `json:"pass"`
	// Delayed and Selected are the branch indices involved.
	Delayed  int `json:"delayed"`
	Selected int `json:"selected"`
	// OptB is the delayed branch's issue bound at the pair's optimal
	// tradeoff point; IndivE its individual EarlyRC bound. OptB > IndivE
	// is the blessing condition: the optimum itself delays the branch.
	OptB   int `json:"opt_b"`
	IndivE int `json:"indiv_e"`
	// PairValue is the pair's weighted optimal value.
	PairValue float64 `json:"pair_value"`
}

// SwapNote records one order-swap retry: the pairwise bound said the
// selected branch should have been the delayed one, so the selection
// pass reran with the two branches' order positions exchanged.
type SwapNote struct {
	// Iter is the retry iteration (0-based).
	Iter int `json:"iter"`
	// Selected and Delayed are the branch indices whose positions were
	// swapped (Selected was processed earlier and won; the bound says it
	// should yield).
	Selected int `json:"selected"`
	Delayed  int `json:"delayed"`
	// RankBefore and RankAfter compare the selections; the swap is kept
	// only when RankAfter improves.
	RankBefore float64 `json:"rank_before"`
	RankAfter  float64 `json:"rank_after"`
	Kept       bool    `json:"kept"`
}

// Decision is one structured explain record: everything the Balance
// picker knew and chose in one scheduling decision. Records are emitted
// in decision order through the recorder installed with Picker.Explain.
type Decision struct {
	// Version is ExplainVersion, stamped on every record.
	Version int `json:"v"`
	// Seq numbers the decisions of one run from 0; Cycle is the issue
	// cycle the decision was made in.
	Seq   int `json:"seq"`
	Cycle int `json:"cycle"`
	// Candidates lists the dependence-ready ops that fit a free slot
	// this cycle (the picker chooses among these or advances).
	Candidates []int `json:"candidates,omitempty"`
	// Branches snapshots every branch's dynamic bounds after refresh.
	Branches []BranchSnap `json:"branches,omitempty"`
	// Outcomes[bi] is branch bi's final selection outcome: "ignored",
	// "selected", "delayed", or "delayed-ok". Empty when the
	// compatible-branch selection is disabled (HelpDelay=false).
	Outcomes []string `json:"outcomes,omitempty"`
	// TakeEach and TakeOne are the winning selection's issue sets
	// (Section 5.3); Rank its Σw(selected)+Σw(delayedOK)-Σw(delayed).
	TakeEach []int   `json:"take_each,omitempty"`
	TakeOne  []int   `json:"take_one,omitempty"`
	Rank     float64 `json:"rank"`
	// Tradeoffs and Swaps record the pairwise-bound interventions that
	// shaped the winning selection.
	Tradeoffs []TradeoffNote `json:"tradeoffs,omitempty"`
	Swaps     []SwapNote     `json:"swaps,omitempty"`
	// Picked is the chosen op (-1: no candidate, the scheduler advances
	// to the next cycle). HelpedProb is the summed exit probability of
	// the branches the pick helps (appears in their NeedEach/NeedOne);
	// HelpedBranches lists them.
	Picked         int     `json:"picked"`
	HelpedProb     float64 `json:"helped_prob"`
	HelpedBranches []int   `json:"helped_branches,omitempty"`
}

// explainRec is the per-run recorder state. It exists only while a
// recorder is installed; every hook in the pick path is gated on
// p.exp != nil, so the explain channel costs nothing when off.
type explainRec struct {
	fn   func(*Decision)
	seq  int
	pass int // current selection pass (for TradeoffNote.Pass)
	cur  *Decision
}

// Explain installs fn as the decision recorder: it is invoked once per
// scheduling decision (including cycle advances) with a fully populated
// record the callee owns. Install before the run starts; a nil fn turns
// recording off. Recording is strictly off-path — with no recorder the
// pick path performs no explain work and no allocations.
func (p *Picker) Explain(fn func(*Decision)) {
	if fn == nil {
		p.exp = nil
		return
	}
	p.exp = &explainRec{fn: fn}
}

// beginDecision opens the record for one Pick call, snapshotting the
// refreshed branch states.
func (p *Picker) beginDecision(st *sched.State, cands []int) {
	e := p.exp
	e.pass = 0
	d := &Decision{
		Version:    ExplainVersion,
		Seq:        e.seq,
		Cycle:      st.Cycle,
		Candidates: append([]int(nil), cands...),
		Picked:     -1,
	}
	e.seq++
	d.Branches = make([]BranchSnap, len(p.br))
	for bi, b := range p.br {
		snap := BranchSnap{
			Branch:      bi,
			Op:          b.op,
			Prob:        p.sb.Prob[bi],
			Done:        b.done,
			NeedOneKind: -1,
		}
		if !b.done {
			snap.E = b.E
			snap.NeedEach = append([]int(nil), b.needEach...)
			if b.needOne != nil {
				snap.NeedOne = append([]int(nil), b.needOne...)
				snap.NeedOneKind = b.needOneKind
			}
			for _, c := range b.ercs {
				snap.ERCs = append(snap.ERCs, ERC{Kind: c.Kind, C: c.C, Need: c.Need, Avail: c.Avail})
			}
		}
		d.Branches[bi] = snap
	}
	e.cur = d
}

// noteSelection copies the winning selection into the open record.
func (p *Picker) noteSelection(sel *selection) {
	d := p.exp.cur
	d.Outcomes = make([]string, len(sel.outcome))
	for bi, oc := range sel.outcome {
		d.Outcomes[bi] = oc.String()
	}
	d.TakeEach = append([]int(nil), sel.takeEach...)
	d.TakeOne = append([]int(nil), sel.takeOne...)
	d.Rank = sel.rank
}

// finishDecision completes the record with the final pick and hands it
// to the recorder.
func (p *Picker) finishDecision(v int) {
	e := p.exp
	d := e.cur
	e.cur = nil
	d.Picked = v
	if v >= 0 {
		for bi, b := range p.br {
			if b.done {
				continue
			}
			if containsOp(b.needEach, v) || containsOp(b.needOne, v) {
				d.HelpedProb += p.sb.Prob[bi]
				d.HelpedBranches = append(d.HelpedBranches, bi)
			}
		}
	}
	e.fn(d)
}

func containsOp(ops []int, v int) bool {
	for _, u := range ops {
		if u == v {
			return true
		}
	}
	return false
}

// String names an outcome for the explain channel.
func (o outcome) String() string {
	switch o {
	case outcomeSelected:
		return "selected"
	case outcomeDelayed:
		return "delayed"
	case outcomeDelayedOK:
		return "delayed-ok"
	default:
		return "ignored"
	}
}
