package core

import (
	"math/rand"
	"testing"

	"balance/internal/bounds"
	"balance/internal/exact"
	"balance/internal/model"
	"balance/internal/sched"
	"balance/internal/testutil"
)

// TestBalanceOnNonPipelinedMachines: Balance must produce legal schedules
// on machines with held units, never beat the exact optimum, and respect
// the expansion-based bounds.
func TestBalanceOnNonPipelinedMachines(t *testing.T) {
	machines := []*model.Machine{
		model.GP2().WithOccupancy(model.FloatMul, 3),
		model.FS4().WithOccupancy(model.FloatDiv, 9),
		model.GP1().WithOccupancy(model.Load, 2),
	}
	rng := rand.New(rand.NewSource(53))
	cfgs := []Config{DefaultConfig(), {UseBounds: true, HelpDelay: true, Update: UpdateLight}}
	for i := 0; i < 20; i++ {
		sb := testutil.RandomSuperblock(rng, 12)
		for _, m := range machines {
			set := bounds.Compute(sb, m, bounds.Options{})
			for _, cfg := range cfgs {
				s, _ := runBalance(t, cfg, sb, m)
				c := sched.Cost(sb, s)
				if c < set.Tightest-1e-9 {
					t.Fatalf("iter %d %s: Balance %v below bound %v", i, m.Name, c, set.Tightest)
				}
			}
			_, opt, err := exact.Optimal(sb, m, 1_500_000)
			if err != nil {
				continue
			}
			s, _ := runBalance(t, DefaultConfig(), sb, m)
			if c := sched.Cost(sb, s); c < opt-1e-9 {
				t.Fatalf("iter %d %s: Balance %v below optimum %v", i, m.Name, c, opt)
			}
		}
	}
}

// TestBalanceSerializedUnit: on a machine with one held multiplier, Balance
// must schedule the independent integer work of the side exit into the
// cycles where the multiplier is busy.
func TestBalanceSerializedUnit(t *testing.T) {
	m := model.FS4().WithOccupancy(model.FloatMul, 3)
	b := model.NewBuilder("serial")
	i0 := b.Int()
	i1 := b.Int(i0)
	b.Branch(0.5, i1)
	m0 := b.Op(model.FloatMul)
	m1 := b.Op(model.FloatMul, m0)
	b.Branch(0, m1)
	sb := b.MustBuild()

	s, _ := runBalance(t, DefaultConfig(), sb, m)
	// Multiplier chain: m0@0 (holds unit 0-2), m1@3 (holds 3-5), final exit
	// ≥ 6 wait: m1 result at 3+3=6 -> final ≥ 6... the branch only needs the
	// result; it issues at m1+3 = 6.
	if c := s.Cycle[sb.Branches[1]]; c < 6 {
		t.Errorf("final exit at %d, want >= 6 (held multiplier)", c)
	}
	// The integer side exit is independent and must finish early.
	if c := s.Cycle[sb.Branches[0]]; c > 2 {
		t.Errorf("side exit at %d, want <= 2", c)
	}
	if err := sched.Verify(sb, m, s); err != nil {
		t.Fatal(err)
	}
}
