// Package core implements the paper's contribution: the Balance superblock
// scheduling heuristic (Section 5). Balance maintains dynamic
// Early/Late/ERC bounds per branch (Section 5.1), derives the operations
// each branch needs in the current cycle (Section 5.2), selects a set of
// branches with compatible needs (Section 5.3), weights branch tradeoffs
// with the pairwise bounds (Section 5.4), and picks the final operation
// with a Speculative-Hedge-style priority (Section 5.5).
package core

import (
	"sort"

	"balance/internal/bounds"
	"balance/internal/model"
	"balance/internal/sched"
)

// erc is one Elementary Resource Constraint of a branch: the unscheduled
// predecessors of resource kind Kind whose dynamic late time is ≤ C must
// all issue between the current cycle and C. Empty is AvailSlot-NeedSlot;
// zero empty slots means the branch needs one of the members in the current
// scheduling decision.
type erc struct {
	Kind  int
	C     int
	Need  int
	Avail int
}

// Empty returns the number of spare issue slots in the constraint window.
func (e erc) Empty() int { return e.Avail - e.Need }

// branchState is the dynamic bound state of one branch.
type branchState struct {
	// idx is the branch index, op the branch's op ID.
	idx, op int
	done    bool

	// E is the branch's dynamic earliest issue cycle: the max of the
	// dependence-propagated early time, the separation-based early times of
	// its unscheduled predecessors, and the ERC resource bounds.
	E int
	// late[v] = E - sep[v] is the dynamic late time of predecessor v
	// (meaningful only for unscheduled predecessors and the branch itself).
	late []int
	// ercs holds the elementary resource constraints at the cycle of the
	// last full update, sorted by (Kind, C).
	ercs []erc
	// updatedAt is the cycle of the last full update (for per-cycle mode).
	updatedAt int

	// needEach lists the operations that must issue in the current cycle
	// for the branch to meet E (all are dependence-ready by construction).
	needEach []int
	// needOne lists the members of the most constraining zero-empty-slot
	// ERC: one of them must be chosen in the current scheduling decision.
	// nil means no resource need.
	needOne []int
	// needOneKind is the resource kind of the needOne constraint (-1 when
	// needOne is nil).
	needOneKind int
}

// sep returns the separation lower bound between v's issue and the
// branch's issue used for this run (resource-aware when cfg.UseBounds).
func (p *Picker) sep(bi, v int) int { return p.seps[bi][v] }

// availThrough returns the free kind-k issue slots in [st.Cycle, c],
// accounting for units still held by issued non-pipelined ops. The counts
// are served from per-kind prefix sums shared by every branch's full update
// within one refresh; the cache is versioned by (Scheduled, Cycle), the only
// state whose change can alter the busy profile.
func (p *Picker) availThrough(st *sched.State, k, c int) int {
	if !p.freeValid || p.freeSched != st.Scheduled || p.freeCycle != st.Cycle {
		for i := range p.freeSum {
			p.freeSum[i] = p.freeSum[i][:0]
		}
		p.freeSched, p.freeCycle, p.freeValid = st.Scheduled, st.Cycle, true
	}
	idx := c - st.Cycle + 1 // prefix length covering [Cycle, c]
	if idx <= 0 {
		return 0
	}
	fs := p.freeSum[k]
	if len(fs) == 0 {
		fs = append(fs, 0)
	}
	for len(fs) <= idx {
		t := st.Cycle + len(fs) - 1
		f := st.FreeSlotsAt(k, t)
		if f < 0 {
			f = 0
		}
		fs = append(fs, fs[len(fs)-1]+f)
	}
	p.freeSum[k] = fs
	return fs[idx]
}

// fullUpdate recomputes E, the late times, the ERCs, and the needs of
// branch b from scratch (Steps 1-4 of Section 5.1 plus Section 5.2).
func (p *Picker) fullUpdate(st *sched.State, b *branchState) {
	st.Stats.FullUpdates++
	g := p.sb.G
	m := p.m
	members := p.closureList[b.idx]

	// Step 1: dependence-based early, tightened by separation bounds.
	e := p.dynEarly[b.op]
	for _, v := range members {
		st.Stats.PriorityWork++
		if st.IsScheduled(v) {
			continue
		}
		if t := p.dynEarly[v] + p.sep(b.idx, v); t > e {
			e = t
		}
	}

	// Steps 2-3: elementary resource constraints; a window overflow delays
	// the branch by the cycles needed to drain the excess. The unscheduled
	// predecessors (incl. b) are grouped per resource kind as parallel
	// (late, occupancy) lists, sorted by late once; the delay pass and the
	// ERC pass below sweep the same lists (a uniform late shift preserves
	// the order, and equal-late entries are summed, so their relative order
	// never matters).
	for k := range p.kindLates {
		p.kindLates[k] = p.kindLates[k][:0]
		p.kindWeights[k] = p.kindWeights[k][:0]
	}
	collect := func(v int) {
		if st.IsScheduled(v) {
			return
		}
		c := g.Op(v).Class
		k := m.KindOf(c)
		p.kindLates[k] = append(p.kindLates[k], e-p.sep(b.idx, v))
		p.kindWeights[k] = append(p.kindWeights[k], m.Occupancy(c))
	}
	for _, v := range members {
		collect(v)
	}
	collect(b.op)
	for k := range p.kindLates {
		if len(p.kindLates[k]) > 1 {
			sortByLate(p.kindLates[k], p.kindWeights[k])
		}
	}
	delay := 0
	for k := 0; k < m.Kinds(); k++ {
		lates, weights := p.kindLates[k], p.kindWeights[k]
		if len(lates) == 0 {
			continue
		}
		cap := m.Capacity(k)
		need := 0
		for i := 0; i < len(lates); {
			c := lates[i]
			for i < len(lates) && lates[i] == c {
				need += weights[i]
				i++
			}
			st.Stats.PriorityWork++
			avail := p.availThrough(st, k, c)
			if need > avail {
				if d := ceilDiv(need-avail, cap); d > delay {
					delay = d
				}
			}
		}
	}
	if delay > 0 {
		e += delay
		for k := range p.kindLates {
			lates := p.kindLates[k]
			for i := range lates {
				lates[i] += delay
			}
		}
		// Shifting every late time by delay adds cap·delay slots to every
		// window that was overflowing, which is at least the excess, so a
		// single adjustment reaches the fixpoint.
	}
	b.E = e

	// Late times for need computation.
	for _, v := range members {
		b.late[v] = e - p.sep(b.idx, v)
	}
	b.late[b.op] = e

	// Step 4 + Section 5.2: ERC empty slots and the branch's needs.
	b.ercs = b.ercs[:0]
	b.needEach = b.needEach[:0]
	b.needOne = nil
	b.needOneKind = -1
	bestC, bestK := -1, -1
	for k := 0; k < m.Kinds(); k++ {
		lates, weights := p.kindLates[k], p.kindWeights[k]
		if len(lates) == 0 {
			continue
		}
		need := 0
		for i := 0; i < len(lates); {
			c := lates[i]
			for i < len(lates) && lates[i] == c {
				need += weights[i]
				i++
			}
			avail := p.availThrough(st, k, c)
			b.ercs = append(b.ercs, erc{Kind: k, C: c, Need: need, Avail: avail})
			if avail-need == 0 && (bestC < 0 || c < bestC) {
				bestC, bestK = c, k
			}
		}
	}
	// NeedEach: unscheduled predecessors whose late time equals the current
	// cycle (they are dependence-ready by construction: late ≥ dynEarly ≥
	// cycle, with equality only when all predecessors completed).
	appendNeedEach := func(v int) {
		if !st.IsScheduled(v) && b.late[v] <= st.Cycle {
			b.needEach = append(b.needEach, v)
		}
	}
	for _, v := range members {
		appendNeedEach(v)
	}
	appendNeedEach(b.op)

	// NeedOne: members of the most constraining zero-empty-slot ERC.
	if bestC >= 0 {
		group := make([]int, 0, 8)
		addMember := func(v int) {
			if !st.IsScheduled(v) && m.KindOf(g.Op(v).Class) == bestK && b.late[v] <= bestC {
				group = append(group, v)
			}
		}
		for _, v := range members {
			addMember(v)
		}
		addMember(b.op)
		b.needOne = group
		b.needOneKind = bestK
	}
	b.updatedAt = st.Cycle
}

// lightUpdate refreshes branch b's needs without recomputing the resource
// pass, assuming E and the late times are still valid. It reports false
// (triggering a full update) when the guard detects that the last event may
// have changed the branch's bounds: the dependence early crossed E, or a
// consumed slot drove a zero-empty ERC negative.
func (p *Picker) lightUpdate(st *sched.State, b *branchState) bool {
	st.Stats.LightUpdates++
	// The incremental slot accounting assumes unit occupancy; fall back to
	// full updates on machines with non-fully-pipelined units.
	if !p.m.FullyPipelined() {
		return false
	}
	// Guard 1: the dependence-propagated early must not exceed E.
	if p.dynEarly[b.op] > b.E {
		return false
	}
	last := st.LastOp
	if last >= 0 {
		k := p.m.KindOf(p.sb.G.Op(last).Class)
		isPred := p.closures[b.idx].Has(last) || last == b.op
		for i := range b.ercs {
			e := &b.ercs[i]
			if e.Kind != k {
				continue
			}
			if isPred && b.late[last] <= e.C {
				// Member scheduled: need and avail both shrink.
				e.Need--
				e.Avail--
			} else {
				// Non-member consumed one of the window's slots.
				e.Avail--
				if e.Avail < e.Need {
					return false // branch delayed: recompute bounds
				}
			}
		}
		// Guard 2: a separation-critical predecessor scheduled later than
		// its late time delays the branch.
		if isPred && last != b.op && st.IssueCycle[last] > b.late[last] {
			return false
		}
	}
	// Refresh needs from the (still valid) late times.
	members := p.closureList[b.idx]
	b.needEach = b.needEach[:0]
	appendNeedEach := func(v int) {
		if !st.IsScheduled(v) && b.late[v] <= st.Cycle {
			b.needEach = append(b.needEach, v)
		}
	}
	for _, v := range members {
		appendNeedEach(v)
	}
	appendNeedEach(b.op)

	b.needOne = nil
	bestC, bestK := -1, -1
	for _, e := range b.ercs {
		if e.Need > 0 && e.Empty() == 0 && (bestC < 0 || e.C < bestC) {
			bestC, bestK = e.C, e.Kind
		}
	}
	b.needOneKind = -1
	if bestC >= 0 {
		group := make([]int, 0, 8)
		addMember := func(v int) {
			if !st.IsScheduled(v) && p.m.KindOf(p.sb.G.Op(v).Class) == bestK && b.late[v] <= bestC {
				group = append(group, v)
			}
		}
		for _, v := range members {
			addMember(v)
		}
		addMember(b.op)
		b.needOne = group
		b.needOneKind = bestK
	}
	return true
}

// updateDynEarly recomputes the dependence-propagated dynamic early time of
// every operation, floored at the static EarlyRC bound.
func (p *Picker) updateDynEarly(st *sched.State) {
	g := p.sb.G
	for _, v := range g.Topo() {
		st.Stats.PriorityWork++
		if st.IsScheduled(v) {
			p.dynEarly[v] = st.IssueCycle[v]
			continue
		}
		e := st.Cycle
		if r := st.ReadyAt(v); r > e {
			e = r
		}
		if p.earlyRC[v] > e {
			e = p.earlyRC[v]
		}
		for _, pe := range g.Preds(v) {
			if !st.IsScheduled(pe.To) {
				if t := p.dynEarly[pe.To] + pe.Lat; t > e {
					e = t
				}
			}
		}
		p.dynEarly[v] = e
	}
}

// ceilDiv returns ⌈a/b⌉ for a ≥ 0, b > 0.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// sortByLate sorts the parallel (late, weight) slices by late ascending,
// keeping the pairs aligned.
func sortByLate(lates, weights []int) {
	sort.Sort(&latePairs{lates, weights})
}

type latePairs struct{ l, w []int }

func (p *latePairs) Len() int           { return len(p.l) }
func (p *latePairs) Less(a, b int) bool { return p.l[a] < p.l[b] }
func (p *latePairs) Swap(a, b int) {
	p.l[a], p.l[b] = p.l[b], p.l[a]
	p.w[a], p.w[b] = p.w[b], p.w[a]
}

// projectStatic maps expanded-graph static bounds back onto the original
// superblock's op IDs via each op's primary expanded node; with a nil
// mapping (fully pipelined machine) the inputs pass through unchanged.
func projectStatic(sb *model.Superblock, origOf []int, earlyRC []int, seps []bounds.Separation) ([]int, []bounds.Separation) {
	if origOf == nil {
		return earlyRC, seps
	}
	n := sb.G.NumOps()
	primary := make([]int, n)
	for i := range primary {
		primary[i] = -1
	}
	for expID, orig := range origOf {
		if primary[orig] < 0 {
			primary[orig] = expID
		}
	}
	outEarly := make([]int, n)
	for v := 0; v < n; v++ {
		outEarly[v] = earlyRC[primary[v]]
	}
	outSeps := make([]bounds.Separation, len(seps))
	for i, sep := range seps {
		o := make(bounds.Separation, n)
		for v := 0; v < n; v++ {
			o[v] = sep[primary[v]]
		}
		outSeps[i] = o
	}
	return outEarly, outSeps
}

// staticSeparations computes the per-branch separation bounds: resource-
// aware (SeparationRC) when useBounds, dependence-only otherwise.
func staticSeparations(sb *model.Superblock, m *model.Machine, useBounds bool, st *bounds.Stats) []bounds.Separation {
	seps := make([]bounds.Separation, len(sb.Branches))
	for i, b := range sb.Branches {
		if useBounds {
			seps[i] = bounds.SeparationRC(sb, m, b, st)
		} else {
			seps[i] = bounds.Separation(sb.G.LongestToTarget(b))
		}
	}
	return seps
}
