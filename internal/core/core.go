package core
