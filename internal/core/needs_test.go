package core

import (
	"sort"
	"testing"

	"balance/internal/figures"
	"balance/internal/model"
	"balance/internal/sched"
)

// probeDecision runs the Balance picker and hands the inspected state to
// fn at the given (0-based) decision index.
func probeDecision(t *testing.T, sb *model.Superblock, m *model.Machine, cfg Config, decision int, fn func(p *Picker, st *sched.State)) {
	t.Helper()
	p := NewPicker(sb, m, cfg)
	n := 0
	done := false
	probe := sched.PickerFunc(func(st *sched.State) int {
		v := p.Pick(st)
		if n == decision {
			fn(p, st)
			done = true
		}
		n++
		return v
	})
	if _, _, err := sched.Run(sb, m, probe); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("probe never reached the requested decision")
	}
}

// probeFirstDecision probes decision 0.
func probeFirstDecision(t *testing.T, sb *model.Superblock, m *model.Machine, cfg Config, fn func(p *Picker, st *sched.State)) {
	t.Helper()
	probeDecision(t, sb, m, cfg, 0, fn)
}

func sorted(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

// TestFigure2Needs reproduces Observation 1's analysis as it unfolds over
// the scheduling decisions of cycle 0: at the first decision branch 6 needs
// op 4 (its dynamic late time is 0) while branch 3's {0,1,2} window still
// has one spare slot; after op 4 consumes that slot, branch 3's resource
// need fires and one of {0,1,2} must be picked — yielding the paper's
// optimal first cycle {4, 0}.
func TestFigure2Needs(t *testing.T) {
	sb := figures.Figure2(0.3)
	m := model.GP2()
	probeDecision(t, sb, m, DefaultConfig(), 0, func(p *Picker, st *sched.State) {
		b3 := p.br[0]
		if b3.E != 2 {
			t.Errorf("branch 3 E = %d, want 2", b3.E)
		}
		if len(b3.needEach) != 0 {
			t.Errorf("branch 3 needEach = %v, want none", b3.needEach)
		}
		if b3.needOne != nil {
			t.Errorf("branch 3 needOne = %v, want nil (one spare slot left)", b3.needOne)
		}
		// Its tightest window ({0,1,2} by cycle 1) has exactly one empty slot.
		spare := -1
		for _, e := range b3.ercs {
			if e.C == 1 && e.Kind == 0 {
				spare = e.Empty()
			}
		}
		if spare != 1 {
			t.Errorf("branch 3 c=1 window empty slots = %d, want 1", spare)
		}

		b6 := p.br[1]
		if b6.E != 3 {
			t.Errorf("branch 6 E = %d, want 3", b6.E)
		}
		// Dependence need: op 4's late time is 0 (separation 3 from E=3).
		if got := sorted(b6.needEach); len(got) != 1 || got[0] != 4 {
			t.Errorf("branch 6 needEach = %v, want [4]", got)
		}
		if b6.late[4] != 0 {
			t.Errorf("branch 6 late[4] = %d, want 0", b6.late[4])
		}
	})
	// After op 4 takes the spare slot, branch 3's resource need fires.
	probeDecision(t, sb, m, DefaultConfig(), 1, func(p *Picker, st *sched.State) {
		if st.IssueCycle[4] != 0 {
			t.Fatalf("op 4 not scheduled first (at %d)", st.IssueCycle[4])
		}
		b3 := p.br[0]
		if got := sorted(b3.needOne); len(got) != 3 || got[0] != 0 || got[2] != 2 {
			t.Errorf("branch 3 needOne = %v, want [0 1 2]", got)
		}
	})
}

// TestFigure6ERC reproduces Section 5.1's example: with br8 targeting its
// resource-constrained early time 5, ops 1-5 (late 2) overload no window —
// the windowed bound already pushed E to 5.
func TestFigure6ERC(t *testing.T) {
	sb := figures.Figure6()
	m := model.GP2()
	probeFirstDecision(t, sb, m, DefaultConfig(), func(p *Picker, st *sched.State) {
		b := p.br[0]
		if b.E != 5 {
			t.Errorf("branch E = %d, want 5 (windowed resource bound)", b.E)
		}
		// With E=5, ops 1..5 have late 2, op 6 late 3, op 7 late 4, op 0
		// late 5: the c=2 window holds exactly 5 ops in 6 slots — one
		// empty slot, so no NeedOne fires at cycle 0.
		for _, e := range b.ercs {
			if e.Empty() < 0 {
				t.Errorf("negative empty slots after full update: %+v", e)
			}
		}
	})
}

// TestFigure3NeedEachViaSeparation: with resource-aware separations op 4's
// late time toward branch 9 is 0 — a dependence need invisible to plain
// dependence distances (Observation 2).
func TestFigure3NeedEachViaSeparation(t *testing.T) {
	sb := figures.Figure3(0.3)
	m := model.GP2()
	probeFirstDecision(t, sb, m, DefaultConfig(), func(p *Picker, st *sched.State) {
		b9 := p.br[1]
		found := false
		for _, v := range b9.needEach {
			if v == 4 {
				found = true
			}
		}
		if !found {
			t.Errorf("branch 9 needEach = %v, must contain op 4", b9.needEach)
		}
	})
	// Without resource-aware bounds the need disappears.
	weak := DefaultConfig()
	weak.UseBounds = false
	weak.Tradeoff = false
	probeFirstDecision(t, sb, m, weak, func(p *Picker, st *sched.State) {
		b9 := p.br[1]
		for _, v := range b9.needEach {
			if v == 4 {
				t.Errorf("dependence-only bounds should not pin op 4 at cycle 0 (needEach=%v)", b9.needEach)
			}
		}
	})
}

// TestSelectionOutcomesFigure2: at the first decision branch 6 is selected
// (its need, op 4, fits) and branch 3 is ignored (no needs yet — its
// window still has a spare slot); at the second, both are in play and one
// of branch 3's {0,1,2} is forced.
func TestSelectionOutcomesFigure2(t *testing.T) {
	sb := figures.Figure2(0.3)
	m := model.GP2()
	probeDecision(t, sb, m, DefaultConfig(), 0, func(p *Picker, st *sched.State) {
		sel := p.selectCompatible(st)
		if sel.outcome[1] != outcomeSelected {
			t.Errorf("branch 6 outcome = %v, want selected", sel.outcome[1])
		}
		if sel.outcome[0] != outcomeIgnored {
			t.Errorf("branch 3 outcome = %v, want ignored", sel.outcome[0])
		}
		has4 := false
		for _, v := range sel.takeEach {
			if v == 4 {
				has4 = true
			}
		}
		if !has4 {
			t.Errorf("takeEach = %v, must contain op 4", sel.takeEach)
		}
	})
	probeDecision(t, sb, m, DefaultConfig(), 1, func(p *Picker, st *sched.State) {
		sel := p.selectCompatible(st)
		if sel.outcome[0] != outcomeSelected {
			t.Errorf("branch 3 outcome = %v, want selected at decision 1", sel.outcome[0])
		}
		if sel.takeOne == nil {
			t.Error("takeOne should carry branch 3's resource need at decision 1")
		}
	})
}

// TestTradeoffMarksDelayedOK: on Figure 4 with a rare side exit, delaying
// the side exit for the final exit is exactly what the pairwise optimum
// prescribes, so a delayed side exit must be revised to delayedOK rather
// than dragging the selection's rank down.
func TestTradeoffMarksDelayedOK(t *testing.T) {
	sb := figures.Figure4(0.05)
	m := model.GP2()
	p := NewPicker(sb, m, DefaultConfig())
	pr := p.pairs[[2]int{0, 1}]
	if pr == nil {
		t.Fatal("no pairwise bound")
	}
	if pr.Bi <= pr.Ei {
		t.Fatalf("pairwise optimum (Bi=%d, Ei=%d) should delay the side exit at P=0.05", pr.Bi, pr.Ei)
	}
	sel := &selection{outcome: []outcome{outcomeDelayed, outcomeSelected}}
	p.applyTradeoffs(sel)
	if sel.outcome[0] != outcomeDelayedOK {
		t.Errorf("delayed side exit not revised to delayedOK: %v", sel.outcome)
	}
}

// TestFindSwap: with a frequent side exit, the pairwise optimum prefers
// delaying the final exit, so a selection that delayed the side exit while
// selecting the (earlier-processed) final exit must trigger an order swap.
func TestFindSwap(t *testing.T) {
	sb := figures.Figure4(0.6)
	m := model.GP2()
	p := NewPicker(sb, m, DefaultConfig())
	pr := p.pairs[[2]int{0, 1}]
	if pr.Bj <= pr.Ej {
		t.Fatalf("pairwise optimum (Bj=%d, Ej=%d) should delay the final exit at P=0.6", pr.Bj, pr.Ej)
	}
	sel := &selection{outcome: []outcome{outcomeDelayed, outcomeSelected}}
	order := []int{1, 0} // final exit processed first
	i, j := p.findSwap(sel, order)
	if i != 0 || j != 1 {
		t.Errorf("findSwap = (%d,%d), want (0,1)", i, j)
	}
	// With the side exit already processed first, no swap applies.
	order2 := []int{0, 1}
	if i, _ := p.findSwap(sel, order2); i != -1 {
		t.Errorf("unexpected swap with order %v", order2)
	}
}
