package core

import (
	"testing"
	"testing/quick"

	"balance/internal/bounds"
	"balance/internal/sched"
	"balance/internal/testutil"
)

var quickCfg = &quick.Config{MaxCount: 60}

// TestQuickBalanceLegalAndBounded: on arbitrary instances, machines, and
// ablation configurations, Balance produces a legal schedule that respects
// the tightest lower bound.
func TestQuickBalanceLegalAndBounded(t *testing.T) {
	prop := func(q testutil.QuickSB, qm testutil.QuickMachine, knobs uint8) bool {
		sb, m := q.SB, qm.M
		cfg := Config{
			UseBounds: knobs&1 != 0,
			HelpDelay: knobs&2 != 0,
			Tradeoff:  knobs&2 != 0 && knobs&4 != 0,
			Update:    UpdateMode(int(knobs>>3) % 3),
		}
		s, _, err := Balance(cfg).Run(sb, m)
		if err != nil {
			t.Logf("balance failed: %v", err)
			return false
		}
		if err := sched.Verify(sb, m, s); err != nil {
			t.Logf("illegal: %v", err)
			return false
		}
		set := bounds.Compute(sb, m, bounds.Options{})
		if sched.Cost(sb, s) < set.Tightest-1e-9 {
			t.Logf("cost %v below bound %v", sched.Cost(sb, s), set.Tightest)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSelectionInvariants: the branch selection never returns an op in
// TakeEach that is not dependence-ready, and every selected branch's
// needEach is contained in TakeEach.
func TestQuickSelectionInvariants(t *testing.T) {
	prop := func(q testutil.QuickSB, qm testutil.QuickMachine) bool {
		sb, m := q.SB, qm.M
		p := NewPicker(sb, m, DefaultConfig())
		ok := true
		probe := sched.PickerFunc(func(st *sched.State) int {
			v := p.Pick(st)
			if v < 0 {
				return v
			}
			// Re-run the selection to inspect its invariants at this state.
			sel := p.selectCompatible(st)
			for _, u := range sel.takeEach {
				if !st.DepReady(u) {
					ok = false
				}
			}
			for bi, oc := range sel.outcome {
				if oc != outcomeSelected {
					continue
				}
				for _, u := range p.liveNeeds(st, p.br[bi].needEach) {
					found := false
					for _, w := range sel.takeEach {
						if w == u {
							found = true
							break
						}
					}
					if !found {
						ok = false
					}
				}
			}
			return v
		})
		if _, _, err := sched.Run(sb, m, probe); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
