package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func cacheKey(i int) memoKey {
	return memoKey{digest: uint64(i), machine: "GP2", schedulers: "CP"}
}

// TestCacheDoCoalesces checks the singleflight contract under concurrency:
// many goroutines asking for the same absent key share exactly one compute
// call, and the stats report one miss plus N-1 coalesced waits.
func TestCacheDoCoalesces(t *testing.T) {
	const waiters = 16
	m := NewMemo(8)
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	vals := make([]memoVal, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := m.Do(context.Background(), cacheKey(1), func() (memoVal, error) {
				close(started) // only the single leader ever gets here
				<-release
				computes.Add(1)
				return memoVal{trivial: true}, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			vals[i] = v
		}(i)
	}
	<-started
	// Every non-leader is either blocked on the flight or about to join it;
	// give them a moment so the coalesced count is exercised meaningfully.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", n)
	}
	for i, v := range vals {
		if !v.trivial {
			t.Fatalf("waiter %d got a zero value", i)
		}
	}
	s := m.CacheStats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1", s.Misses)
	}
	if s.Hits+s.Coalesced != waiters-1 {
		t.Errorf("hits (%d) + coalesced (%d) = %d, want %d non-leader callers accounted",
			s.Hits, s.Coalesced, s.Hits+s.Coalesced, waiters-1)
	}
	if s.Coalesced == 0 {
		t.Error("no caller coalesced onto the in-flight computation")
	}
}

// TestCacheDoLeaderErrorNotCached checks that a failing compute is never
// stored, that waiters retry (one becomes the new leader), and that a
// later Do recomputes.
func TestCacheDoLeaderErrorNotCached(t *testing.T) {
	m := NewMemo(8)
	boom := errors.New("boom")
	var calls atomic.Int64
	_, _, err := m.Do(context.Background(), cacheKey(2), func() (memoVal, error) {
		calls.Add(1)
		return memoVal{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want boom", err)
	}
	if s := m.CacheStats(); s.Size != 0 {
		t.Fatalf("errored value was cached (size %d)", s.Size)
	}
	v, _, err := m.Do(context.Background(), cacheKey(2), func() (memoVal, error) {
		calls.Add(1)
		return memoVal{trivial: true}, nil
	})
	if err != nil || !v.trivial {
		t.Fatalf("retry after error: v=%+v err=%v", v, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("compute calls = %d, want 2", calls.Load())
	}
}

// TestCacheDoLeaderPanicReleasesWaiters checks that a panicking leader
// wakes its waiters (who retry and recompute) instead of deadlocking them,
// and that the panic still propagates to the leader's caller.
func TestCacheDoLeaderPanicReleasesWaiters(t *testing.T) {
	m := NewMemo(8)
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		m.Do(context.Background(), cacheKey(3), func() (memoVal, error) { //nolint:errcheck
			close(leaderIn)
			<-release
			panic("injected")
		})
	}()
	<-leaderIn

	var wg sync.WaitGroup
	var recomputes atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := m.Do(context.Background(), cacheKey(3), func() (memoVal, error) {
				recomputes.Add(1)
				return memoVal{trivial: true}, nil
			})
			if err != nil || !v.trivial {
				t.Errorf("waiter after leader panic: v=%+v err=%v", v, err)
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	close(release)
	if r := <-done; r == nil {
		t.Fatal("leader panic did not propagate")
	}
	wg.Wait()
	if recomputes.Load() == 0 {
		t.Error("no waiter recomputed after the leader panicked")
	}
}

// TestCacheDoWaiterCancellation checks that a waiter whose context is
// cancelled while it blocks on another caller's computation returns the
// context error without disturbing the leader.
func TestCacheDoWaiterCancellation(t *testing.T) {
	m := NewMemo(8)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		m.Do(context.Background(), cacheKey(4), func() (memoVal, error) { //nolint:errcheck
			close(leaderIn)
			<-release
			return memoVal{trivial: true}, nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := m.Do(ctx, cacheKey(4), func() (memoVal, error) {
			t.Error("cancelled waiter must not compute")
			return memoVal{}, nil
		})
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter error = %v, want context.Canceled", err)
	}
	close(release)
	v, _, err := m.Do(context.Background(), cacheKey(4), func() (memoVal, error) {
		t.Error("resident value must not recompute")
		return memoVal{}, nil
	})
	if err != nil || !v.trivial {
		t.Fatalf("leader value lost after waiter cancellation: v=%+v err=%v", v, err)
	}
}

// TestCacheEvictionExactAtCapacity checks LRU eviction accounting: filling
// a cache of capacity C with C+K distinct keys evicts exactly K entries in
// least-recently-used order, overwrites never evict, and the stats add up.
func TestCacheEvictionExactAtCapacity(t *testing.T) {
	const cap, extra = 8, 5
	m := NewMemo(cap)
	for i := 0; i < cap; i++ {
		m.store(cacheKey(i), memoVal{})
	}
	if s := m.CacheStats(); s.Evictions != 0 || s.Size != cap {
		t.Fatalf("after fill: evictions=%d size=%d, want 0/%d", s.Evictions, s.Size, cap)
	}
	// Touch key 0 so it becomes most-recently-used and survives the
	// overflow below.
	if _, ok := m.lookup(cacheKey(0)); !ok {
		t.Fatal("key 0 missing after fill")
	}
	// Overwriting a resident key at capacity must not evict.
	m.store(cacheKey(1), memoVal{trivial: true})
	if s := m.CacheStats(); s.Evictions != 0 || s.Size != cap {
		t.Fatalf("after overwrite: evictions=%d size=%d, want 0/%d", s.Evictions, s.Size, cap)
	}
	for i := 0; i < extra; i++ {
		m.store(cacheKey(100+i), memoVal{})
	}
	s := m.CacheStats()
	if s.Evictions != extra {
		t.Errorf("evictions = %d, want exactly %d", s.Evictions, extra)
	}
	if s.Size != cap {
		t.Errorf("size = %d, want %d", s.Size, cap)
	}
	if s.Capacity != cap {
		t.Errorf("capacity = %d, want %d", s.Capacity, cap)
	}
	// The recently-touched keys survived; the LRU victims (2..6) are gone.
	for _, want := range []int{0, 1} {
		if _, ok := m.lookup(cacheKey(want)); !ok {
			t.Errorf("recently-used key %d was evicted", want)
		}
	}
	for _, gone := range []int{2, 3, 4} {
		if _, ok := m.lookup(cacheKey(gone)); ok {
			t.Errorf("LRU victim key %d still resident", gone)
		}
	}
}

// TestCacheDoConcurrentDistinctKeys hammers Do with a mixed workload of
// distinct and shared keys under the race detector and checks the global
// accounting invariant: every Do call lands in exactly one of
// hits/misses/coalesced.
func TestCacheDoConcurrentDistinctKeys(t *testing.T) {
	const workers, rounds, keys = 8, 500, 16
	m := NewMemo(keys) // no eviction: resident set covers the key space
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := cacheKey((w + i) % keys)
				_, _, err := m.Do(context.Background(), k, func() (memoVal, error) {
					return memoVal{trivial: true}, nil
				})
				if err != nil {
					t.Errorf("Do: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	s := m.CacheStats()
	if total := s.Hits + s.Misses + s.Coalesced; total != workers*rounds {
		t.Errorf("hits(%d)+misses(%d)+coalesced(%d) = %d calls, want %d",
			s.Hits, s.Misses, s.Coalesced, total, workers*rounds)
	}
	if s.Misses < keys {
		t.Errorf("misses = %d, want ≥ %d (every key computed at least once)", s.Misses, keys)
	}
}
