package engine

import (
	"fmt"

	"balance/internal/bounds"
	"balance/internal/model"
	"balance/internal/resilience"
	"balance/internal/sched"
)

// checkpointKey renders a memo key into the stable string form used as the
// resilience.Checkpoint record key. It carries everything that determines
// an evaluation's outcome — graph digest, machine, bound options, and the
// scheduler-set string (which already embeds the job-budget spec) — so a
// checkpoint written by one configuration is never misread by another.
// bounds.Options is a flat struct of scalars, so %+v renders it
// deterministically.
func checkpointKey(k memoKey) string {
	return fmt.Sprintf("%016x|%s|%+v|%s", k.digest, k.machine, k.opts, k.schedulers)
}

// resolveSchedulers maps scheduler names (default: the primaries) to
// registry entries plus their canonical names.
func resolveSchedulers(names []string) ([]Scheduler, []string, error) {
	if len(names) == 0 {
		names = PrimaryNames()
	}
	scheds := make([]Scheduler, len(names))
	canonical := make([]string, len(names))
	for i, name := range names {
		s, err := SchedulerByName(name)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: %w", err)
		}
		scheds[i], canonical[i] = s, s.Name
	}
	return scheds, canonical, nil
}

// evalSetKey renders the scheduler-set portion of memo and checkpoint
// keys. A budgeted evaluation may be degraded, so the budget spec is
// folded in: budgeted and unbudgeted evaluations never share an entry.
func evalSetKey(canonical []string, best bool, budget resilience.Spec) string {
	setKey := schedulerSetKey(canonical, best)
	if !budget.IsZero() {
		setKey += "|budget=" + budget.String()
	}
	return setKey
}

// EvalKey returns the exact resilience.Checkpoint key Run would use for
// evaluating sb on m with the given configuration. It is the content
// address of one unit of evaluation work: the distributed coordinator
// shards a corpus by these keys, and because they match the
// single-process keys byte for byte, a coordinator journal doubles as a
// plain -checkpoint file (and vice versa).
func EvalKey(sb *model.Superblock, m *model.Machine, opts bounds.Options, schedulers []string, best bool, budget resilience.Spec) (string, error) {
	_, canonical, err := resolveSchedulers(schedulers)
	if err != nil {
		return "", err
	}
	return checkpointKey(memoKey{
		digest:     sb.Digest(),
		machine:    m.Name,
		opts:       opts,
		schedulers: evalSetKey(canonical, best, budget),
	}), nil
}

// Record is the JSONL-persisted form of one completed Result —
// exactly the structure-dependent scalars the reporting layer consumes
// (catalog bound values, per-algorithm trip stats, scheduler costs and
// stats, triviality, degradation). Per-branch vectors and pair/triple
// artifacts are deliberately not persisted: a resumed Result carries a
// bounds.Set with only the scalar values and statistics populated, which
// is all the tables read. See DESIGN.md ("Checkpoint format") for the
// file-level schema and versioning rules.
type Record struct {
	SB        string                 `json:"sb"`
	Benchmark string                 `json:"benchmark,omitempty"`
	CPVal     float64                `json:"cp"`
	HuVal     float64                `json:"hu"`
	RJVal     float64                `json:"rj"`
	LCVal     float64                `json:"lc"`
	PairVal   float64                `json:"pw"`
	TripleVal float64                `json:"tw"`
	Tightest  float64                `json:"tightest"`
	AlgStats  bounds.AlgStats        `json:"alg_stats"`
	Cost      map[string]float64     `json:"cost"`
	Stats     map[string]sched.Stats `json:"stats,omitempty"`
	Trivial   bool                   `json:"trivial"`
	Degraded  int                    `json:"degraded,omitempty"`
}

// RecordOf extracts the persistable scalars from a completed result.
func RecordOf(res *Result) Record {
	s := res.Bounds
	return Record{
		SB:        res.SB.Name,
		Benchmark: res.Benchmark,
		CPVal:     s.CPVal,
		HuVal:     s.HuVal,
		RJVal:     s.RJVal,
		LCVal:     s.LCVal,
		PairVal:   s.PairVal,
		TripleVal: s.TripleVal,
		Tightest:  s.Tightest,
		AlgStats:  s.Stats,
		Cost:      res.Cost,
		Stats:     res.Stats,
		Trivial:   res.Trivial,
		Degraded:  res.Degraded,
	}
}

// Apply reconstitutes a resumed Result from a checkpoint record. The
// rebuilt bound set holds the scalar values and statistics only; res keeps
// its own SB and Benchmark (the digest excludes name and frequency, so the
// record may have been written by a structural twin).
func (rec *Record) Apply(res *Result, m *model.Machine) {
	res.Bounds = &bounds.Set{
		SB:        res.SB,
		M:         m,
		Expanded:  res.SB,
		CPVal:     rec.CPVal,
		HuVal:     rec.HuVal,
		RJVal:     rec.RJVal,
		LCVal:     rec.LCVal,
		PairVal:   rec.PairVal,
		TripleVal: rec.TripleVal,
		Tightest:  rec.Tightest,
		Stats:     rec.AlgStats,
		Degraded:  rec.Degraded,
	}
	res.Cost = rec.Cost
	res.Stats = rec.Stats
	res.Trivial = rec.Trivial
	res.Degraded = rec.Degraded
	res.Resumed = true
}
