package engine

import (
	"fmt"

	"balance/internal/bounds"
	"balance/internal/model"
	"balance/internal/sched"
)

// checkpointKey renders a memo key into the stable string form used as the
// resilience.Checkpoint record key. It carries everything that determines
// an evaluation's outcome — graph digest, machine, bound options, and the
// scheduler-set string (which already embeds the job-budget spec) — so a
// checkpoint written by one configuration is never misread by another.
// bounds.Options is a flat struct of scalars, so %+v renders it
// deterministically.
func checkpointKey(k memoKey) string {
	return fmt.Sprintf("%016x|%s|%+v|%s", k.digest, k.machine, k.opts, k.schedulers)
}

// checkpointRecord is the JSONL-persisted form of one completed Result —
// exactly the structure-dependent scalars the reporting layer consumes
// (catalog bound values, per-algorithm trip stats, scheduler costs and
// stats, triviality, degradation). Per-branch vectors and pair/triple
// artifacts are deliberately not persisted: a resumed Result carries a
// bounds.Set with only the scalar values and statistics populated, which
// is all the tables read. See DESIGN.md ("Checkpoint format") for the
// file-level schema and versioning rules.
type checkpointRecord struct {
	SB        string                 `json:"sb"`
	Benchmark string                 `json:"benchmark,omitempty"`
	CPVal     float64                `json:"cp"`
	HuVal     float64                `json:"hu"`
	RJVal     float64                `json:"rj"`
	LCVal     float64                `json:"lc"`
	PairVal   float64                `json:"pw"`
	TripleVal float64                `json:"tw"`
	Tightest  float64                `json:"tightest"`
	AlgStats  bounds.AlgStats        `json:"alg_stats"`
	Cost      map[string]float64     `json:"cost"`
	Stats     map[string]sched.Stats `json:"stats,omitempty"`
	Trivial   bool                   `json:"trivial"`
	Degraded  int                    `json:"degraded,omitempty"`
}

// recordOf extracts the persistable scalars from a completed result.
func recordOf(res *Result) checkpointRecord {
	s := res.Bounds
	return checkpointRecord{
		SB:        res.SB.Name,
		Benchmark: res.Benchmark,
		CPVal:     s.CPVal,
		HuVal:     s.HuVal,
		RJVal:     s.RJVal,
		LCVal:     s.LCVal,
		PairVal:   s.PairVal,
		TripleVal: s.TripleVal,
		Tightest:  s.Tightest,
		AlgStats:  s.Stats,
		Cost:      res.Cost,
		Stats:     res.Stats,
		Trivial:   res.Trivial,
		Degraded:  res.Degraded,
	}
}

// apply reconstitutes a resumed Result from a checkpoint record. The
// rebuilt bound set holds the scalar values and statistics only; res keeps
// its own SB and Benchmark (the digest excludes name and frequency, so the
// record may have been written by a structural twin).
func (rec *checkpointRecord) apply(res *Result, m *model.Machine) {
	res.Bounds = &bounds.Set{
		SB:        res.SB,
		M:         m,
		Expanded:  res.SB,
		CPVal:     rec.CPVal,
		HuVal:     rec.HuVal,
		RJVal:     rec.RJVal,
		LCVal:     rec.LCVal,
		PairVal:   rec.PairVal,
		TripleVal: rec.TripleVal,
		Tightest:  rec.Tightest,
		Stats:     rec.AlgStats,
		Degraded:  rec.Degraded,
	}
	res.Cost = rec.Cost
	res.Stats = rec.Stats
	res.Trivial = rec.Trivial
	res.Degraded = rec.Degraded
	res.Resumed = true
}
