package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"balance/internal/bounds"
	"balance/internal/model"
	"balance/internal/sched"
	"balance/internal/telemetry"
)

// Job is one unit of pipeline work: a superblock and the benchmark it
// belongs to.
type Job struct {
	Benchmark string
	SB        *model.Superblock
}

// Config configures a streaming evaluation run on one machine.
type Config struct {
	// Jobs lists the superblocks to evaluate. Results are emitted in Jobs
	// order regardless of worker interleaving.
	Jobs []Job
	// Machine is the configuration to evaluate on (required).
	Machine *model.Machine
	// Bounds configures the lower-bound computation for every job.
	Bounds bounds.Options
	// Schedulers names the registry schedulers to run per job (default:
	// the primary heuristics in paper column order).
	Schedulers []string
	// Best additionally reports the "Best" meta-column: the cheapest cost
	// among the configured schedulers' schedules and the 121 cross-product
	// schedules (the paper's best-of-127 when run over the six primaries).
	Best bool
	// Workers bounds the worker pool (≤ 0 uses GOMAXPROCS).
	Workers int
	// Memo, when non-nil, caches evaluations across Run calls keyed by
	// (graph digest, machine, bound options, scheduler set).
	Memo *Memo
}

// Result is the full evaluation of one superblock on one machine. The Cost,
// Stats, and Bounds fields may be shared with other results through the
// memo cache and must be treated as read-only.
type Result struct {
	// Index is the job's position in Config.Jobs; results arrive in
	// increasing Index order. The terminal error result (if any) has
	// Index -1.
	Index     int
	Benchmark string
	SB        *model.Superblock
	// Bounds is the full lower-bound set.
	Bounds *bounds.Set
	// Cost[name] is the weighted completion time of each scheduler's
	// schedule (plus "Best" when configured).
	Cost map[string]float64
	// Stats[name] records the scheduling work of each scheduler.
	Stats map[string]sched.Stats
	// Trivial is true when every configured scheduler achieved the
	// tightest bound.
	Trivial bool
	// Err is non-nil only on the final result of an aborted run: the first
	// evaluation error, or ctx.Err() after cancellation. No further
	// results follow it.
	Err error

	// memoHit records whether this result was recalled from the memo
	// (telemetry only).
	memoHit bool
}

// DynCycles converts a weighted completion time into the superblock's
// dynamic cycle count.
func (r *Result) DynCycles(cost float64) float64 { return r.SB.Freq * cost }

// crossProductAll produces the cross-product schedules behind the Best
// meta-column. It is injected by internal/heuristics at init: engine sits
// below heuristics in the import DAG and cannot import it.
var crossProductAll func(ctx context.Context, sb *model.Superblock, m *model.Machine) ([]*sched.Schedule, sched.Stats, error)

// RegisterCrossProduct installs the cross-product schedule source used by
// Config.Best.
func RegisterCrossProduct(fn func(ctx context.Context, sb *model.Superblock, m *model.Machine) ([]*sched.Schedule, sched.Stats, error)) {
	crossProductAll = fn
}

// Run evaluates every job on cfg.Machine across a bounded worker pool and
// streams the results in job order. The channel is closed when the run
// completes, fails, or is cancelled; an aborted run's last result carries
// the error in Err (ctx.Err() after cancellation). The channel is fully
// buffered, so Run never leaks goroutines even if the consumer stops
// reading early — but a well-behaved consumer drains the channel or
// cancels ctx.
//
// Configuration errors (no machine, unknown scheduler name, Best without a
// registered cross-product source) are reported synchronously.
func Run(ctx context.Context, cfg Config) (<-chan Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Machine == nil {
		return nil, errors.New("engine: Config.Machine is required")
	}
	names := cfg.Schedulers
	if len(names) == 0 {
		names = PrimaryNames()
	}
	scheds := make([]Scheduler, len(names))
	canonical := make([]string, len(names))
	for i, name := range names {
		s, err := SchedulerByName(name)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		scheds[i], canonical[i] = s, s.Name
	}
	if cfg.Best && crossProductAll == nil {
		return nil, errors.New("engine: Best requires the cross-product source (import balance/internal/heuristics)")
	}
	setKey := schedulerSetKey(canonical, cfg.Best)

	n := len(cfg.Jobs)
	out := make(chan Result, n+1) // fully buffered: emission never blocks
	slots := make([]Result, n)
	completed := make(chan int, n)

	poolErr := make(chan error, 1)
	queuedAt := time.Now()
	go func() {
		defer close(completed)
		poolErr <- ForEach(ctx, cfg.Workers, n, func(i int) error {
			telJobsStarted.Inc()
			telOccupancy.Add(1)
			start := time.Now()
			telQueueWait.ObserveDuration(start.Sub(queuedAt))
			sp := telemetry.Default().StartSpan("engine.job")
			res, err := evaluateJob(ctx, &cfg, scheds, setKey, i)
			telCompute.ObserveDuration(time.Since(start))
			telOccupancy.Add(-1)
			if sp.Active() {
				hit := int64(0)
				if res.memoHit {
					hit = 1
				}
				sp.End(
					telemetry.String("benchmark", cfg.Jobs[i].Benchmark),
					telemetry.String("sb", cfg.Jobs[i].SB.Name),
					telemetry.Int("index", int64(i)),
					telemetry.Int("memo_hit", hit),
				)
			}
			if err != nil {
				telJobsFailed.Inc()
				return err
			}
			telJobsFinished.Inc()
			slots[i] = res
			completed <- i
			return nil
		})
	}()

	go func() {
		defer close(out)
		ready := make([]bool, n)
		next := 0
		for i := range completed {
			ready[i] = true
			for next < n && ready[next] && ctx.Err() == nil {
				out <- slots[next]
				next++
			}
		}
		if err := <-poolErr; err != nil {
			out <- Result{Index: -1, Err: err}
		} else if next < n {
			// The pool finished before the cancellation that suppressed
			// the remaining emissions; never end a truncated stream
			// silently.
			out <- Result{Index: -1, Err: ctx.Err()}
		}
	}()
	return out, nil
}

// Collect drains a Run result stream into a slice, returning the error of
// an aborted run.
func Collect(ch <-chan Result) ([]*Result, error) {
	var out []*Result
	for res := range ch {
		if res.Err != nil {
			return nil, res.Err
		}
		res := res
		out = append(out, &res)
	}
	return out, nil
}

// evaluateJob computes (or recalls from the memo) the bounds and every
// configured scheduler's schedule for one job.
func evaluateJob(ctx context.Context, cfg *Config, scheds []Scheduler, setKey string, idx int) (Result, error) {
	job := cfg.Jobs[idx]
	res := Result{Index: idx, Benchmark: job.Benchmark, SB: job.SB}
	var key memoKey
	if cfg.Memo != nil {
		key = memoKey{
			digest:     job.SB.Digest(),
			machine:    cfg.Machine.Name,
			opts:       cfg.Bounds,
			schedulers: setKey,
		}
		if v, ok := cfg.Memo.lookup(key); ok {
			telMemoHits.Inc()
			res.Bounds, res.Cost, res.Stats, res.Trivial = v.bounds, v.cost, v.stats, v.trivial
			res.memoHit = true
			return res, nil
		}
		telMemoMisses.Inc()
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}

	set := bounds.Compute(job.SB, cfg.Machine, cfg.Bounds)
	res.Bounds = set
	res.Cost = make(map[string]float64, len(scheds)+1)
	res.Stats = make(map[string]sched.Stats, len(scheds)+1)
	trivial := true
	var bestCost float64
	var bestSet bool
	for _, s := range scheds {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		inst := s.Instantiate(ctx)
		sc, stats, err := inst.Run(job.SB, cfg.Machine)
		if err != nil {
			return res, fmt.Errorf("engine: %s on %s/%s: %w", inst.Name, job.SB.Name, cfg.Machine.Name, err)
		}
		cost := sched.Cost(job.SB, sc)
		res.Cost[inst.Name] = cost
		res.Stats[inst.Name] = stats
		if cost > set.Tightest+1e-9 {
			trivial = false
		}
		if !bestSet || cost < bestCost {
			bestCost, bestSet = cost, true
		}
	}
	if cfg.Best {
		cps, cpStats, err := crossProductAll(ctx, job.SB, cfg.Machine)
		if err != nil {
			return res, fmt.Errorf("engine: cross product on %s/%s: %w", job.SB.Name, cfg.Machine.Name, err)
		}
		for _, s := range cps {
			if c := sched.Cost(job.SB, s); !bestSet || c < bestCost {
				bestCost, bestSet = c, true
			}
		}
		res.Cost["Best"] = bestCost
		res.Stats["Best"] = cpStats
	}
	res.Trivial = trivial
	if cfg.Memo != nil {
		cfg.Memo.store(key, memoVal{bounds: res.Bounds, cost: res.Cost, stats: res.Stats, trivial: res.Trivial})
	}
	return res, nil
}
