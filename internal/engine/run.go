package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"time"

	"balance/internal/bounds"
	"balance/internal/model"
	"balance/internal/resilience"
	"balance/internal/sched"
	"balance/internal/telemetry"
)

// ErrorPolicy selects how Run reacts to a failing (or panicking) job.
type ErrorPolicy int

const (
	// FailFast aborts the run at the first job error: the pool stops
	// claiming jobs and the stream ends with a terminal Result (Index -1)
	// carrying the error. This is the default.
	FailFast ErrorPolicy = iota
	// KeepGoing isolates failures: a failing job is emitted in stream
	// order as a Result with its Index preserved and Err set (panics
	// arrive as a *resilience.PanicError with the captured stack), and the
	// remaining jobs still run. The stream only ends early on context
	// cancellation.
	KeepGoing
)

// Job is one unit of pipeline work: a superblock and the benchmark it
// belongs to.
type Job struct {
	Benchmark string
	SB        *model.Superblock
	// Parent, when set, overrides the span parent of this job's span
	// tree: engine.job parents Parent instead of the surrounding
	// engine.run span. Distributed workers set it from the coordinator's
	// per-unit span context (carried in the lease), so each unit's
	// worker-side spans nest under the coordinator's unit span when the
	// per-process trace files merge.
	Parent telemetry.SpanContext
	// Labels are pprof goroutine label pairs (key1, value1, key2,
	// value2, ...) applied while the job runs, so continuous profiles
	// attribute CPU samples to the unit being evaluated. Ignored unless
	// the length is even and non-zero.
	Labels []string
}

// Config configures a streaming evaluation run on one machine.
type Config struct {
	// Jobs lists the superblocks to evaluate. Results are emitted in Jobs
	// order regardless of worker interleaving.
	Jobs []Job
	// Machine is the configuration to evaluate on (required).
	Machine *model.Machine
	// Bounds configures the lower-bound computation for every job.
	Bounds bounds.Options
	// Schedulers names the registry schedulers to run per job (default:
	// the primary heuristics in paper column order).
	Schedulers []string
	// Best additionally reports the "Best" meta-column: the cheapest cost
	// among the configured schedulers' schedules and the 121 cross-product
	// schedules (the paper's best-of-127 when run over the six primaries).
	Best bool
	// Workers bounds the worker pool (≤ 0 uses GOMAXPROCS).
	Workers int
	// Memo, when non-nil, caches evaluations across Run calls keyed by
	// (graph digest, machine, bound options, scheduler set).
	Memo *Memo

	// OnError selects the failure policy (default FailFast).
	OnError ErrorPolicy
	// JobBudget bounds each job's lower-bound computation. When the budget
	// expires mid-job the bound ladder degrades instead of failing (see
	// bounds.ComputeBudget); Result.Degraded reports the cut. The zero
	// Spec is unlimited. The budget spec participates in the memo and
	// checkpoint keys, so budgeted and unbudgeted evaluations never
	// conflate.
	JobBudget resilience.Spec
	// Checkpoint, when non-nil, makes the run resumable: every completed
	// job's result is recorded under a digest-derived key, and jobs whose
	// key is already present are recalled instead of recomputed
	// (Result.Resumed reports the recall). The caller owns the checkpoint
	// lifecycle and must Flush it when the run completes.
	Checkpoint *resilience.Checkpoint
	// Inject, when non-nil, runs before each job inside the worker's
	// panic-isolation scope — the fault-injection hook used by the chaos
	// harness (resilience.Chaos.Visit). A returned error or panic is
	// handled exactly like a job failure.
	Inject func(i int) error
}

// Result is the full evaluation of one superblock on one machine. The Cost,
// Stats, and Bounds fields may be shared with other results through the
// memo cache and must be treated as read-only.
type Result struct {
	// Index is the job's position in Config.Jobs; results arrive in
	// increasing Index order. The terminal error result (if any) has
	// Index -1.
	Index     int
	Benchmark string
	SB        *model.Superblock
	// Bounds is the full lower-bound set.
	Bounds *bounds.Set
	// Cost[name] is the weighted completion time of each scheduler's
	// schedule (plus "Best" when configured).
	Cost map[string]float64
	// Stats[name] records the scheduling work of each scheduler.
	Stats map[string]sched.Stats
	// Trivial is true when every configured scheduler achieved the
	// tightest bound.
	Trivial bool
	// Degraded reports how far the job's bound ladder was cut by an
	// expired JobBudget (bounds.DegradeNone when the full ladder ran).
	Degraded int
	// Resumed is true when the result was recalled from Config.Checkpoint
	// instead of recomputed.
	Resumed bool
	// Cached is true when the result was recalled from Config.Memo;
	// Coalesced is true when it was obtained by joining another caller's
	// in-flight computation of the same key (singleflight). At most one of
	// the two is set; both false means this job ran the computation.
	Cached    bool
	Coalesced bool
	// Err reports a failure. Under FailFast it is non-nil only on the
	// final result of an aborted run (Index -1): the first evaluation
	// error, or ctx.Err() after cancellation; no further results follow
	// it. Under KeepGoing, per-job failures are additionally emitted in
	// stream order with their Index preserved and Err set — panics arrive
	// as a *resilience.PanicError.
	Err error
}

// DynCycles converts a weighted completion time into the superblock's
// dynamic cycle count.
func (r *Result) DynCycles(cost float64) float64 { return r.SB.Freq * cost }

// crossProductAll produces the cross-product schedules behind the Best
// meta-column. It is injected by internal/heuristics at init: engine sits
// below heuristics in the import DAG and cannot import it.
var crossProductAll func(ctx context.Context, sb *model.Superblock, m *model.Machine) ([]*sched.Schedule, sched.Stats, error)

// RegisterCrossProduct installs the cross-product schedule source used by
// Config.Best.
func RegisterCrossProduct(fn func(ctx context.Context, sb *model.Superblock, m *model.Machine) ([]*sched.Schedule, sched.Stats, error)) {
	crossProductAll = fn
}

// Run evaluates every job on cfg.Machine across a bounded worker pool and
// streams the results in job order. The channel is closed when the run
// completes, fails, or is cancelled; an aborted run's last result carries
// the error in Err (ctx.Err() after cancellation). The channel is fully
// buffered, so Run never leaks goroutines even if the consumer stops
// reading early — but a well-behaved consumer drains the channel or
// cancels ctx.
//
// Configuration errors (no machine, unknown scheduler name, Best without a
// registered cross-product source) are reported synchronously.
func Run(ctx context.Context, cfg Config) (<-chan Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Machine == nil {
		return nil, errors.New("engine: Config.Machine is required")
	}
	scheds, canonical, err := resolveSchedulers(cfg.Schedulers)
	if err != nil {
		return nil, err
	}
	if cfg.Best && crossProductAll == nil {
		return nil, errors.New("engine: Best requires the cross-product source (import balance/internal/heuristics)")
	}
	setKey := evalSetKey(canonical, cfg.Best, cfg.JobBudget)

	// The run's root span: every job span (and, through the job context,
	// every bounds/sched/solver span below it) parents back to it, so a
	// trace viewer shows one tree per Run call.
	runSpan, ctx := telemetry.Default().StartSpanCtx(ctx, "engine.run")

	n := len(cfg.Jobs)
	out := make(chan Result, n+1) // fully buffered: emission never blocks
	slots := make([]Result, n)
	completed := make(chan int, n)

	poolErr := make(chan error, 1)
	queuedAt := time.Now()
	go func() {
		defer close(completed)
		poolErr <- ForEach(ctx, cfg.Workers, n, func(i int) error {
			telJobsStarted.Inc()
			telOccupancy.Add(1)
			start := time.Now()
			telQueueWait.ObserveDuration(start.Sub(queuedAt))
			spanCtx := ctx
			if p := cfg.Jobs[i].Parent; p.Trace != 0 {
				spanCtx = telemetry.ContextWithSpan(ctx, p)
			}
			sp, jobCtx := telemetry.Default().StartSpanCtx(spanCtx, "engine.job")
			var res Result
			// The Protect scope covers the chaos hook and the evaluation,
			// so injected or organic panics become this job's error
			// instead of killing the process (ForEach would also recover
			// them, but here KeepGoing must see them per-job).
			protected := func() error {
				return resilience.Protect(func() error {
					if cfg.Inject != nil {
						if err := cfg.Inject(i); err != nil {
							return err
						}
					}
					var err error
					res, err = evaluateJob(jobCtx, &cfg, scheds, setKey, i)
					return err
				})
			}
			var err error
			if labels := cfg.Jobs[i].Labels; len(labels) > 0 && len(labels)%2 == 0 {
				pprof.Do(jobCtx, pprof.Labels(labels...), func(lctx context.Context) {
					jobCtx = lctx
					err = protected()
				})
			} else {
				err = protected()
			}
			telCompute.ObserveDuration(time.Since(start))
			telOccupancy.Add(-1)
			if sp.Active() {
				hit := int64(0)
				if res.Cached || res.Coalesced {
					hit = 1
				}
				sp.End(
					telemetry.String("benchmark", cfg.Jobs[i].Benchmark),
					telemetry.String("sb", cfg.Jobs[i].SB.Name),
					telemetry.Int("index", int64(i)),
					telemetry.Int("memo_hit", hit),
				)
			}
			if err != nil {
				telJobsFailed.Inc()
				if cfg.OnError == KeepGoing {
					// The pool never sees this error, so account for the
					// panic here; under FailFast the returned error is
					// counted by the pool's own recovery bookkeeping.
					var pe *resilience.PanicError
					if errors.As(err, &pe) {
						telJobsPanicked.Inc()
					}
					job := cfg.Jobs[i]
					slots[i] = Result{Index: i, Benchmark: job.Benchmark, SB: job.SB, Err: err}
					completed <- i
					return nil
				}
				return err
			}
			telJobsFinished.Inc()
			slots[i] = res
			completed <- i
			return nil
		})
	}()

	go func() {
		defer close(out)
		ready := make([]bool, n)
		next := 0
		for i := range completed {
			ready[i] = true
			for next < n && ready[next] && ctx.Err() == nil {
				out <- slots[next]
				next++
			}
		}
		err := <-poolErr
		if runSpan.Active() {
			runSpan.End(
				telemetry.String("machine", cfg.Machine.Name),
				telemetry.Int("jobs", int64(n)),
				telemetry.Int("emitted", int64(next)),
			)
		}
		if err != nil {
			out <- Result{Index: -1, Err: err}
		} else if next < n {
			// The pool finished before the cancellation that suppressed
			// the remaining emissions; never end a truncated stream
			// silently.
			out <- Result{Index: -1, Err: ctx.Err()}
		}
	}()
	return out, nil
}

// Collect drains a Run result stream into a slice, returning the error of
// an aborted run. Per-job failures from a KeepGoing run (Err set, Index
// ≥ 0) are kept in the slice; only the terminal error result (Index -1)
// aborts the collection.
func Collect(ch <-chan Result) ([]*Result, error) {
	var out []*Result
	for res := range ch {
		if res.Err != nil && res.Index < 0 {
			return nil, res.Err
		}
		res := res
		out = append(out, &res)
	}
	return out, nil
}

// evaluateJob computes (or recalls from the memo / checkpoint) the bounds
// and every configured scheduler's schedule for one job. With a memo
// configured, concurrent evaluations of the same key — whether workers of
// one Run or requests across Runs sharing the memo — coalesce onto a
// single computation (Memo.Do); Result.Cached/Coalesced report how the
// value was obtained.
func evaluateJob(ctx context.Context, cfg *Config, scheds []Scheduler, setKey string, idx int) (Result, error) {
	job := cfg.Jobs[idx]
	res := Result{Index: idx, Benchmark: job.Benchmark, SB: job.SB}
	var key memoKey
	var ckKey string
	if cfg.Memo != nil || cfg.Checkpoint != nil {
		digest := job.SB.Digest()
		key = memoKey{
			digest:     digest,
			machine:    cfg.Machine.Name,
			opts:       cfg.Bounds,
			schedulers: setKey,
		}
		ckKey = checkpointKey(key)
	}
	if cfg.Checkpoint != nil {
		var rec Record
		if cfg.Checkpoint.Lookup(ckKey, &rec) {
			telJobsResumed.Inc()
			rec.Apply(&res, cfg.Machine)
			return res, nil
		}
	}
	var v memoVal
	if cfg.Memo != nil {
		var src memoSource
		var err error
		v, src, err = cfg.Memo.Do(ctx, key, func() (memoVal, error) {
			return computeEval(ctx, cfg, scheds, job)
		})
		if err != nil {
			return res, err
		}
		res.Cached = src == memoHit
		res.Coalesced = src == memoCoalesced
	} else {
		var err error
		v, err = computeEval(ctx, cfg, scheds, job)
		if err != nil {
			return res, err
		}
	}
	res.Bounds, res.Cost, res.Stats, res.Trivial = v.bounds, v.cost, v.stats, v.trivial
	res.Degraded = v.bounds.Degraded
	if cfg.Checkpoint != nil {
		cfg.Checkpoint.Put(ckKey, RecordOf(&res))
	}
	return res, nil
}

// computeEval is the uncached evaluation: the bound ladder under the job
// budget, then every configured scheduler, then the optional Best
// cross-product meta-column.
func computeEval(ctx context.Context, cfg *Config, scheds []Scheduler, job Job) (memoVal, error) {
	var v memoVal
	if err := ctx.Err(); err != nil {
		return v, err
	}
	set := bounds.ComputeBudgetCtx(ctx, job.SB, cfg.Machine, cfg.Bounds, cfg.JobBudget.New())
	v.bounds = set
	v.cost = make(map[string]float64, len(scheds)+1)
	v.stats = make(map[string]sched.Stats, len(scheds)+1)
	v.trivial = true
	var bestCost float64
	var bestSet bool
	for _, s := range scheds {
		if err := ctx.Err(); err != nil {
			return v, err
		}
		ssp, schedCtx := telemetry.Default().StartSpanCtx(ctx, "engine.sched")
		inst := s.Instantiate(schedCtx)
		sc, stats, err := inst.Run(job.SB, cfg.Machine)
		if err != nil {
			return v, fmt.Errorf("engine: %s on %s/%s: %w", inst.Name, job.SB.Name, cfg.Machine.Name, err)
		}
		cost := sched.Cost(job.SB, sc)
		if ssp.Active() {
			ssp.End(
				telemetry.String("heuristic", inst.Name),
				telemetry.Float("cost", cost),
			)
		}
		v.cost[inst.Name] = cost
		v.stats[inst.Name] = stats
		if cost > set.Tightest+1e-9 {
			v.trivial = false
		}
		if !bestSet || cost < bestCost {
			bestCost, bestSet = cost, true
		}
	}
	if cfg.Best {
		cps, cpStats, err := crossProductAll(ctx, job.SB, cfg.Machine)
		if err != nil {
			return v, fmt.Errorf("engine: cross product on %s/%s: %w", job.SB.Name, cfg.Machine.Name, err)
		}
		for _, s := range cps {
			if c := sched.Cost(job.SB, s); !bestSet || c < bestCost {
				bestCost, bestSet = c, true
			}
		}
		v.cost["Best"] = bestCost
		v.stats["Best"] = cpStats
	}
	return v, nil
}
