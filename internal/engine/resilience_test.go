package engine_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"balance/internal/bounds"
	"balance/internal/engine"
	"balance/internal/resilience"
	"balance/internal/telemetry"
)

// TestForEachPanicIsolation: a panic in fn is recovered into that index's
// error (a *resilience.PanicError with the goroutine stack), the pool
// drains without deadlocking wg.Wait, and no worker goroutine leaks.
func TestForEachPanicIsolation(t *testing.T) {
	before := runtime.NumGoroutine()
	err := engine.ForEach(context.Background(), 4, 50, func(i int) error {
		if i == 17 {
			panic(fmt.Sprintf("boom %d", i))
		}
		return nil
	})
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *resilience.PanicError", err, err)
	}
	if !strings.Contains(pe.Error(), "boom 17") {
		t.Errorf("PanicError message %q does not carry the panic value", pe.Error())
	}
	if !strings.Contains(string(pe.Stack), "resilience_test") {
		t.Errorf("captured stack does not reach the panicking frame:\n%s", pe.Stack)
	}
	// The workers must all have exited — ForEach returning proves wg.Wait
	// was not deadlocked; give the runtime a moment to retire them.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines grew from %d to %d after a panicking ForEach", before, now)
	}
}

// TestForEachFirstErrorInIndexOrder: when two jobs fail concurrently, the
// reported error is the lower-index one regardless of completion order.
// The barrier guarantees both failures are in flight before either lands.
func TestForEachFirstErrorInIndexOrder(t *testing.T) {
	errLow := errors.New("fail 3")
	errHigh := errors.New("fail 7")
	var barrier sync.WaitGroup
	barrier.Add(2)
	err := engine.ForEach(context.Background(), 8, 8, func(i int) error {
		switch i {
		case 3:
			barrier.Done()
			barrier.Wait()
			return errLow
		case 7:
			barrier.Done()
			barrier.Wait()
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("err = %v, want the lower-index failure %v", err, errLow)
	}
}

// TestForEachKeepGoing: failures and panics do not stop the pool — every
// index is attempted exactly once and each failure is reported in its own
// slot.
func TestForEachKeepGoing(t *testing.T) {
	const n = 20
	var visits [n]int32
	errs, ctxErr := engine.ForEachKeepGoing(context.Background(), 4, n, func(i int) error {
		atomic.AddInt32(&visits[i], 1)
		if i%5 == 0 {
			panic(fmt.Sprintf("boom %d", i))
		}
		if i == 7 || i == 14 {
			return fmt.Errorf("err %d", i)
		}
		return nil
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	if len(errs) != n {
		t.Fatalf("got %d error slots, want %d", len(errs), n)
	}
	for i := 0; i < n; i++ {
		if atomic.LoadInt32(&visits[i]) != 1 {
			t.Errorf("index %d visited %d times, want 1", i, visits[i])
		}
		switch {
		case i%5 == 0:
			var pe *resilience.PanicError
			if !errors.As(errs[i], &pe) {
				t.Errorf("errs[%d] = %v, want a PanicError", i, errs[i])
			}
		case i == 7 || i == 14:
			if errs[i] == nil || errors.As(errs[i], new(*resilience.PanicError)) {
				t.Errorf("errs[%d] = %v, want a plain error", i, errs[i])
			}
		default:
			if errs[i] != nil {
				t.Errorf("errs[%d] = %v, want nil", i, errs[i])
			}
		}
	}
}

// counterDelta reads a registry counter before/after a step.
func counterDelta(before *telemetry.Snapshot, name string) int64 {
	return telemetry.Default().Snapshot().Counters[name] - before.Counters[name]
}

// uniqueJobs filters the test corpus to structurally distinct superblocks,
// so digest-keyed checkpoint assertions are exact (structural twins share
// checkpoint records by design).
func uniqueJobs(t *testing.T, scale float64, max int) []engine.Job {
	t.Helper()
	seen := map[uint64]bool{}
	var out []engine.Job
	for _, job := range testJobs(t, scale) {
		d := job.SB.Digest()
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, job)
		if len(out) == max {
			break
		}
	}
	return out
}

// TestRunKeepGoingChaosAndResume is the acceptance scenario: a seeded
// chaos run (panics, transient errors, and delays injected into ~10% of
// jobs) under KeepGoing completes every healthy job, reports the failures
// in the result stream and the telemetry snapshot, and a second run
// against the same checkpoint resumes, recomputing only the failed jobs.
func TestRunKeepGoingChaosAndResume(t *testing.T) {
	jobs := uniqueJobs(t, 0.05, 40)
	n := len(jobs)
	if n < 10 {
		t.Fatalf("corpus too small: %d unique jobs", n)
	}

	// Pick a seed whose deterministic failure plan hits some, but not
	// most, of the corpus (Plan is pure, so this scan is cheap and the
	// chosen plan is reproducible).
	chaos := &resilience.Chaos{PanicRate: 0.05, ErrorRate: 0.05, DelayRate: 0.10, Delay: 100 * time.Microsecond}
	var want map[int]bool
	for seed := int64(1); seed < 100; seed++ {
		chaos.Seed = seed
		if f := chaos.FailureSet(n); len(f) >= 2 && len(f) <= n/2 {
			want = f
			break
		}
	}
	if want == nil {
		t.Fatal("no seed produced a usable failure plan")
	}

	ckPath := filepath.Join(t.TempDir(), "run.ckpt.jsonl")
	ck, err := resilience.OpenCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.Config{
		Jobs:       jobs,
		Machine:    testMachine(t),
		OnError:    engine.KeepGoing,
		Inject:     chaos.Visit,
		Checkpoint: ck,
		Workers:    4,
	}
	before := telemetry.Default().Snapshot()
	ch, err := engine.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.Collect(ch)
	if err != nil {
		t.Fatalf("KeepGoing run aborted: %v", err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d (failures included)", len(results), n)
	}
	wantPanics := 0
	for i, res := range results {
		if res.Index != i {
			t.Fatalf("result %d emitted out of order (index %d)", i, res.Index)
		}
		_, panics, _ := chaos.Plan(i)
		if panics {
			wantPanics++
		}
		if want[i] {
			if res.Err == nil {
				t.Errorf("job %d: chaos plan says fail, result has no error", i)
			} else if panics && !errors.As(res.Err, new(*resilience.PanicError)) {
				t.Errorf("job %d: injected panic surfaced as %T, want PanicError", i, res.Err)
			}
			continue
		}
		if res.Err != nil {
			t.Errorf("healthy job %d failed: %v", i, res.Err)
		}
		if res.Bounds == nil || len(res.Cost) == 0 {
			t.Errorf("healthy job %d has no evaluation", i)
		}
	}
	if got := counterDelta(before, "engine.jobs_failed"); got != int64(len(want)) {
		t.Errorf("engine.jobs_failed delta = %d, want %d", got, len(want))
	}
	if got := counterDelta(before, "engine.jobs_panicked"); got != int64(wantPanics) {
		t.Errorf("engine.jobs_panicked delta = %d, want %d", got, wantPanics)
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}

	// Resume: only the chaos victims are recomputed.
	ck2, err := resilience.OpenCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Len() != n-len(want) {
		t.Fatalf("checkpoint holds %d records, want %d (healthy jobs only)", ck2.Len(), n-len(want))
	}
	cfg.Inject = nil
	cfg.Checkpoint = ck2
	before = telemetry.Default().Snapshot()
	ch, err = engine.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err = engine.Collect(ch)
	if err != nil {
		t.Fatalf("resumed run aborted: %v", err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("resumed job %d failed: %v", i, res.Err)
			continue
		}
		if res.Resumed == want[i] {
			t.Errorf("job %d: Resumed = %v, want %v (only failures recompute)", i, res.Resumed, !want[i])
		}
		if res.Bounds == nil || res.Bounds.Tightest <= 0 || len(res.Cost) == 0 {
			t.Errorf("resumed job %d is missing its evaluation", i)
		}
	}
	if got := counterDelta(before, "engine.jobs_resumed"); got != int64(n-len(want)) {
		t.Errorf("engine.jobs_resumed delta = %d, want %d", got, n-len(want))
	}
	if err := ck2.Flush(); err != nil {
		t.Fatal(err)
	}
	ck3, err := resilience.OpenCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck3.Len() != n {
		t.Errorf("after the resumed run the checkpoint holds %d records, want %d", ck3.Len(), n)
	}
}

// TestRunJobBudgetDegrades: a tiny per-job budget degrades the bound
// ladder (surfaced on Result.Degraded) instead of failing, and budgeted
// results never conflate with unbudgeted ones in a shared memo.
func TestRunJobBudgetDegrades(t *testing.T) {
	jobs := uniqueJobs(t, 0.05, 8)
	memo := engine.NewMemo(0)
	base := engine.Config{
		Jobs:    jobs,
		Machine: testMachine(t),
		Memo:    memo,
	}

	budgeted := base
	budgeted.JobBudget = resilience.Spec{Nodes: 1}
	ch, err := engine.Run(context.Background(), budgeted)
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.Collect(ch)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Degraded != bounds.DegradePairwise {
			t.Errorf("%s: Degraded = %d, want DegradePairwise under a 1-node budget", res.SB.Name, res.Degraded)
		}
		if res.Bounds.Tightest <= 0 {
			t.Errorf("%s: degraded result lost its basic bounds", res.SB.Name)
		}
	}

	ch, err = engine.Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	results, err = engine.Collect(ch)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Degraded != bounds.DegradeNone {
			t.Errorf("%s: unbudgeted run recalled a degraded result (memo key conflation)", res.SB.Name)
		}
	}
}
