package engine

import (
	"sync"
	"testing"

	"balance/internal/bounds"
)

// TestMemoAccountingExact hammers a capacity-starved memo with concurrent
// lookups and stores and checks the accounting contract: every lookup
// increments exactly one of hits/misses, so the sums always equal the
// lookup count — even while eviction is churning entries underneath.
func TestMemoAccountingExact(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
		keys    = 64
		cap     = 16 // far below the key population: constant eviction
	)
	m := NewMemo(cap)
	key := func(i int) memoKey {
		return memoKey{digest: uint64(i), machine: "GP2", opts: bounds.Options{}, schedulers: "CP"}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Alternate between a hot set that fits the capacity (so the
				// LRU produces hits) and a cold cyclic sweep (so eviction
				// churns underneath the accounting).
				k := key(i % (cap / 2))
				if i%2 == 1 {
					k = key((w*31 + i) % keys)
				}
				if _, ok := m.lookup(k); !ok {
					m.store(k, memoVal{trivial: true})
				}
			}
		}(w)
	}
	wg.Wait()

	hits, misses, size := m.Stats()
	if total := hits + misses; total != workers*rounds {
		t.Errorf("hits (%d) + misses (%d) = %d lookups, want exactly %d",
			hits, misses, total, workers*rounds)
	}
	if size > cap {
		t.Errorf("memo holds %d entries, capacity is %d", size, cap)
	}
	if hits == 0 || misses == 0 {
		t.Errorf("degenerate run: hits=%d misses=%d — contention test exercised nothing", hits, misses)
	}
}

// TestMemoStoreOverwriteKeepsCapacity checks that overwriting an existing
// key at capacity does not evict an unrelated entry.
func TestMemoStoreOverwriteKeepsCapacity(t *testing.T) {
	m := NewMemo(2)
	k1 := memoKey{digest: 1}
	k2 := memoKey{digest: 2}
	m.store(k1, memoVal{})
	m.store(k2, memoVal{})
	m.store(k1, memoVal{trivial: true}) // overwrite: must not evict k2
	if v, ok := m.lookup(k1); !ok || !v.trivial {
		t.Error("overwrite lost the new value for k1")
	}
	if _, ok := m.lookup(k2); !ok {
		t.Error("overwriting k1 at capacity evicted k2")
	}
	if _, _, size := m.Stats(); size != 2 {
		t.Errorf("size = %d after overwrite at capacity, want 2", size)
	}
}
