package engine_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"balance/internal/engine"
	"balance/internal/gen"
	"balance/internal/model"

	// Registration side effects: the heuristics and the Best meta-heuristic
	// self-register into the engine's scheduler registry at init.
	_ "balance/internal/core"
	_ "balance/internal/heuristics"
)

func TestSchedulerRegistry(t *testing.T) {
	want := []string{"SR", "CP", "G*", "DHASY", "Help", "Balance"}
	if got := engine.PrimaryNames(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("PrimaryNames() = %v, want %v", got, want)
	}
	all := engine.SchedulerNames()
	if len(all) != 7 || all[len(all)-1] != "Best" {
		t.Errorf("SchedulerNames() = %v, want the six primaries then Best", all)
	}
	for alias, canonical := range map[string]string{
		"gstar":             "G*",
		"GSTAR":             "G*",
		"speculative-hedge": "Help",
		"balance":           "Balance",
		" CP ":              "CP",
	} {
		s, err := engine.SchedulerByName(alias)
		if err != nil {
			t.Fatalf("SchedulerByName(%q): %v", alias, err)
		}
		if s.Name != canonical {
			t.Errorf("SchedulerByName(%q).Name = %q, want %q", alias, s.Name, canonical)
		}
	}
	_, err := engine.SchedulerByName("nope")
	if err == nil {
		t.Fatal("SchedulerByName(nope) succeeded")
	}
	for _, name := range want {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-scheduler error %q does not list %q", err, name)
		}
	}
}

func TestBoundRegistry(t *testing.T) {
	want := []string{"CP", "Hu", "RJ", "LC", "PW", "TW"}
	if got := engine.BoundNames(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("BoundNames() = %v, want %v", got, want)
	}
	b, err := engine.BoundByName("pairwise")
	if err != nil || b.Name != "PW" {
		t.Errorf("BoundByName(pairwise) = %v, %v; want PW", b.Name, err)
	}
	if _, err := engine.BoundByName("simplex"); err == nil ||
		!strings.Contains(err.Error(), "TW") {
		t.Errorf("unknown-bound error = %v, want one listing the registry", err)
	}
}

func TestForEach(t *testing.T) {
	ctx := context.Background()

	t.Run("visits every index once", func(t *testing.T) {
		const n = 100
		var visits [n]int32
		if err := engine.ForEach(ctx, 4, n, func(i int) error {
			atomic.AddInt32(&visits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("index %d visited %d times", i, v)
			}
		}
	})

	t.Run("returns first error in index order", func(t *testing.T) {
		errBoom := errors.New("boom")
		err := engine.ForEach(ctx, 4, 100, func(i int) error {
			if i == 7 || i == 23 {
				return fmt.Errorf("%w at %d", errBoom, i)
			}
			return nil
		})
		if !errors.Is(err, errBoom) {
			t.Fatalf("err = %v, want boom", err)
		}
	})

	t.Run("error stops the pool early", func(t *testing.T) {
		var ran int32
		errBoom := errors.New("boom")
		err := engine.ForEach(ctx, 1, 1000, func(i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 3 {
				return errBoom
			}
			return nil
		})
		if !errors.Is(err, errBoom) {
			t.Fatalf("err = %v, want boom", err)
		}
		if n := atomic.LoadInt32(&ran); n > 10 {
			t.Errorf("pool ran %d jobs after an early error", n)
		}
	})

	t.Run("cancellation wins over fn errors", func(t *testing.T) {
		cctx, cancel := context.WithCancel(ctx)
		err := engine.ForEach(cctx, 2, 100, func(i int) error {
			cancel()
			return errors.New("job error")
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})

	t.Run("empty range", func(t *testing.T) {
		if err := engine.ForEach(ctx, 4, 0, func(int) error { return errors.New("never") }); err != nil {
			t.Fatal(err)
		}
	})
}

// testJobs builds a small deterministic corpus.
func testJobs(t *testing.T, scale float64) []engine.Job {
	t.Helper()
	suite := gen.GenerateSuite(1999, scale)
	var jobs []engine.Job
	for _, name := range suite.Order {
		for _, sb := range suite.Benchmarks[name] {
			jobs = append(jobs, engine.Job{Benchmark: name, SB: sb})
		}
	}
	if len(jobs) == 0 {
		t.Fatal("empty corpus")
	}
	return jobs
}

func testMachine(t *testing.T) *model.Machine {
	t.Helper()
	m, err := model.MachineByName("GP2")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunStreamsInJobOrder(t *testing.T) {
	jobs := testJobs(t, 0.05)
	ch, err := engine.Run(context.Background(), engine.Config{
		Jobs:    jobs,
		Machine: testMachine(t),
		Best:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for res := range ch {
		if res.Err != nil {
			t.Fatalf("result %d: %v", next, res.Err)
		}
		if res.Index != next {
			t.Fatalf("result emitted out of order: got index %d, want %d", res.Index, next)
		}
		if res.Benchmark != jobs[next].Benchmark || res.SB != jobs[next].SB {
			t.Fatalf("result %d carries the wrong job", next)
		}
		if res.Bounds == nil || res.Bounds.Tightest <= 0 {
			t.Fatalf("result %d has no bounds", next)
		}
		for _, name := range append(engine.PrimaryNames(), "Best") {
			cost, ok := res.Cost[name]
			if !ok {
				t.Fatalf("result %d missing cost for %s", next, name)
			}
			if cost < res.Bounds.Tightest-1e-9 {
				t.Fatalf("result %d: %s cost %.6f beats the lower bound %.6f",
					next, name, cost, res.Bounds.Tightest)
			}
		}
		next++
	}
	if next != len(jobs) {
		t.Fatalf("got %d results, want %d", next, len(jobs))
	}
}

func TestRunConfigErrors(t *testing.T) {
	if _, err := engine.Run(context.Background(), engine.Config{}); err == nil {
		t.Error("Run without a machine succeeded")
	}
	_, err := engine.Run(context.Background(), engine.Config{
		Jobs:       testJobs(t, 0.02)[:1],
		Machine:    testMachine(t),
		Schedulers: []string{"no-such-heuristic"},
	})
	if err == nil || !strings.Contains(err.Error(), "Balance") {
		t.Errorf("unknown-scheduler config error = %v, want one listing the registry", err)
	}
}

func TestRunMemoSharing(t *testing.T) {
	jobs := testJobs(t, 0.05)
	memo := engine.NewMemo(0)
	run := func() []*engine.Result {
		ch, err := engine.Run(context.Background(), engine.Config{
			Jobs:    jobs,
			Machine: testMachine(t),
			Best:    true,
			Memo:    memo,
		})
		if err != nil {
			t.Fatal(err)
		}
		results, err := engine.Collect(ch)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	first := run()
	hits0, misses0, size0 := memo.Stats()
	if size0 == 0 || misses0 == 0 {
		t.Fatalf("memo empty after first run: hits=%d misses=%d size=%d", hits0, misses0, size0)
	}
	second := run()
	hits1, _, _ := memo.Stats()
	if hits1-hits0 != len(jobs) {
		t.Errorf("second run scored %d memo hits, want %d", hits1-hits0, len(jobs))
	}
	for i := range first {
		for name, cost := range first[i].Cost {
			if second[i].Cost[name] != cost {
				t.Fatalf("job %d %s: memoized cost %.6f != fresh cost %.6f",
					i, name, second[i].Cost[name], cost)
			}
		}
		if first[i].Trivial != second[i].Trivial {
			t.Fatalf("job %d trivial flag changed across memo recall", i)
		}
	}
}

// TestRunCancellation cancels a scale-1 corpus run mid-stream and checks the
// pipeline's cancellation contract: the stream ends promptly with ctx.Err()
// and no worker goroutines are left behind.
func TestRunCancellation(t *testing.T) {
	jobs := testJobs(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	before := runtime.NumGoroutine()
	ch, err := engine.Run(ctx, engine.Config{
		Jobs:    jobs,
		Machine: testMachine(t),
		Best:    true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Let the pipeline produce a little, then pull the plug.
	got := 0
	for res := range ch {
		if res.Err != nil {
			t.Fatalf("premature error before cancellation: %v", res.Err)
		}
		got++
		if got == 3 {
			break
		}
	}
	cancel()
	start := time.Now()

	var last engine.Result
	sawErr := false
	for res := range ch {
		if res.Err != nil {
			sawErr = true
			last = res
		}
	}
	elapsed := time.Since(start)

	if !sawErr {
		t.Fatal("cancelled run ended without a terminal error result")
	}
	if !errors.Is(last.Err, context.Canceled) {
		t.Errorf("terminal Err = %v, want context.Canceled", last.Err)
	}
	if last.Index != -1 {
		t.Errorf("terminal result Index = %d, want -1", last.Index)
	}
	limit := 100 * time.Millisecond
	if raceEnabled {
		limit = time.Second // the race detector slows single jobs well past their normal latency
	}
	if elapsed > limit {
		t.Errorf("stream closed %v after cancellation, want <= %v", elapsed, limit)
	}

	// The pool and emitter goroutines must unwind.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before Run, %d after cancellation", before, after)
	}
}

func TestDigestSharing(t *testing.T) {
	a := gen.GenerateSuite(7, 0.05).All()
	b := gen.GenerateSuite(7, 0.05).All()
	if len(a) != len(b) {
		t.Fatalf("suite sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Digest() != b[i].Digest() {
			t.Fatalf("superblock %d: identical generation produced different digests", i)
		}
	}
	// Name and frequency are excluded from the digest by design.
	clone := *a[0]
	clone.Name, clone.Freq = "renamed", a[0].Freq*3+1
	if clone.Digest() != a[0].Digest() {
		t.Error("digest depends on Name or Freq")
	}
	// Different seeds must (overwhelmingly) produce different structures.
	c := gen.GenerateSuite(8, 0.05).All()
	same := 0
	for i := range a {
		if i < len(c) && a[i].Digest() == c[i].Digest() {
			same++
		}
	}
	if same == len(a) {
		t.Error("digests are seed-insensitive")
	}
}
