package engine

import "balance/internal/telemetry"

// Pipeline instruments, registered once in the default registry. See
// DESIGN.md ("Observability") for what each series means.
var (
	telJobsStarted  = telemetry.Default().Counter("engine.jobs_started")
	telJobsFinished = telemetry.Default().Counter("engine.jobs_finished")
	telJobsFailed   = telemetry.Default().Counter("engine.jobs_failed")
	telJobsPanicked = telemetry.Default().Counter("engine.jobs_panicked")
	telJobsSkipped  = telemetry.Default().Counter("engine.jobs_skipped")
	telJobsResumed  = telemetry.Default().Counter("engine.jobs_resumed")
	telMemoHits     = telemetry.Default().Counter("engine.memo_hits")
	telMemoMisses   = telemetry.Default().Counter("engine.memo_misses")
	telMemoEvicts   = telemetry.Default().Counter("engine.memo_evictions")
	telMemoCoalesce = telemetry.Default().Counter("engine.memo_coalesced")
	telQueueWait    = telemetry.Default().Histogram("engine.job_queue_wait_ns")
	telCompute      = telemetry.Default().Histogram("engine.job_compute_ns")
	telOccupancy    = telemetry.Default().Gauge("engine.pool_occupancy")
)
