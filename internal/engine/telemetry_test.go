package engine_test

import (
	"context"
	"testing"

	"balance/internal/engine"
	"balance/internal/telemetry"
)

// counterDeltas samples the named counters in the default registry and
// returns a closure reporting how much each has grown since the sample.
func counterDeltas(names ...string) func() map[string]int64 {
	r := telemetry.Default()
	before := make(map[string]int64, len(names))
	for _, n := range names {
		before[n] = r.Counter(n).Value()
	}
	return func() map[string]int64 {
		d := make(map[string]int64, len(names))
		for _, n := range names {
			d[n] = r.Counter(n).Value() - before[n]
		}
		return d
	}
}

// TestRunTelemetryCounters runs the same corpus twice through engine.Run
// with a shared memo and checks the pipeline's counters against the exact
// job arithmetic: every job is started and finished, the first pass is all
// memo misses, and the second pass is all memo hits.
func TestRunTelemetryCounters(t *testing.T) {
	jobs := testJobs(t, 0.05)
	memo := engine.NewMemo(0)
	run := func() {
		ch, err := engine.Run(context.Background(), engine.Config{
			Jobs:    jobs,
			Machine: testMachine(t),
			Best:    true,
			Memo:    memo,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := engine.Collect(ch); err != nil {
			t.Fatal(err)
		}
	}

	names := []string{
		"engine.jobs_started", "engine.jobs_finished", "engine.jobs_failed",
		"engine.memo_hits", "engine.memo_misses",
	}
	n := int64(len(jobs))

	delta := counterDeltas(names...)
	run()
	first := delta()
	if first["engine.jobs_started"] != n || first["engine.jobs_finished"] != n {
		t.Errorf("first pass started/finished = %d/%d jobs, want %d/%d",
			first["engine.jobs_started"], first["engine.jobs_finished"], n, n)
	}
	if first["engine.jobs_failed"] != 0 {
		t.Errorf("first pass failed %d jobs, want 0", first["engine.jobs_failed"])
	}
	if first["engine.memo_hits"] != 0 {
		t.Errorf("first pass scored %d memo hits on an empty memo, want 0", first["engine.memo_hits"])
	}
	if first["engine.memo_misses"] != n {
		t.Errorf("first pass scored %d memo misses, want %d", first["engine.memo_misses"], n)
	}

	delta = counterDeltas(names...)
	run()
	second := delta()
	if second["engine.jobs_started"] != n || second["engine.jobs_finished"] != n {
		t.Errorf("second pass started/finished = %d/%d jobs, want %d/%d",
			second["engine.jobs_started"], second["engine.jobs_finished"], n, n)
	}
	if second["engine.memo_hits"] != n {
		t.Errorf("second pass scored %d memo hits, want %d", second["engine.memo_hits"], n)
	}
	if second["engine.memo_misses"] != 0 {
		t.Errorf("second pass scored %d memo misses, want 0", second["engine.memo_misses"])
	}

	// The telemetry counters and the memo's own accounting must agree.
	hits, misses, _ := memo.Stats()
	if int64(hits) != n || int64(misses) != n {
		t.Errorf("memo.Stats() = %d hits, %d misses; want %d and %d", hits, misses, n, n)
	}
}

// TestRunTelemetryQueueHistograms checks that a run feeds the queue-wait
// and compute-time histograms once per job.
func TestRunTelemetryQueueHistograms(t *testing.T) {
	jobs := testJobs(t, 0.05)
	r := telemetry.Default()
	waitBefore := r.Histogram("engine.job_queue_wait_ns").Summary().Count
	computeBefore := r.Histogram("engine.job_compute_ns").Summary().Count

	ch, err := engine.Run(context.Background(), engine.Config{
		Jobs:    jobs,
		Machine: testMachine(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Collect(ch); err != nil {
		t.Fatal(err)
	}

	n := int64(len(jobs))
	if got := r.Histogram("engine.job_queue_wait_ns").Summary().Count - waitBefore; got != n {
		t.Errorf("queue-wait histogram grew by %d observations, want %d", got, n)
	}
	if got := r.Histogram("engine.job_compute_ns").Summary().Count - computeBefore; got != n {
		t.Errorf("compute histogram grew by %d observations, want %d", got, n)
	}
}
