package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// registry is a concurrency-safe, case-insensitive, name-keyed collection
// with aliases and a deterministic listing order (Order, then canonical
// name). It backs the exported Schedulers and Bounds registries.
type registry[T any] struct {
	kind string // "scheduler" or "bound", for error messages

	mu      sync.RWMutex
	byKey   map[string]*regEntry[T]
	entries []*regEntry[T]
}

type regEntry[T any] struct {
	name  string
	order int
	value T
}

func newRegistry[T any](kind string) *registry[T] {
	return &registry[T]{kind: kind, byKey: map[string]*regEntry[T]{}}
}

// register adds a value under its canonical name and aliases. Registration
// normally happens from package init functions; duplicate keys panic
// because they are programming errors, not runtime conditions.
func (r *registry[T]) register(name string, order int, aliases []string, v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := &regEntry[T]{name: name, order: order, value: v}
	for _, key := range append([]string{name}, aliases...) {
		k := strings.ToLower(key)
		if _, dup := r.byKey[k]; dup {
			panic(fmt.Sprintf("engine: duplicate %s registration %q", r.kind, key))
		}
		r.byKey[k] = e
	}
	r.entries = append(r.entries, e)
	sort.SliceStable(r.entries, func(i, j int) bool {
		if r.entries[i].order != r.entries[j].order {
			return r.entries[i].order < r.entries[j].order
		}
		return r.entries[i].name < r.entries[j].name
	})
}

// lookup resolves a canonical name or alias, case-insensitively.
func (r *registry[T]) lookup(name string) (T, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byKey[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		var zero T
		return zero, false
	}
	return e.value, true
}

// resolve is lookup with a descriptive error naming every registered entry.
func (r *registry[T]) resolve(name string) (T, error) {
	v, ok := r.lookup(name)
	if !ok {
		return v, fmt.Errorf("unknown %s %q (available: %s)",
			r.kind, name, strings.Join(r.names(), ", "))
	}
	return v, nil
}

// names returns the canonical names in listing order.
func (r *registry[T]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.name
	}
	return out
}

// values returns the registered values in listing order.
func (r *registry[T]) values() []T {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]T, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.value
	}
	return out
}
