//go:build !race

package engine_test

// raceEnabled relaxes wall-clock assertions when the race detector is on.
const raceEnabled = false
