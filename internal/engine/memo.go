package engine

import (
	"container/list"
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"

	"balance/internal/bounds"
	"balance/internal/sched"
)

// memoKey identifies one memoized evaluation: the superblock's structural
// digest, the machine, the bound options, and the scheduler set (including
// whether the Best meta-column was computed). bounds.Options is a flat
// struct of scalars, so the key is comparable.
type memoKey struct {
	digest     uint64
	machine    string
	opts       bounds.Options
	schedulers string
}

// memoVal holds the structure-dependent part of a Result. The superblock's
// name and execution frequency are excluded from the digest, so a cached
// value may be shared by superblocks that differ only in those fields; the
// cached Bounds set retains the first-seen structurally identical
// superblock.
type memoVal struct {
	bounds  *bounds.Set
	cost    map[string]float64
	stats   map[string]sched.Stats
	trivial bool
}

// memoEntry is one resident cache entry (the LRU element value).
type memoEntry struct {
	key memoKey
	val memoVal
}

// errLeaderAborted marks an in-flight computation whose leader failed,
// panicked, or was cancelled before producing a value. Waiters never see it
// directly: Do retries (and may become the new leader) when the flight it
// waited on carries any error.
var errLeaderAborted = errors.New("engine: in-flight computation aborted")

// flight is one in-flight computation shared by coalesced Do callers. The
// leader closes done exactly once; val/err are written before the close and
// only read after it.
type flight struct {
	done chan struct{}
	val  memoVal
	err  error
}

// Memo is a bounded, concurrency-safe, LRU-evicting cache of per-superblock
// evaluations keyed by (graph digest, machine, bound options, scheduler
// set), with in-flight coalescing. A single Memo may be shared across Run
// invocations and across concurrent service requests — the evaluation
// Runner uses one to share work between machines and repeated table
// requests, and the scheduling service uses one as its shared result cache.
//
// Concurrency contract:
//
//   - Stored values are immutable. A memoVal's maps and bound set are
//     never mutated after store (Result documents the same read-only rule
//     for consumers), so a value returned by lookup remains valid even if
//     its entry is evicted immediately afterwards — eviction only affects
//     future lookups, never data already handed out.
//   - Hit/miss accounting is exact: every lookup increments exactly one of
//     the two counters, and it increments the hit counter only when the
//     lookup actually returned an entry (the value is copied out under the
//     lock, so a concurrent eviction cannot turn a counted hit into a
//     miss). Hits+misses therefore equals the number of lookups; Do calls
//     that wait on another caller's computation are counted separately as
//     coalesced (neither hit nor miss).
//   - Do coalesces concurrent callers of the same absent key onto one
//     computation (singleflight): exactly one caller runs compute, the
//     rest block until it finishes and share its value. A leader that
//     fails, panics, or is cancelled never publishes a value; its waiters
//     retry and one of them becomes the new leader, so transient failures
//     (one request's cancellation) cannot poison or starve the key.
type Memo struct {
	mu       sync.Mutex
	cap      int
	entries  map[memoKey]*list.Element // -> *memoEntry, resident values
	lru      list.List                 // front = most recently used
	inflight map[memoKey]*flight

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
}

// DefaultMemoCapacity bounds a NewMemo(0) cache. At roughly a few KB per
// superblock evaluation this keeps the default well under typical corpus
// memory, while covering a full six-machine scale-1 run.
const DefaultMemoCapacity = 1 << 16

// NewMemo returns an empty memo holding at most capacity entries
// (capacity ≤ 0 uses DefaultMemoCapacity). When full, the least recently
// used entry is evicted per insertion.
func NewMemo(capacity int) *Memo {
	if capacity <= 0 {
		capacity = DefaultMemoCapacity
	}
	return &Memo{
		cap:      capacity,
		entries:  map[memoKey]*list.Element{},
		inflight: map[memoKey]*flight{},
	}
}

// CacheStats is a point-in-time view of a Memo's lifetime accounting.
type CacheStats struct {
	// Hits and Misses count lookups that found / did not find a resident
	// entry. Hits+Misses equals the total number of lookups.
	Hits, Misses int64
	// Coalesced counts Do callers that shared another caller's in-flight
	// computation instead of performing their own lookup+compute.
	Coalesced int64
	// Evictions counts entries dropped to make room at capacity.
	Evictions int64
	// Size and Capacity describe the resident entry population.
	Size, Capacity int
}

// CacheStats reports the memo's lifetime hit/miss/coalesced/eviction counts
// and the current size and capacity.
func (mc *Memo) CacheStats() CacheStats {
	mc.mu.Lock()
	size := len(mc.entries)
	mc.mu.Unlock()
	return CacheStats{
		Hits:      mc.hits.Load(),
		Misses:    mc.misses.Load(),
		Coalesced: mc.coalesced.Load(),
		Evictions: mc.evictions.Load(),
		Size:      size,
		Capacity:  mc.cap,
	}
}

// Stats reports the memo's lifetime hit/miss counts and current size.
// hits+misses equals the total number of lookups performed.
func (mc *Memo) Stats() (hits, misses, size int) {
	s := mc.CacheStats()
	return int(s.Hits), int(s.Misses), s.Size
}

// memoSource reports how Do obtained its value.
type memoSource int

const (
	memoComputed  memoSource = iota // this caller ran compute
	memoHit                         // resident cache entry
	memoCoalesced                   // waited on another caller's computation
)

// Do returns the value for k, computing it at most once across concurrent
// callers: a resident entry is returned immediately (a hit); an in-flight
// computation is joined (coalesced — the caller blocks until the leader
// finishes or ctx is done); otherwise the caller becomes the leader, runs
// compute, stores a successful value, and wakes the waiters. compute runs
// without the memo lock held. A leader's error (or panic — it propagates
// to the leader's caller after the waiters are released) is never cached;
// its waiters retry, and one becomes the new leader, so a deterministic
// failure costs at most one compute per caller, exactly like the uncached
// path.
func (mc *Memo) Do(ctx context.Context, k memoKey, compute func() (memoVal, error)) (memoVal, memoSource, error) {
	for {
		mc.mu.Lock()
		if el, ok := mc.entries[k]; ok {
			mc.lru.MoveToFront(el)
			v := el.Value.(*memoEntry).val
			mc.mu.Unlock()
			mc.hits.Add(1)
			telMemoHits.Inc()
			return v, memoHit, nil
		}
		if fl, ok := mc.inflight[k]; ok {
			mc.mu.Unlock()
			mc.coalesced.Add(1)
			telMemoCoalesce.Inc()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return memoVal{}, memoCoalesced, ctx.Err()
			}
			if fl.err == nil {
				return fl.val, memoCoalesced, nil
			}
			continue // leader aborted: race to become the new leader
		}
		fl := &flight{done: make(chan struct{}), err: errLeaderAborted}
		mc.inflight[k] = fl
		mc.mu.Unlock()
		mc.misses.Add(1)
		telMemoMisses.Inc()
		return mc.lead(k, fl, compute)
	}
}

// lead runs compute as the flight's leader and publishes the outcome. The
// cleanup runs via defer so that a panicking compute still removes the
// flight and wakes the waiters (with fl.err left at errLeaderAborted)
// before the panic propagates to the leader's own panic isolation.
func (mc *Memo) lead(k memoKey, fl *flight, compute func() (memoVal, error)) (memoVal, memoSource, error) {
	defer func() {
		mc.mu.Lock()
		delete(mc.inflight, k)
		if fl.err == nil {
			mc.insert(k, fl.val)
		}
		mc.mu.Unlock()
		close(fl.done)
	}()
	v, err := compute()
	fl.val, fl.err = v, err
	return v, memoComputed, err
}

// lookup is the non-coalescing read path (hit/miss accounting only).
func (mc *Memo) lookup(k memoKey) (memoVal, bool) {
	mc.mu.Lock()
	el, ok := mc.entries[k]
	var v memoVal
	if ok {
		mc.lru.MoveToFront(el)
		v = el.Value.(*memoEntry).val
	}
	mc.mu.Unlock()
	if ok {
		mc.hits.Add(1)
		telMemoHits.Inc()
	} else {
		mc.misses.Add(1)
		telMemoMisses.Inc()
	}
	return v, ok
}

// store inserts (or overwrites) an entry, evicting the least recently used
// entry when the insertion would exceed capacity.
func (mc *Memo) store(k memoKey, v memoVal) {
	mc.mu.Lock()
	mc.insert(k, v)
	mc.mu.Unlock()
}

// insert adds or refreshes an entry; the caller holds mc.mu.
func (mc *Memo) insert(k memoKey, v memoVal) {
	if el, ok := mc.entries[k]; ok {
		el.Value.(*memoEntry).val = v
		mc.lru.MoveToFront(el)
		return
	}
	if len(mc.entries) >= mc.cap {
		if back := mc.lru.Back(); back != nil {
			victim := back.Value.(*memoEntry)
			delete(mc.entries, victim.key)
			mc.lru.Remove(back)
			mc.evictions.Add(1)
			telMemoEvicts.Inc()
		}
	}
	mc.entries[k] = mc.lru.PushFront(&memoEntry{key: k, val: v})
}

// schedulerSetKey canonicalizes the scheduler list (plus the Best flag)
// into the memo key's scheduler component.
func schedulerSetKey(names []string, best bool) string {
	key := strings.Join(names, ",")
	if best {
		key += ",+Best"
	}
	return key
}
