package engine

import (
	"strings"
	"sync"
	"sync/atomic"

	"balance/internal/bounds"
	"balance/internal/sched"
)

// memoKey identifies one memoized evaluation: the superblock's structural
// digest, the machine, the bound options, and the scheduler set (including
// whether the Best meta-column was computed). bounds.Options is a flat
// struct of scalars, so the key is comparable.
type memoKey struct {
	digest     uint64
	machine    string
	opts       bounds.Options
	schedulers string
}

// memoVal holds the structure-dependent part of a Result. The superblock's
// name and execution frequency are excluded from the digest, so a cached
// value may be shared by superblocks that differ only in those fields; the
// cached Bounds set retains the first-seen structurally identical
// superblock.
type memoVal struct {
	bounds  *bounds.Set
	cost    map[string]float64
	stats   map[string]sched.Stats
	trivial bool
}

// Memo is a bounded, concurrency-safe cache of per-superblock evaluations
// keyed by (graph digest, machine, bound options, scheduler set). A single
// Memo may be shared across Run invocations — the evaluation Runner uses
// one to share work between machines and repeated table requests.
//
// Concurrency contract:
//
//   - Stored values are immutable. A memoVal's maps and bound set are
//     never mutated after store (Result documents the same read-only rule
//     for consumers), so a value returned by lookup remains valid even if
//     its entry is evicted immediately afterwards — eviction only affects
//     future lookups, never data already handed out.
//   - Hit/miss accounting is exact: every lookup increments exactly one of
//     the two counters, and it increments the hit counter only when the
//     lookup actually returned an entry (the value is copied out under the
//     read lock, so a concurrent eviction cannot turn a counted hit into a
//     miss). Stats sums are therefore equal to the number of lookups.
//   - Two workers racing on the same absent key may both miss and both
//     compute; the second store overwrites the first with an equivalent
//     value. The counters report this faithfully as two misses (duplicate
//     computation, not a correctness problem).
type Memo struct {
	mu      sync.RWMutex
	cap     int
	entries map[memoKey]memoVal
	hits    atomic.Int64
	misses  atomic.Int64
}

// DefaultMemoCapacity bounds a NewMemo(0) cache. At roughly a few KB per
// superblock evaluation this keeps the default well under typical corpus
// memory, while covering a full six-machine scale-1 run.
const DefaultMemoCapacity = 1 << 16

// NewMemo returns an empty memo holding at most capacity entries
// (capacity ≤ 0 uses DefaultMemoCapacity). When full, an arbitrary entry
// is evicted per insertion.
func NewMemo(capacity int) *Memo {
	if capacity <= 0 {
		capacity = DefaultMemoCapacity
	}
	return &Memo{cap: capacity, entries: map[memoKey]memoVal{}}
}

// Stats reports the memo's lifetime hit/miss counts and current size.
// hits+misses equals the total number of lookups performed.
func (mc *Memo) Stats() (hits, misses, size int) {
	mc.mu.RLock()
	size = len(mc.entries)
	mc.mu.RUnlock()
	return int(mc.hits.Load()), int(mc.misses.Load()), size
}

func (mc *Memo) lookup(k memoKey) (memoVal, bool) {
	mc.mu.RLock()
	v, ok := mc.entries[k]
	mc.mu.RUnlock()
	if ok {
		mc.hits.Add(1)
	} else {
		mc.misses.Add(1)
	}
	return v, ok
}

func (mc *Memo) store(k memoKey, v memoVal) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if _, exists := mc.entries[k]; !exists && len(mc.entries) >= mc.cap {
		for victim := range mc.entries {
			delete(mc.entries, victim)
			telMemoEvicts.Inc()
			break
		}
	}
	mc.entries[k] = v
}

// schedulerSetKey canonicalizes the scheduler list (plus the Best flag)
// into the memo key's scheduler component.
func schedulerSetKey(names []string, best bool) string {
	key := strings.Join(names, ",")
	if best {
		key += ",+Best"
	}
	return key
}
