package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across a bounded pool of worker
// goroutines and returns the first error in index order. workers ≤ 0 uses
// GOMAXPROCS. The pool stops claiming new indices once ctx is cancelled or
// any fn returns an error; in-flight calls finish first. When ctx is
// cancelled, the returned error is ctx.Err() even if some fn also failed.
//
// This is the single worker-pool loop shared by Run and the evaluation
// harness (it replaces the two near-identical pools that used to live in
// internal/eval).
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next int64 = -1
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
