package engine

import (
	"context"

	"balance/internal/conc"
)

// ForEach runs fn(i) for every i in [0, n) across a bounded pool of worker
// goroutines and returns the first error in index order; workers ≤ 0 uses
// GOMAXPROCS. It delegates to conc.ForEach — the single worker-pool loop
// shared by Run, the evaluation harness, and the bound kernel's pair
// fan-out (see internal/conc for the panic-isolation and telemetry
// contract).
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	return conc.ForEach(ctx, workers, n, fn)
}

// ForEachKeepGoing is ForEach under the KeepGoing policy: a failing (or
// panicking) fn does not stop the pool — every index is attempted, and the
// returned slice holds each index's error (nil for the ones that
// succeeded). The second return is ctx.Err(). See conc.ForEachKeepGoing.
func ForEachKeepGoing(ctx context.Context, workers, n int, fn func(i int) error) ([]error, error) {
	return conc.ForEachKeepGoing(ctx, workers, n, fn)
}
