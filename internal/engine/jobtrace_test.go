package engine_test

import (
	"bytes"
	"context"
	"runtime/pprof"
	"strings"
	"testing"

	"balance/internal/engine"
	"balance/internal/telemetry"
)

// TestJobParentOverride runs one job with Job.Parent set to a foreign
// span context (as a distributed worker does from the coordinator's
// lease) and asserts the engine.job span joins that trace under that
// parent instead of the local engine.run span.
func TestJobParentOverride(t *testing.T) {
	var buf bytes.Buffer
	reg := telemetry.Default()
	reg.SetSink(telemetry.NewJSONLSink(&buf))
	defer reg.SetSink(nil)

	jobs := testJobs(t, 0.05)[:1]
	parent := telemetry.SpanContext{Trace: 0x77, Span: 0x5}
	jobs[0].Parent = parent
	ch, err := engine.Run(context.Background(), engine.Config{
		Jobs:    jobs,
		Machine: testMachine(t),
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Collect(ch); err != nil {
		t.Fatal(err)
	}
	reg.SetSink(nil)

	events, err := telemetry.ParseJSONLTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var jobTrace, jobParent, runTrace uint64
	for i := range events {
		switch events[i].Name {
		case "engine.job":
			jobTrace, jobParent = events[i].Trace, events[i].Parent
		case "engine.run":
			runTrace = events[i].Trace
		}
	}
	if jobTrace != parent.Trace || jobParent != parent.Span {
		t.Errorf("engine.job trace/parent = %x/%x, want %x/%x",
			jobTrace, jobParent, parent.Trace, parent.Span)
	}
	if runTrace == parent.Trace {
		t.Errorf("engine.run joined the foreign trace %x; the override is per-job", runTrace)
	}
}

// TestJobLabels blocks a job inside the chaos-inject hook and reads the
// goroutine profile while it waits: the worker goroutine must carry the
// job's pprof labels, so continuous profiles attribute its samples to
// the unit.
func TestJobLabels(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	jobs := testJobs(t, 0.05)[:1]
	jobs[0].Labels = []string{"dist_unit", "bench1/blk3"}
	ch, err := engine.Run(context.Background(), engine.Config{
		Jobs:    jobs,
		Machine: testMachine(t),
		Workers: 1,
		Inject: func(int) error {
			close(entered)
			<-release
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	close(release)
	if _, err := engine.Collect(ch); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dist_unit":"bench1/blk3"`) {
		t.Errorf("goroutine profile lacks the job label:\n%s", buf.String())
	}
}
