// Package engine is the shared substrate every consumer of the scheduler
// stack sits on. It provides:
//
//   - name-keyed registries of scheduling heuristics (Schedulers) and lower
//     bounds (Bounds), so no consumer hardwires its own name→algorithm
//     switch. Heuristics self-register from internal/heuristics and
//     internal/core; the bound catalog is owned by internal/bounds
//     (bounds.Catalog) and mirrored here at init.
//   - a context-aware streaming evaluation pipeline (Run) with a bounded
//     worker pool, deterministic corpus-order emission, and per-superblock
//     memoization keyed by (graph digest, machine, bound options, scheduler
//     set).
//   - the shared worker-pool helper (ForEach) the evaluation harness builds
//     on.
//
// Layering: engine imports only internal/model, internal/sched, and
// internal/bounds. internal/heuristics and internal/core sit above it and
// register themselves at init, so importing either (directly or through the
// root balance facade or internal/eval) populates the scheduler registry.
// The cross-product schedules behind the "Best" meta-column are injected
// the same way (RegisterCrossProduct) to keep the import DAG acyclic.
package engine

import (
	"context"
	"fmt"

	"balance/internal/bounds"
	"balance/internal/model"
	"balance/internal/sched"
)

// ScheduleFunc schedules a superblock on a machine. It is the engine-level
// view of a heuristic's Run method.
type ScheduleFunc = func(sb *model.Superblock, m *model.Machine) (*sched.Schedule, sched.Stats, error)

// Scheduler is one registered scheduling heuristic.
type Scheduler struct {
	// Name is the canonical display name used in tables ("SR", "Balance").
	Name string
	// Aliases are additional lookup keys ("gstar" for "G*"). Lookup is
	// case-insensitive for names and aliases alike.
	Aliases []string
	// Description is a one-line summary for -list output.
	Description string
	// Order fixes the listing position: the paper's column order for the
	// six primaries, higher values for meta-heuristics.
	Order int
	// Primary marks one of the paper's six primary heuristics (the columns
	// of Tables 3-5).
	Primary bool
	// New returns a fresh scheduling function. Heuristics may keep state
	// across the operations of one run, so every worker goroutine needs its
	// own instance. Implementations that contain long-running loops honor
	// ctx between major phases.
	New func(ctx context.Context) ScheduleFunc
}

// Instance is an instantiated scheduler: a name plus a ready-to-run
// scheduling function (the engine-level analogue of heuristics.Heuristic).
type Instance struct {
	Name string
	Run  ScheduleFunc
}

// Instantiate builds a fresh Instance bound to ctx.
func (s Scheduler) Instantiate(ctx context.Context) Instance {
	return Instance{Name: s.Name, Run: s.New(ctx)}
}

// Bound is one registered lower-bound algorithm. Bounds are computed
// together by bounds.Compute; each entry knows how to extract its value
// from the resulting set.
type Bound struct {
	// Name is the canonical short name used in tables ("CP", "PW").
	Name string
	// Aliases are additional lookup keys ("pairwise" for "PW").
	Aliases []string
	// Description is a one-line summary for -list output.
	Description string
	// Order fixes the listing position (the paper's Table 1 column order).
	Order int
	// Value extracts the superblock-level weighted-completion bound.
	Value func(*bounds.Set) float64
	// PerBranch extracts the per-branch issue-cycle bounds, or nil when the
	// bound has no per-branch form.
	PerBranch func(*bounds.Set) bounds.PerBranch
	// Trips extracts the algorithm's loop-trip count (the Table 2 metric)
	// from the per-superblock statistics.
	Trips func(*bounds.AlgStats) float64
}

var (
	schedulers = newRegistry[Scheduler]("heuristic")
	boundsReg  = newRegistry[Bound]("bound")
)

// RegisterScheduler adds a scheduler to the registry. It panics on
// duplicate names or aliases (registration is an init-time operation).
func RegisterScheduler(s Scheduler) {
	if s.New == nil {
		panic(fmt.Sprintf("engine: scheduler %q has no constructor", s.Name))
	}
	schedulers.register(s.Name, s.Order, s.Aliases, s)
}

// RegisterBound adds a bound to the registry. It panics on duplicates.
func RegisterBound(b Bound) {
	if b.Value == nil {
		panic(fmt.Sprintf("engine: bound %q has no value extractor", b.Name))
	}
	boundsReg.register(b.Name, b.Order, b.Aliases, b)
}

// SchedulerByName resolves a scheduler by canonical name or alias. The
// error of an unknown name lists every registered scheduler.
func SchedulerByName(name string) (Scheduler, error) { return schedulers.resolve(name) }

// SchedulerNames returns the canonical scheduler names in listing order.
func SchedulerNames() []string { return schedulers.names() }

// AllSchedulers returns every registered scheduler in listing order.
func AllSchedulers() []Scheduler { return schedulers.values() }

// PrimarySchedulers returns the paper's primary heuristics in column order.
func PrimarySchedulers() []Scheduler {
	var out []Scheduler
	for _, s := range schedulers.values() {
		if s.Primary {
			out = append(out, s)
		}
	}
	return out
}

// PrimaryNames returns the primary heuristics' names in column order.
func PrimaryNames() []string {
	ps := PrimarySchedulers()
	out := make([]string, len(ps))
	for i, s := range ps {
		out[i] = s.Name
	}
	return out
}

// PrimaryInstances instantiates the primary heuristics, bound to ctx.
func PrimaryInstances(ctx context.Context) []Instance {
	ps := PrimarySchedulers()
	out := make([]Instance, len(ps))
	for i, s := range ps {
		out[i] = s.Instantiate(ctx)
	}
	return out
}

// Instances resolves and instantiates the named schedulers in the given
// order, bound to ctx.
func Instances(ctx context.Context, names []string) ([]Instance, error) {
	out := make([]Instance, len(names))
	for i, name := range names {
		s, err := SchedulerByName(name)
		if err != nil {
			return nil, err
		}
		out[i] = s.Instantiate(ctx)
	}
	return out, nil
}

// BoundByName resolves a bound by canonical name or alias. The error of an
// unknown name lists every registered bound.
func BoundByName(name string) (Bound, error) { return boundsReg.resolve(name) }

// BoundNames returns the canonical bound names in listing order.
func BoundNames() []string { return boundsReg.names() }

// AllBounds returns every registered bound in listing order.
func AllBounds() []Bound { return boundsReg.values() }

// init mirrors the bound catalog owned by internal/bounds into the
// registry. (Bounds sits below engine in the import DAG, so it exports a
// catalog instead of importing engine to self-register.)
func init() {
	for i, e := range bounds.Catalog() {
		RegisterBound(Bound{
			Name:        e.Name,
			Aliases:     e.Aliases,
			Description: e.Description,
			Order:       i + 1,
			Value:       e.Value,
			PerBranch:   e.PerBranch,
			Trips:       e.Trips,
		})
	}
}
