package stats

import (
	"math"
	"strings"
	"testing"

	"balance/internal/gen"
	"balance/internal/model"
)

func TestDistBasics(t *testing.T) {
	var d Dist
	for _, x := range []float64{4, 1, 3, 2, 5} {
		d.Add(x)
	}
	if d.N() != 5 || d.Min() != 1 || d.Max() != 5 {
		t.Fatalf("N/min/max wrong: %d %v %v", d.N(), d.Min(), d.Max())
	}
	if d.Mean() != 3 {
		t.Errorf("mean = %v", d.Mean())
	}
	if q := d.Quantile(0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := d.Quantile(0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := d.Quantile(1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	// Stddev of 1..5 is sqrt(2.5).
	if sd := d.Stddev(); math.Abs(sd-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %v", sd)
	}
	var empty Dist
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 || empty.Stddev() != 0 {
		t.Error("empty dist not zeroed")
	}
}

func TestSummarize(t *testing.T) {
	b := model.NewBuilder("one")
	o0 := b.Load()
	o1 := b.Int(o0)
	b.Branch(0.25, o1)
	o2 := b.Int()
	b.Branch(0, o2)
	sb := b.MustBuild()

	c := Summarize([]*model.Superblock{sb})
	if c.Superblocks != 1 {
		t.Fatal("count wrong")
	}
	if c.Ops.Mean() != 5 {
		t.Errorf("ops mean = %v", c.Ops.Mean())
	}
	if c.Branches.Mean() != 2 {
		t.Errorf("branches mean = %v", c.Branches.Mean())
	}
	if c.ClassCounts[model.Load] != 1 || c.ClassCounts[model.Int] != 2 || c.ClassCounts[model.Branch] != 2 {
		t.Errorf("class counts wrong: %v", c.ClassCounts)
	}
	if c.SideExitProb.N() != 1 || c.SideExitProb.Mean() != 0.25 {
		t.Errorf("side exit prob wrong")
	}
	if f := c.ClassFraction(model.Int); math.Abs(f-0.4) > 1e-12 {
		t.Errorf("int fraction = %v", f)
	}
	text := c.String()
	for _, want := range []string{"superblocks: 1", "ops", "branches", "op mix"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestSummarizeGeneratedCorpusMatchesProfiles(t *testing.T) {
	p, _ := gen.ProfileByName("gcc")
	sbs := gen.Generate(p, 1999, 1)
	c := Summarize(sbs)
	if c.Superblocks != p.Count {
		t.Fatalf("generated %d superblocks, want %d", c.Superblocks, p.Count)
	}
	// Memory fraction should be in the profile's neighborhood.
	memFrac := c.ClassFraction(model.Load) + c.ClassFraction(model.Store)
	if memFrac < p.MemFrac*0.5 || memFrac > p.MemFrac*1.5 {
		t.Errorf("mem fraction %v far from profile %v", memFrac, p.MemFrac)
	}
	// ILP must be > 1 on average (superblocks expose parallelism) but far
	// below the op count (they are not fully parallel).
	if c.ILP.Mean() < 1 || c.ILP.Mean() > 10 {
		t.Errorf("mean ILP %v implausible", c.ILP.Mean())
	}
	if int(c.Branches.Max()) > p.MaxBranches {
		t.Errorf("max branches %v exceeds profile cap %d", c.Branches.Max(), p.MaxBranches)
	}
	if int(c.Ops.Max()) > p.OpMax+p.MaxBranches {
		t.Errorf("max ops %v exceeds cap", c.Ops.Max())
	}
}
