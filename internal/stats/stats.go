// Package stats computes descriptive statistics of superblock corpora:
// size/branch histograms, operation mixes, dependence structure, available
// instruction-level parallelism, and exit-probability summaries. It backs
// the sbstat tool and lets users compare generated corpora against the
// characteristics the paper reports for SPECint95.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"balance/internal/model"
)

// Corpus summarizes a set of superblocks.
type Corpus struct {
	// Superblocks is the number of superblocks summarized.
	Superblocks int
	// Ops aggregates per-superblock operation counts.
	Ops Dist
	// Branches aggregates per-superblock exit counts.
	Branches Dist
	// Edges aggregates per-superblock dependence-edge counts.
	Edges Dist
	// CriticalPath aggregates dependence-only critical paths.
	CriticalPath Dist
	// ILP aggregates ops/critical-path ratios (available parallelism).
	ILP Dist
	// SideExitProb aggregates side-exit probabilities (all but the final
	// exit of each superblock).
	SideExitProb Dist
	// Freq aggregates dynamic execution frequencies.
	Freq Dist
	// ClassCounts counts operations by class across the corpus.
	ClassCounts [model.NumClasses]int64
}

// Dist is a running summary of a scalar distribution.
type Dist struct {
	n       int
	sum     float64
	min     float64
	max     float64
	samples []float64
}

// Add records one observation.
func (d *Dist) Add(x float64) {
	if d.n == 0 || x < d.min {
		d.min = x
	}
	if d.n == 0 || x > d.max {
		d.max = x
	}
	d.n++
	d.sum += x
	d.samples = append(d.samples, x)
}

// N returns the number of observations.
func (d *Dist) N() int { return d.n }

// Mean returns the arithmetic mean (0 for empty).
func (d *Dist) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min and Max return the extremes (0 for empty).
func (d *Dist) Min() float64 { return d.min }

// Max returns the largest observation.
func (d *Dist) Max() float64 { return d.max }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the observations.
func (d *Dist) Quantile(q float64) float64 {
	if d.n == 0 {
		return 0
	}
	s := append([]float64(nil), d.samples...)
	sort.Float64s(s)
	idx := q * float64(len(s)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return s[lo]
	}
	frac := idx - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Stddev returns the sample standard deviation.
func (d *Dist) Stddev() float64 {
	if d.n < 2 {
		return 0
	}
	m := d.Mean()
	ss := 0.0
	for _, x := range d.samples {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss / float64(d.n-1))
}

// Summarize computes the corpus statistics of the given superblocks.
func Summarize(sbs []*model.Superblock) *Corpus {
	c := &Corpus{Superblocks: len(sbs)}
	for _, sb := range sbs {
		n := sb.G.NumOps()
		c.Ops.Add(float64(n))
		c.Branches.Add(float64(sb.NumBranches()))
		c.Edges.Add(float64(sb.G.NumEdges()))
		cp := sb.G.CriticalPath()
		c.CriticalPath.Add(float64(cp))
		if cp > 0 {
			c.ILP.Add(float64(n) / float64(cp))
		}
		for i := 0; i+1 < len(sb.Prob); i++ {
			c.SideExitProb.Add(sb.Prob[i])
		}
		c.Freq.Add(sb.Freq)
		for _, op := range sb.G.Ops() {
			c.ClassCounts[op.Class]++
		}
	}
	return c
}

// TotalOps returns the corpus-wide operation count.
func (c *Corpus) TotalOps() int64 {
	t := int64(0)
	for _, n := range c.ClassCounts {
		t += n
	}
	return t
}

// ClassFraction returns the fraction of operations with the given class.
func (c *Corpus) ClassFraction(cl model.Class) float64 {
	t := c.TotalOps()
	if t == 0 {
		return 0
	}
	return float64(c.ClassCounts[cl]) / float64(t)
}

// String renders a human-readable report.
func (c *Corpus) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "superblocks: %d (total ops %d)\n", c.Superblocks, c.TotalOps())
	row := func(name string, d *Dist) {
		fmt.Fprintf(&b, "%-14s mean %8.2f  sd %8.2f  min %6.0f  p50 %6.1f  p90 %7.1f  max %7.0f\n",
			name, d.Mean(), d.Stddev(), d.Min(), d.Quantile(0.5), d.Quantile(0.9), d.Max())
	}
	row("ops", &c.Ops)
	row("branches", &c.Branches)
	row("edges", &c.Edges)
	row("critical path", &c.CriticalPath)
	fmt.Fprintf(&b, "%-14s mean %8.2f  sd %8.2f  min %6.2f  p50 %6.2f  p90 %7.2f  max %7.2f\n",
		"ilp", c.ILP.Mean(), c.ILP.Stddev(), c.ILP.Min(), c.ILP.Quantile(0.5), c.ILP.Quantile(0.9), c.ILP.Max())
	fmt.Fprintf(&b, "%-14s mean %8.3f  p50 %.3f  p90 %.3f  max %.3f\n",
		"side-exit prob", c.SideExitProb.Mean(), c.SideExitProb.Quantile(0.5), c.SideExitProb.Quantile(0.9), c.SideExitProb.Max())
	fmt.Fprintf(&b, "%-14s mean %8.1f  p50 %6.1f  max %.0f\n", "frequency", c.Freq.Mean(), c.Freq.Quantile(0.5), c.Freq.Max())
	b.WriteString("op mix: ")
	for cl := model.Class(0); int(cl) < model.NumClasses; cl++ {
		if c.ClassCounts[cl] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s %.1f%%  ", cl, 100*c.ClassFraction(cl))
	}
	b.WriteString("\n")
	return b.String()
}
