// Package conc provides the bounded worker-pool primitive shared by the
// evaluation pipeline (internal/engine) and the bound kernel's
// intra-superblock fan-out (internal/bounds). It lives below both so the
// bound layer can parallelize pair evaluations without importing the
// engine (which imports bounds for its registry).
//
// The pool preserves the engine's telemetry contract: worker panics and
// skipped indices are counted under the existing "engine.jobs_panicked"
// and "engine.jobs_skipped" series (the registry is name-idempotent, so
// the instruments are shared with internal/engine).
package conc

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"balance/internal/resilience"
	"balance/internal/telemetry"
)

var (
	telJobsPanicked = telemetry.Default().Counter("engine.jobs_panicked")
	telJobsSkipped  = telemetry.Default().Counter("engine.jobs_skipped")
)

// ForEach runs fn(i) for every i in [0, n) across a bounded pool of worker
// goroutines and returns the first error in index order. workers ≤ 0 uses
// GOMAXPROCS. The pool stops claiming new indices once ctx is cancelled or
// any fn returns an error; in-flight calls finish first. When ctx is
// cancelled, the returned error is ctx.Err() even if some fn also failed.
//
// Panic isolation: a panic in fn is recovered inside the worker (via
// resilience.Protect) and reported as that index's error — a
// *resilience.PanicError carrying the panic value and the goroutine stack.
// The recovery happens before the worker's deferred wg.Done runs, so a
// panicking fn can neither leak worker goroutines nor deadlock the
// internal wg.Wait: the pool always drains and returns.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	errs, ctxErr := forEach(ctx, workers, n, false, fn)
	if ctxErr != nil {
		return ctxErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEachKeepGoing is ForEach under the KeepGoing policy: a failing (or
// panicking) fn does not stop the pool — every index is attempted, and the
// returned slice holds each index's error (nil for the ones that
// succeeded). The second return is ctx.Err(); when the context is
// cancelled mid-run, unclaimed indices keep a nil error and are counted in
// the engine.jobs_skipped telemetry.
func ForEachKeepGoing(ctx context.Context, workers, n int, fn func(i int) error) ([]error, error) {
	return forEach(ctx, workers, n, true, fn)
}

func forEach(ctx context.Context, workers, n int, keepGoing bool, fn func(i int) error) ([]error, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next int64 = -1
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if (!keepGoing && failed.Load()) || ctx.Err() != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				err := resilience.Protect(func() error { return fn(i) })
				if err != nil {
					var pe *resilience.PanicError
					if errors.As(err, &pe) {
						telJobsPanicked.Inc()
					}
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	claimed := int(atomic.LoadInt64(&next)) + 1
	if claimed > n {
		claimed = n
	}
	if claimed < n {
		telJobsSkipped.Add(int64(n - claimed))
	}
	return errs, ctx.Err()
}
