package conc

import (
	"sync"
	"sync/atomic"
)

// Stealer is a work-stealing task distributor for a fixed set of workers:
// one deque per worker, owner access LIFO, thieves taking half a victim's
// queue FIFO. It is the load-balancing layer under the parallel exact
// solver, where tasks are coarse search subtrees (thousands to millions of
// nodes each), so a single mutex over all deques costs nothing measurable
// against the work a task represents — the steal-half and LIFO/FIFO
// semantics matter for balance, a lock-free Chase-Lev deque would not.
//
// Lifecycle: a producer seeds tasks with Push (any worker index) and calls
// Close once no more external tasks will arrive; workers loop on Next,
// which pops their own deque, then steals, then parks on a condition
// variable (no spinning) until new work is pushed, every task completes, or
// Abort is called. Workers may Push new tasks from inside the loop
// (subtree splitting); termination is detected by an outstanding-task
// count: Push increments it, Done decrements it, and Next returns false
// once the Stealer is closed, every deque is empty, and no popped task is
// still executing.
type Stealer[T any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	deques  [][]T
	closed  bool
	aborted bool
	// outstanding counts pushed-but-not-Done tasks: tasks queued in deques
	// plus tasks popped and currently executing.
	outstanding int
	parked      int
	steals      atomic.Int64 // successful steal operations
	stolen      atomic.Int64 // tasks moved by those steals
}

// NewStealer returns a Stealer with one deque per worker.
func NewStealer[T any](workers int) *Stealer[T] {
	if workers < 1 {
		workers = 1
	}
	s := &Stealer[T]{deques: make([][]T, workers)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Workers returns the number of deques.
func (s *Stealer[T]) Workers() int { return len(s.deques) }

// Push appends a task to worker w's deque (its LIFO end) and wakes a parked
// worker. Both the producer (seeding) and workers (splitting) push; a
// worker pushing to its own deque keeps depth-first locality, thieves take
// the oldest entries.
func (s *Stealer[T]) Push(w int, t T) {
	s.mu.Lock()
	s.deques[w] = append(s.deques[w], t)
	s.outstanding++
	s.mu.Unlock()
	s.cond.Signal()
}

// Close marks the external production phase finished: once every deque
// drains and every popped task is Done, Next returns false. Workers may
// still Push (splits) after Close.
func (s *Stealer[T]) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Done records that a task returned by Next finished executing. The last
// Done (with the Stealer closed and all deques empty) releases every parked
// worker.
func (s *Stealer[T]) Done() {
	s.mu.Lock()
	s.outstanding--
	drained := s.outstanding == 0 && s.closed
	s.mu.Unlock()
	if drained {
		s.cond.Broadcast()
	}
}

// Abort discards every queued task and releases all workers: parked workers
// wake immediately and every subsequent Next returns false. Used when a
// stop latch (cancellation, budget expiry) makes the remaining work moot.
func (s *Stealer[T]) Abort() {
	s.mu.Lock()
	s.aborted = true
	for w := range s.deques {
		dropped := len(s.deques[w])
		s.deques[w] = nil
		s.outstanding -= dropped
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Next returns the next task for worker w: the newest entry of its own
// deque (LIFO), else half of some victim's deque (FIFO — the oldest,
// coarsest entries move; the newest stay with their owner). When no task is
// available but popped tasks are still executing (they may split and push
// more), the worker parks on the condition variable; Next returns false
// only when the Stealer was aborted, or is closed with every deque empty
// and no task outstanding.
func (s *Stealer[T]) Next(w int) (T, bool) {
	var zero T
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.aborted {
			return zero, false
		}
		// Own deque, LIFO end.
		if own := s.deques[w]; len(own) > 0 {
			t := own[len(own)-1]
			own[len(own)-1] = zero
			s.deques[w] = own[:len(own)-1]
			return t, true
		}
		// Steal half of the fullest victim, FIFO end. Scanning for the
		// fullest (rather than a random victim) is fine under one lock and
		// moves the most work per steal.
		victim, most := -1, 0
		for v := range s.deques {
			if v != w && len(s.deques[v]) > most {
				victim, most = v, len(s.deques[v])
			}
		}
		if victim >= 0 {
			take := (most + 1) / 2
			moved := s.deques[victim][:take]
			rest := s.deques[victim][take:]
			// Keep the victim's backing array for its own future pushes;
			// copy the stolen prefix out.
			s.deques[w] = append(s.deques[w], moved...)
			copy(s.deques[victim], rest)
			tail := s.deques[victim][len(rest):most]
			for i := range tail {
				tail[i] = zero
			}
			s.deques[victim] = s.deques[victim][:len(rest)]
			s.steals.Add(1)
			s.stolen.Add(int64(take))
			// The stolen tasks landed oldest-first at our LIFO end; pop the
			// last so the owner still works the best (earliest-pushed of the
			// stolen run stays queued for others).
			own := s.deques[w]
			t := own[len(own)-1]
			own[len(own)-1] = zero
			s.deques[w] = own[:len(own)-1]
			return t, true
		}
		if s.closed && s.outstanding == 0 {
			return zero, false
		}
		// Nothing stealable but tasks are still executing (or production is
		// open): park until a Push, the final Done, or Abort.
		s.parked++
		s.cond.Wait()
		s.parked--
	}
}

// Parked returns how many workers are currently parked waiting for work —
// the hunger signal task holders use to decide whether splitting their
// subtree is worth the snapshot cost.
func (s *Stealer[T]) Parked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.parked
}

// Queued returns the total number of tasks currently sitting in deques.
func (s *Stealer[T]) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, d := range s.deques {
		n += len(d)
	}
	return n
}

// Steals returns the number of successful steal operations and the number
// of tasks they moved. Safe to read live.
func (s *Stealer[T]) Steals() (ops, tasks int64) {
	return s.steals.Load(), s.stolen.Load()
}
