package conc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// drainAll runs `workers` goroutines over the stealer until it drains and
// returns every task seen, per worker.
func drainAll(t *testing.T, s *Stealer[int], workers int, work func(w, task int)) [][]int {
	t.Helper()
	got := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				task, ok := s.Next(w)
				if !ok {
					return
				}
				got[w] = append(got[w], task)
				if work != nil {
					work(w, task)
				}
				s.Done()
			}
		}(w)
	}
	wg.Wait()
	return got
}

func TestStealerOwnerLIFO(t *testing.T) {
	s := NewStealer[int](1)
	for i := 0; i < 5; i++ {
		s.Push(0, i)
	}
	s.Close()
	var order []int
	for {
		task, ok := s.Next(0)
		if !ok {
			break
		}
		order = append(order, task)
		s.Done()
	}
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("owner pop order = %v, want LIFO %v", order, want)
		}
	}
}

func TestStealerStealHalfFIFO(t *testing.T) {
	s := NewStealer[int](2)
	for i := 0; i < 8; i++ {
		s.Push(0, i)
	}
	s.Close()
	// Worker 1 owns nothing: its first Next must steal half of worker 0's
	// eight tasks — the oldest four (0..3).
	task, ok := s.Next(1)
	if !ok {
		t.Fatal("thief got no task")
	}
	if task > 3 {
		t.Errorf("thief's first task = %d, want one of the oldest half 0..3", task)
	}
	ops, moved := s.Steals()
	if ops != 1 || moved != 4 {
		t.Errorf("steals = %d ops / %d tasks, want 1/4", ops, moved)
	}
	// The victim keeps its newest half and still pops LIFO.
	own, ok := s.Next(0)
	if !ok || own != 7 {
		t.Errorf("victim pop after steal = %d,%v, want 7,true", own, ok)
	}
	s.Done()
	s.Done()
}

func TestStealerEveryTaskExactlyOnce(t *testing.T) {
	const workers, tasks = 8, 500
	s := NewStealer[int](workers)
	go func() {
		for i := 0; i < tasks; i++ {
			s.Push(i%workers, i)
		}
		s.Close()
	}()
	got := drainAll(t, s, workers, func(_, _ int) { runtime.Gosched() })
	seen := make([]int, tasks)
	for _, per := range got {
		for _, task := range per {
			seen[task]++
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("task %d delivered %d times, want exactly once", i, n)
		}
	}
}

// TestStealerParkWake: a worker with an empty deque parks (no spin) and
// wakes when work arrives later.
func TestStealerParkWake(t *testing.T) {
	s := NewStealer[int](2)
	got := make(chan int, 1)
	go func() {
		task, ok := s.Next(1)
		if ok {
			got <- task
			s.Done()
		}
	}()
	// Wait until the worker has parked, then push from "outside".
	deadline := time.Now().Add(2 * time.Second)
	for s.Parked() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never parked")
		}
		time.Sleep(time.Millisecond)
	}
	s.Push(0, 42)
	select {
	case task := <-got:
		if task != 42 {
			t.Errorf("woken worker got %d, want 42", task)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked worker was not woken by Push")
	}
	s.Close()
	if _, ok := s.Next(1); ok {
		t.Error("drained stealer returned a task")
	}
}

// TestStealerSplitFromWorker: tasks pushed by a worker mid-drain (subtree
// splitting) are delivered, and termination still detects the true end.
func TestStealerSplitFromWorker(t *testing.T) {
	s := NewStealer[int](4)
	var delivered atomic.Int64
	s.Push(0, 100) // one root task that splits into 10 children
	s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				task, ok := s.Next(w)
				if !ok {
					return
				}
				delivered.Add(1)
				if task == 100 {
					for c := 0; c < 10; c++ {
						s.Push(w, c)
					}
				}
				s.Done()
			}
		}(w)
	}
	wg.Wait()
	if got := delivered.Load(); got != 11 {
		t.Errorf("delivered %d tasks, want 11 (root + 10 children)", got)
	}
}

// TestStealerAbortWakesParked: Abort discards queued work and releases
// parked workers immediately; Next returns false everywhere after.
func TestStealerAbortWakesParked(t *testing.T) {
	s := NewStealer[int](3)
	s.Push(0, 1) // queued but never popped: must be discarded
	done := make(chan struct{})
	go func() {
		// Workers 1 and 2 park (worker 0's task is left unclaimed by them
		// only if they lose the race; either way they finish on Abort).
		var wg sync.WaitGroup
		for w := 1; w <= 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					_, ok := s.Next(w)
					if !ok {
						return
					}
					s.Done()
				}
			}(w)
		}
		wg.Wait()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	s.Abort()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Abort did not release parked workers")
	}
	if _, ok := s.Next(0); ok {
		t.Error("Next returned a task after Abort")
	}
	if q := s.Queued(); q != 0 {
		t.Errorf("Queued() = %d after Abort, want 0", q)
	}
}

// TestStealerRaceStress hammers concurrent push/pop/steal/split under the
// race detector.
func TestStealerRaceStress(t *testing.T) {
	const workers = 8
	s := NewStealer[int](workers)
	var total atomic.Int64
	go func() {
		for i := 0; i < 200; i++ {
			s.Push(i%workers, 1)
		}
		s.Close()
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				depth, ok := s.Next(w)
				if !ok {
					return
				}
				total.Add(1)
				if depth < 3 && total.Load()%7 == 0 {
					s.Push(w, depth+1)
					s.Push(w, depth+1)
				}
				s.Done()
			}
		}(w)
	}
	wg.Wait()
	if s.Queued() != 0 {
		t.Errorf("Queued() = %d after drain, want 0", s.Queued())
	}
}
