package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Rolling-window instruments.
//
// A Window is a ring of per-interval shards (default 12 shards of 5s:
// one minute of history). Writers land observations in the shard owned
// by the current interval; a shard whose interval has lapped the ring is
// drained into an "expired" accumulator and reused. The design goals, in
// order:
//
//   - Conservation: every observation is counted in exactly one of
//     {a live shard, the expired accumulator}. Rotation moves counts with
//     atomic Swap, so at quiescence
//     lifetime count == sum(shard counts) + expired count, exactly —
//     the invariant TestWindowRotationConservation pins under -race.
//   - Zero-alloc, lock-free recording: the record path is a cached-clock
//     load, an epoch check, and three atomic adds on top of the lifetime
//     histogram. No mutexes, no allocation, no kernel clock read (pinned
//     by TestWindowedObserveZeroAlloc and the benchgate-tracked
//     BenchmarkWindowedObserve).
//   - Readers never block writers: a snapshot mid-rotation may attribute
//     an observation to the adjacent interval or see it in flight between
//     a shard and the expired accumulator, but never loses it, and the
//     merged bucket view is always internally consistent (quantile ranks
//     are computed against the merged totals, not a separately read
//     count).
//
// Geometry is fixed at construction. The clock is replaceable for tests
// (see newWindow); production windows read the wall clock.

// Default window geometry: 12 shards × 5s = 60s of rolling history.
const (
	DefaultWindowShards   = 12
	DefaultWindowInterval = 5 * time.Second
)

// windowShard holds one interval's observations. epoch is the interval
// number the data belongs to; epochDraining marks a shard mid-drain and
// epochEmpty a shard that has never been claimed.
type windowShard struct {
	epoch   atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

const (
	epochDraining = -1
	epochEmpty    = -2
)

// Window is the rotation machinery shared by WindowedHistogram and
// WindowedCounter: the shard ring, the expired accumulator, and the
// clock.
type Window struct {
	intervalNS int64
	shards     []windowShard
	// expiredCount/expiredSum accumulate observations rotated out of the
	// ring, preserving the conservation invariant for tests and accounting.
	expiredCount atomic.Int64
	expiredSum   atomic.Int64
	nowNanos     func() int64
}

// procBase anchors the production clock. Epochs only need a monotonic
// scale — absolute wall time never matters, only which interval an
// observation falls in.
var procBase = time.Now()

// The production clock is cached: a process-lifetime goroutine refreshes
// an atomic every coarseTick, and the record path reads that atomic
// instead of the kernel clock. A real clock read costs more than the
// rest of the record sequence combined; the cache is what keeps the
// windowed Observe within ~2x of the plain one. Staleness is bounded by
// coarseTick — 2% of the default 5s interval — which at worst attributes
// an observation to the adjacent epoch, the same tolerance the rotation
// machinery already grants racing writers.
const coarseTick = 100 * time.Millisecond

var coarseClock struct {
	once sync.Once
	now  atomic.Int64
}

// startCoarseClock seeds the cached clock and begins the background
// refresh. Run once, from the first real-clocked newWindow, so processes
// that never build a window never pay for the goroutine.
func startCoarseClock() {
	coarseClock.now.Store(int64(time.Since(procBase)))
	go func() {
		for range time.Tick(coarseTick) {
			coarseClock.now.Store(int64(time.Since(procBase)))
		}
	}()
}

// wallNanos is the production clock: cached monotonic nanoseconds since
// process start.
func wallNanos() int64 { return coarseClock.now.Load() }

// newWindow builds a ring of n shards of the given interval. now is the
// clock (nil: wall clock); tests inject a fake to drive rotation
// deterministically.
func newWindow(n int, interval time.Duration, now func() int64) *Window {
	if n <= 0 {
		n = DefaultWindowShards
	}
	if interval <= 0 {
		interval = DefaultWindowInterval
	}
	if now == nil {
		coarseClock.once.Do(startCoarseClock)
		now = wallNanos
	}
	w := &Window{
		intervalNS: int64(interval),
		shards:     make([]windowShard, n),
		nowNanos:   now,
	}
	for i := range w.shards {
		w.shards[i].epoch.Store(epochEmpty)
	}
	return w
}

// Span returns the ring's total coverage (shards × interval).
func (w *Window) Span() time.Duration {
	return time.Duration(w.intervalNS * int64(len(w.shards)))
}

// shardFor returns the shard owning epoch e, rotating a lapped shard
// first. Rotation drains the stale shard's count and sum into the
// expired accumulator with atomic Swap — the counts move, they are never
// dropped — then zeroes the buckets and republishes the shard under the
// new epoch. A writer that loses the claim race records into the shard
// anyway: its adds land either in the drain (→ expired) or in the fresh
// epoch, so conservation holds either way and the worst case is
// attribution to an adjacent interval.
func (w *Window) shardFor(e int64) *windowShard {
	sh := &w.shards[int(e%int64(len(w.shards)))]
	se := sh.epoch.Load()
	if se == e {
		return sh
	}
	if se < e && se != epochDraining && sh.epoch.CompareAndSwap(se, epochDraining) {
		w.expiredCount.Add(sh.count.Swap(0))
		w.expiredSum.Add(sh.sum.Swap(0))
		for i := range sh.buckets {
			sh.buckets[i].Store(0)
		}
		sh.epoch.Store(e)
	}
	return sh
}

// record lands one observation of value v in the current interval's shard.
func (w *Window) record(v int64) {
	sh := w.shardFor(w.nowNanos() / w.intervalNS)
	sh.count.Add(1)
	sh.sum.Add(v)
	sh.buckets[bucketOf(v)].Add(1)
}

// add moves the current interval's count by n without bucketing (the
// counter form; sum tracks the same total so drains stay uniform).
func (w *Window) add(n int64) {
	sh := w.shardFor(w.nowNanos() / w.intervalNS)
	sh.count.Add(n)
	sh.sum.Add(n)
}

// merged reads the live shards covering the last k intervals (k ≤ 0:
// the whole ring) into one view. spanNS is the wall-clock coverage of the
// merged shards: full intervals for completed epochs plus the elapsed
// fraction of the current one, so rates from short-lived windows do not
// underestimate.
func (w *Window) merged(k int) (buckets [numBuckets]int64, count, sum, spanNS int64) {
	n := int64(len(w.shards))
	if k <= 0 || int64(k) > n {
		k = int(n)
	}
	now := w.nowNanos()
	e := now / w.intervalNS
	oldest := e - int64(k) + 1
	for i := range w.shards {
		sh := &w.shards[i]
		se := sh.epoch.Load()
		if se == epochDraining {
			// Mid-drain: remaining (not yet swapped) data is current enough
			// to include; the drained part is in expired, not lost.
			se = e
		}
		if se < oldest || se > e || se == epochEmpty {
			continue
		}
		count += sh.count.Load()
		sum += sh.sum.Load()
		for b := range sh.buckets {
			buckets[b] += sh.buckets[b].Load()
		}
		if se == e {
			spanNS += now % w.intervalNS
		} else {
			spanNS += w.intervalNS
		}
	}
	return buckets, count, sum, spanNS
}

// ExpiredCount returns the observations rotated out of the ring over the
// window's lifetime (for conservation accounting and tests).
func (w *Window) ExpiredCount() int64 { return w.expiredCount.Load() }

// WindowSummary condenses one rolling window for snapshots and /healthz:
// totals, a rate normalized by the window's live coverage, and bucketed
// quantile estimates with the same semantics as Histogram.Quantile.
type WindowSummary struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// RatePerSec is Count divided by the live coverage of the merged
	// shards (≤ the ring span; partial for young processes).
	RatePerSec float64 `json:"rate_per_sec"`
	// SpanSec is that live coverage in seconds.
	SpanSec float64 `json:"span_sec"`
	P50     int64   `json:"p50"`
	P95     int64   `json:"p95"`
	P99     int64   `json:"p99"`
}

// summarize builds a WindowSummary over the last k intervals.
func (w *Window) summarize(k int) WindowSummary {
	buckets, count, sum, spanNS := w.merged(k)
	s := WindowSummary{Count: count, Sum: sum, SpanSec: float64(spanNS) / 1e9}
	if spanNS > 0 {
		s.RatePerSec = float64(count) / (float64(spanNS) / 1e9)
	}
	s.P50 = mergedQuantile(&buckets, 0.50)
	s.P95 = mergedQuantile(&buckets, 0.95)
	s.P99 = mergedQuantile(&buckets, 0.99)
	return s
}

// mergedQuantile walks a merged bucket view exactly as Histogram.Quantile
// walks a live one. The rank is computed against the merged buckets' own
// total — not a separately read shard count — so the estimate stays
// internally consistent even when the shards were read mid-rotation.
func mergedQuantile(buckets *[numBuckets]int64, q float64) int64 {
	var n int64
	for i := 0; i < numBuckets; i++ {
		n += buckets[i]
	}
	if n <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += buckets[i]
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(numBuckets - 1)
}

// bucketUpper is the inclusive upper bound of bucket i (see bucketOf).
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// countOver reports, over the last k intervals, how many observations
// landed in buckets whose upper bound exceeds v, alongside the window
// total. It is the bucketed form of "requests slower than v": exact at
// bucket boundaries, conservative (an over-count of at most one bucket's
// worth) elsewhere. SLO burn rates are computed from it.
func (w *Window) countOver(v int64, k int) (over, total int64) {
	buckets, count, _, _ := w.merged(k)
	for i := 0; i < numBuckets; i++ {
		if bucketUpper(i) > v {
			over += buckets[i]
		}
	}
	return over, count
}

// Exemplar links one observation to the trace that produced it, so a
// latency outlier on a histogram bucket can be chased into the span tree
// of the Perfetto trace.
type Exemplar struct {
	// Value is the observed value (within the bucket's range).
	Value int64
	// Trace is the trace ID of the request that produced it.
	Trace uint64
	// Time is when the observation was recorded.
	Time time.Time
}

// WindowedHistogram pairs a lifetime Histogram with a rolling Window and
// per-bucket trace exemplars. Observe records into both; the lifetime
// view feeds Prometheus cumulative series and Snapshot, the window view
// feeds /healthz, SLO burn rates, and sbtop.
type WindowedHistogram struct {
	life Histogram
	win  *Window
	// exemplars holds the most recent traced observation per bucket
	// (last-write-wins); the Prometheus writer attaches the tail buckets'
	// entries to their _bucket series.
	exemplars [numBuckets]atomic.Pointer[Exemplar]
}

// NewWindowedHistogram builds a detached windowed histogram (registry
// instruments come from Registry.WindowedHistogram). now is the clock
// used for rotation; nil means wall clock — tests inject a fake to drive
// rotation and decay deterministically.
func NewWindowedHistogram(shards int, interval time.Duration, now func() int64) *WindowedHistogram {
	h := &WindowedHistogram{win: newWindow(shards, interval, now)}
	h.life.min.Store(math.MaxInt64)
	return h
}

// Observe records one value into the lifetime histogram and the current
// window shard. Negative values are clamped to zero. Allocation-free.
func (h *WindowedHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.life.Observe(v)
	h.win.record(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *WindowedHistogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveTrace records like Observe and, when trace is nonzero,
// remembers the observation as the bucket's exemplar. Exemplar capture
// allocates one small record; untraced observations (trace == 0, the
// no-sink configuration) stay on the allocation-free path.
func (h *WindowedHistogram) ObserveTrace(v int64, trace uint64) {
	if v < 0 {
		v = 0
	}
	h.life.Observe(v)
	h.win.record(v)
	if trace != 0 {
		h.exemplars[bucketOf(v)].Store(&Exemplar{Value: v, Trace: trace, Time: time.Now()})
	}
}

// Lifetime returns the cumulative histogram view.
func (h *WindowedHistogram) Lifetime() *Histogram { return &h.life }

// Window returns the rolling ring (for conservation accounting in tests).
func (h *WindowedHistogram) Window() *Window { return h.win }

// WindowSummary condenses the last k intervals (k ≤ 0: the full ring).
func (h *WindowedHistogram) WindowSummary(k int) WindowSummary { return h.win.summarize(k) }

// WindowQuantile estimates the q-quantile over the last k intervals.
func (h *WindowedHistogram) WindowQuantile(q float64, k int) int64 {
	buckets, _, _, _ := h.win.merged(k)
	return mergedQuantile(&buckets, q)
}

// WindowCountOver reports how many of the last k intervals' observations
// exceeded v, with the window total (see Window.countOver).
func (h *WindowedHistogram) WindowCountOver(v int64, k int) (over, total int64) {
	return h.win.countOver(v, k)
}

// BucketExemplar returns bucket i's most recent traced observation, or
// nil.
func (h *WindowedHistogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= numBuckets {
		return nil
	}
	return h.exemplars[i].Load()
}

// WindowedCounter pairs a lifetime Counter with a rolling Window, so
// rates ("requests/s over the last minute") and ratios ("window error
// ratio") can be read without a scraping delta. Add is allocation-free.
type WindowedCounter struct {
	life Counter
	win  *Window
}

// NewWindowedCounter builds a detached windowed counter (registry
// instruments come from Registry.WindowedCounter). now is the rotation
// clock; nil means wall clock.
func NewWindowedCounter(shards int, interval time.Duration, now func() int64) *WindowedCounter {
	return &WindowedCounter{win: newWindow(shards, interval, now)}
}

// Inc adds one.
func (c *WindowedCounter) Inc() { c.Add(1) }

// Add adds n (n must be ≥ 0; counters are monotonic).
func (c *WindowedCounter) Add(n int64) {
	c.life.Add(n)
	c.win.add(n)
}

// Value returns the lifetime count.
func (c *WindowedCounter) Value() int64 { return c.life.Value() }

// Lifetime returns the cumulative counter view.
func (c *WindowedCounter) Lifetime() *Counter { return &c.life }

// Window returns the rolling ring.
func (c *WindowedCounter) Window() *Window { return c.win }

// WindowCount returns the count accumulated over the last k intervals
// (k ≤ 0: the full ring).
func (c *WindowedCounter) WindowCount(k int) int64 {
	_, count, _, _ := c.win.merged(k)
	return count
}

// WindowRate returns the per-second rate over the last k intervals,
// normalized by the live coverage of the merged shards.
func (c *WindowedCounter) WindowRate(k int) float64 {
	_, count, _, spanNS := c.win.merged(k)
	if spanNS <= 0 {
		return 0
	}
	return float64(count) / (float64(spanNS) / 1e9)
}
