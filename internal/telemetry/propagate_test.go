package telemetry

import (
	"context"
	"testing"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: 0xdeadbeef01, Span: 0x42}
	h := sc.Header()
	if h != "00-000000deadbeef01-0000000000000042" {
		t.Fatalf("header form %q", h)
	}
	got, ok := ParseTraceHeader(h)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
	// Span 0 is legal on the wire: "join this trace as a subtree root".
	joined, ok := ParseTraceHeader(SpanContext{Trace: 7}.Header())
	if !ok || joined.Trace != 7 || joined.Span != 0 {
		t.Fatalf("trace-only header: got %+v ok=%v", joined, ok)
	}
}

func TestParseTraceHeaderMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-123-456",                               // wrong widths
		"01-000000deadbeef01-0000000000000042",     // unknown version
		"00-0000000000000000-0000000000000042",     // zero trace
		"00-zzzzzzzzzzzzzzzz-0000000000000042",     // non-hex
		"00-000000deadbeef01-0000000000000042-ff",  // trailing field
		"00-000000DEADBEEF01-0000000000000042 ",    // trailing junk
		"traceparent-style-but-not-ours",           //
		"00-000000deadbeef010-000000000000004",     // shifted widths
		"00-000000deadbeef01-00000000000000422-00", //
		"00--0000000000000042",                     //
		"000-00000deadbeef01-0000000000000042",     //
		"00-000000deadbeef01-0000000000000042\n",   //
		"0x-000000deadbeef01-0000000000000042",     //
		" 00-000000deadbeef01-0000000000000042",    //
		"00 -000000deadbeef01-0000000000000042",    //
		"00-000000deadbeef01-000000000000004g",     // non-hex span
		"00-000000deadbeef01",                      // missing span
		"00-000000deadbeef01-0000000000000042-",    //
		"00-+00000deadbeef01-0000000000000042",     // sign rejected
	}
	for _, s := range bad {
		if sc, ok := ParseTraceHeader(s); ok {
			t.Errorf("ParseTraceHeader(%q) = %+v, want rejection", s, sc)
		}
	}
}

// TestMalformedHeaderFallsBackToFreshRoot is the server-side contract: a
// garbage SB-Trace header must not poison the request span — the
// handler parses, gets ok=false, skips ContextWithSpan, and StartSpanCtx
// starts a fresh root.
func TestMalformedHeaderFallsBackToFreshRoot(t *testing.T) {
	r := NewRegistry()
	sink := &captureSink{}
	r.SetSink(sink)
	ctx := context.Background()
	if sc, ok := ParseTraceHeader("00-garbage-header"); ok {
		ctx = ContextWithSpan(ctx, sc)
	}
	sp, _ := r.StartSpanCtx(ctx, "service.request")
	sp.End()
	ev := sink.events[len(sink.events)-1]
	if ev.Trace != ev.Span || ev.Parent != 0 {
		t.Fatalf("span after malformed header: trace %d span %d parent %d, want fresh root",
			ev.Trace, ev.Span, ev.Parent)
	}
}

// TestInjectExtractParent is the full propagation contract in one place:
// a client span's header, parsed server-side, parents the server span
// under the client's trace.
func TestInjectExtractParent(t *testing.T) {
	r := NewRegistry()
	sink := &captureSink{}
	r.SetSink(sink)

	client, _ := r.StartSpanCtx(context.Background(), "sbload.request")
	header := client.Context().Header()

	// "Server side": a different context, linked only by the header.
	sc, ok := ParseTraceHeader(header)
	if !ok {
		t.Fatalf("server rejected client header %q", header)
	}
	server, _ := r.StartSpanCtx(ContextWithSpan(context.Background(), sc), "service.request")
	server.End()
	client.End()

	serverEv := sink.events[0]
	if serverEv.Trace != client.Context().Trace {
		t.Errorf("server span trace %d, want client trace %d", serverEv.Trace, client.Context().Trace)
	}
	if serverEv.Parent != client.Context().Span {
		t.Errorf("server span parent %d, want client span %d", serverEv.Parent, client.Context().Span)
	}
}

func TestNewSpanContext(t *testing.T) {
	a := NewSpanContext(0)
	if a.Trace == 0 || a.Span == 0 || a.Trace != a.Span {
		t.Fatalf("fresh root context %+v, want trace named after span", a)
	}
	b := NewSpanContext(a.Trace)
	if b.Trace != a.Trace || b.Span == a.Span || b.Span == 0 {
		t.Fatalf("joined context %+v, want same trace and a fresh span", b)
	}
}
