package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// GaugeValue is a gauge's level and high-watermark at snapshot time.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistogramSummary condenses a histogram: exact count/sum/min/max plus
// bucketed quantile estimates (see Histogram.Quantile).
type HistogramSummary struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
}

// Snapshot is a point-in-time copy of every instrument in a registry. Its
// JSON marshaling is deterministic (encoding/json emits map keys sorted),
// so snapshots of identical runs are goldenable byte for byte.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters"`
	Gauges     map[string]GaugeValue       `json:"gauges"`
	Histograms map[string]HistogramSummary `json:"histograms"`
	// FloatGauges and Windows cover the rolling-window instruments; both
	// are omitted when no windowed instrument exists so snapshots of
	// registries without them stay byte-identical to earlier releases.
	FloatGauges map[string]float64       `json:"float_gauges,omitempty"`
	Windows     map[string]WindowSummary `json:"windows,omitempty"`
}

// Snapshot copies every instrument's current value. Instruments mutated
// concurrently are read atomically one by one; the snapshot is consistent
// per instrument, not across instruments.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:    make(map[string]int64, len(r.counters)+len(r.winCounters)),
		Gauges:      make(map[string]GaugeValue, len(r.gauges)),
		Histograms:  make(map[string]HistogramSummary, len(r.hists)+len(r.winHists)),
		FloatGauges: make(map[string]float64, len(r.fgauges)),
		Windows:     make(map[string]WindowSummary, len(r.winHists)+len(r.winCounters)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeValue{Value: g.Value(), Max: g.Max()}
	}
	for name, g := range r.fgauges {
		s.FloatGauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Summary()
	}
	// Windowed instruments contribute their lifetime view to the ordinary
	// sections and their rolling view to Windows, so one snapshot carries
	// both "since boot" and "right now".
	for name, h := range r.winHists {
		s.Histograms[name] = h.Lifetime().Summary()
		s.Windows[name] = h.WindowSummary(0)
	}
	for name, c := range r.winCounters {
		s.Counters[name] = c.Value()
		s.Windows[name] = c.win.summarize(0)
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON followed by a newline.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// String renders the snapshot as sorted "name value" lines for logs and
// golden tests.
func (s *Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "counter %s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := s.Gauges[name]
		fmt.Fprintf(&b, "gauge %s %d max %d\n", name, g.Value, g.Max)
	}
	names = names[:0]
	for name := range s.FloatGauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "fgauge %s %g\n", name, s.FloatGauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "hist %s count %d sum %d min %d max %d p50 %d p95 %d\n",
			name, h.Count, h.Sum, h.Min, h.Max, h.P50, h.P95)
	}
	return b.String()
}

// Merge folds other into s, series by series: counters and histogram
// count/sum add, gauge values add while high-watermarks and histogram
// min/max widen, and histogram quantiles take the per-source maximum —
// a provable upper bound for the union (at most 5% of each source sits
// above its own p95, so at most 5% of the union sits above the largest).
// Float gauges and rolling windows are process-local views and are not
// merged; s keeps its own. The distributed coordinator uses Merge to
// fold worker snapshots into one corpus-wide view.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	if s.Gauges == nil {
		s.Gauges = map[string]GaugeValue{}
	}
	for name, g := range other.Gauges {
		cur := s.Gauges[name]
		cur.Value += g.Value
		if g.Max > cur.Max {
			cur.Max = g.Max
		}
		s.Gauges[name] = cur
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSummary{}
	}
	for name, h := range other.Histograms {
		cur, ok := s.Histograms[name]
		if !ok {
			s.Histograms[name] = h
			continue
		}
		cur.Count += h.Count
		cur.Sum += h.Sum
		if h.Min < cur.Min {
			cur.Min = h.Min
		}
		if h.Max > cur.Max {
			cur.Max = h.Max
		}
		if h.P50 > cur.P50 {
			cur.P50 = h.P50
		}
		if h.P95 > cur.P95 {
			cur.P95 = h.P95
		}
		s.Histograms[name] = cur
	}
}
