package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// GaugeValue is a gauge's level and high-watermark at snapshot time.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistogramSummary condenses a histogram: exact count/sum/min/max plus
// bucketed quantile estimates (see Histogram.Quantile).
type HistogramSummary struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
}

// Snapshot is a point-in-time copy of every instrument in a registry. Its
// JSON marshaling is deterministic (encoding/json emits map keys sorted),
// so snapshots of identical runs are goldenable byte for byte.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters"`
	Gauges     map[string]GaugeValue       `json:"gauges"`
	Histograms map[string]HistogramSummary `json:"histograms"`
	// FloatGauges and Windows cover the rolling-window instruments; both
	// are omitted when no windowed instrument exists so snapshots of
	// registries without them stay byte-identical to earlier releases.
	FloatGauges map[string]float64       `json:"float_gauges,omitempty"`
	Windows     map[string]WindowSummary `json:"windows,omitempty"`
	// SpanRanges lists the span-ID slices of every process folded into
	// this snapshot (see StampSpanRange). Merge refuses overlapping
	// ranges: two processes emitting the same span IDs into one trace
	// would silently alias spans in the merged trace files. Omitted for
	// plain single-process snapshots.
	SpanRanges []SpanRange `json:"span_ranges,omitempty"`
}

// SpanRange is the half-open span-ID slice (From, To] one process
// allocated from, labelled with the process's identity.
type SpanRange struct {
	Owner string `json:"owner"`
	From  uint64 `json:"from"`
	To    uint64 `json:"to"`
}

// overlaps reports whether two half-open ranges (From, To] intersect.
func (r SpanRange) overlaps(o SpanRange) bool {
	return r.From < o.To && o.From < r.To
}

// StampSpanRange records this process's allocated span-ID range into the
// snapshot under the given owner label. Distributed workers stamp their
// final snapshot before posting it, so the coordinator's Merge can prove
// the per-worker ID ranges were disjoint (or surface the collision).
// A process that allocated no span IDs stamps nothing.
func (s *Snapshot) StampSpanRange(owner string) {
	from, to := SpanIDRange()
	if to <= from {
		return
	}
	s.SpanRanges = append(s.SpanRanges, SpanRange{Owner: owner, From: from, To: to})
}

// Snapshot copies every instrument's current value. Instruments mutated
// concurrently are read atomically one by one; the snapshot is consistent
// per instrument, not across instruments.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:    make(map[string]int64, len(r.counters)+len(r.winCounters)),
		Gauges:      make(map[string]GaugeValue, len(r.gauges)),
		Histograms:  make(map[string]HistogramSummary, len(r.hists)+len(r.winHists)),
		FloatGauges: make(map[string]float64, len(r.fgauges)),
		Windows:     make(map[string]WindowSummary, len(r.winHists)+len(r.winCounters)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeValue{Value: g.Value(), Max: g.Max()}
	}
	for name, g := range r.fgauges {
		s.FloatGauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Summary()
	}
	// Windowed instruments contribute their lifetime view to the ordinary
	// sections and their rolling view to Windows, so one snapshot carries
	// both "since boot" and "right now".
	for name, h := range r.winHists {
		s.Histograms[name] = h.Lifetime().Summary()
		s.Windows[name] = h.WindowSummary(0)
	}
	for name, c := range r.winCounters {
		s.Counters[name] = c.Value()
		s.Windows[name] = c.win.summarize(0)
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON followed by a newline.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// String renders the snapshot as sorted "name value" lines for logs and
// golden tests.
func (s *Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "counter %s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := s.Gauges[name]
		fmt.Fprintf(&b, "gauge %s %d max %d\n", name, g.Value, g.Max)
	}
	names = names[:0]
	for name := range s.FloatGauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "fgauge %s %g\n", name, s.FloatGauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "hist %s count %d sum %d min %d max %d p50 %d p95 %d\n",
			name, h.Count, h.Sum, h.Min, h.Max, h.P50, h.P95)
	}
	return b.String()
}

// Merge folds other into s, series by series: counters and histogram
// count/sum add, gauge values add while high-watermarks and histogram
// min/max widen, and histogram quantiles take the per-source maximum —
// a provable upper bound for the union (at most 5% of each source sits
// above its own p95, so at most 5% of the union sits above the largest).
// Float gauges and rolling windows are process-local views and are not
// merged; s keeps its own. The distributed coordinator uses Merge to
// fold worker snapshots into one corpus-wide view.
//
// Span-ID ranges accumulate rather than add. A range of other's that
// overlaps one already present makes Merge return an error naming both
// owners — the two processes allocated from the same span-ID slice, so
// their merged trace files may alias spans. The numeric fold still
// completes (counters must not be lost to an observability defect); the
// error is a signal to surface, not a rollback.
func (s *Snapshot) Merge(other *Snapshot) error {
	if other == nil {
		return nil
	}
	var err error
	for _, r := range other.SpanRanges {
		for _, have := range s.SpanRanges {
			if r.overlaps(have) && err == nil {
				err = fmt.Errorf(
					"telemetry: span-ID range collision: %s (%d,%d] overlaps %s (%d,%d]",
					r.Owner, r.From, r.To, have.Owner, have.From, have.To)
			}
		}
		s.SpanRanges = append(s.SpanRanges, r)
	}
	sort.Slice(s.SpanRanges, func(i, j int) bool {
		if s.SpanRanges[i].From != s.SpanRanges[j].From {
			return s.SpanRanges[i].From < s.SpanRanges[j].From
		}
		return s.SpanRanges[i].Owner < s.SpanRanges[j].Owner
	})
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	if s.Gauges == nil {
		s.Gauges = map[string]GaugeValue{}
	}
	for name, g := range other.Gauges {
		cur := s.Gauges[name]
		cur.Value += g.Value
		if g.Max > cur.Max {
			cur.Max = g.Max
		}
		s.Gauges[name] = cur
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSummary{}
	}
	for name, h := range other.Histograms {
		cur, ok := s.Histograms[name]
		if !ok {
			s.Histograms[name] = h
			continue
		}
		cur.Count += h.Count
		cur.Sum += h.Sum
		if h.Min < cur.Min {
			cur.Min = h.Min
		}
		if h.Max > cur.Max {
			cur.Max = h.Max
		}
		if h.P50 > cur.P50 {
			cur.P50 = h.P50
		}
		if h.P95 > cur.P95 {
			cur.P95 = h.P95
		}
		s.Histograms[name] = cur
	}
	return err
}
