package telemetry

import (
	"strings"
	"testing"
)

func TestSnapshotMerge(t *testing.T) {
	a := &Snapshot{
		Counters:   map[string]int64{"jobs": 3, "only_a": 1},
		Gauges:     map[string]GaugeValue{"occ": {Value: 2, Max: 5}},
		Histograms: map[string]HistogramSummary{"lat": {Count: 10, Sum: 100, Min: 2, Max: 30, P50: 8, P95: 25}},
	}
	b := &Snapshot{
		Counters:   map[string]int64{"jobs": 4, "only_b": 7},
		Gauges:     map[string]GaugeValue{"occ": {Value: 1, Max: 9}},
		Histograms: map[string]HistogramSummary{"lat": {Count: 5, Sum: 80, Min: 1, Max: 60, P50: 12, P95: 20}, "fresh": {Count: 1, Sum: 3, Min: 3, Max: 3, P50: 3, P95: 3}},
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Counters["jobs"] != 7 || a.Counters["only_a"] != 1 || a.Counters["only_b"] != 7 {
		t.Fatalf("counters merged wrong: %+v", a.Counters)
	}
	if g := a.Gauges["occ"]; g.Value != 3 || g.Max != 9 {
		t.Fatalf("gauge merged wrong: %+v", g)
	}
	h := a.Histograms["lat"]
	if h.Count != 15 || h.Sum != 180 || h.Min != 1 || h.Max != 60 || h.P50 != 12 || h.P95 != 25 {
		t.Fatalf("histogram merged wrong: %+v", h)
	}
	if f := a.Histograms["fresh"]; f.Count != 1 {
		t.Fatalf("new histogram not adopted: %+v", f)
	}
	if err := a.Merge(nil); err != nil { // nil other is a no-op
		t.Fatalf("nil merge: %v", err)
	}
	if a.Counters["jobs"] != 7 {
		t.Fatal("nil merge mutated the snapshot")
	}
}

func TestSnapshotMergeSpanRanges(t *testing.T) {
	a := &Snapshot{SpanRanges: []SpanRange{{Owner: "coordinator", From: 0, To: 900}}}
	b := &Snapshot{SpanRanges: []SpanRange{{Owner: "w1", From: 1 << 40, To: 1<<40 + 500}}}
	if err := a.Merge(b); err != nil {
		t.Fatalf("disjoint ranges must merge cleanly: %v", err)
	}
	if len(a.SpanRanges) != 2 {
		t.Fatalf("ranges not accumulated: %+v", a.SpanRanges)
	}
	// A worker that never re-seeded allocates from the same low slice as
	// the coordinator: Merge must surface the aliasing.
	c := &Snapshot{SpanRanges: []SpanRange{{Owner: "w2", From: 100, To: 600}}}
	err := a.Merge(c)
	if err == nil {
		t.Fatal("overlapping span ranges merged without error")
	}
	if got := err.Error(); !strings.Contains(got, "w2") || !strings.Contains(got, "coordinator") {
		t.Fatalf("collision error should name both owners: %v", err)
	}
	if len(a.SpanRanges) != 3 {
		t.Fatalf("colliding range must still be recorded: %+v", a.SpanRanges)
	}
	// Touching endpoints are fine: ranges are half-open (From, To].
	d := &Snapshot{SpanRanges: []SpanRange{{Owner: "w3", From: 900, To: 1000}}}
	if err := a.Merge(d); err != nil {
		t.Fatalf("adjacent ranges are not a collision: %v", err)
	}
}

func TestStampSpanRange(t *testing.T) {
	nextSpanID() // ensure at least one ID is allocated
	s := &Snapshot{}
	s.StampSpanRange("me")
	if len(s.SpanRanges) != 1 {
		t.Fatalf("stamp recorded %d ranges, want 1", len(s.SpanRanges))
	}
	r := s.SpanRanges[0]
	base, last := SpanIDRange()
	if r.Owner != "me" || r.From != base || r.To > last {
		t.Fatalf("stamped range %+v, want owner=me from=%d to<=%d", r, base, last)
	}
}

func TestSeedSpanIDs(t *testing.T) {
	before := spanIDs.Load()
	base := before + 1<<20
	SeedSpanIDs(base)
	if id := nextSpanID(); id <= base {
		t.Fatalf("nextSpanID after seed = %d, want > %d", id, base)
	}
	SeedSpanIDs(1) // backwards seed must not rewind
	if id := nextSpanID(); id <= base {
		t.Fatalf("backwards seed rewound the allocator: %d", id)
	}
}
