package telemetry

import "testing"

func TestSnapshotMerge(t *testing.T) {
	a := &Snapshot{
		Counters:   map[string]int64{"jobs": 3, "only_a": 1},
		Gauges:     map[string]GaugeValue{"occ": {Value: 2, Max: 5}},
		Histograms: map[string]HistogramSummary{"lat": {Count: 10, Sum: 100, Min: 2, Max: 30, P50: 8, P95: 25}},
	}
	b := &Snapshot{
		Counters:   map[string]int64{"jobs": 4, "only_b": 7},
		Gauges:     map[string]GaugeValue{"occ": {Value: 1, Max: 9}},
		Histograms: map[string]HistogramSummary{"lat": {Count: 5, Sum: 80, Min: 1, Max: 60, P50: 12, P95: 20}, "fresh": {Count: 1, Sum: 3, Min: 3, Max: 3, P50: 3, P95: 3}},
	}
	a.Merge(b)
	if a.Counters["jobs"] != 7 || a.Counters["only_a"] != 1 || a.Counters["only_b"] != 7 {
		t.Fatalf("counters merged wrong: %+v", a.Counters)
	}
	if g := a.Gauges["occ"]; g.Value != 3 || g.Max != 9 {
		t.Fatalf("gauge merged wrong: %+v", g)
	}
	h := a.Histograms["lat"]
	if h.Count != 15 || h.Sum != 180 || h.Min != 1 || h.Max != 60 || h.P50 != 12 || h.P95 != 25 {
		t.Fatalf("histogram merged wrong: %+v", h)
	}
	if f := a.Histograms["fresh"]; f.Count != 1 {
		t.Fatalf("new histogram not adopted: %+v", f)
	}
	a.Merge(nil) // nil other is a no-op
	if a.Counters["jobs"] != 7 {
		t.Fatal("nil merge mutated the snapshot")
	}
}

func TestSeedSpanIDs(t *testing.T) {
	before := spanIDs.Load()
	base := before + 1<<20
	SeedSpanIDs(base)
	if id := nextSpanID(); id <= base {
		t.Fatalf("nextSpanID after seed = %d, want > %d", id, base)
	}
	SeedSpanIDs(1) // backwards seed must not rewind
	if id := nextSpanID(); id <= base {
		t.Fatalf("backwards seed rewound the allocator: %d", id)
	}
}
