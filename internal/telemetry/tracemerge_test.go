package telemetry

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// mergeFixture is a synthetic three-process run with fixed times and IDs:
// a coordinator (the clock reference) running one sbeval root with two
// dist.unit spans, and two workers whose engine.job spans parent those
// unit spans across the process boundary. Worker clocks are skewed
// (+2ms and -5ms) and each worker file carries the trace.clock handshake
// instant that lets the merge undo the skew. Times in each process's
// events are LOCAL to that process, exactly as its JSONLSink would have
// written them.
func mergeFixture() []TraceProcess {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) // coordinator clock
	at := func(us int64) time.Time { return base.Add(time.Duration(us) * time.Microsecond) }
	span := func(name string, startUS, endUS int64, sp, parent uint64, attrs ...Attr) Event {
		return Event{Name: name, Time: at(endUS), Dur: time.Duration(endUS-startUS) * time.Microsecond,
			Attrs: attrs, Trace: 7, Span: sp, Parent: parent}
	}
	const w1, w2 = uint64(1) << 40, uint64(2) << 40

	coordinator := []Event{
		span("sbeval", 0, 10000, 1, 0),
		span("dist.unit", 100, 9000, 2, 1, String("unit", "bench1/blk3")),
		span("dist.unit", 150, 8000, 3, 1, String("unit", "bench2/blk9")),
	}
	// worker1's clock runs 2ms AHEAD of the coordinator: local = server + 2ms.
	w1at := func(serverUS int64) time.Time { return at(serverUS + 2000) }
	worker1 := []Event{
		{Name: ClockEventName, Time: w1at(500), Attrs: []Attr{
			String(ClockHostAttr, "127.0.0.1:9000"),
			Int(ClockRemoteAttr, at(500).UnixNano()),
		}},
		{Name: "engine.run", Time: w1at(9500), Dur: 8600 * time.Microsecond,
			Trace: 7, Span: w1 + 1},
		{Name: "engine.job", Time: w1at(4000), Dur: 2800 * time.Microsecond,
			Trace: 7, Span: w1 + 2, Parent: 2,
			Attrs: []Attr{String("dist_unit", "bench1/blk3")}},
		{Name: "exact.progress", Time: w1at(2000),
			Trace: 7, Span: w1 + 3, Parent: w1 + 2,
			Attrs: []Attr{Int("nodes", 4096)}},
	}
	// worker2's clock runs 5ms BEHIND: local = server - 5ms.
	w2at := func(serverUS int64) time.Time { return at(serverUS - 5000) }
	worker2 := []Event{
		{Name: ClockEventName, Time: w2at(600), Attrs: []Attr{
			String(ClockHostAttr, "127.0.0.1:9000"),
			Int(ClockRemoteAttr, at(600).UnixNano()),
		}},
		{Name: "engine.run", Time: w2at(8500), Dur: 7400 * time.Microsecond,
			Trace: 7, Span: w2 + 1},
		{Name: "engine.job", Time: w2at(6000), Dur: 4000 * time.Microsecond,
			Trace: 7, Span: w2 + 2, Parent: 3,
			Attrs: []Attr{String("dist_unit", "bench2/blk9")}},
	}
	return []TraceProcess{
		{Name: "coordinator", Events: coordinator},
		{Name: "worker1", Events: worker1},
		{Name: "worker2", Events: worker2},
	}
}

// jsonlRoundTrip serializes events the way JSONLSink would and parses
// them back, so every merge test also exercises the writer/parser pair.
func jsonlRoundTrip(t *testing.T, events []Event) []Event {
	t.Helper()
	var buf []byte
	for i := range events {
		buf = events[i].appendJSON(buf)
		buf = append(buf, '\n')
	}
	got, err := ParseJSONLTrace(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("ParseJSONLTrace: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip lost events: got %d, want %d", len(got), len(events))
	}
	return got
}

// alignedFixture round-trips each fixture process through JSONL and
// fills in its clock offset, as cmd/sbtrace does with real files.
func alignedFixture(t *testing.T) []TraceProcess {
	t.Helper()
	procs := mergeFixture()
	for i := range procs {
		procs[i].Events = jsonlRoundTrip(t, procs[i].Events)
		off, ok := ClockOffset(procs[i].Events)
		if i == 0 {
			if ok {
				t.Fatalf("coordinator has a clock event; it is the reference")
			}
			continue
		}
		if !ok {
			t.Fatalf("%s: no clock offset found", procs[i].Name)
		}
		procs[i].Offset = off
	}
	return procs
}

func TestClockOffsets(t *testing.T) {
	procs := alignedFixture(t)
	if want := -2 * time.Millisecond; procs[1].Offset != want {
		t.Errorf("worker1 offset %v, want %v", procs[1].Offset, want)
	}
	if want := 5 * time.Millisecond; procs[2].Offset != want {
		t.Errorf("worker2 offset %v, want %v", procs[2].Offset, want)
	}
}

// TestMergedTimelineGolden locks the multi-process render byte-for-byte:
// pid blocks, clock-aligned timestamps on the shared epoch, lane packing
// per process. Regenerate with
//
//	UPDATE_TRACE_GOLDEN=1 go test ./internal/telemetry -run TestMergedTimelineGolden
func TestMergedTimelineGolden(t *testing.T) {
	procs := alignedFixture(t)
	if findings := LintProcesses(procs); len(findings) != 0 {
		t.Fatalf("fixture must lint clean, got: %v", findings)
	}
	got := RenderProcesses(procs)

	const goldenPath = "testdata/tracemerge_golden.json"
	if update() {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("merged timeline drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Reversing each file's line order must not change the render.
	rev := alignedFixture(t)
	for p := range rev {
		ev := rev[p].Events
		for i, j := 0, len(ev)-1; i < j; i, j = i+1, j-1 {
			ev[i], ev[j] = ev[j], ev[i]
		}
	}
	if again := RenderProcesses(rev); !bytes.Equal(got, again) {
		t.Errorf("event order changed the merged render")
	}
}

// TestStatsTextGolden locks the -stats report: span-kind rollups, the
// per-trace critical path crossing the coordinator->worker boundary, and
// the cross-process gap (network + queue time) computed on aligned
// clocks. Regenerate with UPDATE_TRACE_GOLDEN=1.
func TestStatsTextGolden(t *testing.T) {
	got := StatsText(alignedFixture(t))

	// The load-bearing lines, asserted directly so a stale golden cannot
	// hide a computation bug: the critical path descends from the
	// coordinator's root through its longest unit span into the worker's
	// job, and the two cross-process gaps are (1200-100)us and (2000-150)us.
	for _, want := range []string{
		"trace 0000000000000007 spans 7 processes 3 wall 10.000ms critical sbeval > dist.unit > engine.job",
		"dist.unit -> engine.job                  count 2 gap mean 1.475ms max 1.850ms",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("stats missing %q:\n%s", want, got)
		}
	}

	const goldenPath = "testdata/tracemerge_stats_golden.txt"
	if update() {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("stats drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestLintFindings(t *testing.T) {
	kinds := func(fs []LintFinding) []string {
		var out []string
		for _, f := range fs {
			out = append(out, f.Process+"/"+f.Kind)
		}
		return out
	}

	// Dropping the coordinator's file (a SIGKILL'd process leaves a torn
	// file behind) orphans the workers' cross-process parents.
	orphaned := alignedFixture(t)[1:]
	fs := LintProcesses(orphaned)
	if got := kinds(fs); len(got) != 2 || got[0] != "worker1/orphan-parent" || got[1] != "worker2/orphan-parent" {
		t.Errorf("dropped-file lint = %v, want two orphan-parent findings", fs)
	}

	// A worker that re-used another's span-ID range aliases its spans.
	collided := alignedFixture(t)
	dup := collided[1].Events[2] // worker1's engine.job
	collided[2].Events = append(collided[2].Events, dup)
	fs = LintProcesses(collided)
	if got := kinds(fs); len(got) != 1 || got[0] != "worker2/span-collision" {
		t.Errorf("collision lint = %v, want one worker2 span-collision", fs)
	}

	// Negative durations and children starting before their same-process
	// parent are clock bugs worth flagging.
	broken := alignedFixture(t)
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	broken[0].Events = append(broken[0].Events,
		Event{Name: "bad.dur", Time: base, Dur: -5 * time.Microsecond, Trace: 7, Span: 90},
		Event{Name: "early.child", Time: base.Add(100 * time.Microsecond),
			Dur: 600 * time.Microsecond, Trace: 7, Span: 91, Parent: 1}, // starts 500us before span 1
	)
	fs = LintProcesses(broken)
	if got := kinds(fs); len(got) != 2 || got[0] != "coordinator/negative-duration" || got[1] != "coordinator/non-monotone" {
		t.Errorf("broken-clock lint = %v, want negative-duration + non-monotone", fs)
	}
}

func TestParseJSONLTraceErrors(t *testing.T) {
	if _, err := ParseJSONLTrace(strings.NewReader("{\"name\":\"a\",\"ts\":\"2026-01-02T03:04:05Z\"}\nnot json\n")); err == nil {
		t.Error("malformed line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name the line: %v", err)
	}
	if _, err := ParseJSONLTrace(strings.NewReader("{\"name\":\"a\",\"ts\":\"yesterday\"}\n")); err == nil {
		t.Error("bad timestamp accepted")
	}
	ev, err := ParseJSONLTrace(strings.NewReader("\n\n"))
	if err != nil || len(ev) != 0 {
		t.Errorf("blank lines: events %v err %v", ev, err)
	}
}

// TestConcurrentMultiWriterMerge is the end-to-end multi-writer check:
// two registries (standing in for two processes) write JSONL trace
// streams concurrently while sharing one trace via SB-Trace header
// propagation. The merged result must parse, lint clean (the process-
// global span allocator guarantees disjoint IDs), and render
// deterministically.
func TestConcurrentMultiWriterMerge(t *testing.T) {
	var bufA, bufB bytes.Buffer
	regA, regB := NewRegistry(), NewRegistry()
	regA.SetSink(NewJSONLSink(&bufA))
	regB.SetSink(NewJSONLSink(&bufB))

	root, ctx := regA.StartSpanCtx(context.Background(), "sbload")
	header := root.Context().Header()

	const workers, per = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(2)
		go func() { // "client process" spans
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp, sctx := regA.StartSpanCtx(ctx, "sbload.request")
				regA.EmitCtx(sctx, "wire.retry", Int("attempt", int64(i)))
				sp.End(Int("worker", int64(w)))
			}
		}()
		go func() { // "server process": joined only through the header
			defer wg.Done()
			sc, ok := ParseTraceHeader(header)
			if !ok {
				t.Error("server rejected propagated header")
				return
			}
			jctx := ContextWithSpan(context.Background(), sc)
			for i := 0; i < per; i++ {
				sp, _ := regB.StartSpanCtx(jctx, "service.request")
				sp.End(String("endpoint", fmt.Sprintf("/v1/x%d", w)))
			}
		}()
	}
	wg.Wait()
	root.End()
	regA.SetSink(nil)
	regB.SetSink(nil)

	evA, err := ParseJSONLTrace(bytes.NewReader(bufA.Bytes()))
	if err != nil {
		t.Fatalf("parse A: %v", err)
	}
	evB, err := ParseJSONLTrace(bytes.NewReader(bufB.Bytes()))
	if err != nil {
		t.Fatalf("parse B: %v", err)
	}
	if len(evA) != workers*per*2+1 || len(evB) != workers*per {
		t.Fatalf("event counts: A %d B %d, want %d and %d", len(evA), len(evB), workers*per*2+1, workers*per)
	}
	procs := []TraceProcess{{Name: "a", Events: evA}, {Name: "b", Events: evB}}
	if findings := LintProcesses(procs); len(findings) != 0 {
		t.Fatalf("concurrent merge must lint clean, got %d findings, first: %v", len(findings), findings[0])
	}
	for i := range evB {
		if evB[i].Trace != root.Context().Trace || evB[i].Parent != root.Context().Span {
			t.Fatalf("server span %d not joined under the propagated root: %+v", i, evB[i])
		}
	}

	// Determinism: rendering the merge with each file's lines reversed
	// must produce identical bytes.
	first := RenderProcesses(procs)
	for p := range procs {
		ev := procs[p].Events
		for i, j := 0, len(ev)-1; i < j; i, j = i+1, j-1 {
			ev[i], ev[j] = ev[j], ev[i]
		}
	}
	if again := RenderProcesses(procs); !bytes.Equal(first, again) {
		t.Error("merged render depends on file line order")
	}
}
