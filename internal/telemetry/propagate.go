package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// Cross-process trace propagation.
//
// A span context travels between processes as a W3C-traceparent-style
// header: `SB-Trace: 00-<16 hex trace>-<16 hex span>`. The version field
// is fixed at "00" for now; parsers reject other versions so a future
// format change cannot be half-understood. The span field may be zero:
// that means "join this trace as a new subtree root" — distributed
// workers use it to stitch their whole evaluation under the
// coordinator's trace without inventing a fake parent span.
//
// The companion `SB-Time` response header (see internal/wire) carries
// the server's clock as Unix nanoseconds, which sbtrace uses to align
// per-process trace files onto one timeline.

// TraceHeader is the HTTP header carrying a SpanContext between
// processes.
const TraceHeader = "SB-Trace"

// TimeHeader is the HTTP response header carrying the server's clock as
// Unix nanoseconds, for cross-process clock alignment.
const TimeHeader = "SB-Time"

// traceHeaderVersion is the only version this code emits or accepts.
const traceHeaderVersion = "00"

// Header renders the span context in SB-Trace wire form.
func (sc SpanContext) Header() string {
	return fmt.Sprintf("%s-%016x-%016x", traceHeaderVersion, sc.Trace, sc.Span)
}

// ParseTraceHeader parses an SB-Trace header value. It returns ok=false
// for anything malformed — wrong version, wrong field widths, non-hex
// digits, or a zero trace ID — so callers fall back to starting a fresh
// root instead of propagating garbage.
func ParseTraceHeader(s string) (SpanContext, bool) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 || parts[0] != traceHeaderVersion {
		return SpanContext{}, false
	}
	if len(parts[1]) != 16 || len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	trace, err := strconv.ParseUint(parts[1], 16, 64)
	if err != nil || trace == 0 {
		return SpanContext{}, false
	}
	span, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	return SpanContext{Trace: trace, Span: span}, true
}

// NewSpanContext allocates a real span identity without emitting any
// event, even when no sink is installed. Clients that do not record
// their own spans (a bare sbload run) use it to mint the identity they
// inject via TraceHeader, so the server-side spans, exemplars, and
// access logs still share one resolvable trace ID. A zero trace starts
// a new trace named after the allocated span.
func NewSpanContext(trace uint64) SpanContext {
	sc := SpanContext{Trace: trace, Span: nextSpanID()}
	if sc.Trace == 0 {
		sc.Trace = sc.Span
	}
	return sc
}
