package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// promGoldenRegistry assembles a registry with every instrument kind in a
// deterministic state: fixed fake clock, directly stored exemplar (so no
// wall-clock timestamp leaks into the exposition).
func promGoldenRegistry() *Registry {
	clk := &fakeClock{}
	clk.ns.Store(int64(time.Hour) + int64(2500*time.Millisecond))

	r := NewRegistry()
	r.Counter("sched.calls").Add(7)
	r.Gauge("pool.workers").Set(3)
	r.FloatGauge("slo.ok").Set(0.5)
	h := r.Histogram("solve.ns")
	h.Observe(1)
	h.Observe(5)
	h.Observe(5)

	wh := NewWindowedHistogram(4, 5*time.Second, clk.now)
	wh.Observe(100)
	wh.Observe(1000)
	wh.exemplars[bucketOf(1000)].Store(&Exemplar{
		Value: 1000, Trace: 0xabc, Time: time.Unix(1700000000, 0),
	})
	wc := NewWindowedCounter(4, 5*time.Second, clk.now)
	wc.Add(4)

	r.mu.Lock()
	r.winHists["service.request_ns"] = wh
	r.winCounters["service.requests"] = wc
	r.mu.Unlock()
	return r
}

const promGolden = `# HELP pool_workers live level of pool.workers
# TYPE pool_workers gauge
pool_workers 3
# HELP pool_workers_max high-watermark of pool.workers
# TYPE pool_workers_max gauge
pool_workers_max 3
# HELP sched_calls cumulative count of sched.calls
# TYPE sched_calls counter
sched_calls_total 7
# HELP service_request_ns log-bucket histogram of service.request_ns
# TYPE service_request_ns histogram
service_request_ns_bucket{le="0"} 0
service_request_ns_bucket{le="1"} 0
service_request_ns_bucket{le="3"} 0
service_request_ns_bucket{le="7"} 0
service_request_ns_bucket{le="15"} 0
service_request_ns_bucket{le="31"} 0
service_request_ns_bucket{le="63"} 0
service_request_ns_bucket{le="127"} 1
service_request_ns_bucket{le="255"} 1
service_request_ns_bucket{le="511"} 1
service_request_ns_bucket{le="1023"} 2 # {trace_id="0000000000000abc"} 1000 1700000000.000
service_request_ns_bucket{le="+Inf"} 2
service_request_ns_sum 1100
service_request_ns_count 2
# HELP service_request_ns_window_count observation count of service.request_ns over the rolling 20s window
# TYPE service_request_ns_window_count gauge
service_request_ns_window_count 2
# HELP service_request_ns_window_p50 p50 of service.request_ns over the rolling 20s window
# TYPE service_request_ns_window_p50 gauge
service_request_ns_window_p50 127
# HELP service_request_ns_window_p95 p95 of service.request_ns over the rolling 20s window
# TYPE service_request_ns_window_p95 gauge
service_request_ns_window_p95 1023
# HELP service_request_ns_window_p99 p99 of service.request_ns over the rolling 20s window
# TYPE service_request_ns_window_p99 gauge
service_request_ns_window_p99 1023
# HELP service_request_ns_window_rate per-second rate of service.request_ns over the rolling 20s window
# TYPE service_request_ns_window_rate gauge
service_request_ns_window_rate 0.8
# HELP service_requests cumulative count of service.requests
# TYPE service_requests counter
service_requests_total 4
# HELP service_requests_window_count count of service.requests over the rolling 20s window
# TYPE service_requests_window_count gauge
service_requests_window_count 4
# HELP service_requests_window_rate per-second rate of service.requests over the rolling 20s window
# TYPE service_requests_window_rate gauge
service_requests_window_rate 1.6
# HELP slo_burn_rate error-budget burn over the rolling window
# TYPE slo_burn_rate gauge
slo_burn_rate{objective="p95<25ms",window="long"} 0.5
slo_burn_rate{objective="q\"n\nv\\s",window="fast"} 2
# HELP slo_ok live level of slo.ok
# TYPE slo_ok gauge
slo_ok 0.5
# HELP solve_ns log-bucket histogram of solve.ns
# TYPE solve_ns histogram
solve_ns_bucket{le="0"} 0
solve_ns_bucket{le="1"} 1
solve_ns_bucket{le="3"} 1
solve_ns_bucket{le="7"} 3
solve_ns_bucket{le="+Inf"} 3
solve_ns_sum 11
solve_ns_count 3
# EOF
`

func goldenWriter() PromWriter {
	return PromWriter{
		Registry: promGoldenRegistry(),
		Extra: func() []PromSeries {
			return []PromSeries{
				{
					Name: "slo_burn_rate",
					Help: "error-budget burn over the rolling window",
					Labels: []PromLabel{
						{Key: "objective", Value: "p95<25ms"}, {Key: "window", Value: "long"},
					},
					Value: 0.5,
				},
				{
					Name: "slo_burn_rate",
					Labels: []PromLabel{
						{Key: "objective", Value: "q\"n\nv\\s"}, {Key: "window", Value: "fast"},
					},
					Value: 2,
				},
			}
		},
	}
}

// TestPromWriterGolden pins the exposition byte for byte: family sort
// order, deterministic le bounds, escaped label values, exemplar syntax.
func TestPromWriterGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenWriter().Write(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != promGolden {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, promGolden)
	}
}

// TestPromWriterSelfLints runs the structural linter over the writer's own
// output — the same check CI applies to a live scrape.
func TestPromWriterSelfLints(t *testing.T) {
	var b strings.Builder
	if err := goldenWriter().Write(&b); err != nil {
		t.Fatal(err)
	}
	for _, err := range LintExposition([]byte(b.String())) {
		t.Errorf("lint: %v", err)
	}
}

func TestPromHandlerContentType(t *testing.T) {
	rec := httptest.NewRecorder()
	PromWriter{Registry: NewRegistry()}.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	if !strings.HasSuffix(rec.Body.String(), "# EOF\n") {
		t.Errorf("body does not terminate with # EOF:\n%s", rec.Body.String())
	}
}

func TestParseExposition(t *testing.T) {
	pts, errs := ParseExposition([]byte(promGolden))
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	byKey := map[string]PromPoint{}
	for _, p := range pts {
		byKey[p.Key()] = p
	}
	if p := byKey["sched_calls_total"]; p.Value != 7 {
		t.Errorf("sched_calls_total = %+v, want 7", p)
	}
	p, ok := byKey[`service_request_ns_bucket{le="1023"}`]
	if !ok || p.Value != 2 {
		t.Fatalf("bucket le=1023 = %+v", p)
	}
	if !strings.Contains(p.Exemplar, `trace_id="0000000000000abc"`) {
		t.Errorf("exemplar not captured: %q", p.Exemplar)
	}
	if p := byKey[`slo_burn_rate{objective="q\"n\nv\\s",window="fast"}`]; p.Value != 2 {
		t.Errorf("escaped label round-trip failed: %+v (keys: %v)", p, len(byKey))
	}
}

func TestLintCatchesMalformed(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of at least one error
	}{
		{"no-type", "foo_total 1\n# EOF\n", "no # TYPE"},
		{"no-eof", "# TYPE foo counter\nfoo_total 1\n", "# EOF"},
		{"counter-suffix", "# TYPE foo counter\nfoo 1\n# EOF\n", "_total suffix"},
		{"negative-counter", "# TYPE foo counter\nfoo_total -1\n# EOF\n", "negative"},
		{"dup-series", "# TYPE foo gauge\nfoo 1\nfoo 2\n# EOF\n", "duplicate series"},
		{"dup-family", "# TYPE foo gauge\n# TYPE foo gauge\nfoo 1\n# EOF\n", "already declared"},
		{"bad-name", "# TYPE foo gauge\nfoo 1\nbad-name 2\n# EOF\n", "naming conventions"},
		{
			"non-cumulative",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 4\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n# EOF\n",
			"not cumulative",
		},
		{
			"le-out-of-order",
			"# TYPE h histogram\nh_bucket{le=\"3\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n# EOF\n",
			"out of order",
		},
		{
			"missing-inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n# EOF\n",
			"+Inf",
		},
		{
			"inf-count-mismatch",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n# EOF\n",
			"!= _count",
		},
		{
			"missing-sum",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n# EOF\n",
			"missing _sum",
		},
		{
			"bad-exemplar",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"x\" 9\nh_sum 1\nh_count 1\n# EOF\n",
			"exemplar",
		},
	}
	for _, tc := range cases {
		errs := LintExposition([]byte(tc.body))
		found := false
		for _, err := range errs {
			if strings.Contains(err.Error(), tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no error containing %q in %v", tc.name, tc.want, errs)
		}
	}
}

func TestLintAcceptsWellFormed(t *testing.T) {
	body := "# TYPE ok gauge\nok{a=\"1\"} 1\nok{a=\"2\"} 2\n" +
		"# TYPE c counter\nc_total 3\n# EOF\n"
	if errs := LintExposition([]byte(body)); len(errs) != 0 {
		t.Errorf("well-formed body flagged: %v", errs)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"service.request_ns": "service_request_ns",
		"9lives":             "_9lives",
		"a-b c":              "a_b_c",
		"ns:rule":            "ns:rule",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := sanitizeLabelName("ns:rule"); got != "ns_rule" {
		t.Errorf("sanitizeLabelName(ns:rule) = %q, want ns_rule (no colons in labels)", got)
	}
}
