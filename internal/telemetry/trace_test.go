package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// TestStartSpanCtxParentage verifies the causal links: a root span names
// its own trace, children inherit it and point at their parent, and
// instants emitted through a context land under the enclosing span.
func TestStartSpanCtxParentage(t *testing.T) {
	r := NewRegistry()
	sink := &captureSink{}
	r.SetSink(sink)

	root, ctx := r.StartSpanCtx(context.Background(), "engine.run")
	if !root.Active() {
		t.Fatal("root span inactive with a sink installed")
	}
	child, cctx := r.StartSpanCtx(ctx, "engine.job")
	r.EmitCtx(cctx, "bounds.degraded", Int("level", 1))
	child.End()
	root.End()

	if len(sink.events) != 3 {
		t.Fatalf("sink got %d events, want 3", len(sink.events))
	}
	instant, childEv, rootEv := sink.events[0], sink.events[1], sink.events[2]
	if rootEv.Trace == 0 || rootEv.Trace != rootEv.Span {
		t.Errorf("root: trace %d span %d, want trace named after root span", rootEv.Trace, rootEv.Span)
	}
	if rootEv.Parent != 0 {
		t.Errorf("root has parent %d, want 0", rootEv.Parent)
	}
	if childEv.Trace != rootEv.Trace || childEv.Parent != rootEv.Span {
		t.Errorf("child: trace %d parent %d, want trace %d parent %d",
			childEv.Trace, childEv.Parent, rootEv.Trace, rootEv.Span)
	}
	if instant.Trace != rootEv.Trace || instant.Parent != childEv.Span {
		t.Errorf("instant: trace %d parent %d, want trace %d parent %d",
			instant.Trace, instant.Parent, rootEv.Trace, childEv.Span)
	}
	if instant.Span == 0 || instant.Span == childEv.Span {
		t.Errorf("instant span %d must be fresh", instant.Span)
	}

	// Span.Context parents work started outside the ctx flow (EmitSpan).
	r.EmitSpan(child.Context(), "exact.progress", Int("nodes", 7))
	late := sink.events[len(sink.events)-1]
	if late.Parent != childEv.Span || late.Trace != rootEv.Trace {
		t.Errorf("EmitSpan event: trace %d parent %d, want trace %d parent %d",
			late.Trace, late.Parent, rootEv.Trace, childEv.Span)
	}
}

// traceFixture is a synthetic span forest with fixed times and IDs: a
// root, two concurrent jobs (the second must open a new lane), a nested
// bound computation with an instant marker, and one untraced stray.
func traceFixture() []Event {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	at := func(us int64) time.Time { return base.Add(time.Duration(us) * time.Microsecond) }
	span := func(name string, startUS, endUS int64, sp, parent uint64, attrs ...Attr) Event {
		return Event{Name: name, Time: at(endUS), Dur: time.Duration(endUS-startUS) * time.Microsecond,
			Attrs: attrs, Trace: 1, Span: sp, Parent: parent}
	}
	return []Event{
		span("engine.run", 0, 100, 1, 0, Int("jobs", 2)),
		{Name: "stray", Time: at(5)}, // untraced: lane 0
		span("engine.job", 10, 60, 2, 1),
		span("bounds.compute", 15, 40, 4, 2, String("sb", "blk1")),
		{Name: "bounds.kernel", Time: at(18), Trace: 1, Span: 5, Parent: 4,
			Attrs: []Attr{Int("reuse", 1)}},
		span("engine.job", 20, 70, 3, 1), // concurrent with span 2: new lane
	}
}

// TestTraceEventGolden locks the exporter output byte-for-byte: sort
// order, lane (tid) packing, microsecond timestamps, and args field
// order. Regenerate with
//
//	UPDATE_TRACE_GOLDEN=1 go test ./internal/telemetry -run TestTraceEventGolden
func TestTraceEventGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewTraceEventSink(&buf)
	for _, e := range traceFixture() {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v\n%s", err, got)
	}
	if len(doc.TraceEvents) != 4+len(traceFixture()) { // process + 3 thread metadata
		t.Errorf("got %d trace events, want %d", len(doc.TraceEvents), 4+len(traceFixture()))
	}

	const goldenPath = "testdata/trace_golden.json"
	if update() {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace-event output drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func update() bool { return os.Getenv("UPDATE_TRACE_GOLDEN") == "1" }

// TestTraceEventDeterministic feeds the fixture in reverse emission
// order: the rendered document must not change, since lane packing and
// ordering depend only on event times and span IDs.
func TestTraceEventDeterministic(t *testing.T) {
	render := func(events []Event) []byte {
		var buf bytes.Buffer
		s := NewTraceEventSink(&buf)
		for _, e := range events {
			s.Emit(e)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fwd := render(traceFixture())
	rev := traceFixture()
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if got := render(rev); !bytes.Equal(fwd, got) {
		t.Errorf("emission order changed the rendered trace:\n--- forward ---\n%s\n--- reversed ---\n%s", fwd, got)
	}
}

// TestTraceEventLanes pins the goroutine-simulation lane packing on the
// fixture: nested spans share their parent's lane, the concurrent second
// job opens a new one, instants ride their parent's lane, and untraced
// events collect on lane 0.
func TestTraceEventLanes(t *testing.T) {
	var buf bytes.Buffer
	s := NewTraceEventSink(&buf)
	for _, e := range traceFixture() {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  float64 `json:"tid"`
			Args struct {
				Span uint64 `json:"span"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	tidOf := map[uint64]float64{}
	var strayTid float64 = -1
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Name == "stray" {
			strayTid = e.Tid
			continue
		}
		tidOf[e.Args.Span] = e.Tid
	}
	if strayTid != 0 {
		t.Errorf("untraced event on tid %v, want 0", strayTid)
	}
	for _, same := range [][2]uint64{{1, 2}, {2, 4}, {4, 5}} {
		if tidOf[same[0]] != tidOf[same[1]] {
			t.Errorf("spans %d and %d on tids %v and %v, want same lane",
				same[0], same[1], tidOf[same[0]], tidOf[same[1]])
		}
	}
	if tidOf[3] == tidOf[2] {
		t.Errorf("concurrent jobs share tid %v, want distinct lanes", tidOf[3])
	}
}

// TestJSONLSinkConcurrent hammers one shared JSONL sink from many
// goroutines: under -race this is the data-race assertion, and afterwards
// every output line must still parse as one complete JSON object (no
// torn or interleaved lines).
func TestJSONLSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	r.SetSink(NewJSONLSink(&buf))

	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < per; i++ {
				sp, sctx := r.StartSpanCtx(ctx, "engine.job")
				r.EmitCtx(sctx, "exact.progress", Int("worker", int64(w)), Int("i", int64(i)))
				sp.End(String("sb", fmt.Sprintf("blk%d", w)), Int("i", int64(i)))
			}
		}()
	}
	wg.Wait()
	r.SetSink(nil)

	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lines := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("torn line %d: %v\n%s", lines, err, sc.Text())
		}
		if m["name"] != "engine.job" && m["name"] != "exact.progress" {
			t.Fatalf("line %d: unexpected name %v", lines, m["name"])
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := workers * per * 2; lines != want {
		t.Errorf("got %d JSON lines, want %d", lines, want)
	}
}
