package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition, dependency-free.
//
// PromWriter renders a Registry in the OpenMetrics-flavoured text format:
// counters as <name>_total, gauges as <name> (+ <name>_max for the
// high-watermark), histograms as cumulative <name>_bucket/_sum/_count
// with power-of-two `le` bounds matching the log-bucket layout of
// Histogram, and rolling-window instruments additionally as
// <name>_window_{rate,count,p50,p95,p99} gauges. Trace-ID exemplars
// captured by WindowedHistogram.ObserveTrace are attached to the tail
// buckets in OpenMetrics exemplar syntax, so a slow bucket links straight
// into the Perfetto span tree.
//
// Output is deterministic for a fixed registry state: families sort by
// metric name, series within a family emit in a fixed order, and label
// values are escaped — all golden-tested, and checked structurally by
// LintExposition (which CI also runs against the live /metrics of a
// soaking sbserve).

// PromLabel is one label pair on an injected series.
type PromLabel struct{ Key, Value string }

// PromSeries is one externally computed sample for PromWriter.Extra —
// the hook services use to publish labelled series (e.g. slo_burn_rate
// per objective and window) that have no registry instrument behind them.
type PromSeries struct {
	// Name is the family name (sanitized by the writer).
	Name   string
	Labels []PromLabel
	Value  float64
	// Type is the family TYPE ("gauge" when empty).
	Type string
	// Help is the family HELP text (optional).
	Help string
}

// PromWriter renders a registry (plus optional extra series) as
// Prometheus/OpenMetrics text.
type PromWriter struct {
	// Registry is the instrument source (nil: Default()).
	Registry *Registry
	// Extra, when non-nil, is called per Write for series computed outside
	// the registry. Series sharing a Name form one family and keep their
	// given order.
	Extra func() []PromSeries
}

// ContentType is the value /metrics responses carry. The exposition uses
// OpenMetrics syntax (exemplars, terminating # EOF) but stays parseable
// by classic Prometheus text-format consumers that ignore comments.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// promFamily is one metric family being assembled for output.
type promFamily struct {
	name  string
	typ   string
	help  string
	lines []string
}

// Write renders the exposition to w.
func (pw PromWriter) Write(w io.Writer) error {
	r := pw.Registry
	if r == nil {
		r = Default()
	}

	// Snapshot the instrument maps under the registry lock, then render
	// outside it (instrument reads are atomic).
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	fgauges := make(map[string]*FloatGauge, len(r.fgauges))
	for k, v := range r.fgauges {
		fgauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	winHists := make(map[string]*WindowedHistogram, len(r.winHists))
	for k, v := range r.winHists {
		winHists[k] = v
	}
	winCounters := make(map[string]*WindowedCounter, len(r.winCounters))
	for k, v := range r.winCounters {
		winCounters[k] = v
	}
	r.mu.Unlock()

	var fams []promFamily
	for name, c := range counters {
		fams = append(fams, counterFamily(name, c.Value()))
	}
	for name, c := range winCounters {
		fams = append(fams, counterFamily(name, c.Value()))
		fams = append(fams, windowCounterFamilies(name, c)...)
	}
	for name, g := range gauges {
		n := sanitizeMetricName(name)
		fams = append(fams,
			promFamily{name: n, typ: "gauge", help: "live level of " + name,
				lines: []string{n + " " + formatInt(g.Value())}},
			promFamily{name: n + "_max", typ: "gauge", help: "high-watermark of " + name,
				lines: []string{n + "_max " + formatInt(g.Max())}})
	}
	for name, g := range fgauges {
		n := sanitizeMetricName(name)
		fams = append(fams, promFamily{name: n, typ: "gauge", help: "live level of " + name,
			lines: []string{n + " " + formatFloat(g.Value())}})
	}
	for name, h := range hists {
		fams = append(fams, histogramFamily(name, h, nil))
	}
	for name, h := range winHists {
		fams = append(fams, histogramFamily(name, h.Lifetime(), h))
		fams = append(fams, windowHistFamilies(name, h)...)
	}
	if pw.Extra != nil {
		fams = append(fams, extraFamilies(pw.Extra())...)
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, line := range f.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the exposition over HTTP (the /metrics endpoint).
func (pw PromWriter) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		pw.Write(w) //nolint:errcheck // the connection owns delivery
	})
}

func counterFamily(name string, v int64) promFamily {
	n := sanitizeMetricName(name)
	return promFamily{name: n, typ: "counter", help: "cumulative count of " + name,
		lines: []string{n + "_total " + formatInt(v)}}
}

// tailExemplarBuckets bounds how many of the highest buckets carry
// exemplars: the tail is where an operator chases outliers, and keeping
// the set small keeps the exposition compact.
const tailExemplarBuckets = 4

// histogramFamily renders the cumulative _bucket/_sum/_count triplet.
// Bucket `le` bounds are the inclusive upper bounds of the log buckets
// (0, 1, 3, 7, ..., 2^i-1, +Inf) up to the bucket holding the observed
// maximum — deterministic for a fixed set of observations. wh, when
// non-nil, supplies tail-bucket exemplars.
func histogramFamily(name string, h *Histogram, wh *WindowedHistogram) promFamily {
	n := sanitizeMetricName(name)
	maxBucket := bucketOf(h.Max())
	// Read the bucket array once; _count is the +Inf cumulative so the
	// triplet is self-consistent even under concurrent observers.
	var counts [numBuckets]int64
	var total int64
	for i := 0; i < numBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	// Pick the tail buckets that carry exemplars: the highest few emitted
	// buckets with a recorded traced observation.
	exemplar := map[int]*Exemplar{}
	if wh != nil {
		for i, picked := maxBucket, 0; i >= 0 && picked < tailExemplarBuckets; i-- {
			if ex := wh.BucketExemplar(i); ex != nil {
				exemplar[i] = ex
				picked++
			}
		}
	}
	f := promFamily{name: n, typ: "histogram", help: "log-bucket histogram of " + name}
	var cum int64
	for i := 0; i <= maxBucket && i < numBuckets; i++ {
		cum += counts[i]
		line := fmt.Sprintf("%s_bucket{le=\"%s\"} %d", n, leBound(i), cum)
		if ex := exemplar[i]; ex != nil {
			line += fmt.Sprintf(" # {trace_id=\"%016x\"} %d %.3f",
				ex.Trace, ex.Value, float64(ex.Time.UnixNano())/1e9)
		}
		f.lines = append(f.lines, line)
	}
	f.lines = append(f.lines,
		fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", n, total),
		fmt.Sprintf("%s_sum %d", n, h.Sum()),
		fmt.Sprintf("%s_count %d", n, total))
	return f
}

// leBound formats bucket i's inclusive upper bound for the le label.
func leBound(i int) string {
	if i >= 64 {
		return "+Inf"
	}
	return strconv.FormatInt(bucketUpper(i), 10)
}

// windowHistFamilies renders a windowed histogram's rolling view as
// gauges: per-second rate, live count, and quantiles over the full ring.
func windowHistFamilies(name string, h *WindowedHistogram) []promFamily {
	n := sanitizeMetricName(name)
	s := h.WindowSummary(0)
	span := h.Window().Span().String()
	gauge := func(suffix, help string, value string) promFamily {
		return promFamily{name: n + suffix, typ: "gauge",
			help:  help + " of " + name + " over the rolling " + span + " window",
			lines: []string{n + suffix + " " + value}}
	}
	return []promFamily{
		gauge("_window_rate", "per-second rate", formatFloat(s.RatePerSec)),
		gauge("_window_count", "observation count", formatInt(s.Count)),
		gauge("_window_p50", "p50", formatInt(s.P50)),
		gauge("_window_p95", "p95", formatInt(s.P95)),
		gauge("_window_p99", "p99", formatInt(s.P99)),
	}
}

// windowCounterFamilies renders a windowed counter's rolling view.
func windowCounterFamilies(name string, c *WindowedCounter) []promFamily {
	n := sanitizeMetricName(name)
	span := c.Window().Span().String()
	return []promFamily{
		{name: n + "_window_rate", typ: "gauge",
			help:  "per-second rate of " + name + " over the rolling " + span + " window",
			lines: []string{n + "_window_rate " + formatFloat(c.WindowRate(0))}},
		{name: n + "_window_count", typ: "gauge",
			help:  "count of " + name + " over the rolling " + span + " window",
			lines: []string{n + "_window_count " + formatInt(c.WindowCount(0))}},
	}
}

// extraFamilies groups injected series by family name, preserving each
// family's series order.
func extraFamilies(series []PromSeries) []promFamily {
	byName := map[string]*promFamily{}
	var order []string
	for _, s := range series {
		n := sanitizeMetricName(s.Name)
		f, ok := byName[n]
		if !ok {
			typ := s.Type
			if typ == "" {
				typ = "gauge"
			}
			f = &promFamily{name: n, typ: typ, help: s.Help}
			byName[n] = f
			order = append(order, n)
		}
		var lb strings.Builder
		lb.WriteString(n)
		if len(s.Labels) > 0 {
			lb.WriteByte('{')
			for i, l := range s.Labels {
				if i > 0 {
					lb.WriteByte(',')
				}
				lb.WriteString(sanitizeLabelName(l.Key))
				lb.WriteString("=\"")
				lb.WriteString(escapeLabelValue(l.Value))
				lb.WriteString("\"")
			}
			lb.WriteByte('}')
		}
		lb.WriteByte(' ')
		lb.WriteString(formatFloat(s.Value))
		f.lines = append(f.lines, lb.String())
	}
	out := make([]promFamily, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	return out
}

// sanitizeMetricName maps an instrument name onto the Prometheus metric
// charset: [a-zA-Z0-9_:], with the registry's dotted namespaces becoming
// underscores ("service.request_ns" → "service_request_ns").
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName is sanitizeMetricName without the colon (colons are
// reserved for recording rules).
func sanitizeLabelName(s string) string {
	return strings.ReplaceAll(sanitizeMetricName(s), ":", "_")
}

// escapeLabelValue escapes backslash, double-quote, and newline per the
// exposition-format rules.
func escapeLabelValue(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
