package telemetry

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceEventSink buffers events and, on Close, writes them as Chrome
// trace-event JSON (the format ui.perfetto.dev and chrome://tracing
// load). Spans become "X" (complete) slices, instant events become "i"
// markers, and concurrent span subtrees — one per worker-pool goroutine —
// are packed onto separate tids so nested slices render as a flame
// graph per worker.
//
// Events are held in memory until Close; the sink is meant for bounded
// diagnostic runs, not unbounded production streams (use JSONLSink for
// those). Emit is safe for concurrent use.
type TraceEventSink struct {
	mu     sync.Mutex
	w      io.Writer
	events []Event
	closed bool
}

// NewTraceEventSink returns a sink buffering events for w. Nothing is
// written until Close.
func NewTraceEventSink(w io.Writer) *TraceEventSink { return &TraceEventSink{w: w} }

// Emit implements Sink. Events arriving after Close are dropped.
func (s *TraceEventSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	// Copy attrs: callers may reuse the backing array after Emit returns.
	if len(e.Attrs) > 0 {
		e.Attrs = append([]Attr(nil), e.Attrs...)
	}
	s.events = append(s.events, e)
}

// Close renders the buffered events and writes the JSON document. It
// must be called after the sink is removed from the registry; later
// Emits are dropped. Close is idempotent (the second call is a no-op).
func (s *TraceEventSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	_, err := s.w.Write(renderTraceEvents(s.events))
	return err
}

// laneEntry is one open span on a lane's nesting stack.
type laneEntry struct {
	span uint64
	end  time.Time
}

// eventStart is a span event's start time (Time is its completion).
func eventStart(e *Event) time.Time { return e.Time.Add(-e.Dur) }

// orderEvents returns event indices ordered by start time; longer spans
// first on ties so parents are placed before the children they enclose;
// span id as final tiebreak.
func orderEvents(events []Event) []int {
	ordered := make([]int, len(events))
	for i := range ordered {
		ordered[i] = i
	}
	sort.SliceStable(ordered, func(a, b int) bool {
		ea, eb := &events[ordered[a]], &events[ordered[b]]
		sa, sb := eventStart(ea), eventStart(eb)
		if !sa.Equal(sb) {
			return sa.Before(sb)
		}
		if ea.Dur != eb.Dur {
			return ea.Dur > eb.Dur
		}
		return ea.Span < eb.Span
	})
	return ordered
}

// renderTraceEvents lays events out on lanes (tids) and marshals the
// trace-event JSON document with a deterministic field order, so output
// for fixed input events is byte-stable (goldenable). One-process form
// of RenderProcesses, kept as the TraceEventSink's exporter.
func renderTraceEvents(events []Event) []byte {
	return RenderProcesses([]TraceProcess{{Name: "balance", Events: events}})
}

// TraceProcess is one process's slice of a merged timeline: its events
// plus the clock offset that maps its local timestamps onto the
// reference clock (see ClockOffset; zero for the reference process).
type TraceProcess struct {
	Name   string
	Events []Event
	Offset time.Duration
}

// assignLanes packs one process's events onto lanes (tids) and returns
// the deterministic emission order, each event's lane, and the lane
// count (including lane 0, reserved for untraced events).
func assignLanes(events []Event) (ordered, laneOf []int, nLanes int) {
	ordered = orderEvents(events)
	start := eventStart

	// Greedy lane assignment simulating the worker goroutines: a span
	// joins the lane whose innermost open span is its parent; otherwise
	// it claims an idle lane (or opens a new one). Instants ride the
	// lane of their parent span. Untraced events (Trace == 0) share
	// lane 0.
	var lanes [][]laneEntry
	spanLane := map[uint64]int{}
	laneOf = make([]int, len(events))
	for _, idx := range ordered {
		e := &events[idx]
		if e.Trace == 0 {
			laneOf[idx] = 0
			continue
		}
		es := start(e)
		if e.Dur == 0 { // instant: follow the parent's lane
			if l, ok := spanLane[e.Parent]; ok {
				laneOf[idx] = l
			} else {
				laneOf[idx] = 1
			}
			if e.Span != 0 {
				spanLane[e.Span] = laneOf[idx]
			}
			continue
		}
		pop := func(l int) []laneEntry {
			st := lanes[l]
			for len(st) > 0 && !st[len(st)-1].end.After(es) {
				st = st[:len(st)-1]
			}
			lanes[l] = st
			return st
		}
		chosen := -1
		// Prefer the lane whose stack top is our parent (same goroutine).
		for l := range lanes {
			st := pop(l)
			if len(st) > 0 && st[len(st)-1].span == e.Parent {
				chosen = l
				break
			}
		}
		if chosen < 0 {
			// A fresh goroutine: reuse an idle lane or open a new one.
			for l := range lanes {
				if len(lanes[l]) == 0 {
					chosen = l
					break
				}
			}
			if chosen < 0 {
				lanes = append(lanes, nil)
				chosen = len(lanes) - 1
			}
		}
		lanes[chosen] = append(lanes[chosen], laneEntry{span: e.Span, end: e.Time})
		laneOf[idx] = chosen + 1 // lane 0 is reserved for untraced events
		spanLane[e.Span] = laneOf[idx]
	}
	return ordered, laneOf, len(lanes) + 1
}

// RenderProcesses marshals any number of processes' events as one
// trace-event JSON document: one pid (with its own worker lanes) per
// process, timestamps shifted by each process's clock offset onto a
// shared epoch. Field order, lane assignment, and event order are
// deterministic, so output for fixed inputs is byte-stable (goldenable).
// cmd/sbtrace uses this to merge per-process trace files into one
// Perfetto timeline; the single-process form is TraceEventSink's export.
func RenderProcesses(procs []TraceProcess) []byte {
	// The shared epoch: the earliest aligned event start across every
	// process, so merged timelines begin at ts 0 like single ones.
	var epoch time.Time
	for p := range procs {
		for i := range procs[p].Events {
			es := eventStart(&procs[p].Events[i]).Add(procs[p].Offset)
			if epoch.IsZero() || es.Before(epoch) {
				epoch = es
			}
		}
	}
	appendMicros := func(b []byte, d time.Duration) []byte {
		return strconv.AppendFloat(b, float64(d.Nanoseconds())/1e3, 'f', 3, 64)
	}
	b := []byte(`{"displayTimeUnit":"ms","traceEvents":[` + "\n")
	for p := range procs {
		events := procs[p].Events
		ordered, laneOf, nLanes := assignLanes(events)
		pid := int64(p + 1)
		if p > 0 {
			b = append(b, ",\n"...)
		}
		b = append(b, `{"name":"process_name","ph":"M","pid":`...)
		b = strconv.AppendInt(b, pid, 10)
		b = append(b, `,"tid":0,"args":{"name":`...)
		b = strconv.AppendQuote(b, procs[p].Name)
		b = append(b, `}}`...)
		for tid := 0; tid < nLanes; tid++ {
			b = append(b, ",\n"...)
			b = append(b, `{"name":"thread_name","ph":"M","pid":`...)
			b = strconv.AppendInt(b, pid, 10)
			b = append(b, `,"tid":`...)
			b = strconv.AppendInt(b, int64(tid), 10)
			if tid == 0 {
				b = append(b, `,"args":{"name":"untraced"}}`...)
			} else {
				b = append(b, `,"args":{"name":"worker-`...)
				b = strconv.AppendInt(b, int64(tid), 10)
				b = append(b, `"}}`...)
			}
		}
		for _, idx := range ordered {
			e := &events[idx]
			b = append(b, ",\n"...)
			b = append(b, `{"name":`...)
			b = strconv.AppendQuote(b, e.Name)
			if e.Dur != 0 {
				b = append(b, `,"ph":"X","ts":`...)
				b = appendMicros(b, eventStart(e).Add(procs[p].Offset).Sub(epoch))
				b = append(b, `,"dur":`...)
				b = appendMicros(b, e.Dur)
			} else {
				b = append(b, `,"ph":"i","s":"t","ts":`...)
				b = appendMicros(b, e.Time.Add(procs[p].Offset).Sub(epoch))
			}
			b = append(b, `,"pid":`...)
			b = strconv.AppendInt(b, pid, 10)
			b = append(b, `,"tid":`...)
			b = strconv.AppendInt(b, int64(laneOf[idx]), 10)
			b = append(b, `,"args":{`...)
			first := true
			field := func(k string, v uint64) {
				if v == 0 {
					return
				}
				if !first {
					b = append(b, ',')
				}
				first = false
				b = strconv.AppendQuote(b, k)
				b = append(b, ':')
				b = strconv.AppendUint(b, v, 10)
			}
			field("span", e.Span)
			field("parent", e.Parent)
			for _, a := range e.Attrs {
				if !first {
					b = append(b, ',')
				}
				first = false
				b = strconv.AppendQuote(b, a.Key)
				b = append(b, ':')
				if a.IsInt {
					b = strconv.AppendInt(b, a.Int, 10)
				} else {
					b = strconv.AppendQuote(b, a.Str)
				}
			}
			b = append(b, `}}`...)
		}
	}
	return append(b, "\n]}\n"...)
}
