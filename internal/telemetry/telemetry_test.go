package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if r.Counter("x") != c {
		t.Error("Counter(x) is not idempotent")
	}
}

func TestGaugeTracksMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("occ")
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Errorf("gauge settled at %d, want 0", v)
	}
	if m := g.Max(); m < 1 || m > workers {
		t.Errorf("gauge max = %d, want within [1, %d]", m, workers)
	}
	g.Set(-5)
	if v := g.Value(); v != -5 {
		t.Errorf("Set(-5) then Value = %d", v)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}()
	}
	wg.Wait()
	n := int64(workers * per)
	if got := h.Count(); got != n {
		t.Errorf("count = %d, want %d", got, n)
	}
	if got, want := h.Sum(), n*(n-1)/2; got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if got := h.Min(); got != 0 {
		t.Errorf("min = %d, want 0", got)
	}
	if got := h.Max(); got != n-1 {
		t.Errorf("max = %d, want %d", got, n-1)
	}
	// The true p50 is ~n/2; the bucketed estimate may overshoot by at most
	// 2x and never past the max.
	p50 := h.Quantile(0.5)
	if p50 < n/2 || p50 > n-1 {
		t.Errorf("p50 = %d, want within [%d, %d]", p50, n/2, n-1)
	}
	if p100 := h.Quantile(1); p100 != n-1 {
		t.Errorf("p100 = %d, want %d", p100, n-1)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(-7) // clamped to 0
	h.Observe(0)
	if h.Count() != 2 || h.Sum() != 0 || h.Quantile(1) != 0 {
		t.Errorf("zero-bucket accounting wrong: count %d sum %d p100 %d",
			h.Count(), h.Sum(), h.Quantile(1))
	}
	h.Observe(1)
	h.Observe(1024)
	if got := h.Quantile(1); got != 1024 {
		t.Errorf("p100 = %d, want 1024", got)
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Errorf("p25 = %d, want 0", got)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Snapshot {
		r := NewRegistry()
		r.Counter("b.calls").Add(3)
		r.Counter("a.calls").Add(7)
		r.Gauge("pool").Set(2)
		h := r.Histogram("wait_ns")
		for _, v := range []int64{1, 2, 3, 100, 1000} {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	j1, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("identical registries marshal differently:\n%s\n%s", j1, j2)
	}
	const golden = `{"counters":{"a.calls":7,"b.calls":3},"gauges":{"pool":{"value":2,"max":2}},"histograms":{"wait_ns":{"count":5,"sum":1106,"min":1,"max":1000,"p50":3,"p95":1000}}}`
	if string(j1) != golden {
		t.Errorf("snapshot JSON:\n got %s\nwant %s", j1, golden)
	}
	wantText := "counter a.calls 7\n" +
		"counter b.calls 3\n" +
		"gauge pool 2 max 2\n" +
		"hist wait_ns count 5 sum 1106 min 1 max 1000 p50 3 p95 1000\n"
	if got := build().String(); got != wantText {
		t.Errorf("snapshot text:\n got %q\nwant %q", got, wantText)
	}
}

// TestNoopSinkZeroAlloc pins the idle cost of the instrumentation layer:
// with no sink installed, spans, counters, gauges, and histograms must not
// allocate on the hot path.
func TestNoopSinkZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	ctx := context.Background()
	cases := []struct {
		name string
		fn   func()
	}{
		{"span", func() { r.StartSpan("job").End() }},
		{"emit", func() { r.Emit("progress") }},
		{"span-ctx", func() { sp, _ := r.StartSpanCtx(ctx, "job"); sp.End() }},
		{"emit-ctx", func() { r.EmitCtx(ctx, "progress") }},
		{"emit-span", func() { r.EmitSpan(SpanContext{}, "progress") }},
		{"counter", func() { c.Inc() }},
		{"gauge", func() { g.Add(1) }},
		{"histogram", func() { h.Observe(42) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op with no-op sink, want 0", tc.name, allocs)
		}
	}
}

type captureSink struct {
	mu     sync.Mutex
	events []Event
}

func (s *captureSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

func TestSpanEmitsToSink(t *testing.T) {
	r := NewRegistry()
	sink := &captureSink{}
	r.SetSink(sink)
	if !r.SinkActive() {
		t.Fatal("SinkActive() = false after SetSink")
	}
	sp := r.StartSpan("engine.job")
	if !sp.Active() {
		t.Fatal("span inactive with a sink installed")
	}
	time.Sleep(time.Millisecond)
	sp.End(String("sb", "blk1"), Int("ops", 12), Float("cost", 3.25))
	r.Emit("exact.progress", Int("nodes", 4096))

	r.SetSink(nil)
	r.StartSpan("dropped").End()
	r.Emit("dropped")

	if len(sink.events) != 2 {
		t.Fatalf("sink got %d events, want 2", len(sink.events))
	}
	e := sink.events[0]
	if e.Name != "engine.job" || e.Dur < time.Millisecond {
		t.Errorf("span event = %+v", e)
	}
	if len(e.Attrs) != 3 || e.Attrs[1].Int != 12 || e.Attrs[2].Str != "3.25" {
		t.Errorf("span attrs = %+v", e.Attrs)
	}
	if p := sink.events[1]; p.Name != "exact.progress" || p.Dur != 0 {
		t.Errorf("instant event = %+v", p)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	r.SetSink(NewJSONLSink(&buf))
	r.StartSpan("engine.job").End(String("sb", `quo"ted`), Int("hit", 1))
	r.Emit("exact.progress", Int("nodes", 123), Float("best", 7.5))

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSON lines, want 2", len(lines))
	}
	if lines[0]["name"] != "engine.job" {
		t.Errorf("line 0 name = %v", lines[0]["name"])
	}
	if _, ok := lines[0]["dur_ns"]; !ok {
		t.Error("span line missing dur_ns")
	}
	attrs := lines[0]["attrs"].(map[string]any)
	if attrs["sb"] != `quo"ted` || attrs["hit"] != float64(1) {
		t.Errorf("attrs = %v", attrs)
	}
	if _, ok := lines[1]["dur_ns"]; ok {
		t.Error("instant event carries dur_ns")
	}
	if ts, ok := lines[1]["ts"].(string); !ok || !strings.Contains(ts, "T") {
		t.Errorf("ts = %v", lines[1]["ts"])
	}
	if got := lines[1]["attrs"].(map[string]any)["best"]; got != "7.5" {
		t.Errorf("float attr = %v, want \"7.5\"", got)
	}
}

// TestSinkSwapConcurrent races sink swaps against span emission; the race
// detector is the assertion.
func TestSinkSwapConcurrent(t *testing.T) {
	r := NewRegistry()
	sink := &captureSink{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				r.SetSink(sink)
			} else {
				r.SetSink(nil)
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.StartSpan("s").End(Int("i", int64(i)))
				r.Emit("e")
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}
