package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Cross-process trace merging: the library behind cmd/sbtrace. Each
// process writes its own JSONL trace file (JSONLSink); this file parses
// them back into Events, aligns their clocks from the trace.clock
// handshake instants the wire layer emits, and renders one multi-process
// Perfetto timeline (RenderProcesses). LintProcesses checks the merged
// structure — aliased span IDs, orphan parents, impossible timestamps —
// and StatsText rolls up durations, per-trace critical paths, and
// cross-process gaps.

// ClockEventName is the instant event the wire client emits once per
// remote host, carrying the server's clock for offset computation.
const ClockEventName = "trace.clock"

// ClockRemoteAttr is the ClockEventName attribute holding the server's
// Unix-nanosecond clock reading; ClockHostAttr names the host it came
// from.
const (
	ClockRemoteAttr = "remote_unix_ns"
	ClockHostAttr   = "host"
)

// jsonlEvent mirrors Event.appendJSON's wire form.
type jsonlEvent struct {
	Name   string                     `json:"name"`
	TS     string                     `json:"ts"`
	DurNS  int64                      `json:"dur_ns"`
	Trace  uint64                     `json:"trace"`
	Span   uint64                     `json:"span"`
	Parent uint64                     `json:"parent"`
	Attrs  map[string]json.RawMessage `json:"attrs"`
}

// ParseJSONLTrace reads a JSONL trace stream (the JSONLSink format) back
// into Events. Attributes lose their emission order to JSON object
// semantics and come back sorted by key — deterministic, which is what
// merged-output goldens need. Blank lines are skipped; a malformed line
// is an error naming its line number.
func ParseJSONLTrace(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal([]byte(text), &je); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		ts, err := time.Parse(time.RFC3339Nano, je.TS)
		if err != nil {
			return nil, fmt.Errorf("line %d: ts: %w", line, err)
		}
		e := Event{
			Name:   je.Name,
			Time:   ts,
			Dur:    time.Duration(je.DurNS),
			Trace:  je.Trace,
			Span:   je.Span,
			Parent: je.Parent,
		}
		if len(je.Attrs) > 0 {
			keys := make([]string, 0, len(je.Attrs))
			for k := range je.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			e.Attrs = make([]Attr, 0, len(keys))
			for _, k := range keys {
				raw := je.Attrs[k]
				if len(raw) > 0 && raw[0] == '"' {
					var s string
					if err := json.Unmarshal(raw, &s); err != nil {
						return nil, fmt.Errorf("line %d: attr %s: %w", line, k, err)
					}
					e.Attrs = append(e.Attrs, String(k, s))
				} else if n, err := strconv.ParseInt(string(raw), 10, 64); err == nil {
					e.Attrs = append(e.Attrs, Int(k, n))
				} else {
					e.Attrs = append(e.Attrs, String(k, string(raw)))
				}
			}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// attrInt looks up an integer attribute by key.
func attrInt(e *Event, key string) (int64, bool) {
	for _, a := range e.Attrs {
		if a.Key == key && a.IsInt {
			return a.Int, true
		}
	}
	return 0, false
}

// ClockOffset derives a process's clock offset from its first
// trace.clock instant: the duration to ADD to its local timestamps to
// express them on the remote (reference) clock. ok is false when the
// stream holds no usable clock event — the process is then its own
// reference (offset 0), which is the right call for the hub process
// everyone else's offsets point at.
func ClockOffset(events []Event) (offset time.Duration, ok bool) {
	for i := range events {
		e := &events[i]
		if e.Name != ClockEventName {
			continue
		}
		remote, found := attrInt(e, ClockRemoteAttr)
		if !found {
			continue
		}
		return time.Unix(0, remote).Sub(e.Time), true
	}
	return 0, false
}

// LintFinding is one structural defect in a set of trace files.
type LintFinding struct {
	Process string // process (file) the defect was found in
	Kind    string // negative-duration | span-collision | orphan-parent | non-monotone
	Detail  string
}

func (f LintFinding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Process, f.Kind, f.Detail)
}

// LintProcesses checks the merged structure of a set of per-process
// trace files:
//
//   - negative-duration: a span whose duration is negative.
//   - span-collision: one (trace, span-ID) pair emitted by two events —
//     across processes this means the span-ID ranges aliased (a worker
//     joined without a disjoint SeedSpanIDs base).
//   - orphan-parent: a span naming a parent that no merged file
//     contains. Merging a subset of a run's files (e.g. dropping a
//     SIGKILL'd worker's torn file) legitimately orphans the survivors'
//     references into the dropped file — lint is how you notice.
//   - non-monotone: a child span starting more than 100µs before its
//     same-process parent started (cross-process pairs are excluded:
//     clock alignment is only as good as the handshake). Span ends
//     carry start-wall + monotonic-elapsed timestamps, so reconstructed
//     starts are exact per span; the tolerance absorbs wall-clock slew
//     between the parent's and child's start reads.
//
// Findings are ordered by process, kind, then detail, so output is
// deterministic for tests and CI gates.
func LintProcesses(procs []TraceProcess) []LintFinding {
	var out []LintFinding
	type spanKey struct {
		trace, span uint64
	}
	type spanInfo struct {
		proc  int
		event *Event
	}
	spans := map[spanKey]spanInfo{} // span-defining events only (Dur > 0 or instants with IDs)
	for p := range procs {
		events := procs[p].Events
		for i := range events {
			e := &events[i]
			if e.Dur < 0 {
				out = append(out, LintFinding{
					Process: procs[p].Name, Kind: "negative-duration",
					Detail: fmt.Sprintf("span %d (%s) has duration %v", e.Span, e.Name, e.Dur),
				})
			}
			if e.Span == 0 {
				continue
			}
			k := spanKey{e.Trace, e.Span}
			if prev, dup := spans[k]; dup {
				out = append(out, LintFinding{
					Process: procs[p].Name, Kind: "span-collision",
					Detail: fmt.Sprintf("span %d in trace %016x (%s) already emitted by %s (%s)",
						e.Span, e.Trace, e.Name, procs[prev.proc].Name, prev.event.Name),
				})
				continue
			}
			spans[k] = spanInfo{proc: p, event: e}
		}
	}
	for p := range procs {
		events := procs[p].Events
		for i := range events {
			e := &events[i]
			if e.Parent == 0 {
				continue
			}
			parent, found := spans[spanKey{e.Trace, e.Parent}]
			if !found {
				out = append(out, LintFinding{
					Process: procs[p].Name, Kind: "orphan-parent",
					Detail: fmt.Sprintf("span %d (%s) names parent %d, which no merged file contains",
						e.Span, e.Name, e.Parent),
				})
				continue
			}
			if parent.proc == p && e.Dur > 0 && parent.event.Dur > 0 {
				if lead := eventStart(parent.event).Sub(eventStart(e)); lead > 100*time.Microsecond {
					out = append(out, LintFinding{
						Process: procs[p].Name, Kind: "non-monotone",
						Detail: fmt.Sprintf("span %d (%s) starts %v before its parent %d (%s)",
							e.Span, e.Name, lead, e.Parent, parent.event.Name),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Process != out[j].Process {
			return out[i].Process < out[j].Process
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

// ms renders a duration as fixed-point milliseconds, matching the
// timeline's 1µs-resolution determinism.
func ms(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Nanoseconds())/1e6, 'f', 3, 64) + "ms"
}

// StatsText computes and renders the merged-trace statistics: per-span-
// kind duration rollups, per-trace summaries with the critical path
// (repeatedly descending into the latest-ending child), and the
// cross-process links — parent in one file, child in another — whose
// start-to-start gap is the network + queue time the wire added. All
// timestamps are clock-aligned before comparison. Output is
// deterministic for fixed input.
func StatsText(procs []TraceProcess) string {
	type spanRef struct {
		proc int
		e    *Event
	}
	type spanKey struct {
		trace, span uint64
	}
	spans := map[spanKey]spanRef{}
	children := map[spanKey][]spanRef{}
	aligned := func(ref spanRef) (start, end time.Time) {
		end = ref.e.Time.Add(procs[ref.proc].Offset)
		return end.Add(-ref.e.Dur), end
	}

	// Span-kind rollups cover every span event; instants are skipped.
	type kindStat struct {
		count      int
		total, max time.Duration
	}
	kinds := map[string]*kindStat{}
	var traceIDs []uint64
	seenTrace := map[uint64]bool{}
	for p := range procs {
		events := procs[p].Events
		for i := range events {
			e := &events[i]
			if e.Dur > 0 {
				ks := kinds[e.Name]
				if ks == nil {
					ks = &kindStat{}
					kinds[e.Name] = ks
				}
				ks.count++
				ks.total += e.Dur
				if e.Dur > ks.max {
					ks.max = e.Dur
				}
			}
			if e.Trace == 0 {
				continue
			}
			if !seenTrace[e.Trace] {
				seenTrace[e.Trace] = true
				traceIDs = append(traceIDs, e.Trace)
			}
			ref := spanRef{proc: p, e: e}
			if e.Span != 0 && e.Dur > 0 {
				if _, dup := spans[spanKey{e.Trace, e.Span}]; !dup {
					spans[spanKey{e.Trace, e.Span}] = ref
				}
			}
			if e.Parent != 0 {
				k := spanKey{e.Trace, e.Parent}
				children[k] = append(children[k], ref)
			}
		}
	}
	sort.Slice(traceIDs, func(i, j int) bool { return traceIDs[i] < traceIDs[j] })

	var b strings.Builder
	b.WriteString("== span kinds ==\n")
	names := make([]string, 0, len(kinds))
	for name := range kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ks := kinds[name]
		mean := ks.total / time.Duration(ks.count)
		fmt.Fprintf(&b, "%-24s count %d total %s mean %s max %s\n",
			name, ks.count, ms(ks.total), ms(mean), ms(ks.max))
	}

	b.WriteString("== traces ==\n")
	// Single-span traces (uncontexted leaf work minting a fresh trace
	// per call) are rolled into one elision line: a merged corpus run
	// holds thousands of them and they would drown the real trees.
	elided := 0
	for _, trace := range traceIDs {
		var first, last time.Time
		var count, nProcs int
		procSeen := map[int]bool{}
		var root spanRef
		for k, ref := range spans {
			if k.trace != trace {
				continue
			}
			count++
			if !procSeen[ref.proc] {
				procSeen[ref.proc] = true
				nProcs++
			}
			s, e := aligned(ref)
			if first.IsZero() || s.Before(first) {
				first = s
			}
			if e.After(last) {
				last = e
			}
			// The trace's root: the earliest-starting span with no parent
			// present in the merge.
			if ref.e.Parent == 0 || spans[spanKey{trace, ref.e.Parent}].e == nil {
				if root.e == nil {
					root = ref
				} else if rs, _ := aligned(root); s.Before(rs) ||
					(s.Equal(rs) && ref.e.Span < root.e.Span) {
					root = ref
				}
			}
		}
		if count == 0 {
			continue // instants only: nothing to time
		}
		if count == 1 {
			elided++
			continue
		}
		// Critical path: from the root, repeatedly descend into the
		// latest-ending child span.
		var path []string
		if root.e != nil {
			cur := root
			path = append(path, cur.e.Name)
			for depth := 0; depth < 64; depth++ {
				var next spanRef
				var nextEnd time.Time
				for _, ch := range children[spanKey{trace, cur.e.Span}] {
					if ch.e.Dur <= 0 {
						continue
					}
					if _, chEnd := aligned(ch); next.e == nil || chEnd.After(nextEnd) {
						next, nextEnd = ch, chEnd
					}
				}
				if next.e == nil {
					break
				}
				cur = next
				path = append(path, cur.e.Name)
			}
		}
		fmt.Fprintf(&b, "trace %016x spans %d processes %d wall %s critical %s\n",
			trace, count, nProcs, ms(last.Sub(first)), strings.Join(path, " > "))
	}
	if elided > 0 {
		fmt.Fprintf(&b, "(%d single-span traces elided)\n", elided)
	}

	b.WriteString("== cross-process links ==\n")
	type linkStat struct {
		count      int
		total, max time.Duration
	}
	links := map[string]*linkStat{}
	for k, refs := range children {
		parent, found := spans[k]
		if !found {
			continue
		}
		for _, ch := range refs {
			if ch.proc == parent.proc || ch.e.Dur <= 0 {
				continue
			}
			ps, _ := aligned(parent)
			cs, _ := aligned(ch)
			gap := cs.Sub(ps)
			if gap < 0 {
				gap = 0
			}
			name := parent.e.Name + " -> " + ch.e.Name
			ls := links[name]
			if ls == nil {
				ls = &linkStat{}
				links[name] = ls
			}
			ls.count++
			ls.total += gap
			if gap > ls.max {
				ls.max = gap
			}
		}
	}
	names = names[:0]
	for name := range links {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ls := links[name]
		mean := ls.total / time.Duration(ls.count)
		fmt.Fprintf(&b, "%-40s count %d gap mean %s max %s\n", name, ls.count, ms(mean), ms(ls.max))
	}
	return b.String()
}
