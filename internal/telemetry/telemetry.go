// Package telemetry is the zero-dependency instrumentation layer the
// engine pipeline reports into: atomic counters and gauges, streaming
// log-bucket histograms for durations and sizes, and lightweight spans
// with a pluggable event sink.
//
// Design constraints, in order:
//
//   - Race-safe: every mutation is an atomic operation; instruments may be
//     hammered from every worker goroutine concurrently.
//   - Free when idle: with the default no-op sink, StartSpan/End performs
//     no allocation and no system call; counters and histograms are a
//     handful of uncontended atomic adds. Hot loops (the exact solver, the
//     list scheduler) may batch locally and flush.
//   - Deterministic output: Registry.Snapshot marshals with sorted keys so
//     metric summaries are goldenable in tests.
//
// Instruments are created once (typically in package-level var blocks via
// Default()) and are looked up by name from a Registry. Creating the same
// name twice returns the same instrument, so independent packages can
// share a series without coordinating.
//
// The root balance facade re-exports Default() so library users can attach
// their own Sink or read Snapshots; the cmd tools expose the same registry
// through -metrics, -trace, and -debug-addr (see internal/cliutil).
package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0; counters are monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (e.g. worker-pool occupancy) that also
// tracks its high-watermark.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Add moves the gauge by delta and returns the new value, updating the
// high-watermark.
func (g *Gauge) Add(delta int64) int64 {
	v := g.v.Add(delta)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return v
		}
	}
}

// Set replaces the gauge value, updating the high-watermark.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-watermark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// FloatGauge is an instantaneous float-valued level (ratios, burn rates).
// Unlike Gauge it tracks no watermark: its producers recompute it from
// other instruments (e.g. SLO burn from a rolling window) on read paths.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current level.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a name-keyed set of instruments plus the event sink spans
// report to. The zero value is not usable; use NewRegistry or Default.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	fgauges     map[string]*FloatGauge
	hists       map[string]*Histogram
	winHists    map[string]*WindowedHistogram
	winCounters map[string]*WindowedCounter
	sink        atomic.Pointer[sinkBox]
}

// sinkBox wraps the Sink interface value so the registry can swap it with
// a single atomic pointer load on the hot path.
type sinkBox struct{ s Sink }

// NewRegistry returns an empty registry with the no-op sink.
func NewRegistry() *Registry {
	return &Registry{
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		fgauges:     map[string]*FloatGauge{},
		hists:       map[string]*Histogram{},
		winHists:    map[string]*WindowedHistogram{},
		winCounters: map[string]*WindowedCounter{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every built-in instrument
// registers into.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. By
// convention duration series end in "_ns" and record nanoseconds.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fgauges[name]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// WindowedHistogram returns the named rolling-window histogram with the
// default geometry (12 shards × 5s), creating it on first use. The name
// space is shared with plain histograms: creating both kinds under one
// name would render duplicate Prometheus series, so pick one kind per
// name.
func (r *Registry) WindowedHistogram(name string) *WindowedHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.winHists[name]
	if !ok {
		h = NewWindowedHistogram(DefaultWindowShards, DefaultWindowInterval, nil)
		r.winHists[name] = h
	}
	return h
}

// WindowedCounter returns the named rolling-window counter with the
// default geometry, creating it on first use.
func (r *Registry) WindowedCounter(name string) *WindowedCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.winCounters[name]
	if !ok {
		c = NewWindowedCounter(DefaultWindowShards, DefaultWindowInterval, nil)
		r.winCounters[name] = c
	}
	return c
}

// SetSink installs the span/event sink (nil restores the no-op sink).
// Spans started before the swap emit to the sink installed at their End.
func (r *Registry) SetSink(s Sink) {
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&sinkBox{s: s})
}

// SinkActive reports whether a non-nil sink is installed. Hot paths use it
// to skip building attributes for events nobody will see.
func (r *Registry) SinkActive() bool { return r.sink.Load() != nil }

// StartSpan begins a span. With the no-op sink it returns an inert span
// and performs no allocation and no clock read.
func (r *Registry) StartSpan(name string) Span {
	if r.sink.Load() == nil {
		return Span{}
	}
	return Span{r: r, name: name, start: time.Now()}
}

// Emit reports an instant (duration-less) event, e.g. solver progress.
// With the no-op sink it is free.
func (r *Registry) Emit(name string, attrs ...Attr) {
	box := r.sink.Load()
	if box == nil {
		return
	}
	box.s.Emit(Event{Name: name, Time: time.Now(), Attrs: attrs})
}
