package telemetry

import (
	"expvar"
	"sync"
)

var publishOnce sync.Once

// PublishExpvar exposes the registry's live snapshot as the expvar
// variable "telemetry" (served at /debug/vars once an HTTP server runs on
// http.DefaultServeMux). Only the first call publishes; expvar names are
// process-global, so one registry — normally Default() — owns the slot.
func PublishExpvar(r *Registry) {
	publishOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any { return r.Snapshot() }))
	})
}
