package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers the full non-negative int64 range in power-of-two
// buckets: bucket 0 holds values ≤ 0, bucket i (1 ≤ i ≤ 64) holds values
// in [2^(i-1), 2^i).
const numBuckets = 65

// Histogram is a streaming log-bucket histogram. Observations land in
// power-of-two buckets, so quantile estimates are upper bounds within a
// factor of two — plenty for latency and queue-size distributions, and
// cheap enough (a few atomic adds) for per-decision hot paths. All methods
// are safe for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Min returns the smallest observed value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the upper bound of the
// bucket containing the target rank, clamped to the observed maximum. The
// estimate is deterministic for a fixed set of observations and never
// below the true quantile's bucket lower bound. Returns 0 when empty.
//
// Concurrent observers may shift ranks mid-walk; the estimate is then
// approximate but still within the observed range.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			upper := int64(0)
			if i > 0 {
				if i == 64 {
					upper = math.MaxInt64
				} else {
					upper = int64(1)<<uint(i) - 1
				}
			}
			if m := h.Max(); upper > m {
				upper = m
			}
			return upper
		}
	}
	return h.Max()
}

// Summary condenses the histogram for snapshots.
func (h *Histogram) Summary() HistogramSummary {
	return HistogramSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
	}
}
