package telemetry

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an atomically advanced nanosecond clock for driving
// window rotation deterministically from tests.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() int64              { return c.ns.Load() }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

func TestWindowedHistogramBasics(t *testing.T) {
	clk := &fakeClock{}
	clk.ns.Store(int64(time.Hour)) // away from the epoch-0 corner
	h := NewWindowedHistogram(4, time.Second, clk.now)

	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if got := h.Lifetime().Count(); got != 100 {
		t.Fatalf("lifetime count = %d, want 100", got)
	}
	s := h.WindowSummary(0)
	if s.Count != 100 || s.Sum != 5050 {
		t.Errorf("window count/sum = %d/%d, want 100/5050", s.Count, s.Sum)
	}
	// All observations are in the window: quantiles mirror the lifetime's.
	if p50, lp50 := h.WindowQuantile(0.5, 0), h.Lifetime().Quantile(0.5); p50 < lp50/2 || p50 > 127 {
		t.Errorf("window p50 = %d (lifetime %d)", p50, lp50)
	}
	if s.P99 < s.P95 || s.P95 < s.P50 {
		t.Errorf("window quantiles not ordered: %+v", s)
	}

	// Advance past the whole ring: the window must decay to empty while
	// the lifetime view keeps everything.
	clk.advance(5 * time.Second)
	h.Observe(7) // triggers rotation of the current shard only
	s = h.WindowSummary(0)
	if s.Count != 1 {
		t.Errorf("window count after expiry = %d, want 1 (only the fresh observation)", s.Count)
	}
	if got := h.Lifetime().Count(); got != 101 {
		t.Errorf("lifetime count after expiry = %d, want 101", got)
	}
}

func TestWindowRateUsesLiveCoverage(t *testing.T) {
	clk := &fakeClock{}
	clk.ns.Store(int64(time.Hour))
	c := NewWindowedCounter(12, 5*time.Second, clk.now)
	// 100 events over 2.5 seconds of one interval: the rate must reflect
	// the covered span (~40/s), not the full 60s ring (~1.7/s).
	for i := 0; i < 100; i++ {
		c.Add(1)
		clk.advance(25 * time.Millisecond)
	}
	rate := c.WindowRate(0)
	if rate < 30 || rate > 55 {
		t.Errorf("rate = %.1f/s, want ≈40/s from 100 events in 2.5s", rate)
	}
	if got := c.WindowCount(0); got != 100 {
		t.Errorf("window count = %d, want 100", got)
	}
	if got := c.Value(); got != 100 {
		t.Errorf("lifetime = %d, want 100", got)
	}
}

func TestWindowLastKIntervals(t *testing.T) {
	clk := &fakeClock{}
	clk.ns.Store(int64(time.Hour))
	h := NewWindowedHistogram(12, time.Second, clk.now)
	// One observation per interval over six intervals; the clock ends on
	// the interval of the last observation.
	for i := 0; i < 6; i++ {
		if i > 0 {
			clk.advance(time.Second)
		}
		h.Observe(int64(1000 * (i + 1)))
	}
	if _, total := h.WindowCountOver(0, 2); total != 2 {
		t.Errorf("last-2-intervals total = %d, want 2", total)
	}
	if _, total := h.WindowCountOver(0, 0); total != 6 {
		t.Errorf("full-window total = %d, want 6", total)
	}
	// Buckets over the le=4095 bound hold 5000 and 6000 (4000 shares the
	// 2048..4095 bucket, whose upper bound does not exceed the threshold).
	over, total := h.WindowCountOver(4095, 0)
	if total != 6 || over != 2 {
		t.Errorf("countOver(4095) = %d/%d, want 2/6", over, total)
	}
}

// TestWindowRotationConservation is the -race rotation test: writers
// hammer shards while the clock leaps intervals and a reader snapshots
// mid-rotation. No observation may be lost — at quiescence the lifetime
// count must exactly equal the live shards plus the expired accumulator.
func TestWindowRotationConservation(t *testing.T) {
	clk := &fakeClock{}
	clk.ns.Store(int64(time.Hour))
	h := NewWindowedHistogram(4, time.Millisecond, clk.now)

	const workers = 8
	const perWorker = 20000
	var wg, rwg sync.WaitGroup
	stop := make(chan struct{})

	// Reader: snapshot continuously mid-rotation. The race detector and
	// the internal consistency of each summary are the assertions here.
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.WindowSummary(0)
			if s.Count < 0 || s.Sum < 0 {
				t.Error("negative window totals mid-rotation")
				return
			}
			_ = h.WindowQuantile(0.99, 0)
		}
	}()

	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(w*perWorker + i))
				if i%64 == 0 {
					// Leap the clock so rotation races the observers hard.
					clk.advance(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()

	const total = workers * perWorker
	if got := h.Lifetime().Count(); got != total {
		t.Fatalf("lifetime count = %d, want %d", got, total)
	}
	// Conservation: every observation is in a live shard or the expired
	// accumulator, exactly once.
	var shardCount int64
	for i := range h.win.shards {
		shardCount += h.win.shards[i].count.Load()
	}
	if got := shardCount + h.win.ExpiredCount(); got != total {
		t.Errorf("shards(%d) + expired(%d) = %d, want exactly %d — counts were lost or duplicated in rotation",
			shardCount, h.win.ExpiredCount(), got, total)
	}
	var shardSum int64
	for i := range h.win.shards {
		shardSum += h.win.shards[i].sum.Load()
	}
	if got, want := shardSum+h.win.expiredSum.Load(), h.Lifetime().Sum(); got != want {
		t.Errorf("shard sums + expired = %d, want %d", got, want)
	}
}

// TestWindowedObserveZeroAlloc pins the record path's allocation
// contract: windowed observation without a trace must be allocation-free,
// like every other idle-path instrument.
func TestWindowedObserveZeroAlloc(t *testing.T) {
	r := NewRegistry()
	h := r.WindowedHistogram("h")
	c := r.WindowedCounter("c")
	cases := []struct {
		name string
		fn   func()
	}{
		{"windowed-histogram", func() { h.Observe(42) }},
		{"windowed-histogram-untraced", func() { h.ObserveTrace(42, 0) }},
		{"windowed-counter", func() { c.Inc() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func TestObserveTraceCapturesExemplar(t *testing.T) {
	h := NewWindowedHistogram(4, time.Second, nil)
	h.ObserveTrace(1000, 0xabc)
	ex := h.BucketExemplar(bucketOf(1000))
	if ex == nil || ex.Trace != 0xabc || ex.Value != 1000 {
		t.Fatalf("exemplar = %+v, want trace 0xabc value 1000", ex)
	}
	// Last write wins within a bucket.
	h.ObserveTrace(1001, 0xdef)
	if ex := h.BucketExemplar(bucketOf(1001)); ex.Trace != 0xdef {
		t.Errorf("exemplar trace = %x, want def (last write wins)", ex.Trace)
	}
	if ex := h.BucketExemplar(-1); ex != nil {
		t.Errorf("out-of-range bucket returned %+v", ex)
	}
}

func TestRegistryWindowedIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.WindowedHistogram("x") != r.WindowedHistogram("x") {
		t.Error("WindowedHistogram(x) is not idempotent")
	}
	if r.WindowedCounter("y") != r.WindowedCounter("y") {
		t.Error("WindowedCounter(y) is not idempotent")
	}
}

func TestSnapshotIncludesWindows(t *testing.T) {
	r := NewRegistry()
	r.WindowedHistogram("svc.lat_ns").Observe(100)
	r.WindowedCounter("svc.reqs").Add(3)
	r.FloatGauge("svc.burn").Set(0.25)
	s := r.Snapshot()
	if s.Histograms["svc.lat_ns"].Count != 1 {
		t.Errorf("lifetime histogram missing from snapshot: %+v", s.Histograms)
	}
	if s.Counters["svc.reqs"] != 3 {
		t.Errorf("lifetime counter missing from snapshot: %+v", s.Counters)
	}
	if s.Windows["svc.lat_ns"].Count != 1 || s.Windows["svc.reqs"].Count != 3 {
		t.Errorf("window summaries missing: %+v", s.Windows)
	}
	if s.FloatGauges["svc.burn"] != 0.25 {
		t.Errorf("float gauge missing: %+v", s.FloatGauges)
	}
}
