package telemetry

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value attribute of an event. Values are strings or
// integers; Float formats through a string to keep Event allocation-free
// of interface boxing.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// String returns a string-valued attribute.
func String(k, v string) Attr { return Attr{Key: k, Str: v} }

// Int returns an integer-valued attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Int: v, IsInt: true} }

// Float returns a float-valued attribute (formatted with %g precision).
func Float(k string, v float64) Attr {
	return Attr{Key: k, Str: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Event is one span completion or instant event delivered to a Sink.
type Event struct {
	// Name identifies the event series ("engine.job", "exact.progress").
	Name string
	// Time is the completion (or emission) timestamp.
	Time time.Time
	// Dur is the span duration; zero for instant events.
	Dur time.Duration
	// Attrs carries optional event attributes in emission order.
	Attrs []Attr
	// Trace, Span, and Parent link the event into a span tree (see
	// SpanContext). All three are zero for events emitted outside a
	// trace (StartSpan/Emit without a context).
	Trace  uint64
	Span   uint64
	Parent uint64
}

// Sink receives events. Implementations must be safe for concurrent use;
// Emit is called from worker goroutines on hot paths and should return
// quickly.
type Sink interface {
	Emit(Event)
}

// Span measures one timed region. The zero value (returned by StartSpan
// when no sink is installed) is inert: End on it does nothing.
type Span struct {
	r      *Registry
	name   string
	start  time.Time
	sc     SpanContext
	parent uint64
}

// Active reports whether the span will emit on End. Callers use it to skip
// building expensive attributes.
func (s Span) Active() bool { return s.r != nil }

// Context returns the span's identity for parenting descendants started
// outside a context.Context flow. Zero for inert spans.
func (s Span) Context() SpanContext { return s.sc }

// End completes the span and emits it to the registry's sink with the
// given attributes. If the sink was removed since StartSpan, the event is
// dropped.
func (s Span) End(attrs ...Attr) {
	if s.r == nil {
		return
	}
	box := s.r.sink.Load()
	if box == nil {
		return
	}
	// Elapsed uses the monotonic reading; the end timestamp is the
	// START's wall reading plus that elapsed, not a second wall read.
	// Exporters reconstruct start as Time−Dur, and this keeps that
	// reconstruction exact even when NTP slews the wall clock mid-span —
	// otherwise a long parent's reconstructed start can drift past its
	// short child's and a merged timeline looks non-monotone.
	elapsed := time.Since(s.start)
	box.s.Emit(Event{
		Name:   s.name,
		Time:   s.start.Add(elapsed),
		Dur:    elapsed,
		Attrs:  attrs,
		Trace:  s.sc.Trace,
		Span:   s.sc.Span,
		Parent: s.parent,
	})
}

// appendJSON appends the event as one JSON object. Attributes are nested
// under "attrs" in emission order; duration is omitted for instant events.
func (e *Event) appendJSON(b []byte) []byte {
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, e.Name)
	b = append(b, `,"ts":`...)
	b = strconv.AppendQuote(b, e.Time.UTC().Format(time.RFC3339Nano))
	if e.Dur != 0 {
		b = append(b, `,"dur_ns":`...)
		b = strconv.AppendInt(b, int64(e.Dur), 10)
	}
	if e.Trace != 0 {
		b = append(b, `,"trace":`...)
		b = strconv.AppendUint(b, e.Trace, 10)
		b = append(b, `,"span":`...)
		b = strconv.AppendUint(b, e.Span, 10)
		if e.Parent != 0 {
			b = append(b, `,"parent":`...)
			b = strconv.AppendUint(b, e.Parent, 10)
		}
	}
	if len(e.Attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i, a := range e.Attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, a.Key)
			b = append(b, ':')
			if a.IsInt {
				b = strconv.AppendInt(b, a.Int, 10)
			} else {
				b = strconv.AppendQuote(b, a.Str)
			}
		}
		b = append(b, '}')
	}
	return append(b, '}')
}

// JSONLSink writes each event as one JSON object per line. It serializes
// writers internally, so a single instance may be shared by every worker.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

// NewJSONLSink returns a sink writing JSON lines to w. The caller owns w's
// lifetime (close it after removing the sink from the registry).
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit implements Sink. Write errors are dropped: telemetry must never
// fail the computation it observes.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = e.appendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	s.w.Write(s.buf) //nolint:errcheck
}
