package telemetry

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"sync/atomic"
	"time"
)

// SpanContext identifies a live span so descendants started in other
// packages (or other goroutines) can parent themselves to it. The zero
// value means "no enclosing span".
type SpanContext struct {
	// Trace groups every span descending from one root (one engine.Run,
	// one exact solve, one CLI invocation). All spans in a tree share it.
	Trace uint64
	// Span is the identifier of the span itself, unique within the
	// process lifetime.
	Span uint64
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Span != 0 }

// spanCtxKey keys the SpanContext stored in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sc. Callers normally get
// this from StartSpanCtx rather than calling it directly.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the span context carried by ctx, or the zero
// SpanContext if none is.
func SpanFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// spanIDs allocates process-unique span identifiers. IDs start at 1 so 0
// stays reserved for "absent". spanIDBase remembers the highest seed, so
// SpanIDRange can report the slice of the ID space this process actually
// used (the collision check behind Snapshot.Merge).
var (
	spanIDs    atomic.Uint64
	spanIDBase atomic.Uint64
)

func nextSpanID() uint64 { return spanIDs.Add(1) }

// SpanIDRange reports the half-open slice of the span-ID space this
// process has allocated from: IDs in (base, last] were issued here.
// base == last means no IDs were allocated since the last seed.
func SpanIDRange() (base, last uint64) {
	return spanIDBase.Load(), spanIDs.Load()
}

// SeedSpanIDs moves the span-ID allocator forward to base, so IDs issued
// afterwards are > base. Processes that contribute spans to one shared
// trace (distributed workers) seed disjoint bases — e.g. worker i uses
// (i+1)<<40 — so their span IDs never collide when the trace files merge.
// The allocator only moves forward; seeding below the current position is
// a no-op.
func SeedSpanIDs(base uint64) {
	for {
		cur := spanIDs.Load()
		if cur >= base {
			return
		}
		if spanIDs.CompareAndSwap(cur, base) {
			// Record the seed so SpanIDRange reports only the IDs issued
			// after it (the worker's own slice, not the pre-join scraps).
			for {
				b := spanIDBase.Load()
				if b >= base || spanIDBase.CompareAndSwap(b, base) {
					return
				}
			}
		}
	}
}

// SeedSpanIDsUnique moves the allocator to a process-unique base in the
// low 40 bits of the ID space, derived from the pid and start time.
// Every cmd tool seeds this way at startup so that span (and therefore
// trace) IDs minted by concurrently-running processes — an sbload
// driving an sbserve, two workers racing to join a coordinator — do not
// alias each other before any coordinator has dealt out deterministic
// ranges. Coordinator-assigned worker bases live at (i+1)<<40 and above,
// so a later SeedSpanIDs from a join always lands past this one.
func SeedSpanIDsUnique() {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d", os.Getpid(), time.Now().UnixNano())
	SeedSpanIDs(h.Sum64() & (1<<40 - 1))
}

// StartSpanCtx begins a span parented to the span carried by ctx (if
// any) and returns a derived context carrying the new span, for passing
// to child work. With the no-op sink it returns an inert span and ctx
// unchanged: no allocation, no clock read, no context wrapping.
func (r *Registry) StartSpanCtx(ctx context.Context, name string) (Span, context.Context) {
	if r.sink.Load() == nil {
		return Span{}, ctx
	}
	parent := SpanFromContext(ctx)
	sc := SpanContext{Trace: parent.Trace, Span: nextSpanID()}
	if sc.Trace == 0 {
		sc.Trace = sc.Span // new root: the trace is named after it
	}
	sp := Span{r: r, name: name, start: time.Now(), sc: sc, parent: parent.Span}
	return sp, ContextWithSpan(ctx, sc)
}

// EmitCtx reports an instant event parented to the span carried by ctx,
// so exporters can place it on the right lane of the span tree. With the
// no-op sink it is free.
func (r *Registry) EmitCtx(ctx context.Context, name string, attrs ...Attr) {
	box := r.sink.Load()
	if box == nil {
		return
	}
	r.EmitSpan(SpanFromContext(ctx), name, attrs...)
}

// EmitSpan reports an instant event parented to an explicit span
// context. Hot loops that already hold a SpanContext (e.g. the exact
// solver's batched progress reporter) use this to avoid re-deriving it
// from a context.Context.
func (r *Registry) EmitSpan(sc SpanContext, name string, attrs ...Attr) {
	box := r.sink.Load()
	if box == nil {
		return
	}
	box.s.Emit(Event{
		Name:   name,
		Time:   time.Now(),
		Attrs:  attrs,
		Trace:  sc.Trace,
		Span:   nextSpanID(),
		Parent: sc.Span,
	})
}
