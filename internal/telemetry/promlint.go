package telemetry

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Exposition parsing and linting.
//
// ParseExposition is the minimal text-format reader sbtop uses to scrape
// a live /metrics; LintExposition layers the structural checks CI gates
// the soak's scrapes on: metric/label naming conventions, TYPE
// declarations preceding their series, counter naming, monotone
// cumulative buckets, and _bucket/_sum/_count consistency. Both are
// dependency-free and understand exactly the dialect PromWriter emits
// (plus the classic format's laxer corners, so hand-written fixtures
// lint too).

// PromPoint is one parsed sample.
type PromPoint struct {
	// Name is the full series name (e.g. "service_request_ns_bucket").
	Name string
	// Labels holds the series' label pairs (nil when unlabelled).
	Labels map[string]string
	// Value is the sample value.
	Value float64
	// Exemplar is the raw exemplar text after the series (without the
	// leading "# "), empty when none.
	Exemplar string
}

// Key renders the series identity (name plus sorted labels) for lookups.
func (p PromPoint) Key() string {
	if len(p.Labels) == 0 {
		return p.Name
	}
	keys := make([]string, 0, len(p.Labels))
	for k := range p.Labels {
		keys = append(keys, k)
	}
	// Insertion sort: label sets are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	b.WriteString(p.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, p.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promTypeDecl is one "# TYPE <family> <kind>" declaration, recorded in
// stream order.
type promTypeDecl struct {
	family string
	kind   string
	line   int
}

// parsedExposition is the full decode of one exposition body.
type parsedExposition struct {
	points []PromPoint
	types  []promTypeDecl
	eof    bool
	errs   []error
}

// ParseExposition decodes a Prometheus/OpenMetrics text body into its
// samples. Malformed lines are reported, not fatal: the slice holds
// every sample that did parse.
func ParseExposition(data []byte) ([]PromPoint, []error) {
	p := parseExposition(data)
	return p.points, p.errs
}

func parseExposition(data []byte) parsedExposition {
	var out parsedExposition
	for i, line := range strings.Split(string(data), "\n") {
		n := i + 1
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				out.eof = true
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				out.types = append(out.types, promTypeDecl{family: fields[2], kind: fields[3], line: n})
			}
			continue
		}
		pt, err := parseSeriesLine(line)
		if err != nil {
			out.errs = append(out.errs, fmt.Errorf("line %d: %w", n, err))
			continue
		}
		out.points = append(out.points, pt)
	}
	return out
}

// parseSeriesLine decodes `name{k="v",...} value [# exemplar]`.
func parseSeriesLine(line string) (PromPoint, error) {
	var pt PromPoint
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return pt, fmt.Errorf("no value on series line %q", line)
	} else {
		pt.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return pt, err
		}
		pt.Labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " ")
	valueText := rest
	if i := strings.Index(rest, " # "); i >= 0 {
		valueText = rest[:i]
		pt.Exemplar = strings.TrimSpace(rest[i+3:])
	}
	// A classic-format sample may carry a trailing timestamp; take the
	// first field as the value.
	fields := strings.Fields(valueText)
	if len(fields) == 0 {
		return pt, fmt.Errorf("no value on series line %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return pt, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	pt.Value = v
	return pt, nil
}

// parseLabels decodes a `{k="v",...}` block, honoring escaped quotes,
// and returns the remainder of the line.
func parseLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	rest := s[1:] // past '{'
	for {
		rest = strings.TrimLeft(rest, ", ")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated label block in %q", s)
		}
		key := strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label %q value is not quoted", key)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return nil, "", fmt.Errorf("unterminated label value for %q", key)
			}
			c := rest[0]
			if c == '\\' && len(rest) >= 2 {
				switch rest[1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[1])
				}
				rest = rest[2:]
				continue
			}
			if c == '"' {
				rest = rest[1:]
				break
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		labels[key] = val.String()
	}
}

// exemplarRE matches the OpenMetrics exemplar tail: a label set, a
// value, and an optional timestamp.
var exemplarRE = regexp.MustCompile(`^\{[^}]*\} [0-9.eE+-]+( [0-9.eE+-]+)?$`)

// LintExposition structurally checks one exposition body and returns
// every violation found (empty: well-formed). Checks:
//
//   - metric and label names match the Prometheus charset;
//   - every series belongs to a family declared with # TYPE before its
//     first sample, and no family is declared twice;
//   - counter samples use the _total suffix;
//   - histogram buckets are cumulative (monotone non-decreasing in
//     emission order), include le="+Inf", and agree with _count;
//     _sum and _count are present;
//   - no duplicate series (same name and labels);
//   - exemplars parse; the body terminates with # EOF.
func LintExposition(data []byte) []error {
	p := parseExposition(data)
	errs := append([]error(nil), p.errs...)

	declared := map[string]promTypeDecl{}
	for _, d := range p.types {
		if !promNameRE.MatchString(d.family) {
			errs = append(errs, fmt.Errorf("line %d: family name %q violates naming conventions", d.line, d.family))
		}
		if prev, dup := declared[d.family]; dup {
			errs = append(errs, fmt.Errorf("line %d: family %q already declared at line %d", d.line, d.family, prev.line))
			continue
		}
		declared[d.family] = d
	}

	type histState struct {
		lastCum    float64
		lastLe     float64
		infValue   float64
		hasInf     bool
		count      float64
		hasCount   bool
		hasSum     bool
		hasBuckets bool
	}
	hists := map[string]*histState{}
	seen := map[string]bool{}
	for _, pt := range p.points {
		if !promNameRE.MatchString(pt.Name) {
			errs = append(errs, fmt.Errorf("series name %q violates naming conventions", pt.Name))
		}
		for k := range pt.Labels {
			if !promNameRE.MatchString(k) || strings.Contains(k, ":") {
				errs = append(errs, fmt.Errorf("series %s: label name %q violates naming conventions", pt.Name, k))
			}
		}
		if key := pt.Key(); seen[key] {
			errs = append(errs, fmt.Errorf("duplicate series %s", key))
		} else {
			seen[key] = true
		}
		if pt.Exemplar != "" && !exemplarRE.MatchString(pt.Exemplar) {
			errs = append(errs, fmt.Errorf("series %s: malformed exemplar %q", pt.Name, pt.Exemplar))
		}

		family, suffix := familyOf(pt.Name, declared)
		d, ok := declared[family]
		if !ok {
			errs = append(errs, fmt.Errorf("series %s has no # TYPE declaration", pt.Name))
			continue
		}
		switch d.kind {
		case "counter":
			if suffix != "_total" {
				errs = append(errs, fmt.Errorf("counter series %s must use the _total suffix", pt.Name))
			}
			if pt.Value < 0 {
				errs = append(errs, fmt.Errorf("counter series %s is negative (%g)", pt.Name, pt.Value))
			}
		case "histogram":
			st := hists[family]
			if st == nil {
				st = &histState{lastLe: -1}
				hists[family] = st
			}
			switch suffix {
			case "_bucket":
				st.hasBuckets = true
				le := pt.Labels["le"]
				if le == "+Inf" {
					st.hasInf, st.infValue = true, pt.Value
				} else {
					b, err := strconv.ParseFloat(le, 64)
					if err != nil {
						errs = append(errs, fmt.Errorf("histogram %s: bad le %q", family, le))
						break
					}
					if b < st.lastLe {
						errs = append(errs, fmt.Errorf("histogram %s: le %g out of order after %g", family, b, st.lastLe))
					}
					st.lastLe = b
				}
				if pt.Value < st.lastCum {
					errs = append(errs, fmt.Errorf("histogram %s: bucket counts not cumulative (%g after %g)", family, pt.Value, st.lastCum))
				}
				st.lastCum = pt.Value
			case "_sum":
				st.hasSum = true
			case "_count":
				st.hasCount, st.count = true, pt.Value
			default:
				errs = append(errs, fmt.Errorf("histogram family %s has stray series %s", family, pt.Name))
			}
		}
	}
	for family, st := range hists {
		if !st.hasBuckets {
			continue
		}
		if !st.hasInf {
			errs = append(errs, fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", family))
		}
		if !st.hasSum {
			errs = append(errs, fmt.Errorf("histogram %s missing _sum", family))
		}
		if !st.hasCount {
			errs = append(errs, fmt.Errorf("histogram %s missing _count", family))
		} else if st.hasInf && st.infValue != st.count {
			errs = append(errs, fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", family, st.infValue, st.count))
		}
	}
	if !p.eof {
		errs = append(errs, fmt.Errorf("exposition does not terminate with # EOF"))
	}
	return errs
}

// familyOf resolves a series name to its declared family: for counters
// and histograms the family name is the series name minus the
// convention suffix.
func familyOf(name string, declared map[string]promTypeDecl) (family, suffix string) {
	if _, ok := declared[name]; ok {
		return name, ""
	}
	for _, s := range []string{"_total", "_bucket", "_sum", "_count"} {
		if base, found := strings.CutSuffix(name, s); found {
			if _, ok := declared[base]; ok {
				return base, s
			}
		}
	}
	return name, ""
}
