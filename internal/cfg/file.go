package cfg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"balance/internal/model"
)

// Write encodes the CFG in a line-oriented text format (.cfg):
//
//	cfg <name> entry <id>
//	block <id> [exit <count>]
//	op <class> [def <reg>] [use <reg>...]
//	bruse <reg>...
//	succ <to> <count>
//	end
//
// Blocks must appear in ID order; directives between "block" and "end"
// belong to that block.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "cfg %s entry %d\n", g.Name, g.Entry)
	for _, blk := range g.Blocks {
		fmt.Fprintf(bw, "block %d", blk.ID)
		if blk.ExitCount != 0 {
			fmt.Fprintf(bw, " exit %d", blk.ExitCount)
		}
		fmt.Fprintln(bw)
		for _, op := range blk.Ops {
			fmt.Fprintf(bw, "op %s", op.Class)
			if op.Def != 0 {
				fmt.Fprintf(bw, " def %d", op.Def)
			}
			if len(op.Uses) > 0 {
				fmt.Fprint(bw, " use")
				for _, u := range op.Uses {
					fmt.Fprintf(bw, " %d", u)
				}
			}
			fmt.Fprintln(bw)
		}
		if len(blk.BranchUses) > 0 {
			fmt.Fprint(bw, "bruse")
			for _, u := range blk.BranchUses {
				fmt.Fprintf(bw, " %d", u)
			}
			fmt.Fprintln(bw)
		}
		for _, e := range blk.Succs {
			fmt.Fprintf(bw, "succ %d %d\n", e.To, e.Count)
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

// Read parses a CFG written by Write.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	g := &Graph{}
	var cur *Block
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		errf := func(format string, args ...interface{}) error {
			return fmt.Errorf("cfg: line %d: %s", line, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "cfg":
			if sawHeader {
				return nil, errf("duplicate cfg header")
			}
			if len(f) != 4 || f[2] != "entry" {
				return nil, errf("malformed header (want: cfg <name> entry <id>)")
			}
			entry, err := strconv.Atoi(f[3])
			if err != nil {
				return nil, errf("bad entry id %q", f[3])
			}
			g.Name, g.Entry = f[1], entry
			sawHeader = true
		case "block":
			if !sawHeader {
				return nil, errf("block before cfg header")
			}
			if cur != nil {
				return nil, errf("nested block (missing end?)")
			}
			if len(f) < 2 {
				return nil, errf("block needs an id")
			}
			id, err := strconv.Atoi(f[1])
			if err != nil || id != len(g.Blocks) {
				return nil, errf("block ids must be dense and in order (got %q, want %d)", f[1], len(g.Blocks))
			}
			cur = &Block{ID: id}
			if len(f) >= 4 && f[2] == "exit" {
				c, err := strconv.ParseInt(f[3], 10, 64)
				if err != nil {
					return nil, errf("bad exit count %q", f[3])
				}
				cur.ExitCount = c
			}
		case "op":
			if cur == nil || len(f) < 2 {
				return nil, errf("misplaced or malformed op")
			}
			class, err := model.ParseClass(f[1])
			if err != nil {
				return nil, errf("%v", err)
			}
			op := Op{Class: class}
			i := 2
			for i < len(f) {
				switch f[i] {
				case "def":
					if i+1 >= len(f) {
						return nil, errf("def needs a register")
					}
					d, err := strconv.Atoi(f[i+1])
					if err != nil {
						return nil, errf("bad def register %q", f[i+1])
					}
					op.Def = Reg(d)
					i += 2
				case "use":
					i++
					for i < len(f) && f[i] != "def" {
						u, err := strconv.Atoi(f[i])
						if err != nil {
							return nil, errf("bad use register %q", f[i])
						}
						op.Uses = append(op.Uses, Reg(u))
						i++
					}
				default:
					return nil, errf("unknown op field %q", f[i])
				}
			}
			cur.Ops = append(cur.Ops, op)
		case "bruse":
			if cur == nil {
				return nil, errf("bruse outside block")
			}
			for _, s := range f[1:] {
				u, err := strconv.Atoi(s)
				if err != nil {
					return nil, errf("bad bruse register %q", s)
				}
				cur.BranchUses = append(cur.BranchUses, Reg(u))
			}
		case "succ":
			if cur == nil || len(f) != 3 {
				return nil, errf("misplaced or malformed succ")
			}
			to, err1 := strconv.Atoi(f[1])
			count, err2 := strconv.ParseInt(f[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, errf("bad succ fields")
			}
			cur.Succs = append(cur.Succs, Edge{To: to, Count: count})
		case "end":
			if cur == nil {
				return nil, errf("end without block")
			}
			g.Blocks = append(g.Blocks, cur)
			cur = nil
		default:
			return nil, errf("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cfg: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("cfg: unterminated block (missing end)")
	}
	if !sawHeader {
		return nil, fmt.Errorf("cfg: missing cfg header")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
