package cfg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestCFGRoundTrip(t *testing.T) {
	orig := diamond()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v\n%s", err, buf.String())
	}
	assertCFGEqual(t, orig, back)
}

func TestCFGRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for i := 0; i < 20; i++ {
		orig := Random("r", rng, DefaultRandom())
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		assertCFGEqual(t, orig, back)
	}
}

func assertCFGEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.Name != b.Name || a.Entry != b.Entry || len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("header mismatch: %s/%d/%d vs %s/%d/%d",
			a.Name, a.Entry, len(a.Blocks), b.Name, b.Entry, len(b.Blocks))
	}
	for i := range a.Blocks {
		ba, bb := a.Blocks[i], b.Blocks[i]
		if ba.ExitCount != bb.ExitCount || len(ba.Ops) != len(bb.Ops) ||
			len(ba.Succs) != len(bb.Succs) || len(ba.BranchUses) != len(bb.BranchUses) {
			t.Fatalf("block %d shape mismatch", i)
		}
		for oi := range ba.Ops {
			oa, ob := ba.Ops[oi], bb.Ops[oi]
			if oa.Class != ob.Class || oa.Def != ob.Def || len(oa.Uses) != len(ob.Uses) {
				t.Fatalf("block %d op %d mismatch: %+v vs %+v", i, oi, oa, ob)
			}
			for ui := range oa.Uses {
				if oa.Uses[ui] != ob.Uses[ui] {
					t.Fatalf("block %d op %d use %d mismatch", i, oi, ui)
				}
			}
		}
		for si := range ba.Succs {
			if ba.Succs[si] != bb.Succs[si] {
				t.Fatalf("block %d succ %d mismatch", i, si)
			}
		}
		for ui := range ba.BranchUses {
			if ba.BranchUses[ui] != bb.BranchUses[ui] {
				t.Fatalf("block %d bruse %d mismatch", i, ui)
			}
		}
	}
}

func TestCFGReadErrors(t *testing.T) {
	cases := map[string]string{
		"no header":    "block 0\nend\n",
		"double hdr":   "cfg a entry 0\ncfg b entry 0\n",
		"nested":       "cfg a entry 0\nblock 0\nblock 1\n",
		"sparse":       "cfg a entry 0\nblock 1\nend\n",
		"bad class":    "cfg a entry 0\nblock 0\nop pear\nend\n",
		"branch op":    "cfg a entry 0\nblock 0\nop branch\nend\n",
		"bad succ":     "cfg a entry 0\nblock 0\nsucc x 1\nend\n",
		"out of range": "cfg a entry 0\nblock 0\nsucc 5 1\nend\n",
		"unterminated": "cfg a entry 0\nblock 0\n",
		"end alone":    "cfg a entry 0\nend\n",
		"bad entry":    "cfg a entry 9\nblock 0\nend\n",
		"unknown":      "cfg a entry 0\nfrob\n",
	}
	for name, text := range cases {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted invalid input", name)
		}
	}
}

func TestCFGReadComments(t *testing.T) {
	text := `
# hot diamond
cfg demo entry 0
block 0
op int def 1
op load use 1 def 2
bruse 2
succ 1 10
end
block 1 exit 10
op store use 2
end
`
	g, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "demo" || len(g.Blocks) != 2 {
		t.Fatalf("parse failed: %+v", g)
	}
	if g.Blocks[0].Ops[1].Def != 2 || len(g.Blocks[0].Ops[1].Uses) != 1 {
		t.Errorf("op fields wrong: %+v", g.Blocks[0].Ops[1])
	}
	if g.Blocks[1].ExitCount != 10 {
		t.Errorf("exit count = %d", g.Blocks[1].ExitCount)
	}
	sbs, err := FormAll(g, DefaultFormation())
	if err != nil {
		t.Fatal(err)
	}
	if len(sbs) == 0 {
		t.Fatal("no superblocks from parsed CFG")
	}
}
