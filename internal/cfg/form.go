package cfg

import (
	"fmt"

	"balance/internal/model"
)

// FormSuperblock converts one trace into a superblock. Data dependences are
// derived from the virtual-register flow along the trace (uses of registers
// defined earlier in the trace; registers defined outside are live-in and
// contribute no edge) plus conservative memory ordering (a store depends on
// every prior memory operation; a load depends on the last prior store).
// Each non-final block contributes an exit branch whose probability is the
// profile probability of leaving the trace at that block, chained with the
// reach probability of getting that far.
func FormSuperblock(g *Graph, tr Trace, index int) (*model.Superblock, error) {
	if len(tr.Blocks) == 0 {
		return nil, fmt.Errorf("cfg: empty trace")
	}
	name := fmt.Sprintf("%s/tr%04d", g.Name, index)
	b := model.NewBuilder(name)
	b.SetFreq(float64(tr.Count))

	lastDef := map[Reg]int{} // register -> op ID of its latest definition
	lastStore := -1
	var memOps []int // all prior memory ops (for store ordering)

	reach := 1.0
	for pos, blkID := range tr.Blocks {
		blk := g.Blocks[blkID]
		for _, op := range blk.Ops {
			id := b.AddOp(op.Class)
			for _, u := range op.Uses {
				if u == 0 {
					continue
				}
				if def, ok := lastDef[u]; ok {
					b.Dep(def, id)
				}
			}
			switch op.Class {
			case model.Store:
				for _, m := range memOps {
					b.Dep(m, id)
				}
				lastStore = id
				memOps = append(memOps, id)
			case model.Load:
				if lastStore >= 0 {
					b.Dep(lastStore, id)
				}
				memOps = append(memOps, id)
			}
			if op.Def != 0 {
				lastDef[op.Def] = id
			}
		}
		// Exit probability: reach × P(off-trace at this block).
		offProb := 1.0
		if pos+1 < len(tr.Blocks) {
			total := blk.Count()
			onCount := int64(0)
			next := tr.Blocks[pos+1]
			for _, e := range blk.Succs {
				if e.To == next {
					onCount += e.Count
				}
			}
			if total > 0 {
				offProb = 1 - float64(onCount)/float64(total)
			} else {
				offProb = 0
			}
		}
		exitProb := reach * offProb
		if pos+1 == len(tr.Blocks) {
			exitProb = reach // the final exit absorbs the remainder
		}
		var brDeps []int
		for _, u := range blk.BranchUses {
			if u == 0 {
				continue
			}
			if def, ok := lastDef[u]; ok {
				brDeps = append(brDeps, def)
			}
		}
		b.Branch(exitProb, brDeps...)
		reach -= exitProb
		if reach < 0 {
			reach = 0
		}
	}
	return b.Build()
}

// FormAll grows traces over the graph and forms a superblock from each
// trace that contains at least one operation.
func FormAll(g *Graph, cfg FormationConfig) ([]*model.Superblock, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	traces := GrowTraces(g, cfg)
	var out []*model.Superblock
	for i, tr := range traces {
		sb, err := FormSuperblock(g, tr, i)
		if err != nil {
			return nil, fmt.Errorf("cfg: trace %d of %s: %w", i, g.Name, err)
		}
		out = append(out, sb)
	}
	return out, nil
}
