package cfg

import (
	"math"
	"math/rand"
	"testing"

	"balance/internal/model"
	"balance/internal/sched"
)

// diamond builds a four-block diamond with a hot left path:
//
//	    B0 (1000)
//	   /   \
//	B1(900) B2(100)
//	   \   /
//	    B3
func diamond() *Graph {
	g := &Graph{Name: "diamond", Entry: 0}
	g.Blocks = []*Block{
		{ID: 0, Ops: []Op{{Class: model.Int, Def: 1}}, BranchUses: []Reg{1},
			Succs: []Edge{{To: 1, Count: 900}, {To: 2, Count: 100}}},
		{ID: 1, Ops: []Op{{Class: model.Int, Uses: []Reg{1}, Def: 2}},
			Succs: []Edge{{To: 3, Count: 900}}},
		{ID: 2, Ops: []Op{{Class: model.Int, Uses: []Reg{1}, Def: 3}},
			Succs: []Edge{{To: 3, Count: 100}}},
		{ID: 3, Ops: []Op{{Class: model.Int, Uses: []Reg{2}, Def: 4}}, BranchUses: []Reg{4},
			ExitCount: 1000},
	}
	return g
}

func TestValidate(t *testing.T) {
	g := diamond()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := diamond()
	bad.Blocks[0].Succs[0].To = 99
	if err := bad.Validate(); err == nil {
		t.Error("accepted out-of-range edge")
	}
	bad2 := diamond()
	bad2.Blocks[1].Ops = append(bad2.Blocks[1].Ops, Op{Class: model.Branch})
	if err := bad2.Validate(); err == nil {
		t.Error("accepted explicit branch op")
	}
}

func TestGrowTracesHotPath(t *testing.T) {
	g := diamond()
	traces := GrowTraces(g, DefaultFormation())
	if len(traces) == 0 {
		t.Fatal("no traces")
	}
	// The hottest trace starts at B0 and follows the 90% edge to B1 and on
	// to B3.
	tr := traces[0]
	want := []int{0, 1, 3}
	if len(tr.Blocks) != len(want) {
		t.Fatalf("trace = %v, want %v", tr.Blocks, want)
	}
	for i := range want {
		if tr.Blocks[i] != want[i] {
			t.Fatalf("trace = %v, want %v", tr.Blocks, want)
		}
	}
	if tr.Count != 1000 {
		t.Errorf("trace count = %d", tr.Count)
	}
	// B2 ends up in its own trace.
	found := false
	for _, tr := range traces[1:] {
		for _, b := range tr.Blocks {
			if b == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("block 2 missing from traces")
	}
}

func TestMutualMostLikely(t *testing.T) {
	// B3's hottest predecessor is B1 (900 vs 100); a trace arriving from
	// B2 must not swallow B3.
	g := diamond()
	cfg := DefaultFormation()
	traces := GrowTraces(g, cfg)
	for _, tr := range traces {
		if len(tr.Blocks) >= 2 && tr.Blocks[0] == 2 {
			t.Errorf("cold trace %v extended past the mutual check", tr.Blocks)
		}
	}
	// Without the mutual requirement B2's trace may extend if B3 is
	// unvisited — but B3 is hot, so it is visited first; drop the check and
	// thresholds to observe the difference on a crafted graph instead.
	g2 := &Graph{Name: "chain", Entry: 0}
	g2.Blocks = []*Block{
		{ID: 0, Succs: []Edge{{To: 2, Count: 10}}},
		{ID: 1, Succs: []Edge{{To: 2, Count: 990}}},
		{ID: 2, ExitCount: 1000},
	}
	cfg.RequireMutual = true
	traces = GrowTraces(g2, cfg)
	// Seeds: B2 (1000) first -> trace {2}; then B1 -> B2 visited; then B0.
	if len(traces[0].Blocks) != 1 || traces[0].Blocks[0] != 2 {
		t.Errorf("hottest trace = %v", traces[0].Blocks)
	}
}

func TestFormSuperblockProbabilities(t *testing.T) {
	g := diamond()
	traces := GrowTraces(g, DefaultFormation())
	sb, err := FormSuperblock(g, traces[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Validate(); err != nil {
		t.Fatal(err)
	}
	// Trace 0-1-3: exit at B0 with probability 0.1, B1 with 0 (sole
	// successor on trace), final exit with 0.9.
	if sb.NumBranches() != 3 {
		t.Fatalf("formed %d exits, want 3", sb.NumBranches())
	}
	if math.Abs(sb.Prob[0]-0.1) > 1e-9 {
		t.Errorf("first exit prob = %v, want 0.1", sb.Prob[0])
	}
	if math.Abs(sb.Prob[1]-0) > 1e-9 {
		t.Errorf("second exit prob = %v, want 0", sb.Prob[1])
	}
	if math.Abs(sb.Prob[2]-0.9) > 1e-9 {
		t.Errorf("final exit prob = %v, want 0.9", sb.Prob[2])
	}
	if sb.Freq != 1000 {
		t.Errorf("freq = %v", sb.Freq)
	}
}

func TestFormSuperblockDataflow(t *testing.T) {
	g := diamond()
	traces := GrowTraces(g, DefaultFormation())
	sb, err := FormSuperblock(g, traces[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	// Op layout: op0 = B0's int (def r1), br, op2 = B1's int (uses r1),
	// br, op4 = B3's int (uses r2 = op2's def), br.
	dep := false
	for _, e := range sb.G.Succs(0) {
		if e.To == 2 {
			dep = true
		}
	}
	if !dep {
		t.Error("register dependence r1: op0 -> op2 missing")
	}
	dep = false
	for _, e := range sb.G.Succs(2) {
		if e.To == 4 {
			dep = true
		}
	}
	if !dep {
		t.Error("register dependence r2: op2 -> op4 missing")
	}
}

func TestMemoryOrdering(t *testing.T) {
	g := &Graph{Name: "mem", Entry: 0}
	g.Blocks = []*Block{{
		ID: 0,
		Ops: []Op{
			{Class: model.Load, Def: 1},
			{Class: model.Store, Uses: []Reg{1}},
			{Class: model.Load, Def: 2},
			{Class: model.Store, Uses: []Reg{2}},
		},
		BranchUses: []Reg{2},
		ExitCount:  10,
	}}
	sbs, err := FormAll(g, DefaultFormation())
	if err != nil {
		t.Fatal(err)
	}
	sb := sbs[0]
	// Load0 -> Store1 (register + memory), Store1 -> Load2, Load2 -> Store3,
	// Store1 -> Store3.
	mustDep := [][2]int{{0, 1}, {1, 2}, {2, 3}, {1, 3}}
	for _, d := range mustDep {
		found := false
		for _, e := range sb.G.Succs(d[0]) {
			if e.To == d[1] {
				found = true
			}
		}
		if !found {
			t.Errorf("memory ordering edge %d->%d missing", d[0], d[1])
		}
	}
}

func TestRandomCFGFormsSchedulableSuperblocks(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for i := 0; i < 20; i++ {
		g := Random("rand", rng, DefaultRandom())
		sbs, err := FormAll(g, DefaultFormation())
		if err != nil {
			t.Fatal(err)
		}
		if len(sbs) == 0 {
			t.Fatal("no superblocks formed")
		}
		for _, sb := range sbs {
			if err := sb.Validate(); err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
			for _, m := range []*model.Machine{model.GP2(), model.FS4()} {
				s, _, err := sched.ListSchedule(sb, m, sched.IntsToFloats(sb.G.Heights()))
				if err != nil {
					t.Fatal(err)
				}
				if err := sched.Verify(sb, m, s); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestRandomCFGCountsConserved(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	g := Random("flow", rng, RandomConfig{Blocks: 20, OpsPerBlockMax: 5, MemFrac: 0.2, BranchyProb: 0.8, EntryCount: 5000})
	// Total region exits must equal the entry count (flow conservation).
	var exits int64
	for _, b := range g.Blocks {
		exits += b.ExitCount
	}
	if exits != 5000 {
		t.Errorf("exit counts sum to %d, want 5000", exits)
	}
}
