// Package cfg provides a control-flow-graph substrate and superblock
// formation. The paper's superblocks were formed by the LEGO compiler from
// profiled SPECint95 control-flow graphs; this package reproduces that
// pipeline synthetically: profiled CFGs over register-based operations are
// grown into hot traces with the classic mutual-most-likely heuristic and
// emitted as model.Superblock values with exit probabilities derived from
// the edge profile.
package cfg

import (
	"fmt"

	"balance/internal/model"
)

// Reg is a virtual register number. Register 0 is reserved to mean "no
// register" (for operations without a result, e.g. stores).
type Reg int

// Op is one operation inside a basic block. Data flow is expressed through
// virtual registers: Uses lists the registers read, Def the register
// written (0 if none). Branches are implicit block terminators and are not
// listed as Ops.
type Op struct {
	// Class is the operation kind (must not be model.Branch).
	Class model.Class
	// Uses lists the registers the operation reads.
	Uses []Reg
	// Def is the register the operation writes (0 = none).
	Def Reg
}

// Edge is a profiled control-flow edge.
type Edge struct {
	// To is the destination block ID.
	To int
	// Count is the number of times the edge was taken in the profile.
	Count int64
}

// Block is a basic block: straight-line operations ended by an implicit
// (conditional) branch.
type Block struct {
	// ID is the block's index in its Graph.
	ID int
	// Ops lists the block's operations in program order.
	Ops []Op
	// BranchUses lists the registers the terminating branch reads.
	BranchUses []Reg
	// Succs lists the profiled control-flow successors (0, 1, or 2).
	Succs []Edge
	// ExitCount counts executions that leave the region from this block
	// (procedure returns and region exits).
	ExitCount int64
}

// Count returns the block's total execution count (sum of outgoing edge
// counts plus region exits).
func (b *Block) Count() int64 {
	total := b.ExitCount
	for _, e := range b.Succs {
		total += e.Count
	}
	return total
}

// Graph is a profiled control-flow graph for one region.
type Graph struct {
	// Name identifies the region.
	Name string
	// Blocks holds the basic blocks, indexed by ID.
	Blocks []*Block
	// Entry is the region's entry block ID.
	Entry int
}

// Validate checks structural invariants: edge targets in range, entry in
// range, non-negative counts, at most two successors, and no branch-class
// ops inside blocks.
func (g *Graph) Validate() error {
	if g.Entry < 0 || g.Entry >= len(g.Blocks) {
		return fmt.Errorf("cfg: entry %d out of range", g.Entry)
	}
	for i, b := range g.Blocks {
		if b.ID != i {
			return fmt.Errorf("cfg: block %d has mismatched ID %d", i, b.ID)
		}
		if len(b.Succs) > 2 {
			return fmt.Errorf("cfg: block %d has %d successors", i, len(b.Succs))
		}
		if b.ExitCount < 0 {
			return fmt.Errorf("cfg: block %d has negative exit count", i)
		}
		for _, e := range b.Succs {
			if e.To < 0 || e.To >= len(g.Blocks) {
				return fmt.Errorf("cfg: block %d has edge to %d (out of range)", i, e.To)
			}
			if e.Count < 0 {
				return fmt.Errorf("cfg: block %d has negative edge count", i)
			}
		}
		for oi, op := range b.Ops {
			if op.Class == model.Branch {
				return fmt.Errorf("cfg: block %d op %d is a branch (branches are implicit)", i, oi)
			}
		}
	}
	return nil
}

// FormationConfig controls superblock formation.
type FormationConfig struct {
	// MinTakenProb is the minimum probability an edge needs to extend a
	// trace (the classic 0.6-0.8 range; default 0.6).
	MinTakenProb float64
	// MinCount is the minimum execution count for a block to seed or join
	// a trace (default 1).
	MinCount int64
	// MaxBlocks caps the trace length (default 32).
	MaxBlocks int
	// RequireMutual demands the mutual-most-likely condition: the chosen
	// successor's hottest predecessor edge must be the trace edge (default
	// true in DefaultFormation).
	RequireMutual bool
}

// DefaultFormation returns the standard formation parameters.
func DefaultFormation() FormationConfig {
	return FormationConfig{MinTakenProb: 0.6, MinCount: 1, MaxBlocks: 32, RequireMutual: true}
}

// Trace is a sequence of block IDs selected by trace growing.
type Trace struct {
	Blocks []int
	// Count is the execution count of the trace head.
	Count int64
}

// GrowTraces partitions the hot blocks of the graph into traces with the
// mutual-most-likely heuristic: repeatedly seed a trace at the hottest
// unvisited block and extend it along the most probable successor edge
// while the edge is hot enough and the successor's own hottest incoming
// edge is the trace edge.
func GrowTraces(g *Graph, cfg FormationConfig) []Trace {
	if cfg.MinTakenProb <= 0 {
		cfg.MinTakenProb = 0.6
	}
	if cfg.MaxBlocks <= 0 {
		cfg.MaxBlocks = 32
	}
	if cfg.MinCount <= 0 {
		cfg.MinCount = 1
	}
	n := len(g.Blocks)
	// Precompute each block's hottest incoming edge source.
	bestPred := make([]int, n)
	bestPredCount := make([]int64, n)
	for i := range bestPred {
		bestPred[i] = -1
	}
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Count > bestPredCount[e.To] {
				bestPredCount[e.To] = e.Count
				bestPred[e.To] = b.ID
			}
		}
	}
	// Seeds in decreasing execution count (ties: lower ID first).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	counts := make([]int64, n)
	for i, b := range g.Blocks {
		counts[i] = b.Count()
	}
	sortBy(order, func(a, b int) bool {
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return a < b
	})

	visited := make([]bool, n)
	var traces []Trace
	for _, seed := range order {
		if visited[seed] || counts[seed] < cfg.MinCount {
			continue
		}
		tr := Trace{Blocks: []int{seed}, Count: counts[seed]}
		visited[seed] = true
		cur := seed
		for len(tr.Blocks) < cfg.MaxBlocks {
			blk := g.Blocks[cur]
			total := blk.Count()
			if total == 0 {
				break
			}
			// Most probable successor edge.
			var best *Edge
			for i := range blk.Succs {
				if best == nil || blk.Succs[i].Count > best.Count {
					best = &blk.Succs[i]
				}
			}
			if best == nil {
				break
			}
			prob := float64(best.Count) / float64(total)
			if prob < cfg.MinTakenProb {
				break
			}
			next := best.To
			if visited[next] || counts[next] < cfg.MinCount {
				break
			}
			if cfg.RequireMutual && bestPred[next] != cur {
				break
			}
			tr.Blocks = append(tr.Blocks, next)
			visited[next] = true
			cur = next
		}
		traces = append(traces, tr)
	}
	return traces
}

// sortBy is a tiny insertion sort keeping the dependency surface minimal.
func sortBy(xs []int, less func(a, b int) bool) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
