package cfg

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the .cfg parser: no panics, accepted graphs validate,
// round-trip, and survive superblock formation.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, diamond()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("cfg a entry 0\nblock 0 exit 5\nop int def 1\nbruse 1\nend\n")
	f.Add("cfg a entry 0\nblock 0\nsucc 0 1\nend\n")
	f.Add("block 0\nend\n")

	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid graph: %v", verr)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, g); werr != nil {
			t.Fatalf("cannot re-encode accepted graph: %v", werr)
		}
		back, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round trip failed: %v", rerr)
		}
		if len(back.Blocks) != len(g.Blocks) {
			t.Fatal("round trip changed the graph")
		}
		// Formation must not crash on any accepted graph (it may produce
		// degenerate traces, which is fine). Graphs with cycles in the
		// profile edges are rejected by Validate's range checks only, so
		// guard formation against self-loops by bounding trace length.
		sbs, ferr := FormAll(g, FormationConfig{MinTakenProb: 0.6, MaxBlocks: 8})
		if ferr != nil {
			return
		}
		for _, sb := range sbs {
			if verr := sb.Validate(); verr != nil {
				t.Fatalf("formation produced an invalid superblock: %v", verr)
			}
		}
	})
}
