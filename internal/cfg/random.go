package cfg

import (
	"fmt"
	"math/rand"

	"balance/internal/model"
)

// RandomConfig parameterizes random profiled-CFG generation.
type RandomConfig struct {
	// Blocks is the number of basic blocks (≥ 1).
	Blocks int
	// OpsPerBlockMax bounds each block's operation count (≥ 1).
	OpsPerBlockMax int
	// MemFrac is the fraction of memory operations.
	MemFrac float64
	// BranchyProb is the probability that a block ends with a two-way
	// branch rather than falling through.
	BranchyProb float64
	// EntryCount is the profile count entering the region.
	EntryCount int64
}

// DefaultRandom returns reasonable generation parameters.
func DefaultRandom() RandomConfig {
	return RandomConfig{Blocks: 12, OpsPerBlockMax: 8, MemFrac: 0.25, BranchyProb: 0.7, EntryCount: 1000}
}

// Random builds a random acyclic profiled CFG: blocks are laid out in
// topological order, each block branches to one or two later blocks (the
// last block exits the region), and profile counts flow from the entry
// along randomly biased edges so that every block's incoming and outgoing
// counts are consistent.
func Random(name string, rng *rand.Rand, cfg RandomConfig) *Graph {
	if cfg.Blocks < 1 {
		cfg.Blocks = 1
	}
	if cfg.OpsPerBlockMax < 1 {
		cfg.OpsPerBlockMax = 1
	}
	if cfg.EntryCount < 1 {
		cfg.EntryCount = 1
	}
	g := &Graph{Name: name, Entry: 0}
	nextReg := Reg(1)
	// liveRegs tracks registers defined anywhere earlier (approximating
	// live-ins across blocks; the formation treats unknown defs as live-in,
	// so imprecision here is harmless).
	var liveRegs []Reg

	for i := 0; i < cfg.Blocks; i++ {
		blk := &Block{ID: i}
		nOps := 1 + rng.Intn(cfg.OpsPerBlockMax)
		for o := 0; o < nOps; o++ {
			var class model.Class
			switch {
			case rng.Float64() < cfg.MemFrac:
				if rng.Float64() < 0.6 {
					class = model.Load
				} else {
					class = model.Store
				}
			default:
				class = model.Int
			}
			op := Op{Class: class}
			// Read up to two live registers.
			for u := 0; u < 1+rng.Intn(2) && len(liveRegs) > 0; u++ {
				op.Uses = append(op.Uses, liveRegs[rng.Intn(len(liveRegs))])
			}
			if class != model.Store {
				op.Def = nextReg
				nextReg++
				liveRegs = append(liveRegs, op.Def)
				if len(liveRegs) > 24 {
					liveRegs = liveRegs[len(liveRegs)-24:]
				}
			}
			blk.Ops = append(blk.Ops, op)
		}
		// The branch reads one or two recent registers.
		for u := 0; u < 1+rng.Intn(2) && len(liveRegs) > 0; u++ {
			blk.BranchUses = append(blk.BranchUses, liveRegs[rng.Intn(len(liveRegs))])
		}
		g.Blocks = append(g.Blocks, blk)
	}
	// Wire edges forward and flow profile counts.
	in := make([]int64, cfg.Blocks)
	in[0] = cfg.EntryCount
	for i := 0; i < cfg.Blocks; i++ {
		blk := g.Blocks[i]
		count := in[i]
		if i == cfg.Blocks-1 || count == 0 {
			blk.ExitCount = count
			continue
		}
		twoWay := rng.Float64() < cfg.BranchyProb && i+2 < cfg.Blocks
		if !twoWay {
			to := i + 1
			blk.Succs = []Edge{{To: to, Count: count}}
			in[to] += count
			continue
		}
		// Biased two-way split: the fall-through gets 50-95%.
		bias := 0.5 + 0.45*rng.Float64()
		fall := i + 1
		target := i + 2 + rng.Intn(cfg.Blocks-i-2)
		fallCount := int64(float64(count) * bias)
		blk.Succs = []Edge{{To: fall, Count: fallCount}, {To: target, Count: count - fallCount}}
		in[fall] += fallCount
		in[target] += count - fallCount
	}
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("cfg: random graph invalid: %v", err))
	}
	return g
}
