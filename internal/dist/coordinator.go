package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"balance/internal/resilience"
	"balance/internal/telemetry"
	"balance/internal/wire"
)

// Config configures a Coordinator.
type Config struct {
	// Spec is the evaluation contract handed to every worker.
	Spec EvalSpec
	// Units is the sharded corpus. Units with duplicate keys (structural
	// twins already coalesced by the engine's digest) collapse to one.
	Units []Unit
	// Journal is the shared completion log. Units whose keys are already
	// present resume as done without recomputation — this is both how a
	// restarted coordinator picks up where it left off and how a dist
	// run extends a single-process -checkpoint file. Required.
	Journal *resilience.Checkpoint
	// LeaseTTL is how long a lease survives without a heartbeat
	// (default 30s). MaxBatch caps units per lease call (default 8).
	// MaxHolders caps concurrent holders of one unit under endgame
	// work stealing (default 2).
	LeaseTTL   time.Duration
	MaxBatch   int
	MaxHolders int
	// RetryMS is the poll-again hint returned when all remaining work
	// is leased out and stealing is exhausted (default 500).
	RetryMS int64
	// TraceID, when non-zero, stitches worker spans into the
	// coordinator's trace.
	TraceID uint64
	// TraceCtx, when it carries a span context (see
	// telemetry.StartSpanCtx), parents the coordinator's per-unit
	// dist.unit spans under the caller's root span, and defaults TraceID
	// to that span's trace. Each leased unit then carries the unit span's
	// header as Unit.TraceParent, so worker-side spans for the unit nest
	// under it across the process boundary.
	TraceCtx context.Context
	// Now is the clock (tests inject a fake; default time.Now).
	Now func() time.Time
}

type unitState int

const (
	unitPending unitState = iota
	unitLeased
	unitDone
	unitFailed
)

// trackedUnit is a Unit plus its lease state. Holders maps worker ID to
// lease deadline; a unit may have several holders only via endgame
// stealing.
type trackedUnit struct {
	unit    Unit
	state   unitState
	holders map[string]time.Time
	// span is the coordinator-side dist.unit span: started at the unit's
	// first lease, ended at its first terminal transition (done or
	// failed). spanDone guards the end — a stolen duplicate's late
	// completion must not end it twice.
	span     telemetry.Span
	spanDone bool
}

type workerInfo struct {
	spanBase uint64
	joined   time.Time
	// lastContact and sawDone drive the quiesce phase: the coordinator
	// lingers after completion until every recently-active worker has
	// received a Done response, so stragglers finishing duplicated work
	// get a clean answer instead of connection-refused.
	lastContact time.Time
	sawDone     bool
}

// Coordinator owns the unit ledger. It runs no background goroutines:
// lease expiry is reaped lazily on every request, so a drained
// coordinator holds exactly the goroutines it started with.
type Coordinator struct {
	cfg   Config
	start time.Time

	mu      sync.Mutex
	units   map[string]*trackedUnit
	order   []string // deterministic hand-out order
	pending []string
	workers map[string]*workerInfo
	status  Status
	merged  *telemetry.Snapshot // folded worker snapshots

	doneOnce sync.Once
	doneCh   chan struct{}
	doneErr  error
}

// NewCoordinator builds the ledger, resuming every unit whose key the
// journal already holds.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Journal == nil {
		return nil, errors.New("dist: Config.Journal is required")
	}
	if len(cfg.Units) == 0 {
		return nil, errors.New("dist: no units to distribute")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.MaxHolders <= 0 {
		cfg.MaxHolders = 2
	}
	if cfg.RetryMS <= 0 {
		cfg.RetryMS = 500
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.TraceCtx == nil {
		cfg.TraceCtx = context.Background()
	}
	if cfg.TraceID == 0 {
		cfg.TraceID = telemetry.SpanFromContext(cfg.TraceCtx).Trace
	}
	c := &Coordinator{
		cfg:     cfg,
		start:   cfg.Now(),
		units:   make(map[string]*trackedUnit, len(cfg.Units)),
		workers: map[string]*workerInfo{},
		doneCh:  make(chan struct{}),
	}
	var prior Status
	if cfg.Journal.Lookup(MetaKey, &prior) {
		// Counter continuity across coordinator restarts: reassignments,
		// steals, and duplicates that happened under the previous
		// incarnation stay visible in the final meta record instead of
		// resetting to zero.
		c.status.Reassigned = prior.Reassigned
		c.status.Stolen = prior.Stolen
		c.status.Duplicates = prior.Duplicates
	}
	var probe struct{} // journal presence check; the payload is irrelevant
	for _, u := range cfg.Units {
		if u.Key == "" || u.Key == MetaKey {
			return nil, fmt.Errorf("dist: unit %q/%s has an invalid key", u.Benchmark, u.Machine)
		}
		if _, dup := c.units[u.Key]; dup {
			continue // structural twin: one computation serves both
		}
		tu := &trackedUnit{unit: u, holders: map[string]time.Time{}}
		c.units[u.Key] = tu
		c.order = append(c.order, u.Key)
		if cfg.Journal.Lookup(u.Key, &probe) {
			tu.state = unitDone
			c.status.Resumed++
		} else {
			tu.state = unitPending
			c.pending = append(c.pending, u.Key)
		}
	}
	c.status.Total = len(c.units)
	c.refreshCountsLocked()
	c.maybeCompleteLocked()
	return c, nil
}

// Join registers a worker and hands it the evaluation contract plus a
// disjoint span-ID range.
func (c *Coordinator) Join(req JoinRequest) (JoinResponse, error) {
	if req.Worker == "" {
		return JoinResponse{}, errors.New("dist: join without a worker id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.registerLocked(req.Worker)
	return JoinResponse{
		Version:    ProtocolVersion,
		Spec:       c.cfg.Spec,
		LeaseTTLMS: c.cfg.LeaseTTL.Milliseconds(),
		TraceID:    c.cfg.TraceID,
		SpanBase:   w.spanBase,
	}, nil
}

// Lease hands out up to req.Max units. When the pending queue is empty
// but units are still leased elsewhere, it duplicates the stragglers'
// units (work stealing, capped by MaxHolders) — first result wins.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	if req.Worker == "" {
		return LeaseResponse{}, errors.New("dist: lease without a worker id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.registerLocked(req.Worker)
	c.reapLocked()
	if c.completeLocked() {
		c.ackDoneLocked(req.Worker, true)
		return LeaseResponse{Done: true}, nil
	}
	max := req.Max
	if max <= 0 || max > c.cfg.MaxBatch {
		max = c.cfg.MaxBatch
	}
	deadline := c.cfg.Now().Add(c.cfg.LeaseTTL)
	var out []Unit
	for len(out) < max && len(c.pending) > 0 {
		key := c.pending[0]
		c.pending = c.pending[1:]
		tu := c.units[key]
		if tu.state != unitPending {
			continue
		}
		tu.state = unitLeased
		tu.holders[req.Worker] = deadline
		c.startUnitSpanLocked(tu)
		out = append(out, tu.unit)
		telUnitsLeased.Inc()
	}
	if len(out) == 0 {
		// Endgame: everything is leased out. Duplicate stragglers'
		// units so one slow or dying worker cannot hold up the corpus.
		for _, key := range c.order {
			if len(out) >= max {
				break
			}
			tu := c.units[key]
			if tu.state != unitLeased || len(tu.holders) >= c.cfg.MaxHolders {
				continue
			}
			if _, mine := tu.holders[req.Worker]; mine {
				continue
			}
			tu.holders[req.Worker] = deadline
			c.startUnitSpanLocked(tu)
			out = append(out, tu.unit)
			c.status.Stolen++
			telUnitsStolen.Inc()
			telUnitsLeased.Inc()
		}
	}
	c.refreshCountsLocked()
	if len(out) == 0 {
		return LeaseResponse{RetryMS: c.cfg.RetryMS}, nil
	}
	return LeaseResponse{Units: out}, nil
}

// Heartbeat extends every lease the worker holds to a fresh TTL.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	if req.Worker == "" {
		return HeartbeatResponse{}, errors.New("dist: heartbeat without a worker id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.registerLocked(req.Worker)
	telHeartbeats.Inc()
	deadline := c.cfg.Now().Add(c.cfg.LeaseTTL)
	for _, tu := range c.units {
		if tu.state != unitLeased {
			continue
		}
		if _, held := tu.holders[req.Worker]; held {
			tu.holders[req.Worker] = deadline
		}
	}
	c.ackDoneLocked(req.Worker, c.completeLocked())
	return HeartbeatResponse{Done: c.completeLocked()}, nil
}

// Complete merges a batch of results under the first-result-wins rule:
// the first terminal result for a key is journaled (success) or marked
// failed; later arrivals — from stolen duplicates or from a worker whose
// lease expired but which finished anyway — are counted and discarded.
// A success always upgrades an earlier failure.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Worker != "" {
		c.registerLocked(req.Worker)
	}
	var resp CompleteResponse
	for _, r := range req.Results {
		tu, ok := c.units[r.Key]
		if !ok {
			continue // not our unit; a confused worker is not an error
		}
		delete(tu.holders, req.Worker)
		switch {
		case tu.state == unitDone:
			resp.Duplicates++
			c.status.Duplicates++
			telUnitsDuplicate.Inc()
		case r.Err != "" || len(r.Record) == 0:
			// Terminal for the dist pass: the unit is deterministic, so
			// retrying elsewhere would fail the same way. It is NOT
			// journaled — the final render recomputes it locally under
			// the caller's own error policy.
			if tu.state != unitFailed {
				tu.state = unitFailed
				telUnitsFailed.Inc()
				c.endUnitSpanLocked(tu, "failed")
			}
		default:
			if tu.state == unitFailed {
				// A stolen duplicate outlived the failure: take the work.
				tu.state = unitLeased
			}
			if err := c.cfg.Journal.Put(r.Key, r.Record); err != nil {
				c.failLocked(fmt.Errorf("dist: journal: %w", err))
				return resp, err
			}
			tu.state = unitDone
			resp.Accepted++
			telUnitsCompleted.Inc()
			c.endUnitSpanLocked(tu, "done")
		}
	}
	c.reapLocked()
	c.refreshCountsLocked()
	c.cfg.Journal.Put(MetaKey, c.status) //nolint:errcheck // refreshed every batch; the flush below reports
	// Per-batch durability boundary: a coordinator killed between batches
	// loses at most the results in flight, and its successor resumes every
	// flushed unit instead of recomputing the corpus.
	if err := c.cfg.Journal.Flush(); err != nil {
		err = fmt.Errorf("dist: journal: %w", err)
		c.failLocked(err)
		return resp, err
	}
	c.maybeCompleteLocked()
	resp.Done = c.completeLocked()
	c.ackDoneLocked(req.Worker, resp.Done)
	return resp, nil
}

// startUnitSpanLocked opens the unit's coordinator-side dist.unit span
// on first lease and stamps its SB-Trace header onto the unit, so every
// holder (including later stolen duplicates) parents the same span.
func (c *Coordinator) startUnitSpanLocked(tu *trackedUnit) {
	if tu.span.Active() || tu.spanDone {
		return
	}
	sp, _ := telemetry.Default().StartSpanCtx(c.cfg.TraceCtx, "dist.unit")
	if !sp.Active() {
		return
	}
	tu.span = sp
	tu.unit.TraceParent = sp.Context().Header()
}

// endUnitSpanLocked ends the unit's span at its first terminal
// transition. A late success upgrading an earlier failure does not
// reopen or re-end it.
func (c *Coordinator) endUnitSpanLocked(tu *trackedUnit, outcome string) {
	if !tu.span.Active() || tu.spanDone {
		return
	}
	tu.spanDone = true
	tu.span.End(
		telemetry.String("unit", tu.unit.Key),
		telemetry.String("outcome", outcome),
	)
}

// MergeTelemetry folds a worker's snapshot into the corpus-wide view. A
// span-ID range collision between snapshots (a worker allocating from a
// slice another process used — its trace file would alias spans) is
// counted on dist.span_collisions; the numeric fold still completes.
func (c *Coordinator) MergeTelemetry(req TelemetryRequest) {
	if req.Snapshot == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.merged == nil {
		c.merged = &telemetry.Snapshot{}
	}
	if err := c.merged.Merge(req.Snapshot); err != nil {
		telSpanCollisions.Inc()
	}
}

// MergedSnapshot returns this process's registry snapshot with every
// reported worker snapshot folded in — the corpus-wide telemetry view.
// The coordinator's own span-ID range participates in the collision
// check against the workers' stamped ranges.
func (c *Coordinator) MergedSnapshot() *telemetry.Snapshot {
	snap := telemetry.Default().Snapshot()
	snap.StampSpanRange("coordinator")
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := snap.Merge(c.merged); err != nil {
		telSpanCollisions.Inc()
	}
	return snap
}

// Snapshot returns the current progress counters.
func (c *Coordinator) Snapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	c.refreshCountsLocked()
	return c.status
}

// Wait blocks until every unit is done or failed (then flushes the
// journal and returns its error, if any) or ctx is cancelled.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-c.doneCh:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.doneErr
	}
}

// registerLocked returns the worker's registration, creating it on
// first contact. Lease and Heartbeat register implicitly so workers
// survive a coordinator restart: the new incarnation starts with an
// empty worker table, and demanding a fresh explicit Join would turn
// every surviving worker's next call into a permanent client error.
func (c *Coordinator) registerLocked(id string) *workerInfo {
	w, ok := c.workers[id]
	if !ok {
		w = &workerInfo{
			spanBase: uint64(len(c.workers)+1) << 40,
			joined:   c.cfg.Now(),
		}
		c.workers[id] = w
		c.status.Workers = len(c.workers)
		telWorkersJoined.Inc()
	}
	w.lastContact = c.cfg.Now()
	return w
}

// ackDoneLocked records that this worker was handed a Done response —
// from its point of view the run is over and it will not call back.
func (c *Coordinator) ackDoneLocked(id string, done bool) {
	if !done {
		return
	}
	if w, ok := c.workers[id]; ok {
		w.sawDone = true
	}
}

// Quiesced reports whether every worker either received a Done response
// or has been silent for a full lease TTL (dead by the same standard
// that forfeits its leases). While it is false, shutting the listener
// down would strand a straggler mid-request.
func (c *Coordinator) Quiesced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	for _, w := range c.workers {
		if !w.sawDone && now.Sub(w.lastContact) < c.cfg.LeaseTTL {
			return false
		}
	}
	return true
}

// AwaitQuiesce blocks until Quiesced or ctx expires. Call it after Wait:
// completion means every unit is terminal, but a worker may still be
// computing a duplicated unit it is about to report.
func (c *Coordinator) AwaitQuiesce(ctx context.Context) {
	for !c.Quiesced() {
		t := time.NewTimer(20 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// reapLocked expires leases: a holder past its deadline is dropped, and
// a unit with no holders left returns to the pending queue.
func (c *Coordinator) reapLocked() {
	now := c.cfg.Now()
	for _, key := range c.order {
		tu := c.units[key]
		if tu.state != unitLeased {
			continue
		}
		for w, deadline := range tu.holders {
			if now.After(deadline) {
				delete(tu.holders, w)
			}
		}
		if len(tu.holders) == 0 {
			tu.state = unitPending
			c.pending = append(c.pending, key)
			c.status.Reassigned++
			telUnitsReassigned.Inc()
		}
	}
}

// refreshCountsLocked recomputes the derived Status fields.
func (c *Coordinator) refreshCountsLocked() {
	var done, failed, pending, leased int
	for _, tu := range c.units {
		switch tu.state {
		case unitDone:
			done++
		case unitFailed:
			failed++
		case unitLeased:
			leased++
		default:
			pending++
		}
	}
	c.status.Done, c.status.Failed = done, failed
	c.status.Pending, c.status.Leased = pending, leased
	c.status.Workers = len(c.workers)
	c.status.Complete = done+failed == len(c.units)
}

func (c *Coordinator) completeLocked() bool { return c.status.Complete }

// maybeCompleteLocked finishes the run once every unit is terminal: the
// meta record and journal are flushed and Wait unblocks.
func (c *Coordinator) maybeCompleteLocked() {
	if !c.completeLocked() {
		return
	}
	c.doneOnce.Do(func() {
		c.cfg.Journal.Put(MetaKey, c.status) //nolint:errcheck // Flush below surfaces persistence errors
		if err := c.cfg.Journal.Flush(); err != nil {
			c.doneErr = err
		}
		close(c.doneCh)
	})
}

// failLocked aborts the run (journal write error): Wait returns err.
func (c *Coordinator) failLocked(err error) {
	c.doneOnce.Do(func() {
		c.doneErr = err
		close(c.doneCh)
	})
}

// Handler mounts the coordinator protocol plus the observability
// surface: /healthz (liveness, sbtop-compatible), /metrics (the merged
// corpus-wide exposition), and /dist/v1/status. Every protocol POST
// opens a dist.request span parented on the worker's SB-Trace header,
// and responses carry SB-Time so clients can clock-align trace files.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	post := func(path string, h func(w http.ResponseWriter, r *http.Request)) {
		mux.HandleFunc("POST "+path, func(w http.ResponseWriter, r *http.Request) {
			tctx := wire.ExtractTrace(r)
			sp, _ := telemetry.Default().StartSpanCtx(tctx, "dist.request")
			defer sp.End(telemetry.String("endpoint", path))
			// Goroutine labels let continuous profiles on the coordinator
			// attribute handler samples to the protocol endpoint.
			pprof.Do(tctx, pprof.Labels("endpoint", path), func(context.Context) {
				h(w, r)
			})
		})
	}
	post("/dist/v1/join", func(w http.ResponseWriter, r *http.Request) {
		var req JoinRequest
		if err := wire.DecodeJSON(r.Body, &req); err != nil {
			wire.WriteError(w, http.StatusBadRequest, "join: %v", err)
			return
		}
		resp, err := c.Join(req)
		if err != nil {
			wire.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, resp)
	})
	post("/dist/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if err := wire.DecodeJSON(r.Body, &req); err != nil {
			wire.WriteError(w, http.StatusBadRequest, "lease: %v", err)
			return
		}
		resp, err := c.Lease(req)
		if err != nil {
			wire.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, resp)
	})
	post("/dist/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if err := wire.DecodeJSON(r.Body, &req); err != nil {
			wire.WriteError(w, http.StatusBadRequest, "heartbeat: %v", err)
			return
		}
		resp, err := c.Heartbeat(req)
		if err != nil {
			wire.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, resp)
	})
	post("/dist/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if err := wire.DecodeJSON(r.Body, &req); err != nil {
			wire.WriteError(w, http.StatusBadRequest, "complete: %v", err)
			return
		}
		resp, err := c.Complete(req)
		if err != nil {
			wire.WriteError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, resp)
	})
	post("/dist/v1/telemetry", func(w http.ResponseWriter, r *http.Request) {
		var req TelemetryRequest
		if err := wire.DecodeJSON(r.Body, &req); err != nil {
			wire.WriteError(w, http.StatusBadRequest, "telemetry: %v", err)
			return
		}
		c.MergeTelemetry(req)
		wire.WriteJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("GET /dist/v1/status", func(w http.ResponseWriter, r *http.Request) {
		wire.WriteJSON(w, http.StatusOK, c.Snapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := c.Snapshot()
		status := "ok"
		if st.Complete {
			status = "draining"
		}
		wire.WriteJSON(w, http.StatusOK, wire.Health{
			Status:     status,
			InFlight:   int64(st.Leased),
			Queued:     int64(st.Pending),
			Workers:    st.Workers,
			Goroutines: runtime.NumGoroutine(),
			UptimeMS:   c.cfg.Now().Sub(c.start).Milliseconds(),
		})
	})
	mux.Handle("GET /metrics", telemetry.PromWriter{}.Handler())
	return wire.WithServerTime(mux)
}
