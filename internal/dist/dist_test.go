package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"balance/internal/bounds"
	"balance/internal/engine"
	_ "balance/internal/heuristics" // scheduler registry + cross-product source
	"balance/internal/model"
	"balance/internal/resilience"
	"balance/internal/sbfile"
	"balance/internal/testutil"
)

// testSpec is the evaluation contract every dist test shares.
var testSpec = EvalSpec{
	Bounds: bounds.Options{Triplewise: true, TripleMaxBranches: 16, WithLCOriginal: true},
	Best:   true,
}

// testUnits builds n random-superblock units on machine m with real
// engine keys.
func testUnits(t *testing.T, n int, m *model.Machine) ([]Unit, []*model.Superblock) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	units := make([]Unit, 0, n)
	sbs := make([]*model.Superblock, 0, n)
	for i := 0; i < n; i++ {
		sb := testutil.RandomSuperblock(rng, 12)
		key, err := engine.EvalKey(sb, m, testSpec.Bounds, testSpec.Schedulers, testSpec.Best, testSpec.Budget)
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := sbfile.Write(&buf, sb); err != nil {
			t.Fatal(err)
		}
		units = append(units, Unit{Key: key, Benchmark: "rand", Machine: m.Name, SB: buf.String()})
		sbs = append(sbs, sb)
	}
	return units, sbs
}

func machineGP2(t *testing.T) *model.Machine {
	t.Helper()
	m, err := model.MachineByName("GP2")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fakeClock is an injectable coordinator clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func TestDistEndToEndMatchesSingleProcess(t *testing.T) {
	m := machineGP2(t)
	units, sbs := testUnits(t, 6, m)
	journal, err := resilience.OpenCheckpoint(filepath.Join(t.TempDir(), "dist.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(Config{Spec: testSpec, Units: units, Journal: journal, LeaseTTL: time.Minute, MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	werrs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			werrs[i] = RunWorker(ctx, WorkerConfig{Coordinator: srv.URL, ID: string(rune('a' + i)), Client: srv.Client()})
		}(i)
	}
	wg.Wait()
	for i, werr := range werrs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := coord.Snapshot()
	if !st.Complete || st.Done != len(units) || st.Failed != 0 {
		t.Fatalf("status = %+v", st)
	}

	// The journal must be byte-identical, record for record, to what a
	// single-process engine run with a checkpoint would have written.
	local := resilience.NewMemory()
	jobs := make([]engine.Job, len(sbs))
	for i, sb := range sbs {
		jobs[i] = engine.Job{Benchmark: "rand", SB: sb}
	}
	ch, err := engine.Run(ctx, engine.Config{
		Jobs: jobs, Machine: m, Bounds: testSpec.Bounds, Best: testSpec.Best, Checkpoint: local,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Collect(ch); err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		var dr, lr json.RawMessage
		if !journal.Lookup(u.Key, &dr) {
			t.Fatalf("journal missing %s", u.Key)
		}
		if !local.Lookup(u.Key, &lr) {
			t.Fatalf("local checkpoint missing %s", u.Key)
		}
		if !bytes.Equal(dr, lr) {
			t.Fatalf("record mismatch for %s:\ndist:  %s\nlocal: %s", u.Key, dr, lr)
		}
	}
}

func TestLeaseExpiryReassignsFirstResultWins(t *testing.T) {
	m := machineGP2(t)
	units, _ := testUnits(t, 1, m)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	coord, err := NewCoordinator(Config{
		Spec: testSpec, Units: units, Journal: resilience.NewMemory(),
		LeaseTTL: 10 * time.Second, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"w1", "w2"} {
		if _, err := coord.Join(JoinRequest{Worker: w}); err != nil {
			t.Fatal(err)
		}
	}
	lease, err := coord.Lease(LeaseRequest{Worker: "w1", Max: 1})
	if err != nil || len(lease.Units) != 1 {
		t.Fatalf("w1 lease = %+v, %v", lease, err)
	}
	// w1 goes silent; its lease expires and the unit is reassigned.
	clk.Advance(11 * time.Second)
	lease2, err := coord.Lease(LeaseRequest{Worker: "w2", Max: 1})
	if err != nil || len(lease2.Units) != 1 || lease2.Units[0].Key != units[0].Key {
		t.Fatalf("w2 lease = %+v, %v", lease2, err)
	}
	if st := coord.Snapshot(); st.Reassigned != 1 {
		t.Fatalf("Reassigned = %d, want 1", st.Reassigned)
	}
	// The "dead" worker finished anyway: first result wins and is kept.
	rec := json.RawMessage(`{"late":"but first"}`)
	resp, err := coord.Complete(CompleteRequest{Worker: "w1", Results: []UnitResult{{Key: units[0].Key, Record: rec}}})
	if err != nil || resp.Accepted != 1 {
		t.Fatalf("w1 complete = %+v, %v", resp, err)
	}
	// w2's duplicate result is discarded, not double-merged.
	resp2, err := coord.Complete(CompleteRequest{Worker: "w2", Results: []UnitResult{{Key: units[0].Key, Record: json.RawMessage(`{"dup":true}`)}}})
	if err != nil || resp2.Accepted != 0 || resp2.Duplicates != 1 || !resp2.Done {
		t.Fatalf("w2 complete = %+v, %v", resp2, err)
	}
	var got json.RawMessage
	if !coord.cfg.Journal.Lookup(units[0].Key, &got) || !bytes.Equal(got, rec) {
		t.Fatalf("journal holds %s, want first result", got)
	}
	if st := coord.Snapshot(); st.Duplicates != 1 || st.Done != 1 || !st.Complete {
		t.Fatalf("status = %+v", st)
	}
}

func TestEndgameWorkStealing(t *testing.T) {
	m := machineGP2(t)
	units, _ := testUnits(t, 2, m)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	coord, err := NewCoordinator(Config{
		Spec: testSpec, Units: units, Journal: resilience.NewMemory(),
		LeaseTTL: time.Minute, MaxHolders: 2, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"slow", "fast"} {
		if _, err := coord.Join(JoinRequest{Worker: w}); err != nil {
			t.Fatal(err)
		}
	}
	if lease, err := coord.Lease(LeaseRequest{Worker: "slow", Max: 2}); err != nil || len(lease.Units) != 2 {
		t.Fatalf("slow lease = %+v, %v", lease, err)
	}
	// Pending is empty but leases are live: fast steals duplicates.
	steal, err := coord.Lease(LeaseRequest{Worker: "fast", Max: 2})
	if err != nil || len(steal.Units) != 2 {
		t.Fatalf("steal lease = %+v, %v", steal, err)
	}
	if st := coord.Snapshot(); st.Stolen != 2 || st.Reassigned != 0 {
		t.Fatalf("status = %+v", st)
	}
	// A third worker finds every unit at MaxHolders: told to retry.
	if _, err := coord.Join(JoinRequest{Worker: "third"}); err != nil {
		t.Fatal(err)
	}
	if lease, err := coord.Lease(LeaseRequest{Worker: "third", Max: 2}); err != nil || len(lease.Units) != 0 || lease.RetryMS <= 0 {
		t.Fatalf("third lease = %+v, %v", lease, err)
	}
	// Fast wins both; slow's results are duplicates.
	mk := func(k string) []UnitResult { return []UnitResult{{Key: k, Record: json.RawMessage(`{"v":1}`)}} }
	if resp, err := coord.Complete(CompleteRequest{Worker: "fast", Results: append(mk(units[0].Key), mk(units[1].Key)...)}); err != nil || resp.Accepted != 2 {
		t.Fatalf("fast complete = %+v, %v", resp, err)
	}
	if resp, err := coord.Complete(CompleteRequest{Worker: "slow", Results: append(mk(units[0].Key), mk(units[1].Key)...)}); err != nil || resp.Duplicates != 2 {
		t.Fatalf("slow complete = %+v, %v", resp, err)
	}
}

func TestCoordinatorRestartResumesFromJournal(t *testing.T) {
	m := machineGP2(t)
	units, _ := testUnits(t, 4, m)
	path := filepath.Join(t.TempDir(), "journal.ckpt")
	journal, err := resilience.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(Config{Spec: testSpec, Units: units, Journal: journal, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Join(JoinRequest{Worker: "w"}); err != nil {
		t.Fatal(err)
	}
	lease, err := coord.Lease(LeaseRequest{Worker: "w", Max: 2})
	if err != nil || len(lease.Units) != 2 {
		t.Fatalf("lease = %+v, %v", lease, err)
	}
	var results []UnitResult
	for _, u := range lease.Units {
		results = append(results, UnitResult{Key: u.Key, Record: json.RawMessage(`{"done":true}`)})
	}
	if _, err := coord.Complete(CompleteRequest{Worker: "w", Results: results}); err != nil {
		t.Fatal(err)
	}
	if err := journal.Flush(); err != nil {
		t.Fatal(err)
	}

	// "Kill" the coordinator; a fresh one on the same journal resumes.
	journal2, err := resilience.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	coord2, err := NewCoordinator(Config{Spec: testSpec, Units: units, Journal: journal2, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	st := coord2.Snapshot()
	if st.Resumed != 2 || st.Done != 2 || st.Pending != 2 || st.Complete {
		t.Fatalf("restarted status = %+v", st)
	}
	// Only the unfinished units are handed out again.
	if _, err := coord2.Join(JoinRequest{Worker: "w2"}); err != nil {
		t.Fatal(err)
	}
	lease2, err := coord2.Lease(LeaseRequest{Worker: "w2", Max: 10})
	if err != nil || len(lease2.Units) != 2 {
		t.Fatalf("post-restart lease = %+v, %v", lease2, err)
	}
	for _, u := range lease2.Units {
		for _, done := range lease.Units {
			if u.Key == done.Key {
				t.Fatalf("finished unit %s re-leased after restart", u.Key)
			}
		}
	}
}

func TestFailedUnitIsTerminalAndUnjournaled(t *testing.T) {
	m := machineGP2(t)
	units, _ := testUnits(t, 1, m)
	journal := resilience.NewMemory()
	coord, err := NewCoordinator(Config{Spec: testSpec, Units: units, Journal: journal, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Join(JoinRequest{Worker: "w"}); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Lease(LeaseRequest{Worker: "w", Max: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := coord.Complete(CompleteRequest{Worker: "w", Results: []UnitResult{{Key: units[0].Key, Err: "poisoned"}}})
	if err != nil || !resp.Done {
		t.Fatalf("complete = %+v, %v", resp, err)
	}
	st := coord.Snapshot()
	if st.Failed != 1 || st.Done != 0 || !st.Complete {
		t.Fatalf("status = %+v", st)
	}
	var raw json.RawMessage
	if journal.Lookup(units[0].Key, &raw) {
		t.Fatal("failed unit was journaled; the final render must recompute it")
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorNoGoroutineGrowthAfterDrain(t *testing.T) {
	m := machineGP2(t)
	units, _ := testUnits(t, 3, m)
	before := runtime.NumGoroutine()

	journal := resilience.NewMemory()
	coord, err := NewCoordinator(Config{Spec: testSpec, Units: units, Journal: journal, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := RunWorker(ctx, WorkerConfig{Coordinator: srv.URL, ID: "solo", Client: srv.Client()}); err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Client().CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after drain = %d, want <= %d", runtime.NumGoroutine(), before)
		}
		runtime.Gosched()
		time.Sleep(50 * time.Millisecond)
	}
}

// TestQuiesceWaitsForStragglers: after completion the coordinator is
// not quiesced until every recently-active worker has been handed a
// Done response; workers silent for a full lease TTL are written off.
func TestQuiesceWaitsForStragglers(t *testing.T) {
	m := machineGP2(t)
	units, _ := testUnits(t, 1, m)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	coord, err := NewCoordinator(Config{
		Spec: testSpec, Units: units, Journal: resilience.NewMemory(),
		LeaseTTL: 10 * time.Second, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"fast", "straggler"} {
		if _, err := coord.Join(JoinRequest{Worker: w}); err != nil {
			t.Fatal(err)
		}
	}
	lease, err := coord.Lease(LeaseRequest{Worker: "fast", Max: 1})
	if err != nil || len(lease.Units) != 1 {
		t.Fatalf("lease = %+v, %v", lease, err)
	}
	resp, err := coord.Complete(CompleteRequest{Worker: "fast", Results: []UnitResult{
		{Key: units[0].Key, Record: json.RawMessage(`{"ok":true}`)},
	}})
	if err != nil || !resp.Done {
		t.Fatalf("complete = %+v, %v", resp, err)
	}
	// "fast" saw Done in its complete response; "straggler" is recent
	// but has not heard the news: shutting down now would strand it.
	if coord.Quiesced() {
		t.Fatal("quiesced with a live worker that never saw Done")
	}
	// Any response on any verb carries the ack.
	if _, err := coord.Heartbeat(HeartbeatRequest{Worker: "straggler"}); err != nil {
		t.Fatal(err)
	}
	if !coord.Quiesced() {
		t.Fatal("not quiesced after every worker saw Done")
	}
	// A third worker that joins and then vanishes is waited for only
	// until it has been silent for a full lease TTL.
	if _, err := coord.Join(JoinRequest{Worker: "ghost"}); err != nil {
		t.Fatal(err)
	}
	if coord.Quiesced() {
		t.Fatal("quiesced with a fresh worker that never saw Done")
	}
	clk.Advance(11 * time.Second)
	if !coord.Quiesced() {
		t.Fatal("not quiesced after the silent worker aged out")
	}
}
