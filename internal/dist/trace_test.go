package dist

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"balance/internal/resilience"
	"balance/internal/telemetry"
)

// distJournal opens a throwaway checkpoint journal for one test.
func distJournal(t *testing.T) *resilience.Checkpoint {
	t.Helper()
	j, err := resilience.OpenCheckpoint(filepath.Join(t.TempDir(), "dist.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestUnitSpanLifecycle drives the coordinator API directly: the first
// lease opens a dist.unit span and stamps its header on the unit; the
// terminal completion ends it exactly once, even when a stolen
// duplicate finishes later.
func TestUnitSpanLifecycle(t *testing.T) {
	var buf bytes.Buffer
	reg := telemetry.Default()
	reg.SetSink(telemetry.NewJSONLSink(&buf))
	defer reg.SetSink(nil)

	m := machineGP2(t)
	units, _ := testUnits(t, 2, m)
	root := telemetry.NewSpanContext(0)
	coord, err := NewCoordinator(Config{
		Spec: testSpec, Units: units, Journal: distJournal(t),
		LeaseTTL: time.Minute, MaxBatch: 8,
		TraceCtx: telemetry.ContextWithSpan(context.Background(), root),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Join(JoinRequest{Worker: "w1"}); err != nil {
		t.Fatal(err)
	}
	lease, err := coord.Lease(LeaseRequest{Worker: "w1", Max: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(lease.Units) != 2 {
		t.Fatalf("leased %d units, want 2", len(lease.Units))
	}
	for _, u := range lease.Units {
		sc, ok := telemetry.ParseTraceHeader(u.TraceParent)
		if !ok || !sc.Valid() {
			t.Fatalf("unit %s: unparseable TraceParent %q", u.Key, u.TraceParent)
		}
		if sc.Trace != root.Trace {
			t.Errorf("unit %s: TraceParent trace %x, want root trace %x", u.Key, sc.Trace, root.Trace)
		}
	}
	// Complete the first unit twice (as a steal race would): the span
	// must end exactly once.
	res := []UnitResult{{Key: lease.Units[0].Key, Err: "boom"}}
	if _, err := coord.Complete(CompleteRequest{Worker: "w1", Results: res}); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Complete(CompleteRequest{Worker: "w1", Results: res}); err != nil {
		t.Fatal(err)
	}
	reg.SetSink(nil)

	events, err := telemetry.ParseJSONLTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ended := 0
	for i := range events {
		if events[i].Name != "dist.unit" {
			continue
		}
		ended++
		if events[i].Trace != root.Trace || events[i].Parent != root.Span {
			t.Errorf("dist.unit trace/parent = %x/%x, want %x/%x",
				events[i].Trace, events[i].Parent, root.Trace, root.Span)
		}
	}
	if ended != 1 {
		t.Fatalf("dist.unit ended %d times, want exactly 1 (one terminal unit)", ended)
	}
}

// TestDistTraceCrossesProcessBoundary runs a real coordinator/worker
// exchange over HTTP with a trace sink active and asserts the worker's
// engine.job spans parent under the coordinator's dist.unit spans in
// one shared trace — the tentpole guarantee the merged timeline relies
// on. (Coordinator and worker share one process here; the wire hop is
// real.)
func TestDistTraceCrossesProcessBoundary(t *testing.T) {
	var buf bytes.Buffer
	reg := telemetry.Default()
	reg.SetSink(telemetry.NewJSONLSink(&buf)) // JSONLSink serializes writers
	defer reg.SetSink(nil)

	m := machineGP2(t)
	units, _ := testUnits(t, 3, m)
	root := telemetry.NewSpanContext(0)
	coord, err := NewCoordinator(Config{
		Spec: testSpec, Units: units, Journal: distJournal(t),
		LeaseTTL: time.Minute, MaxBatch: 2,
		TraceCtx: telemetry.ContextWithSpan(context.Background(), root),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := RunWorker(ctx, WorkerConfig{Coordinator: srv.URL, ID: "w1", Client: srv.Client()}); err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	reg.SetSink(nil)

	events, err := telemetry.ParseJSONLTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	unitSpans := map[uint64]bool{}
	for i := range events {
		if events[i].Name == "dist.unit" && events[i].Trace == root.Trace {
			unitSpans[events[i].Span] = true
		}
	}
	if len(unitSpans) != len(units) {
		t.Fatalf("saw %d dist.unit spans, want %d", len(unitSpans), len(units))
	}
	jobs, requests := 0, 0
	for i := range events {
		switch events[i].Name {
		case "engine.job":
			jobs++
			if events[i].Trace != root.Trace {
				t.Errorf("engine.job in trace %x, want %x", events[i].Trace, root.Trace)
			}
			if !unitSpans[events[i].Parent] {
				t.Errorf("engine.job parent %x is not a dist.unit span", events[i].Parent)
			}
		case "dist.request":
			// The join request precedes the worker learning the trace
			// ID, so only post-join requests land in the root trace.
			if events[i].Trace == root.Trace {
				requests++
			}
		}
	}
	if jobs != len(units) {
		t.Errorf("saw %d engine.job spans, want %d", jobs, len(units))
	}
	if requests == 0 {
		t.Error("no dist.request spans: the handler did not join the worker's trace")
	}
}

// TestMergeCollisionCounted feeds the coordinator two worker snapshots
// whose stamped span-ID ranges overlap and asserts the
// dist.span_collisions counter records the clash while the numeric
// merge still lands.
func TestMergeCollisionCounted(t *testing.T) {
	m := machineGP2(t)
	units, _ := testUnits(t, 1, m)
	coord, err := NewCoordinator(Config{
		Spec: testSpec, Units: units, Journal: distJournal(t), LeaseTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := telSpanCollisions.Value()
	a := &telemetry.Snapshot{SpanRanges: []telemetry.SpanRange{{Owner: "wa", From: 1 << 40, To: 2 << 40}}}
	b := &telemetry.Snapshot{SpanRanges: []telemetry.SpanRange{{Owner: "wb", From: 1<<40 + 5, To: 1<<40 + 9}}}
	coord.MergeTelemetry(TelemetryRequest{Worker: "wa", Snapshot: a})
	coord.MergeTelemetry(TelemetryRequest{Worker: "wb", Snapshot: b})
	if got := telSpanCollisions.Value() - before; got != 1 {
		t.Fatalf("dist.span_collisions advanced by %d, want 1", got)
	}
}
