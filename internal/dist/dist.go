// Package dist turns corpus evaluation into a coordinator/worker system:
// the coordinator shards the corpus into content-addressed work units
// (the engine's checkpoint keys), hands them out as leases with
// deadlines over the internal/wire HTTP vocabulary, and journals
// completions through a shared resilience.Checkpoint so that worker
// crashes, network partitions, stragglers, and even a coordinator
// restart never lose finished work or produce duplicate results.
//
// The failure model, lease state machine, and exactly-once merge rule
// are documented in DESIGN.md ("Distributed evaluation & failure
// domains").
package dist

import (
	"encoding/json"

	"balance/internal/bounds"
	"balance/internal/resilience"
	"balance/internal/telemetry"
)

// ProtocolVersion guards the coordinator/worker wire contract. A worker
// joining a coordinator with a different version is rejected with a 400
// rather than silently miscomputing.
const ProtocolVersion = 1

// EvalSpec is everything a worker needs to evaluate a unit exactly the
// way the coordinator's own engine would: the bound options, the
// scheduler set (empty = the registry primaries), the Best meta-column,
// and the per-job budget. It is part of the join response, not of each
// unit, because one dist run never mixes evaluation configurations —
// the unit keys embed all of this already.
type EvalSpec struct {
	Bounds     bounds.Options  `json:"bounds"`
	Schedulers []string        `json:"schedulers,omitempty"`
	Best       bool            `json:"best"`
	Budget     resilience.Spec `json:"budget"`
}

// Unit is one content-addressed piece of work: evaluate the superblock
// (shipped as .sb text) on the named machine. Key is the
// engine.EvalKey — the journal key the result is merged under, byte-
// identical to the key a single-process run would use.
type Unit struct {
	Key       string `json:"key"`
	Benchmark string `json:"benchmark"`
	Machine   string `json:"machine"`
	SB        string `json:"sb"`
	// TraceParent, when present, is the SB-Trace header form of the
	// coordinator's per-unit span: the worker parents this unit's
	// engine.job span under it, so merged trace files show the unit's
	// spans crossing the coordinator→worker boundary in one tree. Empty
	// when the coordinator records no spans.
	TraceParent string `json:"trace_parent,omitempty"`
}

// JoinRequest announces a worker to the coordinator.
type JoinRequest struct {
	Worker string `json:"worker"`
}

// JoinResponse hands the worker its evaluation contract plus its slice
// of the shared trace-ID space.
type JoinResponse struct {
	Version int      `json:"version"`
	Spec    EvalSpec `json:"spec"`
	// LeaseTTLMS is how long a lease lives without a heartbeat; workers
	// heartbeat at a fraction of it.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// TraceID is the coordinator's trace: worker spans join it so the
	// merged trace file shows one tree for the whole corpus run.
	// SpanBase seeds the worker's span-ID allocator into a range
	// disjoint from the coordinator's and every other worker's.
	TraceID  uint64 `json:"trace_id"`
	SpanBase uint64 `json:"span_base"`
}

// LeaseRequest asks for up to Max units of work.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// LeaseResponse carries leased units. Done means the corpus is complete
// and the worker should exit; an empty Units with Done false means
// everything is currently leased elsewhere — poll again after RetryMS.
type LeaseResponse struct {
	Units   []Unit `json:"units,omitempty"`
	Done    bool   `json:"done"`
	RetryMS int64  `json:"retry_ms,omitempty"`
}

// HeartbeatRequest extends every lease the worker currently holds.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
}

// HeartbeatResponse tells the worker whether the corpus completed while
// it was computing (its remaining work is then best-effort).
type HeartbeatResponse struct {
	Done bool `json:"done"`
}

// UnitResult is one finished unit: the engine.Record as raw JSON
// (journaled verbatim, so the merged checkpoint is byte-identical to a
// single-process run's), or a terminal evaluation error.
type UnitResult struct {
	Key    string          `json:"key"`
	Record json.RawMessage `json:"record,omitempty"`
	Err    string          `json:"err,omitempty"`
}

// CompleteRequest returns a batch of results.
type CompleteRequest struct {
	Worker  string       `json:"worker"`
	Results []UnitResult `json:"results"`
}

// CompleteResponse reports the merge outcome: Accepted results were
// journaled; Duplicates lost the first-result-wins race (already done —
// completely normal under work stealing) and were discarded.
type CompleteResponse struct {
	Accepted   int  `json:"accepted"`
	Duplicates int  `json:"duplicates"`
	Done       bool `json:"done"`
}

// TelemetryRequest folds a worker's final telemetry snapshot into the
// coordinator's merged corpus-wide view.
type TelemetryRequest struct {
	Worker   string              `json:"worker"`
	Snapshot *telemetry.Snapshot `json:"snapshot"`
}

// Status is the coordinator's progress counters (GET /dist/v1/status),
// also journaled under the MetaKey record so a restarted coordinator
// and sbstat can report what a previous incarnation did.
type Status struct {
	Total   int `json:"total"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	// Resumed counts units recalled from the journal at coordinator
	// start (a restarted coordinator recomputes only the rest).
	Resumed int `json:"resumed"`
	// Reassigned counts lease expiries that returned a unit to the
	// pending queue; Stolen counts endgame duplications of still-leased
	// units; Duplicates counts completions discarded by
	// first-result-wins.
	Reassigned int  `json:"reassigned"`
	Stolen     int  `json:"stolen"`
	Duplicates int  `json:"duplicates"`
	Workers    int  `json:"workers"`
	Complete   bool `json:"complete"`
}

// MetaKey is the journal key of the coordinator's Status record. It is
// not a unit key (no evaluation produces it), so the engine never
// confuses it with work; readers like sbstat present it specially.
const MetaKey = "dist:meta"

// Distribution instruments, registered once in the default registry.
var (
	telUnitsLeased     = telemetry.Default().Counter("dist.units_leased")
	telUnitsCompleted  = telemetry.Default().Counter("dist.units_completed")
	telUnitsFailed     = telemetry.Default().Counter("dist.units_failed")
	telUnitsReassigned = telemetry.Default().Counter("dist.units_reassigned")
	telUnitsStolen     = telemetry.Default().Counter("dist.units_stolen")
	telUnitsDuplicate  = telemetry.Default().Counter("dist.units_duplicate")
	telWorkersJoined   = telemetry.Default().Counter("dist.workers_joined")
	telHeartbeats      = telemetry.Default().Counter("dist.heartbeats")
	// telSpanCollisions counts snapshot merges whose span-ID ranges
	// overlapped — two processes allocated from the same ID slice, so
	// their merged trace files would alias spans (see
	// telemetry.Snapshot.Merge).
	telSpanCollisions = telemetry.Default().Counter("dist.span_collisions")
)
