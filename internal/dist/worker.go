package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"balance/internal/engine"
	"balance/internal/model"
	"balance/internal/sbfile"
	"balance/internal/telemetry"
	"balance/internal/wire"
)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID names this worker to the coordinator (default "host-pid").
	ID string
	// MaxBatch asks for at most this many units per lease (0: the
	// coordinator's cap). Workers bounds the engine pool width (0:
	// GOMAXPROCS).
	MaxBatch int
	Workers  int
	// Retry is the transient-error policy for every coordinator call
	// (default: 8 attempts, 200ms base, 5s cap, equal jitter). Equal
	// jitter keeps half of each backoff deterministic, so the default
	// window is guaranteed to span several seconds — enough to ride out
	// a coordinator restart rather than racing it.
	Retry *wire.RetryPolicy
	// Client is the HTTP client (default: 30s timeout).
	Client *http.Client
	// OnLease, when set, observes each leased batch before evaluation —
	// the chaos harness uses it to die mid-lease deterministically.
	OnLease func(units []Unit)
	// Throttle stretches each batch by an artificial pause per leased
	// unit, taken while heartbeats run — a chaos/load-testing knob that
	// makes a fast corpus slow enough to kill processes mid-lease.
	Throttle time.Duration
}

// RunWorker joins the coordinator and evaluates leased units until the
// corpus is complete: lease → heartbeat while computing → complete,
// retrying transient coordinator errors with jittered backoff. On
// completion it posts this process's telemetry snapshot so the
// coordinator can report a merged corpus-wide view. Returns nil when the
// coordinator declared the corpus done, or the first permanent error.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	base := strings.TrimRight(cfg.Coordinator, "/")
	if base == "" {
		return fmt.Errorf("dist: worker needs a coordinator URL")
	}
	if cfg.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	retry := cfg.Retry
	if retry == nil {
		retry = &wire.RetryPolicy{MaxAttempts: 8, BaseDelay: 200 * time.Millisecond, MaxDelay: 5 * time.Second, Jitter: 0.5}
	}

	// The join post deliberately carries no span context: parenting the
	// coordinator's join span under this process's root would dangle if
	// this worker is killed before its exit flush writes that root —
	// lease/complete requests below join the coordinator's trace instead.
	joinCtx := telemetry.ContextWithSpan(ctx, telemetry.SpanContext{})
	var join JoinResponse
	if _, _, err := retry.Post(joinCtx, hc, base+"/dist/v1/join", JoinRequest{Worker: cfg.ID}, &join); err != nil {
		return fmt.Errorf("dist: join %s: %w", base, err)
	}
	if join.Version != ProtocolVersion {
		return fmt.Errorf("dist: coordinator speaks protocol v%d, this worker v%d", join.Version, ProtocolVersion)
	}
	if join.SpanBase > 0 {
		telemetry.SeedSpanIDs(join.SpanBase)
	}
	if join.TraceID != 0 {
		// Join the coordinator's trace as a fresh subtree root (Span 0):
		// naming any concrete parent span here would orphan our spans,
		// because the coordinator never emits a span with that ID. Units
		// carrying a TraceParent override this per-job below.
		ctx = telemetry.ContextWithSpan(ctx, telemetry.SpanContext{Trace: join.TraceID})
	}
	// Label every goroutine this worker spawns so continuous profiles
	// (coordinator- or worker-side) attribute samples to the worker.
	pprof.SetGoroutineLabels(pprof.WithLabels(ctx, pprof.Labels("dist_worker", cfg.ID)))
	defer pprof.SetGoroutineLabels(ctx)
	heartbeatEvery := time.Duration(join.LeaseTTLMS) * time.Millisecond / 3
	if heartbeatEvery <= 0 {
		heartbeatEvery = 10 * time.Second
	}

	memo := engine.NewMemo(0) // stolen duplicates of earlier units hit this
	machines := map[string]*model.Machine{}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		if _, _, err := retry.Post(ctx, hc, base+"/dist/v1/lease", LeaseRequest{Worker: cfg.ID, Max: cfg.MaxBatch}, &lease); err != nil {
			return fmt.Errorf("dist: lease: %w", err)
		}
		if lease.Done {
			break
		}
		if len(lease.Units) == 0 {
			wait := time.Duration(lease.RetryMS) * time.Millisecond
			if wait <= 0 {
				wait = 500 * time.Millisecond
			}
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
			continue
		}
		if cfg.OnLease != nil {
			cfg.OnLease(lease.Units)
		}

		results := evaluateUnits(ctx, heartbeatFunc(ctx, hc, retry, base, cfg.ID, heartbeatEvery), &join.Spec, memo, machines, cfg.Workers, cfg.Throttle, lease.Units)
		if err := ctx.Err(); err != nil {
			return err
		}
		var comp CompleteResponse
		if _, _, err := retry.Post(ctx, hc, base+"/dist/v1/complete", CompleteRequest{Worker: cfg.ID, Results: results}, &comp); err != nil {
			return fmt.Errorf("dist: complete: %w", err)
		}
		if comp.Done {
			break
		}
	}
	// Best-effort: fold this worker's telemetry into the coordinator's
	// merged view. The corpus is already complete, so failure here only
	// costs observability. The stamped span-ID range lets the
	// coordinator detect allocator collisions across processes.
	snap := telemetry.Default().Snapshot()
	snap.StampSpanRange(cfg.ID)
	retry.Post(ctx, hc, base+"/dist/v1/telemetry", //nolint:errcheck
		TelemetryRequest{Worker: cfg.ID, Snapshot: snap}, nil)
	return nil
}

// heartbeatFunc returns a stop function that keeps every held lease
// alive until called: a goroutine posts heartbeats at the given cadence
// for the duration of one batch evaluation and is joined on stop, so a
// worker holds zero stray goroutines between batches.
func heartbeatFunc(ctx context.Context, hc *http.Client, retry *wire.RetryPolicy, base, id string, every time.Duration) func() {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				var resp HeartbeatResponse
				retry.Post(ctx, hc, base+"/dist/v1/heartbeat", //nolint:errcheck // missed beats only risk lease expiry
					HeartbeatRequest{Worker: id}, &resp)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stop)
			wg.Wait()
		})
	}
}

// evaluateUnits runs one leased batch through the engine, grouped by
// machine, under KeepGoing so one poisoned unit becomes one failed
// result instead of killing the batch.
func evaluateUnits(ctx context.Context, stopHeartbeat func(), spec *EvalSpec, memo *engine.Memo, machines map[string]*model.Machine, workers int, throttle time.Duration, units []Unit) []UnitResult {
	defer stopHeartbeat()
	if throttle > 0 {
		// The heartbeat goroutine is already running, so the pause holds
		// the lease exactly like slow real evaluation would.
		t := time.NewTimer(throttle * time.Duration(len(units)))
		select {
		case <-ctx.Done():
			t.Stop()
		case <-t.C:
		}
	}
	results := make([]UnitResult, 0, len(units))
	// Group by machine, preserving unit order within a group.
	groups := map[string][]Unit{}
	var order []string
	for _, u := range units {
		if _, ok := groups[u.Machine]; !ok {
			order = append(order, u.Machine)
		}
		groups[u.Machine] = append(groups[u.Machine], u)
	}
	for _, mname := range order {
		group := groups[mname]
		m, err := machineFor(machines, mname)
		if err != nil {
			for _, u := range group {
				results = append(results, UnitResult{Key: u.Key, Err: err.Error()})
			}
			continue
		}
		jobs := make([]engine.Job, 0, len(group))
		jobErr := make([]string, len(group))
		for i, u := range group {
			sbs, err := sbfile.Read(strings.NewReader(u.SB))
			if err != nil || len(sbs) != 1 {
				if err == nil {
					err = fmt.Errorf("unit carries %d superblocks, want 1", len(sbs))
				}
				jobErr[i] = fmt.Sprintf("dist: decode unit %s: %v", u.Key, err)
				jobs = append(jobs, engine.Job{}) // placeholder to keep indices aligned
				continue
			}
			job := engine.Job{
				Benchmark: u.Benchmark,
				SB:        sbs[0],
				Labels:    []string{"dist_unit", u.Key},
			}
			if u.TraceParent != "" {
				// Parent this unit's engine.job span under the
				// coordinator's per-unit span, so the merged timeline
				// shows the unit crossing the process boundary.
				if sc, ok := telemetry.ParseTraceHeader(u.TraceParent); ok && sc.Valid() {
					job.Parent = sc
				}
			}
			jobs = append(jobs, job)
		}
		runnable := make([]engine.Job, 0, len(jobs))
		backMap := make([]int, 0, len(jobs))
		for i, j := range jobs {
			if jobErr[i] == "" {
				runnable = append(runnable, j)
				backMap = append(backMap, i)
			}
		}
		groupResults := make([]UnitResult, len(group))
		for i := range group {
			if jobErr[i] != "" {
				groupResults[i] = UnitResult{Key: group[i].Key, Err: jobErr[i]}
			}
		}
		if len(runnable) > 0 {
			ch, err := engine.Run(ctx, engine.Config{
				Jobs:       runnable,
				Machine:    m,
				Bounds:     spec.Bounds,
				Schedulers: spec.Schedulers,
				Best:       spec.Best,
				Workers:    workers,
				Memo:       memo,
				OnError:    engine.KeepGoing,
				JobBudget:  spec.Budget,
			})
			if err != nil {
				for _, i := range backMap {
					groupResults[i] = UnitResult{Key: group[i].Key, Err: err.Error()}
				}
			} else {
				collected, cerr := engine.Collect(ch)
				for _, res := range collected {
					i := backMap[res.Index]
					if res.Err != nil {
						groupResults[i] = UnitResult{Key: group[i].Key, Err: res.Err.Error()}
						continue
					}
					rec, merr := json.Marshal(engine.RecordOf(res))
					if merr != nil {
						groupResults[i] = UnitResult{Key: group[i].Key, Err: merr.Error()}
						continue
					}
					groupResults[i] = UnitResult{Key: group[i].Key, Record: rec}
				}
				if cerr != nil {
					for _, i := range backMap {
						if groupResults[i].Key == "" {
							groupResults[i] = UnitResult{Key: group[i].Key, Err: cerr.Error()}
						}
					}
				}
			}
		}
		results = append(results, groupResults...)
	}
	return results
}

// machineFor resolves and caches machine configurations by name.
func machineFor(cache map[string]*model.Machine, name string) (*model.Machine, error) {
	if m, ok := cache[name]; ok {
		return m, nil
	}
	m, err := model.MachineByName(name)
	if err != nil {
		return nil, err
	}
	cache[name] = m
	return m, nil
}
