// Package eval regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic SPECint95 corpus: bound quality
// (Table 1), bound complexity (Table 2), per-heuristic slowdowns (Table 3),
// optimally scheduled superblocks (Table 4), profile-free scheduling
// (Table 5), heuristic complexity (Table 6), the Balance component ablation
// (Table 7), and the cumulative distribution of extra cycles (Figure 8).
package eval

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"balance/internal/bounds"
	"balance/internal/cfg"
	"balance/internal/core"
	"balance/internal/gen"
	"balance/internal/heuristics"
	"balance/internal/model"
	"balance/internal/sched"
)

// Config controls an evaluation run.
type Config struct {
	// Seed drives corpus generation (default 1999).
	Seed int64
	// Scale multiplies the per-benchmark superblock counts (default 1).
	Scale float64
	// Machines lists the configurations to evaluate (default: all six).
	Machines []*model.Machine
	// Triplewise enables the triplewise bound (default on).
	Triplewise bool
	// TripleMaxBranches caps triple enumeration per superblock (default 16).
	TripleMaxBranches int
	// Benchmarks optionally restricts the corpus ("126.gcc", "gcc", ...).
	Benchmarks []string
	// CFGCorpus replaces the direct synthetic generator with the
	// formation pipeline: random profiled CFGs are grown into traces and
	// emitted as superblocks (cross-validates the conclusions on a corpus
	// with compiler-like provenance).
	CFGCorpus bool
	// CFGRegions is the number of CFG regions per pseudo-benchmark when
	// CFGCorpus is set (default 40 at scale 1).
	CFGRegions int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1999
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.Machines) == 0 {
		c.Machines = model.Machines()
	}
	if c.TripleMaxBranches == 0 {
		c.TripleMaxBranches = 16
	}
	return c
}

// PrimaryNames lists the six primary heuristics in the paper's column
// order.
var PrimaryNames = []string{"SR", "CP", "G*", "DHASY", "Help", "Balance"}

// primaries returns the paper's six primary heuristics.
func primaries() []heuristics.Heuristic {
	return []heuristics.Heuristic{
		heuristics.SR(),
		heuristics.CP(),
		heuristics.GStar(),
		heuristics.DHASY(),
		heuristics.Help(),
		core.Balance(core.DefaultConfig()),
	}
}

// sbResult caches everything computed for one superblock on one machine.
type sbResult struct {
	SB        *model.Superblock
	Benchmark string
	Bounds    *bounds.Set
	// Cost[name] is the weighted completion time of each heuristic's
	// schedule (with real exit probabilities).
	Cost map[string]float64
	// Stats[name] records the scheduling work of each heuristic.
	Stats map[string]sched.Stats
	// Trivial is true when every primary heuristic achieved the tightest
	// bound.
	Trivial bool
}

// dynCycles returns the superblock's dynamic cycle count for a given
// weighted completion time.
func (r *sbResult) dynCycles(cost float64) float64 { return r.SB.Freq * cost }

// Runner generates the corpus lazily and caches per-machine results so the
// tables share work.
type Runner struct {
	Cfg   Config
	Suite *gen.Suite

	cache map[string][]*sbResult // machine name -> results
}

// NewRunner creates a runner with the given configuration.
func NewRunner(cfg Config) *Runner {
	cfg = cfg.withDefaults()
	var suite *gen.Suite
	if cfg.CFGCorpus {
		suite = cfgSuite(cfg)
	} else {
		suite = gen.GenerateSuite(cfg.Seed, cfg.Scale)
	}
	if len(cfg.Benchmarks) > 0 {
		filtered := &gen.Suite{Benchmarks: map[string][]*model.Superblock{}}
		for _, want := range cfg.Benchmarks {
			for _, name := range suite.Order {
				if name == want || shortBench(name) == want {
					filtered.Benchmarks[name] = suite.Benchmarks[name]
					filtered.Order = append(filtered.Order, name)
				}
			}
		}
		suite = filtered
	}
	return &Runner{Cfg: cfg, Suite: suite, cache: map[string][]*sbResult{}}
}

// cfgSuite builds a corpus through the profiled-CFG formation pipeline:
// four pseudo-benchmarks with different region shapes.
func cfgSuite(c Config) *gen.Suite {
	regions := c.CFGRegions
	if regions <= 0 {
		regions = int(40 * c.Scale)
		if regions < 1 {
			regions = 1
		}
	}
	shapes := []struct {
		name string
		rc   cfg.RandomConfig
	}{
		{"cfg.straight", cfg.RandomConfig{Blocks: 8, OpsPerBlockMax: 8, MemFrac: 0.25, BranchyProb: 0.35, EntryCount: 1000}},
		{"cfg.branchy", cfg.RandomConfig{Blocks: 16, OpsPerBlockMax: 5, MemFrac: 0.25, BranchyProb: 0.85, EntryCount: 1000}},
		{"cfg.wide", cfg.RandomConfig{Blocks: 12, OpsPerBlockMax: 12, MemFrac: 0.30, BranchyProb: 0.6, EntryCount: 1000}},
		{"cfg.deep", cfg.RandomConfig{Blocks: 24, OpsPerBlockMax: 4, MemFrac: 0.20, BranchyProb: 0.6, EntryCount: 1000}},
	}
	suite := &gen.Suite{Benchmarks: map[string][]*model.Superblock{}}
	for si, shape := range shapes {
		rng := rand.New(rand.NewSource(c.Seed ^ int64(si*7919+13)))
		var sbs []*model.Superblock
		for r := 0; r < regions; r++ {
			g := cfg.Random(fmt.Sprintf("%s/r%03d", shape.name, r), rng, shape.rc)
			formed, err := cfg.FormAll(g, cfg.DefaultFormation())
			if err != nil {
				panic(fmt.Sprintf("eval: formation failed: %v", err))
			}
			sbs = append(sbs, formed...)
		}
		suite.Benchmarks[shape.name] = sbs
		suite.Order = append(suite.Order, shape.name)
	}
	return suite
}

// shortBench strips the SPEC number prefix.
func shortBench(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}

// Results returns (computing and caching on first use) the per-superblock
// results for one machine. Superblocks are evaluated in parallel across
// worker goroutines; the result order is deterministic (corpus order).
func (r *Runner) Results(m *model.Machine) ([]*sbResult, error) {
	if res, ok := r.cache[m.Name]; ok {
		return res, nil
	}
	type job struct {
		idx   int
		bench string
		sb    *model.Superblock
	}
	var jobs []job
	for _, bench := range r.Suite.Order {
		for _, sb := range r.Suite.Benchmarks[bench] {
			jobs = append(jobs, job{len(jobs), bench, sb})
		}
	}
	out := make([]*sbResult, len(jobs))
	errs := make([]error, len(jobs))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hs := primaries() // heuristics are stateful per run; one set per worker
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				out[i], errs[i] = r.evaluateOne(jobs[i].bench, jobs[i].sb, m, hs)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	r.cache[m.Name] = out
	return out, nil
}

// evaluateOne computes the bounds and all heuristic schedules for one
// superblock on one machine.
func (r *Runner) evaluateOne(bench string, sb *model.Superblock, m *model.Machine, hs []heuristics.Heuristic) (*sbResult, error) {
	set := bounds.Compute(sb, m, bounds.Options{
		Triplewise:        r.Cfg.Triplewise,
		TripleMaxBranches: r.Cfg.TripleMaxBranches,
		WithLCOriginal:    true,
	})
	res := &sbResult{
		SB:        sb,
		Benchmark: bench,
		Bounds:    set,
		Cost:      make(map[string]float64, len(hs)+1),
		Stats:     make(map[string]sched.Stats, len(hs)+1),
	}
	trivial := true
	var bestCost float64
	var bestSet bool
	for _, h := range hs {
		s, stats, err := h.Run(sb, m)
		if err != nil {
			return nil, fmt.Errorf("eval: %s on %s/%s: %w", h.Name, sb.Name, m.Name, err)
		}
		cost := sched.Cost(sb, s)
		res.Cost[h.Name] = cost
		res.Stats[h.Name] = stats
		if cost > set.Tightest+1e-9 {
			trivial = false
		}
		if !bestSet || cost < bestCost {
			bestCost, bestSet = cost, true
		}
	}
	// Best = best of the six primaries plus the 121 cross-product
	// schedules.
	cp, cpStats, err := heuristics.CrossProduct(sb, m)
	if err != nil {
		return nil, fmt.Errorf("eval: cross product on %s/%s: %w", sb.Name, m.Name, err)
	}
	if c := sched.Cost(sb, cp); c < bestCost {
		bestCost = c
	}
	res.Cost["Best"] = bestCost
	res.Stats["Best"] = cpStats
	res.Trivial = trivial
	return res, nil
}

// parallelEach runs fn for every index in [0, n) across GOMAXPROCS worker
// goroutines and returns the first error.
func parallelEach(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, n)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var out []byte
	out = append(out, t.Title...)
	out = append(out, '\n')
	line := func(cells []string) {
		for i, c := range cells {
			out = append(out, fmt.Sprintf("%-*s", widths[i]+2, c)...)
		}
		out = append(out, '\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		out = append(out, "  note: "...)
		out = append(out, n...)
		out = append(out, '\n')
	}
	return string(out)
}

// percentile returns the p-quantile (0..1) of the sorted copy of xs.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// mean returns the arithmetic mean of xs (0 for empty).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
