// Package eval regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic SPECint95 corpus: bound quality
// (Table 1), bound complexity (Table 2), per-heuristic slowdowns (Table 3),
// optimally scheduled superblocks (Table 4), profile-free scheduling
// (Table 5), heuristic complexity (Table 6), the Balance component ablation
// (Table 7), and the cumulative distribution of extra cycles (Figure 8).
//
// The heavy lifting — heuristic resolution, the bounded worker pool, the
// per-superblock memoization, and cancellation — lives in internal/engine;
// the Runner here is a thin view that generates the corpus, streams it
// through engine.Run, and renders the result set as tables and figures.
package eval

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"balance/internal/bounds"
	"balance/internal/cfg"
	"balance/internal/engine"
	"balance/internal/gen"
	"balance/internal/model"
	"balance/internal/resilience"
)

// Config controls an evaluation run.
type Config struct {
	// Seed drives corpus generation (default 1999).
	Seed int64
	// Scale multiplies the per-benchmark superblock counts (default 1).
	Scale float64
	// Machines lists the configurations to evaluate (default: all six).
	Machines []*model.Machine
	// Triplewise enables the triplewise bound (default on).
	Triplewise bool
	// TripleMaxBranches caps triple enumeration per superblock (default 16).
	TripleMaxBranches int
	// Benchmarks optionally restricts the corpus ("126.gcc", "gcc", ...).
	Benchmarks []string
	// CFGCorpus replaces the direct synthetic generator with the
	// formation pipeline: random profiled CFGs are grown into traces and
	// emitted as superblocks (cross-validates the conclusions on a corpus
	// with compiler-like provenance).
	CFGCorpus bool
	// CFGRegions is the number of CFG regions per pseudo-benchmark when
	// CFGCorpus is set (default 40 at scale 1).
	CFGRegions int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1999
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.Machines) == 0 {
		c.Machines = model.Machines()
	}
	if c.TripleMaxBranches == 0 {
		c.TripleMaxBranches = 16
	}
	return c
}

// boundOptions is the bound configuration every table shares.
func (c Config) boundOptions() bounds.Options {
	return bounds.Options{
		Triplewise:        c.Triplewise,
		TripleMaxBranches: c.TripleMaxBranches,
		WithLCOriginal:    true,
	}
}

// PrimaryNames lists the six primary heuristics in the paper's column
// order, resolved from the engine registry.
var PrimaryNames = engine.PrimaryNames()

// sbResult is the engine's per-superblock evaluation result.
type sbResult = engine.Result

// Runner generates the corpus lazily and caches per-machine results so the
// tables share work.
type Runner struct {
	Cfg   Config
	Suite *gen.Suite

	ctx        context.Context
	memo       *engine.Memo
	cache      map[string][]*sbResult // machine name -> results
	err        error                  // deferred corpus-construction error
	checkpoint *resilience.Checkpoint
	keepGoing  bool
	budget     resilience.Spec
	failures   int // per-job failures filtered out of cached results
}

// NewRunner creates a runner with the given configuration. Corpus
// construction errors (CFG formation failures) are deferred: they are
// returned by the first Results call rather than panicking here.
func NewRunner(cfg Config) *Runner {
	cfg = cfg.withDefaults()
	var suite *gen.Suite
	var err error
	if cfg.CFGCorpus {
		suite, err = cfgSuite(cfg)
		if err != nil {
			suite = &gen.Suite{Benchmarks: map[string][]*model.Superblock{}}
		}
	} else {
		suite = gen.GenerateSuite(cfg.Seed, cfg.Scale)
	}
	if len(cfg.Benchmarks) > 0 {
		filtered := &gen.Suite{Benchmarks: map[string][]*model.Superblock{}}
		for _, want := range cfg.Benchmarks {
			for _, name := range suite.Order {
				if name == want || shortBench(name) == want {
					filtered.Benchmarks[name] = suite.Benchmarks[name]
					filtered.Order = append(filtered.Order, name)
				}
			}
		}
		suite = filtered
	}
	return &Runner{
		Cfg:   cfg,
		Suite: suite,
		ctx:   context.Background(),
		memo:  engine.NewMemo(0),
		cache: map[string][]*sbResult{},
		err:   err,
	}
}

// WithContext binds the runner's long-running loops — corpus evaluation
// and the per-table worker pools — to ctx, so cancellation aborts them
// promptly with ctx.Err(). It returns the runner for chaining.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	if ctx != nil {
		r.ctx = ctx
	}
	return r
}

// WithCheckpoint makes the runner's evaluations resumable: completed jobs
// stream to ck and already-checkpointed jobs are recalled instead of
// recomputed (see engine.Config.Checkpoint). The caller owns ck and must
// Flush it when done. Returns the runner for chaining.
func (r *Runner) WithCheckpoint(ck *resilience.Checkpoint) *Runner {
	r.checkpoint = ck
	return r
}

// WithKeepGoing switches the runner to the engine's KeepGoing error
// policy: a failing or panicking job no longer aborts the evaluation — it
// is dropped from the table inputs and counted in Failures(). Returns the
// runner for chaining.
func (r *Runner) WithKeepGoing() *Runner {
	r.keepGoing = true
	return r
}

// WithBudget bounds each job's lower-bound computation; expired budgets
// degrade the bound ladder instead of failing (see bounds.ComputeBudget).
// Returns the runner for chaining.
func (r *Runner) WithBudget(spec resilience.Spec) *Runner {
	r.budget = spec
	return r
}

// Err reports the deferred corpus-construction error (nil on a healthy
// runner). The distributed coordinator checks it before sharding.
func (r *Runner) Err() error { return r.err }

// Jobs returns the full corpus in deterministic order — the exact job
// list every Results call evaluates per machine. The distributed
// coordinator shards this list into work units.
func (r *Runner) Jobs() []engine.Job {
	var jobs []engine.Job
	for _, bench := range r.Suite.Order {
		for _, sb := range r.Suite.Benchmarks[bench] {
			jobs = append(jobs, engine.Job{Benchmark: bench, SB: sb})
		}
	}
	return jobs
}

// BoundOptions exposes the bound configuration every evaluation shares,
// so remote workers compute under exactly the options the tables assume.
func (r *Runner) BoundOptions() bounds.Options { return r.Cfg.boundOptions() }

// Budget exposes the per-job budget configured with WithBudget.
func (r *Runner) Budget() resilience.Spec { return r.budget }

// Failures reports how many per-job failures were filtered from the cached
// results across all machines evaluated so far (always 0 without
// WithKeepGoing).
func (r *Runner) Failures() int { return r.failures }

// CacheStats reports the runner's shared result cache accounting: hits,
// misses, in-flight coalescing, and evictions across every table and
// machine evaluated so far. sbeval summarizes it on stderr at exit.
func (r *Runner) CacheStats() engine.CacheStats { return r.memo.CacheStats() }

// formAll is the superblock-formation entry point; a package variable so
// failure-path tests can substitute a failing implementation.
var formAll = cfg.FormAll

// cfgSuite builds a corpus through the profiled-CFG formation pipeline:
// four pseudo-benchmarks with different region shapes.
func cfgSuite(c Config) (*gen.Suite, error) {
	regions := c.CFGRegions
	if regions <= 0 {
		regions = int(40 * c.Scale)
		if regions < 1 {
			regions = 1
		}
	}
	shapes := []struct {
		name string
		rc   cfg.RandomConfig
	}{
		{"cfg.straight", cfg.RandomConfig{Blocks: 8, OpsPerBlockMax: 8, MemFrac: 0.25, BranchyProb: 0.35, EntryCount: 1000}},
		{"cfg.branchy", cfg.RandomConfig{Blocks: 16, OpsPerBlockMax: 5, MemFrac: 0.25, BranchyProb: 0.85, EntryCount: 1000}},
		{"cfg.wide", cfg.RandomConfig{Blocks: 12, OpsPerBlockMax: 12, MemFrac: 0.30, BranchyProb: 0.6, EntryCount: 1000}},
		{"cfg.deep", cfg.RandomConfig{Blocks: 24, OpsPerBlockMax: 4, MemFrac: 0.20, BranchyProb: 0.6, EntryCount: 1000}},
	}
	suite := &gen.Suite{Benchmarks: map[string][]*model.Superblock{}}
	for si, shape := range shapes {
		rng := rand.New(rand.NewSource(c.Seed ^ int64(si*7919+13)))
		var sbs []*model.Superblock
		for r := 0; r < regions; r++ {
			g := cfg.Random(fmt.Sprintf("%s/r%03d", shape.name, r), rng, shape.rc)
			formed, err := formAll(g, cfg.DefaultFormation())
			if err != nil {
				return nil, fmt.Errorf("eval: formation of %s/r%03d failed: %w", shape.name, r, err)
			}
			sbs = append(sbs, formed...)
		}
		suite.Benchmarks[shape.name] = sbs
		suite.Order = append(suite.Order, shape.name)
	}
	return suite, nil
}

// shortBench strips the SPEC number prefix.
func shortBench(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}

// Results returns (computing and caching on first use) the per-superblock
// results for one machine, streamed through the engine pipeline. The
// result order is deterministic (corpus order); cancellation of the
// runner's context aborts the run with ctx.Err().
func (r *Runner) Results(m *model.Machine) ([]*sbResult, error) {
	if r.err != nil {
		return nil, r.err
	}
	if res, ok := r.cache[m.Name]; ok {
		return res, nil
	}
	jobs := r.Jobs()
	policy := engine.FailFast
	if r.keepGoing {
		policy = engine.KeepGoing
	}
	ch, err := engine.Run(r.ctx, engine.Config{
		Jobs:       jobs,
		Machine:    m,
		Bounds:     r.Cfg.boundOptions(),
		Best:       true,
		Memo:       r.memo,
		OnError:    policy,
		JobBudget:  r.budget,
		Checkpoint: r.checkpoint,
	})
	if err != nil {
		return nil, err
	}
	all, err := engine.Collect(ch)
	if err != nil {
		return nil, err
	}
	// Under KeepGoing the stream carries per-job failures; the tables can
	// only aggregate completed evaluations, so drop the failures here and
	// account for them in Failures().
	out := all[:0]
	for _, res := range all {
		if res.Err != nil {
			r.failures++
			continue
		}
		out = append(out, res)
	}
	r.cache[m.Name] = out
	return out, nil
}

// parallelEach runs fn for every index in [0, n) on the engine's shared
// worker pool, bound to the runner's context.
func (r *Runner) parallelEach(n int, fn func(i int) error) error {
	return engine.ForEach(r.ctx, 0, n, fn)
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var out []byte
	out = append(out, t.Title...)
	out = append(out, '\n')
	line := func(cells []string) {
		for i, c := range cells {
			out = append(out, fmt.Sprintf("%-*s", widths[i]+2, c)...)
		}
		out = append(out, '\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		out = append(out, "  note: "...)
		out = append(out, n...)
		out = append(out, '\n')
	}
	return string(out)
}

// percentile returns the p-quantile (0..1) of the sorted copy of xs.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// mean returns the arithmetic mean of xs (0 for empty).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
