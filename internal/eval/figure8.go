package eval

import (
	"fmt"
	"math"
	"sort"

	"balance/internal/model"
)

// Figure8Series is one heuristic's cumulative distribution: Frac[i] is the
// fraction of superblocks whose dynamic extra cycles above the tightest
// bound are at most Thresholds[i].
type Figure8Series struct {
	Name string
	Frac []float64
}

// Figure8Data holds the CDF of Figure 8 for one benchmark and machine.
type Figure8Data struct {
	Benchmark  string
	Machine    string
	Thresholds []float64 // log-spaced dynamic extra-cycle thresholds
	Series     []Figure8Series
	Total      int // superblocks counted
}

// Figure8 reproduces the paper's Figure 8: the fraction of gcc superblocks
// (Y) scheduled within a given number of dynamic cycles above the tightest
// lower bound (X, log scale) on the FS4 machine, for the six primary
// heuristics and Best.
func (r *Runner) Figure8() (*Figure8Data, error) {
	return r.FigureCDF("126.gcc", model.FS4())
}

// FigureCDF computes the Figure-8 CDF for an arbitrary benchmark and
// machine.
func (r *Runner) FigureCDF(benchmark string, m *model.Machine) (*Figure8Data, error) {
	results, err := r.Results(m)
	if err != nil {
		return nil, err
	}
	names := append(append([]string(nil), PrimaryNames...), "Best")
	// Thresholds: 0 plus log-spaced points up to 10^6 dynamic cycles.
	thresholds := []float64{0}
	for e := 0.0; e <= 6.0; e += 0.5 {
		thresholds = append(thresholds, math.Pow(10, e))
	}

	data := &Figure8Data{Benchmark: benchmark, Machine: m.Name, Thresholds: thresholds}
	var extras = map[string][]float64{}
	total := 0
	for _, res := range results {
		if res.Benchmark != benchmark && shortBench(res.Benchmark) != benchmark {
			continue
		}
		total++
		for _, n := range names {
			extra := res.DynCycles(res.Cost[n]) - res.DynCycles(res.Bounds.Tightest)
			if extra < 0 {
				extra = 0
			}
			extras[n] = append(extras[n], extra)
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("eval: no superblocks for benchmark %q (have %v)", benchmark, r.Suite.Order)
	}
	data.Total = total
	for _, n := range names {
		xs := extras[n]
		sort.Float64s(xs)
		frac := make([]float64, len(thresholds))
		for i, th := range thresholds {
			cnt := sort.SearchFloat64s(xs, th+1e-9)
			frac[i] = float64(cnt) / float64(total)
		}
		data.Series = append(data.Series, Figure8Series{Name: n, Frac: frac})
	}
	// Order the legend by decreasing fraction of optimally scheduled
	// superblocks, as in the paper.
	sort.SliceStable(data.Series, func(a, b int) bool {
		return data.Series[a].Frac[0] > data.Series[b].Frac[0]
	})
	return data, nil
}

// Table renders the CDF as a text table (rows = thresholds).
func (d *Figure8Data) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 8: fraction of %s superblocks within X dynamic cycles of the bound (%s, %d superblocks)", d.Benchmark, d.Machine, d.Total),
		Header: []string{"extra cycles ≤"},
	}
	for _, s := range d.Series {
		t.Header = append(t.Header, s.Name)
	}
	for i, th := range d.Thresholds {
		row := []string{fmt.Sprintf("%.0f", th)}
		for _, s := range d.Series {
			row = append(row, fmt.Sprintf("%.4f", s.Frac[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "row 0 (zero extra cycles) is the fraction of optimally scheduled superblocks")
	return t
}
