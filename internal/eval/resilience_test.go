package eval

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"balance/internal/cfg"
	"balance/internal/model"
	"balance/internal/resilience"
	"balance/internal/telemetry"
)

// TestFormationFailureSurfaces: a CFG-formation failure no longer panics —
// it is deferred by NewRunner and returned by Results with the failing
// region named (the former behavior was panic("eval: formation failed")).
func TestFormationFailureSurfaces(t *testing.T) {
	boom := errors.New("synthetic formation fault")
	orig := formAll
	formAll = func(g *cfg.Graph, fc cfg.FormationConfig) ([]*model.Superblock, error) {
		return nil, boom
	}
	defer func() { formAll = orig }()

	r := NewRunner(Config{Seed: 11, Scale: 0.05, CFGCorpus: true, CFGRegions: 2})
	_, err := r.Results(model.GP2())
	if err == nil {
		t.Fatal("Results succeeded despite a formation failure")
	}
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the formation cause wrapped", err)
	}
	if !strings.Contains(err.Error(), "formation") || !strings.Contains(err.Error(), "cfg.straight/r000") {
		t.Errorf("err = %v, want the failing region named", err)
	}
	// The error is sticky: every table path reports it, none panics.
	if _, err2 := r.Table1(); err2 == nil {
		t.Error("Table1 succeeded on a runner with a broken corpus")
	}
}

// TestRunnerCheckpointResume: a second runner pointed at the first's
// flushed checkpoint recalls every job instead of recomputing.
func TestRunnerCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "eval.ckpt.jsonl")
	ck, err := resilience.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	m := model.GP2()
	r1 := NewRunner(Config{Seed: 5, Scale: 0.05, Triplewise: true}).WithCheckpoint(ck)
	first, err := r1.Results(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}

	ck2, err := resilience.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	before := telemetry.Default().Snapshot().Counters["engine.jobs_resumed"]
	r2 := NewRunner(Config{Seed: 5, Scale: 0.05, Triplewise: true}).WithCheckpoint(ck2)
	second, err := r2.Results(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != len(first) {
		t.Fatalf("resumed run returned %d results, want %d", len(second), len(first))
	}
	resumed := 0
	for i, res := range second {
		if res.Resumed {
			resumed++
		}
		if res.Bounds.Tightest != first[i].Bounds.Tightest {
			t.Errorf("job %d: resumed Tightest %v != computed %v", i, res.Bounds.Tightest, first[i].Bounds.Tightest)
		}
		for name, cost := range first[i].Cost {
			if res.Cost[name] != cost {
				t.Errorf("job %d: resumed %s cost %v != computed %v", i, name, res.Cost[name], cost)
			}
		}
	}
	if resumed != len(second) {
		t.Errorf("%d of %d jobs resumed from the checkpoint, want all", resumed, len(second))
	}
	delta := telemetry.Default().Snapshot().Counters["engine.jobs_resumed"] - before
	if delta != int64(len(second)) {
		t.Errorf("engine.jobs_resumed delta = %d, want %d", delta, len(second))
	}
	if r2.Failures() != 0 {
		t.Errorf("Failures() = %d on a clean run", r2.Failures())
	}

	// Resumed results still feed the tables (the checkpoint record carries
	// everything the reporting layer reads).
	if _, err := r2.Table1(); err != nil {
		t.Errorf("Table1 on resumed results: %v", err)
	}
	if _, err := r2.Table2(); err != nil {
		t.Errorf("Table2 on resumed results: %v", err)
	}
}
