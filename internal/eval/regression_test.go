package eval

import (
	"strconv"
	"strings"
	"testing"

	"balance/internal/model"
)

// TestQualitativeOrdering is the regression test for the paper's headline
// results on a fixed mid-size corpus: Balance must beat every other primary
// heuristic on average, Best must be at least as good as Balance, the
// pairwise bound must dominate the naive ones, and the Figure-8 legend
// order must hold.
func TestQualitativeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-size corpus")
	}
	r := NewRunner(Config{
		Seed:       1999,
		Scale:      0.1,
		Machines:   []*model.Machine{model.GP1(), model.FS4()},
		Triplewise: true,
	})

	// Aggregate slowdowns across machines.
	names := append(append([]string(nil), PrimaryNames...), "Best")
	slow := map[string]float64{}
	for _, m := range r.Cfg.Machines {
		results, err := r.Results(m)
		if err != nil {
			t.Fatal(err)
		}
		_, _, s := slowdownRows(results, names)
		for _, n := range names {
			slow[n] += s[n]
		}
	}
	t.Logf("aggregate slowdowns: %v", slow)

	if slow["Balance"] > slow["SR"] || slow["Balance"] > slow["CP"] {
		t.Errorf("Balance (%v) worse than SR (%v) or CP (%v)", slow["Balance"], slow["SR"], slow["CP"])
	}
	if slow["Balance"] > slow["DHASY"]+1e-9 || slow["Balance"] > slow["G*"]+1e-9 {
		t.Errorf("Balance (%v) worse than DHASY (%v) or G* (%v)", slow["Balance"], slow["DHASY"], slow["G*"])
	}
	if slow["Balance"] > slow["Help"]+1e-9 {
		t.Errorf("Balance (%v) worse than Help (%v)", slow["Balance"], slow["Help"])
	}
	if slow["Best"] > slow["Balance"]+1e-9 {
		t.Errorf("Best (%v) worse than Balance (%v)", slow["Best"], slow["Balance"])
	}

	// Bound dominance in Table 1 terms: CP's average gap is the largest,
	// TW's the smallest, on each machine.
	tab, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tab.Rows); i += 3 {
		row := tab.Rows[i] // Avg row: machine, metric, CP, Hu, RJ, LC, PW, TW
		vals := make([]float64, 6)
		for j := range vals {
			v, err := strconv.ParseFloat(row[2+j], 64)
			if err != nil {
				t.Fatal(err)
			}
			vals[j] = v
		}
		cp, hu, rj, lc, pw, tw := vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]
		if cp < hu || hu < rj || rj < lc || lc < pw || pw < tw {
			t.Errorf("%s: bound gap ordering violated: %v", row[0], vals)
		}
	}

	// Figure 8 legend order on FS4.
	d, err := r.FigureCDF("126.gcc", model.FS4())
	if err != nil {
		t.Fatal(err)
	}
	intercept := map[string]float64{}
	for _, s := range d.Series {
		intercept[s.Name] = s.Frac[0]
	}
	if intercept["Best"] < intercept["Balance"]-1e-9 ||
		intercept["Balance"] < intercept["SR"]-1e-9 ||
		intercept["Balance"] < intercept["CP"]-1e-9 {
		order := make([]string, len(d.Series))
		for i, s := range d.Series {
			order[i] = s.Name
		}
		t.Errorf("figure 8 intercepts unexpected (%v): %v", intercept, strings.Join(order, " > "))
	}
}

// TestCFGCorpus: the formation-pipeline corpus drives the full table suite
// and preserves the central invariant (no heuristic beats the bound).
func TestCFGCorpus(t *testing.T) {
	r := NewRunner(Config{
		Seed:       11,
		Scale:      1,
		CFGRegions: 3,
		CFGCorpus:  true,
		Machines:   []*model.Machine{model.FS4()},
		Triplewise: true,
	})
	if len(r.Suite.Order) != 4 {
		t.Fatalf("cfg corpus has %d pseudo-benchmarks, want 4", len(r.Suite.Order))
	}
	results, err := r.Results(model.FS4())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, res := range results {
		for name, cost := range res.Cost {
			if cost < res.Bounds.Tightest-1e-9 {
				t.Fatalf("%s beats the bound on %s", name, res.SB.Name)
			}
		}
	}
	if _, err := r.Table3(); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism: two runners with identical configs produce identical
// tables.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 5, Scale: 0.02, Machines: []*model.Machine{model.GP2()}}
	a, err := NewRunner(cfg).Table3()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(cfg).Table3()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("nondeterministic table:\n%s\nvs\n%s", a, b)
	}
}
