package eval

import (
	"fmt"
	"strings"

	"balance/internal/bounds"
	"balance/internal/core"
	"balance/internal/exact"
	"balance/internal/figures"
	"balance/internal/heuristics"
	"balance/internal/model"
	"balance/internal/sched"
)

// WorkedFigure reproduces one of the paper's worked examples (Figures 1-4)
// on GP2: it prints the per-branch bounds, the pairwise tradeoff when one
// exists, the branch cycles and cost each heuristic achieves, and the exact
// optimum.
func WorkedFigure(n int, sideProb float64) (string, error) {
	var sb *model.Superblock
	switch n {
	case 1:
		sb = figures.Figure1(sideProb)
	case 2:
		sb = figures.Figure2(sideProb)
	case 3:
		sb = figures.Figure3(sideProb)
	case 4:
		sb = figures.Figure4(sideProb)
	case 6:
		sb = figures.Figure6()
	default:
		return "", fmt.Errorf("eval: no worked example for figure %d (have 1-4, 6)", n)
	}
	m := model.GP2()
	var out strings.Builder
	fmt.Fprintf(&out, "Figure %d reconstruction (%s, machine %s)\n", n, sb.Name, m.Name)
	fmt.Fprintf(&out, "%d ops, %d exits, side probabilities %v\n\n", sb.G.NumOps(), sb.NumBranches(), sb.Prob)

	set := bounds.Compute(sb, m, bounds.Options{Triplewise: true})
	fmt.Fprintf(&out, "per-branch bounds  CP=%v Hu=%v RJ=%v LC=%v\n", set.CP, set.Hu, set.RJ, set.LC)
	fmt.Fprintf(&out, "superblock bounds  naiveLC=%.4f pairwise=%.4f triplewise=%.4f tightest=%.4f\n",
		set.LCVal, set.PairVal, set.TripleVal, set.Tightest)
	for _, pr := range set.Pairs {
		if pr.NoTradeoff {
			fmt.Fprintf(&out, "pair (%d,%d): no tradeoff — both branches reach their bounds\n", pr.I, pr.J)
			continue
		}
		fmt.Fprintf(&out, "pair (%d,%d): tradeoff curve (separation -> t_i, t_j):\n", pr.I, pr.J)
		for s := pr.Lmin; s <= pr.Lmax; s++ {
			fmt.Fprintf(&out, "  sep=%2d  t_i>=%2d  t_j>=%2d\n", s, pr.X(s), pr.Y(s))
		}
		fmt.Fprintf(&out, "  optimum point: t_i=%d t_j=%d (weighted value %.4f)\n", pr.Bi, pr.Bj, pr.Value)
	}
	out.WriteString("\n")

	hs := []heuristics.Heuristic{
		heuristics.SR(), heuristics.CP(), heuristics.GStar(),
		heuristics.DHASY(), heuristics.Help(), core.Balance(core.DefaultConfig()),
	}
	for _, h := range hs {
		s, _, err := h.Run(sb, m)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&out, "%-8s branches at %v  cost %.4f\n", h.Name, sched.BranchCycles(sb, s), sched.Cost(sb, s))
	}
	if sb.G.NumOps() <= 24 {
		s, opt, err := exact.Optimal(sb, m, 0)
		if err == nil {
			fmt.Fprintf(&out, "%-8s branches at %v  cost %.4f\n", "OPTIMAL", sched.BranchCycles(sb, s), opt)
		}
	}
	return out.String(), nil
}
