package eval

import (
	"fmt"

	"balance/internal/bounds"
	"balance/internal/core"
	"balance/internal/engine"
	"balance/internal/heuristics"
	"balance/internal/model"
	"balance/internal/sched"
)

// Table1 reproduces the bound-quality comparison: for each machine and each
// bound, the average and maximum percentage gap to the tightest bound, and
// the percentage of superblocks on which the bound is not the tightest.
func (r *Runner) Table1() (*Table, error) {
	bnds := engine.AllBounds()
	t := &Table{
		Title:  "Table 1: performance of lower bounds relative to the tightest lower bound",
		Header: append([]string{"machine", "metric"}, engine.BoundNames()...),
	}
	for _, m := range r.Cfg.Machines {
		results, err := r.Results(m)
		if err != nil {
			return nil, err
		}
		avgRow := []string{m.Name, "Avg(%)"}
		maxRow := []string{"", "Max(%)"}
		numRow := []string{"", "Num(%)"}
		for _, bn := range bnds {
			var gaps []float64
			worse := 0
			maxGap := 0.0
			for _, res := range results {
				tight := res.Bounds.Tightest
				v := bn.Value(res.Bounds)
				gap := 0.0
				if tight > 0 {
					gap = (tight - v) / tight * 100
				}
				if gap < 0 {
					gap = 0
				}
				gaps = append(gaps, gap)
				if gap > maxGap {
					maxGap = gap
				}
				if v < tight-1e-9 {
					worse++
				}
			}
			avgRow = append(avgRow, fmt.Sprintf("%.2f", mean(gaps)))
			maxRow = append(maxRow, fmt.Sprintf("%.2f", maxGap))
			numRow = append(numRow, fmt.Sprintf("%.2f", 100*float64(worse)/float64(len(results))))
		}
		t.Rows = append(t.Rows, avgRow, maxRow, numRow)
	}
	t.Notes = append(t.Notes, "Num = % of superblocks where the bound is below the tightest bound")
	return t, nil
}

// Table2 reproduces the bound-complexity comparison: average and median
// loop-trip counts of each bound algorithm across all superblocks and
// machines.
func (r *Runner) Table2() (*Table, error) {
	// The rows are the registered bounds plus the two LC complexity-only
	// variants the paper reports right after LC.
	type algRow struct {
		name  string
		trips func(*bounds.AlgStats) float64
	}
	var algs []algRow
	for _, b := range engine.AllBounds() {
		algs = append(algs, algRow{b.Name, b.Trips})
		if b.Name == "LC" {
			algs = append(algs,
				algRow{"LC-original", func(s *bounds.AlgStats) float64 { return float64(s.LCOriginal.Trips) }},
				algRow{"LC-reverse", func(s *bounds.AlgStats) float64 { return float64(s.LCReverse.Trips) }},
			)
		}
	}
	trips := map[string][]float64{}
	for _, m := range r.Cfg.Machines {
		results, err := r.Results(m)
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			for _, a := range algs {
				trips[a.name] = append(trips[a.name], a.trips(&res.Bounds.Stats))
			}
		}
	}
	t := &Table{
		Title:  "Table 2: complexity of the bound algorithms (loop trip counts per superblock)",
		Header: []string{"algorithm", "average", "median"},
	}
	for _, a := range algs {
		t.Rows = append(t.Rows, []string{
			a.name,
			fmt.Sprintf("%.2f", mean(trips[a.name])),
			fmt.Sprintf("%.0f", percentile(trips[a.name], 0.5)),
		})
	}
	t.Notes = append(t.Notes,
		"LC uses the Theorem-1 shortcut; LC-original does not",
		"TW is the pairwise-curve combination bound (see DESIGN.md)")
	return t, nil
}

// slowdownRows computes, for one machine, the Table-3 metrics: total bound
// cycles, the fraction spent in trivial superblocks, and each heuristic's
// slowdown on nontrivial superblocks.
func slowdownRows(results []*sbResult, names []string) (boundCycles, trivialPct float64, slow map[string]float64) {
	var totalBound, trivialBound float64
	var nontrivBound float64
	heurCycles := map[string]float64{}
	for _, res := range results {
		b := res.DynCycles(res.Bounds.Tightest)
		totalBound += b
		if res.Trivial {
			trivialBound += b
			continue
		}
		nontrivBound += b
		for _, n := range names {
			heurCycles[n] += res.DynCycles(res.Cost[n])
		}
	}
	slow = map[string]float64{}
	for _, n := range names {
		if nontrivBound > 0 {
			slow[n] = (heurCycles[n] - nontrivBound) / nontrivBound * 100
		}
	}
	if totalBound > 0 {
		trivialPct = trivialBound / totalBound * 100
	}
	return totalBound, trivialPct, slow
}

// Table3 reproduces the dynamic slowdown comparison relative to the
// tightest lower bound, per machine, for the six primary heuristics and
// Best.
func (r *Runner) Table3() (*Table, error) {
	names := append(append([]string(nil), PrimaryNames...), "Best")
	t := &Table{
		Title:  "Table 3: slowdown relative to the tightest lower bound (nontrivial superblocks)",
		Header: append([]string{"machine", "bound cycles", "trivial(%)"}, names...),
	}
	var avgs = map[string][]float64{}
	for _, m := range r.Cfg.Machines {
		results, err := r.Results(m)
		if err != nil {
			return nil, err
		}
		bound, trivial, slow := slowdownRows(results, names)
		row := []string{m.Name, fmt.Sprintf("%.3e", bound), fmt.Sprintf("%.2f", trivial)}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%.2f%%", slow[n]))
			avgs[n] = append(avgs[n], slow[n])
		}
		t.Rows = append(t.Rows, row)
	}
	avgRow := []string{"Average", "", ""}
	for _, n := range names {
		avgRow = append(avgRow, fmt.Sprintf("%.2f%%", mean(avgs[n])))
	}
	t.Rows = append(t.Rows, avgRow)
	t.Notes = append(t.Notes, "trivial = superblocks scheduled optimally by all six primary heuristics")
	return t, nil
}

// Table3ByBenchmark breaks the Table-3 slowdowns down per benchmark on one
// machine (the per-program view behind Figure 8).
func (r *Runner) Table3ByBenchmark(m *model.Machine) (*Table, error) {
	names := append(append([]string(nil), PrimaryNames...), "Best")
	results, err := r.Results(m)
	if err != nil {
		return nil, err
	}
	byBench := map[string][]*sbResult{}
	for _, res := range results {
		byBench[res.Benchmark] = append(byBench[res.Benchmark], res)
	}
	t := &Table{
		Title:  fmt.Sprintf("Table 3 (per benchmark, %s): slowdown on nontrivial superblocks", m.Name),
		Header: append([]string{"benchmark", "superblocks", "trivial(%)"}, names...),
	}
	for _, bench := range r.Suite.Order {
		rs := byBench[bench]
		if len(rs) == 0 {
			continue
		}
		_, trivial, slow := slowdownRows(rs, names)
		row := []string{bench, fmt.Sprintf("%d", len(rs)), fmt.Sprintf("%.2f", trivial)}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%.2f%%", slow[n]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table4 reproduces the percentage of optimally scheduled nontrivial
// superblocks per machine and heuristic.
func (r *Runner) Table4() (*Table, error) {
	names := append(append([]string(nil), PrimaryNames...), "Best")
	t := &Table{
		Title:  "Table 4: percentage of optimally scheduled nontrivial superblocks",
		Header: append([]string{"machine", "nontrivial"}, names...),
	}
	for _, m := range r.Cfg.Machines {
		results, err := r.Results(m)
		if err != nil {
			return nil, err
		}
		nontriv := 0
		optimal := map[string]int{}
		for _, res := range results {
			if res.Trivial {
				continue
			}
			nontriv++
			for _, n := range names {
				if res.Cost[n] <= res.Bounds.Tightest+1e-9 {
					optimal[n]++
				}
			}
		}
		row := []string{m.Name, fmt.Sprintf("%d", nontriv)}
		for _, n := range names {
			pct := 0.0
			if nontriv > 0 {
				pct = 100 * float64(optimal[n]) / float64(nontriv)
			}
			row = append(row, fmt.Sprintf("%.2f%%", pct))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "optimal = schedule cost equals the tightest lower bound")
	return t, nil
}

// Table5 reproduces the no-profile experiment: heuristics schedule with the
// synthetic weights (last branch 1000, others 1) and are evaluated against
// the real exit probabilities. Best keeps using the real probabilities to
// select among its 127 schedules, as in the paper.
func (r *Runner) Table5() (*Table, error) {
	names := append(append([]string(nil), PrimaryNames...), "Best")
	hs := engine.PrimaryInstances(r.ctx)
	t := &Table{
		Title:  "Table 5: average slowdown with no profiling data (last branch weight 1000)",
		Header: append([]string{"machine", "trivial(%)"}, names...),
	}
	avgs := map[string][]float64{}
	for _, m := range r.Cfg.Machines {
		results, err := r.Results(m)
		if err != nil {
			return nil, err
		}
		var nontrivBound float64
		var trivialBound, totalBound float64
		heurCycles := map[string]float64{}
		perSB := make([]map[string]float64, len(results))
		err = r.parallelEach(len(results), func(i int) error {
			res := results[i]
			if res.Trivial {
				return nil
			}
			noProf := res.SB.UniformWeights()
			costs := make(map[string]float64, len(hs)+1)
			bestCost := -1.0
			for _, h := range hs {
				s, _, err := h.Run(noProf, m)
				if err != nil {
					return fmt.Errorf("eval: table5 %s: %w", h.Name, err)
				}
				// Evaluate against the real probabilities.
				cost := sched.Cost(res.SB, s)
				costs[h.Name] = res.DynCycles(cost)
				if bestCost < 0 || cost < bestCost {
					bestCost = cost
				}
			}
			// Best: the 127 schedules are built without profile data, but
			// the paper's Best still selects with the real probabilities.
			cpSched, _, err := heuristics.CrossProductAllCtx(r.ctx, noProf, m)
			if err != nil {
				return err
			}
			for _, s := range cpSched {
				if cost := sched.Cost(res.SB, s); cost < bestCost {
					bestCost = cost
				}
			}
			costs["Best"] = res.DynCycles(bestCost)
			perSB[i] = costs
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			b := res.DynCycles(res.Bounds.Tightest)
			totalBound += b
			if res.Trivial {
				trivialBound += b
				continue
			}
			nontrivBound += b
			for name, c := range perSB[i] {
				heurCycles[name] += c
			}
		}
		row := []string{m.Name}
		if totalBound > 0 {
			row = append(row, fmt.Sprintf("%.2f", trivialBound/totalBound*100))
		} else {
			row = append(row, "0.00")
		}
		for _, n := range names {
			slow := 0.0
			if nontrivBound > 0 {
				slow = (heurCycles[n] - nontrivBound) / nontrivBound * 100
			}
			row = append(row, fmt.Sprintf("%.2f%%", slow))
			avgs[n] = append(avgs[n], slow)
		}
		t.Rows = append(t.Rows, row)
	}
	avgRow := []string{"Average", ""}
	for _, n := range names {
		avgRow = append(avgRow, fmt.Sprintf("%.2f%%", mean(avgs[n])))
	}
	t.Rows = append(t.Rows, avgRow)
	return t, nil
}

// Table6 reproduces the heuristic-complexity comparison: average and median
// work counters per schedule for each heuristic, plus the Balance light-
// update variant.
func (r *Runner) Table6() (*Table, error) {
	names := append(append([]string(nil), PrimaryNames...), "Balance-light")
	light := core.DefaultConfig()
	light.Update = core.UpdateLight
	lightH := core.Balance(light)

	work := map[string][]float64{}
	for _, m := range r.Cfg.Machines {
		results, err := r.Results(m)
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			for _, n := range PrimaryNames {
				st := res.Stats[n]
				work[n] = append(work[n], float64(st.Total()))
			}
			_, st, err := lightH.Run(res.SB, m)
			if err != nil {
				return nil, err
			}
			work["Balance-light"] = append(work["Balance-light"], float64(st.Total()))
		}
	}
	t := &Table{
		Title:  "Table 6: computational complexity of the scheduling heuristics (work counters per superblock)",
		Header: []string{"heuristic", "average", "median"},
	}
	for _, n := range names {
		t.Rows = append(t.Rows, []string{
			n,
			fmt.Sprintf("%.2f", mean(work[n])),
			fmt.Sprintf("%.0f", percentile(work[n], 0.5)),
		})
	}
	t.Notes = append(t.Notes, "Balance-light uses the incremental (light) dynamic-bound update")
	return t, nil
}

// Table7 reproduces the Balance component ablation: slowdown on nontrivial
// superblocks for each combination of {Help, HlpDel} × {Bound} × {Tradeoff}
// under per-operation and per-cycle bound updates, averaged over machines.
func (r *Runner) Table7() (*Table, error) {
	type variant struct {
		label string
		cfg   core.Config
	}
	mk := func(helpDelay, useBounds, tradeoff bool, upd core.UpdateMode) core.Config {
		return core.Config{HelpDelay: helpDelay, UseBounds: useBounds, Tradeoff: tradeoff, Update: upd}
	}
	columns := []struct {
		label                string
		helpDelay, useBounds bool
		tradeoff             bool
	}{
		{"Help", false, false, false},
		{"Help+Bound", false, true, false},
		{"HlpDel+Bound", true, true, false},
		{"HlpDel+Bound+Tradeoff (Balance)", true, true, true},
	}
	t := &Table{
		Title:  "Table 7: impact of Balance components (avg slowdown on nontrivial superblocks, %)",
		Header: []string{"update"},
	}
	for _, c := range columns {
		t.Header = append(t.Header, c.label)
	}
	for _, upd := range []struct {
		label string
		mode  core.UpdateMode
	}{{"per op", core.UpdatePerOp}, {"per cycle", core.UpdatePerCycle}} {
		row := []string{upd.label}
		for _, col := range columns {
			v := variant{col.label, mk(col.helpDelay, col.useBounds, col.tradeoff, upd.mode)}
			slowdowns, err := r.variantSlowdown(v.cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f%%", slowdowns))
			_ = v
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// variantSlowdown runs one Balance variant over the whole corpus and
// returns its average slowdown on nontrivial superblocks across machines.
func (r *Runner) variantSlowdown(cfg core.Config) (float64, error) {
	h := core.Balance(cfg)
	var perMachine []float64
	for _, m := range r.Cfg.Machines {
		results, err := r.Results(m)
		if err != nil {
			return 0, err
		}
		costs := make([]float64, len(results))
		err = r.parallelEach(len(results), func(i int) error {
			res := results[i]
			if res.Trivial {
				return nil
			}
			s, _, err := h.Run(res.SB, m)
			if err != nil {
				return err
			}
			costs[i] = res.DynCycles(sched.Cost(res.SB, s))
			return nil
		})
		if err != nil {
			return 0, err
		}
		var bound, cycles float64
		for i, res := range results {
			if res.Trivial {
				continue
			}
			bound += res.DynCycles(res.Bounds.Tightest)
			cycles += costs[i]
		}
		if bound > 0 {
			perMachine = append(perMachine, (cycles-bound)/bound*100)
		}
	}
	return mean(perMachine), nil
}
