package eval

import (
	"strconv"
	"strings"
	"testing"

	"balance/internal/model"
)

// smallRunner builds a runner over a tiny corpus and two machines so the
// whole table suite runs in test time.
func smallRunner() *Runner {
	return NewRunner(Config{
		Seed:     7,
		Scale:    0.03,
		Machines: []*model.Machine{model.GP2(), model.FS4()},
	})
}

func TestResultsConsistency(t *testing.T) {
	r := smallRunner()
	for _, m := range r.Cfg.Machines {
		results, err := r.Results(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) == 0 {
			t.Fatal("no results")
		}
		for _, res := range results {
			tight := res.Bounds.Tightest
			for name, cost := range res.Cost {
				if cost < tight-1e-9 {
					t.Fatalf("%s on %s: cost %v below tightest bound %v", name, res.SB.Name, cost, tight)
				}
			}
			if res.Cost["Best"] > res.Cost["Balance"]+1e-9 {
				t.Fatalf("Best (%v) worse than Balance (%v) on %s", res.Cost["Best"], res.Cost["Balance"], res.SB.Name)
			}
			for _, n := range PrimaryNames {
				if res.Cost["Best"] > res.Cost[n]+1e-9 {
					t.Fatalf("Best (%v) worse than %s (%v) on %s", res.Cost["Best"], n, res.Cost[n], res.SB.Name)
				}
			}
			if res.Trivial {
				for _, n := range PrimaryNames {
					if res.Cost[n] > tight+1e-9 {
						t.Fatalf("trivial superblock %s has %s cost %v > bound %v", res.SB.Name, n, res.Cost[n], tight)
					}
				}
			}
		}
	}
	// The cache must return identical slices.
	a, _ := r.Results(model.GP2())
	b, _ := r.Results(model.GP2())
	if &a[0] != &b[0] {
		t.Error("results not cached")
	}
}

func TestTable1Shape(t *testing.T) {
	r := smallRunner()
	tab, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3*len(r.Cfg.Machines) {
		t.Errorf("table1 has %d rows, want %d", len(tab.Rows), 3*len(r.Cfg.Machines))
	}
	// CP must be the loosest bound: its Avg gap should be the largest.
	text := tab.String()
	if !strings.Contains(text, "GP2") || !strings.Contains(text, "Avg(%)") {
		t.Errorf("table text malformed:\n%s", text)
	}
}

func TestTable1CPWeakest(t *testing.T) {
	r := smallRunner()
	tab, err := r.Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Columns: machine, metric, CP, Hu, RJ, LC, PW, TW. On the Avg rows the
	// CP gap must be >= the LC gap, and PW/TW must have gap ~0... PW is the
	// composition base of tightest, so its Avg gap must be the smallest or
	// tied.
	for i := 0; i < len(tab.Rows); i += 3 {
		row := tab.Rows[i]
		var cp, lc, pw, tw float64
		mustParse(t, row[2], &cp)
		mustParse(t, row[5], &lc)
		mustParse(t, row[6], &pw)
		mustParse(t, row[7], &tw)
		if cp < lc {
			t.Errorf("%s: CP gap %v below LC gap %v", row[0], cp, lc)
		}
		if pw > lc+1e-9 {
			t.Errorf("%s: PW gap %v above LC gap %v", row[0], pw, lc)
		}
		if tw > 0.5 {
			t.Errorf("%s: TW gap %v unexpectedly large", row[0], tw)
		}
	}
}

func mustParse(t *testing.T, s string, out *float64) {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	*out = v
}

func TestTables2Through7(t *testing.T) {
	r := smallRunner()
	t2, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 8 {
		t.Errorf("table2 rows = %d, want 8", len(t2.Rows))
	}
	t3, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != len(r.Cfg.Machines)+1 {
		t.Errorf("table3 rows = %d", len(t3.Rows))
	}
	t4, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != len(r.Cfg.Machines) {
		t.Errorf("table4 rows = %d", len(t4.Rows))
	}
	t5, err := r.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != len(r.Cfg.Machines)+1 {
		t.Errorf("table5 rows = %d", len(t5.Rows))
	}
	t6, err := r.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != 7 {
		t.Errorf("table6 rows = %d, want 7", len(t6.Rows))
	}
	t7, err := r.Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(t7.Rows) != 2 {
		t.Errorf("table7 rows = %d, want 2", len(t7.Rows))
	}
}

func TestTable3ByBenchmark(t *testing.T) {
	r := smallRunner()
	tab, err := r.Table3ByBenchmark(model.GP2())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(r.Suite.Order) {
		t.Errorf("per-benchmark table has %d rows, want %d", len(tab.Rows), len(r.Suite.Order))
	}
	if !strings.Contains(tab.Title, "GP2") {
		t.Errorf("title %q", tab.Title)
	}
}

func TestFigure8(t *testing.T) {
	r := NewRunner(Config{
		Seed:     7,
		Scale:    0.03,
		Machines: []*model.Machine{model.FS4()},
	})
	d, err := r.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if d.Total == 0 {
		t.Fatal("figure 8 counted no superblocks")
	}
	if len(d.Series) != 7 {
		t.Fatalf("figure 8 has %d series, want 7", len(d.Series))
	}
	for _, s := range d.Series {
		last := -1.0
		for i, f := range s.Frac {
			if f < last-1e-12 {
				t.Fatalf("%s: CDF not monotone at %d", s.Name, i)
			}
			last = f
			if f < 0 || f > 1 {
				t.Fatalf("%s: fraction %v out of range", s.Name, f)
			}
		}
		if s.Frac[len(s.Frac)-1] < 0.99 {
			t.Errorf("%s: CDF does not reach 1 (%v)", s.Name, s.Frac[len(s.Frac)-1])
		}
	}
	tab := d.Table()
	if len(tab.Rows) != len(d.Thresholds) {
		t.Errorf("figure 8 table rows = %d, want %d", len(tab.Rows), len(d.Thresholds))
	}
}

func TestWorkedFigures(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6} {
		text, err := WorkedFigure(n, 0.25)
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		if !strings.Contains(text, "Balance") || !strings.Contains(text, "cost") {
			t.Errorf("figure %d output incomplete:\n%s", n, text)
		}
	}
	if _, err := WorkedFigure(5, 0.25); err == nil {
		t.Error("WorkedFigure accepted figure 5")
	}
}

func TestBenchmarkFilter(t *testing.T) {
	r := NewRunner(Config{Seed: 3, Scale: 0.05, Benchmarks: []string{"gcc"},
		Machines: []*model.Machine{model.GP2()}})
	if len(r.Suite.Order) != 1 || r.Suite.Order[0] != "126.gcc" {
		t.Fatalf("filter failed: %v", r.Suite.Order)
	}
}
