// Package testutil provides shared helpers for the test suites: a seeded
// random superblock generator small enough for the exact solver, used by
// property-based tests across packages.
package testutil

import (
	"math/rand"
	"reflect"

	"balance/internal/model"
)

// QuickSB wraps a random superblock for use with testing/quick: it
// implements quick.Generator, so properties can take QuickSB parameters and
// receive seeded random instances.
type QuickSB struct {
	SB *model.Superblock
}

// Generate implements quick.Generator.
func (QuickSB) Generate(r *rand.Rand, size int) reflect.Value {
	if size > 18 {
		size = 18
	}
	if size < 4 {
		size = 4
	}
	return reflect.ValueOf(QuickSB{SB: RandomSuperblock(r, size)})
}

// QuickMachine wraps a random machine configuration for testing/quick,
// drawing from the six standard configurations plus non-fully-pipelined
// variants.
type QuickMachine struct {
	M *model.Machine
}

// Generate implements quick.Generator.
func (QuickMachine) Generate(r *rand.Rand, _ int) reflect.Value {
	ms := model.Machines()
	m := ms[r.Intn(len(ms))]
	switch r.Intn(4) {
	case 0:
		m = m.WithOccupancy(model.FloatMul, 1+r.Intn(3))
	case 1:
		m = m.WithOccupancy(model.Load, 1+r.Intn(2))
	}
	return reflect.ValueOf(QuickMachine{M: m})
}

// RandomSuperblock builds a random superblock with at most maxOps
// operations (including branches). The graph is a random forward DAG with
// one to three blocks, a mixed operation population, and random edge
// latencies taken from the producing operation.
func RandomSuperblock(rng *rand.Rand, maxOps int) *model.Superblock {
	if maxOps < 3 {
		maxOps = 3
	}
	b := model.NewBuilder("random")
	classes := []model.Class{
		model.Int, model.Int, model.Int, model.Int,
		model.Load, model.Store, model.FloatAdd, model.FloatMul,
	}
	blocks := 1 + rng.Intn(3)
	budget := 2 + rng.Intn(maxOps-2)
	var ids []int
	remaining := budget
	for blk := 0; blk < blocks; blk++ {
		nOps := remaining / (blocks - blk)
		if blk == blocks-1 {
			nOps = remaining
		}
		if nOps < 1 && blk == 0 {
			nOps = 1
		}
		remaining -= nOps
		for i := 0; i < nOps; i++ {
			c := classes[rng.Intn(len(classes))]
			id := b.AddOp(c)
			// Random dependences on earlier ops.
			deps := rng.Intn(3)
			for d := 0; d < deps && len(ids) > 0; d++ {
				from := ids[rng.Intn(len(ids))]
				b.Dep(from, id)
			}
			ids = append(ids, id)
		}
		prob := 0.0
		if blk < blocks-1 {
			prob = rng.Float64() * (0.9 / float64(blocks))
		}
		var brDeps []int
		for d := 0; d < 1+rng.Intn(2) && len(ids) > 0; d++ {
			brDeps = append(brDeps, ids[rng.Intn(len(ids))])
		}
		br := b.Branch(prob, brDeps...)
		ids = append(ids, br)
	}
	return b.MustBuild()
}

// SmallMachines returns a cheap cross-section of machine configurations for
// property tests.
func SmallMachines() []*model.Machine {
	return []*model.Machine{model.GP1(), model.GP2(), model.FS4()}
}
