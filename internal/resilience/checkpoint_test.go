package resilience

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type testRec struct {
	Name string  `json:"name"`
	Cost float64 `json:"cost"`
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("fresh checkpoint has %d records", c.Len())
	}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("job-%02d", i)
		if err := c.Put(key, testRec{Name: key, Cost: float64(i) + 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 10 {
		t.Fatalf("reloaded %d records, want 10", re.Len())
	}
	var rec testRec
	if !re.Lookup("job-07", &rec) || rec.Cost != 7.5 {
		t.Fatalf("Lookup(job-07) = %+v", rec)
	}
	if re.Lookup("job-99", &rec) {
		t.Fatal("Lookup of an absent key succeeded")
	}
	// Overwrite keeps one record per key.
	if err := re.Put("job-07", testRec{Name: "job-07", Cost: 70.5}); err != nil {
		t.Fatal(err)
	}
	if err := re.Flush(); err != nil {
		t.Fatal(err)
	}
	again, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != 10 {
		t.Fatalf("overwrite grew the store to %d records", again.Len())
	}
	if !again.Lookup("job-07", &rec) || rec.Cost != 70.5 {
		t.Fatalf("overwritten record = %+v", rec)
	}
}

func TestCheckpointAtomicFlush(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", testRec{Name: "k"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind after flush", e.Name())
		}
	}
	// Idempotent: flushing a clean checkpoint rewrites nothing.
	before, _ := os.Stat(path)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if before.ModTime() != after.ModTime() {
		t.Error("clean Flush rewrote the file")
	}
}

// TestCheckpointTolerantLoad proves a crash-truncated or corrupted file
// still loads: valid lines are kept, garbage and foreign versions are
// skipped.
func TestCheckpointTolerantLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	content := `{"v":1,"key":"good-1","data":{"name":"good-1","cost":1}}
not json at all
{"v":99,"key":"future","data":{}}
{"v":1,"key":"","data":{}}
{"v":1,"key":"good-2","data":{"name":"good-2","cost":2}}
{"v":1,"key":"truncated","data":{"name":"trunc`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("loaded %d records from a corrupted file, want 2", c.Len())
	}
	var rec testRec
	if !c.Lookup("good-2", &rec) || rec.Cost != 2 {
		t.Fatalf("good-2 = %+v", rec)
	}
	if c.Lookup("future", &rec) {
		t.Error("foreign-version record was loaded")
	}
}

func TestCheckpointAutoFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	c.FlushEvery = 4
	for i := 0; i < 3; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), testRec{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatal("file written before FlushEvery records accumulated")
	}
	if err := c.Put("k3", testRec{}); err != nil {
		t.Fatal(err)
	}
	re, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 4 {
		t.Fatalf("auto-flush persisted %d records, want 4", re.Len())
	}
}

func TestCheckpointConcurrentPut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	c.FlushEvery = 8
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-j%d", w, i)
				if err := c.Put(key, testRec{Name: key}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 400 {
		t.Fatalf("reloaded %d records, want 400", re.Len())
	}
	seen := 0
	re.Range(func(key string, data json.RawMessage) bool {
		if len(data) == 0 {
			t.Errorf("record %s has no data", key)
		}
		seen++
		return true
	})
	if seen != 400 {
		t.Fatalf("Range visited %d records, want 400", seen)
	}
}

// TestCheckpointTruncatedTail injects truncation at every byte offset of
// the final record: no proper prefix of a JSONL line is valid, so resume
// must always succeed with exactly the intact records and the damage
// reported via Skipped.
func TestCheckpointTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")
	c, err := OpenCheckpoint(full)
	if err != nil {
		t.Fatal(err)
	}
	const intact = 5
	for i := 0; i < intact; i++ {
		if err := c.Put(fmt.Sprintf("job-%02d", i), testRec{Name: "ok", Cost: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Put("job-victim", testRec{Name: strings.Repeat("v", 40), Cost: 123.456}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the final record (trailing newline included in the file).
	body := strings.TrimRight(string(data), "\n")
	cut := strings.LastIndexByte(body, '\n') + 1 // start of the last line
	last := body[cut:]

	for off := 0; off <= len(last); off++ {
		path := filepath.Join(dir, fmt.Sprintf("trunc-%03d.ckpt", off))
		if err := os.WriteFile(path, []byte(body[:cut+off]), 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenCheckpoint(path)
		if err != nil {
			t.Fatalf("offset %d: resume aborted: %v", off, err)
		}
		wantSkipped := 1
		if off == 0 || off == len(last) {
			// Empty tail lines are ignored silently; the full line parses.
			wantSkipped = 0
		}
		wantLen := intact
		if off == len(last) {
			wantLen = intact + 1
		}
		if re.Len() != wantLen || re.Skipped() != wantSkipped {
			t.Fatalf("offset %d: Len=%d Skipped=%d, want Len=%d Skipped=%d",
				off, re.Len(), re.Skipped(), wantLen, wantSkipped)
		}
		var rec testRec
		if !re.Lookup("job-04", &rec) || rec.Cost != 4 {
			t.Fatalf("offset %d: intact record lost: %+v", off, rec)
		}
	}
}

// TestCheckpointMemory exercises the in-memory variant: full journal
// surface, no file ever written.
func TestCheckpointMemory(t *testing.T) {
	c := NewMemory()
	for i := 0; i < 2*DefaultFlushEvery; i++ { // crosses the auto-flush threshold
		if err := c.Put(fmt.Sprintf("k%03d", i), testRec{Cost: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2*DefaultFlushEvery {
		t.Fatalf("Len = %d", c.Len())
	}
	var rec testRec
	if !c.Lookup("k100", &rec) || rec.Cost != 100 {
		t.Fatalf("Lookup(k100) = %+v", rec)
	}
}
