package resilience

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestProtectPassesThrough(t *testing.T) {
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatalf("Protect(nil fn) = %v", err)
	}
	want := errors.New("plain failure")
	if err := Protect(func() error { return want }); err != want {
		t.Fatalf("Protect passed error %v, want %v", err, want)
	}
}

func TestProtectCapturesPanic(t *testing.T) {
	err := Protect(func() error { panic("boom at depth") })
	if err == nil {
		t.Fatal("Protect swallowed the panic")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Protect returned %T, want *PanicError", err)
	}
	if pe.Value != "boom at depth" {
		t.Errorf("PanicError.Value = %v, want the panic value", pe.Value)
	}
	if !strings.Contains(err.Error(), "boom at depth") {
		t.Errorf("Error() = %q, does not mention the panic value", err.Error())
	}
	// The stack must point at this test, not at the recovery plumbing only.
	if !strings.Contains(string(pe.Stack), "TestProtectCapturesPanic") {
		t.Errorf("captured stack does not include the panicking frame:\n%s", pe.Stack)
	}
}

func TestBudgetNilIsUnlimited(t *testing.T) {
	var b *Budget
	b.Spend(1 << 40)
	if b.Expired() {
		t.Error("nil budget expired")
	}
	if b.Spent() != 0 {
		t.Error("nil budget accumulated spend")
	}
}

func TestBudgetNodes(t *testing.T) {
	b := NewBudget(0, 100)
	b.Spend(99)
	if b.Expired() {
		t.Fatal("budget expired below its node limit")
	}
	b.Spend(1)
	if !b.Expired() {
		t.Fatal("budget not expired at its node limit")
	}
	// Sticky: further polls still report expiry.
	if !b.Expired() {
		t.Fatal("expiry did not stick")
	}
	if b.Spent() != 100 {
		t.Errorf("Spent() = %d, want 100", b.Spent())
	}
}

func TestBudgetWallClock(t *testing.T) {
	b := NewBudget(time.Millisecond, 0)
	deadline := time.Now().Add(time.Second)
	for !b.Expired() {
		if time.Now().After(deadline) {
			t.Fatal("wall budget never expired")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestSpec(t *testing.T) {
	if !(Spec{}).IsZero() || (Spec{}).New() != nil || (Spec{}).String() != "" {
		t.Error("zero Spec is not the unlimited budget")
	}
	s := Spec{Wall: 5 * time.Millisecond, Nodes: 42}
	if s.IsZero() {
		t.Error("nonzero Spec reported zero")
	}
	if b := s.New(); b == nil {
		t.Error("nonzero Spec produced a nil budget")
	}
	if got := s.String(); got != "wall=5ms,nodes=42" {
		t.Errorf("Spec.String() = %q", got)
	}
}

func TestChaosDeterminism(t *testing.T) {
	a := &Chaos{Seed: 7, PanicRate: 0.05, ErrorRate: 0.05, DelayRate: 0.1}
	b := &Chaos{Seed: 7, PanicRate: 0.05, ErrorRate: 0.05, DelayRate: 0.1}
	for i := 0; i < 1000; i++ {
		ad, ap, af := a.Plan(i)
		bd, bp, bf := b.Plan(i)
		if ad != bd || ap != bp || af != bf {
			t.Fatalf("plan for job %d differs across equal seeds", i)
		}
	}
	other := &Chaos{Seed: 8, PanicRate: 0.05, ErrorRate: 0.05, DelayRate: 0.1}
	same := 0
	for i := 0; i < 1000; i++ {
		if _, ap, af := a.Plan(i); func() bool { _, op, of := other.Plan(i); return ap == op && af == of }() {
			same++
		}
	}
	if same == 1000 {
		t.Error("chaos plans are seed-insensitive")
	}
}

func TestChaosRates(t *testing.T) {
	c := &Chaos{Seed: 1999, PanicRate: 0.05, ErrorRate: 0.05}
	const n = 10_000
	failures := c.FailureSet(n)
	// ~10% of jobs should fail; allow generous tolerance for a hash draw.
	if got := float64(len(failures)) / n; got < 0.06 || got > 0.14 {
		t.Errorf("failure fraction = %.3f, want ≈ 0.10", got)
	}
}

func TestChaosVisit(t *testing.T) {
	c := &Chaos{Seed: 3, PanicRate: 0.2, ErrorRate: 0.2, DelayRate: 0.2, Delay: time.Microsecond}
	sawPanic, sawErr, sawClean := false, false, false
	for i := 0; i < 200 && !(sawPanic && sawErr && sawClean); i++ {
		err := Protect(func() error { return c.Visit(i) })
		_, panics, fails := c.Plan(i)
		switch {
		case panics:
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("job %d: planned panic surfaced as %v", i, err)
			}
			sawPanic = true
		case fails:
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("job %d: planned error surfaced as %v", i, err)
			}
			sawErr = true
		default:
			if err != nil {
				t.Fatalf("job %d: unplanned fault %v", i, err)
			}
			sawClean = true
		}
	}
	if !sawPanic || !sawErr || !sawClean {
		t.Fatalf("chaos mix not exercised: panic=%v err=%v clean=%v", sawPanic, sawErr, sawClean)
	}
}

func TestTierSpec(t *testing.T) {
	tiers := []time.Duration{25 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond}
	cases := []struct {
		remaining time.Duration
		want      Spec
	}{
		{0, Spec{}},            // no deadline: unlimited
		{-time.Second, Spec{}}, // already expired upstream
		{time.Second, Spec{Wall: 500 * time.Millisecond}}, // largest tier that fits
		{500 * time.Millisecond, Spec{Wall: 500 * time.Millisecond}},
		{120 * time.Millisecond, Spec{Wall: 100 * time.Millisecond}},
		{25 * time.Millisecond, Spec{Wall: 25 * time.Millisecond}},
		{10 * time.Millisecond, Spec{Wall: 10 * time.Millisecond}}, // below the ladder: un-quantized
	}
	for _, c := range cases {
		if got := TierSpec(c.remaining, tiers); got != c.want {
			t.Errorf("TierSpec(%v) = %+v, want %+v", c.remaining, got, c.want)
		}
	}
	if got := TierSpec(time.Second, nil); !got.IsZero() {
		t.Errorf("TierSpec with no ladder = %+v, want zero", got)
	}
	// Unsorted ladders work: the largest fitting tier wins regardless of order.
	unsorted := []time.Duration{500 * time.Millisecond, 25 * time.Millisecond, 100 * time.Millisecond}
	if got := TierSpec(200*time.Millisecond, unsorted); got.Wall != 100*time.Millisecond {
		t.Errorf("TierSpec(200ms, unsorted) = %+v, want wall=100ms", got)
	}
}
