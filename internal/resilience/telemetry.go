package resilience

import "balance/internal/telemetry"

// Fault-tolerance instruments, registered once in the default registry.
// See DESIGN.md ("Robustness") for what each series means.
var (
	telPanicsRecovered   = telemetry.Default().Counter("resilience.panics_recovered")
	telCheckpointLoaded  = telemetry.Default().Counter("resilience.checkpoint_records_loaded")
	telCheckpointSkipped = telemetry.Default().Counter("resilience.checkpoint_lines_skipped")
	telCheckpointFlushes = telemetry.Default().Counter("resilience.checkpoint_flushes")
	telChaosPanics       = telemetry.Default().Counter("resilience.chaos_panics")
	telChaosErrors       = telemetry.Default().Counter("resilience.chaos_errors")
	telChaosDelays       = telemetry.Default().Counter("resilience.chaos_delays")
)
