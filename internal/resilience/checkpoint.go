package resilience

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
)

// CheckpointVersion is the record-format version written into every line.
// Loading skips records from other versions (forward compatibility: an old
// binary resuming a newer checkpoint recomputes rather than misreads).
const CheckpointVersion = 1

// DefaultFlushEvery is how many new records accumulate before Put flushes
// the file automatically. A crash loses at most this many results.
const DefaultFlushEvery = 64

// checkpointLine is the on-disk form of one record: one JSON object per
// line, `{"v":1,"key":"...","data":{...}}`. The payload schema is the
// writer's business (the engine pipeline stores its result summaries; see
// DESIGN.md "Checkpoint format").
type checkpointLine struct {
	V    int             `json:"v"`
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// Checkpoint is a key-addressed JSONL result store for crash/SIGINT
// recovery of long sweeps. All writes go through an atomic temp+rename of
// the whole file, so the on-disk checkpoint is always a complete,
// parseable prefix of the run — a reader never observes a half-written
// line. Loading tolerates corrupt or foreign-version lines by skipping
// them (counted in the "resilience.checkpoint_lines_skipped" telemetry
// series), so a checkpoint truncated by a power cut still resumes.
//
// Checkpoint is safe for concurrent use by the worker pool.
type Checkpoint struct {
	// FlushEvery is how many Puts may accumulate before an automatic
	// Flush (default DefaultFlushEvery; set before first Put).
	FlushEvery int

	mu      sync.Mutex
	path    string // "" for in-memory checkpoints: Flush is a no-op
	recs    map[string]json.RawMessage
	order   []string // insertion order, for deterministic files
	dirty   int      // Puts since the last flush
	skipped int      // corrupt/foreign-version lines dropped at load
}

// NewMemory returns an empty in-memory checkpoint: the same journal
// surface (Put/Lookup/Range) with Flush a no-op. Useful as an engine
// checkpoint sink when persistence is handled elsewhere — e.g. the
// distributed coordinator renders tables from its journal without
// touching disk twice.
func NewMemory() *Checkpoint {
	return &Checkpoint{
		FlushEvery: DefaultFlushEvery,
		recs:       map[string]json.RawMessage{},
	}
}

// OpenCheckpoint opens (creating if absent) the checkpoint at path and
// loads every valid record already in it. Lines that fail to parse —
// most commonly a final line truncated by a crash mid-write — are
// dropped with a logged warning rather than aborting the resume; the
// count is available via Skipped.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	c := &Checkpoint{
		FlushEvery: DefaultFlushEvery,
		path:       path,
		recs:       map[string]json.RawMessage{},
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resilience: checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec checkpointLine
		if err := json.Unmarshal(line, &rec); err != nil || rec.V != CheckpointVersion || rec.Key == "" {
			c.skipped++
			telCheckpointSkipped.Inc()
			log.Printf("resilience: checkpoint %s: dropping unreadable record at line %d (truncated write or foreign version)", path, lineNo)
			continue
		}
		if _, seen := c.recs[rec.Key]; !seen {
			c.order = append(c.order, rec.Key)
		}
		c.recs[rec.Key] = rec.Data
		telCheckpointLoaded.Inc()
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("resilience: checkpoint %s: %w", path, err)
	}
	return c, nil
}

// Skipped reports how many unreadable lines were dropped when the
// checkpoint was loaded.
func (c *Checkpoint) Skipped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.skipped
}

// Len returns the number of records held.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Lookup unmarshals the record stored under key into v, reporting whether
// the key was present.
func (c *Checkpoint) Lookup(key string, v any) bool {
	c.mu.Lock()
	data, ok := c.recs[key]
	c.mu.Unlock()
	if !ok {
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false
	}
	return true
}

// Put stores v under key (overwriting any previous record) and flushes the
// file when FlushEvery new records have accumulated.
func (c *Checkpoint) Put(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("resilience: checkpoint: %w", err)
	}
	c.mu.Lock()
	if _, seen := c.recs[key]; !seen {
		c.order = append(c.order, key)
	}
	c.recs[key] = data
	c.dirty++
	every := c.FlushEvery
	if every <= 0 {
		every = DefaultFlushEvery
	}
	needFlush := c.dirty >= every
	c.mu.Unlock()
	if needFlush {
		return c.Flush()
	}
	return nil
}

// Range calls fn for every record in insertion order until fn returns
// false. The data slice must not be retained or mutated.
func (c *Checkpoint) Range(fn func(key string, data json.RawMessage) bool) {
	c.mu.Lock()
	order := append([]string(nil), c.order...)
	recs := make(map[string]json.RawMessage, len(c.recs))
	for k, v := range c.recs {
		recs[k] = v
	}
	c.mu.Unlock()
	for _, k := range order {
		if !fn(k, recs[k]) {
			return
		}
	}
}

// Flush writes every record to the checkpoint file atomically: the full
// contents go to a temp file in the same directory, fsync'd, then renamed
// over the target. A crash mid-flush leaves the previous complete file in
// place.
func (c *Checkpoint) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirty == 0 {
		return nil
	}
	if c.path == "" { // in-memory checkpoint: nothing to persist
		c.dirty = 0
		return nil
	}
	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(c.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("resilience: checkpoint flush: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	for _, key := range c.order {
		if err := enc.Encode(checkpointLine{V: CheckpointVersion, Key: key, Data: c.recs[key]}); err != nil {
			tmp.Close()
			return fmt.Errorf("resilience: checkpoint flush: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("resilience: checkpoint flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("resilience: checkpoint flush: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resilience: checkpoint flush: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		return fmt.Errorf("resilience: checkpoint flush: %w", err)
	}
	c.dirty = 0
	telCheckpointFlushes.Inc()
	return nil
}
