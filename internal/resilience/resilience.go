// Package resilience is the fault-tolerance substrate of the evaluation
// pipeline. A production-scale sweep pushes thousands of superblocks
// through the bounds, six heuristics, and an exponential exact solver; one
// malformed input or pathologically slow instance must not kill or stall
// the whole run. This package provides the four mechanisms the pipeline
// composes to guarantee that:
//
//   - Protect / PanicError: run a job function with panic capture, turning
//     a worker panic into an ordinary per-job error that carries the
//     recovered value and the goroutine stack. internal/engine wraps every
//     pool job in it, so a panic aborts one job, not the process.
//   - Budget: a combined wall-clock + abstract-node budget that bound and
//     solver computations poll. Expiry is sticky and race-safe, so a
//     budget can be shared by every stage of one job. internal/bounds
//     degrades its ladder (Triplewise → Pairwise → basic bounds) when the
//     budget expires; internal/exact returns its best incumbent flagged
//     Truncated instead of failing.
//   - Checkpoint: a digest-keyed JSONL store with atomic temp+rename
//     writes. The engine pipeline records every completed job and skips
//     already-completed jobs on restart, making SIGINT/crash recovery free
//     for long sweeps.
//   - Chaos: a deterministic seeded fault injector (panics, delays,
//     transient errors) used by the engine tests to prove all of the above
//     under the race detector.
//
// Layering: resilience imports only the standard library and
// internal/telemetry, so every layer of the pipeline (bounds, exact,
// engine, eval, the cmd tools) can depend on it.
package resilience

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic recovered from a protected job: the recovered
// value plus the stack of the panicking goroutine, captured at recovery.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted stack trace of the panicking goroutine.
	Stack []byte
}

// Error summarizes the panic on one line; the full stack is in Stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Protect runs fn, converting a panic into a *PanicError return. The
// captured stack makes the failure debuggable even when the run carries
// on past it (the engine's KeepGoing policy).
func Protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			telPanicsRecovered.Inc()
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}
