package resilience

import (
	"errors"
	"fmt"
	"time"
)

// ErrInjected marks a transient error injected by a Chaos harness; tests
// match it with errors.Is.
var ErrInjected = errors.New("resilience: injected transient error")

// Chaos is a deterministic fault injector for the evaluation pipeline: a
// seeded per-job decision of whether to delay, panic, or fail the job.
// The decision depends only on (Seed, job index), so a chaos run is
// exactly reproducible — the engine tests use that to predict which jobs
// must fail and prove that the survivors complete, the failures surface in
// the result stream, and a checkpointed re-run recomputes only the failed
// jobs.
//
// Injection order per job: delay first (so a delayed job still exercises
// the downstream fault), then panic, then transient error. The same job
// can therefore be both delayed and failed.
type Chaos struct {
	// Seed drives every decision; two Chaos values with equal seeds and
	// rates inject identical faults.
	Seed int64
	// PanicRate is the fraction of jobs that panic (0..1).
	PanicRate float64
	// ErrorRate is the fraction of jobs that return a transient error.
	ErrorRate float64
	// DelayRate is the fraction of jobs delayed by Delay.
	DelayRate float64
	// Delay is the injected latency for delayed jobs.
	Delay time.Duration
}

// draw returns a uniform [0,1) value determined by (Seed, i, salt):
// splitmix64-style finalization over the mixed inputs.
func (c *Chaos) draw(i int, salt uint64) float64 {
	h := uint64(c.Seed)*0x9E3779B97F4A7C15 + (uint64(i)+1)*0xBF58476D1CE4E5B9 + salt*0x94D049BB133111EB
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// Plan reports, without acting, which faults Visit will inject for job i.
// Tests use it to predict the exact failure set of a chaos run.
func (c *Chaos) Plan(i int) (delays, panics, fails bool) {
	delays = c.draw(i, 1) < c.DelayRate
	panics = c.draw(i, 2) < c.PanicRate
	fails = !panics && c.draw(i, 3) < c.ErrorRate
	return
}

// Visit injects the planned faults for job i: sleeps for Delay, panics, or
// returns an error wrapping ErrInjected. Jobs with no planned fault return
// nil untouched. Visit is safe for concurrent use.
func (c *Chaos) Visit(i int) error {
	delays, panics, fails := c.Plan(i)
	if delays {
		telChaosDelays.Inc()
		time.Sleep(c.Delay)
	}
	if panics {
		telChaosPanics.Inc()
		panic(fmt.Sprintf("chaos: injected panic in job %d (seed %d)", i, c.Seed))
	}
	if fails {
		telChaosErrors.Inc()
		return fmt.Errorf("chaos: job %d: %w", i, ErrInjected)
	}
	return nil
}

// FailureSet returns the indices in [0, n) that Visit will fail (panic or
// transient error) — the jobs a KeepGoing run must report and a
// checkpointed re-run must recompute.
func (c *Chaos) FailureSet(n int) map[int]bool {
	out := map[int]bool{}
	for i := 0; i < n; i++ {
		_, panics, fails := c.Plan(i)
		if panics || fails {
			out[i] = true
		}
	}
	return out
}
