package resilience

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Spec is the declarative form of a per-job budget: a wall-clock limit
// and/or an abstract node limit ("nodes" are whatever unit the spending
// computation counts — bound-algorithm loop trips, solver search nodes).
// The zero Spec means "no budget"; Spec.New then returns nil, which every
// Budget method accepts.
type Spec struct {
	// Wall is the wall-clock limit (0 = unlimited).
	Wall time.Duration
	// Nodes is the abstract work-unit limit (0 = unlimited).
	Nodes int64
}

// IsZero reports whether the spec imposes no limit at all.
func (s Spec) IsZero() bool { return s.Wall <= 0 && s.Nodes <= 0 }

// New starts a budget clock for one job, or returns nil for the zero spec.
func (s Spec) New() *Budget {
	if s.IsZero() {
		return nil
	}
	return NewBudget(s.Wall, s.Nodes)
}

// String renders the spec canonically ("" for the zero spec). It is part
// of the memo/checkpoint key: results computed under different budgets are
// never conflated.
func (s Spec) String() string {
	if s.IsZero() {
		return ""
	}
	return fmt.Sprintf("wall=%s,nodes=%d", s.Wall, s.Nodes)
}

// TierSpec quantizes a per-request deadline onto a discrete wall-clock
// budget ladder: it returns a Spec whose Wall is the largest tier that fits
// within remaining. Quantization is what lets a result cache coalesce and
// share work across requests with different-but-similar deadlines —
// Spec.String participates in the cache key, so only requests in the same
// tier share entries, and a result degraded under one tier is never served
// to a more patient caller from a higher tier.
//
// A non-positive remaining (no deadline) or an empty ladder returns the
// zero Spec (unlimited). A deadline below the smallest tier returns the
// un-quantized Spec{Wall: remaining}: correctness over cacheability for
// callers in a real hurry.
func TierSpec(remaining time.Duration, tiers []time.Duration) Spec {
	if remaining <= 0 || len(tiers) == 0 {
		return Spec{}
	}
	var best time.Duration
	for _, t := range tiers {
		if t > 0 && t <= remaining && t > best {
			best = t
		}
	}
	if best == 0 {
		return Spec{Wall: remaining}
	}
	return Spec{Wall: best}
}

// Budget is a shared, race-safe computation allowance: a wall-clock
// deadline plus an abstract node limit. Stages of one job spend nodes into
// it and poll Expired at their phase boundaries; expiry is sticky (time
// only advances, the node count only grows), so once one stage observes
// expiry every later stage does too.
//
// A nil *Budget is the unlimited budget: Spend is a no-op and Expired
// reports false, so callers thread an optional budget without nil checks.
type Budget struct {
	deadline time.Time // zero = no wall limit
	maxNodes int64     // ≤ 0 = no node limit
	nodes    atomic.Int64
}

// NewBudget starts a budget with the given wall-clock allowance (0 =
// unlimited) and node allowance (≤ 0 = unlimited). The wall clock starts
// immediately.
func NewBudget(wall time.Duration, nodes int64) *Budget {
	b := &Budget{maxNodes: nodes}
	if wall > 0 {
		b.deadline = time.Now().Add(wall)
	}
	return b
}

// Spend records n abstract work units against the budget. Nil-safe.
func (b *Budget) Spend(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.nodes.Add(n)
}

// Reserve claims up to n nodes from the remaining node allowance and
// returns how many were granted: n when the budget has no node limit (or b
// is nil), the exact remainder when fewer than n nodes are left, and 0 when
// the allowance is exhausted. The grant is charged immediately (Spent
// includes it); callers return what they did not use with Refund. Together
// the pair makes batched node accounting exact to ±0: a consumer that
// expands only granted nodes can never overshoot the limit, unlike the
// spend-after-the-fact pattern, which overshoots by up to one batch per
// concurrent consumer.
func (b *Budget) Reserve(n int64) int64 {
	if b == nil || n <= 0 {
		if n < 0 {
			return 0
		}
		return n
	}
	if b.maxNodes <= 0 {
		b.nodes.Add(n)
		return n
	}
	for {
		cur := b.nodes.Load()
		rem := b.maxNodes - cur
		if rem <= 0 {
			return 0
		}
		grant := n
		if grant > rem {
			grant = rem
		}
		if b.nodes.CompareAndSwap(cur, cur+grant) {
			return grant
		}
	}
}

// Refund returns unused nodes from an earlier Reserve grant. Nil-safe.
// Refunding more than was reserved corrupts the accounting; callers refund
// exactly grant-used.
func (b *Budget) Refund(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.nodes.Add(-n)
}

// WallExpired reports whether the wall-clock allowance alone is exhausted,
// ignoring the node count. Consumers that pre-reserve node batches poll
// this instead of Expired: their own outstanding reservations would
// otherwise read as node exhaustion. Nil-safe.
func (b *Budget) WallExpired() bool {
	if b == nil {
		return false
	}
	return !b.deadline.IsZero() && time.Now().After(b.deadline)
}

// Spent returns the nodes spent so far. Nil-safe.
func (b *Budget) Spent() int64 {
	if b == nil {
		return 0
	}
	return b.nodes.Load()
}

// Expired reports whether either allowance is exhausted. Nil-safe: a nil
// budget never expires. Callers poll it at phase boundaries (bounds) or
// batched node intervals (the exact solver), so the time syscall stays off
// per-node hot paths.
func (b *Budget) Expired() bool {
	if b == nil {
		return false
	}
	if b.maxNodes > 0 && b.nodes.Load() >= b.maxNodes {
		return true
	}
	return !b.deadline.IsZero() && time.Now().After(b.deadline)
}
