package resilience

import (
	"sync"
	"testing"
	"time"
)

func TestReserveUnlimited(t *testing.T) {
	var b *Budget
	if got := b.Reserve(100); got != 100 {
		t.Errorf("nil budget Reserve(100) = %d, want 100", got)
	}
	b.Refund(50) // nil-safe no-op

	wall := NewBudget(time.Hour, 0)
	if got := wall.Reserve(64); got != 64 {
		t.Errorf("no-node-limit Reserve(64) = %d, want 64", got)
	}
	if got := wall.Spent(); got != 64 {
		t.Errorf("Spent after Reserve = %d, want 64", got)
	}
	wall.Refund(10)
	if got := wall.Spent(); got != 54 {
		t.Errorf("Spent after Refund = %d, want 54", got)
	}
}

func TestReserveExactRemainder(t *testing.T) {
	b := NewBudget(0, 100)
	if got := b.Reserve(64); got != 64 {
		t.Fatalf("first Reserve = %d, want 64", got)
	}
	if got := b.Reserve(64); got != 36 {
		t.Fatalf("second Reserve = %d, want the exact remainder 36", got)
	}
	if got := b.Reserve(64); got != 0 {
		t.Fatalf("exhausted Reserve = %d, want 0", got)
	}
	if !b.Expired() {
		t.Error("budget with every node reserved should report Expired")
	}
	// A refund reopens exactly the returned allowance.
	b.Refund(5)
	if got := b.Reserve(64); got != 5 {
		t.Fatalf("post-refund Reserve = %d, want 5", got)
	}
	if got := b.Spent(); got != 100 {
		t.Errorf("Spent = %d, want 100", got)
	}
}

// TestReserveConcurrentNeverOvershoots is the ±0 accounting invariant: any
// interleaving of concurrent reservations grants exactly the limit in
// total, never more.
func TestReserveConcurrentNeverOvershoots(t *testing.T) {
	const limit = 10_000
	b := NewBudget(0, limit)
	var wg sync.WaitGroup
	granted := make([]int64, 8)
	for w := range granted {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				g := b.Reserve(97)
				if g == 0 {
					return
				}
				granted[w] += g
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, g := range granted {
		total += g
	}
	if total != limit {
		t.Errorf("total granted = %d, want exactly %d", total, limit)
	}
	if got := b.Spent(); got != limit {
		t.Errorf("Spent = %d, want %d", got, limit)
	}
}

func TestWallExpiredIgnoresNodes(t *testing.T) {
	b := NewBudget(time.Hour, 10)
	b.Reserve(10)
	if b.WallExpired() {
		t.Error("fresh wall clock reported expired")
	}
	if !b.Expired() {
		t.Error("fully reserved node budget should report Expired")
	}
	short := NewBudget(time.Nanosecond, 10)
	time.Sleep(time.Millisecond)
	if !short.WallExpired() {
		t.Error("elapsed wall clock not reported by WallExpired")
	}
	if (*Budget)(nil).WallExpired() {
		t.Error("nil budget WallExpired should be false")
	}
}
