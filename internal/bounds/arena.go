package bounds

import (
	"slices"
	"sync"
)

// rjScratch is the reusable working set of a Rim & Jain relaxation: the
// sorted placement order, packed sort keys, and per-kind cycle-occupancy
// rows. It makes repeated relaxations (the pairwise sweep solves one per
// separation value) allocation-free in steady state.
//
// Occupancy rows are epoch-stamped instead of zeroed: begin() bumps a
// generation counter, and a cell whose stamp lags the generation reads as
// zero. A full clear only happens on the (practically unreachable) uint32
// wrap. A scratch is owned by exactly one goroutine between get and put;
// the parallel pair fan-out gives every worker its own.
type rjScratch struct {
	order []int
	keys  []uint64
	used  [][]int32
	stamp [][]uint32
	gen   uint32
}

var rjPool = sync.Pool{New: func() any { return new(rjScratch) }}

func getRJScratch() *rjScratch   { return rjPool.Get().(*rjScratch) }
func putRJScratch(sc *rjScratch) { rjPool.Put(sc) }

// begin readies the scratch for one relaxation over the given number of
// resource kinds: all occupancy cells read as zero afterwards.
func (sc *rjScratch) begin(kinds int) {
	for len(sc.used) < kinds {
		sc.used = append(sc.used, nil)
		sc.stamp = append(sc.stamp, nil)
	}
	sc.gen++
	if sc.gen == 0 {
		for _, st := range sc.stamp {
			clear(st)
		}
		sc.gen = 1
	}
}

// at reads the occupancy of kind k at cycle c (zero when untouched this
// generation).
func (sc *rjScratch) at(k, c int) int {
	u := sc.used[k]
	if c >= len(u) || sc.stamp[k][c] != sc.gen {
		return 0
	}
	return int(u[c])
}

// inc bumps the occupancy of kind k at cycle c, growing the row as needed.
func (sc *rjScratch) inc(k, c int) {
	u, st := sc.used[k], sc.stamp[k]
	for c >= len(u) {
		u = append(u, 0)
		st = append(st, 0)
	}
	sc.used[k], sc.stamp[k] = u, st
	if st[c] != sc.gen {
		st[c] = sc.gen
		u[c] = 0
	}
	u[c]++
}

// Field widths of the packed sort key: (late, early, id) ascending. The
// ranges are checked per call; anything wider falls back to a comparator
// sort with the identical ordering.
const (
	rjIDBits    = 20
	rjEarlyBits = 20
	rjLateBits  = 64 - rjIDBits - rjEarlyBits
)

// sortedOrder copies include into the scratch order buffer and sorts it by
// (late, early, id) ascending — the placement order rimJain requires. The
// fast path packs the three fields into one uint64 per op and sorts the
// keys; the orderings are identical because each field is range-shifted to
// be non-negative and fits its bit width.
func (sc *rjScratch) sortedOrder(include []int, early, late []int) []int {
	sc.order = append(sc.order[:0], include...)
	order := sc.order
	if len(order) < 2 {
		return order
	}
	minLate, maxLate := late[order[0]], late[order[0]]
	minEarly, maxEarly := early[order[0]], early[order[0]]
	maxID := order[0]
	for _, v := range order[1:] {
		if late[v] < minLate {
			minLate = late[v]
		}
		if late[v] > maxLate {
			maxLate = late[v]
		}
		if early[v] < minEarly {
			minEarly = early[v]
		}
		if early[v] > maxEarly {
			maxEarly = early[v]
		}
		if v > maxID {
			maxID = v
		}
	}
	if maxLate-minLate < 1<<rjLateBits && maxEarly-minEarly < 1<<rjEarlyBits && maxID < 1<<rjIDBits {
		keys := sc.keys[:0]
		for _, v := range order {
			keys = append(keys,
				uint64(late[v]-minLate)<<(rjEarlyBits+rjIDBits)|
					uint64(early[v]-minEarly)<<rjIDBits|
					uint64(v))
		}
		sc.keys = keys
		slices.Sort(keys)
		for i, k := range keys {
			order[i] = int(k & (1<<rjIDBits - 1))
		}
		return order
	}
	slices.SortFunc(order, func(a, b int) int {
		if late[a] != late[b] {
			return late[a] - late[b]
		}
		if early[a] != early[b] {
			return early[a] - early[b]
		}
		return a - b
	})
	return order
}
