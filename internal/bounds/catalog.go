package bounds

// CatalogEntry describes one lower-bound algorithm: its table name, lookup
// aliases, and how to extract its values from a computed Set. The catalog
// is the single authoritative list of the bounds this package implements;
// internal/engine mirrors it into its name-keyed registry at init, and
// Table 1 derives its columns from it.
type CatalogEntry struct {
	Name        string
	Aliases     []string
	Description string
	// Value extracts the superblock-level weighted-completion bound.
	Value func(*Set) float64
	// PerBranch extracts the per-branch issue-cycle bounds (nil when the
	// bound has no per-branch form).
	PerBranch func(*Set) PerBranch
	// Trips extracts the algorithm's Table-2 loop-trip count from the
	// per-superblock statistics.
	Trips func(*AlgStats) float64
}

// Catalog returns the bound algorithms in the paper's Table 1 column order.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{
			Name:        "CP",
			Aliases:     []string{"critical-path"},
			Description: "critical-path (dependence-only) bound",
			Value:       func(s *Set) float64 { return s.CPVal },
			PerBranch:   func(s *Set) PerBranch { return s.CP },
			Trips:       func(s *AlgStats) float64 { return float64(s.CP.Trips) },
		},
		{
			Name:        "Hu",
			Description: "Hu's single-resource bound",
			Value:       func(s *Set) float64 { return s.HuVal },
			PerBranch:   func(s *Set) PerBranch { return s.Hu },
			Trips:       func(s *AlgStats) float64 { return float64(s.Hu.Trips) },
		},
		{
			Name:        "RJ",
			Aliases:     []string{"rim-jain"},
			Description: "Rim & Jain resource-constrained bound",
			Value:       func(s *Set) float64 { return s.RJVal },
			PerBranch:   func(s *Set) PerBranch { return s.RJ },
			Trips:       func(s *AlgStats) float64 { return float64(s.RJ.Trips) },
		},
		{
			Name:        "LC",
			Aliases:     []string{"langevin-cerny"},
			Description: "Langevin & Cerny recursion with the Theorem-1 shortcut",
			Value:       func(s *Set) float64 { return s.LCVal },
			PerBranch:   func(s *Set) PerBranch { return s.LC },
			Trips:       func(s *AlgStats) float64 { return float64(s.LC.Trips) },
		},
		{
			Name:        "PW",
			Aliases:     []string{"pairwise"},
			Description: "pairwise branch-tradeoff bound (Theorems 2-3)",
			Value:       func(s *Set) float64 { return s.PairVal },
			Trips:       func(s *AlgStats) float64 { return float64(s.PW.Trips) },
		},
		{
			Name:        "TW",
			Aliases:     []string{"triplewise"},
			Description: "triplewise bound (Section 4.4 extension)",
			Value:       func(s *Set) float64 { return s.TripleVal },
			Trips:       func(s *AlgStats) float64 { return float64(s.TW.Trips + s.TW.TripleSweeps) },
		},
	}
}
