package bounds

import (
	"context"
	"time"

	"balance/internal/telemetry"
)

// boundTel is the per-bound-kind instrument pair: invocation count and
// wall-time histogram. Series names follow the catalog's canonical bound
// names ("bounds.CP.calls", "bounds.CP.latency_ns", ...), so tooling can
// join them against Catalog().
type boundTel struct {
	span  string
	calls *telemetry.Counter
	dur   *telemetry.Histogram
}

func newBoundTel(name string) boundTel {
	r := telemetry.Default()
	return boundTel{
		span:  "bounds." + name,
		calls: r.Counter("bounds." + name + ".calls"),
		dur:   r.Histogram("bounds." + name + ".latency_ns"),
	}
}

// timed runs fn and records one invocation plus its latency.
func (t boundTel) timed(fn func()) {
	start := time.Now()
	fn()
	t.dur.ObserveDuration(time.Since(start))
	t.calls.Inc()
}

// timedCtx is timed plus a "bounds.<name>" span parented to ctx, so each
// ladder rung shows up as its own slice under the enclosing
// bounds.compute span. With no sink installed it costs exactly what
// timed costs.
func (t boundTel) timedCtx(ctx context.Context, fn func()) {
	sp, _ := telemetry.Default().StartSpanCtx(ctx, t.span)
	start := time.Now()
	fn()
	t.dur.ObserveDuration(time.Since(start))
	t.calls.Inc()
	sp.End()
}

var (
	telCP      = newBoundTel("CP")
	telHu      = newBoundTel("Hu")
	telRJ      = newBoundTel("RJ")
	telLC      = newBoundTel("LC")
	telPW      = newBoundTel("PW")
	telTW      = newBoundTel("TW")
	telCompute = newBoundTel("Compute")

	// Degradation counters: how often an expired budget cut the ladder at
	// each level (see ComputeBudget).
	telDegradeTW = telemetry.Default().Counter("bounds.degraded_triplewise")
	telDegradePW = telemetry.Default().Counter("bounds.degraded_pairwise")

	// Kernel counters: pair/triple evaluations skipped by the dominance
	// prunes and bound-kernel cache hits (see KernelFor). They are bumped
	// at most once per pair, triple, or kernel lookup — never per sweep
	// step or lattice point — so observability stays off the hot path.
	telPairsPruned   = telemetry.Default().Counter("bounds.pairs_pruned")
	telTriplesPruned = telemetry.Default().Counter("bounds.triples_pruned")
	telKernelReuse   = telemetry.Default().Counter("bounds.kernel_reuse")
)
