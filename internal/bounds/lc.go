package bounds

import (
	"balance/internal/model"
)

// lcOnDag runs the Langevin & Cerny recursion on a dag: for every op v in
// topological order it computes earlyRC[v], a resource-constrained lower
// bound on v's issue cycle, by solving a Rim & Jain relaxation over v's
// predecessor subgraph with Early values set to the already-computed
// earlyRC of the predecessors and Late values derived from the dependence
// distances to v.
//
// When useTheorem1 is true, ops with a unique direct predecessor reached
// through a positive-latency edge take the paper's Theorem-1 shortcut:
// earlyRC[v] = earlyRC[p] + l_{p,v}, skipping the relaxation.
func lcOnDag(d *dag, useTheorem1 bool, st *Stats) []int {
	earlyRC := make([]int, d.n)
	dist := make([]int, d.n) // longest path u -> v, reused per v
	include := make([]int, 0, d.n)
	late := make([]int, d.n)
	sc := getRJScratch()
	defer putRJScratch(sc)

	for _, v := range d.topo {
		st.Trips++
		preds := d.preds[v]
		if len(preds) == 0 {
			earlyRC[v] = 0
			continue
		}
		depEarly := 0
		for _, e := range preds {
			if t := earlyRC[e.To] + e.Lat; t > depEarly {
				depEarly = t
			}
		}
		if useTheorem1 && len(preds) == 1 && preds[0].Lat > 0 {
			earlyRC[v] = depEarly
			st.Theorem1Skips++
			continue
		}

		// Longest dependence distance from each transitive predecessor to
		// v, via reverse DFS with relaxation over the (acyclic) pred edges.
		// dist is computed by dynamic programming over a reverse
		// topological restriction: we process the dag's topological order
		// backwards, touching only ops that reach v.
		for i := range dist {
			dist[i] = -1
		}
		dist[v] = 0
		include = include[:0]
		// Find position of v in topo to walk backwards from it.
		for i := len(d.topo) - 1; i >= 0; i-- {
			u := d.topo[i]
			if dist[u] < 0 {
				continue
			}
			include = append(include, u)
			for _, e := range d.preds[u] {
				st.Trips++
				if dd := dist[u] + e.Lat; dd > dist[e.To] {
					dist[e.To] = dd
				}
			}
		}
		for _, u := range include {
			late[u] = depEarly - dist[u]
		}
		late[v] = depEarly
		earlyRC[v] = depEarly + d.rimJain(sc, include, earlyRC, late, st)
	}
	return earlyRC
}

// EarlyRC computes the Langevin & Cerny resource-constrained early bound of
// every operation in the superblock, using the Theorem-1 shortcut.
func EarlyRC(sb *model.Superblock, m *model.Machine, st *Stats) []int {
	return lcOnDag(forwardDag(sb.G, m), true, st)
}

// EarlyRCOriginal computes EarlyRC without the Theorem-1 shortcut (the
// "LC-original" row of Table 2).
func EarlyRCOriginal(sb *model.Superblock, m *model.Machine, st *Stats) []int {
	return lcOnDag(forwardDag(sb.G, m), false, st)
}

// LC returns the Langevin & Cerny bound on every branch: LC[i] =
// EarlyRC[branch_i].
func LC(sb *model.Superblock, m *model.Machine, st *Stats) PerBranch {
	earlyRC := EarlyRC(sb, m, st)
	out := make(PerBranch, len(sb.Branches))
	for i, b := range sb.Branches {
		out[i] = earlyRC[b]
	}
	return out
}

// Separation holds, for one branch b, a lower bound on the issue separation
// t_b - t_v for every transitive predecessor v of b (including b itself,
// with separation 0). Entries for non-predecessors are -1.
type Separation []int

// SeparationRC computes the resource-constrained separation bound of every
// predecessor of branch b by running Langevin & Cerny on the reversed
// predecessor subgraph (the "LC-reverse" computation of Table 2).
func SeparationRC(sb *model.Superblock, m *model.Machine, b int, st *Stats) Separation {
	d, ids := reversedDag(sb.G, m, b)
	local := lcOnDag(d, true, st)
	sep := make(Separation, sb.G.NumOps())
	for i := range sep {
		sep[i] = -1
	}
	for li, v := range ids {
		sep[v] = local[li]
	}
	return sep
}

// LateRC converts a separation bound into resource-aware late times
// relative to branch b issuing at cycle earlyB: LateRC_b[v] = earlyB -
// sep[v]. Entries for non-predecessors are not meaningful.
func LateRC(sep Separation, earlyB int) []int {
	out := make([]int, len(sep))
	for v, s := range sep {
		if s < 0 {
			out[v] = -1
			continue
		}
		out[v] = earlyB - s
	}
	return out
}
