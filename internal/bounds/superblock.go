package bounds

import (
	"context"
	"time"

	"balance/internal/model"
	"balance/internal/resilience"
	"balance/internal/telemetry"
)

// NaiveValue composes per-branch issue bounds into a superblock-level lower
// bound on the weighted completion time: Σ_i w_i·(b_i + l_br). This is the
// "naive" composition of Section 4.2 that ignores inter-branch conflicts.
func NaiveValue(sb *model.Superblock, pb PerBranch) float64 {
	total := 0.0
	for i := range sb.Branches {
		total += sb.Prob[i] * float64(pb[i]+model.BranchLatency)
	}
	return total
}

// PairwiseValue composes the pairwise bounds into a superblock-level lower
// bound per Theorem 3: summing the per-pair inequalities counts every
// branch B-1 times, so the bound is Σ_pairs Value / (B-1) + l_br.
// For a single-exit superblock it degenerates to the naive LC bound.
func PairwiseValue(sb *model.Superblock, earlyRC []int, pairs []*PairBound) float64 {
	b := len(sb.Branches)
	if b < 2 {
		return sb.Prob[0] * float64(earlyRC[sb.Branches[0]]+model.BranchLatency)
	}
	sum := 0.0
	for _, p := range pairs {
		sum += p.Value
	}
	return sum/float64(b-1) + model.BranchLatency
}

// TriplewiseValue composes the triple bounds per the extension of Theorem 3
// to triples: each branch appears in C(B-1,2) triples, so the bound is
// Σ_triples Value / C(B-1,2) + l_br. With fewer than three branches it
// falls back to the pairwise composition.
func TriplewiseValue(sb *model.Superblock, earlyRC []int, pairs []*PairBound, triples []*TripleBound) float64 {
	b := len(sb.Branches)
	if b < 3 || len(triples) == 0 {
		return PairwiseValue(sb, earlyRC, pairs)
	}
	sum := 0.0
	for _, t := range triples {
		sum += t.Value
	}
	per := float64((b - 1) * (b - 2) / 2)
	return sum/per + model.BranchLatency
}

// AlgStats carries the loop-trip statistics of each bound algorithm run on
// one superblock (the Table 2 metric).
type AlgStats struct {
	CP, Hu, RJ, LC, LCOriginal, LCReverse, PW, TW Stats
}

// Options configures Compute.
type Options struct {
	// Triplewise enables the triplewise bound (the cheap pairwise-curve
	// combination; see TriplewiseAll).
	Triplewise bool
	// TripleMaxBranches caps the number of branches for which triples are
	// enumerated (0 = unlimited).
	TripleMaxBranches int
	// TriplewiseExact additionally runs the direct two-edge Rim & Jain
	// triple relaxation (TripleRelaxAll) and keeps, per triple, the tighter
	// of the two values. Much more expensive; gated by
	// TripleExactMaxBranches.
	TriplewiseExact bool
	// TripleExactMaxBranches caps the exact triple relaxation (default 8
	// when TriplewiseExact is set and this is 0).
	TripleExactMaxBranches int
	// WithLCOriginal additionally runs the LC recursion without the
	// Theorem-1 shortcut, for complexity comparisons only.
	WithLCOriginal bool
	// PairWorkers bounds the intra-superblock fan-out of the pairwise
	// curve build across a worker pool (0 or 1 = serial). The curves are
	// cached per (graph, machine), so the fan-out only affects the first
	// computation; results are identical at any width.
	PairWorkers int
}

// Degradation levels of the bound ladder. When a job's budget expires the
// computation sheds its most expensive remaining stage rather than failing:
// first the triplewise bound, then the pairwise bound, leaving the basic
// per-branch bounds (CP/Hu/RJ/LC), which always run. Every reported value
// remains a true lower bound at every level — a skipped stage's value falls
// back to the tightest value the completed stages produced, so Table-1
// style aggregations stay sound on degraded sets.
const (
	// DegradeNone: the full ladder ran.
	DegradeNone = 0
	// DegradeTriplewise: the budget expired after the pairwise stage; the
	// triplewise bound was skipped (TripleVal falls back to PairVal).
	DegradeTriplewise = 1
	// DegradePairwise: the budget expired after the basic bounds; both the
	// pairwise and triplewise stages were skipped (PairVal and TripleVal
	// fall back to the best naive composition).
	DegradePairwise = 2
)

// Set is the full collection of lower bounds for one superblock on one
// machine.
type Set struct {
	SB *model.Superblock
	M  *model.Machine

	// Expanded is the Rim & Jain occupancy expansion the bounds were
	// computed on (equal to SB when the machine is fully pipelined); see
	// model.ExpandOccupancy. EarlyRC and Seps are indexed by SB's original
	// op IDs either way.
	Expanded *model.Superblock

	// EarlyRC is the Langevin & Cerny bound for every operation.
	EarlyRC []int
	// Seps[i] is the separation bound toward branch i (SeparationRC).
	Seps []Separation

	// Per-branch issue bounds.
	CP, Hu, RJ, LC PerBranch

	// Pairs and Triples hold the new bounds of Sections 4.2-4.4.
	Pairs   []*PairBound
	Triples []*TripleBound

	// Superblock-level weighted-completion bounds.
	CPVal, HuVal, RJVal, LCVal, PairVal, TripleVal float64
	// Tightest is the maximum of all superblock-level bounds.
	Tightest float64

	// Stats records the work each algorithm performed.
	Stats AlgStats

	// Degraded records how far the bound ladder was cut by an expired
	// budget (DegradeNone, DegradeTriplewise, or DegradePairwise). The
	// engine pipeline surfaces it on every Result.
	Degraded int
}

// Compute runs every bound algorithm on the superblock for the machine.
// Machines with non-fully-pipelined units are handled by the Rim & Jain
// occupancy expansion (model.ExpandOccupancy): the bounds are computed on
// the fully pipelined expansion, whose optima lower-bound the original
// problem's.
func Compute(sb *model.Superblock, m *model.Machine, opts Options) *Set {
	return ComputeBudget(sb, m, opts, nil)
}

// ComputeBudget is Compute under a computation budget. The basic bounds
// (CP, Hu, RJ, LC) always run; the expensive superblock stages poll the
// budget at their boundaries and are shed in ladder order when it expires
// — Triplewise first, then Pairwise (see DegradeNone/DegradeTriplewise/
// DegradePairwise). A skipped stage's value falls back to the tightest
// completed value, so every field of the returned Set remains a true lower
// bound; Set.Degraded records how far the ladder was cut, and degraded
// sets carry no Pairs/Seps/Triples for the skipped stages. Loop trips are
// spent into the budget as each stage completes (a nil budget is
// unlimited).
func ComputeBudget(sb *model.Superblock, m *model.Machine, opts Options, budget *resilience.Budget) *Set {
	return ComputeBudgetCtx(context.Background(), sb, m, opts, budget)
}

// ComputeBudgetCtx is ComputeBudget bound to a context: cancellation is
// treated exactly like an expired budget — the remaining ladder stages are
// shed (Triplewise first, then Pairwise) rather than the call failing, so
// a cancelled computation still returns true lower bounds.
//
// The weight-independent artifacts (expansion, dag, basic bounds,
// separations, pairwise curves) come from the shared per-(graph, machine)
// kernel (see KernelFor), so repeated computations — re-weighted clones
// included — only pay for weight binding and the triple stage. Recorded
// build stats are replayed into s.Stats on every call, keeping trip counts
// and budget accounting identical whether or not the kernel was warm.
func ComputeBudgetCtx(ctx context.Context, sb *model.Superblock, m *model.Machine, opts Options, budget *resilience.Budget) *Set {
	computeStart := time.Now()
	// Root of the bound computation's span subtree: rung spans
	// (bounds.CP … bounds.TW), the kernel build, and degradation events
	// all parent to it through ctx.
	csp, ctx := telemetry.Default().StartSpanCtx(ctx, "bounds.compute")
	k, reused := kernelFor(sb, m)
	if csp.Active() {
		reuse := int64(0)
		if reused {
			reuse = 1
		}
		telemetry.Default().EmitCtx(ctx, "bounds.kernel",
			telemetry.Int("reuse", reuse))
	}
	s := &Set{SB: sb, M: m, Expanded: sb}
	work, origOf := k.Expansion()
	if origOf == nil {
		work = sb
	} else {
		// The cached expansion baked in the representative's exit
		// probabilities; re-bind the caller's.
		work = work.WithProbs(sb.Prob)
		s.Expanded = work
	}

	telCP.timedCtx(ctx, func() { s.CP = k.CPBound(&s.Stats.CP) })
	telHu.timedCtx(ctx, func() { s.Hu = k.HuBound(&s.Stats.Hu) })
	telRJ.timedCtx(ctx, func() { s.RJ = k.RJBound(&s.Stats.RJ) })
	var earlyRC []int
	telLC.timedCtx(ctx, func() { earlyRC, s.LC = k.LCBound(&s.Stats.LC) })
	if opts.WithLCOriginal {
		k.LCOriginalStats(&s.Stats.LCOriginal)
	}
	budget.Spend(s.Stats.CP.Trips + s.Stats.Hu.Trips + s.Stats.RJ.Trips +
		s.Stats.LC.Trips + s.Stats.LCOriginal.Trips)

	var seps []Separation
	if budget.Expired() || ctx.Err() != nil {
		// Ladder level 2: only the basic bounds fit the budget.
		s.Degraded = DegradePairwise
		telDegradePW.Inc()
		telemetry.Default().EmitCtx(ctx, "bounds.degraded",
			telemetry.Int("level", DegradePairwise))
	} else {
		var pairErr error
		telPW.timedCtx(ctx, func() {
			var pairs []*PairBound
			pairs, pairErr = k.Pairs(ctx, opts.PairWorkers, work.Prob, &s.Stats.LCReverse, &s.Stats.PW)
			if pairErr == nil {
				seps = k.seps
				s.Pairs = pairs
			}
		})
		if pairErr != nil {
			// Cancelled mid-build: shed the stage like an expired budget.
			s.Degraded = DegradePairwise
			telDegradePW.Inc()
			telemetry.Default().EmitCtx(ctx, "bounds.degraded",
				telemetry.Int("level", DegradePairwise))
		} else {
			budget.Spend(s.Stats.LCReverse.Trips + s.Stats.PW.Trips + s.Stats.PW.PairSweeps)
		}
	}
	if opts.Triplewise && s.Degraded == DegradeNone {
		if budget.Expired() || ctx.Err() != nil {
			// Ladder level 1: the triplewise stage is shed.
			s.Degraded = DegradeTriplewise
			telDegradeTW.Inc()
			telemetry.Default().EmitCtx(ctx, "bounds.degraded",
				telemetry.Int("level", DegradeTriplewise))
		} else {
			telTW.timedCtx(ctx, func() {
				s.Triples = TriplewiseAll(work, s.Pairs, opts.TripleMaxBranches, &s.Stats.TW)
				if opts.TriplewiseExact {
					maxB := opts.TripleExactMaxBranches
					if maxB == 0 {
						maxB = 8
					}
					exact := TripleRelaxAll(work, m, earlyRC, seps, maxB, &s.Stats.TW)
					s.Triples = mergeTriples(s.Triples, exact)
				}
			})
			budget.Spend(s.Stats.TW.Trips + s.Stats.TW.TripleSweeps)
		}
	}

	// Per-op arrays on original op IDs (identity when no expansion
	// happened); shared kernel slices — treat as immutable.
	var scratch Stats // projections replay stats already accounted above
	s.EarlyRC = k.ProjectedEarlyRC(&scratch)
	if s.Degraded >= DegradePairwise {
		s.Seps = []Separation{}
	} else {
		s.Seps = k.ProjectedSeps(&scratch)
	}

	s.CPVal = NaiveValue(work, s.CP)
	s.HuVal = NaiveValue(work, s.Hu)
	s.RJVal = NaiveValue(work, s.RJ)
	s.LCVal = NaiveValue(work, s.LC)
	if s.Degraded >= DegradePairwise {
		s.PairVal = maxFloat(s.CPVal, s.HuVal, s.RJVal, s.LCVal)
	} else {
		s.PairVal = PairwiseValue(work, earlyRC, s.Pairs)
	}
	s.TripleVal = s.PairVal
	if opts.Triplewise && s.Degraded == DegradeNone {
		s.TripleVal = TriplewiseValue(work, earlyRC, s.Pairs, s.Triples)
	}
	s.Tightest = s.CPVal
	for _, v := range []float64{s.HuVal, s.RJVal, s.LCVal, s.PairVal, s.TripleVal} {
		if v > s.Tightest {
			s.Tightest = v
		}
	}
	telCompute.dur.ObserveDuration(time.Since(computeStart))
	telCompute.calls.Inc()
	if csp.Active() {
		csp.End(
			telemetry.String("sb", sb.Name),
			telemetry.Int("degraded", int64(s.Degraded)),
			telemetry.Float("tightest", s.Tightest),
		)
	}
	return s
}

// maxFloat returns the largest of its arguments.
func maxFloat(vs ...float64) float64 {
	out := vs[0]
	for _, v := range vs[1:] {
		if v > out {
			out = v
		}
	}
	return out
}

// mergeTriples keeps, for every triple present in either list, the larger
// (tighter) of the two valid bounds.
func mergeTriples(a, b []*TripleBound) []*TripleBound {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	idx := make(map[[3]int]*TripleBound, len(a))
	for _, t := range a {
		idx[[3]int{t.I, t.J, t.K}] = t
	}
	for _, t := range b {
		key := [3]int{t.I, t.J, t.K}
		if old, ok := idx[key]; !ok || t.Value > old.Value {
			idx[key] = t
		}
	}
	out := make([]*TripleBound, 0, len(idx))
	for _, t := range a {
		out = append(out, idx[[3]int{t.I, t.J, t.K}])
	}
	return out
}

// PairFor returns the pairwise bound for branch indices (i, j) with i < j,
// or nil if absent.
func (s *Set) PairFor(i, j int) *PairBound {
	if i > j {
		i, j = j, i
	}
	for _, p := range s.Pairs {
		if p.I == i && p.J == j {
			return p
		}
	}
	return nil
}
