package bounds_test

import (
	"math/rand"
	"testing"

	"balance/internal/bounds"
	"balance/internal/exact"
	"balance/internal/figures"
	"balance/internal/model"
	"balance/internal/sched"
	"balance/internal/testutil"
)

func computeAll(t *testing.T, sb *model.Superblock, m *model.Machine) *bounds.Set {
	t.Helper()
	return bounds.Compute(sb, m, bounds.Options{Triplewise: true, WithLCOriginal: true})
}

func TestFigure1Bounds(t *testing.T) {
	sb := figures.Figure1(0.25)
	m := model.GP2()
	s := computeAll(t, sb, m)

	// The paper: EarlyDC[br16] = 7 (longest chain), resource bound 8.
	if s.CP[1] != 7 {
		t.Errorf("CP bound of final exit = %d, want 7", s.CP[1])
	}
	for name, pb := range map[string]bounds.PerBranch{"Hu": s.Hu, "RJ": s.RJ, "LC": s.LC} {
		if pb[1] != 8 {
			t.Errorf("%s bound of final exit = %d, want 8", name, pb[1])
		}
	}
	// Side exit: three predecessors on two units -> cycle 2.
	if s.LC[0] != 2 {
		t.Errorf("LC bound of side exit = %d, want 2", s.LC[0])
	}
	// Both exits can be achieved simultaneously (SR does), so the pairwise
	// bound equals the naive LC bound.
	if s.PairVal != s.LCVal {
		t.Errorf("pairwise %v != naive LC %v on a no-tradeoff superblock", s.PairVal, s.LCVal)
	}
	if !s.Pairs[0].NoTradeoff {
		t.Error("pairwise bound did not detect the no-tradeoff case")
	}
}

func TestFigure3SeparationIsResourceAware(t *testing.T) {
	sb := figures.Figure3(0.2)
	m := model.GP2()
	var st bounds.Stats
	earlyRC := bounds.EarlyRC(sb, m, &st)
	br9 := sb.Branches[1]
	if earlyRC[br9] != 5 {
		t.Fatalf("EarlyRC[br9] = %d, want 5", earlyRC[br9])
	}
	// Dependence distance 4->9 is 4 cycles, but ops 6,7,8 cannot share a
	// cycle on GP2, so the resource-aware separation is 5.
	dist := sb.G.LongestToTarget(br9)
	if dist[4] != 4 {
		t.Fatalf("dependence distance 4->br9 = %d, want 4", dist[4])
	}
	sep := bounds.SeparationRC(sb, m, br9, &st)
	if sep[4] != 5 {
		t.Errorf("resource-aware separation 4->br9 = %d, want 5", sep[4])
	}
	late := bounds.LateRC(sep, earlyRC[br9])
	if late[4] != 0 {
		t.Errorf("LateRC[4] = %d, want 0 (op 4 needed in cycle 0)", late[4])
	}
}

func TestFigure6HuBound(t *testing.T) {
	sb := figures.Figure6()
	m := model.GP2()
	s := computeAll(t, sb, m)
	// Flat count bound: 8 preds / width 2 -> cycle 4; the windowed Hu/ERC
	// bound sees five ops with late ≤ 1 and yields 5.
	if s.CP[0] != 3 {
		t.Errorf("CP = %d, want 3", s.CP[0])
	}
	if s.Hu[0] != 5 {
		t.Errorf("Hu = %d, want 5", s.Hu[0])
	}
	if s.LC[0] != 5 {
		t.Errorf("LC = %d, want 5", s.LC[0])
	}
	// Cross-check with the exact solver.
	_, opt, err := exact.Optimal(sb, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(5 + model.BranchLatency); opt != want {
		t.Errorf("optimal cost = %v, want %v", opt, want)
	}
}

func TestFigure4PairwiseTradeoff(t *testing.T) {
	sb := figures.Figure4(0.25)
	m := model.GP2()
	s := computeAll(t, sb, m)

	if s.LC[0] != 2 {
		t.Errorf("EarlyRC side exit = %d, want 2", s.LC[0])
	}
	if s.LC[1] != 8 {
		t.Errorf("EarlyRC final exit = %d, want 8", s.LC[1])
	}
	pr := s.PairFor(0, 1)
	if pr == nil {
		t.Fatal("no pairwise bound for the exit pair")
	}
	if pr.NoTradeoff {
		t.Fatal("figure 4 should exhibit a branch tradeoff")
	}
	// Issuing the final exit at its bound (8) must delay the side exit; at
	// a sufficiently late cycle the side exit reaches its own bound.
	if got := pr.MinIGivenJ(8); got <= 2 {
		t.Errorf("MinIGivenJ(8) = %d, want > 2 (side exit must be delayed)", got)
	}
	if got := pr.MinIGivenJ(20); got != 2 {
		t.Errorf("MinIGivenJ(20) = %d, want 2", got)
	}
	// The pairwise superblock bound must beat the naive composition.
	if s.PairVal <= s.LCVal {
		t.Errorf("pairwise bound %v not tighter than naive %v", s.PairVal, s.LCVal)
	}
}

func TestFigure4OptimumMatchesPairwise(t *testing.T) {
	m := model.GP2()
	for _, p := range []float64{0.05, 0.1, 0.4, 0.6} {
		sb := figures.Figure4(p)
		s := bounds.Compute(sb, m, bounds.Options{Triplewise: true})
		_, opt, err := exact.Optimal(sb, m, 0)
		if err != nil {
			t.Fatalf("P=%v: %v", p, err)
		}
		if s.Tightest > opt+1e-9 {
			t.Errorf("P=%v: tightest bound %v exceeds optimum %v", p, s.Tightest, opt)
		}
	}
	// The optimal branch cycles flip with P: with a rare side exit the
	// final exit issues at 8; with a frequent one the side exit issues at 2.
	lowP := figures.Figure4(0.05)
	sLow, _, err := exact.Optimal(lowP, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := sLow.Cycle[lowP.Branches[1]]; c != 8 {
		t.Errorf("P=0.05: final exit at %d, want 8", c)
	}
	highP := figures.Figure4(0.6)
	sHigh, _, err := exact.Optimal(highP, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := sHigh.Cycle[highP.Branches[0]]; c != 2 {
		t.Errorf("P=0.6: side exit at %d, want 2", c)
	}
}

func TestTheorem1MatchesOriginalLC(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 60; i++ {
		sb := testutil.RandomSuperblock(rng, 14)
		for _, m := range testutil.SmallMachines() {
			var s1, s2 bounds.Stats
			a := bounds.EarlyRC(sb, m, &s1)
			b := bounds.EarlyRCOriginal(sb, m, &s2)
			for v := range a {
				if a[v] != b[v] {
					t.Fatalf("iter %d %s: Theorem-1 LC differs at op %d: %d vs %d", i, m.Name, v, a[v], b[v])
				}
			}
			if s1.Theorem1Skips == 0 && i == 0 {
				// Not all graphs have single-pred ops; just ensure the
				// counter works somewhere across the corpus.
				continue
			}
		}
	}
}

func TestBoundsDominanceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		sb := testutil.RandomSuperblock(rng, 16)
		for _, m := range testutil.SmallMachines() {
			s := bounds.Compute(sb, m, bounds.Options{Triplewise: true})
			for bi := range sb.Branches {
				if s.RJ[bi] < s.CP[bi] {
					t.Errorf("RJ %d < CP %d at branch %d", s.RJ[bi], s.CP[bi], bi)
				}
				if s.LC[bi] < s.RJ[bi] {
					t.Errorf("LC %d < RJ %d at branch %d", s.LC[bi], s.RJ[bi], bi)
				}
				if s.Hu[bi] < s.CP[bi] {
					t.Errorf("Hu %d < CP %d at branch %d", s.Hu[bi], s.CP[bi], bi)
				}
			}
			if s.PairVal < s.LCVal-1e-9 {
				t.Errorf("pairwise %v below naive LC %v", s.PairVal, s.LCVal)
			}
		}
	}
}

// TestBoundsBelowOptimum is the central soundness property: every bound
// must be ≤ the exact optimal weighted completion time.
func TestBoundsBelowOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 40; i++ {
		sb := testutil.RandomSuperblock(rng, 12)
		for _, m := range testutil.SmallMachines() {
			s := bounds.Compute(sb, m, bounds.Options{Triplewise: true})
			_, opt, err := exact.Optimal(sb, m, 2_000_000)
			if err != nil {
				continue // budget blown on a rare hard instance: skip
			}
			for name, v := range map[string]float64{
				"CP": s.CPVal, "Hu": s.HuVal, "RJ": s.RJVal, "LC": s.LCVal,
				"PW": s.PairVal, "TW": s.TripleVal, "tightest": s.Tightest,
			} {
				if v > opt+1e-9 {
					t.Fatalf("iter %d %s: %s bound %v exceeds optimum %v (sb=%d ops, %d branches)",
						i, m.Name, name, v, opt, sb.G.NumOps(), sb.NumBranches())
				}
			}
		}
	}
}

// TestPairwisePointsValid checks the per-separation curve semantics: for
// every separation s, X(s) and Y(s) must be ≤ the branch cycles of any
// legal schedule with that separation. We validate against the exact
// optimum's branch cycles.
func TestPairwisePointsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		sb := testutil.RandomSuperblock(rng, 12)
		if sb.NumBranches() < 2 {
			continue
		}
		for _, m := range testutil.SmallMachines() {
			s := bounds.Compute(sb, m, bounds.Options{})
			sc, _, err := exact.Optimal(sb, m, 2_000_000)
			if err != nil {
				continue
			}
			for _, pr := range s.Pairs {
				ti := sc.Cycle[sb.Branches[pr.I]]
				tj := sc.Cycle[sb.Branches[pr.J]]
				sep := tj - ti
				if x := pr.X(sep); x > ti {
					t.Fatalf("iter %d %s pair(%d,%d): X(%d)=%d > t_i=%d", i, m.Name, pr.I, pr.J, sep, x, ti)
				}
				if y := pr.Y(sep); y > tj {
					t.Fatalf("iter %d %s pair(%d,%d): Y(%d)=%d > t_j=%d", i, m.Name, pr.I, pr.J, sep, y, tj)
				}
				wi, wj := sb.Prob[pr.I], sb.Prob[pr.J]
				if v := wi*float64(ti) + wj*float64(tj); v < pr.Value-1e-9 {
					t.Fatalf("iter %d %s pair(%d,%d): schedule value %v below pair bound %v", i, m.Name, pr.I, pr.J, v, pr.Value)
				}
			}
		}
	}
}

func TestHeuristicNeverBeatsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 40; i++ {
		sb := testutil.RandomSuperblock(rng, 20)
		for _, m := range testutil.SmallMachines() {
			s := bounds.Compute(sb, m, bounds.Options{Triplewise: true})
			list, _, err := sched.ListSchedule(sb, m, sched.IntsToFloats(sb.G.Heights()))
			if err != nil {
				t.Fatal(err)
			}
			if cost := sched.Cost(sb, list); cost < s.Tightest-1e-9 {
				t.Fatalf("iter %d %s: CP schedule cost %v below tightest bound %v", i, m.Name, cost, s.Tightest)
			}
		}
	}
}

func TestStatsCounting(t *testing.T) {
	sb := figures.Figure1(0.25)
	s := computeAll(t, sb, model.GP2())
	if s.Stats.LC.Trips == 0 || s.Stats.PW.RJRuns == 0 || s.Stats.LCReverse.Trips == 0 {
		t.Errorf("missing stats: %+v", s.Stats)
	}
	if s.Stats.LC.Theorem1Skips == 0 {
		t.Error("Theorem 1 never fired on the chain-heavy figure 1")
	}
	if s.Stats.LCOriginal.Theorem1Skips != 0 {
		t.Error("LC-original must not use Theorem 1")
	}
	if s.Stats.LCOriginal.Trips <= s.Stats.LC.Trips {
		t.Errorf("LC-original (%d trips) should cost more than LC (%d)", s.Stats.LCOriginal.Trips, s.Stats.LC.Trips)
	}
}
