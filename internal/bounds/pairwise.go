package bounds

import (
	"context"
	"sync"

	"balance/internal/conc"
	"balance/internal/model"
)

// PairBound is the paper's pairwise bound (Theorem 2) for one ordered pair
// of branches i < j (program order). For every issue separation s =
// t_j - t_i that a schedule can exhibit, X(s) and Y(s) lower-bound the two
// issue cycles; (Bi, Bj) is the separation point minimizing the weighted
// sum w_i·X + w_j·Y, and Value is that minimum. Any legal schedule
// satisfies w_i·t_i + w_j·t_j ≥ Value.
type PairBound struct {
	// I and J are branch indices within the superblock, I < J.
	I, J int
	// Ei and Ej are the branches' individual EarlyRC bounds.
	Ei, Ej int
	// Lmin and Lmax delimit the explicitly evaluated separation range;
	// Xs[s-Lmin] and Ys[s-Lmin] hold the relaxation values. Outside the
	// range the curve extrapolates exactly (see X and Y). Xs and Ys may be
	// shared with other PairBound views of the same pair (the curves are
	// weight-independent); callers must not modify them.
	Lmin, Lmax int
	Xs, Ys     []int
	// Bi and Bj are the components of the optimal tradeoff point and Value
	// = w_i·Bi + w_j·Bj.
	Bi, Bj int
	Value  float64
	// NoTradeoff reports that both branches reach their individual EarlyRC
	// simultaneously: scheduling one early never delays the other.
	NoTradeoff bool
}

// X returns the lower bound on t_i for schedules with separation s ≥ l_br.
func (p *PairBound) X(s int) int {
	switch {
	case s < p.Lmin:
		return p.Ej - s
	case s > p.Lmax:
		return p.Ei
	default:
		return p.Xs[s-p.Lmin]
	}
}

// Y returns the lower bound on t_j for schedules with separation s ≥ l_br.
func (p *PairBound) Y(s int) int {
	switch {
	case s < p.Lmin:
		return p.Ej
	case s > p.Lmax:
		return p.Ei + s
	default:
		return p.Ys[s-p.Lmin]
	}
}

// MinIGivenJ returns the smallest possible t_i over all schedules in which
// branch j issues no later than cycle tj (per the pairwise relaxation).
// It quantifies statements like "scheduling branch 16 in cycle 8 delays
// branch 3 by at least four cycles" (Observation 3).
func (p *PairBound) MinIGivenJ(tj int) int {
	best := -1
	lbr := model.BranchLatency
	// A schedule with t_j ≤ tj and separation s has t_i = t_j - s ≥ X(s),
	// and requires Y(s) ≤ tj. t_i ranges down to X(s) only if Y(s) ≤ tj.
	for s := lbr; s <= p.Lmax+1; s++ {
		if p.Y(s) > tj {
			continue
		}
		if x := p.X(s); best < 0 || x < best {
			best = x
		}
	}
	if best < 0 {
		// No separation admits t_j ≤ tj; report the unconstrained floor.
		best = p.Ei
	}
	return best
}

// pairTemplate is the weight-independent part of a pairwise bound: the
// relaxation curves. Exit probabilities only pick the optimal tradeoff
// point (Value/Bi/Bj), so the kernel caches templates per (graph, machine)
// and re-binds them per weighting — see bind.
type pairTemplate struct {
	i, j       int
	ei, ej     int
	lmin, lmax int
	xs, ys     []int
	noTradeoff bool
}

// bind composes the template with branch weights, producing the full
// PairBound. The minimization mirrors the pre-kernel loop exactly (first
// minimal point wins), so Value/Bi/Bj are byte-identical to computing the
// pair directly under these weights.
func (t *pairTemplate) bind(wi, wj float64) *PairBound {
	pb := &PairBound{
		I: t.i, J: t.j, Ei: t.ei, Ej: t.ej,
		Lmin: t.lmin, Lmax: t.lmax, Xs: t.xs, Ys: t.ys,
		NoTradeoff: t.noTradeoff,
	}
	best := -1
	for idx := range pb.Xs {
		v := wi*float64(pb.Xs[idx]) + wj*float64(pb.Ys[idx])
		if best < 0 || v < pb.Value {
			best = idx
			pb.Value = v
		}
	}
	pb.Bi, pb.Bj = pb.Xs[best], pb.Ys[best]
	return pb
}

// pairwiseComputer holds the per-superblock inputs shared by all pair
// computations, plus the scratch that makes the inner eval loop
// allocation-free. A computer is single-goroutine; the parallel fan-out
// creates one per worker over the shared (read-only) dag.
type pairwiseComputer struct {
	sb      *model.Superblock
	m       *model.Machine
	d       *dag
	earlyRC []int
	seps    []Separation // per branch index

	early []int // scratch early array (copy of earlyRC with target override)
	late  []int
	sc    *rjScratch
}

// newPairwiseComputer prepares pairwise-bound computation given precomputed
// EarlyRC values and per-branch separation bounds (from SeparationRC).
func newPairwiseComputer(sb *model.Superblock, m *model.Machine, earlyRC []int, seps []Separation) *pairwiseComputer {
	return newPairwiseComputerOn(forwardDag(sb.G, m), sb, m, earlyRC, seps)
}

// newPairwiseComputerOn is newPairwiseComputer over an existing dag view
// (the kernel's cached one).
func newPairwiseComputerOn(d *dag, sb *model.Superblock, m *model.Machine, earlyRC []int, seps []Separation) *pairwiseComputer {
	n := sb.G.NumOps()
	pc := &pairwiseComputer{
		sb:      sb,
		m:       m,
		d:       d,
		earlyRC: earlyRC,
		seps:    seps,
		early:   make([]int, n),
		late:    make([]int, n),
		sc:      getRJScratch(),
	}
	copy(pc.early, earlyRC)
	return pc
}

// release returns the computer's scratch to the pool; the computer must not
// be used afterwards.
func (pc *pairwiseComputer) release() {
	putRJScratch(pc.sc)
	pc.sc = nil
}

// eval solves the relaxation for pair (bi, bj) with separation latency L and
// returns (x, y): the lower bounds on t_i and t_j.
func (pc *pairwiseComputer) eval(i, j int, include []int, L int, st *Stats) (x, y int) {
	st.PairSweeps++
	bi, bj := pc.sb.Branches[i], pc.sb.Branches[j]
	sepI, sepJ := pc.seps[i], pc.seps[j]
	earlyJ := pc.earlyRC[bj]
	if t := pc.earlyRC[bi] + L; t > earlyJ {
		earlyJ = t
	}
	for _, v := range include {
		st.Trips++
		sep := sepJ[v]
		if si := sepI[v]; si >= 0 {
			if s := si + L; s > sep {
				sep = s
			}
		}
		pc.late[v] = earlyJ - sep
	}
	pc.late[bj] = earlyJ
	pc.early[bj] = earlyJ
	delay := pc.d.rimJain(pc.sc, include, pc.early, pc.late, st)
	pc.early[bj] = pc.earlyRC[bj]
	y = earlyJ + delay
	return y - L, y
}

// singleDelay solves the relaxation toward branch j alone (no separation
// constraint from another branch): the Rim & Jain delay of j's closure with
// Late[v] = Ej - sep_j(v). A zero delay certifies that Ej is achievable in
// the relaxation — the precondition of the pair dominance prune.
func (pc *pairwiseComputer) singleDelay(j int, include []int, st *Stats) int {
	bj := pc.sb.Branches[j]
	sepJ := pc.seps[j]
	ej := pc.earlyRC[bj]
	for _, v := range include {
		st.Trips++
		pc.late[v] = ej - sepJ[v]
	}
	pc.late[bj] = ej
	return pc.d.rimJain(pc.sc, include, pc.early, pc.late, st)
}

// prunable reports whether pair (i, j) is dominated: at the natural
// separation L = Ej - Ei the relaxation provably yields exactly (Ei, Ej),
// so the Figure-5 sweep would visit the single point (L, Ei, Ej) and stop.
// That holds when (a) L is a legal separation (≥ l_br), (b) branch j's
// single-target relaxation has zero delay (delayJ, precomputed per j), and
// (c) branch i's separation constraints are everywhere slack at L:
// sep_i(v) + L ≤ sep_j(v) for every v preceding j that also precedes i —
// then eval's Late array equals singleDelay's exactly, so its delay is the
// same zero. The pruned result is byte-identical to the sweep's.
func (pc *pairwiseComputer) prunable(i, j int, include []int, delayJ int, st *Stats) bool {
	bi, bj := pc.sb.Branches[i], pc.sb.Branches[j]
	ei, ej := pc.earlyRC[bi], pc.earlyRC[bj]
	lbr := pc.sb.G.Op(bi).Latency
	if ej-ei < lbr || delayJ != 0 {
		return false
	}
	L := ej - ei
	sepI, sepJ := pc.seps[i], pc.seps[j]
	for _, v := range include {
		st.Trips++
		if si := sepI[v]; si >= 0 && si+L > sepJ[v] {
			return false
		}
	}
	return true
}

// prunedTemplate builds the single-point template the sweep would produce
// for a prunable pair.
func (pc *pairwiseComputer) prunedTemplate(i, j int) pairTemplate {
	bi, bj := pc.sb.Branches[i], pc.sb.Branches[j]
	ei, ej := pc.earlyRC[bi], pc.earlyRC[bj]
	L := ej - ei
	return pairTemplate{
		i: i, j: j, ei: ei, ej: ej,
		lmin: L, lmax: L,
		xs: []int{ei}, ys: []int{ej},
		noTradeoff: true,
	}
}

// template computes the pairwise curves for branch indices i < j using the
// Figure-5 sweep: probe the natural separation first; if branch j cannot
// reach its individual bound, decrease the separation until it can; then
// increase the separation until branch i reaches its individual bound.
func (pc *pairwiseComputer) template(i, j int, include []int, st *Stats) pairTemplate {
	sb := pc.sb
	bi, bj := sb.Branches[i], sb.Branches[j]
	ei, ej := pc.earlyRC[bi], pc.earlyRC[bj]
	lbr := sb.G.Op(bi).Latency

	l0 := ej - ei
	if l0 < lbr {
		l0 = lbr
	}
	type point struct{ l, x, y int }
	var pts []point
	evalAt := func(l int) point {
		x, y := pc.eval(i, j, include, l, st)
		return point{l, x, y}
	}
	p0 := evalAt(l0)
	pts = append(pts, p0)
	if p0.y != ej {
		for l := l0 - 1; l >= lbr; l-- {
			p := evalAt(l)
			pts = append(pts, p)
			if p.y == ej {
				break
			}
		}
	}
	if !(p0.y == ej && p0.x == ei) {
		for l := l0 + 1; l <= ej+1; l++ {
			p := evalAt(l)
			pts = append(pts, p)
			if p.x == ei {
				break
			}
		}
	}

	tpl := pairTemplate{i: i, j: j, ei: ei, ej: ej}
	tpl.lmin, tpl.lmax = pts[0].l, pts[0].l
	for _, p := range pts {
		if p.l < tpl.lmin {
			tpl.lmin = p.l
		}
		if p.l > tpl.lmax {
			tpl.lmax = p.l
		}
	}
	tpl.xs = make([]int, tpl.lmax-tpl.lmin+1)
	tpl.ys = make([]int, tpl.lmax-tpl.lmin+1)
	for i := range tpl.xs {
		tpl.xs[i] = -1
	}
	for _, p := range pts {
		tpl.xs[p.l-tpl.lmin] = p.x
		tpl.ys[p.l-tpl.lmin] = p.y
	}
	// The sweep visits a contiguous range, so no holes remain; guard anyway.
	for idx := range tpl.xs {
		if tpl.xs[idx] < 0 {
			x, y := pc.eval(i, j, include, tpl.lmin+idx, st)
			tpl.xs[idx], tpl.ys[idx] = x, y
		}
	}
	tpl.noTradeoff = p0.x == ei && p0.y == ej
	return tpl
}

// buildPairTemplates computes the weight-independent pairwise curves for
// every branch pair, applying the dominance prune and (optionally) fanning
// the independent per-pair evaluations across a bounded worker pool.
// It returns the templates in (i, j) lexicographic order, the number of
// pruned pairs, and ctx.Err() if the build was cancelled mid-way (in which
// case the templates are incomplete and must be discarded). Stats across
// workers merge by summation, so the totals are deterministic regardless of
// scheduling.
func buildPairTemplates(ctx context.Context, d *dag, sb *model.Superblock, m *model.Machine, earlyRC []int, seps []Separation, workers int, st *Stats) ([]pairTemplate, int64, error) {
	b := len(sb.Branches)
	npairs := b * (b - 1) / 2
	if npairs == 0 {
		return nil, 0, ctx.Err()
	}

	// Per-branch closures (as index lists) and single-target delays are
	// shared by every pair with that j; compute them serially up front.
	includes := make([][]int, b)
	delays := make([]int, b)
	{
		pc := newPairwiseComputerOn(d, sb, m, earlyRC, seps)
		defer pc.release()
		for j, bj := range sb.Branches {
			inc := sb.G.PredClosure(bj).AppendTo(make([]int, 0, sb.G.PredClosure(bj).Count()+1))
			includes[j] = append(inc, bj)
			delays[j] = pc.singleDelay(j, includes[j], st)
		}
		if workers <= 1 {
			out := make([]pairTemplate, 0, npairs)
			var pruned int64
			for i := 0; i < b; i++ {
				for j := i + 1; j < b; j++ {
					if err := ctx.Err(); err != nil {
						return nil, pruned, err
					}
					if prunesEnabled && pc.prunable(i, j, includes[j], delays[j], st) {
						out = append(out, pc.prunedTemplate(i, j))
						pruned++
						continue
					}
					out = append(out, pc.template(i, j, includes[j], st))
				}
			}
			return out, pruned, nil
		}
	}

	// Parallel fan-out: every worker draws a computer (own scratch) from a
	// pool; stats accumulate per pair and merge under a lock.
	type pairTask struct{ i, j int }
	tasks := make([]pairTask, 0, npairs)
	for i := 0; i < b; i++ {
		for j := i + 1; j < b; j++ {
			tasks = append(tasks, pairTask{i, j})
		}
	}
	out := make([]pairTemplate, npairs)
	var pruned int64
	var mu sync.Mutex
	cpool := sync.Pool{New: func() any {
		return newPairwiseComputerOn(d, sb, m, earlyRC, seps)
	}}
	err := conc.ForEach(ctx, workers, npairs, func(idx int) error {
		t := tasks[idx]
		pc := cpool.Get().(*pairwiseComputer)
		defer cpool.Put(pc)
		var local Stats
		var tpl pairTemplate
		var wasPruned bool
		if prunesEnabled && pc.prunable(t.i, t.j, includes[t.j], delays[t.j], &local) {
			tpl = pc.prunedTemplate(t.i, t.j)
			wasPruned = true
		} else {
			tpl = pc.template(t.i, t.j, includes[t.j], &local)
		}
		mu.Lock()
		out[idx] = tpl
		st.Add(&local)
		if wasPruned {
			pruned++
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, pruned, err
	}
	return out, pruned, nil
}

// PairwiseAll computes the pairwise bound for every branch pair of the
// superblock. earlyRC must come from EarlyRC and seps[i] from
// SeparationRC(sb, m, Branches[i]).
func PairwiseAll(sb *model.Superblock, m *model.Machine, earlyRC []int, seps []Separation, st *Stats) []*PairBound {
	tmpls, pruned, _ := buildPairTemplates(context.Background(), forwardDag(sb.G, m), sb, m, earlyRC, seps, 0, st)
	telPairsPruned.Add(pruned)
	return bindPairs(tmpls, sb.Prob)
}

// bindPairs composes every template with the given branch weights.
func bindPairs(tmpls []pairTemplate, probs []float64) []*PairBound {
	out := make([]*PairBound, len(tmpls))
	for idx := range tmpls {
		t := &tmpls[idx]
		out[idx] = t.bind(probs[t.i], probs[t.j])
	}
	return out
}
