package bounds

import (
	"balance/internal/model"
)

// PairBound is the paper's pairwise bound (Theorem 2) for one ordered pair
// of branches i < j (program order). For every issue separation s =
// t_j - t_i that a schedule can exhibit, X(s) and Y(s) lower-bound the two
// issue cycles; (Bi, Bj) is the separation point minimizing the weighted
// sum w_i·X + w_j·Y, and Value is that minimum. Any legal schedule
// satisfies w_i·t_i + w_j·t_j ≥ Value.
type PairBound struct {
	// I and J are branch indices within the superblock, I < J.
	I, J int
	// Ei and Ej are the branches' individual EarlyRC bounds.
	Ei, Ej int
	// Lmin and Lmax delimit the explicitly evaluated separation range;
	// Xs[s-Lmin] and Ys[s-Lmin] hold the relaxation values. Outside the
	// range the curve extrapolates exactly (see X and Y).
	Lmin, Lmax int
	Xs, Ys     []int
	// Bi and Bj are the components of the optimal tradeoff point and Value
	// = w_i·Bi + w_j·Bj.
	Bi, Bj int
	Value  float64
	// NoTradeoff reports that both branches reach their individual EarlyRC
	// simultaneously: scheduling one early never delays the other.
	NoTradeoff bool
}

// X returns the lower bound on t_i for schedules with separation s ≥ l_br.
func (p *PairBound) X(s int) int {
	switch {
	case s < p.Lmin:
		return p.Ej - s
	case s > p.Lmax:
		return p.Ei
	default:
		return p.Xs[s-p.Lmin]
	}
}

// Y returns the lower bound on t_j for schedules with separation s ≥ l_br.
func (p *PairBound) Y(s int) int {
	switch {
	case s < p.Lmin:
		return p.Ej
	case s > p.Lmax:
		return p.Ei + s
	default:
		return p.Ys[s-p.Lmin]
	}
}

// MinIGivenJ returns the smallest possible t_i over all schedules in which
// branch j issues no later than cycle tj (per the pairwise relaxation).
// It quantifies statements like "scheduling branch 16 in cycle 8 delays
// branch 3 by at least four cycles" (Observation 3).
func (p *PairBound) MinIGivenJ(tj int) int {
	best := -1
	lbr := model.BranchLatency
	// A schedule with t_j ≤ tj and separation s has t_i = t_j - s ≥ X(s),
	// and requires Y(s) ≤ tj. t_i ranges down to X(s) only if Y(s) ≤ tj.
	for s := lbr; s <= p.Lmax+1; s++ {
		if p.Y(s) > tj {
			continue
		}
		if x := p.X(s); best < 0 || x < best {
			best = x
		}
	}
	if best < 0 {
		// No separation admits t_j ≤ tj; report the unconstrained floor.
		best = p.Ei
	}
	return best
}

// pairwiseComputer holds the per-superblock inputs shared by all pair
// computations.
type pairwiseComputer struct {
	sb      *model.Superblock
	m       *model.Machine
	d       *dag
	earlyRC []int
	seps    []Separation // per branch index

	early []int // scratch early array (copy of earlyRC with target override)
	late  []int
}

// NewPairwise prepares pairwise-bound computation given precomputed EarlyRC
// values and per-branch separation bounds (from SeparationRC).
func newPairwiseComputer(sb *model.Superblock, m *model.Machine, earlyRC []int, seps []Separation) *pairwiseComputer {
	n := sb.G.NumOps()
	pc := &pairwiseComputer{
		sb:      sb,
		m:       m,
		d:       forwardDag(sb.G, m),
		earlyRC: earlyRC,
		seps:    seps,
		early:   make([]int, n),
		late:    make([]int, n),
	}
	copy(pc.early, earlyRC)
	return pc
}

// eval solves the relaxation for pair (bi, bj) with separation latency L and
// returns (x, y): the lower bounds on t_i and t_j.
func (pc *pairwiseComputer) eval(i, j int, include []int, L int, st *Stats) (x, y int) {
	st.PairSweeps++
	bi, bj := pc.sb.Branches[i], pc.sb.Branches[j]
	sepI, sepJ := pc.seps[i], pc.seps[j]
	earlyJ := pc.earlyRC[bj]
	if t := pc.earlyRC[bi] + L; t > earlyJ {
		earlyJ = t
	}
	for _, v := range include {
		st.Trips++
		sep := sepJ[v]
		if si := sepI[v]; si >= 0 {
			if s := si + L; s > sep {
				sep = s
			}
		}
		pc.late[v] = earlyJ - sep
	}
	pc.late[bj] = earlyJ
	pc.early[bj] = earlyJ
	delay := pc.d.rimJain(include, pc.early, pc.late, st)
	pc.early[bj] = pc.earlyRC[bj]
	y = earlyJ + delay
	return y - L, y
}

// pair computes the pairwise bound for branch indices i < j using the
// Figure-5 sweep: probe the natural separation first; if branch j cannot
// reach its individual bound, decrease the separation until it can; then
// increase the separation until branch i reaches its individual bound.
func (pc *pairwiseComputer) pair(i, j int, st *Stats) *PairBound {
	sb := pc.sb
	bi, bj := sb.Branches[i], sb.Branches[j]
	ei, ej := pc.earlyRC[bi], pc.earlyRC[bj]
	lbr := sb.G.Op(bi).Latency
	wi, wj := sb.Prob[i], sb.Prob[j]

	include := make([]int, 0, sb.G.PredClosure(bj).Count()+1)
	sb.G.PredClosure(bj).ForEach(func(v int) { include = append(include, v) })
	include = append(include, bj)

	l0 := ej - ei
	if l0 < lbr {
		l0 = lbr
	}
	type point struct{ l, x, y int }
	var pts []point
	evalAt := func(l int) point {
		x, y := pc.eval(i, j, include, l, st)
		return point{l, x, y}
	}
	p0 := evalAt(l0)
	pts = append(pts, p0)
	if p0.y != ej {
		for l := l0 - 1; l >= lbr; l-- {
			p := evalAt(l)
			pts = append(pts, p)
			if p.y == ej {
				break
			}
		}
	}
	if !(p0.y == ej && p0.x == ei) {
		for l := l0 + 1; l <= ej+1; l++ {
			p := evalAt(l)
			pts = append(pts, p)
			if p.x == ei {
				break
			}
		}
	}

	pb := &PairBound{I: i, J: j, Ei: ei, Ej: ej}
	pb.Lmin, pb.Lmax = pts[0].l, pts[0].l
	for _, p := range pts {
		if p.l < pb.Lmin {
			pb.Lmin = p.l
		}
		if p.l > pb.Lmax {
			pb.Lmax = p.l
		}
	}
	pb.Xs = make([]int, pb.Lmax-pb.Lmin+1)
	pb.Ys = make([]int, pb.Lmax-pb.Lmin+1)
	for i := range pb.Xs {
		pb.Xs[i] = -1
	}
	for _, p := range pts {
		pb.Xs[p.l-pb.Lmin] = p.x
		pb.Ys[p.l-pb.Lmin] = p.y
	}
	// The sweep visits a contiguous range, so no holes remain; guard anyway.
	for idx := range pb.Xs {
		if pb.Xs[idx] < 0 {
			x, y := pc.eval(i, j, include, pb.Lmin+idx, st)
			pb.Xs[idx], pb.Ys[idx] = x, y
		}
	}
	best := -1
	for idx := range pb.Xs {
		v := wi*float64(pb.Xs[idx]) + wj*float64(pb.Ys[idx])
		if best < 0 || v < pb.Value {
			best = idx
			pb.Value = v
		}
	}
	pb.Bi, pb.Bj = pb.Xs[best], pb.Ys[best]
	pb.NoTradeoff = p0.x == ei && p0.y == ej
	return pb
}

// PairwiseAll computes the pairwise bound for every branch pair of the
// superblock. earlyRC must come from EarlyRC and seps[i] from
// SeparationRC(sb, m, Branches[i]).
func PairwiseAll(sb *model.Superblock, m *model.Machine, earlyRC []int, seps []Separation, st *Stats) []*PairBound {
	pc := newPairwiseComputer(sb, m, earlyRC, seps)
	b := len(sb.Branches)
	out := make([]*PairBound, 0, b*(b-1)/2)
	for i := 0; i < b; i++ {
		for j := i + 1; j < b; j++ {
			out = append(out, pc.pair(i, j, st))
		}
	}
	return out
}
