package bounds

import (
	"balance/internal/model"
)

// evalTriple solves the direct two-edge Rim & Jain relaxation for branch
// indices i < j < k with chained latencies L1 (i->j) and L2 (j->k): the
// subgraph rooted at branch k is relaxed with
//
//	Early'[j] = max(EarlyRC[j], EarlyRC[i]+L1)
//	Early'[k] = max(EarlyRC[k], Early'[j]+L2)
//	Late'[v]  = Early'[k] - sep(v),
//	sep(v)    = max(sep_k(v), L2+sep_j(v), L1+L2+sep_i(v))
//
// and returns the resulting lower bound z on t_k.
func (pc *pairwiseComputer) evalTriple(i, j, k int, include []int, l1, l2 int, st *Stats) int {
	st.TripleSweeps++
	bi, bj, bk := pc.sb.Branches[i], pc.sb.Branches[j], pc.sb.Branches[k]
	sepI, sepJ, sepK := pc.seps[i], pc.seps[j], pc.seps[k]

	earlyJ := pc.earlyRC[bj]
	if t := pc.earlyRC[bi] + l1; t > earlyJ {
		earlyJ = t
	}
	earlyK := pc.earlyRC[bk]
	if t := earlyJ + l2; t > earlyK {
		earlyK = t
	}
	for _, v := range include {
		st.Trips++
		sep := sepK[v]
		if sj := sepJ[v]; sj >= 0 {
			if s := sj + l2; s > sep {
				sep = s
			}
		}
		if si := sepI[v]; si >= 0 {
			if s := si + l1 + l2; s > sep {
				sep = s
			}
		}
		pc.late[v] = earlyK - sep
	}
	pc.late[bk] = earlyK
	pc.late[bj] = earlyK - l2
	savedJ, savedK := pc.early[bj], pc.early[bk]
	pc.early[bj] = earlyJ
	pc.early[bk] = earlyK
	delay := pc.d.rimJain(pc.sc, include, pc.early, pc.late, st)
	pc.early[bj], pc.early[bk] = savedJ, savedK
	return earlyK + delay
}

// TripleRelaxAll computes the triplewise bound with the direct two-edge
// relaxation (our reconstruction of the paper's true triplewise bound; see
// Section 4.4). It dominates the pairwise-curve combination of
// TriplewiseAll pointwise but costs one Rim & Jain solve per lattice point.
// maxBranches gates it to small superblocks (0 = unlimited); the per-triple
// lattice budget falls back to the always-valid naive floor on overflow.
func TripleRelaxAll(sb *model.Superblock, m *model.Machine, earlyRC []int, seps []Separation, maxBranches int, st *Stats) []*TripleBound {
	b := len(sb.Branches)
	if b < 3 || (maxBranches > 0 && b > maxBranches) {
		return nil
	}
	pc := newPairwiseComputer(sb, m, earlyRC, seps)
	defer pc.release()
	out := make([]*TripleBound, 0, b*(b-1)*(b-2)/6)
	for i := 0; i < b; i++ {
		for j := i + 1; j < b; j++ {
			for k := j + 1; k < b; k++ {
				out = append(out, pc.tripleRelax(i, j, k, st))
			}
		}
	}
	return out
}

// tripleRelax minimizes the weighted sum over the separation lattice using
// the same sound floor-based truncation as the curve-combination bound: the
// objective at any point is at least w_i·Ei + w_j·Ej + w_k·floorZ, where
// floorZ = max(Ek, Ej+s2, Ei+s1+s2) is a provably monotone lower bound on
// the relaxation value, so skipped points are genuinely dominated.
func (pc *pairwiseComputer) tripleRelax(i, j, k int, st *Stats) *TripleBound {
	sb := pc.sb
	bi, bj, bk := sb.Branches[i], sb.Branches[j], sb.Branches[k]
	ei, ej, ek := pc.earlyRC[bi], pc.earlyRC[bj], pc.earlyRC[bk]
	wi, wj, wk := sb.Prob[i], sb.Prob[j], sb.Prob[k]
	lbr := sb.G.Op(bi).Latency
	tb := &TripleBound{I: i, J: j, K: k}
	floorBase := wi*float64(ei) + wj*float64(ej)
	naive := floorBase + wk*float64(ek)
	if wk == 0 {
		tb.Value = naive
		return tb
	}

	include := make([]int, 0, sb.G.PredClosure(bk).Count()+1)
	sb.G.PredClosure(bk).ForEach(func(v int) { include = append(include, v) })
	include = append(include, bk)

	s1seed := ej - ei
	if s1seed < lbr {
		s1seed = lbr
	}
	s2seed := ek - ej
	if s2seed < lbr {
		s2seed = lbr
	}
	zSeed := pc.evalTriple(i, j, k, include, s1seed, s2seed, st)
	best := wi*float64(zSeed-s1seed-s2seed) + wj*float64(zSeed-s2seed) + wk*float64(zSeed)
	tb.Points++
	if prunesEnabled && best <= naive {
		// Dominance prune: the objective at every lattice point is ≥ the
		// naive floor (z ≥ max(ek, ei+s1+s2, ej+s2) and rounding is
		// monotone), so the seed attaining it ends the search (see the
		// identical prune in tripleValue).
		tb.Value = best
		telTriplesPruned.Inc()
		return tb
	}

	floorZ := func(s1, s2 int) int {
		z := ek
		if t := ej + s2; t > z {
			z = t
		}
		if t := ei + s1 + s2; t > z {
			z = t
		}
		return z
	}
	for s1 := lbr; ; s1++ {
		brokeAtStart := true
		for s2 := lbr; ; s2++ {
			if floorBase+wk*float64(floorZ(s1, s2)) >= best {
				break // the floor is non-decreasing in s2: row dominated
			}
			z := pc.evalTriple(i, j, k, include, s1, s2, st)
			tb.Points++
			brokeAtStart = false
			v := wi*float64(z-s1-s2) + wj*float64(z-s2) + wk*float64(z)
			if v < best {
				best = v
			}
			if tb.Points >= maxTriplePoints {
				tb.Value = naive
				tb.Truncated = true
				return tb
			}
		}
		if brokeAtStart && s1 > s1seed {
			break // the floor at (s1, lbr) is non-decreasing in s1
		}
		if tb.Points >= maxTriplePoints {
			tb.Value = naive
			tb.Truncated = true
			return tb
		}
	}
	tb.Value = best
	return tb
}
