package bounds

import (
	"balance/internal/model"
)

// TripleBound is our reconstruction of the paper's triplewise bound
// (Section 4.4; the original construction lives in an unavailable technical
// report). For branches i < j < k it lower-bounds the weighted sum
// w_i·t_i + w_j·t_j + w_k·t_k over all legal schedules by minimizing, over
// every realizable pair of issue separations (s1, s2) = (t_j - t_i,
// t_k - t_j), the strongest combination of the three pairwise curves:
//
//	tk(s1,s2) = max( Ek, Y_jk(s2), Y_ik(s1+s2), Y_ij(s1)+s2,
//	                 Ei+s1+s2, Ej+s2 )
//
// with t_j = t_k - s2 and t_i = t_k - s1 - s2 exact, so the objective at a
// lattice point is w_i·(tk-s1-s2) + w_j·(tk-s2) + w_k·tk. Each constraint
// is a valid implication of a pairwise relaxation at that exact separation,
// so the minimum over all (s1, s2) is a valid lower bound on the weighted
// sum.
//
// The objective at every lattice point is bounded below by
// w_i·Ei + w_j·Ej + w_k·max(Ek, Ej+s2, Ei+s1+s2), a floor that is provably
// non-decreasing in both separations. The search terminates soundly by
// skipping (only) points whose floor already reaches the best value seen —
// such points cannot improve the minimum.
type TripleBound struct {
	// I, J, K are the branch indices, I < J < K.
	I, J, K int
	// Value is the lower bound on w_i·t_i + w_j·t_j + w_k·t_k.
	Value float64
	// Points is the number of lattice points evaluated.
	Points int
	// Truncated reports that the sweep hit its evaluation budget and fell
	// back to the always-valid naive floor for this triple.
	Truncated bool
}

// maxTriplePoints bounds the lattice sweep per triple; on overflow the
// triple falls back to the naive floor (still a valid bound).
const maxTriplePoints = 4096

// tripleValue computes the triple bound from the three pairwise curves.
func tripleValue(pij, pjk, pik *PairBound, wi, wj, wk float64, st *Stats) *TripleBound {
	ei, ej, ek := pij.Ei, pjk.Ei, pjk.Ej
	lbr := model.BranchLatency
	tb := &TripleBound{I: pij.I, J: pij.J, K: pjk.J}
	floorBase := wi*float64(ei) + wj*float64(ej)
	naive := floorBase + wk*float64(ek)
	if wk == 0 {
		// With no weight on the last branch the objective's infimum is the
		// naive floor (separations can grow until t_i and t_j reach their
		// individual bounds), so sweeping cannot improve on it.
		tb.Value = naive
		return tb
	}

	tkFor := func(s1, s2 int) int {
		tk := ek
		if t := pjk.Y(s2); t > tk {
			tk = t
		}
		if t := pik.Y(s1 + s2); t > tk {
			tk = t
		}
		if t := pij.Y(s1) + s2; t > tk {
			tk = t
		}
		if t := ei + s1 + s2; t > tk {
			tk = t
		}
		if t := ej + s2; t > tk {
			tk = t
		}
		return tk
	}

	// Seed with the natural separations so the floor-based breaks have a
	// finite target.
	s1seed := ej - ei
	if s1seed < lbr {
		s1seed = lbr
	}
	s2seed := ek - ej
	if s2seed < lbr {
		s2seed = lbr
	}
	tkSeed := tkFor(s1seed, s2seed)
	best := wi*float64(tkSeed-s1seed-s2seed) + wj*float64(tkSeed-s2seed) + wk*float64(tkSeed)
	tb.Points++
	if prunesEnabled && best <= naive {
		// Dominance prune: at every lattice point tk ≥ max(ek, ei+s1+s2,
		// ej+s2), so the objective is ≥ wi·ei + wj·ej + wk·ek = naive
		// (rounding is monotone and both expressions associate
		// identically). The seed already attained the floor, so no sweep
		// point can improve it.
		tb.Value = best
		telTriplesPruned.Inc()
		return tb
	}

	// floorTk lower-bounds tk at a lattice point using only terms that are
	// provably non-decreasing in both separations, so the loop breaks below
	// are sound regardless of how the relaxation curves wiggle.
	floorTk := func(s1, s2 int) int {
		tk := ek
		if t := ej + s2; t > tk {
			tk = t
		}
		if t := ei + s1 + s2; t > tk {
			tk = t
		}
		return tk
	}
	for s1 := lbr; ; s1++ {
		brokeAtStart := true
		for s2 := lbr; ; s2++ {
			if floorBase+wk*float64(floorTk(s1, s2)) >= best {
				// floorTk is non-decreasing in s2, so every further point
				// in this row is dominated.
				break
			}
			tk := tkFor(s1, s2)
			brokeAtStart = false
			v := wi*float64(tk-s1-s2) + wj*float64(tk-s2) + wk*float64(tk)
			tb.Points++
			st.TripleSweeps++
			if v < best {
				best = v
			}
			if tb.Points >= maxTriplePoints {
				// Budget exhausted: unvisited points were never proven
				// dominated, so return the naive floor instead.
				tb.Value = naive
				tb.Truncated = true
				return tb
			}
		}
		if brokeAtStart && s1 > s1seed {
			// floorTk(s1, lbr) is non-decreasing in s1: every further row
			// starts (and stays) above the cutoff.
			break
		}
	}
	tb.Value = best
	return tb
}

// TriplewiseAll computes the triple bound for every branch triple, reusing
// the pairwise curves. maxBranches truncates the computation for
// superblocks with very many exits (0 means no limit); truncated
// superblocks return no triples and callers fall back to the pairwise
// bound.
func TriplewiseAll(sb *model.Superblock, pairs []*PairBound, maxBranches int, st *Stats) []*TripleBound {
	b := len(sb.Branches)
	if b < 3 || (maxBranches > 0 && b > maxBranches) {
		return nil
	}
	idx := make(map[[2]int]*PairBound, len(pairs))
	for _, p := range pairs {
		idx[[2]int{p.I, p.J}] = p
	}
	out := make([]*TripleBound, 0, b*(b-1)*(b-2)/6)
	for i := 0; i < b; i++ {
		for j := i + 1; j < b; j++ {
			for k := j + 1; k < b; k++ {
				tb := tripleValue(idx[[2]int{i, j}], idx[[2]int{j, k}], idx[[2]int{i, k}],
					sb.Prob[i], sb.Prob[j], sb.Prob[k], st)
				out = append(out, tb)
			}
		}
	}
	return out
}
