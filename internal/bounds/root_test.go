package bounds_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"balance/internal/bounds"
	"balance/internal/exact"
	"balance/internal/testutil"
)

// TestSearchFloorBelowOptimum: the floor handed to the parallel exact
// solver must be a true lower bound — the proven-optimality early stop is
// only sound if no schedule can ever beat it.
func TestSearchFloorBelowOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for i := 0; i < 30; i++ {
		sb := testutil.RandomSuperblock(rng, 12)
		for _, m := range testutil.SmallMachines() {
			floor := bounds.SearchFloor(context.Background(), sb, m)
			_, opt, err := exact.Optimal(sb, m, 2_000_000)
			if err != nil {
				continue
			}
			if floor > opt+1e-9 {
				t.Fatalf("iter %d %s: floor %v exceeds optimum %v", i, m.Name, floor, opt)
			}
		}
	}
}

// TestSearchFloorKernelCached: the second call over the same instance hits
// the warm bound kernel and must be dramatically cheaper — that is the
// property that makes the floor affordable as a per-solve prelude.
func TestSearchFloorKernelCached(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	sb := testutil.RandomSuperblock(rng, 16)
	m := testutil.SmallMachines()[0]
	ctx := context.Background()

	first := bounds.SearchFloor(ctx, sb, m)
	start := time.Now()
	second := bounds.SearchFloor(ctx, sb, m)
	warm := time.Since(start)
	if first != second {
		t.Fatalf("floor changed across calls: %v then %v", first, second)
	}
	// Generous ceiling: a warm call is microseconds; a cold pairwise build
	// on a 16-op block is orders of magnitude more.
	if warm > 100*time.Millisecond {
		t.Errorf("warm SearchFloor took %v, expected a cached fast path", warm)
	}
}
