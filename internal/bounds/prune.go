package bounds

// prunesEnabled gates the pairwise and triplewise dominance prunes. It is
// always true in production; the differential tests flip it off to compute
// reference values along the un-pruned path and prove the prunes never
// change a bound value.
var prunesEnabled = true
