package bounds_test

import (
	"math/rand"
	"testing"

	"balance/internal/bounds"
	"balance/internal/exact"
	"balance/internal/model"
	"balance/internal/testutil"
)

// threeExit builds a superblock with three exits competing for two GP
// units, exercising the triple bounds.
func threeExit(w1, w2 float64) *model.Superblock {
	b := model.NewBuilder("threeexit")
	o0 := b.Int()
	o1 := b.Int()
	o2 := b.Int()
	b.Branch(w1, o0, o1, o2)
	o3 := b.Int()
	o4 := b.Int(o3)
	b.Branch(w2, o4)
	o5 := b.Int()
	o6 := b.Int(o5)
	o7 := b.Int(o6)
	b.Branch(0, o7)
	return b.MustBuild()
}

func TestTripleRelaxSound(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 25; i++ {
		sb := testutil.RandomSuperblock(rng, 12)
		if sb.NumBranches() < 3 {
			continue
		}
		for _, m := range testutil.SmallMachines() {
			s := bounds.Compute(sb, m, bounds.Options{Triplewise: true, TriplewiseExact: true})
			_, opt, err := exact.Optimal(sb, m, 1_500_000)
			if err != nil {
				continue
			}
			if s.TripleVal > opt+1e-9 {
				t.Fatalf("iter %d %s: exact-TW bound %v exceeds optimum %v", i, m.Name, s.TripleVal, opt)
			}
			if s.Tightest > opt+1e-9 {
				t.Fatalf("iter %d %s: tightest %v exceeds optimum %v", i, m.Name, s.Tightest, opt)
			}
		}
	}
}

func TestTripleRelaxUsuallyDominatesCombination(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	tighter, looser, total := 0, 0, 0
	for i := 0; i < 40; i++ {
		sb := testutil.RandomSuperblock(rng, 16)
		if sb.NumBranches() < 3 {
			continue
		}
		m := model.GP2()
		combo := bounds.Compute(sb, m, bounds.Options{Triplewise: true})
		both := bounds.Compute(sb, m, bounds.Options{Triplewise: true, TriplewiseExact: true})
		total++
		switch {
		case both.TripleVal > combo.TripleVal+1e-9:
			tighter++
		case both.TripleVal < combo.TripleVal-1e-9:
			looser++
		}
		// The merged bound can never be looser than the combination alone.
		if both.TripleVal < combo.TripleVal-1e-9 {
			t.Fatalf("iter %d: merged TW %v below combination TW %v", i, both.TripleVal, combo.TripleVal)
		}
	}
	if total == 0 {
		t.Skip("no 3-exit instances generated")
	}
	t.Logf("exact TW tighter on %d, equal on %d of %d instances", tighter, total-tighter-looser, total)
}

func TestTripleRelaxOnCraftedExample(t *testing.T) {
	sb := threeExit(0.3, 0.3)
	m := model.GP2()
	s := bounds.Compute(sb, m, bounds.Options{Triplewise: true, TriplewiseExact: true})
	_, opt, err := exact.Optimal(sb, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tightest > opt+1e-9 {
		t.Fatalf("tightest %v exceeds optimum %v", s.Tightest, opt)
	}
	if len(s.Triples) != 1 {
		t.Fatalf("expected one triple, got %d", len(s.Triples))
	}
	// The triple bound must at least match the naive floor for the triple.
	tr := s.Triples[0]
	floor := 0.0
	for idx, bi := range []int{tr.I, tr.J, tr.K} {
		_ = idx
		floor += sb.Prob[bi] * float64(s.LC[bi])
	}
	if tr.Value < floor-1e-9 {
		t.Errorf("triple value %v below naive floor %v", tr.Value, floor)
	}
}
