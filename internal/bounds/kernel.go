package bounds

import (
	"context"
	"sync"

	"balance/internal/model"
	"balance/internal/telemetry"
)

// Kernel is the per-(graph, machine) bound kernel: every weight-independent
// artifact of the bound computation — the occupancy expansion, the forward
// dag view, the basic per-branch bounds, the LC early vector, the per-branch
// separation vectors, and the pairwise relaxation curves — computed once and
// shared by every Compute call, scheduler picker, and re-weighted view
// (UniformWeights/WithProbs clones share the graph pointer, so Table 5's
// no-profile runs hit the same kernel as the profiled ones).
//
// Exit probabilities never change the curves, only which point of each
// curve is optimal, so per-call work reduces to re-binding cached templates
// (see pairTemplate.bind). Each artifact records the bounds.Stats it cost
// to build; accessor calls replay that recording into the caller's Stats,
// keeping Table-2 trip counts and budget accounting identical on every
// call, cached or not.
//
// Lifetime: kernels live in a bounded FIFO cache keyed by (graph, machine)
// pointer identity (see KernelFor). All cached slices are shared across
// callers and must be treated as immutable.
type Kernel struct {
	sb *model.Superblock // representative; weight-independent uses only
	m  *model.Machine

	expandOnce sync.Once
	work       *model.Superblock // occupancy expansion (== sb when fully pipelined)
	origOf     []int             // expanded op -> original op (nil when not expanded)
	primary    []int             // original op -> first expanded op (nil when not expanded)
	d          *dag              // forward dag of work

	cpOnce  sync.Once
	cp      PerBranch
	cpStats Stats

	huOnce  sync.Once
	hu      PerBranch
	huStats Stats

	rjOnce  sync.Once
	rj      PerBranch
	rjStats Stats

	lcOnce  sync.Once
	earlyRC []int // on expanded op IDs
	lc      PerBranch
	lcStats Stats

	lcOrigOnce  sync.Once
	lcOrigStats Stats

	sepsOnce  sync.Once
	seps      []Separation // on expanded op IDs, per branch index
	sepsStats Stats

	// The pair build is guarded by a mutex plus done flag rather than a
	// sync.Once: a build cancelled by ctx must not latch a partial result,
	// and the next caller retries.
	pairMu      sync.Mutex
	pairsDone   bool
	pairTmpls   []pairTemplate
	pairStats   Stats
	pairsPruned int64

	projEarlyOnce sync.Once
	projEarly     []int // earlyRC projected onto original op IDs

	projSepsOnce sync.Once
	projSeps     []Separation // seps projected onto original op IDs
}

// kernelKey identifies the weight-independent bound inputs by pointer:
// the dependence graph and the machine.
type kernelKey struct {
	g *model.Graph
	m *model.Machine
}

// kernelCacheCap bounds the kernel cache; eviction is FIFO (the corpus is
// streamed in order, so old graphs are the least likely to return).
const kernelCacheCap = 1024

var kernelCache = struct {
	sync.Mutex
	entries map[kernelKey]*Kernel
	order   []kernelKey
}{entries: map[kernelKey]*Kernel{}}

// KernelFor returns the shared bound kernel for the superblock's graph on
// the machine, creating and caching it on first use. Every re-weighted
// clone of a superblock (same G pointer) maps to the same kernel; cache
// hits count into the bounds.kernel_reuse telemetry series.
func KernelFor(sb *model.Superblock, m *model.Machine) *Kernel {
	k, _ := kernelFor(sb, m)
	return k
}

// kernelFor additionally reports whether the kernel was recalled from
// the cache, so tracing callers can tag the lookup without a second
// cache probe.
func kernelFor(sb *model.Superblock, m *model.Machine) (*Kernel, bool) {
	key := kernelKey{sb.G, m}
	kernelCache.Lock()
	if k, ok := kernelCache.entries[key]; ok {
		kernelCache.Unlock()
		telKernelReuse.Inc()
		return k, true
	}
	k := &Kernel{sb: sb, m: m}
	if len(kernelCache.order) >= kernelCacheCap {
		old := kernelCache.order[0]
		n := copy(kernelCache.order, kernelCache.order[1:])
		kernelCache.order = kernelCache.order[:n]
		delete(kernelCache.entries, old)
	}
	kernelCache.entries[key] = k
	kernelCache.order = append(kernelCache.order, key)
	kernelCache.Unlock()
	return k, false
}

// KernelCacheReset drops every cached kernel (tests and benchmarks that
// must measure cold builds).
func KernelCacheReset() {
	kernelCache.Lock()
	kernelCache.entries = map[kernelKey]*Kernel{}
	kernelCache.order = nil
	kernelCache.Unlock()
}

// ensureExpand builds the occupancy expansion and the shared dag view.
func (k *Kernel) ensureExpand() {
	k.expandOnce.Do(func() {
		k.work = k.sb
		if !k.m.FullyPipelined() {
			k.work, k.origOf = model.ExpandOccupancy(k.sb, k.m)
			n := k.sb.G.NumOps()
			k.primary = make([]int, n)
			for i := range k.primary {
				k.primary[i] = -1
			}
			for expID, orig := range k.origOf {
				if k.primary[orig] < 0 {
					k.primary[orig] = expID
				}
			}
		}
		k.d = forwardDag(k.work.G, k.m)
	})
}

// Expansion returns the cached occupancy expansion and the expanded->original
// op mapping (nil when the machine is fully pipelined). The expansion
// carries the representative's exit probabilities; weight-sensitive callers
// must re-wrap it with their own (model.Superblock.WithProbs).
func (k *Kernel) Expansion() (*model.Superblock, []int) {
	k.ensureExpand()
	return k.work, k.origOf
}

// CPBound returns the critical-path bound per branch, replaying the build's
// stats into st.
func (k *Kernel) CPBound(st *Stats) PerBranch {
	k.cpOnce.Do(func() {
		k.ensureExpand()
		k.cp = CP(k.work, &k.cpStats)
	})
	st.Add(&k.cpStats)
	return k.cp
}

// HuBound returns the Hu-style resource bound per branch.
func (k *Kernel) HuBound(st *Stats) PerBranch {
	k.huOnce.Do(func() {
		k.ensureExpand()
		k.hu = Hu(k.work, k.m, &k.huStats)
	})
	st.Add(&k.huStats)
	return k.hu
}

// RJBound returns the Rim & Jain relaxation bound per branch.
func (k *Kernel) RJBound(st *Stats) PerBranch {
	k.rjOnce.Do(func() {
		k.ensureExpand()
		k.rj = RJ(k.work, k.m, &k.rjStats)
	})
	st.Add(&k.rjStats)
	return k.rj
}

// LCBound returns the Langevin & Cerny early vector (on expanded op IDs)
// and the per-branch LC bound.
func (k *Kernel) LCBound(st *Stats) ([]int, PerBranch) {
	k.ensureLC()
	st.Add(&k.lcStats)
	return k.earlyRC, k.lc
}

func (k *Kernel) ensureLC() {
	k.lcOnce.Do(func() {
		k.ensureExpand()
		k.earlyRC = lcOnDag(k.d, true, &k.lcStats)
		k.lc = make(PerBranch, len(k.work.Branches))
		for i, b := range k.work.Branches {
			k.lc[i] = k.earlyRC[b]
		}
	})
}

// LCOriginalStats replays (building once) the stats of the LC recursion
// without the Theorem-1 shortcut — a complexity datapoint only.
func (k *Kernel) LCOriginalStats(st *Stats) {
	k.lcOrigOnce.Do(func() {
		k.ensureExpand()
		EarlyRCOriginal(k.work, k.m, &k.lcOrigStats)
	})
	st.Add(&k.lcOrigStats)
}

// SepsRC returns the per-branch separation vectors (on expanded op IDs).
func (k *Kernel) SepsRC(st *Stats) []Separation {
	k.ensureSeps()
	st.Add(&k.sepsStats)
	return k.seps
}

func (k *Kernel) ensureSeps() {
	k.sepsOnce.Do(func() {
		k.ensureExpand()
		k.seps = make([]Separation, len(k.work.Branches))
		for i, b := range k.work.Branches {
			k.seps[i] = SeparationRC(k.work, k.m, b, &k.sepsStats)
		}
	})
}

// Pairs returns the pairwise bounds for every branch pair under the given
// exit probabilities, building the weight-independent curve templates on
// first use (with up to workers-wide fan-out; ≤ 1 is serial) and re-binding
// them afterwards. sepsSt and pairSt receive the separation (LC-reverse)
// and pairwise stats respectively. A ctx cancellation during the first
// build returns the error without caching, so a later call can retry.
func (k *Kernel) Pairs(ctx context.Context, workers int, probs []float64, sepsSt, pairSt *Stats) ([]*PairBound, error) {
	if err := k.ensurePairs(ctx, workers); err != nil {
		return nil, err
	}
	k.ensureSeps()
	sepsSt.Add(&k.sepsStats)
	pairSt.Add(&k.pairStats)
	return bindPairs(k.pairTmpls, probs), nil
}

func (k *Kernel) ensurePairs(ctx context.Context, workers int) error {
	k.pairMu.Lock()
	defer k.pairMu.Unlock()
	if k.pairsDone {
		return nil
	}
	k.ensureLC()
	k.ensureSeps()
	// The curve-template build is the expensive, once-per-(graph, machine)
	// part of the kernel; give it its own slice in the trace so a cold
	// job's extra latency is attributable.
	sp, ctx := telemetry.Default().StartSpanCtx(ctx, "bounds.kernel.pairs")
	tmpls, pruned, err := buildPairTemplates(ctx, k.d, k.work, k.m, k.earlyRC, k.seps, workers, &k.pairStats)
	if err != nil {
		// Discard the partial stats so a retry starts clean.
		k.pairStats = Stats{}
		return err
	}
	k.pairTmpls, k.pairsPruned = tmpls, pruned
	k.pairsDone = true
	telPairsPruned.Add(pruned)
	if sp.Active() {
		sp.End(
			telemetry.Int("templates", int64(len(tmpls))),
			telemetry.Int("pruned", pruned),
		)
	}
	return nil
}

// ProjectedEarlyRC returns the LC early vector on original op IDs (the
// expansion's primary-node projection; identical to the expanded vector
// when no expansion happened). Callers must not modify it.
func (k *Kernel) ProjectedEarlyRC(st *Stats) []int {
	earlyRC, _ := k.LCBound(st)
	k.projEarlyOnce.Do(func() {
		if k.origOf == nil {
			k.projEarly = earlyRC
			return
		}
		n := k.sb.G.NumOps()
		out := make([]int, n)
		for v := 0; v < n; v++ {
			out[v] = earlyRC[k.primary[v]]
		}
		k.projEarly = out
	})
	return k.projEarly
}

// ProjectedSeps returns the separation vectors on original op IDs. Callers
// must not modify them.
func (k *Kernel) ProjectedSeps(st *Stats) []Separation {
	seps := k.SepsRC(st)
	k.projSepsOnce.Do(func() {
		if k.origOf == nil {
			k.projSeps = seps
			return
		}
		n := k.sb.G.NumOps()
		out := make([]Separation, len(seps))
		for i, sep := range seps {
			o := make(Separation, n)
			for v := 0; v < n; v++ {
				o[v] = sep[k.primary[v]]
			}
			out[i] = o
		}
		k.projSeps = out
	})
	return k.projSeps
}
