// Package bounds implements lower bounds on superblock schedules: the
// classic critical-path (CP) and Hu bounds, the Rim & Jain (RJ) relaxation
// bound, the Langevin & Cerny (LC) recursive bound with the paper's
// Theorem-1 speedup, the resource-aware late times LateRC, and the paper's
// new Pairwise and Triplewise superblock bounds (Sections 4.2-4.4).
//
// All bounds are expressed on issue cycles (0-indexed): a per-branch bound
// of k means the branch cannot issue before cycle k in any legal schedule.
// Superblock-level bounds are on the weighted completion time
// Σ_i w_i·(t_i + l_br).
package bounds

import (
	"balance/internal/model"
)

// Stats counts the loop trips performed by the bound algorithms, the
// complexity metric reported in Table 2 of the paper.
type Stats struct {
	// RJRuns is the number of Rim & Jain relaxations solved.
	RJRuns int64
	// Trips is the total number of inner-loop iterations (op visits,
	// placement scans, sweep steps) across all computations.
	Trips int64
	// Theorem1Skips counts LC recursions short-circuited by Theorem 1.
	Theorem1Skips int64
	// PairSweeps counts latency values evaluated by pairwise sweeps.
	PairSweeps int64
	// TripleSweeps counts lattice points evaluated by triplewise
	// combination.
	TripleSweeps int64
}

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	s.RJRuns += other.RJRuns
	s.Trips += other.Trips
	s.Theorem1Skips += other.Theorem1Skips
	s.PairSweeps += other.PairSweeps
	s.TripleSweeps += other.TripleSweeps
}

// dag is a local computation graph: the superblock graph (forward) or the
// reversed predecessor subgraph of a branch, with per-op resource kinds
// resolved against a machine. Local op IDs are dense; reversed dags carry a
// mapping back to global IDs.
type dag struct {
	n     int
	preds [][]model.Edge // Edge.To is the predecessor's local ID
	succs [][]model.Edge // Edge.To is the successor's local ID
	kind  []int          // resource kind per local op
	topo  []int          // topological order of local IDs
	m     *model.Machine
}

// forwardDag builds the dag view of the whole graph; local IDs equal global
// IDs.
func forwardDag(g *model.Graph, m *model.Machine) *dag {
	n := g.NumOps()
	d := &dag{
		n:     n,
		preds: make([][]model.Edge, n),
		succs: make([][]model.Edge, n),
		kind:  make([]int, n),
		topo:  g.Topo(),
		m:     m,
	}
	for v := 0; v < n; v++ {
		d.preds[v] = g.Preds(v)
		d.succs[v] = g.Succs(v)
		d.kind[v] = m.KindOf(g.Op(v).Class)
	}
	return d
}

// reversedDag builds the reversed dag over the predecessor closure of
// target (plus target itself): an edge u->w of latency l becomes w->u with
// latency l. The second result maps local IDs back to global IDs.
//
// If τ_v := t_target - t_v for a feasible schedule of the original graph,
// then τ satisfies the reversed dependences with the same resource usage,
// so any lower bound on τ_v in the reversed dag lower-bounds the issue
// separation between v and the target.
func reversedDag(g *model.Graph, m *model.Machine, target int) (*dag, []int) {
	closure := g.PredClosure(target)
	ids := make([]int, 0, closure.Count()+1)
	local := make(map[int]int, closure.Count()+1)
	add := func(v int) {
		local[v] = len(ids)
		ids = append(ids, v)
	}
	add(target)
	closure.ForEach(add)

	n := len(ids)
	d := &dag{
		n:     n,
		preds: make([][]model.Edge, n),
		succs: make([][]model.Edge, n),
		kind:  make([]int, n),
		m:     m,
	}
	for li, v := range ids {
		d.kind[li] = m.KindOf(g.Op(v).Class)
		for _, e := range g.Succs(v) {
			if lw, ok := local[e.To]; ok {
				// v->w forward becomes w->v reversed.
				d.preds[li] = append(d.preds[li], model.Edge{To: lw, Lat: e.Lat})
				d.succs[lw] = append(d.succs[lw], model.Edge{To: li, Lat: e.Lat})
			}
		}
	}
	d.computeTopo()
	return d, ids
}

// computeTopo fills d.topo (Kahn). The dag is acyclic by construction.
func (d *dag) computeTopo() {
	indeg := make([]int, d.n)
	for v := 0; v < d.n; v++ {
		for _, e := range d.succs[v] {
			indeg[e.To]++
		}
	}
	order := make([]int, 0, d.n)
	queue := make([]int, 0, d.n)
	for v := 0; v < d.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range d.succs[v] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	d.topo = order
}

// distToTarget returns the longest dependence-path latency from every op to
// target within the dag (-1 for ops that do not precede target; 0 for the
// target itself).
func (d *dag) distToTarget(target int, st *Stats) []int {
	dist := make([]int, d.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[target] = 0
	for i := len(d.topo) - 1; i >= 0; i-- {
		v := d.topo[i]
		if dist[v] < 0 {
			continue
		}
		for _, e := range d.preds[v] {
			st.Trips++
			if dd := dist[v] + e.Lat; dd > dist[e.To] {
				dist[e.To] = dd
			}
		}
	}
	return dist
}

// rimJain solves the Rim & Jain relaxation for the operations in include
// (local IDs) and returns the delay: max(0, max_v(t_v - late[v])) where t_v
// is the greedy placement of v at the earliest resource-feasible cycle ≥
// early[v], processing ops in order of increasing late time. A delay of d
// means the relaxation's target must slip d cycles beyond the early value
// its late times were derived from.
//
// All working state lives in sc, so repeated relaxations allocate nothing
// in steady state (the pairwise sweep solves one per separation value).
func (d *dag) rimJain(sc *rjScratch, include []int, early, late []int, st *Stats) int {
	st.RJRuns++
	order := sc.sortedOrder(include, early, late)
	sc.begin(d.m.Kinds())
	delay := 0
	for _, v := range order {
		st.Trips++
		k := d.kind[v]
		c := early[v]
		if c < 0 {
			c = 0
		}
		cap := d.m.Capacity(k)
		for sc.at(k, c) >= cap {
			c++
			st.Trips++
		}
		sc.inc(k, c)
		if sl := c - late[v]; sl > delay {
			delay = sl
		}
	}
	return delay
}
