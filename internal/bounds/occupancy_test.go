package bounds_test

import (
	"math/rand"
	"testing"

	"balance/internal/bounds"
	"balance/internal/exact"
	"balance/internal/model"
	"balance/internal/sched"
	"balance/internal/testutil"
)

// npMachines returns a cross-section of non-fully-pipelined machines.
func npMachines() []*model.Machine {
	return []*model.Machine{
		model.GP2().WithOccupancy(model.FloatMul, 3),
		model.GP1().WithOccupancy(model.FloatMul, 2),
		model.FS4().WithOccupancy(model.FloatDiv, 9).WithOccupancy(model.FloatMul, 3),
	}
}

// TestOccupancyBoundsSound: on non-pipelined machines the bounds (computed
// via the Rim & Jain expansion) must stay below the exact optimum, and
// heuristic schedules must respect them.
func TestOccupancyBoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 30; i++ {
		sb := testutil.RandomSuperblock(rng, 10)
		for _, m := range npMachines() {
			s := bounds.Compute(sb, m, bounds.Options{Triplewise: true})
			_, opt, err := exact.Optimal(sb, m, 2_000_000)
			if err != nil {
				continue
			}
			if s.Tightest > opt+1e-9 {
				t.Fatalf("iter %d %s: tightest %v exceeds optimum %v", i, m.Name, s.Tightest, opt)
			}
			list, _, err := sched.ListSchedule(sb, m, sched.IntsToFloats(sb.G.Heights()))
			if err != nil {
				t.Fatal(err)
			}
			if err := sched.Verify(sb, m, list); err != nil {
				t.Fatal(err)
			}
			if c := sched.Cost(sb, list); c < s.Tightest-1e-9 {
				t.Fatalf("iter %d %s: schedule %v below bound %v", i, m.Name, c, s.Tightest)
			}
		}
	}
}

// TestOccupancyTightensBounds: holding a unit must never loosen a bound,
// and on a crafted example it visibly tightens it.
func TestOccupancyTightensBounds(t *testing.T) {
	b := model.NewBuilder("np")
	m0 := b.Op(model.FloatMul)
	m1 := b.Op(model.FloatMul)
	m2 := b.Op(model.FloatMul)
	b.Branch(0, m0, m1, m2)
	sb := b.MustBuild()

	pip := bounds.Compute(sb, model.GP2(), bounds.Options{})
	np := bounds.Compute(sb, model.GP2().WithOccupancy(model.FloatMul, 3), bounds.Options{})
	if np.LC[0] <= pip.LC[0] {
		t.Errorf("occupancy did not tighten LC: %d vs %d", np.LC[0], pip.LC[0])
	}
	// In the Rim & Jain expansion the nine unit-occupancy chain ops force
	// the branch to cycle 5 (the relaxation lets chain ops interleave, so
	// it is weaker than the true optimum of 6 — still a valid bound).
	if np.LC[0] != 5 {
		t.Errorf("LC with occupancy = %d, want 5", np.LC[0])
	}
	_, opt, err := exact.Optimal(sb, model.GP2().WithOccupancy(model.FloatMul, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 7 { // branch issues at 6 and completes at 7
		t.Errorf("exact optimum = %v, want 7", opt)
	}
	if np.Expanded.G.NumOps() != sb.G.NumOps()+6 {
		t.Errorf("expansion size %d, want %d", np.Expanded.G.NumOps(), sb.G.NumOps()+6)
	}
	// EarlyRC/Seps must be projected back to the original op count.
	if len(np.EarlyRC) != sb.G.NumOps() {
		t.Errorf("EarlyRC has %d entries for %d ops", len(np.EarlyRC), sb.G.NumOps())
	}
	for _, sep := range np.Seps {
		if len(sep) != sb.G.NumOps() {
			t.Errorf("separation has %d entries for %d ops", len(sep), sb.G.NumOps())
		}
	}
}

// TestOccupancyNeverLoosens: the non-pipelined bound dominates the
// pipelined one on random instances.
func TestOccupancyNeverLoosens(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := model.GP2()
	np := model.GP2().WithOccupancy(model.FloatMul, 3).WithOccupancy(model.Load, 2)
	for i := 0; i < 25; i++ {
		sb := testutil.RandomSuperblock(rng, 14)
		a := bounds.Compute(sb, m, bounds.Options{})
		b := bounds.Compute(sb, np, bounds.Options{})
		if b.Tightest < a.Tightest-1e-9 {
			t.Fatalf("iter %d: occupancy loosened the bound: %v < %v", i, b.Tightest, a.Tightest)
		}
	}
}
