package bounds

import (
	"context"

	"balance/internal/model"
	"balance/internal/resilience"
)

// SearchFloor returns a cheap, kernel-cached true lower bound on the
// optimal weighted completion cost of (sb, m): the tightest of the basic
// per-branch bounds (CP/Hu/RJ/LC) and the pairwise composition. The
// triplewise stage is deliberately skipped — the point is a floor the exact
// solver can fetch in microseconds once the kernel is warm, not the
// tightest bound the catalog can produce.
//
// The parallel exact solver uses it two ways: as the best-bound clamp when
// ordering root subtrees, and as a proven-optimality early stop — an
// incumbent whose cost reaches the floor cannot be improved, so the search
// halts without enumerating the remaining subtrees. Soundness is the bound
// layer's core invariant (every value is ≤ the true optimum, pinned by the
// differential tests against this very solver), which is what makes the
// early stop safe.
//
// A short node budget caps the pairwise stage on cold kernels: a degraded
// set still yields a valid (just looser) floor, so the hook never costs
// more than a small slice of the search it is accelerating.
func SearchFloor(ctx context.Context, sb *model.Superblock, m *model.Machine) float64 {
	// The budget only guards against pathological cold-kernel pair builds;
	// warm kernels (the common case for repeated exact solves over a
	// corpus) never come close.
	budget := resilience.NewBudget(0, 2_000_000)
	s := ComputeBudgetCtx(ctx, sb, m, Options{}, budget)
	return s.Tightest
}
