package bounds

import (
	"testing"
	"testing/quick"

	"balance/internal/model"
	"balance/internal/sched"
	"balance/internal/testutil"
)

var quickCfg = &quick.Config{MaxCount: 80}

// TestQuickBoundsNeverExceedSchedules: the central invariant — no bound may
// exceed the cost of any legal schedule, here witnessed by a CP list
// schedule and an SR-flavored one on every machine quick draws.
func TestQuickBoundsNeverExceedSchedules(t *testing.T) {
	prop := func(q testutil.QuickSB, qm testutil.QuickMachine) bool {
		sb, m := q.SB, qm.M
		set := Compute(sb, m, Options{Triplewise: true, TriplewiseExact: sb.NumBranches() <= 5})
		keys := [][]float64{
			sched.IntsToFloats(sb.G.Heights()),
			sched.Negate(sched.IntsToFloats(sb.G.Heights())),
		}
		for _, key := range keys {
			s, _, err := sched.ListSchedule(sb, m, key)
			if err != nil {
				return false
			}
			if sched.Cost(sb, s) < set.Tightest-1e-9 {
				t.Logf("%s: cost %v < tightest %v", sb.Name, sched.Cost(sb, s), set.Tightest)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPairwiseCurveIdentity: within the evaluated range, X(s)+s = Y(s)
// by construction, and Y is bounded below by Ej and by Ei+s.
func TestQuickPairwiseCurveIdentity(t *testing.T) {
	prop := func(q testutil.QuickSB, qm testutil.QuickMachine) bool {
		sb, m := q.SB, qm.M
		if sb.NumBranches() < 2 {
			return true
		}
		set := Compute(sb, m, Options{})
		for _, pr := range set.Pairs {
			for s := pr.Lmin; s <= pr.Lmax; s++ {
				if pr.X(s)+s != pr.Y(s) {
					return false
				}
				if pr.Y(s) < pr.Ej || pr.Y(s) < pr.Ei+s {
					return false
				}
			}
			// Extrapolations agree at the range boundaries' semantics.
			if pr.X(pr.Lmax+5) != pr.Ei || pr.Y(pr.Lmin-1) != pr.Ej {
				return false
			}
			// The optimal point is on the curve.
			wi, wj := sb.Prob[pr.I], sb.Prob[pr.J]
			if v := wi*float64(pr.Bi) + wj*float64(pr.Bj); v < pr.Value-1e-9 || v > pr.Value+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPerBranchDominance: per-branch bound hierarchy CP ≤ RJ ≤ LC and
// CP ≤ Hu on arbitrary instances and machines.
func TestQuickPerBranchDominance(t *testing.T) {
	prop := func(q testutil.QuickSB, qm testutil.QuickMachine) bool {
		set := Compute(q.SB, qm.M, Options{})
		for bi := range q.SB.Branches {
			if set.RJ[bi] < set.CP[bi] || set.LC[bi] < set.RJ[bi] || set.Hu[bi] < set.CP[bi] {
				return false
			}
		}
		return set.PairVal >= set.LCVal-1e-9
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSeparationsConsistent: separation bounds dominate dependence
// distances and LateRC stays below EarlyRC-implied ceilings.
func TestQuickSeparationsConsistent(t *testing.T) {
	prop := func(q testutil.QuickSB) bool {
		sb := q.SB
		m := model.GP2()
		var st Stats
		earlyRC := EarlyRC(sb, m, &st)
		for bi, b := range sb.Branches {
			_ = bi
			sep := SeparationRC(sb, m, b, &st)
			dist := sb.G.LongestToTarget(b)
			for v := 0; v < sb.G.NumOps(); v++ {
				if (dist[v] >= 0) != (sep[v] >= 0) {
					return false
				}
				if dist[v] >= 0 && sep[v] < dist[v] {
					return false // resource awareness can only increase separation
				}
			}
			late := LateRC(sep, earlyRC[b])
			if late[b] != earlyRC[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
