package bounds

import (
	"balance/internal/model"
)

// PerBranch holds a lower bound on the issue cycle of every exit branch of
// a superblock, in branch order.
type PerBranch []int

// CP returns the critical-path (dependence-only) bound on every branch:
// CP[i] = EarlyDC[branch_i].
func CP(sb *model.Superblock, st *Stats) PerBranch {
	early := sb.G.EarlyDC()
	st.Trips += int64(sb.G.NumOps() + sb.G.NumEdges())
	out := make(PerBranch, len(sb.Branches))
	for i, b := range sb.Branches {
		out[i] = early[b]
	}
	return out
}

// Hu returns the Hu-style resource bound on every branch. For branch b and
// each cutoff cycle c, every predecessor v with LateDC_b[v] ≤ c must issue
// in cycles [0, c]; if the operations of some resource kind overflow the
// capacity of that window, b slips by the number of extra cycles needed to
// drain the excess. The bound is EarlyDC[b] plus the worst slip over all
// cutoffs and kinds.
func Hu(sb *model.Superblock, m *model.Machine, st *Stats) PerBranch {
	g := sb.G
	early := g.EarlyDC()
	out := make(PerBranch, len(sb.Branches))
	for bi, b := range sb.Branches {
		dist := g.LongestToTarget(b)
		st.Trips += int64(g.NumOps())
		eb := early[b]
		// counts[k][c] = number of kind-k predecessors with LateDC_b == c
		// (clamped at 0; ops with negative late force a slip immediately,
		// but with early ≥ 0 a late < 0 cannot occur when eb is the
		// dependence critical path).
		maxC := eb
		counts := make([][]int, m.Kinds())
		for k := range counts {
			counts[k] = make([]int, maxC+1)
		}
		include := g.PredClosure(b)
		addOp := func(v int) {
			late := eb - dist[v]
			if late < 0 {
				late = 0
			}
			if late > maxC {
				late = maxC
			}
			counts[m.KindOf(g.Op(v).Class)][late]++
		}
		include.ForEach(addOp)
		addOp(b)
		slip := 0
		for k := range counts {
			cum := 0
			for c := 0; c <= maxC; c++ {
				st.Trips++
				cum += counts[k][c]
				avail := m.Capacity(k) * (c + 1)
				if cum > avail {
					if s := ceilDiv(cum-avail, m.Capacity(k)); s > slip {
						slip = s
					}
				}
			}
		}
		out[bi] = eb + slip
	}
	return out
}

// RJ returns the Rim & Jain relaxation bound on every branch: the RJ
// relaxation applied to the predecessor subgraph of the branch with
// dependence-only early and late times.
func RJ(sb *model.Superblock, m *model.Machine, st *Stats) PerBranch {
	g := sb.G
	d := forwardDag(g, m)
	early := g.EarlyDC()
	sc := getRJScratch()
	defer putRJScratch(sc)
	out := make(PerBranch, len(sb.Branches))
	late := make([]int, g.NumOps())
	var include []int
	for bi, b := range sb.Branches {
		dist := g.LongestToTarget(b)
		st.Trips += int64(g.NumOps())
		eb := early[b]
		include = include[:0]
		g.PredClosure(b).ForEach(func(v int) {
			late[v] = eb - dist[v]
			include = append(include, v)
		})
		late[b] = eb
		include = append(include, b)
		out[bi] = eb + d.rimJain(sc, include, early, late, st)
	}
	return out
}

// ceilDiv returns ⌈a/b⌉ for a ≥ 0, b > 0.
func ceilDiv(a, b int) int { return (a + b - 1) / b }
