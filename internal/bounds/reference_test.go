package bounds

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"balance/internal/gen"
	"balance/internal/model"
)

// diffCorpus returns a deterministic random corpus of generated superblocks
// paired with every machine model (the six paper machines plus one
// non-fully-pipelined variant that forces the occupancy expansion).
func diffCorpus(t *testing.T) (sbs []*model.Superblock, machines []*model.Machine) {
	t.Helper()
	for _, spec := range []struct {
		profile string
		seed    int64
		scale   float64
	}{
		{"129.compress", 1, 0.25},
		{"132.ijpeg", 2, 0.10},
	} {
		p, err := gen.ProfileByName(spec.profile)
		if err != nil {
			t.Fatal(err)
		}
		sbs = append(sbs, gen.Generate(p, spec.seed, spec.scale)...)
	}
	machines = append(machines, model.Machines()...)
	machines = append(machines, model.GP2().WithOccupancy(model.FloatMul, 3))
	return sbs, machines
}

// expandFor mirrors Compute's handling of non-fully-pipelined machines: the
// reference computations run on the occupancy expansion.
func expandFor(sb *model.Superblock, m *model.Machine) *model.Superblock {
	if m.FullyPipelined() {
		return sb
	}
	work, _ := model.ExpandOccupancy(sb, m)
	return work
}

func staticInputs(work *model.Superblock, m *model.Machine) ([]int, []Separation) {
	var st Stats
	earlyRC := EarlyRC(work, m, &st)
	seps := make([]Separation, len(work.Branches))
	for i, b := range work.Branches {
		seps[i] = SeparationRC(work, m, b, &st)
	}
	return earlyRC, seps
}

func pairsEqual(a, b []*PairBound) error {
	if len(a) != len(b) {
		return fmt.Errorf("pair count %d vs %d", len(a), len(b))
	}
	for idx := range a {
		x, y := a[idx], b[idx]
		if x.I != y.I || x.J != y.J || x.Ei != y.Ei || x.Ej != y.Ej ||
			x.Lmin != y.Lmin || x.Lmax != y.Lmax ||
			x.Bi != y.Bi || x.Bj != y.Bj || x.Value != y.Value ||
			x.NoTradeoff != y.NoTradeoff ||
			!reflect.DeepEqual(x.Xs, y.Xs) || !reflect.DeepEqual(x.Ys, y.Ys) {
			return fmt.Errorf("pair (%d,%d): %+v vs %+v", x.I, x.J, *x, *y)
		}
	}
	return nil
}

func tripleValuesEqual(a, b []*TripleBound) error {
	if len(a) != len(b) {
		return fmt.Errorf("triple count %d vs %d", len(a), len(b))
	}
	for idx := range a {
		x, y := a[idx], b[idx]
		if x.I != y.I || x.J != y.J || x.K != y.K || x.Value != y.Value {
			return fmt.Errorf("triple (%d,%d,%d): value %v vs %v", x.I, x.J, x.K, x.Value, y.Value)
		}
	}
	return nil
}

// TestPruneDifferential proves the dominance prunes are value-preserving:
// across the generated corpus and every machine model, the pairwise bounds,
// the curve-combination triples, and the exact triple relaxation computed
// with prunes enabled are identical to the un-pruned reference path.
func TestPruneDifferential(t *testing.T) {
	defer func() { prunesEnabled = true }()
	sbs, machines := diffCorpus(t)
	for _, m := range machines {
		for _, sb := range sbs {
			work := expandFor(sb, m)
			earlyRC, seps := staticInputs(work, m)
			var stRef, stGot Stats

			prunesEnabled = false
			refPairs := PairwiseAll(work, m, earlyRC, seps, &stRef)
			refTriples := TriplewiseAll(work, refPairs, 0, &stRef)
			refExact := TripleRelaxAll(work, m, earlyRC, seps, 8, &stRef)

			prunesEnabled = true
			gotPairs := PairwiseAll(work, m, earlyRC, seps, &stGot)
			gotTriples := TriplewiseAll(work, gotPairs, 0, &stGot)
			gotExact := TripleRelaxAll(work, m, earlyRC, seps, 8, &stGot)

			if err := pairsEqual(refPairs, gotPairs); err != nil {
				t.Fatalf("%s on %s: pairwise: %v", sb.Name, m, err)
			}
			if err := tripleValuesEqual(refTriples, gotTriples); err != nil {
				t.Fatalf("%s on %s: triplewise: %v", sb.Name, m, err)
			}
			if err := tripleValuesEqual(refExact, gotExact); err != nil {
				t.Fatalf("%s on %s: exact triples: %v", sb.Name, m, err)
			}
			if stGot.PairSweeps > stRef.PairSweeps || stGot.TripleSweeps > stRef.TripleSweeps {
				t.Fatalf("%s on %s: pruned path did more work than reference", sb.Name, m)
			}
		}
	}
}

// TestKernelDifferential proves the kernel cache is transparent: a warm
// Compute returns values and replayed statistics identical to the cold one,
// and the cold one matches the direct (kernel-free) static computation.
func TestKernelDifferential(t *testing.T) {
	sbs, machines := diffCorpus(t)
	opts := Options{Triplewise: true, TriplewiseExact: true}
	for _, m := range machines {
		for _, sb := range sbs {
			KernelCacheReset()
			cold := Compute(sb, m, opts)
			warm := Compute(sb, m, opts)

			if !reflect.DeepEqual(cold.EarlyRC, warm.EarlyRC) ||
				!reflect.DeepEqual(cold.Seps, warm.Seps) ||
				!reflect.DeepEqual(cold.CP, warm.CP) ||
				!reflect.DeepEqual(cold.Hu, warm.Hu) ||
				!reflect.DeepEqual(cold.RJ, warm.RJ) ||
				!reflect.DeepEqual(cold.LC, warm.LC) {
				t.Fatalf("%s on %s: warm kernel changed a static bound", sb.Name, m)
			}
			if err := pairsEqual(cold.Pairs, warm.Pairs); err != nil {
				t.Fatalf("%s on %s: warm kernel pairwise: %v", sb.Name, m, err)
			}
			if err := tripleValuesEqual(cold.Triples, warm.Triples); err != nil {
				t.Fatalf("%s on %s: warm kernel triples: %v", sb.Name, m, err)
			}
			if cold.CPVal != warm.CPVal || cold.HuVal != warm.HuVal ||
				cold.RJVal != warm.RJVal || cold.LCVal != warm.LCVal ||
				cold.PairVal != warm.PairVal || cold.TripleVal != warm.TripleVal ||
				cold.Tightest != warm.Tightest {
				t.Fatalf("%s on %s: warm kernel changed a composed value", sb.Name, m)
			}
			if cold.Stats != warm.Stats {
				t.Fatalf("%s on %s: stats replay diverged:\ncold %+v\nwarm %+v", sb.Name, m, cold.Stats, warm.Stats)
			}

			// Direct reference for the static inputs, bypassing the kernel.
			work := expandFor(sb, m)
			earlyRC, seps := staticInputs(work, m)
			var st Stats
			refPairs := PairwiseAll(work, m, earlyRC, seps, &st)
			if err := pairsEqual(refPairs, cold.Pairs); err != nil {
				t.Fatalf("%s on %s: kernel vs direct pairwise: %v", sb.Name, m, err)
			}
			if m.FullyPipelined() {
				if !reflect.DeepEqual(earlyRC, cold.EarlyRC) {
					t.Fatalf("%s on %s: kernel vs direct EarlyRC", sb.Name, m)
				}
				if !reflect.DeepEqual(seps, cold.Seps) {
					t.Fatalf("%s on %s: kernel vs direct Seps", sb.Name, m)
				}
			}
		}
	}
}

// TestParallelPairTemplates proves the parallel pair fan-out is
// deterministic: templates, prune counts, and summed statistics match the
// serial build at any worker width.
func TestParallelPairTemplates(t *testing.T) {
	sbs, machines := diffCorpus(t)
	ctx := context.Background()
	for _, m := range machines {
		for _, sb := range sbs {
			if len(sb.Branches) < 2 {
				continue
			}
			work := expandFor(sb, m)
			earlyRC, seps := staticInputs(work, m)
			var stSer, stPar Stats
			serial, prunedSer, err := buildPairTemplates(ctx, forwardDag(work.G, m), work, m, earlyRC, seps, 0, &stSer)
			if err != nil {
				t.Fatal(err)
			}
			par, prunedPar, err := buildPairTemplates(ctx, forwardDag(work.G, m), work, m, earlyRC, seps, 4, &stPar)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("%s on %s: parallel templates diverge from serial", sb.Name, m)
			}
			if prunedSer != prunedPar {
				t.Fatalf("%s on %s: prune count %d (serial) vs %d (parallel)", sb.Name, m, prunedSer, prunedPar)
			}
			if stSer != stPar {
				t.Fatalf("%s on %s: stats diverge:\nserial %+v\nparallel %+v", sb.Name, m, stSer, stPar)
			}
		}
	}
}
