package bounds

import (
	"testing"

	"balance/internal/model"
)

func TestSingleBranchBounds(t *testing.T) {
	b := model.NewBuilder("lone")
	b.Branch(0)
	sb := b.MustBuild()
	for _, m := range model.Machines() {
		s := Compute(sb, m, Options{Triplewise: true})
		if s.CP[0] != 0 || s.LC[0] != 0 {
			t.Errorf("%s: lone branch bounds %d/%d, want 0/0", m.Name, s.CP[0], s.LC[0])
		}
		// Completion bound = l_br = 1.
		if s.Tightest != 1 {
			t.Errorf("%s: tightest = %v, want 1", m.Name, s.Tightest)
		}
		if len(s.Pairs) != 0 || len(s.Triples) != 0 {
			t.Errorf("%s: pair/triple bounds for a single exit", m.Name)
		}
	}
}

func TestTwoBranchNoSideOps(t *testing.T) {
	// Branches only: the control chain forces issue cycles 0 and 1.
	b := model.NewBuilder("two")
	b.Branch(0.5)
	b.Branch(0)
	sb := b.MustBuild()
	s := Compute(sb, model.GP1(), Options{Triplewise: true})
	if s.LC[0] != 0 || s.LC[1] != 1 {
		t.Errorf("LC = %v, want [0 1]", s.LC)
	}
	// Naive = pairwise here (no tradeoff): 0.5*1 + 0.5*2 = 1.5.
	if s.PairVal != 1.5 {
		t.Errorf("pairwise = %v, want 1.5", s.PairVal)
	}
	if !s.Pairs[0].NoTradeoff {
		t.Error("no-tradeoff pair not detected")
	}
}

func TestBranchUnitContention(t *testing.T) {
	// FS machines have one branch unit: B branches need B cycles even
	// without any data dependence pressure. (The control chain forces the
	// same, so use Hu to check the resource reasoning is present too.)
	b := model.NewBuilder("brs")
	for i := 0; i < 3; i++ {
		b.Branch(0.2)
	}
	b.Branch(0)
	sb := b.MustBuild()
	s := Compute(sb, model.FS4(), Options{})
	if s.Hu[3] < 3 {
		t.Errorf("Hu final exit = %d, want >= 3", s.Hu[3])
	}
	if s.LC[3] != 3 {
		t.Errorf("LC final exit = %d, want 3", s.LC[3])
	}
}

func TestRimJainDeterminism(t *testing.T) {
	// Equal late times: the placement order must be deterministic across
	// runs (sorted by late, early, ID).
	b := model.NewBuilder("det")
	var deps []int
	for i := 0; i < 8; i++ {
		deps = append(deps, b.Int())
	}
	b.Branch(0, deps...)
	sb := b.MustBuild()
	var prev PerBranch
	for i := 0; i < 5; i++ {
		var st Stats
		got := RJ(sb, model.GP2(), &st)
		if prev != nil && got[0] != prev[0] {
			t.Fatalf("RJ nondeterministic: %v vs %v", got, prev)
		}
		prev = got
	}
	// 9 ops (8 + branch) on 2 units: preds need cycles 0..3, branch ≥ 4.
	if prev[0] != 4 {
		t.Errorf("RJ = %d, want 4", prev[0])
	}
}

func TestPairwiseValueSingleBranch(t *testing.T) {
	b := model.NewBuilder("one")
	o := b.Int()
	b.Branch(0, o)
	sb := b.MustBuild()
	var st Stats
	earlyRC := EarlyRC(sb, model.GP2(), &st)
	v := PairwiseValue(sb, earlyRC, nil)
	if v != 2 { // branch at 1, completes at 2
		t.Errorf("pairwise value = %v, want 2", v)
	}
}

func TestLatencyOverridesInBounds(t *testing.T) {
	// A 5-cycle custom-latency producer pushes the consumer's CP bound.
	b := model.NewBuilder("lat")
	p := b.AddOpLatency(model.Int, 5)
	c := b.Int(p)
	b.Branch(0, c)
	sb := b.MustBuild()
	s := Compute(sb, model.GP4(), Options{})
	if s.CP[0] != 6 {
		t.Errorf("CP = %d, want 6", s.CP[0])
	}
}

func TestMinIGivenJNoFeasibleSeparation(t *testing.T) {
	// A curve consistent with the sweep invariants (X(s)+s = Y(s), X ends
	// at Ei): asking for a t_j below every curve point returns the
	// unconstrained floor Ei.
	pr := &PairBound{I: 0, J: 1, Ei: 5, Ej: 8, Lmin: 3, Lmax: 5,
		Xs: []int{5, 5, 5}, Ys: []int{8, 9, 10}}
	if got := pr.MinIGivenJ(7); got != 5 {
		t.Errorf("MinIGivenJ(7) = %d, want floor 5", got)
	}
	if got := pr.MinIGivenJ(8); got != 5 {
		t.Errorf("MinIGivenJ(8) = %d, want 5", got)
	}
	if got := pr.MinIGivenJ(100); got != 5 {
		t.Errorf("MinIGivenJ(100) = %d, want 5", got)
	}
	// With a genuine tradeoff curve, a tight t_j forces a delayed t_i.
	pr2 := &PairBound{I: 0, J: 1, Ei: 2, Ej: 8, Lmin: 3, Lmax: 7,
		Xs: []int{5, 5, 4, 3, 2}, Ys: []int{8, 9, 9, 9, 9}}
	if got := pr2.MinIGivenJ(8); got != 5 {
		t.Errorf("tradeoff MinIGivenJ(8) = %d, want 5", got)
	}
	if got := pr2.MinIGivenJ(9); got != 2 {
		t.Errorf("tradeoff MinIGivenJ(9) = %d, want 2", got)
	}
}

func TestTriplewiseValueFallsBackBelowThreeBranches(t *testing.T) {
	b := model.NewBuilder("fb")
	o := b.Int()
	b.Branch(0.4, o)
	p := b.Int()
	b.Branch(0, p)
	sb := b.MustBuild()
	s := Compute(sb, model.GP2(), Options{Triplewise: true})
	if s.TripleVal != s.PairVal {
		t.Errorf("triplewise %v should equal pairwise %v with two exits", s.TripleVal, s.PairVal)
	}
}

func TestTripleMaxBranchesGate(t *testing.T) {
	b := model.NewBuilder("many")
	for i := 0; i < 5; i++ {
		b.Branch(0.1, b.Int())
	}
	b.Branch(0, b.Int())
	sb := b.MustBuild()
	gated := Compute(sb, model.GP2(), Options{Triplewise: true, TripleMaxBranches: 3})
	if len(gated.Triples) != 0 {
		t.Errorf("gate ignored: %d triples", len(gated.Triples))
	}
	if gated.TripleVal != gated.PairVal {
		t.Errorf("gated triplewise should fall back to pairwise")
	}
	open := Compute(sb, model.GP2(), Options{Triplewise: true})
	if len(open.Triples) != 20 { // C(6,3)
		t.Errorf("got %d triples, want 20", len(open.Triples))
	}
}
