package bounds_test

import (
	"testing"
	"time"

	"balance/internal/bounds"
	"balance/internal/gen"
	"balance/internal/model"
	"balance/internal/resilience"
)

// degradeCorpus returns superblocks with ≥ 3 branches so every ladder
// stage has real work to shed.
func degradeCorpus(t *testing.T) []*model.Superblock {
	t.Helper()
	var out []*model.Superblock
	for _, sb := range gen.GenerateSuite(1999, 0.05).All() {
		if len(sb.Branches) >= 3 {
			out = append(out, sb)
		}
	}
	if len(out) == 0 {
		t.Fatal("corpus has no multi-branch superblocks")
	}
	return out
}

// TestComputeBudgetLadder drives each degradation level explicitly and
// checks the documented invariants: values stay true lower bounds at every
// level, fallbacks equal the tightest completed value, and Degraded
// records the cut.
func TestComputeBudgetLadder(t *testing.T) {
	m := model.GP2()
	opts := bounds.Options{Triplewise: true}
	for _, sb := range degradeCorpus(t)[:8] {
		full := bounds.Compute(sb, m, opts)
		if full.Degraded != bounds.DegradeNone {
			t.Fatalf("%s: unbudgeted compute reported degradation %d", sb.Name, full.Degraded)
		}

		// A one-node budget expires after the basic bounds: level 2.
		level2 := bounds.ComputeBudget(sb, m, opts, resilience.NewBudget(0, 1))
		if level2.Degraded != bounds.DegradePairwise {
			t.Fatalf("%s: tiny budget degraded to %d, want DegradePairwise", sb.Name, level2.Degraded)
		}
		if len(level2.Pairs) != 0 || len(level2.Triples) != 0 || len(level2.Seps) != 0 {
			t.Errorf("%s: level-2 set still carries pairwise artifacts", sb.Name)
		}
		wantFallback := level2.CPVal
		for _, v := range []float64{level2.HuVal, level2.RJVal, level2.LCVal} {
			if v > wantFallback {
				wantFallback = v
			}
		}
		if level2.PairVal != wantFallback || level2.TripleVal != wantFallback {
			t.Errorf("%s: level-2 fallback PairVal=%v TripleVal=%v, want %v",
				sb.Name, level2.PairVal, level2.TripleVal, wantFallback)
		}
		if level2.Tightest != wantFallback {
			t.Errorf("%s: level-2 Tightest=%v, want %v", sb.Name, level2.Tightest, wantFallback)
		}

		// A budget sized to survive the basics but not the pairwise stage
		// expires before triplewise: level 1. Size it from the full run's
		// own trip counts so the test tracks algorithm changes.
		basics := full.Stats.CP.Trips + full.Stats.Hu.Trips + full.Stats.RJ.Trips + full.Stats.LC.Trips
		level1 := bounds.ComputeBudget(sb, m, opts, resilience.NewBudget(0, basics+1))
		if level1.Degraded != bounds.DegradeTriplewise {
			t.Fatalf("%s: mid budget degraded to %d, want DegradeTriplewise", sb.Name, level1.Degraded)
		}
		if len(level1.Triples) != 0 {
			t.Errorf("%s: level-1 set still carries triples", sb.Name)
		}
		if level1.PairVal != full.PairVal {
			t.Errorf("%s: level-1 PairVal=%v, want the full pairwise value %v",
				sb.Name, level1.PairVal, full.PairVal)
		}
		if level1.TripleVal != level1.PairVal {
			t.Errorf("%s: level-1 TripleVal=%v, want the pairwise fallback %v",
				sb.Name, level1.TripleVal, level1.PairVal)
		}

		// Degraded values never exceed the full ladder's (they are weaker,
		// or equal, lower bounds — still sound).
		for _, degraded := range []*bounds.Set{level1, level2} {
			if degraded.Tightest > full.Tightest+1e-9 {
				t.Errorf("%s: degraded Tightest %v exceeds full Tightest %v",
					sb.Name, degraded.Tightest, full.Tightest)
			}
		}
	}
}

// TestComputeBudgetUnlimited proves a generous or nil budget changes
// nothing: same values, no degradation.
func TestComputeBudgetUnlimited(t *testing.T) {
	m := model.FS4()
	opts := bounds.Options{Triplewise: true, WithLCOriginal: true}
	for _, sb := range degradeCorpus(t)[:4] {
		full := bounds.Compute(sb, m, opts)
		roomy := bounds.ComputeBudget(sb, m, opts, resilience.NewBudget(time.Hour, 1<<40))
		if roomy.Degraded != bounds.DegradeNone {
			t.Fatalf("%s: roomy budget degraded to %d", sb.Name, roomy.Degraded)
		}
		if roomy.Tightest != full.Tightest || roomy.PairVal != full.PairVal || roomy.TripleVal != full.TripleVal {
			t.Errorf("%s: budgeted values differ from unbudgeted: %v/%v vs %v/%v",
				sb.Name, roomy.PairVal, roomy.TripleVal, full.PairVal, full.TripleVal)
		}
	}
}

// TestComputeBudgetWallClock exercises the wall-clock arm: an already
// expired deadline must shed every optional stage.
func TestComputeBudgetWallClock(t *testing.T) {
	sb := degradeCorpus(t)[0]
	b := resilience.NewBudget(time.Nanosecond, 0)
	time.Sleep(time.Millisecond)
	set := bounds.ComputeBudget(sb, model.GP2(), bounds.Options{Triplewise: true}, b)
	if set.Degraded != bounds.DegradePairwise {
		t.Fatalf("expired wall budget degraded to %d, want DegradePairwise", set.Degraded)
	}
	if set.Tightest <= 0 {
		t.Error("degraded set lost the basic bounds")
	}
}
