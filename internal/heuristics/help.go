package heuristics

import (
	"balance/internal/model"
	"balance/internal/sched"
)

// Help is a dynamic heuristic built from the main concepts of Speculative
// Hedge (Deitrich & Hwu), as the paper's "Help" comparison point: before
// every scheduling decision it estimates each unscheduled branch's earliest
// completion from the partial schedule, determines which candidate
// operations help which branches (by being on the branch's dynamic critical
// path, or by consuming a resource that currently limits the branch), and
// picks the candidate with the largest summed exit probability of helped
// branches. Ties break on the number of helped branches, then the smallest
// dynamic late time, then the operation ID.
func Help() Heuristic {
	return Heuristic{Name: "Help", Run: func(sb *model.Superblock, m *model.Machine) (*sched.Schedule, sched.Stats, error) {
		return sched.Run(sb, m, newHelpPicker(sb, m))
	}}
}

// helpPicker carries the static precomputation and per-run incremental
// state of the Help heuristic.
type helpPicker struct {
	sb *model.Superblock
	m  *model.Machine

	dist     [][]int         // dist[bi][v] = longest dependence path v -> branch bi
	closures []*model.Bitset // predecessor closure per branch

	// remKind[bi][k] counts the unit-cycles (occupancy-weighted slots) that
	// unscheduled predecessors (incl. the branch) of branch bi still need
	// on resource kind k.
	remKind    [][]int
	branchDone []bool

	dynEarly []int // per-op dynamic dependence early estimate, scratch
}

// newHelpPicker precomputes the static per-branch data.
func newHelpPicker(sb *model.Superblock, m *model.Machine) *helpPicker {
	g := sb.G
	n := g.NumOps()
	h := &helpPicker{
		sb:         sb,
		m:          m,
		dist:       make([][]int, len(sb.Branches)),
		closures:   make([]*model.Bitset, len(sb.Branches)),
		remKind:    make([][]int, len(sb.Branches)),
		branchDone: make([]bool, len(sb.Branches)),
		dynEarly:   make([]int, n),
	}
	for bi, b := range sb.Branches {
		h.dist[bi] = g.LongestToTarget(b)
		h.closures[bi] = g.PredClosure(b)
		h.remKind[bi] = make([]int, m.Kinds())
		count := func(v int) {
			c := g.Op(v).Class
			h.remKind[bi][m.KindOf(c)] += m.Occupancy(c)
		}
		h.closures[bi].ForEach(count)
		count(b)
	}
	return h
}

// observe folds the engine's last event into the incremental state.
func (h *helpPicker) observe(st *sched.State) {
	v := st.LastOp
	if v < 0 {
		return
	}
	c := h.sb.G.Op(v).Class
	k := h.m.KindOf(c)
	for bi := range h.sb.Branches {
		if h.closures[bi].Has(v) || h.sb.Branches[bi] == v {
			h.remKind[bi][k] -= h.m.Occupancy(c)
		}
		if h.sb.Branches[bi] == v {
			h.branchDone[bi] = true
		}
	}
}

// updateDynEarly recomputes the dependence-based dynamic early estimate of
// every unscheduled operation given the partial schedule.
func (h *helpPicker) updateDynEarly(st *sched.State) {
	g := h.sb.G
	for _, v := range g.Topo() {
		st.Stats.PriorityWork++
		if st.IsScheduled(v) {
			h.dynEarly[v] = st.IssueCycle[v]
			continue
		}
		e := st.Cycle
		if r := st.ReadyAt(v); r > e {
			e = r
		}
		for _, p := range g.Preds(v) {
			if !st.IsScheduled(p.To) {
				if t := h.dynEarly[p.To] + p.Lat; t > e {
					e = t
				}
			}
		}
		h.dynEarly[v] = e
	}
}

// branchEstimate returns the dynamic completion estimate of branch bi and,
// per resource kind, whether that kind currently limits the branch.
func (h *helpPicker) branchEstimate(st *sched.State, bi int) (est int, critical []bool) {
	b := h.sb.Branches[bi]
	est = h.dynEarly[b]
	critical = make([]bool, h.m.Kinds())
	for k := 0; k < h.m.Kinds(); k++ {
		cnt := h.remKind[bi][k]
		if cnt == 0 {
			continue
		}
		// Cycle in which the cnt-th remaining kind-k operation can issue,
		// starting from the free slots of the current cycle.
		free := st.FreeSlots(k)
		var last int
		if cnt <= free {
			last = st.Cycle
		} else {
			last = st.Cycle + ceilDiv(cnt-free, h.m.Capacity(k))
		}
		// The branch itself is among the counted ops for its own kind; for
		// other kinds it must follow the last predecessor by ≥ 1 cycle.
		bound := last
		if k != h.m.KindOf(h.sb.G.Op(b).Class) {
			bound = last + 1
		}
		if bound > est {
			est = bound
		}
	}
	for k := 0; k < h.m.Kinds(); k++ {
		cnt := h.remKind[bi][k]
		if cnt == 0 {
			continue
		}
		free := st.FreeSlots(k)
		var last int
		if cnt <= free {
			last = st.Cycle
		} else {
			last = st.Cycle + ceilDiv(cnt-free, h.m.Capacity(k))
		}
		bound := last
		if k != h.m.KindOf(h.sb.G.Op(h.sb.Branches[bi]).Class) {
			bound = last + 1
		}
		critical[k] = bound >= est
	}
	return est, critical
}

// Pick implements sched.Picker.
func (h *helpPicker) Pick(st *sched.State) int {
	h.observe(st)
	cands := append([]int(nil), st.Candidates()...)
	if len(cands) == 0 {
		return -1
	}
	h.updateDynEarly(st)
	st.Stats.FullUpdates++

	type branchInfo struct {
		est      int
		critical []bool
	}
	infos := make([]branchInfo, len(h.sb.Branches))
	for bi := range h.sb.Branches {
		if h.branchDone[bi] {
			continue
		}
		est, crit := h.branchEstimate(st, bi)
		infos[bi] = branchInfo{est, crit}
	}

	best := -1
	var bestProb float64
	var bestCount int
	var bestLate int
	for _, v := range cands {
		prob := 0.0
		count := 0
		late := int(^uint(0) >> 1)
		k := h.m.KindOf(h.sb.G.Op(v).Class)
		for bi, b := range h.sb.Branches {
			if h.branchDone[bi] {
				continue
			}
			isPred := h.closures[bi].Has(v) || b == v
			if !isPred {
				continue
			}
			st.Stats.PriorityWork++
			helps := false
			// Dependence help: v sits on bi's dynamic critical path.
			d := h.dist[bi][v]
			if d >= 0 {
				dynLate := infos[bi].est - d
				if dynLate <= st.Cycle {
					helps = true
				}
				if dynLate < late {
					late = dynLate
				}
			}
			// Resource help: v consumes a kind that limits bi.
			if infos[bi].critical[k] {
				helps = true
			}
			if helps {
				prob += h.sb.Prob[bi]
				count++
			}
		}
		if best < 0 || prob > bestProb ||
			(prob == bestProb && count > bestCount) ||
			(prob == bestProb && count == bestCount && late < bestLate) {
			best, bestProb, bestCount, bestLate = v, prob, count, late
		}
	}
	return best
}

// ceilDiv returns ⌈a/b⌉ for a ≥ 0, b > 0.
func ceilDiv(a, b int) int { return (a + b - 1) / b }
