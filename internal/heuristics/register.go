package heuristics

import (
	"context"

	"balance/internal/engine"
)

// init self-registers the published baseline heuristics with the engine
// registry, in the paper's column order, and installs the cross-product
// schedule source behind the engine's "Best" meta-column.
func init() {
	ctxless := func(h func() Heuristic) func(context.Context) engine.ScheduleFunc {
		return func(context.Context) engine.ScheduleFunc { return h().Run }
	}
	engine.RegisterScheduler(engine.Scheduler{
		Name:        "SR",
		Aliases:     []string{"successive-retirement"},
		Description: "Successive Retirement: block-by-block, biased toward the first exit",
		Order:       1,
		Primary:     true,
		New:         ctxless(SR),
	})
	engine.RegisterScheduler(engine.Scheduler{
		Name:        "CP",
		Aliases:     []string{"critical-path"},
		Description: "Critical Path: longest dependence chains first, biased toward the last exit",
		Order:       2,
		Primary:     true,
		New:         ctxless(CP),
	})
	engine.RegisterScheduler(engine.Scheduler{
		Name:        "G*",
		Aliases:     []string{"gstar"},
		Description: "G*: successive-retirement grouping with Critical Path as secondary key",
		Order:       3,
		Primary:     true,
		New:         ctxless(GStar),
	})
	engine.RegisterScheduler(engine.Scheduler{
		Name:        "DHASY",
		Description: "Dependence Height and Speculative Yield: exit-probability-weighted critical paths",
		Order:       4,
		Primary:     true,
		New:         ctxless(DHASY),
	})
	engine.RegisterScheduler(engine.Scheduler{
		Name:        "Help",
		Aliases:     []string{"speculative-hedge"},
		Description: "Help: Speculative-Hedge-based helped-branch accounting",
		Order:       5,
		Primary:     true,
		New:         ctxless(Help),
	})
	engine.RegisterCrossProduct(CrossProductAllCtx)
}
