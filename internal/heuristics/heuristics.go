// Package heuristics implements the published superblock scheduling
// heuristics the paper evaluates against: Critical Path, Successive
// Retirement, G*, DHASY (Dependence Height and Speculative Yield), Help (a
// Speculative-Hedge-based helper heuristic), and the CP×SR×DHASY
// cross-product used by the "Best" meta-heuristic. The paper's own Balance
// heuristic lives in package core.
package heuristics

import (
	"balance/internal/model"
	"balance/internal/sched"
)

// Heuristic is a named scheduling algorithm.
type Heuristic struct {
	// Name is the display name used in tables ("CP", "SR", ...).
	Name string
	// Run schedules the superblock on the machine.
	Run func(sb *model.Superblock, m *model.Machine) (*sched.Schedule, sched.Stats, error)
}

// CP returns the Critical Path heuristic: operations at the head of the
// longest dependence chains first. It is biased toward the last exit.
func CP() Heuristic {
	return Heuristic{Name: "CP", Run: func(sb *model.Superblock, m *model.Machine) (*sched.Schedule, sched.Stats, error) {
		return sched.ListSchedule(sb, m, sched.IntsToFloats(sb.G.Heights()))
	}}
}

// SR returns the Successive Retirement heuristic: all operations of block i
// before any operation of block i+1, Critical Path within a block. It is
// biased toward the first exit.
func SR() Heuristic {
	return Heuristic{Name: "SR", Run: func(sb *model.Superblock, m *model.Machine) (*sched.Schedule, sched.Stats, error) {
		n := sb.G.NumOps()
		blockKey := make([]float64, n)
		for v := 0; v < n; v++ {
			blockKey[v] = -float64(sb.Block[v])
		}
		return sched.ListSchedule(sb, m, blockKey, sched.IntsToFloats(sb.G.Heights()))
	}}
}

// DHASY returns the Dependence Height and Speculative Yield heuristic: the
// priority of an operation is Σ_b w_b·(CP+1-LateDC_b[v]) over every
// succeeding branch b, i.e. critical-path priorities weighted by exit
// probabilities.
func DHASY() Heuristic {
	return Heuristic{Name: "DHASY", Run: func(sb *model.Superblock, m *model.Machine) (*sched.Schedule, sched.Stats, error) {
		return sched.ListSchedule(sb, m, DHASYPriority(sb))
	}}
}

// DHASYPriority computes the DHASY priority of every operation.
func DHASYPriority(sb *model.Superblock) []float64 {
	g := sb.G
	n := g.NumOps()
	early := g.EarlyDC()
	cp := 0
	for _, e := range early {
		if e > cp {
			cp = e
		}
	}
	prio := make([]float64, n)
	for bi, b := range sb.Branches {
		w := sb.Prob[bi]
		dist := g.LongestToTarget(b)
		for v := 0; v < n; v++ {
			if dist[v] < 0 {
				continue
			}
			lateDC := early[b] - dist[v]
			prio[v] += w * float64(cp+1-lateDC)
		}
	}
	return prio
}

// GStar returns the G* heuristic with Critical Path as the secondary
// heuristic. G* repeatedly finds the critical branch — the one minimizing
// (issue cycle of a CP schedule of its predecessor subgraph) / (cumulative
// exit probability) — retires that branch's remaining predecessors as the
// next priority group, and recurses on the rest.
func GStar() Heuristic {
	return Heuristic{Name: "G*", Run: func(sb *model.Superblock, m *model.Machine) (*sched.Schedule, sched.Stats, error) {
		groups, stats := gstarGroups(sb, m)
		n := sb.G.NumOps()
		groupKey := make([]float64, n)
		for v := 0; v < n; v++ {
			groupKey[v] = -float64(groups[v])
		}
		s, runStats, err := sched.ListSchedule(sb, m, groupKey, sched.IntsToFloats(sb.G.Heights()))
		runStats.Add(&stats)
		return s, runStats, err
	}}
}

// gstarGroups assigns each operation its G* retirement group.
func gstarGroups(sb *model.Superblock, m *model.Machine) ([]int, sched.Stats) {
	g := sb.G
	n := g.NumOps()
	var stats sched.Stats
	group := make([]int, n)
	for v := range group {
		group[v] = -1
	}
	remaining := model.NewBitset(n)
	for v := 0; v < n; v++ {
		remaining.Set(v)
	}
	remBranch := make([]bool, len(sb.Branches))
	remCount := len(sb.Branches)
	for i := range remBranch {
		remBranch[i] = true
	}
	const eps = 1e-9

	for gi := 0; remCount > 0; gi++ {
		bestIdx := -1
		bestRank := 0.0
		probPrefix := 0.0
		for i, b := range sb.Branches {
			if !remBranch[i] {
				continue
			}
			probPrefix += sb.Prob[i]
			include := model.NewBitset(n)
			g.PredClosure(b).ForEach(func(v int) {
				if remaining.Has(v) {
					include.Set(v)
				}
			})
			include.Set(b)
			cycle, asapStats := sched.AsapSchedule(sb, m, include, b)
			stats.Add(&asapStats)
			rank := float64(cycle+1) / (probPrefix + eps)
			if bestIdx < 0 || rank < bestRank {
				bestIdx, bestRank = i, rank
			}
		}
		b := sb.Branches[bestIdx]
		g.PredClosure(b).ForEach(func(v int) {
			if remaining.Has(v) {
				group[v] = gi
				remaining.Clear(v)
			}
		})
		group[b] = gi
		remaining.Clear(b)
		// Retiring a branch retires every earlier branch too (they precede
		// it in the closure).
		for i := 0; i <= bestIdx; i++ {
			if remBranch[i] {
				remBranch[i] = false
				remCount--
			}
		}
	}
	last := 0
	for _, gi := range group {
		if gi >= 0 && gi+1 > last {
			last = gi + 1
		}
	}
	for v := range group {
		if group[v] < 0 {
			group[v] = last
		}
	}
	return group, stats
}
