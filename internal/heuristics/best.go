package heuristics

import (
	"context"
	"fmt"

	"balance/internal/model"
	"balance/internal/sched"
)

// CrossProductGrid is the per-axis resolution of the CP×SR mixing grid; the
// paper invokes the list scheduler 121 times, which we reconstruct as the
// 11×11 grid (α, β) ∈ {0,…,10}² with priority
// normDHASY + (α/10)·normCP + (β/10)·normSR.
const CrossProductGrid = 11

// normalize rescales a key to [0, 1] (a constant key becomes all zeros).
func normalize(key []float64) []float64 {
	out := make([]float64, len(key))
	if len(key) == 0 {
		return out
	}
	min, max := key[0], key[0]
	for _, v := range key {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	span := max - min
	if span == 0 {
		return out
	}
	for i, v := range key {
		out[i] = (v - min) / span
	}
	return out
}

// crossKeys returns the three normalized single-float priority functions
// combined by the cross product: CP (heights), SR (block-major, height
// minor, flattened into one float), and DHASY.
func crossKeys(sb *model.Superblock) (cp, sr, dh []float64) {
	n := sb.G.NumOps()
	heights := sb.G.Heights()
	maxH := 0
	for _, h := range heights {
		if h > maxH {
			maxH = h
		}
	}
	cpKey := make([]float64, n)
	srKey := make([]float64, n)
	blocks := len(sb.Branches)
	for v := 0; v < n; v++ {
		cpKey[v] = float64(heights[v])
		srKey[v] = float64(blocks-1-sb.Block[v])*float64(maxH+1) + float64(heights[v])
	}
	return normalize(cpKey), normalize(srKey), normalize(DHASYPriority(sb))
}

// CrossProductAll runs the 121 mixed-priority list schedules and returns
// them all, with accumulated statistics.
func CrossProductAll(sb *model.Superblock, m *model.Machine) ([]*sched.Schedule, sched.Stats, error) {
	return CrossProductAllCtx(context.Background(), sb, m)
}

// CrossProductAllCtx is CrossProductAll with cancellation: the grid
// enumeration stops with ctx.Err() at the next grid row once ctx is done.
func CrossProductAllCtx(ctx context.Context, sb *model.Superblock, m *model.Machine) ([]*sched.Schedule, sched.Stats, error) {
	cpKey, srKey, dhKey := crossKeys(sb)
	n := sb.G.NumOps()
	mixed := make([]float64, n)
	var total sched.Stats
	out := make([]*sched.Schedule, 0, CrossProductGrid*CrossProductGrid)
	for a := 0; a < CrossProductGrid; a++ {
		if err := ctx.Err(); err != nil {
			return nil, total, err
		}
		for b := 0; b < CrossProductGrid; b++ {
			alpha := float64(a) / float64(CrossProductGrid-1)
			beta := float64(b) / float64(CrossProductGrid-1)
			for v := 0; v < n; v++ {
				mixed[v] = dhKey[v] + alpha*cpKey[v] + beta*srKey[v]
			}
			// ListSchedule runs synchronously and the picker does not
			// retain its key slices, so one mixed buffer serves every
			// grid point.
			s, stats, err := sched.ListSchedule(sb, m, mixed)
			total.Add(&stats)
			if err != nil {
				return nil, total, fmt.Errorf("cross product (α=%d β=%d): %w", a, b, err)
			}
			out = append(out, s)
		}
	}
	return out, total, nil
}

// CrossProduct runs the 121 mixed-priority list schedules and returns the
// cheapest, along with accumulated statistics.
func CrossProduct(sb *model.Superblock, m *model.Machine) (*sched.Schedule, sched.Stats, error) {
	return CrossProductCtx(context.Background(), sb, m)
}

// CrossProductCtx is CrossProduct with cancellation.
func CrossProductCtx(ctx context.Context, sb *model.Superblock, m *model.Machine) (*sched.Schedule, sched.Stats, error) {
	all, total, err := CrossProductAllCtx(ctx, sb, m)
	if err != nil {
		return nil, total, err
	}
	var best *sched.Schedule
	bestCost := 0.0
	for _, s := range all {
		if cost := Cost(sb, s); best == nil || cost < bestCost {
			best, bestCost = s, cost
		}
	}
	return best, total, nil
}

// Cost is a convenience alias for sched.Cost.
func Cost(sb *model.Superblock, s *sched.Schedule) float64 { return sched.Cost(sb, s) }

// Best builds the "Best" meta-heuristic over the given primary heuristics:
// it keeps the cheapest schedule among the primaries plus the 121
// cross-product schedules (127 schedules when given the paper's six
// primaries).
func Best(primaries []Heuristic) Heuristic {
	return BestCtx(context.Background(), primaries)
}

// BestCtx is Best bound to a context: the primary runs and the grid
// enumeration are abandoned with ctx.Err() once ctx is done.
func BestCtx(ctx context.Context, primaries []Heuristic) Heuristic {
	return Heuristic{Name: "Best", Run: func(sb *model.Superblock, m *model.Machine) (*sched.Schedule, sched.Stats, error) {
		var total sched.Stats
		var best *sched.Schedule
		bestCost := 0.0
		for _, h := range primaries {
			if err := ctx.Err(); err != nil {
				return nil, total, err
			}
			s, stats, err := h.Run(sb, m)
			total.Add(&stats)
			if err != nil {
				return nil, total, fmt.Errorf("best: %s: %w", h.Name, err)
			}
			if cost := sched.Cost(sb, s); best == nil || cost < bestCost {
				best, bestCost = s, cost
			}
		}
		s, stats, err := CrossProductCtx(ctx, sb, m)
		total.Add(&stats)
		if err != nil {
			return nil, total, err
		}
		if cost := sched.Cost(sb, s); best == nil || cost < bestCost {
			best = s
		}
		return best, total, nil
	}}
}
