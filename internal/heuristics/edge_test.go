package heuristics

import (
	"testing"

	"balance/internal/model"
	"balance/internal/sched"
)

// all returns the five package heuristics.
func all() []Heuristic {
	return []Heuristic{CP(), SR(), GStar(), DHASY(), Help()}
}

func TestSingleBranchSuperblock(t *testing.T) {
	b := model.NewBuilder("lone")
	b.Branch(0)
	sb := b.MustBuild()
	for _, m := range model.Machines() {
		for _, h := range all() {
			s := runOn(t, h, sb, m)
			if s.Cycle[0] != 0 {
				t.Errorf("%s on %s: lone branch at %d", h.Name, m.Name, s.Cycle[0])
			}
		}
	}
}

func TestBranchOnlySuperblock(t *testing.T) {
	// Five chained branches and nothing else: the control edges force one
	// branch per cycle.
	b := model.NewBuilder("brs")
	for i := 0; i < 4; i++ {
		b.Branch(0.1)
	}
	b.Branch(0)
	sb := b.MustBuild()
	for _, h := range all() {
		s := runOn(t, h, sb, model.FS4())
		for i, br := range sb.Branches {
			if s.Cycle[br] != i {
				t.Errorf("%s: branch %d at cycle %d", h.Name, i, s.Cycle[br])
			}
		}
	}
}

func TestZeroProbabilitySideExits(t *testing.T) {
	b := model.NewBuilder("zero")
	o0 := b.Int()
	b.Branch(0, o0) // never taken
	o1 := b.Int()
	b.Branch(0, o1)
	sb := b.MustBuild()
	for _, h := range all() {
		s := runOn(t, h, sb, model.GP1())
		// Cost counts only the final exit; any legal schedule with the
		// final exit ASAP is optimal. Final exit: ops serialized on GP1.
		if c := sched.Cost(sb, s); c < 3 {
			t.Errorf("%s: impossible cost %v", h.Name, c)
		}
	}
}

func TestFloatHeavyOnFS(t *testing.T) {
	// One float unit on FS4: divides serialize by latency pressure.
	b := model.NewBuilder("float")
	d0 := b.Op(model.FloatDiv)
	d1 := b.Op(model.FloatDiv)
	a := b.Op(model.FloatAdd, d0, d1)
	b.Branch(0, a)
	sb := b.MustBuild()
	for _, h := range all() {
		s := runOn(t, h, sb, model.FS4())
		if s.Cycle[d0] == s.Cycle[d1] {
			t.Errorf("%s: two divides share the single float unit", h.Name)
		}
	}
	// On FS8 (two float units) they can co-issue.
	s := runOn(t, CP(), sb, model.FS8())
	if s.Cycle[d0] != s.Cycle[d1] {
		t.Errorf("FS8: divides at %d and %d, want same cycle", s.Cycle[d0], s.Cycle[d1])
	}
}

func TestGStarZeroProbabilities(t *testing.T) {
	// All exits at probability zero except an implicit final exit with 1:
	// rank denominators hit the epsilon path and must not blow up.
	b := model.NewBuilder("eps")
	o0 := b.Int()
	b.Branch(0, o0)
	o1 := b.Int()
	b.Branch(0, o1)
	o2 := b.Int()
	b.Branch(0, o2) // final gets probability 1
	sb := b.MustBuild()
	runOn(t, GStar(), sb, model.GP2())
}

func TestDHASYWeighting(t *testing.T) {
	// Two ops of equal height; one precedes both branches, one only the
	// final exit. The former must have a strictly higher DHASY priority.
	b := model.NewBuilder("weights")
	both := b.Int()
	b.Branch(0.5, both)
	onlyLast := b.Int()
	b.Branch(0, onlyLast)
	sb := b.MustBuild()
	prio := DHASYPriority(sb)
	if prio[both] <= prio[onlyLast] {
		t.Errorf("op helping both branches scored %v, op helping one %v", prio[both], prio[onlyLast])
	}
}

func TestHelpPrefersSharedResourceOps(t *testing.T) {
	// Figure-2 setup: Help gives ops 0-2 priority over op 4 because they
	// help both branches (this is exactly the behavior Observation 1
	// criticizes, so we assert it to keep Help faithful).
	b := model.NewBuilder("obs1")
	o0 := b.Int()
	o1 := b.Int()
	o2 := b.Int()
	b.Branch(0.3, o0, o1, o2)
	o4 := b.Int()
	o5 := b.AddOp(model.Int)
	b.DepLatency(o4, o5, 2)
	b.Branch(0, o5)
	sb := b.MustBuild()
	s := runOn(t, Help(), sb, model.GP2())
	if s.Cycle[o0] != 0 || s.Cycle[o1] != 0 {
		t.Errorf("Help scheduled ops 0,1 at %d,%d, want 0,0", s.Cycle[o0], s.Cycle[o1])
	}
	if s.Cycle[sb.Branches[1]] != 4 {
		t.Errorf("Help final exit at %d, want 4 (the published help-based schedule)", s.Cycle[sb.Branches[1]])
	}
}

func TestBestIsMinimumOfParts(t *testing.T) {
	b := model.NewBuilder("min")
	o0 := b.Int()
	o1 := b.Int(o0)
	b.Branch(0.4, o1)
	o2 := b.Int()
	o3 := b.Int(o2)
	b.Branch(0, o3)
	sb := b.MustBuild()
	m := model.GP2()
	best := runOn(t, Best(all()), sb, m)
	bc := sched.Cost(sb, best)
	for _, h := range all() {
		if c := sched.Cost(sb, runOn(t, h, sb, m)); c < bc-1e-9 {
			t.Errorf("Best %v beaten by %s %v", bc, h.Name, c)
		}
	}
	cp, _, err := CrossProduct(sb, m)
	if err != nil {
		t.Fatal(err)
	}
	if c := sched.Cost(sb, cp); c < bc-1e-9 {
		t.Errorf("Best %v beaten by cross product %v", bc, c)
	}
}

func TestNormalizeEdgeCases(t *testing.T) {
	if out := normalize(nil); len(out) != 0 {
		t.Error("nil input")
	}
	out := normalize([]float64{3, 3, 3})
	for _, v := range out {
		if v != 0 {
			t.Error("constant key must normalize to zeros")
		}
	}
	out = normalize([]float64{-2, 0, 2})
	if out[0] != 0 || out[2] != 1 || out[1] != 0.5 {
		t.Errorf("normalize = %v", out)
	}
}
