package heuristics

import (
	"math/rand"
	"testing"

	"balance/internal/exact"
	"balance/internal/figures"
	"balance/internal/model"
	"balance/internal/sched"
	"balance/internal/testutil"
)

func runOn(t *testing.T, h Heuristic, sb *model.Superblock, m *model.Machine) *sched.Schedule {
	t.Helper()
	s, _, err := h.Run(sb, m)
	if err != nil {
		t.Fatalf("%s on %s: %v", h.Name, sb.Name, err)
	}
	if err := sched.Verify(sb, m, s); err != nil {
		t.Fatalf("%s produced an illegal schedule: %v", h.Name, err)
	}
	return s
}

// TestFigure1CriticalPath reproduces Figure 1b: Critical Path issues the
// final exit as early as possible (cycle 8) but delays the side exit by
// four cycles (to cycle 6).
func TestFigure1CriticalPath(t *testing.T) {
	sb := figures.Figure1(0.25)
	m := model.GP2()
	s := runOn(t, CP(), sb, m)
	if c := s.Cycle[sb.Branches[1]]; c != 8 {
		t.Errorf("CP: final exit at %d, want 8", c)
	}
	if c := s.Cycle[sb.Branches[0]]; c != 6 {
		t.Errorf("CP: side exit at %d, want 6 (delayed by 4)", c)
	}
}

// TestFigure1SuccessiveRetirement reproduces Figure 1c: SR schedules both
// exits as early as possible (cycles 2 and 8) — the optimal schedule.
func TestFigure1SuccessiveRetirement(t *testing.T) {
	sb := figures.Figure1(0.25)
	m := model.GP2()
	s := runOn(t, SR(), sb, m)
	if c := s.Cycle[sb.Branches[0]]; c != 2 {
		t.Errorf("SR: side exit at %d, want 2", c)
	}
	if c := s.Cycle[sb.Branches[1]]; c != 8 {
		t.Errorf("SR: final exit at %d, want 8", c)
	}
}

// TestFigure1GStar: the paper notes that on Figure 1 only the last branch
// is critical, so G* degenerates to Critical Path.
func TestFigure1GStar(t *testing.T) {
	sb := figures.Figure1(0.25)
	m := model.GP2()
	sg := runOn(t, GStar(), sb, m)
	scp := runOn(t, CP(), sb, m)
	if sched.Cost(sb, sg) != sched.Cost(sb, scp) {
		t.Errorf("G* cost %v != CP cost %v on figure 1", sched.Cost(sb, sg), sched.Cost(sb, scp))
	}
}

// TestFigure2Help reproduces Observation 1: a help-based heuristic gives
// ops 0,1,2 top priority (they help both branches) and thereby delays the
// final exit by one cycle (to 4); the optimum is (2, 3).
func TestFigure2Help(t *testing.T) {
	sb := figures.Figure2(0.3)
	m := model.GP2()
	s := runOn(t, Help(), sb, m)
	br6 := sb.Branches[1]
	if s.Cycle[br6] != 4 {
		t.Logf("note: Help issued br6 at %d (paper's help-based schedule gives 4)", s.Cycle[br6])
	}
	// Help must never beat the exact optimum.
	_, opt, err := exact.Optimal(sb, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := sched.Cost(sb, s); c < opt-1e-9 {
		t.Fatalf("Help cost %v below optimum %v", c, opt)
	}
}

func TestDHASYPriorityShape(t *testing.T) {
	sb := figures.Figure1(0.25)
	prio := DHASYPriority(sb)
	// The head of the long chain must outrank a trailing filler.
	if prio[4] <= prio[15] {
		t.Errorf("DHASY: chain head %v not above filler %v", prio[4], prio[15])
	}
	// Every op preceding both branches scores at least as much as an op of
	// equal height preceding only the final exit.
	if prio[0] <= 0 {
		t.Errorf("DHASY priority of op 0 = %v, want > 0", prio[0])
	}
}

func TestAllHeuristicsLegalOnAllMachines(t *testing.T) {
	hs := []Heuristic{CP(), SR(), GStar(), DHASY(), Help()}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 25; i++ {
		sb := testutil.RandomSuperblock(rng, 30)
		for _, m := range model.Machines() {
			for _, h := range hs {
				runOn(t, h, sb, m)
			}
		}
	}
}

func TestCrossProductAndBest(t *testing.T) {
	sb := figures.Figure4(0.25)
	m := model.GP2()
	s, stats, err := CrossProduct(sb, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Verify(sb, m, s); err != nil {
		t.Fatal(err)
	}
	if stats.Decisions == 0 {
		t.Error("cross product recorded no work")
	}

	primaries := []Heuristic{CP(), SR(), GStar(), DHASY(), Help()}
	best := Best(primaries)
	sb2 := figures.Figure1(0.25)
	sBest := runOn(t, best, sb2, m)
	cBest := sched.Cost(sb2, sBest)
	for _, h := range primaries {
		sh := runOn(t, h, sb2, m)
		if c := sched.Cost(sb2, sh); c < cBest-1e-9 {
			t.Errorf("Best (%v) worse than %s (%v)", cBest, h.Name, c)
		}
	}
}

func TestSRFavorsNarrowMachines(t *testing.T) {
	// On GP1 Successive Retirement retires the first block as early as any
	// schedule can; its side-exit cycle must match the optimum's.
	sb := figures.Figure2(0.5)
	m := model.GP1()
	s := runOn(t, SR(), sb, m)
	_, opt, err := exact.Optimal(sb, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := sched.Cost(sb, s); c > opt+1e-9 {
		t.Logf("SR cost %v vs optimum %v on GP1 (informational)", c, opt)
	}
	if c := s.Cycle[sb.Branches[0]]; c != 3 {
		t.Errorf("SR side exit on GP1 at %d, want 3 (three preds serial)", c)
	}
}

func TestGStarGroupsCoverAllOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		sb := testutil.RandomSuperblock(rng, 20)
		groups, _ := gstarGroups(sb, model.GP2())
		for v, g := range groups {
			if g < 0 {
				t.Fatalf("op %d has no G* group", v)
			}
		}
	}
}
