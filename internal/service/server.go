package service

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"time"

	"balance/internal/bounds"
	"balance/internal/core"
	"balance/internal/engine"
	"balance/internal/model"
	"balance/internal/sched"
	"balance/internal/telemetry"
	"balance/internal/wire"
)

// finish records the common per-request epilogue: the status-class
// counter, the request-latency histogram, and the span end. Every handler
// routes its exit through it exactly once, so status → counter
// classification lives in exactly one place: 429 and 503 are backpressure
// and lifecycle rejections, 504 a deadline expiry, remaining 4xx caller
// errors, remaining 5xx server failures.
func finish(endpoint string, start time.Time, sp telemetry.Span, status int) {
	switch {
	case status >= 200 && status < 300:
		telOK.Inc()
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		telRejected.Inc()
	case status == http.StatusGatewayTimeout:
		telDeadline.Inc()
	case status >= 500:
		telFailed.Inc()
	default:
		telBadReq.Inc()
	}
	telServeNS.ObserveDuration(time.Since(start))
	if sp.Active() {
		sp.End(
			telemetry.String("endpoint", endpoint),
			telemetry.Int("status", int64(status)),
		)
	}
}

// writeRunError maps an evaluation failure to a response status: deadline
// expiry (despite the degradation ladder — e.g. it struck between the
// bound stage and the schedulers) is 504, client disconnect 503, anything
// else a 500 carrying the error text.
func writeRunError(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		wire.WriteError(w, http.StatusGatewayTimeout, "deadline exceeded during evaluation")
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		wire.WriteError(w, http.StatusServiceUnavailable, "request cancelled")
		return http.StatusServiceUnavailable
	default:
		wire.WriteError(w, http.StatusInternalServerError, "evaluation failed: %v", err)
		return http.StatusInternalServerError
	}
}

// handleSchedule is POST /v1/schedule: the full evaluation — bound ladder
// under the deadline budget, every requested scheduler, optional Best
// meta-column — through the shared result cache with in-flight coalescing.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	telRequests.Inc()
	sp, ctx := telemetry.Default().StartSpanCtx(r.Context(), "service.request")
	status := http.StatusOK
	defer func() { finish("schedule", start, sp, status) }()

	var req wire.ScheduleRequest
	if err := wire.DecodeJSON(http.MaxBytesReader(w, r.Body, wire.MaxBodyBytes), &req); err != nil {
		status = http.StatusBadRequest
		wire.WriteError(w, status, "decode request: %v", err)
		return
	}
	sb, m, err := resolveInput(req.Superblock, req.Index, req.Machine)
	if err != nil {
		status = http.StatusBadRequest
		wire.WriteError(w, status, "%v", err)
		return
	}
	schedulers := req.Schedulers
	if len(schedulers) == 0 {
		schedulers = s.cfg.Schedulers
	}

	// The deadline wraps the context before admission so it also covers
	// time spent queued: a request that waits out its whole deadline in
	// the queue is answered 504 without ever computing.
	if d := s.deadline(req.DeadlineMS); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	release, reject := s.admit(ctx, w)
	if reject != 0 {
		status = reject
		return
	}
	defer release()

	ch, err := engine.Run(ctx, engine.Config{
		Jobs:       []engine.Job{{Benchmark: "service", SB: sb}},
		Machine:    m,
		Bounds:     bounds.Options{Triplewise: req.Triplewise},
		Schedulers: schedulers,
		Best:       req.Best,
		Workers:    1,
		Memo:       s.memo,
		JobBudget:  s.budget(ctx),
	})
	if err != nil {
		// Synchronous Run errors are configuration errors — an unknown
		// scheduler name's message lists every registered heuristic.
		status = http.StatusBadRequest
		wire.WriteError(w, status, "%v", err)
		return
	}
	results, err := engine.Collect(ch)
	if err != nil {
		status = writeRunError(w, err)
		return
	}
	res := results[0]
	resp := wire.ScheduleResponse{
		Name:      sb.Name,
		Machine:   m.Name,
		Costs:     res.Cost,
		Tightest:  res.Bounds.Tightest,
		Degraded:  res.Degraded,
		Trivial:   res.Trivial,
		Cached:    res.Cached,
		Coalesced: res.Coalesced,
	}
	if req.IncludeSchedule {
		detail, err := scheduleDetail(ctx, res.Cost, sb, m)
		if err != nil {
			status = writeRunError(w, err)
			return
		}
		resp.Schedule = detail
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	wire.WriteJSON(w, http.StatusOK, resp)
}

// scheduleDetail re-runs the cheapest evaluated heuristic to materialize
// its issue-cycle assignment. Schedules are not memoized (only costs are),
// so this is the one deliberately uncached piece of the response.
func scheduleDetail(ctx context.Context, costs map[string]float64, sb *model.Superblock, m *model.Machine) (*wire.ScheduleDetail, error) {
	bestName := ""
	bestCost := 0.0
	for name, c := range costs {
		if name == "Best" {
			continue // the meta-column's schedule is not a single heuristic's
		}
		if bestName == "" || c < bestCost {
			bestName, bestCost = name, c
		}
	}
	sched0, err := engine.SchedulerByName(bestName)
	if err != nil {
		return nil, err
	}
	inst := sched0.Instantiate(ctx)
	sc, _, err := inst.Run(sb, m)
	if err != nil {
		return nil, err
	}
	return &wire.ScheduleDetail{
		Heuristic: bestName,
		Cost:      sched.Cost(sb, sc),
		Cycles:    sc.Cycle,
	}, nil
}

// handleBounds is POST /v1/bounds: the lower-bound set only. The bound
// kernel's per-(graph, machine) cache already dedups the heavy artifacts,
// so this endpoint skips the result cache and runs the ladder directly
// under the deadline budget.
func (s *Server) handleBounds(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	telRequests.Inc()
	sp, ctx := telemetry.Default().StartSpanCtx(r.Context(), "service.request")
	status := http.StatusOK
	defer func() { finish("bounds", start, sp, status) }()

	var req wire.BoundsRequest
	if err := wire.DecodeJSON(http.MaxBytesReader(w, r.Body, wire.MaxBodyBytes), &req); err != nil {
		status = http.StatusBadRequest
		wire.WriteError(w, status, "decode request: %v", err)
		return
	}
	sb, m, err := resolveInput(req.Superblock, req.Index, req.Machine)
	if err != nil {
		status = http.StatusBadRequest
		wire.WriteError(w, status, "%v", err)
		return
	}

	if d := s.deadline(req.DeadlineMS); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	release, reject := s.admit(ctx, w)
	if reject != 0 {
		status = reject
		return
	}
	defer release()

	set := bounds.ComputeBudgetCtx(ctx, sb, m,
		bounds.Options{Triplewise: req.Triplewise},
		s.budget(ctx).New())
	resp := wire.BoundsResponse{
		Name:    sb.Name,
		Machine: m.Name,
		Bounds: map[string]float64{
			"CP":       set.CPVal,
			"Hu":       set.HuVal,
			"RJ":       set.RJVal,
			"LC":       set.LCVal,
			"Pairwise": set.PairVal,
		},
		Tightest:  set.Tightest,
		Degraded:  set.Degraded,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	if req.Triplewise {
		resp.Bounds["Triplewise"] = set.TripleVal
	}
	wire.WriteJSON(w, http.StatusOK, resp)
}

// handleExplain is POST /v1/explain: one Balance run with the
// decision-explain channel attached, returning the versioned per-decision
// records (the HTTP form of cmd/sbexplain -json).
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	telRequests.Inc()
	sp, ctx := telemetry.Default().StartSpanCtx(r.Context(), "service.request")
	status := http.StatusOK
	defer func() { finish("explain", start, sp, status) }()

	var req wire.ExplainRequest
	if err := wire.DecodeJSON(http.MaxBytesReader(w, r.Body, wire.MaxBodyBytes), &req); err != nil {
		status = http.StatusBadRequest
		wire.WriteError(w, status, "decode request: %v", err)
		return
	}
	sb, m, err := resolveInput(req.Superblock, req.Index, req.Machine)
	if err != nil {
		status = http.StatusBadRequest
		wire.WriteError(w, status, "%v", err)
		return
	}
	cfg := core.DefaultConfig()
	cfg.Tradeoff = !req.NoTradeoff
	switch req.Update {
	case "", "per-op":
		cfg.Update = core.UpdatePerOp
	case "light":
		cfg.Update = core.UpdateLight
	case "cycle":
		cfg.Update = core.UpdatePerCycle
	default:
		status = http.StatusBadRequest
		wire.WriteError(w, status, "unknown update policy %q (available: per-op, light, cycle)", req.Update)
		return
	}

	if d := s.deadline(req.DeadlineMS); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	release, reject := s.admit(ctx, w)
	if reject != 0 {
		status = reject
		return
	}
	defer release()

	p := core.NewPicker(sb, m, cfg)
	var decs []core.Decision
	p.Explain(func(dec *core.Decision) { decs = append(decs, *dec) })
	sc, _, err := sched.RunCtx(ctx, sb, m, p)
	if err != nil {
		status = writeRunError(w, err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, wire.ExplainResponse{
		Name:      sb.Name,
		Machine:   m.Name,
		Cost:      sched.Cost(sb, sc),
		Decisions: decs,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// handleHealth is GET /healthz: liveness plus the load and cache gauges a
// load balancer or soak driver watches. It bypasses admission control —
// health checks must answer during overload; that is the point.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := "ok"
	if s.draining.Load() {
		st = "draining"
	}
	cs := s.memo.CacheStats()
	wire.WriteJSON(w, http.StatusOK, wire.Health{
		Status:     st,
		InFlight:   s.inflight.Load(),
		Queued:     s.admitted.Load(),
		Goroutines: runtime.NumGoroutine(),
		Cache: wire.CacheHealth{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Coalesced: cs.Coalesced,
			Evictions: cs.Evictions,
			Size:      cs.Size,
			Capacity:  cs.Capacity,
		},
		UptimeMS: s.uptimeMS(),
	})
}
