package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/pprof"
	"time"

	"balance/internal/bounds"
	"balance/internal/core"
	"balance/internal/engine"
	"balance/internal/model"
	"balance/internal/sched"
	"balance/internal/telemetry"
	"balance/internal/wire"
)

// reqObs carries one request's observability state from entry to
// epilogue: identity (endpoint, span), outcome (status), and the
// provenance fields the access log reports (queue wait, cache/coalesce,
// budget degradation). Handlers create it first thing with begin and
// route their exit through finish exactly once.
type reqObs struct {
	s        *Server
	endpoint string
	start    time.Time
	sp       telemetry.Span
	// trace is the ID exemplars and the access log report: the request
	// span's trace when a sink is active, else the caller's propagated
	// trace — so a client-side trace file still resolves against server
	// logs even when the server records no spans of its own.
	trace  uint64
	status int

	queueWait time.Duration
	cached    bool
	coalesced bool
	degraded  int
	tierMS    int64
}

// begin opens one request's span and observation record. The caller's
// SB-Trace header (if well-formed) parents the request span, so client
// and server spans merge into one trace; a malformed header starts a
// fresh root. The goroutine is also labeled (endpoint, trace) for the
// continuous profiler, and the labels flow into the engine workers the
// request spawns.
func (s *Server) begin(r *http.Request, endpoint string) (*reqObs, context.Context) {
	telRequests.Inc()
	ctx := wire.ExtractTrace(r)
	inbound := telemetry.SpanFromContext(ctx)
	sp, ctx := telemetry.Default().StartSpanCtx(ctx, "service.request")
	o := &reqObs{
		s:        s,
		endpoint: endpoint,
		start:    time.Now(),
		sp:       sp,
		trace:    sp.Context().Trace,
		status:   http.StatusOK,
	}
	if o.trace == 0 {
		o.trace = inbound.Trace
	}
	labels := []string{"endpoint", endpoint}
	if o.trace != 0 {
		labels = append(labels, "trace", fmt.Sprintf("%016x", o.trace))
	}
	ctx = pprof.WithLabels(ctx, pprof.Labels(labels...))
	pprof.SetGoroutineLabels(ctx)
	return o, ctx
}

// finish records the common per-request epilogue: the status-class
// counter, the request-latency histogram (with the trace ID as the
// bucket exemplar), the span end, and the access-log line. The status →
// counter classification lives in exactly one place: 429 and 503 are
// backpressure and lifecycle rejections, 504 a deadline expiry,
// remaining 4xx caller errors, remaining 5xx server failures.
func (o *reqObs) finish() {
	outcome := "ok"
	switch {
	case o.status >= 200 && o.status < 300:
		telOK.Inc()
		if o.degraded > 0 {
			telDegraded.Inc()
		}
	case o.status == http.StatusTooManyRequests || o.status == http.StatusServiceUnavailable:
		outcome = "rejected"
		telRejected.Inc()
	case o.status == http.StatusGatewayTimeout:
		outcome = "deadline"
		telDeadline.Inc()
	case o.status >= 500:
		outcome = "failed"
		telFailed.Inc()
	default:
		outcome = "bad_request"
		telBadReq.Inc()
	}
	// Read the slow-tail bar before this request's own observation moves
	// it, so "slow" means slow against the traffic that preceded it.
	var slowNS int64
	if o.s.access != nil {
		slowNS = telServeNS.WindowQuantile(0.99, 0)
	}
	total := time.Since(o.start)
	telServeNS.ObserveTrace(int64(total), o.trace)
	if o.sp.Active() {
		o.sp.End(
			telemetry.String("endpoint", o.endpoint),
			telemetry.Int("status", int64(o.status)),
		)
	}
	if o.s.access != nil {
		o.s.access.record(o, outcome, total, slowNS)
	}
	// Handler goroutines are reused across requests: clear the profiler
	// labels so the next request (or idle time) is not attributed here.
	pprof.SetGoroutineLabels(context.Background())
}

// writeRunError maps an evaluation failure to a response status: deadline
// expiry (despite the degradation ladder — e.g. it struck between the
// bound stage and the schedulers) is 504, client disconnect 503, anything
// else a 500 carrying the error text.
func writeRunError(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		wire.WriteError(w, http.StatusGatewayTimeout, "deadline exceeded during evaluation")
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		wire.WriteError(w, http.StatusServiceUnavailable, "request cancelled")
		return http.StatusServiceUnavailable
	default:
		wire.WriteError(w, http.StatusInternalServerError, "evaluation failed: %v", err)
		return http.StatusInternalServerError
	}
}

// handleSchedule is POST /v1/schedule: the full evaluation — bound ladder
// under the deadline budget, every requested scheduler, optional Best
// meta-column — through the shared result cache with in-flight coalescing.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	obs, ctx := s.begin(r, "schedule")
	defer obs.finish()

	var req wire.ScheduleRequest
	if err := wire.DecodeJSON(http.MaxBytesReader(w, r.Body, wire.MaxBodyBytes), &req); err != nil {
		obs.status = http.StatusBadRequest
		wire.WriteError(w, obs.status, "decode request: %v", err)
		return
	}
	sb, m, err := resolveInput(req.Superblock, req.Index, req.Machine)
	if err != nil {
		obs.status = http.StatusBadRequest
		wire.WriteError(w, obs.status, "%v", err)
		return
	}
	schedulers := req.Schedulers
	if len(schedulers) == 0 {
		schedulers = s.cfg.Schedulers
	}

	// The deadline wraps the context before admission so it also covers
	// time spent queued: a request that waits out its whole deadline in
	// the queue is answered 504 without ever computing.
	if d := s.deadline(req.DeadlineMS); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	release, reject := s.admit(ctx, w, obs)
	if reject != 0 {
		obs.status = reject
		return
	}
	defer release()

	spec := s.budget(ctx)
	obs.tierMS = spec.Wall.Milliseconds()
	ch, err := engine.Run(ctx, engine.Config{
		Jobs:       []engine.Job{{Benchmark: "service", SB: sb}},
		Machine:    m,
		Bounds:     bounds.Options{Triplewise: req.Triplewise},
		Schedulers: schedulers,
		Best:       req.Best,
		Workers:    1,
		Memo:       s.memo,
		JobBudget:  spec,
	})
	if err != nil {
		// Synchronous Run errors are configuration errors — an unknown
		// scheduler name's message lists every registered heuristic.
		obs.status = http.StatusBadRequest
		wire.WriteError(w, obs.status, "%v", err)
		return
	}
	results, err := engine.Collect(ch)
	if err != nil {
		obs.status = writeRunError(w, err)
		return
	}
	res := results[0]
	obs.cached, obs.coalesced, obs.degraded = res.Cached, res.Coalesced, res.Degraded
	resp := wire.ScheduleResponse{
		Name:      sb.Name,
		Machine:   m.Name,
		Costs:     res.Cost,
		Tightest:  res.Bounds.Tightest,
		Degraded:  res.Degraded,
		Trivial:   res.Trivial,
		Cached:    res.Cached,
		Coalesced: res.Coalesced,
	}
	if req.IncludeSchedule {
		detail, err := scheduleDetail(ctx, res.Cost, sb, m)
		if err != nil {
			obs.status = writeRunError(w, err)
			return
		}
		resp.Schedule = detail
	}
	resp.ElapsedMS = float64(time.Since(obs.start).Microseconds()) / 1000
	wire.WriteJSON(w, http.StatusOK, resp)
}

// scheduleDetail re-runs the cheapest evaluated heuristic to materialize
// its issue-cycle assignment. Schedules are not memoized (only costs are),
// so this is the one deliberately uncached piece of the response.
func scheduleDetail(ctx context.Context, costs map[string]float64, sb *model.Superblock, m *model.Machine) (*wire.ScheduleDetail, error) {
	bestName := ""
	bestCost := 0.0
	for name, c := range costs {
		if name == "Best" {
			continue // the meta-column's schedule is not a single heuristic's
		}
		if bestName == "" || c < bestCost {
			bestName, bestCost = name, c
		}
	}
	sched0, err := engine.SchedulerByName(bestName)
	if err != nil {
		return nil, err
	}
	inst := sched0.Instantiate(ctx)
	sc, _, err := inst.Run(sb, m)
	if err != nil {
		return nil, err
	}
	return &wire.ScheduleDetail{
		Heuristic: bestName,
		Cost:      sched.Cost(sb, sc),
		Cycles:    sc.Cycle,
	}, nil
}

// handleBounds is POST /v1/bounds: the lower-bound set only. The bound
// kernel's per-(graph, machine) cache already dedups the heavy artifacts,
// so this endpoint skips the result cache and runs the ladder directly
// under the deadline budget.
func (s *Server) handleBounds(w http.ResponseWriter, r *http.Request) {
	obs, ctx := s.begin(r, "bounds")
	defer obs.finish()

	var req wire.BoundsRequest
	if err := wire.DecodeJSON(http.MaxBytesReader(w, r.Body, wire.MaxBodyBytes), &req); err != nil {
		obs.status = http.StatusBadRequest
		wire.WriteError(w, obs.status, "decode request: %v", err)
		return
	}
	sb, m, err := resolveInput(req.Superblock, req.Index, req.Machine)
	if err != nil {
		obs.status = http.StatusBadRequest
		wire.WriteError(w, obs.status, "%v", err)
		return
	}

	if d := s.deadline(req.DeadlineMS); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	release, reject := s.admit(ctx, w, obs)
	if reject != 0 {
		obs.status = reject
		return
	}
	defer release()

	spec := s.budget(ctx)
	obs.tierMS = spec.Wall.Milliseconds()
	set := bounds.ComputeBudgetCtx(ctx, sb, m,
		bounds.Options{Triplewise: req.Triplewise},
		spec.New())
	obs.degraded = set.Degraded
	resp := wire.BoundsResponse{
		Name:    sb.Name,
		Machine: m.Name,
		Bounds: map[string]float64{
			"CP":       set.CPVal,
			"Hu":       set.HuVal,
			"RJ":       set.RJVal,
			"LC":       set.LCVal,
			"Pairwise": set.PairVal,
		},
		Tightest:  set.Tightest,
		Degraded:  set.Degraded,
		ElapsedMS: float64(time.Since(obs.start).Microseconds()) / 1000,
	}
	if req.Triplewise {
		resp.Bounds["Triplewise"] = set.TripleVal
	}
	wire.WriteJSON(w, http.StatusOK, resp)
}

// handleExplain is POST /v1/explain: one Balance run with the
// decision-explain channel attached, returning the versioned per-decision
// records (the HTTP form of cmd/sbexplain -json).
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	obs, ctx := s.begin(r, "explain")
	defer obs.finish()

	var req wire.ExplainRequest
	if err := wire.DecodeJSON(http.MaxBytesReader(w, r.Body, wire.MaxBodyBytes), &req); err != nil {
		obs.status = http.StatusBadRequest
		wire.WriteError(w, obs.status, "decode request: %v", err)
		return
	}
	sb, m, err := resolveInput(req.Superblock, req.Index, req.Machine)
	if err != nil {
		obs.status = http.StatusBadRequest
		wire.WriteError(w, obs.status, "%v", err)
		return
	}
	cfg := core.DefaultConfig()
	cfg.Tradeoff = !req.NoTradeoff
	switch req.Update {
	case "", "per-op":
		cfg.Update = core.UpdatePerOp
	case "light":
		cfg.Update = core.UpdateLight
	case "cycle":
		cfg.Update = core.UpdatePerCycle
	default:
		obs.status = http.StatusBadRequest
		wire.WriteError(w, obs.status, "unknown update policy %q (available: per-op, light, cycle)", req.Update)
		return
	}

	if d := s.deadline(req.DeadlineMS); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	release, reject := s.admit(ctx, w, obs)
	if reject != 0 {
		obs.status = reject
		return
	}
	defer release()

	p := core.NewPicker(sb, m, cfg)
	var decs []core.Decision
	p.Explain(func(dec *core.Decision) { decs = append(decs, *dec) })
	sc, _, err := sched.RunCtx(ctx, sb, m, p)
	if err != nil {
		obs.status = writeRunError(w, err)
		return
	}
	wire.WriteJSON(w, http.StatusOK, wire.ExplainResponse{
		Name:      sb.Name,
		Machine:   m.Name,
		Cost:      sched.Cost(sb, sc),
		Decisions: decs,
		ElapsedMS: float64(time.Since(obs.start).Microseconds()) / 1000,
	})
}

// handleHealth is GET /healthz: liveness plus the load, cache, rolling
// window, and SLO state a load balancer or soak driver watches. It
// bypasses admission control — health checks must answer during
// overload; that is the point.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := "ok"
	if s.draining.Load() {
		st = "draining"
	}
	cs := s.memo.CacheStats()
	ws := telServeNS.WindowSummary(0)
	win := &wire.WindowHealth{
		RatePerSec: ws.RatePerSec,
		Count:      ws.Count,
		P50MS:      float64(ws.P50) / 1e6,
		P95MS:      float64(ws.P95) / 1e6,
		P99MS:      float64(ws.P99) / 1e6,
	}
	if reqs := telRequests.WindowCount(0); reqs > 0 {
		win.ErrorRatio = float64(telFailed.WindowCount(0)) / float64(reqs)
	}
	h := wire.Health{
		Status:     st,
		InFlight:   s.inflight.Load(),
		Queued:     s.admitted.Load(),
		Workers:    s.cfg.Workers,
		AdmitLimit: s.limit,
		Goroutines: runtime.NumGoroutine(),
		Cache: wire.CacheHealth{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Coalesced: cs.Coalesced,
			Evictions: cs.Evictions,
			Size:      cs.Size,
			Capacity:  cs.Capacity,
		},
		Window:   win,
		UptimeMS: s.uptimeMS(),
	}
	for _, b := range s.sloBurns() {
		h.SLO = append(h.SLO, wire.SLOHealth{
			Objective: b.obj.Raw,
			BurnLong:  b.long,
			BurnFast:  b.fast,
			OK:        b.long <= 1,
		})
	}
	wire.WriteJSON(w, http.StatusOK, h)
}

// handleReady is GET /readyz: readiness, as distinct from the liveness
// /healthz reports. It answers 200 only while the server is accepting
// new work; the moment a drain begins it answers 503, so load balancers
// and coordinators stop assigning before the listener goes away.
// /healthz keeps answering 200 throughout the drain — the process is
// alive and must not be restarted while it finishes in-flight work.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		wire.WriteError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	wire.WriteJSON(w, http.StatusOK, wire.Ready{Ready: true})
}
