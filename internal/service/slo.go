package service

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SLO objectives and burn rates.
//
// An objective states how much badness the service budget allows over the
// rolling window: "p95<25ms" allows 5% of requests to exceed 25ms,
// "err<1%" allows 1% of requests to fail with a 5xx. The burn rate is the
// ratio of actual badness to that budget — 1.0 means the budget is being
// consumed exactly as fast as it accrues, >1.0 means the objective will be
// violated if the rate holds. Burn is evaluated over two windows (the
// classic multi-window alert pattern): the full rolling ring ("long",
// 60s with the default geometry) for sustained breach, and the most
// recent couple of intervals ("fast", ~10s) so a fresh regression is
// visible before the long window turns.
//
// Error ratio deliberately counts only 5xx failures — matching sbload's
// accounting: 429s are backpressure working as designed and 504s are the
// client's own deadline, neither an error budget spend.

// Objective is one parsed SLO term.
type Objective struct {
	// Raw is the term as written ("p95<25ms"), used as the metric label
	// and /healthz identifier.
	Raw string
	// Quantile and Threshold define a latency objective: at most (1 −
	// Quantile) of requests may exceed Threshold. Quantile is zero for
	// error-ratio terms.
	Quantile  float64
	Threshold time.Duration
	// MaxErrorRatio defines an error objective: at most this fraction of
	// requests may fail with a 5xx. Zero for latency terms.
	MaxErrorRatio float64
}

// ParseSLO parses a comma-separated objective spec, the -slo flag syntax:
//
//	p95<25ms,p50<2ms,err<1%
//
// Latency terms are pNN<duration with NN a percentile in (0, 100);
// error terms are err<ratio, the ratio a percentage ("1%") or a fraction
// ("0.01").
func ParseSLO(spec string) ([]Objective, error) {
	var out []Objective
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		lhs, rhs, found := strings.Cut(term, "<")
		if !found {
			return nil, fmt.Errorf("slo term %q: want percentile<bound (e.g. p95<25ms) or err<ratio (e.g. err<1%%)", term)
		}
		obj := Objective{Raw: term}
		switch {
		case lhs == "err":
			ratio, err := parseRatio(rhs)
			if err != nil {
				return nil, fmt.Errorf("slo term %q: %v", term, err)
			}
			if ratio <= 0 || ratio >= 1 {
				return nil, fmt.Errorf("slo term %q: error ratio must be in (0, 1)", term)
			}
			obj.MaxErrorRatio = ratio
		case strings.HasPrefix(lhs, "p"):
			pct, err := strconv.ParseFloat(lhs[1:], 64)
			if err != nil || pct <= 0 || pct >= 100 {
				return nil, fmt.Errorf("slo term %q: percentile must be in (0, 100)", term)
			}
			d, err := time.ParseDuration(rhs)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("slo term %q: bad latency bound %q (want e.g. 25ms)", term, rhs)
			}
			obj.Quantile = pct / 100
			obj.Threshold = d
		default:
			return nil, fmt.Errorf("slo term %q: unknown objective %q (want pNN or err)", term, lhs)
		}
		out = append(out, obj)
	}
	return out, nil
}

// parseRatio accepts "1%" or "0.01".
func parseRatio(s string) (float64, error) {
	if pct, found := strings.CutSuffix(s, "%"); found {
		v, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			return 0, fmt.Errorf("bad percentage %q", s)
		}
		return v / 100, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad ratio %q", s)
	}
	return v, nil
}

// fastBurnShards is the "fast" burn window's width in ring intervals:
// 2 × 5s ≈ the last 10 seconds with the default window geometry.
const fastBurnShards = 2

// sloBurn is one objective's evaluated burn rates.
type sloBurn struct {
	obj        Objective
	long, fast float64
}

// sloBurns evaluates every configured objective over the long (full ring)
// and fast (last fastBurnShards intervals) windows. An empty window burns
// nothing — a just-booted or idle server is not out of budget.
func (s *Server) sloBurns() []sloBurn {
	burns := make([]sloBurn, 0, len(s.cfg.SLO))
	for _, obj := range s.cfg.SLO {
		b := sloBurn{obj: obj}
		if obj.MaxErrorRatio > 0 {
			b.long = errorBurn(obj.MaxErrorRatio, 0)
			b.fast = errorBurn(obj.MaxErrorRatio, fastBurnShards)
		} else {
			b.long = latencyBurn(obj, 0)
			b.fast = latencyBurn(obj, fastBurnShards)
		}
		burns = append(burns, b)
	}
	return burns
}

// latencyBurn is (fraction of window requests slower than the threshold)
// over (the fraction the objective allows), computed from the request
// histogram's rolling buckets over the last k intervals.
func latencyBurn(obj Objective, k int) float64 {
	over, total := telServeNS.WindowCountOver(int64(obj.Threshold), k)
	if total == 0 {
		return 0
	}
	budget := 1 - obj.Quantile
	return (float64(over) / float64(total)) / budget
}

// errorBurn is (window 5xx ratio) over (the allowed ratio).
func errorBurn(maxRatio float64, k int) float64 {
	total := telRequests.WindowCount(k)
	if total == 0 {
		return 0
	}
	return (float64(telFailed.WindowCount(k)) / float64(total)) / maxRatio
}
