// Package service turns the evaluation pipeline into a long-running,
// backpressured scheduling service: the request path behind cmd/sbserve.
//
// The layering is deliberate — service owns everything request-shaped and
// nothing compute-shaped:
//
//   - Admission control: a bounded queue in front of a fixed pool of
//     compute slots. Requests beyond Workers wait; requests beyond
//     Workers+QueueDepth are rejected immediately with 429 and a
//     Retry-After estimate derived from the rolling-window median latency,
//     so overload degrades into fast, honest rejections instead of
//     timeouts.
//   - Deadlines: a per-request deadline becomes both a context deadline
//     (hard abort) and a quantized resilience budget (soft degradation of
//     the bound ladder — see resilience.TierSpec and bounds.ComputeBudget).
//   - Caching: one shared engine.Memo serves every request; identical
//     in-flight requests coalesce onto a single computation (singleflight).
//   - Observability: each request is one span tree (service.request at the
//     root, the engine/bounds/sched spans below it), counters and latency
//     histograms under the service.* prefix — the request flow on rolling
//     windows so /healthz, Retry-After, and SLO burn rates see "the last
//     minute" — a Prometheus exposition at /metrics with trace exemplars,
//     and tail-sampled JSON access logs (see accesslog.go, slo.go).
//   - Lifecycle: Drain stops admission and waits for in-flight requests,
//     so SIGINT leaves no half-written responses or leaked goroutines.
package service

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"balance/internal/engine"
	"balance/internal/model"
	"balance/internal/resilience"
	"balance/internal/sbfile"
	"balance/internal/telemetry"
	"balance/internal/wire"
)

// Config configures a Server. The zero value serves with sensible
// defaults: GOMAXPROCS compute slots, a 4× queue, the default cache
// capacity, and the standard budget ladder.
type Config struct {
	// Workers bounds concurrent evaluations (≤ 0 uses GOMAXPROCS).
	Workers int
	// QueueDepth bounds admitted-but-waiting requests beyond Workers
	// (≤ 0 uses 4×Workers). Requests past the limit are rejected with 429.
	QueueDepth int
	// Cache, when non-nil, is the shared result cache (so several servers
	// or a server plus an eval Runner can share one). Nil creates a cache
	// of CacheCapacity entries (≤ 0: engine.DefaultMemoCapacity).
	Cache         *engine.Memo
	CacheCapacity int
	// DefaultDeadline applies when a request carries none (0 = unlimited).
	// MaxDeadline, when set, clamps every request's deadline.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// BudgetTiers is the quantized budget ladder deadlines map onto (see
	// resilience.TierSpec). Nil uses DefaultBudgetTiers; quantization keeps
	// the result cache shareable across requests with similar deadlines.
	BudgetTiers []time.Duration
	// Schedulers is the default scheduler set for requests that name none
	// (nil: the engine registry's primary heuristics).
	Schedulers []string
	// Debug, when non-nil, is mounted at /debug/ (expvar + pprof — see
	// cliutil.DebugHandler).
	Debug http.Handler
	// SLO lists the objectives evaluated over the rolling request window
	// (see ParseSLO). Burn rates surface in /healthz and as slo_burn_rate
	// series on /metrics.
	SLO []Objective
	// AccessLog, when non-nil, receives one JSON line per kept request
	// (see accesslog.go). AccessSampleRate is the fraction of healthy
	// requests kept (0 or ≥1: all); errors, rejections, deadline expiries,
	// and slow-tail requests are always kept.
	AccessLog        io.Writer
	AccessSampleRate float64
}

// DefaultBudgetTiers is the standard deadline-quantization ladder.
var DefaultBudgetTiers = []time.Duration{
	25 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2 * time.Second,
	10 * time.Second,
}

// Server is the scheduling service: an http.Handler plus the admission,
// cache, and lifecycle state behind it. Create with New, serve
// Handler(), stop with Drain.
type Server struct {
	cfg   Config
	memo  *engine.Memo
	start time.Time

	slots    chan struct{} // compute-slot tokens (capacity = Workers)
	limit    int64         // admission limit: Workers + QueueDepth
	admitted atomic.Int64  // requests holding admission (waiting + running)
	inflight atomic.Int64  // requests holding a compute slot
	draining atomic.Bool
	wg       sync.WaitGroup

	access  *accessLogger
	handler http.Handler
}

// Service instruments, registered once in the default registry. The
// request flow (count, 5xx failures, latency) uses rolling-window
// instruments: /healthz, Retry-After, and SLO burn rates all want "the
// last minute", not "since boot". The remaining status-class counters
// stay plain — their windowed views are derivable from the windowed
// three, and every windowed shard ring costs memory.
var (
	telRequests  = telemetry.Default().WindowedCounter("service.requests")
	telOK        = telemetry.Default().Counter("service.requests_ok")
	telBadReq    = telemetry.Default().Counter("service.requests_bad")
	telRejected  = telemetry.Default().Counter("service.requests_rejected")
	telDeadline  = telemetry.Default().Counter("service.requests_deadline")
	telFailed    = telemetry.Default().WindowedCounter("service.requests_failed")
	telDegraded  = telemetry.Default().Counter("service.requests_degraded")
	telQueueWait = telemetry.Default().Histogram("service.queue_wait_ns")
	telServeNS   = telemetry.Default().WindowedHistogram("service.request_ns")
	telQueued    = telemetry.Default().Gauge("service.queued")
	telInflight  = telemetry.Default().Gauge("service.inflight")
)

// New returns a Server ready to serve Handler().
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.BudgetTiers == nil {
		cfg.BudgetTiers = DefaultBudgetTiers
	}
	memo := cfg.Cache
	if memo == nil {
		memo = engine.NewMemo(cfg.CacheCapacity)
	}
	s := &Server{
		cfg:    cfg,
		memo:   memo,
		start:  time.Now(),
		slots:  make(chan struct{}, cfg.Workers),
		limit:  int64(cfg.Workers + cfg.QueueDepth),
		access: newAccessLogger(cfg.AccessLog, cfg.AccessSampleRate),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("POST /v1/bounds", s.handleBounds)
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.Handle("GET /metrics", telemetry.PromWriter{Extra: s.promExtra}.Handler())
	if cfg.Debug != nil {
		mux.Handle("/debug/", cfg.Debug)
	}
	// Every response carries the server clock (SB-Time), so clients can
	// align their trace files onto this process's timeline.
	s.handler = wire.WithServerTime(mux)
	return s
}

// promExtra publishes the SLO burn rates as labelled slo_burn_rate
// series alongside the registry instruments on /metrics.
func (s *Server) promExtra() []telemetry.PromSeries {
	burns := s.sloBurns()
	out := make([]telemetry.PromSeries, 0, 2*len(burns))
	for _, b := range burns {
		for _, w := range []struct {
			name string
			v    float64
		}{{"long", b.long}, {"fast", b.fast}} {
			out = append(out, telemetry.PromSeries{
				Name: "slo_burn_rate",
				Help: "error-budget burn rate per objective and window (>1: budget spending faster than it accrues)",
				Labels: []telemetry.PromLabel{
					{Key: "objective", Value: b.obj.Raw},
					{Key: "window", Value: w.name},
				},
				Value: w.v,
			})
		}
	}
	return out
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler { return s.handler }

// CacheStats reports the shared result cache's accounting.
func (s *Server) CacheStats() engine.CacheStats { return s.memo.CacheStats() }

// StartDrain flips the server out of readiness: /readyz answers 503 and
// new compute requests are rejected, while /healthz stays 200 (the
// process is alive and finishing its work). Call it BEFORE stopping the
// http.Server, so load balancers and coordinators observe "not ready"
// while the listener still answers — the window in which they stop
// assigning work without a single connection error.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain stops admitting new requests (they are rejected with 503) and
// waits until every in-flight request has finished, or ctx expires.
// Callers flip readiness with StartDrain first, then stop the
// http.Server (no new connections), then Drain.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %d request(s) still in flight: %w",
			s.admitted.Load(), ctx.Err())
	}
}

// admit applies admission control for one compute request. On success the
// caller runs with a compute slot held and must call the returned release
// (reject = 0). On rejection admit writes the response itself and returns
// the status it wrote: 503 while draining, 429 with Retry-After past the
// admission limit, 504 when the request's deadline (ctx) expires while
// queued — rejected requests never compute. The slot wait lands in obs as
// the request's queue-wait share.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, obs *reqObs) (release func(), reject int) {
	if s.draining.Load() {
		wire.WriteError(w, http.StatusServiceUnavailable, "server is draining")
		return nil, http.StatusServiceUnavailable
	}
	if n := s.admitted.Add(1); n > s.limit {
		s.admitted.Add(-1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		wire.WriteError(w, http.StatusTooManyRequests,
			"admission queue full (%d waiting or running, limit %d)", n-1, s.limit)
		return nil, http.StatusTooManyRequests
	}
	telQueued.Set(s.admitted.Load())
	s.wg.Add(1)
	enqueued := time.Now()
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.admitted.Add(-1)
		s.wg.Done()
		wire.WriteError(w, http.StatusGatewayTimeout,
			"deadline expired while queued (%v)", ctx.Err())
		return nil, http.StatusGatewayTimeout
	}
	wait := time.Since(enqueued)
	obs.queueWait = wait
	telQueueWait.ObserveDuration(wait)
	telInflight.Set(s.inflight.Add(1))
	return func() {
		<-s.slots
		telInflight.Set(s.inflight.Add(-1))
		s.admitted.Add(-1)
		s.wg.Done()
	}, 0
}

// budget maps the request's remaining deadline onto the quantized budget
// ladder (see resilience.TierSpec). Measured after admission, so time
// spent queued has already been charged against it.
func (s *Server) budget(ctx context.Context) resilience.Spec {
	dl, ok := ctx.Deadline()
	if !ok {
		return resilience.Spec{}
	}
	return resilience.TierSpec(time.Until(dl), s.cfg.BudgetTiers)
}

// retryAfterSeconds estimates when a rejected client should retry from
// the rolling-window median latency — not the lifetime one, so a slow
// warm-up or a past incident stops inflating the estimate once it ages
// out of the window. A cold window (e.g. the first requests after an idle
// minute) falls back to the lifetime median.
func (s *Server) retryAfterSeconds() int {
	p50 := time.Duration(telServeNS.WindowQuantile(0.5, 0))
	if p50 <= 0 {
		p50 = time.Duration(telServeNS.Lifetime().Quantile(0.5))
	}
	return retryAfterFrom(p50, s.admitted.Load(), int64(s.cfg.Workers))
}

// retryAfterFrom computes the Retry-After estimate: the backlog divided
// by the pool width, scaled by the median request latency, clamped to
// [1, 60] seconds (1s is the header's resolution).
func retryAfterFrom(p50 time.Duration, backlog, workers int64) int {
	if p50 <= 0 {
		p50 = 100 * time.Millisecond
	}
	load := float64(backlog) / float64(workers)
	secs := int(math.Ceil(load * p50.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// deadline resolves a request's effective deadline from its deadline_ms
// field and the server defaults (0 = unlimited).
func (s *Server) deadline(deadlineMS int64) time.Duration {
	d := time.Duration(deadlineMS) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && (d <= 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	return d
}

// resolveInput parses the request's .sb text and machine name. A non-nil
// error carries the HTTP status to report (always 400 — both error paths
// list what would have been valid: the parser its line/column, the machine
// lookup every configuration name).
func resolveInput(sbText string, index int, machine string) (*model.Superblock, *model.Machine, error) {
	if strings.TrimSpace(sbText) == "" {
		return nil, nil, fmt.Errorf("empty superblock field (want .sb text)")
	}
	sbs, err := sbfile.Read(strings.NewReader(sbText))
	if err != nil {
		return nil, nil, fmt.Errorf("parse superblock: %v", err)
	}
	if index < 0 || index >= len(sbs) {
		return nil, nil, fmt.Errorf("index %d out of range (input has %d superblocks)", index, len(sbs))
	}
	m, err := model.MachineByName(machine)
	if err != nil {
		return nil, nil, err
	}
	return sbs[index], m, nil
}

// uptimeMS reports the server's age for /healthz.
func (s *Server) uptimeMS() int64 { return time.Since(s.start).Milliseconds() }
