package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"balance/internal/telemetry"
	"balance/internal/wire"
)

// TestSoak drives the service under sustained concurrent load for a short
// window and asserts the properties the 30-second CI soak checks at scale:
// no server failures, identical requests coalescing onto distinct-key
// computations, a live p95 in the request-latency histogram, and zero
// goroutine growth once the server has drained.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	const distinct = 4
	inputs := make([]string, distinct)
	for i := range inputs {
		inputs[i] = sbText(t, 100+int64(i), 16)
	}

	s := New(Config{Workers: 4, QueueDepth: 64})
	ts := httptest.NewServer(s.Handler())

	const clients = 8
	duration := 1500 * time.Millisecond
	deadlineMS := int64(30000) // stays inside one budget tier for the whole run

	var ok, rejected, failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			hc := ts.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := &wire.ScheduleRequest{
					Superblock: inputs[(c+i)%distinct],
					Machine:    "GP2",
					DeadlineMS: deadlineMS,
				}
				code, _, _ := wire.Post(context.Background(), hc, ts.URL+"/v1/schedule", req, nil)
				switch {
				case code == http.StatusOK:
					ok.Add(1)
				case code == http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(c)
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()

	if failed.Load() > 0 {
		t.Errorf("soak: %d requests failed (neither 200 nor 429)", failed.Load())
	}
	if ok.Load() < 100 {
		t.Errorf("soak: only %d successful requests in %v", ok.Load(), duration)
	}

	// Every 200 went through the cache exactly once: the accounting must
	// add up, with one computation per distinct input and everything else
	// served shared (resident hit or in-flight coalesce).
	st := s.CacheStats()
	if st.Misses != distinct {
		t.Errorf("soak: %d computations for %d distinct inputs", st.Misses, distinct)
	}
	if st.Hits+st.Coalesced+st.Misses != ok.Load() {
		t.Errorf("soak: cache accounting %d hits + %d coalesced + %d misses != %d ok responses",
			st.Hits, st.Coalesced, st.Misses, ok.Load())
	}

	// The request-latency instrument is windowed: both the lifetime view
	// and the rolling window must have a live p95 right after the run.
	reqNS := telemetry.Default().WindowedHistogram("service.request_ns")
	if p95 := reqNS.Lifetime().Quantile(0.95); p95 <= 0 {
		t.Errorf("soak: request-latency histogram has no lifetime p95")
	}
	if p95 := reqNS.WindowQuantile(0.95, 0); p95 <= 0 {
		t.Errorf("soak: request-latency histogram has no rolling-window p95")
	}

	// Drain, close, and require the goroutine count to return to baseline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("soak: drain: %v", err)
	}
	ts.CloseClientConnections()
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("soak: goroutines %d > baseline %d after drain", runtime.NumGoroutine(), baseline)
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
}
