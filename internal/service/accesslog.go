package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Structured access logs with tail sampling.
//
// One JSON line per kept request. Healthy responses are head-sampled (a
// deterministic 1-in-N) so a soak's log stays proportional to load, but
// every request an operator would actually chase — a 5xx, a 429
// rejection, a 504 deadline expiry, or a latency outlier beyond the
// rolling p99 — is always written, with the keep reason flagged on the
// line. The trace field carries the request's span-tree ID (when a trace
// sink is active), so a flagged line links into the Perfetto export the
// same way a metric exemplar does.

// accessRecord is one access-log line.
type accessRecord struct {
	Time     string `json:"ts"`
	Endpoint string `json:"endpoint"`
	Status   int    `json:"status"`
	// Outcome is the status class as counted by the service metrics:
	// ok, bad_request, rejected, deadline, or failed.
	Outcome string `json:"outcome"`
	// Keep says why the line survived sampling: "sample" (head-sampled
	// healthy request), or the always-kept flags "error", "rejected",
	// "deadline", "slow" (beyond the rolling p99).
	Keep    string  `json:"keep"`
	TotalMS float64 `json:"total_ms"`
	// QueueMS is time spent waiting for a compute slot; ComputeMS the
	// remainder (parse + evaluation + encode).
	QueueMS   float64 `json:"queue_ms"`
	ComputeMS float64 `json:"compute_ms"`
	// Cached/Coalesced/Degraded carry the evaluation provenance for
	// endpoints that report it: result-cache hit, singleflight share, and
	// how many bound-ladder stages the deadline budget cut.
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	Degraded  int  `json:"degraded,omitempty"`
	// TierMS is the quantized budget tier the request's deadline mapped
	// onto (0: no deadline or an endpoint without the bound ladder).
	TierMS int64  `json:"tier_ms,omitempty"`
	Trace  string `json:"trace,omitempty"`
}

// accessLogger serializes access-log writes and owns the sampling
// counter.
type accessLogger struct {
	mu        sync.Mutex
	w         io.Writer
	keepEvery int64 // healthy requests kept: 1 in keepEvery
	healthy   atomic.Int64
}

// newAccessLogger wraps w (nil: no logging). rate is the fraction of
// healthy requests kept: 0.05 keeps 1 in 20; 0 or ≥1 keeps every line.
func newAccessLogger(w io.Writer, rate float64) *accessLogger {
	if w == nil {
		return nil
	}
	keep := int64(1)
	if rate > 0 && rate < 1 {
		keep = int64(math.Round(1 / rate))
		if keep < 1 {
			keep = 1
		}
	}
	return &accessLogger{w: w, keepEvery: keep}
}

// keepHealthy is the head-sampling decision for one healthy request:
// deterministic 1-in-keepEvery, starting with the first.
func (al *accessLogger) keepHealthy() bool {
	return (al.healthy.Add(1)-1)%al.keepEvery == 0
}

// log writes one record as a JSON line. Write errors are dropped:
// observability must never fail the request it observes.
func (al *accessLogger) log(rec *accessRecord) {
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	al.mu.Lock()
	defer al.mu.Unlock()
	al.w.Write(line) //nolint:errcheck
}

// record classifies one finished request and writes it if kept. slowNS
// is the current slow-tail bar (the rolling p99 at finish time, 0 when
// the window is empty).
func (al *accessLogger) record(o *reqObs, outcome string, total time.Duration, slowNS int64) {
	keep := ""
	switch outcome {
	case "failed":
		keep = "error"
	case "rejected":
		keep = "rejected"
	case "deadline":
		keep = "deadline"
	default:
		if slowNS > 0 && int64(total) > slowNS {
			keep = "slow"
		} else if al.keepHealthy() {
			keep = "sample"
		} else {
			return
		}
	}
	rec := &accessRecord{
		Time:      o.start.UTC().Format(time.RFC3339Nano),
		Endpoint:  o.endpoint,
		Status:    o.status,
		Outcome:   outcome,
		Keep:      keep,
		TotalMS:   float64(total.Microseconds()) / 1000,
		QueueMS:   float64(o.queueWait.Microseconds()) / 1000,
		ComputeMS: float64((total - o.queueWait).Microseconds()) / 1000,
		Cached:    o.cached,
		Coalesced: o.coalesced,
		Degraded:  o.degraded,
		TierMS:    o.tierMS,
	}
	if o.trace != 0 {
		rec.Trace = fmt.Sprintf("%016x", o.trace)
	}
	al.log(rec)
}
