package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"balance/internal/telemetry"
	"balance/internal/wire"
)

// TestTraceRoundTrip drives a request carrying a client span context
// through the real handler stack and asserts the server's
// service.request span joins the client's trace as a child of the
// client's span — the cross-process parenting the merged timeline
// depends on.
func TestTraceRoundTrip(t *testing.T) {
	var traceBuf bytes.Buffer
	reg := telemetry.Default()
	reg.SetSink(telemetry.NewJSONLSink(&traceBuf))
	defer reg.SetSink(nil)

	var accessBuf bytes.Buffer
	_, ts := newTestServer(t, Config{Workers: 2, AccessLog: &accessBuf, AccessSampleRate: 1})

	client := telemetry.NewSpanContext(0)
	ctx := telemetry.ContextWithSpan(context.Background(), client)
	req := &wire.BoundsRequest{Superblock: sbText(t, 41, 10), Machine: "GP1", DeadlineMS: 5000}
	if code, _, err := wire.Post(ctx, ts.Client(), ts.URL+"/v1/bounds", req, nil); err != nil || code != http.StatusOK {
		t.Fatalf("bounds: code=%d err=%v", code, err)
	}
	reg.SetSink(nil)

	events, err := telemetry.ParseJSONLTrace(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range events {
		if events[i].Name != "service.request" {
			continue
		}
		found = true
		if events[i].Trace != client.Trace {
			t.Errorf("server span trace %016x, want client trace %016x", events[i].Trace, client.Trace)
		}
		if events[i].Parent != client.Span {
			t.Errorf("server span parent %d, want client span %d", events[i].Parent, client.Span)
		}
	}
	if !found {
		t.Fatal("no service.request span recorded")
	}

	// The access log's trace field must resolve against the same trace ID
	// the client's file carries.
	wantTrace := fmt.Sprintf("%016x", client.Trace)
	if line := accessLine(t, &accessBuf); line.Trace != wantTrace {
		t.Errorf("access log trace %q, want %q", line.Trace, wantTrace)
	}
}

// TestTraceFallsBackWithoutSink covers the asymmetric deployment: the
// client records a trace but the server runs without a sink. The
// server's span is inert, yet its access log (and exemplars) must still
// report the caller's propagated trace ID so the client-side file
// resolves against server logs.
func TestTraceFallsBackWithoutSink(t *testing.T) {
	var accessBuf bytes.Buffer
	_, ts := newTestServer(t, Config{Workers: 2, AccessLog: &accessBuf, AccessSampleRate: 1})

	client := telemetry.NewSpanContext(0)
	ctx := telemetry.ContextWithSpan(context.Background(), client)
	req := &wire.BoundsRequest{Superblock: sbText(t, 42, 10), Machine: "GP1", DeadlineMS: 5000}
	if code, _, err := wire.Post(ctx, ts.Client(), ts.URL+"/v1/bounds", req, nil); err != nil || code != http.StatusOK {
		t.Fatalf("bounds: code=%d err=%v", code, err)
	}
	wantTrace := fmt.Sprintf("%016x", client.Trace)
	if line := accessLine(t, &accessBuf); line.Trace != wantTrace {
		t.Errorf("sinkless access log trace %q, want %q", line.Trace, wantTrace)
	}
}

// TestMalformedTraceHeaderFreshRoot sends garbage in SB-Trace: the
// request must succeed and the server span must start a fresh root
// rather than propagate the garbage.
func TestMalformedTraceHeaderFreshRoot(t *testing.T) {
	var traceBuf bytes.Buffer
	reg := telemetry.Default()
	reg.SetSink(telemetry.NewJSONLSink(&traceBuf))
	defer reg.SetSink(nil)

	_, ts := newTestServer(t, Config{Workers: 2})
	body, _ := json.Marshal(&wire.BoundsRequest{Superblock: sbText(t, 43, 10), Machine: "GP1", DeadlineMS: 5000})
	httpReq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/bounds", bytes.NewReader(body))
	httpReq.Header.Set(telemetry.TraceHeader, "00-zzzz-not-a-trace")
	resp, err := ts.Client().Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("malformed trace header failed the request: %d", resp.StatusCode)
	}
	reg.SetSink(nil)

	events, err := telemetry.ParseJSONLTrace(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if events[i].Name == "service.request" {
			if events[i].Trace != events[i].Span || events[i].Parent != 0 {
				t.Errorf("span after malformed header: %+v, want fresh root", events[i])
			}
			return
		}
	}
	t.Fatal("no service.request span recorded")
}

// accessLine decodes the single expected access-log line.
func accessLine(t *testing.T, buf *bytes.Buffer) accessRecord {
	t.Helper()
	sc := bufio.NewScanner(buf)
	if !sc.Scan() {
		t.Fatal("no access log line written")
	}
	var rec accessRecord
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		t.Fatalf("access line: %v", err)
	}
	return rec
}
