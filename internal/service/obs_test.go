package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"balance/internal/telemetry"
	"balance/internal/wire"
)

func TestParseSLO(t *testing.T) {
	objs, err := ParseSLO("p95<25ms, err<1%")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives, want 2: %+v", len(objs), objs)
	}
	if o := objs[0]; o.Quantile != 0.95 || o.Threshold != 25*time.Millisecond || o.Raw != "p95<25ms" {
		t.Errorf("latency objective = %+v", o)
	}
	if o := objs[1]; o.MaxErrorRatio != 0.01 || o.Raw != "err<1%" {
		t.Errorf("error objective = %+v", o)
	}
	if objs, err := ParseSLO("err<0.005"); err != nil || objs[0].MaxErrorRatio != 0.005 {
		t.Errorf("fractional ratio: %+v, %v", objs, err)
	}
	if objs, err := ParseSLO(""); err != nil || len(objs) != 0 {
		t.Errorf("empty spec: %+v, %v", objs, err)
	}
	for _, bad := range []string{"p95", "p0<1ms", "p100<1ms", "p95<bogus", "err<0", "err<2", "cpu<50%"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
}

// TestRetryAfterDecays is the regression test for the rolling-window
// Retry-After estimate: a burst of slow requests inflates it, and once
// those age out of the window the estimate must fall back to the recent
// (fast) latency — the lifetime median stays inflated forever and is
// exactly what the estimate must NOT track.
func TestRetryAfterDecays(t *testing.T) {
	clk := clockAt(int64(time.Hour))
	h := telemetry.NewWindowedHistogram(4, time.Second, clk.now)

	// An incident: 150 requests at 2s (more than the fast traffic below,
	// so the lifetime median stays pinned to the burst).
	for i := 0; i < 150; i++ {
		h.Observe(int64(2 * time.Second))
	}
	slow := retryAfterFrom(time.Duration(h.WindowQuantile(0.5, 0)), 16, 4)
	if slow < 8 {
		t.Fatalf("retry-after during the slow burst = %ds, want ≥8s (4x backlog × ~2s median)", slow)
	}

	// The incident ages out of the ring; traffic is now fast.
	clk.advance(5 * time.Second)
	for i := 0; i < 100; i++ {
		h.Observe(int64(5 * time.Millisecond))
	}
	decayed := retryAfterFrom(time.Duration(h.WindowQuantile(0.5, 0)), 16, 4)
	if decayed != 1 {
		t.Errorf("retry-after after decay = %ds, want 1s (4x backlog × ~5ms median)", decayed)
	}
	// The lifetime median still remembers the incident — the window is
	// what makes the estimate honest again.
	lifetime := retryAfterFrom(time.Duration(h.Lifetime().Quantile(0.5)), 16, 4)
	if lifetime <= decayed {
		t.Errorf("lifetime-based estimate = %ds, want > %ds (still inflated by the burst)", lifetime, decayed)
	}
}

// clockAt builds a test clock (the telemetry fakeClock is not exported).
type testClock struct{ ns int64 }

func clockAt(ns int64) *testClock            { return &testClock{ns: ns} }
func (c *testClock) now() int64              { return c.ns }
func (c *testClock) advance(d time.Duration) { c.ns += int64(d) }

// TestHealthzEnriched checks the /healthz additions: pool geometry, the
// rolling window summary, and SLO burn rates.
func TestHealthzEnriched(t *testing.T) {
	slo, err := ParseSLO("p50<1ns,p95<10h,err<99%")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 5, SLO: slo})
	ctx := context.Background()
	if code, _, err := wire.Post(ctx, ts.Client(), ts.URL+"/v1/bounds", &wire.BoundsRequest{
		Superblock: sbText(t, 20, 10), Machine: "GP2", DeadlineMS: 5000,
	}, nil); err != nil || code != http.StatusOK {
		t.Fatalf("bounds: code=%d err=%v", code, err)
	}

	var h wire.Health
	if code, _, err := wire.Get(ctx, ts.Client(), ts.URL+"/healthz", &h); err != nil || code != http.StatusOK {
		t.Fatalf("healthz: code=%d err=%v", code, err)
	}
	if h.Workers != 3 || h.AdmitLimit != 8 {
		t.Errorf("pool geometry: workers=%d admit_limit=%d, want 3/8", h.Workers, h.AdmitLimit)
	}
	if h.Window == nil {
		t.Fatal("healthz window missing")
	}
	if h.Window.Count < 1 || h.Window.RatePerSec <= 0 || h.Window.P95MS < h.Window.P50MS {
		t.Errorf("window summary: %+v", h.Window)
	}
	if len(h.SLO) != 3 {
		t.Fatalf("slo entries = %+v, want 3", h.SLO)
	}
	// Every request takes longer than 1ns, so p50<1ns burns at 1/(1-0.5) =
	// 2x budget; nothing takes 10 hours, so p95<10h is clean.
	if b := h.SLO[0]; b.Objective != "p50<1ns" || b.BurnLong < 1.9 || b.OK {
		t.Errorf("p50<1ns burn = %+v, want ~2.0 and not OK", b)
	}
	if b := h.SLO[1]; b.BurnLong != 0 || !b.OK {
		t.Errorf("p95<10h burn = %+v, want 0 and OK", b)
	}
}

// TestMetricsEndpoint scrapes the live /metrics and holds it to the same
// structural lint CI applies, plus the presence of the windowed service
// series and the SLO burn gauges.
func TestMetricsEndpoint(t *testing.T) {
	slo, err := ParseSLO("p95<10h")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, SLO: slo})
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, lintErr := range telemetry.LintExposition(body) {
		t.Errorf("lint: %v", lintErr)
	}
	for _, want := range []string{
		"service_requests_total",
		"service_request_ns_bucket",
		"service_request_ns_window_p99",
		"service_requests_window_rate",
		`slo_burn_rate{objective="p95<10h",window="long"}`,
		`slo_burn_rate{objective="p95<10h",window="fast"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestAccessLogSampling drives healthy traffic through a sampling logger
// and a rejection past it, and checks the head-sampling arithmetic and
// the always-keep rule.
func TestAccessLogSampling(t *testing.T) {
	var buf bytes.Buffer
	s, ts := newTestServer(t, Config{
		Workers: 2, QueueDepth: 2,
		AccessLog: &buf, AccessSampleRate: 0.5,
	})
	ctx := context.Background()
	req := &wire.BoundsRequest{Superblock: sbText(t, 21, 10), Machine: "GP2", DeadlineMS: 5000}
	for i := 0; i < 6; i++ {
		if code, _, err := wire.Post(ctx, ts.Client(), ts.URL+"/v1/bounds", req, nil); err != nil || code != http.StatusOK {
			t.Fatalf("bounds %d: code=%d err=%v", i, code, err)
		}
	}
	// Saturate admission so the next request is rejected — rejections are
	// always logged, regardless of sampling.
	s.admitted.Store(s.limit)
	code, _, _ := wire.Post(ctx, ts.Client(), ts.URL+"/v1/bounds", req, nil)
	s.admitted.Store(0)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated request: code=%d, want 429", code)
	}

	var samples, rejected int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec accessRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad access-log line %q: %v", line, err)
		}
		if rec.Endpoint != "bounds" || rec.TotalMS <= 0 || rec.QueueMS < 0 {
			t.Errorf("suspicious record: %+v", rec)
		}
		switch rec.Keep {
		case "sample":
			samples++
			if rec.Status != http.StatusOK || rec.Outcome != "ok" {
				t.Errorf("healthy sample with status %d outcome %s", rec.Status, rec.Outcome)
			}
			// The 5s deadline quantizes down onto the 2s budget tier.
			if rec.TierMS != 2000 {
				t.Errorf("sample tier_ms = %d, want 2000", rec.TierMS)
			}
		case "rejected":
			rejected++
			if rec.Status != http.StatusTooManyRequests {
				t.Errorf("rejected record with status %d", rec.Status)
			}
		case "slow":
			// Latency-dependent; possible but not asserted either way.
		default:
			t.Errorf("unexpected keep reason %q", rec.Keep)
		}
	}
	// Rate 0.5 keeps half the healthy requests deterministically (1st,
	// 3rd, 5th of six).
	if samples != 3 {
		t.Errorf("head-sampled lines = %d, want 3 of 6 at rate 0.5", samples)
	}
	if rejected != 1 {
		t.Errorf("rejected lines = %d, want 1 (always kept)", rejected)
	}
}

// TestAccessLogAlwaysKeepsTails unit-tests the keep decision: errors,
// rejections, deadline expiries, and slow-tail requests must survive even
// a 1-in-a-million sampling rate.
func TestAccessLogAlwaysKeepsTails(t *testing.T) {
	var buf bytes.Buffer
	al := newAccessLogger(&buf, 1e-6)
	s := &Server{}
	obs := &reqObs{s: s, endpoint: "bounds", start: time.Now(), queueWait: time.Millisecond}

	cases := []struct {
		outcome string
		total   time.Duration
		slowNS  int64
		keep    string
	}{
		// Head sampling always keeps the very first healthy request…
		{"ok", time.Millisecond, 0, "sample"},
		// …and drops the next ~million at this rate.
		{"ok", time.Millisecond, int64(10 * time.Millisecond), ""},
		{"failed", time.Millisecond, 0, "error"},
		{"rejected", time.Millisecond, 0, "rejected"},
		{"deadline", time.Millisecond, 0, "deadline"},
		{"ok", 50 * time.Millisecond, int64(10 * time.Millisecond), "slow"},
		{"ok", time.Millisecond, int64(10 * time.Millisecond), ""},
	}
	for _, tc := range cases {
		buf.Reset()
		obs.status = http.StatusOK
		al.record(obs, tc.outcome, tc.total, tc.slowNS)
		if tc.keep == "" {
			if buf.Len() != 0 {
				t.Errorf("%s/%v: logged %q, want sampled out", tc.outcome, tc.total, buf.String())
			}
			continue
		}
		var rec accessRecord
		if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
			t.Fatalf("%s: bad line %q: %v", tc.outcome, buf.String(), err)
		}
		if rec.Keep != tc.keep {
			t.Errorf("%s: keep = %q, want %q", tc.outcome, rec.Keep, tc.keep)
		}
	}
}
